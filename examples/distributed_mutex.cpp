// Distributed mutual exclusion over the arrow queue: 16 nodes on a random
// tree contend for a lock under Poisson arrivals; we verify mutual exclusion
// and report lock-handoff efficiency versus a centralized lock server.
//
//   $ ./distributed_mutex
#include <cstdio>

#include "apps/mutex.hpp"
#include "arrow/arrow.hpp"
#include "baseline/centralized.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "support/random.hpp"
#include "workload/workloads.hpp"

using namespace arrowdq;

int main() {
  Rng rng(2024);
  const NodeId n = 16;
  Graph g = make_random_tree(n, rng);
  Tree t = shortest_path_tree(g, 0);

  // 40 lock requests arriving at ~1 request per 2 time units, from random
  // nodes (high contention: handoffs chain through the tree).
  RequestSet reqs = poisson_uniform(n, /*root=*/0, /*count=*/40, /*rate=*/0.5, rng);

  const Time cs = units_to_ticks(1);  // each node holds the lock 1 unit
  MutexResult m = run_mutex(t, reqs, cs);

  std::printf("distributed mutex on a random tree (n=%d, %d lock requests)\n", n, reqs.size());
  std::printf("  mutual exclusion: %s\n", m.mutual_exclusion ? "verified" : "VIOLATED");
  std::printf("  makespan        : %.1f units\n", ticks_to_units_d(m.makespan));
  std::printf("  token travel    : %lld units over the tree\n",
              static_cast<long long>(m.token_travel));

  std::printf("\nfirst 10 critical sections (queue order):\n");
  int shown = 0;
  for (RequestId id = 1; id <= reqs.size() && shown < 10; ++id, ++shown) {
    std::printf("  request %2d: acquired %.1f, released %.1f\n", id,
                ticks_to_units_d(m.acquire[static_cast<std::size_t>(id)]),
                ticks_to_units_d(m.release[static_cast<std::size_t>(id)]));
  }

  // Compare the queuing layer alone against a centralized lock server.
  AllPairs apsp(g);
  auto out_central =
      run_centralized(n, reqs, apsp_dist_fn(apsp), CentralizedConfig{/*center=*/0});
  auto out_arrow = run_arrow(t, reqs);
  std::printf("\nqueuing-layer comparison (total latency, lower is better):\n");
  std::printf("  arrow      : %.1f units, %lld hops\n",
              ticks_to_units_d(out_arrow.total_latency(reqs)),
              static_cast<long long>(out_arrow.total_hops()));
  std::printf("  centralized: %.1f units, %lld hops\n",
              ticks_to_units_d(out_central.total_latency(reqs)),
              static_cast<long long>(out_central.total_hops()));
  return 0;
}
