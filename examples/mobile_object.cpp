// Mobile-object directory: a shared object (e.g. a writable file) migrates
// between requesting nodes; the arrow directory orders the requests and the
// object travels down the queue. We compare the object's travel distance
// under arrow's locality-aware order against a FIFO (issue-time) order.
//
//   $ ./mobile_object
#include <cstdio>

#include "apps/directory.hpp"
#include "arrow/arrow.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "support/random.hpp"
#include "workload/workloads.hpp"

using namespace arrowdq;

int main() {
  Rng rng(99);
  const NodeId n = 64;
  Graph g = make_grid(8, 8);
  Tree t = shortest_path_tree(g, 0);

  // Localized contention: all requests come from one corner region, issued
  // concurrently — the regime where arrow's nearest-neighbour order shines.
  RequestSet reqs = localized_burst(/*lo=*/48, /*hi=*/63, /*root=*/0, /*count=*/24, rng);

  auto outcome = run_arrow(t, reqs);
  DirectoryResult dir = directory_from_outcome(t, reqs, outcome, units_to_ticks(1));

  std::printf("mobile object on an 8x8 grid, %d requests from the far corner\n", reqs.size());
  std::printf("  object travel (arrow order): %lld units\n",
              static_cast<long long>(dir.object_travel));

  // FIFO strawman: visit requesters in issue order (ties by id).
  Weight fifo_travel = 0;
  NodeId at = 0;
  for (const Request& r : reqs.real()) {
    fifo_travel += t.distance(at, r.node);
    at = r.node;
  }
  std::printf("  object travel (FIFO order) : %lld units\n",
              static_cast<long long>(fifo_travel));
  std::printf("  makespan                   : %.1f units\n", ticks_to_units_d(dir.makespan));

  std::printf("\nobject itinerary (first 12 stops):\n");
  auto order = outcome.order();
  for (std::size_t i = 1; i < order.size() && i <= 12; ++i) {
    RequestId id = order[i];
    std::printf("  stop %2zu: node %2d (request %2d) at t=%.1f\n", i, reqs.by_id(id).node, id,
                ticks_to_units_d(dir.object_at[static_cast<std::size_t>(id)]));
  }
  return 0;
}
