// Quickstart: describe an experiment — protocol, topology, workload,
// latency model — as one declarative value, run it, and inspect the queuing
// order, per-request latencies, and the competitive analysis.
//
//   $ ./quickstart
#include <cstdio>

#include "analysis/competitive.hpp"
#include "exp/experiment.hpp"
#include "graph/metrics.hpp"

using namespace arrowdq;

int main() {
  // 1. Describe the whole scenario as one value: the arrow protocol on a
  //    5x5 grid of processors (shortest-path spanning tree), every node
  //    concurrently requesting to join the queue, synchronous latency.
  //    Swapping any axis — protocol = ProtocolSpec::centralized(),
  //    latency = LatencySpec::uniform_async(7) — is a one-line change.
  Experiment e;
  e.protocol = ProtocolSpec::arrow_one_shot();
  e.topology = TopologySpec::grid(5, 5);
  e.workload = WorkloadSpec::one_shot_all();
  e.latency = LatencySpec::synchronous();
  e.keep_outcome = true;  // retain the full QueuingOutcome for analysis

  // 2. Materialize the network to report its shape (run_experiment builds
  //    its own private copies from the same spec).
  Graph g = e.topology.build_graph();
  Tree t = e.topology.build_tree(g);
  TreeQuality q = tree_quality(g, t);
  std::printf("network: n=%d  graph diameter=%lld  tree diameter=%lld  stretch=%.2f\n",
              q.nodes, static_cast<long long>(q.graph_diameter),
              static_cast<long long>(q.tree_diameter), q.stretch);

  // 3. Run the protocol (validated) and read the uniform metrics.
  RunResult r = run_experiment(e);
  std::printf("\n%s: %lld requests, %llu messages, makespan %.1f units\n",
              e.default_label().c_str(), static_cast<long long>(r.total_requests),
              static_cast<unsigned long long>(r.messages), ticks_to_units_d(r.makespan));

  // 4. Inspect the total order the protocol built.
  RequestSet reqs = e.workload.build(g.node_count(), t.root());
  const QueuingOutcome& out = *r.outcome;
  std::printf("\nqueue order (request ids, 0 = virtual root request):\n  ");
  for (RequestId id : out.order()) std::printf("%d ", id);
  std::printf("\n\nper-request completions:\n");
  for (RequestId id = 1; id <= reqs.size(); ++id) {
    const Completion& c = out.completion(id);
    std::printf("  request %2d (node %2d): behind %2d, latency %.1f units, %d hops\n", id,
                reqs.by_id(id).node, c.predecessor,
                ticks_to_units_d(c.completed_at - reqs.by_id(id).time), c.hops);
  }

  // 5. Competitive analysis against the offline optimum (Theorem 3.19).
  CompetitiveReport rep = analyze_competitive(g, t, reqs, out, /*exact_limit=*/12);
  std::printf("\ncompetitive analysis:\n");
  std::printf("  cost(arrow)          = %.1f units\n", ticks_to_units_d(rep.cost_arrow));
  std::printf("  OPT lower bound      = %.1f units%s\n", ticks_to_units_d(rep.opt.value),
              rep.opt.exact >= 0 ? " (exact)" : " (MST/12 bound)");
  std::printf("  measured ratio       = %.2f\n", rep.ratio);
  std::printf("  paper bound s*log2 D = %.2f\n", rep.s_log_d);
  std::printf("  Lemma 3.10 identity  : %s\n", rep.lemma310_exact ? "holds" : "VIOLATED");
  return 0;
}
