// Quickstart: run the arrow protocol on a small grid network and inspect
// the queuing order, per-request latencies, and the competitive analysis.
//
//   $ ./quickstart
#include <cstdio>

#include "analysis/competitive.hpp"
#include "arrow/arrow.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/spanning_tree.hpp"
#include "workload/workloads.hpp"

using namespace arrowdq;

int main() {
  // 1. Build the network: a 5x5 grid of processors with unit-latency links.
  Graph g = make_grid(5, 5);

  // 2. Pick the pre-selected spanning tree the protocol will run on.
  Tree t = shortest_path_tree(g, /*root=*/0);
  TreeQuality q = tree_quality(g, t);
  std::printf("network: n=%d  graph diameter=%lld  tree diameter=%lld  stretch=%.2f\n",
              q.nodes, static_cast<long long>(q.graph_diameter),
              static_cast<long long>(q.tree_diameter), q.stretch);

  // 3. Issue a workload: every node concurrently requests to join the queue.
  RequestSet reqs = one_shot_all(g.node_count(), /*root=*/0);

  // 4. Run the protocol (synchronous model) and validate the outcome.
  QueuingOutcome out = run_arrow(t, reqs);

  // 5. Inspect the total order the protocol built.
  std::printf("\nqueue order (request ids, 0 = virtual root request):\n  ");
  for (RequestId id : out.order()) std::printf("%d ", id);
  std::printf("\n\nper-request completions:\n");
  for (RequestId id = 1; id <= reqs.size(); ++id) {
    const Completion& c = out.completion(id);
    std::printf("  request %2d (node %2d): behind %2d, latency %.1f units, %d hops\n", id,
                reqs.by_id(id).node, c.predecessor,
                ticks_to_units_d(c.completed_at - reqs.by_id(id).time), c.hops);
  }

  // 6. Competitive analysis against the offline optimum (Theorem 3.19).
  CompetitiveReport rep = analyze_competitive(g, t, reqs, out, /*exact_limit=*/12);
  std::printf("\ncompetitive analysis:\n");
  std::printf("  cost(arrow)          = %.1f units\n", ticks_to_units_d(rep.cost_arrow));
  std::printf("  OPT lower bound      = %.1f units%s\n", ticks_to_units_d(rep.opt.value),
              rep.opt.exact >= 0 ? " (exact)" : " (MST/12 bound)");
  std::printf("  measured ratio       = %.2f\n", rep.ratio);
  std::printf("  paper bound s*log2 D = %.2f\n", rep.s_log_d);
  std::printf("  Lemma 3.10 identity  : %s\n", rep.lemma310_exact ? "holds" : "VIOLATED");
  return 0;
}
