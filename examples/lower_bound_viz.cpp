// Visualize the Theorem 4.1 lower-bound instance as a Figure 9 style
// space-time diagram: the path runs horizontally, time advances downward,
// digits show each request's position (mod 10) in the queuing order.
//
//   $ ./lower_bound_viz            # D = 64 (the paper's Figure 9 instance)
//   $ ./lower_bound_viz 5          # D = 2^5
#include <cstdio>
#include <cstdlib>

#include "adversary/lower_bound.hpp"
#include "adversary/spacetime.hpp"
#include "arrow/arrow.hpp"

using namespace arrowdq;

int main(int argc, char** argv) {
  int log_d = argc > 1 ? std::atoi(argv[1]) : 6;
  auto inst = make_theorem41_instance(log_d);
  std::printf("Theorem 4.1 instance: D=%lld, k=%d, |R|=%d requests on a path\n\n",
              static_cast<long long>(inst.diameter), inst.k, inst.requests.size());

  SpacetimeOptions opts;
  opts.node_step = inst.diameter > 64 ? static_cast<NodeId>(inst.diameter / 64) : 1;
  opts.label_order = true;

  auto out = run_arrow(inst.tree, inst.requests);
  auto simulated = out.order();
  std::printf("-- simulated arrow order (digits = order position mod 10) --\n%s\n",
              render_spacetime(static_cast<NodeId>(inst.diameter) + 1, inst.requests, simulated,
                               opts)
                  .c_str());

  auto intended = theorem41_intended_order(inst);
  std::printf("-- the by-time order Theorem 4.1 charges to arrow --\n%s\n",
              render_spacetime(static_cast<NodeId>(inst.diameter) + 1, inst.requests, intended,
                               opts)
                  .c_str());

  std::printf("cost(simulated) = %.0f units, cost(intended) = %.0f units, k*D = %lld\n",
              ticks_to_units_d(out.total_latency(inst.requests)),
              ticks_to_units_d(order_tree_cost(inst, intended)),
              static_cast<long long>(inst.k * inst.diameter));
  return 0;
}
