// Totally ordered multicast: concurrent publishers on a torus send messages
// that every node must deliver in the same order. The arrow queue provides
// the order; a sequencer token stamps messages as it travels the queue.
//
//   $ ./ordered_multicast
#include <cstdio>

#include "apps/multicast.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "support/random.hpp"
#include "workload/workloads.hpp"

using namespace arrowdq;

int main() {
  Rng rng(7);
  Graph g = make_torus(4, 4);
  Tree t = shortest_path_tree(g, 0);
  const NodeId n = g.node_count();

  // Two bursts of concurrent publishes 8 units apart.
  RequestSet reqs = bursty(n, /*root=*/0, /*bursts=*/2, /*burst_size=*/6,
                           /*burst_gap_units=*/8, rng);

  MulticastResult mc = run_ordered_multicast(t, reqs);

  std::printf("ordered multicast on a 4x4 torus: %d messages, %d nodes\n", reqs.size(), n);
  std::printf("  agreed delivery order (message = request id): ");
  for (RequestId id : mc.stamped) std::printf("%d ", id);
  std::printf("\n  avg delivery latency: %.2f units\n", mc.avg_delivery_latency_units);
  std::printf("  makespan            : %.1f units\n", ticks_to_units_d(mc.makespan));

  // Show that two different nodes observe the identical order (the whole
  // point of total ordering).
  std::printf("\ndelivery times at node 0 vs node %d (same order at both):\n", n - 1);
  for (std::size_t seq = 0; seq < mc.stamped.size(); ++seq) {
    std::printf("  seq %2zu (msg %2d): node0 %.1f, node%d %.1f\n", seq, mc.stamped[seq],
                ticks_to_units_d(mc.deliver[seq][0]), n - 1,
                ticks_to_units_d(mc.deliver[seq][static_cast<std::size_t>(n - 1)]));
  }
  return 0;
}
