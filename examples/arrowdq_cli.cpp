// arrowdq_cli — compose an experiment from the command line.
//
//   $ ./arrowdq_cli --graph grid:6x6 --tree mst --load poisson:100:1.0 \
//                   --protocol arrow --model sync --seed 7 [--csv]
//
// Options
//   --graph     path:N | ring:N | grid:RxC | torus:RxC | complete:N |
//               star:N | randtree:N | geometric:N:RADIUS
//   --tree      spt | mst | median | random | balanced (complete graphs)
//   --load      oneshot | poisson:COUNT:RATE | bursty:B:SIZE:GAP |
//               sequential:COUNT:GAP | hotspot:COUNT:RATE:NODE:P
//   --protocol  arrow | centralized | ivy | reversal
//   --model     sync | scaled:F | uniform | exp      (arrow only)
//   --seed      u64 seed (default 1)
//   --csv       emit per-request CSV instead of the human-readable report
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "analysis/competitive.hpp"
#include "exp/experiment.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/spanning_tree.hpp"
#include "sim/latency.hpp"
#include "support/random.hpp"
#include "workload/workloads.hpp"

using namespace arrowdq;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "arrowdq_cli: %s\n(see the header comment of examples/arrowdq_cli.cpp)\n",
               msg);
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    auto pos = s.find(sep, start);
    parts.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return parts;
}

Graph parse_graph(const std::string& spec, Rng& rng) {
  auto p = split(spec, ':');
  const std::string& kind = p[0];
  auto arg = [&](std::size_t i) -> long {
    if (i >= p.size()) usage("missing graph parameter");
    return std::atol(p[i].c_str());
  };
  if (kind == "path") return make_path(static_cast<NodeId>(arg(1)));
  if (kind == "ring") return make_ring(static_cast<NodeId>(arg(1)));
  if (kind == "complete") return make_complete(static_cast<NodeId>(arg(1)));
  if (kind == "star") return make_star(static_cast<NodeId>(arg(1)));
  if (kind == "randtree") return make_random_tree(static_cast<NodeId>(arg(1)), rng);
  if (kind == "grid" || kind == "torus") {
    auto rc = split(p.size() > 1 ? p[1] : "", 'x');
    if (rc.size() != 2) usage("grid/torus need RxC");
    auto r = static_cast<NodeId>(std::atol(rc[0].c_str()));
    auto c = static_cast<NodeId>(std::atol(rc[1].c_str()));
    return kind == "grid" ? make_grid(r, c) : make_torus(r, c);
  }
  if (kind == "geometric") {
    if (p.size() < 3) usage("geometric:N:RADIUS");
    return make_random_geometric(static_cast<NodeId>(arg(1)), std::atof(p[2].c_str()), rng);
  }
  usage("unknown graph kind");
}

Tree parse_tree(const std::string& kind, const Graph& g, Rng& rng) {
  if (kind == "spt") return shortest_path_tree(g, 0);
  if (kind == "mst") return kruskal_mst(g, 0);
  if (kind == "median") return median_spt(g);
  if (kind == "random") return random_spanning_tree(g, 0, rng);
  if (kind == "balanced") return balanced_binary_overlay(g);
  usage("unknown tree kind");
}

RequestSet parse_load(const std::string& spec, NodeId n, NodeId root, Rng& rng) {
  auto p = split(spec, ':');
  const std::string& kind = p[0];
  auto iarg = [&](std::size_t i) -> long {
    if (i >= p.size()) usage("missing load parameter");
    return std::atol(p[i].c_str());
  };
  auto farg = [&](std::size_t i) -> double {
    if (i >= p.size()) usage("missing load parameter");
    return std::atof(p[i].c_str());
  };
  if (kind == "oneshot") return one_shot_all(n, root);
  if (kind == "poisson")
    return poisson_uniform(n, root, static_cast<int>(iarg(1)), farg(2), rng);
  if (kind == "bursty")
    return bursty(n, root, static_cast<int>(iarg(1)), static_cast<int>(iarg(2)), iarg(3), rng);
  if (kind == "sequential")
    return sequential_random(n, root, static_cast<int>(iarg(1)), iarg(2), rng);
  if (kind == "hotspot")
    return poisson_hotspot(n, root, static_cast<int>(iarg(1)), farg(2),
                           static_cast<NodeId>(iarg(3)), farg(4), rng);
  usage("unknown load kind");
}

LatencySpec parse_model(const std::string& spec, std::uint64_t seed) {
  auto p = split(spec, ':');
  if (p[0] == "sync") return LatencySpec::synchronous();
  if (p[0] == "scaled") return LatencySpec::scaled(p.size() > 1 ? std::atof(p[1].c_str()) : 0.5);
  if (p[0] == "uniform") return LatencySpec::uniform_async(seed ^ 0xFACE);
  if (p[0] == "exp") return LatencySpec::truncated_exp(seed ^ 0xBEEF);
  usage("unknown latency model");
}

ProtocolSpec parse_protocol(const std::string& proto, NodeId root) {
  if (proto == "arrow") return ProtocolSpec::arrow_one_shot();
  if (proto == "centralized") return ProtocolSpec::centralized(root);
  if (proto == "ivy")
    return ProtocolSpec::pointer_forwarding(ForwardingMode::kCompressToRequester);
  if (proto == "reversal")
    return ProtocolSpec::pointer_forwarding(ForwardingMode::kReverseToSender);
  usage("unknown protocol");
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_spec = "grid:5x5", tree_spec = "spt", load_spec = "poisson:50:1.0";
  std::string proto = "arrow", model_spec = "sync";
  std::uint64_t seed = 1;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) usage(flag);
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--graph")) graph_spec = need("--graph needs a value");
    else if (!std::strcmp(argv[i], "--tree")) tree_spec = need("--tree needs a value");
    else if (!std::strcmp(argv[i], "--load")) load_spec = need("--load needs a value");
    else if (!std::strcmp(argv[i], "--protocol")) proto = need("--protocol needs a value");
    else if (!std::strcmp(argv[i], "--model")) model_spec = need("--model needs a value");
    else if (!std::strcmp(argv[i], "--seed")) seed = std::strtoull(need("--seed needs a value").c_str(), nullptr, 10);
    else if (!std::strcmp(argv[i], "--csv")) csv = true;
    else usage("unknown flag");
  }

  Rng rng(seed);
  Graph g = parse_graph(graph_spec, rng);
  Tree t = parse_tree(tree_spec, g, rng);
  Rng wrng = rng.split();
  RequestSet reqs = parse_load(load_spec, g.node_count(), t.root(), wrng);

  // One declarative experiment: the parsed graph/tree/load become a custom
  // topology + fixed workload, the protocol and model are just axis values.
  // All protocols route messages over dG of the parsed graph (the baselines
  // through the APSP oracle), so topology changes affect every column.
  Experiment e;
  e.protocol = parse_protocol(proto, t.root());
  e.topology = TopologySpec::custom(g, t);
  e.workload = WorkloadSpec::fixed(reqs);
  e.latency = parse_model(model_spec, seed);
  e.keep_outcome = true;
  RunResult result = run_experiment(e);
  const QueuingOutcome& out = *result.outcome;

  if (csv) {
    std::printf("request,node,issue_units,predecessor,latency_units,hops,distance_units\n");
    for (RequestId id = 1; id <= reqs.size(); ++id) {
      const auto& c = out.completion(id);
      std::printf("%d,%d,%.3f,%d,%.3f,%d,%lld\n", id, reqs.by_id(id).node,
                  ticks_to_units_d(reqs.by_id(id).time), c.predecessor,
                  ticks_to_units_d(c.completed_at - reqs.by_id(id).time), c.hops,
                  static_cast<long long>(c.distance));
    }
    return 0;
  }

  auto q = tree_quality(g, t);
  std::printf("graph=%s n=%d | tree=%s D=%lld stretch=%.2f | load=%s |R|=%d | protocol=%s\n",
              graph_spec.c_str(), g.node_count(), tree_spec.c_str(),
              static_cast<long long>(q.tree_diameter), q.stretch, load_spec.c_str(),
              reqs.size(), proto.c_str());
  std::printf("total latency : %.1f units\n", ticks_to_units_d(out.total_latency(reqs)));
  std::printf("total hops    : %lld (%.2f per request)\n",
              static_cast<long long>(out.total_hops()),
              static_cast<double>(out.total_hops()) / std::max(1, reqs.size()));
  if (proto == "arrow" && model_spec == "sync" && reqs.size() <= 64) {
    auto rep = analyze_competitive(g, t, reqs, out, 12);
    std::printf("OPT bound     : %.1f units (%s)\n", ticks_to_units_d(rep.opt.value),
                rep.opt.exact >= 0 ? "exact" : "mst/12");
    std::printf("ratio         : %.2f (reference s*log2 D = %.2f)\n", rep.ratio, rep.s_log_d);
  }
  return 0;
}
