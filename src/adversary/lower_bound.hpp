// Adversarial request constructions from Section 4 (Theorems 4.1 and 4.2).
//
// Theorem 4.1 (path construction): on a path v0..vD with root v0, a
// recursively defined request set forces arrow to sweep the whole path once
// per time level — cost ~ k*D — while an optimal offline ordering pays only
// O(D) (the "comb" MST bound). The recursion:
//   start:  r = (v_D, k, log2 D, +1)
//   expand: (v_i, t, s, d) with t > 0 spawns (v_{i - d*2^j}, t-1, j, -d)
//           for j = 0..s-1,
// plus boundary requests at v_0 and v_D at every time 0..k-1 (Figure 9).
//
// Theorem 4.2 (stretch-s variant): scale the construction onto a path of
// length D = D' * s whose tree is the path but whose graph has unit-weight
// shortcut edges between consecutive multiples of s, making the tree stretch
// exactly s.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "proto/request.hpp"
#include "support/types.hpp"

namespace arrowdq {

struct LowerBoundInstance {
  Graph graph;          // communication graph G
  Tree tree;            // spanning tree T (the path), rooted at v0
  RequestSet requests;  // the adversarial request set (root v0)
  int k = 0;            // number of time levels
  Weight diameter = 0;  // D, the tree diameter
  Weight stretch = 1;   // s (1 for Theorem 4.1 instances)
};

/// The raw (node index, time level) pairs of the recursion, de-duplicated
/// and sorted. Exposed for tests; times are levels (units), not ticks.
std::vector<std::pair<NodeId, Weight>> theorem41_request_pattern(int log2_D, int k);

/// Theorem 4.1 instance: G = T = path of length D = 2^log2_D; k time levels
/// (k <= 0 selects the Figure 9 default k = log2 D). Expected arrow cost is
/// ~ k*D; expected optimal cost is O(D).
LowerBoundInstance make_theorem41_instance(int log2_D, int k = 0);

/// Theorem 4.2 instance: path of length D' * s with shortcuts every s hops;
/// requests of the Theorem 4.1 pattern for diameter D' = 2^log2_Dp, mapped
/// to node i*s with times scaled by s.
LowerBoundInstance make_theorem42_instance(int log2_Dp, Weight s, int k = 0);

/// The ordering the paper's Theorem 4.1 narrative assigns to arrow: strictly
/// by time level, left-to-right on even levels and right-to-left on odd ones
/// (Figure 9). Returns request ids starting with the virtual root request.
///
/// Reproduction note: this order costs ~k*D under cA = dT, which is the
/// quantity the theorem's ratio uses. A live synchronous execution of the
/// protocol does NOT produce this order — v0's time-stacked requests
/// complete locally before any message can reach v0, and the resulting
/// nearest-neighbour order (Lemma 3.8) merges time levels diagonally,
/// costing only Theta(D) on this instance. The bench reports both numbers.
std::vector<RequestId> theorem41_intended_order(const LowerBoundInstance& inst);

/// Sum of dT over consecutive pairs of `order` (the cost cA the paper's
/// lower-bound argument charges to arrow), in ticks.
Time order_tree_cost(const LowerBoundInstance& inst, const std::vector<RequestId>& order);

}  // namespace arrowdq
