// ASCII space-time rendering of request sets and queuing orders on a path,
// reproducing Figure 9's visual: the path runs horizontally, time advances
// vertically, each request is a dot, and consecutive requests in the order
// are connected (conceptually) by the message that links them.
#pragma once

#include <string>
#include <vector>

#include "proto/request.hpp"
#include "support/types.hpp"

namespace arrowdq {

struct SpacetimeOptions {
  /// Horizontal compression: one character column per `node_step` nodes.
  NodeId node_step = 1;
  /// Vertical compression: one row per `time_step` units.
  Weight time_step = 1;
  /// Label each dot with the last digit of its position in the order
  /// instead of 'o'.
  bool label_order = false;
};

/// Render requests placed on a path graph (nodes 0..n-1). Rows are time
/// levels (earliest on top), columns are nodes (v0 left). Dots mark
/// requests; when `order` is supplied and label_order is set, dots show the
/// order position mod 10.
std::string render_spacetime(NodeId path_length, const RequestSet& reqs,
                             const std::vector<RequestId>& order, const SpacetimeOptions& opts);

std::string render_spacetime(NodeId path_length, const RequestSet& reqs,
                             const SpacetimeOptions& opts = {});

}  // namespace arrowdq
