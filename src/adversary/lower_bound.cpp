#include "adversary/lower_bound.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "support/assert.hpp"

namespace arrowdq {

namespace {

void expand(NodeId i, int t, int size, int dir, Weight D,
            std::set<std::pair<Weight, NodeId>>& acc) {
  // Record (time, node); recursion on requests with t > 0.
  ARROWDQ_ASSERT(i >= 0 && i <= D);
  acc.insert({t, i});
  if (t <= 0) return;
  for (int j = 0; j < size; ++j) {
    NodeId child = i - static_cast<NodeId>(dir) * (NodeId{1} << j);
    if (child < 0 || child > D) continue;  // clipped at the path boundary
    expand(child, t - 1, j, -dir, D, acc);
  }
}

int default_k(int log2_D) { return std::max(2, log2_D); }

}  // namespace

std::vector<std::pair<NodeId, Weight>> theorem41_request_pattern(int log2_D, int k) {
  ARROWDQ_ASSERT(log2_D >= 1);
  if (k <= 0) k = default_k(log2_D);
  const Weight D = Weight{1} << log2_D;
  std::set<std::pair<Weight, NodeId>> acc;  // (time, node), de-duplicated
  expand(static_cast<NodeId>(D), k, log2_D, +1, D, acc);
  for (int t = 0; t < k; ++t) {
    acc.insert({t, 0});
    acc.insert({t, static_cast<NodeId>(D)});
  }
  std::vector<std::pair<NodeId, Weight>> out;
  out.reserve(acc.size());
  for (const auto& [t, node] : acc) out.emplace_back(node, t);
  return out;
}

LowerBoundInstance make_theorem41_instance(int log2_D, int k) {
  if (k <= 0) k = default_k(log2_D);
  const Weight D = Weight{1} << log2_D;
  auto pattern = theorem41_request_pattern(log2_D, k);

  LowerBoundInstance inst{make_path(static_cast<NodeId>(D) + 1),
                          shortest_path_tree(make_path(static_cast<NodeId>(D) + 1), 0),
                          RequestSet::from_units(0, pattern),
                          k,
                          D,
                          /*stretch=*/1};
  return inst;
}

LowerBoundInstance make_theorem42_instance(int log2_Dp, Weight s, int k) {
  ARROWDQ_ASSERT(s >= 1);
  if (k <= 0) k = default_k(log2_Dp);
  const Weight Dp = Weight{1} << log2_Dp;
  const Weight D = Dp * s;
  auto n = static_cast<NodeId>(D) + 1;

  // G: the path plus unit shortcuts between consecutive multiples of s.
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, 1);
  if (s > 1) {
    for (NodeId i = 0; i + static_cast<NodeId>(s) < n; i += static_cast<NodeId>(s))
      g.add_edge(i, i + static_cast<NodeId>(s), 1);
  }

  // T: the bare path (shortcuts excluded), rooted at v0.
  std::vector<NodeId> parent(static_cast<std::size_t>(n), kNoNode);
  for (NodeId i = 1; i < n; ++i) parent[static_cast<std::size_t>(i)] = i - 1;
  Tree tree = Tree::from_parents(std::move(parent), 0);

  // Requests: Theorem 4.1 pattern on the virtual path P' of length Dp,
  // mapped to every s-th node, times scaled by s (each P' edge is now a
  // length-s tree path).
  auto pattern = theorem41_request_pattern(log2_Dp, k);
  std::vector<std::pair<NodeId, Weight>> mapped;
  mapped.reserve(pattern.size());
  for (const auto& [node, t] : pattern)
    mapped.emplace_back(node * static_cast<NodeId>(s), t * s);

  return LowerBoundInstance{std::move(g), std::move(tree),
                            RequestSet::from_units(0, std::move(mapped)), k, D, s};
}

std::vector<RequestId> theorem41_intended_order(const LowerBoundInstance& inst) {
  struct Item {
    Time t;
    NodeId node;
    RequestId id;
  };
  std::vector<Item> items;
  items.reserve(static_cast<std::size_t>(inst.requests.size()));
  for (const auto& r : inst.requests.real()) items.push_back({r.time, r.node, r.id});
  std::sort(items.begin(), items.end(), [&](const Item& a, const Item& b) {
    if (a.t != b.t) return a.t < b.t;
    // Levels alternate sweep direction; level index = time in units.
    bool even = (a.t / units_to_ticks(1)) % 2 == 0;
    return even ? a.node < b.node : a.node > b.node;
  });
  std::vector<RequestId> order;
  order.reserve(items.size() + 1);
  order.push_back(kRootRequest);
  for (const auto& it : items) order.push_back(it.id);
  return order;
}

Time order_tree_cost(const LowerBoundInstance& inst, const std::vector<RequestId>& order) {
  Time total = 0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const auto& a = inst.requests.by_id(order[i]);
    const auto& b = inst.requests.by_id(order[i + 1]);
    total += units_to_ticks(inst.tree.distance(a.node, b.node));
  }
  return total;
}

}  // namespace arrowdq
