#include "adversary/spacetime.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace arrowdq {

std::string render_spacetime(NodeId path_length, const RequestSet& reqs,
                             const std::vector<RequestId>& order,
                             const SpacetimeOptions& opts) {
  ARROWDQ_ASSERT(path_length >= 1);
  ARROWDQ_ASSERT(opts.node_step >= 1);
  ARROWDQ_ASSERT(opts.time_step >= 1);

  Weight max_t = 0;
  for (const auto& r : reqs.real()) max_t = std::max(max_t, ticks_to_units(r.time));

  auto cols = static_cast<std::size_t>((path_length - 1) / opts.node_step + 1);
  auto rows = static_cast<std::size_t>(max_t / opts.time_step + 1);
  std::vector<std::string> grid(rows, std::string(cols, '.'));

  std::vector<std::int32_t> pos(static_cast<std::size_t>(reqs.size()) + 1, -1);
  for (std::size_t i = 0; i < order.size(); ++i)
    pos[static_cast<std::size_t>(order[i])] = static_cast<std::int32_t>(i);

  for (const auto& r : reqs.real()) {
    auto row = static_cast<std::size_t>(ticks_to_units(r.time) / opts.time_step);
    auto col = static_cast<std::size_t>(r.node / opts.node_step);
    ARROWDQ_ASSERT(row < rows && col < cols);
    char mark = 'o';
    if (opts.label_order && pos[static_cast<std::size_t>(r.id)] >= 0)
      mark = static_cast<char>('0' + pos[static_cast<std::size_t>(r.id)] % 10);
    grid[row][col] = mark;
  }

  std::ostringstream out;
  out << "time v, path -> (v0 left, v" << path_length - 1 << " right)";
  if (opts.node_step > 1 || opts.time_step > 1)
    out << "  [1 col = " << opts.node_step << " nodes, 1 row = " << opts.time_step << " units]";
  out << "\n";
  for (std::size_t t = 0; t < rows; ++t)
    out << "t=" << t * static_cast<std::size_t>(opts.time_step) << "\t" << grid[t] << "\n";
  return out.str();
}

std::string render_spacetime(NodeId path_length, const RequestSet& reqs,
                             const SpacetimeOptions& opts) {
  return render_spacetime(path_length, reqs, {}, opts);
}

}  // namespace arrowdq
