#include "proto/queuing.hpp"

#include "support/assert.hpp"

namespace arrowdq {

QueuingOutcome::QueuingOutcome(std::int32_t request_count)
    : completions_(static_cast<std::size_t>(request_count) + 1),
      successor_(static_cast<std::size_t>(request_count) + 1, kNoRequest) {
  ARROWDQ_ASSERT(request_count >= 0);
}

void QueuingOutcome::record(const Completion& c) {
  ARROWDQ_ASSERT(c.request >= 1 &&
                 static_cast<std::size_t>(c.request) < completions_.size());
  ARROWDQ_ASSERT(c.predecessor >= 0 &&
                 static_cast<std::size_t>(c.predecessor) < completions_.size());
  auto& slot = completions_[static_cast<std::size_t>(c.request)];
  ARROWDQ_ASSERT_MSG(slot.request == kNoRequest, "request completed twice");
  slot = c;
  auto& succ = successor_[static_cast<std::size_t>(c.predecessor)];
  ARROWDQ_ASSERT_MSG(succ == kNoRequest, "two requests queued behind the same predecessor");
  succ = c.request;
  ++recorded_;
}

bool QueuingOutcome::is_complete() const { return recorded_ == request_count(); }

const Completion& QueuingOutcome::completion(RequestId id) const {
  ARROWDQ_ASSERT(id >= 1 && static_cast<std::size_t>(id) < completions_.size());
  const auto& c = completions_[static_cast<std::size_t>(id)];
  ARROWDQ_ASSERT_MSG(c.request != kNoRequest, "request never completed");
  return c;
}

RequestId QueuingOutcome::successor_of(RequestId id) const {
  ARROWDQ_ASSERT(id >= 0 && static_cast<std::size_t>(id) < successor_.size());
  return successor_[static_cast<std::size_t>(id)];
}

std::vector<RequestId> QueuingOutcome::order() const {
  std::vector<RequestId> out;
  out.reserve(completions_.size());
  RequestId cur = kRootRequest;
  out.push_back(cur);
  while (successor_[static_cast<std::size_t>(cur)] != kNoRequest) {
    cur = successor_[static_cast<std::size_t>(cur)];
    out.push_back(cur);
  }
  ARROWDQ_ASSERT_MSG(out.size() == completions_.size(),
                     "successor chain does not cover all requests");
  return out;
}

Time QueuingOutcome::total_latency(const RequestSet& reqs) const {
  ARROWDQ_ASSERT(reqs.size() == request_count());
  Time total = 0;
  for (RequestId id = 1; id <= request_count(); ++id) {
    const auto& c = completion(id);
    ARROWDQ_ASSERT(c.completed_at != kTimeNever);
    Time latency = c.completed_at - reqs.by_id(id).time;
    ARROWDQ_ASSERT(latency >= 0);
    total += latency;
  }
  return total;
}

std::int64_t QueuingOutcome::total_hops() const {
  std::int64_t total = 0;
  for (RequestId id = 1; id <= request_count(); ++id) total += completion(id).hops;
  return total;
}

Weight QueuingOutcome::total_distance() const {
  Weight total = 0;
  for (RequestId id = 1; id <= request_count(); ++id) total += completion(id).distance;
  return total;
}

void QueuingOutcome::validate(const RequestSet& reqs) const {
  ARROWDQ_ASSERT(reqs.size() == request_count());
  ARROWDQ_ASSERT_MSG(is_complete(), "not all requests completed");
  auto chain = order();  // asserts permutation structure internally
  ARROWDQ_ASSERT(chain.front() == kRootRequest);
  // Completion time of each request must not precede its issue time.
  for (RequestId id = 1; id <= request_count(); ++id) {
    const auto& c = completion(id);
    ARROWDQ_ASSERT(c.completed_at >= reqs.by_id(id).time);
  }
}

}  // namespace arrowdq
