// The result of running a queuing protocol on a request set, plus validation
// and cost extraction shared by the arrow protocol and all baselines.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/request.hpp"
#include "support/types.hpp"

namespace arrowdq {

/// Per-request completion record (Definitions 3.2/3.3).
struct Completion {
  RequestId request = kNoRequest;
  RequestId predecessor = kNoRequest;  // the request it was queued behind
  Time completed_at = kTimeNever;      // when the predecessor's node was informed
  std::int32_t hops = 0;               // messages the find/queue traversal used
  Weight distance = 0;                 // weighted length of the traversal (units)
};

class QueuingOutcome {
 public:
  explicit QueuingOutcome(std::int32_t request_count);

  void record(const Completion& c);
  bool is_complete() const;

  std::int32_t request_count() const { return static_cast<std::int32_t>(completions_.size()) - 1; }
  const Completion& completion(RequestId id) const;

  /// The request queued directly behind `id` (kNoRequest if none yet). Lets
  /// fault-recovery code splice a dangling successor chain back onto the
  /// live queue tail without mirroring the bookkeeping.
  RequestId successor_of(RequestId id) const;

  /// The total order as request ids starting from the root request 0.
  /// Asserts the successor records chain into a full permutation.
  std::vector<RequestId> order() const;

  /// Total latency (Definition 3.3): sum over requests of
  /// (completed_at - issue time), in ticks.
  Time total_latency(const RequestSet& reqs) const;

  /// Sum of hops over all requests.
  std::int64_t total_hops() const;
  /// Sum of weighted traversal distances (units).
  Weight total_distance() const;

  /// Validates against a request set: every real request completed, each
  /// predecessor used exactly once, order reachable from r0. Aborts on
  /// violation (these are protocol-correctness invariants).
  void validate(const RequestSet& reqs) const;

 private:
  std::vector<Completion> completions_;  // indexed by request id; [0] unused
  std::vector<RequestId> successor_;     // successor[p] = q iff q queued behind p
  std::int32_t recorded_ = 0;
};

}  // namespace arrowdq
