// Queuing requests and request sets.
//
// A request is the pair (v, t) of Section 3.1: node v asks to join the total
// order at time t. Requests are indexed 1..|R| in non-decreasing time order
// (ties broken by insertion order, exactly the paper's indexing convention);
// index 0 is reserved for the virtual root request r0 = (root, 0).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/types.hpp"

namespace arrowdq {

struct Request {
  RequestId id = kNoRequest;
  NodeId node = kNoNode;
  Time time = 0;  // issue time in ticks
};

/// An immutable, validated set of queuing requests for one execution.
class RequestSet {
 public:
  /// Build from (node, issue-time-in-ticks) pairs; sorts by time (stable) and
  /// assigns ids 1..n. `root` is the initial sink; the virtual root request
  /// r0 = (root, 0) is stored at index 0.
  RequestSet(NodeId root, std::vector<std::pair<NodeId, Time>> items);

  NodeId root() const { return root_; }

  /// Number of real requests |R| (excludes r0).
  std::int32_t size() const { return static_cast<std::int32_t>(reqs_.size()) - 1; }
  bool empty() const { return size() == 0; }

  /// Requests indexed by id; id 0 is r0.
  const Request& by_id(RequestId id) const;
  /// All requests including r0 at index 0, in id (= time) order.
  std::span<const Request> all() const { return reqs_; }
  /// Real requests only (ids 1..n).
  std::span<const Request> real() const { return {reqs_.data() + 1, reqs_.size() - 1}; }

  /// Largest issue time among real requests (t_|R| in the paper); 0 if empty.
  Time last_issue_time() const;

  /// Convenience: build with times given in whole units instead of ticks.
  static RequestSet from_units(NodeId root, std::vector<std::pair<NodeId, Weight>> items);

 private:
  NodeId root_;
  std::vector<Request> reqs_;
};

}  // namespace arrowdq
