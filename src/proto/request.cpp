#include "proto/request.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arrowdq {

RequestSet::RequestSet(NodeId root, std::vector<std::pair<NodeId, Time>> items) : root_(root) {
  ARROWDQ_ASSERT_MSG(root >= 0, "root must be a node id");
  std::stable_sort(items.begin(), items.end(),
                   [](const auto& a, const auto& b) { return a.second < b.second; });
  reqs_.reserve(items.size() + 1);
  reqs_.push_back(Request{kRootRequest, root, 0});
  RequestId next = 1;
  for (const auto& [node, t] : items) {
    ARROWDQ_ASSERT_MSG(t >= 0, "request times are non-negative");
    ARROWDQ_ASSERT_MSG(node >= 0, "request node must be >= 0");
    reqs_.push_back(Request{next++, node, t});
  }
}

const Request& RequestSet::by_id(RequestId id) const {
  ARROWDQ_ASSERT(id >= 0 && static_cast<std::size_t>(id) < reqs_.size());
  return reqs_[static_cast<std::size_t>(id)];
}

Time RequestSet::last_issue_time() const {
  return reqs_.size() > 1 ? reqs_.back().time : 0;
}

RequestSet RequestSet::from_units(NodeId root, std::vector<std::pair<NodeId, Weight>> items) {
  std::vector<std::pair<NodeId, Time>> ticks;
  ticks.reserve(items.size());
  for (const auto& [node, t] : items) ticks.emplace_back(node, units_to_ticks(t));
  return RequestSet(root, std::move(ticks));
}

}  // namespace arrowdq
