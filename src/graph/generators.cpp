#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"

namespace arrowdq {

Graph make_path(NodeId n, Weight weight) {
  ARROWDQ_ASSERT_MSG(n >= 1, "node count must be >= 1");
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, weight);
  return g;
}

Graph make_ring(NodeId n, Weight weight) {
  ARROWDQ_ASSERT_MSG(n >= 3, "ring needs >= 3 nodes");
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n, weight);
  return g;
}

Graph make_star(NodeId n, Weight weight) {
  ARROWDQ_ASSERT_MSG(n >= 1, "node count must be >= 1");
  Graph g(n);
  for (NodeId i = 1; i < n; ++i) g.add_edge(0, i, weight);
  return g;
}

Graph make_complete(NodeId n, Weight weight) {
  ARROWDQ_ASSERT_MSG(n >= 1, "node count must be >= 1");
  Graph g(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) g.add_edge(i, j, weight);
  return g;
}

Graph make_grid(NodeId rows, NodeId cols, Weight weight) {
  ARROWDQ_ASSERT_MSG(rows >= 1 && cols >= 1, "grid dims must be >= 1");
  Graph g(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r)
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1), weight);
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c), weight);
    }
  return g;
}

Graph make_torus(NodeId rows, NodeId cols, Weight weight) {
  ARROWDQ_ASSERT_MSG(rows >= 3 && cols >= 3, "torus dims must be >= 3");
  Graph g(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r)
    for (NodeId c = 0; c < cols; ++c) {
      g.add_edge(id(r, c), id(r, (c + 1) % cols), weight);
      g.add_edge(id(r, c), id((r + 1) % rows, c), weight);
    }
  return g;
}

Graph make_balanced_kary_tree(NodeId n, NodeId k, Weight weight) {
  ARROWDQ_ASSERT_MSG(n >= 1 && k >= 1, "need n >= 1 and k >= 1");
  Graph g(n);
  for (NodeId i = 1; i < n; ++i) g.add_edge((i - 1) / k, i, weight);
  return g;
}

Graph make_caterpillar(NodeId spine, NodeId legs, Weight weight) {
  ARROWDQ_ASSERT_MSG(spine >= 1 && legs >= 0, "need spine >= 1 and legs >= 0");
  Graph g(spine * (1 + legs));
  for (NodeId i = 0; i + 1 < spine; ++i) g.add_edge(i, i + 1, weight);
  for (NodeId i = 0; i < spine; ++i)
    for (NodeId l = 0; l < legs; ++l) g.add_edge(i, spine + i * legs + l, weight);
  return g;
}

Graph make_erdos_renyi(NodeId n, double p, Rng& rng) {
  ARROWDQ_ASSERT_MSG(n >= 1, "node count must be >= 1");
  double p_min = n > 1 ? 1.2 * std::log(static_cast<double>(n)) / static_cast<double>(n) : 0.0;
  p = std::clamp(p, p_min, 1.0);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Graph g(n);
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = i + 1; j < n; ++j)
        if (rng.next_bool(p)) g.add_edge(i, j, 1);
    if (g.is_connected()) return g;
  }
  // With p >= 1.2 ln n / n, 1000 consecutive disconnected samples is
  // astronomically unlikely; fall back to a connected backbone plus noise.
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, 1);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 2; j < n; ++j)
      if (rng.next_bool(p)) g.add_edge(i, j, 1);
  return g;
}

Graph make_random_geometric(NodeId n, double radius, Rng& rng, Weight weight_scale) {
  ARROWDQ_ASSERT_MSG(n >= 1, "node count must be >= 1");
  ARROWDQ_ASSERT_MSG(weight_scale >= 1, "weight scale must be >= 1");
  for (int attempt = 0;; ++attempt) {
    std::vector<double> x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = rng.next_double();
      y[static_cast<std::size_t>(i)] = rng.next_double();
    }
    Graph g(n);
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = i + 1; j < n; ++j) {
        double dx = x[static_cast<std::size_t>(i)] - x[static_cast<std::size_t>(j)];
        double dy = y[static_cast<std::size_t>(i)] - y[static_cast<std::size_t>(j)];
        double d = std::sqrt(dx * dx + dy * dy);
        if (d <= radius) {
          auto w = static_cast<Weight>(
              std::max(1.0, std::ceil(d * static_cast<double>(weight_scale))));
          g.add_edge(i, j, w);
        }
      }
    if (g.is_connected()) return g;
    if (attempt % 10 == 9) radius = std::min(1.5, radius * 1.25);  // widen until connected
  }
}

Graph make_random_tree(NodeId n, Rng& rng, Weight weight) {
  ARROWDQ_ASSERT_MSG(n >= 1, "node count must be >= 1");
  Graph g(n);
  if (n == 1) return g;
  if (n == 2) {
    g.add_edge(0, 1, weight);
    return g;
  }
  // Decode a random Pruefer sequence of length n-2.
  std::vector<NodeId> pruefer(static_cast<std::size_t>(n - 2));
  for (auto& p : pruefer) p = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
  std::vector<NodeId> deg(static_cast<std::size_t>(n), 1);
  for (NodeId p : pruefer) ++deg[static_cast<std::size_t>(p)];
  // Min-leaf extraction via a pointer sweep (classic O(n) decode).
  NodeId ptr = 0;
  while (deg[static_cast<std::size_t>(ptr)] != 1) ++ptr;
  NodeId leaf = ptr;
  for (NodeId p : pruefer) {
    g.add_edge(leaf, p, weight);
    if (--deg[static_cast<std::size_t>(p)] == 1 && p < ptr) {
      leaf = p;
    } else {
      ++ptr;
      while (deg[static_cast<std::size_t>(ptr)] != 1) ++ptr;
      leaf = ptr;
    }
  }
  g.add_edge(leaf, n - 1, weight);
  return g;
}

Graph make_hypercube(int dimensions, Weight weight) {
  ARROWDQ_ASSERT_MSG(dimensions >= 0 && dimensions <= 20, "dimensions must be in [0, 20]");
  auto n = static_cast<NodeId>(NodeId{1} << dimensions);
  Graph g(n);
  for (NodeId v = 0; v < n; ++v)
    for (int b = 0; b < dimensions; ++b) {
      NodeId u = v ^ (NodeId{1} << b);
      if (v < u) g.add_edge(v, u, weight);
    }
  return g;
}

Graph make_lollipop(NodeId clique, NodeId tail, Weight weight) {
  ARROWDQ_ASSERT_MSG(clique >= 1 && tail >= 0, "need clique >= 1 and tail >= 0");
  Graph g(clique + tail);
  for (NodeId i = 0; i < clique; ++i)
    for (NodeId j = i + 1; j < clique; ++j) g.add_edge(i, j, weight);
  for (NodeId i = 0; i < tail; ++i) {
    NodeId from = i == 0 ? clique - 1 : clique + i - 1;
    g.add_edge(from, clique + i, weight);
  }
  return g;
}

}  // namespace arrowdq
