#include "graph/union_find.hpp"

#include "support/assert.hpp"

namespace arrowdq {

UnionFind::UnionFind(NodeId n)
    : parent_(static_cast<std::size_t>(n)), rank_(static_cast<std::size_t>(n), 0), sets_(n) {
  for (NodeId i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
}

NodeId UnionFind::find(NodeId x) {
  ARROWDQ_ASSERT(x >= 0 && static_cast<std::size_t>(x) < parent_.size());
  while (parent_[static_cast<std::size_t>(x)] != x) {
    auto& p = parent_[static_cast<std::size_t>(x)];
    p = parent_[static_cast<std::size_t>(p)];  // path halving
    x = p;
  }
  return x;
}

bool UnionFind::unite(NodeId x, NodeId y) {
  NodeId rx = find(x), ry = find(y);
  if (rx == ry) return false;
  if (rank_[static_cast<std::size_t>(rx)] < rank_[static_cast<std::size_t>(ry)]) std::swap(rx, ry);
  parent_[static_cast<std::size_t>(ry)] = rx;
  if (rank_[static_cast<std::size_t>(rx)] == rank_[static_cast<std::size_t>(ry)])
    ++rank_[static_cast<std::size_t>(rx)];
  --sets_;
  return true;
}

}  // namespace arrowdq
