#include "graph/implicit.hpp"

#include <utility>

namespace arrowdq {

std::vector<NodeId> ImplicitTopology::neighbors(NodeId v) const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(degree(v)));
  for_each_neighbor(v, [&](NodeId w) { out.push_back(w); });
  return out;
}

Tree ImplicitTopology::materialize_tree() const {
  ARROWDQ_ASSERT_MSG(n >= 1, "implicit topology without nodes");
  ARROWDQ_ASSERT_MSG(root >= 0 && root < n, "implicit topology root out of range");
  ARROWDQ_ASSERT_MSG(!balanced_binary || (family == ImplicitFamily::kComplete && root == 0),
                     "balanced binary overlay requires the complete family rooted at 0");
  std::vector<NodeId> parent(static_cast<std::size_t>(n), kNoNode);
  std::vector<Weight> wpar(static_cast<std::size_t>(n), 1);
  for (NodeId v = 0; v < n; ++v)
    if (v != root) parent[static_cast<std::size_t>(v)] = tree_parent(v);
  return Tree(std::move(parent), std::move(wpar), root);
}

}  // namespace arrowdq
