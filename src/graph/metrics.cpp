#include "graph/metrics.hpp"

#include "support/assert.hpp"

namespace arrowdq {

StretchReport stretch_exact(const AllPairs& apsp, const Tree& t) {
  StretchReport rep;
  double sum = 0.0;
  std::int64_t pairs = 0;
  for (NodeId u = 0; u < apsp.node_count(); ++u) {
    for (NodeId v = u + 1; v < apsp.node_count(); ++v) {
      Weight dg = apsp.dist(u, v);
      ARROWDQ_ASSERT_MSG(dg > 0, "stretch of a disconnected graph");
      double ratio = static_cast<double>(t.distance(u, v)) / static_cast<double>(dg);
      sum += ratio;
      ++pairs;
      if (ratio > rep.max_stretch) {
        rep.max_stretch = ratio;
        rep.worst_u = u;
        rep.worst_v = v;
      }
    }
  }
  if (pairs > 0) rep.avg_stretch = sum / static_cast<double>(pairs);
  return rep;
}

StretchReport stretch_exact(const Graph& g, const Tree& t) {
  ARROWDQ_ASSERT(g.node_count() == t.node_count());
  return stretch_exact(AllPairs(g), t);
}

StretchReport stretch_sampled(const Graph& g, const Tree& t, int samples, Rng& rng) {
  ARROWDQ_ASSERT(g.node_count() == t.node_count());
  ARROWDQ_ASSERT(samples > 0);
  StretchReport rep;
  double sum = 0.0;
  std::int64_t pairs = 0;
  auto n = static_cast<std::uint64_t>(g.node_count());
  NodeId last_source = kNoNode;
  std::vector<Weight> dist;
  for (int i = 0; i < samples; ++i) {
    auto u = static_cast<NodeId>(rng.next_below(n));
    auto v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    if (u != last_source) {
      dist = sssp(g, u);
      last_source = u;
    }
    Weight dg = dist[static_cast<std::size_t>(v)];
    ARROWDQ_ASSERT(dg > 0);
    double ratio = static_cast<double>(t.distance(u, v)) / static_cast<double>(dg);
    sum += ratio;
    ++pairs;
    if (ratio > rep.max_stretch) {
      rep.max_stretch = ratio;
      rep.worst_u = u;
      rep.worst_v = v;
    }
  }
  if (pairs > 0) rep.avg_stretch = sum / static_cast<double>(pairs);
  return rep;
}

TreeQuality tree_quality(const Graph& g, const Tree& t) {
  TreeQuality q;
  q.nodes = g.node_count();
  AllPairs apsp(g);
  q.graph_diameter = apsp.diameter();
  q.tree_diameter = t.diameter();
  q.stretch = stretch_exact(apsp, t).max_stretch;
  q.tree_weight = t.as_graph().total_weight();
  return q;
}

}  // namespace arrowdq
