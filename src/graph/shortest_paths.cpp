#include "graph/shortest_paths.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"

namespace arrowdq {

namespace {
struct HeapItem {
  Weight dist;
  NodeId node;
  bool operator>(const HeapItem& o) const {
    return dist != o.dist ? dist > o.dist : node > o.node;
  }
};
}  // namespace

std::vector<Weight> sssp_with_parents(const Graph& g, NodeId source,
                                      std::vector<NodeId>& parents) {
  ARROWDQ_ASSERT(source >= 0 && source < g.node_count());
  std::vector<Weight> dist(static_cast<std::size_t>(g.node_count()), kUnreachable);
  parents.assign(static_cast<std::size_t>(g.node_count()), kNoNode);
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  dist[static_cast<std::size_t>(source)] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[static_cast<std::size_t>(v)]) continue;  // stale entry
    for (const auto& he : g.neighbors(v)) {
      Weight nd = d + he.weight;
      auto& cur = dist[static_cast<std::size_t>(he.to)];
      if (cur == kUnreachable || nd < cur) {
        cur = nd;
        parents[static_cast<std::size_t>(he.to)] = v;
        heap.push({nd, he.to});
      }
    }
  }
  return dist;
}

std::vector<Weight> sssp(const Graph& g, NodeId source) {
  std::vector<NodeId> parents;
  return sssp_with_parents(g, source, parents);
}

std::vector<Weight> bfs_hops(const Graph& g, NodeId source) {
  ARROWDQ_ASSERT(source >= 0 && source < g.node_count());
  std::vector<Weight> dist(static_cast<std::size_t>(g.node_count()), kUnreachable);
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    for (const auto& he : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(he.to)] == kUnreachable) {
        dist[static_cast<std::size_t>(he.to)] = dist[static_cast<std::size_t>(v)] + 1;
        q.push(he.to);
      }
    }
  }
  return dist;
}

AllPairs::AllPairs(const Graph& g) {
  dist_.reserve(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) dist_.push_back(sssp(g, v));
}

Weight AllPairs::dist(NodeId u, NodeId v) const {
  ARROWDQ_ASSERT(u >= 0 && u < node_count());
  ARROWDQ_ASSERT(v >= 0 && v < node_count());
  return dist_[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)];
}

Weight AllPairs::diameter() const {
  Weight best = 0;
  for (const auto& row : dist_)
    for (Weight d : row) {
      ARROWDQ_ASSERT_MSG(d != kUnreachable, "diameter of a disconnected graph");
      best = std::max(best, d);
    }
  return best;
}

Weight AllPairs::radius() const {
  Weight best = kUnreachable;
  for (const auto& row : dist_) {
    Weight ecc = 0;
    for (Weight d : row) {
      ARROWDQ_ASSERT_MSG(d != kUnreachable, "radius of a disconnected graph");
      ecc = std::max(ecc, d);
    }
    if (best == kUnreachable || ecc < best) best = ecc;
  }
  return best;
}

NodeId AllPairs::center() const {
  Weight best = kUnreachable;
  NodeId center = kNoNode;
  for (NodeId v = 0; v < node_count(); ++v) {
    Weight ecc = 0;
    for (Weight d : dist_[static_cast<std::size_t>(v)]) ecc = std::max(ecc, d);
    if (best == kUnreachable || ecc < best) {
      best = ecc;
      center = v;
    }
  }
  return center;
}

}  // namespace arrowdq
