// Single-source and all-pairs shortest paths on the network graph.
//
// Distances are in whole time units (Weight). The analysis uses dG for the
// optimal offline algorithm's message latencies and dT (tree distances,
// provided by Tree) for the arrow protocol.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"

namespace arrowdq {

inline constexpr Weight kUnreachable = -1;

/// Dijkstra from source; returns distances (kUnreachable where no path).
std::vector<Weight> sssp(const Graph& g, NodeId source);

/// Dijkstra from source, also emitting the shortest-path parent of each node
/// (kNoNode for the source / unreachable nodes).
std::vector<Weight> sssp_with_parents(const Graph& g, NodeId source,
                                      std::vector<NodeId>& parents);

/// Unweighted BFS hop counts (ignores weights).
std::vector<Weight> bfs_hops(const Graph& g, NodeId source);

/// All-pairs shortest paths (n Dijkstra runs). Suitable for the n <= a few
/// thousand graphs used in experiments; result[u][v] is dG(u, v).
class AllPairs {
 public:
  explicit AllPairs(const Graph& g);

  Weight dist(NodeId u, NodeId v) const;
  NodeId node_count() const { return static_cast<NodeId>(dist_.size()); }

  /// Maximum finite pairwise distance (graph diameter); asserts connectivity.
  Weight diameter() const;
  /// Minimum over u of max over v of dist (graph radius).
  Weight radius() const;
  /// A node achieving the radius (a center of the graph).
  NodeId center() const;

 private:
  std::vector<std::vector<Weight>> dist_;
};

}  // namespace arrowdq
