// Randomized local search for low-stretch spanning trees.
//
// Choosing the spanning tree is the knob the paper's Section 1.1 highlights:
// Demmer-Herlihy suggest an MST, Peleg-Reshef a minimum communication
// spanning tree, and Emek-Peleg approximate the minimum max-stretch tree.
// Exact minimum-stretch spanning trees are NP-hard, so we provide a
// practical edge-swap local search: starting from a seed tree, repeatedly
// try replacing a tree edge by a non-tree edge (the swap must reconnect the
// two components) and keep the swap if it improves the objective.
//
// Objectives: maximum stretch (Definition 3.1) or average stretch (the
// Peleg-Reshef expected-overhead view).
#pragma once

#include "graph/graph.hpp"
#include "graph/shortest_paths.hpp"
#include "graph/tree.hpp"
#include "support/random.hpp"

namespace arrowdq {

enum class StretchObjective { kMax, kAverage };

struct TreeSearchOptions {
  StretchObjective objective = StretchObjective::kAverage;
  int max_iterations = 200;   // candidate swaps examined
  int patience = 60;          // stop after this many non-improving swaps
};

struct TreeSearchResult {
  Tree tree;
  double initial_objective = 0.0;
  double final_objective = 0.0;
  int improving_swaps = 0;
  int examined_swaps = 0;
};

/// Improve `seed` by randomized edge swaps against graph g. The APSP of g
/// is computed once (O(n m log n)); each candidate evaluation is O(n^2), so
/// keep n in the hundreds.
TreeSearchResult improve_tree_stretch(const Graph& g, const Tree& seed,
                                      const TreeSearchOptions& options, Rng& rng);

}  // namespace arrowdq
