// Graph family generators used by the experiments.
//
// All generators produce connected graphs with unit edge weights unless a
// weight parameter is provided. Randomized generators take an explicit seed.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "support/random.hpp"

namespace arrowdq {

/// Path v0 - v1 - ... - v(n-1).
Graph make_path(NodeId n, Weight weight = 1);

/// Cycle of n >= 3 nodes.
Graph make_ring(NodeId n, Weight weight = 1);

/// Star with center 0 and n-1 leaves.
Graph make_star(NodeId n, Weight weight = 1);

/// Complete graph K_n. This is the topology of Section 5's experiments:
/// "we could treat the network as a complete graph with all edges having the
/// same weight".
Graph make_complete(NodeId n, Weight weight = 1);

/// rows x cols grid, 4-neighbour connectivity.
Graph make_grid(NodeId rows, NodeId cols, Weight weight = 1);

/// rows x cols torus (grid with wraparound), rows, cols >= 3.
Graph make_torus(NodeId rows, NodeId cols, Weight weight = 1);

/// Perfectly balanced k-ary tree with n nodes: parent(i) = (i-1)/k.
/// k = 2 gives the "perfectly balanced binary tree (log2 n depth)" used as
/// the spanning tree in Section 5.
Graph make_balanced_kary_tree(NodeId n, NodeId k = 2, Weight weight = 1);

/// Caterpillar: a path spine of `spine` nodes, each with `legs` leaf nodes.
Graph make_caterpillar(NodeId spine, NodeId legs, Weight weight = 1);

/// Erdos-Renyi G(n, p), resampled (with fresh randomness) until connected.
/// p is clamped up to (1+eps) ln n / n if too small to avoid livelock.
Graph make_erdos_renyi(NodeId n, double p, Rng& rng);

/// Random geometric graph: n points uniform in the unit square, edges between
/// points at Euclidean distance <= radius, integer weights = ceil(dist *
/// weight_scale). Resampled until connected (radius clamped up if needed).
Graph make_random_geometric(NodeId n, double radius, Rng& rng, Weight weight_scale = 16);

/// Uniformly random labelled tree via a random Pruefer sequence.
Graph make_random_tree(NodeId n, Rng& rng, Weight weight = 1);

/// A "lollipop": clique of size k attached to a path of length n - k.
/// High-stretch stress topology for spanning-tree ablations.
Graph make_lollipop(NodeId clique, NodeId tail, Weight weight = 1);

/// d-dimensional hypercube with 2^d nodes; edges join nodes whose labels
/// differ in one bit. Classic message-passing machine topology.
Graph make_hypercube(int dimensions, Weight weight = 1);

}  // namespace arrowdq
