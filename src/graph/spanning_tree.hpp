// Spanning-tree construction strategies for the arrow protocol.
//
// The paper (Section 1.1) surveys tree choices: Demmer & Herlihy suggested a
// minimum spanning tree, Peleg & Reshef a minimum communication spanning
// tree, and Section 5's experiments use a perfectly balanced binary tree on a
// complete graph. We provide all of these plus a shortest-path (BFS/Dijkstra)
// tree; the tree-choice ablation benchmark compares them.
#pragma once

#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "support/random.hpp"

namespace arrowdq {

/// Shortest-path tree from `root` (Dijkstra parents). For unit weights this
/// is the BFS tree.
Tree shortest_path_tree(const Graph& g, NodeId root);

/// Kruskal minimum spanning tree, rooted at `root`.
Tree kruskal_mst(const Graph& g, NodeId root);

/// Prim minimum spanning tree grown from `root`.
Tree prim_mst(const Graph& g, NodeId root);

/// The balanced binary overlay used in Section 5: node i's tree parent is
/// (i-1)/2. Only valid when g contains all such edges (e.g. a complete
/// graph); weights are taken from g.
Tree balanced_binary_overlay(const Graph& g, NodeId root = 0);

/// A uniformly random spanning tree via random edge order Kruskal
/// (not Wilson-uniform, but unbiased enough for ablation baselines).
Tree random_spanning_tree(const Graph& g, NodeId root, Rng& rng);

/// Greedy approximation of a minimum *communication* spanning tree
/// (Hu 1974; suggested for arrow by Peleg & Reshef): picks the shortest-path
/// tree rooted at the graph median, the node minimizing the sum of distances
/// to all other nodes. Exact MCT is NP-hard; the median SPT is the classic
/// 2-approximation for uniform communication requirements.
Tree median_spt(const Graph& g);

}  // namespace arrowdq
