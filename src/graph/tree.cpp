#include "graph/tree.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arrowdq {

Tree::Tree(std::vector<NodeId> parent, std::vector<Weight> weight_to_parent, NodeId root)
    : parent_(std::move(parent)), wparent_(std::move(weight_to_parent)), root_(root) {
  auto n = static_cast<NodeId>(parent_.size());
  ARROWDQ_ASSERT_MSG(n >= 1, "tree needs >= 1 node");
  ARROWDQ_ASSERT_MSG(wparent_.size() == parent_.size(), "parent/weight arrays must match");
  ARROWDQ_ASSERT_MSG(root_ >= 0 && root_ < n, "root must be a node");
  ARROWDQ_ASSERT_MSG(parent_[static_cast<std::size_t>(root_)] == kNoNode,
                     "root's parent must be kNoNode");

  children_.assign(static_cast<std::size_t>(n), {});
  for (NodeId v = 0; v < n; ++v) {
    if (v == root_) continue;
    NodeId p = parent_[static_cast<std::size_t>(v)];
    ARROWDQ_ASSERT_MSG(p >= 0 && p < n && p != v, "invalid parent pointer");
    children_[static_cast<std::size_t>(p)].push_back(v);
  }

  // BFS from the root to compute depths; also validates that the parent
  // structure is a single tree (every node reached exactly once).
  depth_.assign(static_cast<std::size_t>(n), -1);
  dist_root_.assign(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  order.push_back(root_);
  depth_[static_cast<std::size_t>(root_)] = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    NodeId v = order[i];
    for (NodeId c : children_[static_cast<std::size_t>(v)]) {
      ARROWDQ_ASSERT_MSG(depth_[static_cast<std::size_t>(c)] == -1, "cycle in parent array");
      depth_[static_cast<std::size_t>(c)] = depth_[static_cast<std::size_t>(v)] + 1;
      ARROWDQ_ASSERT_MSG(wparent_[static_cast<std::size_t>(c)] > 0, "edge weights are positive");
      dist_root_[static_cast<std::size_t>(c)] =
          dist_root_[static_cast<std::size_t>(v)] + wparent_[static_cast<std::size_t>(c)];
      order.push_back(c);
    }
  }
  ARROWDQ_ASSERT_MSG(order.size() == static_cast<std::size_t>(n),
                     "parent array does not describe a single connected tree");

  // Binary lifting table. up_[0][v] = parent(v) (root maps to itself).
  int levels = 1;
  while ((NodeId{1} << levels) < n) ++levels;
  up_.assign(static_cast<std::size_t>(levels), std::vector<NodeId>(static_cast<std::size_t>(n)));
  for (NodeId v = 0; v < n; ++v)
    up_[0][static_cast<std::size_t>(v)] = v == root_ ? root_ : parent_[static_cast<std::size_t>(v)];
  for (int k = 1; k < levels; ++k)
    for (NodeId v = 0; v < n; ++v)
      up_[static_cast<std::size_t>(k)][static_cast<std::size_t>(v)] =
          up_[static_cast<std::size_t>(k - 1)]
             [static_cast<std::size_t>(up_[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(v)])];
}

Tree Tree::from_parents(std::vector<NodeId> parent, NodeId root) {
  std::vector<Weight> w(parent.size(), 1);
  return Tree(std::move(parent), std::move(w), root);
}

NodeId Tree::parent(NodeId v) const {
  ARROWDQ_ASSERT(v >= 0 && v < node_count());
  return parent_[static_cast<std::size_t>(v)];
}

Weight Tree::weight_to_parent(NodeId v) const {
  ARROWDQ_ASSERT(v >= 0 && v < node_count() && v != root_);
  return wparent_[static_cast<std::size_t>(v)];
}

std::span<const NodeId> Tree::children(NodeId v) const {
  ARROWDQ_ASSERT(v >= 0 && v < node_count());
  return children_[static_cast<std::size_t>(v)];
}

std::vector<NodeId> Tree::neighbors(NodeId v) const {
  std::vector<NodeId> out;
  if (v != root_) out.push_back(parent(v));
  for (NodeId c : children(v)) out.push_back(c);
  return out;
}

NodeId Tree::degree(NodeId v) const {
  return static_cast<NodeId>(children(v).size()) + (v == root_ ? 0 : 1);
}

NodeId Tree::depth(NodeId v) const {
  ARROWDQ_ASSERT(v >= 0 && v < node_count());
  return depth_[static_cast<std::size_t>(v)];
}

Weight Tree::dist_to_root(NodeId v) const {
  ARROWDQ_ASSERT(v >= 0 && v < node_count());
  return dist_root_[static_cast<std::size_t>(v)];
}

NodeId Tree::ancestor_at_depth(NodeId v, NodeId target_depth) const {
  NodeId delta = depth(v) - target_depth;
  ARROWDQ_ASSERT(delta >= 0);
  for (std::size_t k = 0; delta != 0; ++k, delta >>= 1)
    if (delta & 1) v = up_[k][static_cast<std::size_t>(v)];
  return v;
}

NodeId Tree::lca(NodeId u, NodeId v) const {
  if (depth(u) > depth(v)) std::swap(u, v);
  v = ancestor_at_depth(v, depth(u));
  if (u == v) return u;
  for (std::size_t k = up_.size(); k-- > 0;) {
    if (up_[k][static_cast<std::size_t>(u)] != up_[k][static_cast<std::size_t>(v)]) {
      u = up_[k][static_cast<std::size_t>(u)];
      v = up_[k][static_cast<std::size_t>(v)];
    }
  }
  return up_[0][static_cast<std::size_t>(u)];
}

Weight Tree::distance(NodeId u, NodeId v) const {
  NodeId a = lca(u, v);
  return dist_to_root(u) + dist_to_root(v) - 2 * dist_to_root(a);
}

NodeId Tree::hop_distance(NodeId u, NodeId v) const {
  NodeId a = lca(u, v);
  return depth(u) + depth(v) - 2 * depth(a);
}

std::vector<NodeId> Tree::path(NodeId u, NodeId v) const {
  NodeId a = lca(u, v);
  std::vector<NodeId> up_part;
  for (NodeId x = u; x != a; x = parent(x)) up_part.push_back(x);
  up_part.push_back(a);
  std::vector<NodeId> down_part;
  for (NodeId x = v; x != a; x = parent(x)) down_part.push_back(x);
  up_part.insert(up_part.end(), down_part.rbegin(), down_part.rend());
  return up_part;
}

NodeId Tree::next_hop(NodeId u, NodeId v) const {
  ARROWDQ_ASSERT_MSG(u != v, "next_hop needs distinct endpoints");
  // If u is an ancestor of v the path descends: the hop is v's ancestor one
  // level below u. Otherwise the path first climbs toward the LCA.
  if (depth(v) > depth(u) && ancestor_at_depth(v, depth(u)) == u)
    return ancestor_at_depth(v, depth(u) + 1);
  return parent(u);
}

std::pair<NodeId, NodeId> Tree::diameter_endpoints() const {
  // Double sweep: farthest node from the root, then farthest from that.
  auto farthest = [this](NodeId from) {
    NodeId best = from;
    Weight best_d = 0;
    for (NodeId v = 0; v < node_count(); ++v) {
      Weight d = distance(from, v);
      if (d > best_d) {
        best_d = d;
        best = v;
      }
    }
    return best;
  };
  NodeId a = farthest(root_);
  NodeId b = farthest(a);
  return {a, b};
}

Weight Tree::diameter() const {
  auto [a, b] = diameter_endpoints();
  return distance(a, b);
}

Graph Tree::as_graph() const {
  Graph g(node_count());
  for (NodeId v = 0; v < node_count(); ++v)
    if (v != root_) g.add_edge(v, parent(v), weight_to_parent(v));
  return g;
}

Tree Tree::rerooted(NodeId new_root) const {
  ARROWDQ_ASSERT_MSG(new_root >= 0 && new_root < node_count(), "new root must be a node");
  auto n = static_cast<std::size_t>(node_count());
  std::vector<NodeId> np(n, kNoNode);
  std::vector<Weight> nw(n, 1);
  // Walk the path new_root -> old root, flipping parent pointers along it.
  NodeId prev = kNoNode;
  Weight prev_w = 0;
  for (NodeId x = new_root; x != kNoNode;) {
    NodeId next = parent_[static_cast<std::size_t>(x)];
    Weight next_w = x == root_ ? 0 : wparent_[static_cast<std::size_t>(x)];
    np[static_cast<std::size_t>(x)] = prev;
    nw[static_cast<std::size_t>(x)] = prev == kNoNode ? 1 : prev_w;
    prev = x;
    prev_w = next_w;
    x = next;
  }
  // All other nodes keep their parent.
  for (NodeId v = 0; v < node_count(); ++v) {
    if (np[static_cast<std::size_t>(v)] != kNoNode || v == new_root) continue;
    np[static_cast<std::size_t>(v)] = parent_[static_cast<std::size_t>(v)];
    nw[static_cast<std::size_t>(v)] = wparent_[static_cast<std::size_t>(v)];
  }
  return Tree(std::move(np), std::move(nw), new_root);
}

}  // namespace arrowdq
