// Undirected weighted graph representing the communication network G = (V, E).
//
// Edge weights are communication latencies in whole time units (the paper's
// synchronous model uses unit latency; generators default to weight 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/types.hpp"

namespace arrowdq {

/// A directed half-edge in the adjacency list.
struct HalfEdge {
  NodeId to;
  Weight weight;
};

/// An undirected edge (u < v is not enforced; stored as given).
struct Edge {
  NodeId u;
  NodeId v;
  Weight weight;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(NodeId n);

  NodeId node_count() const { return static_cast<NodeId>(adj_.size()); }
  std::size_t edge_count() const { return edges_.size(); }

  /// Adds an undirected edge {u, v} with the given weight (> 0); u != v.
  void add_edge(NodeId u, NodeId v, Weight weight = 1);

  std::span<const HalfEdge> neighbors(NodeId v) const;
  std::span<const Edge> edges() const { return edges_; }

  NodeId degree(NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const;
  /// Weight of edge {u, v}; asserts the edge exists.
  Weight edge_weight(NodeId u, NodeId v) const;

  /// Sum of all edge weights.
  Weight total_weight() const;

  bool is_connected() const;

  /// True iff the graph is a tree (connected, |E| = |V| - 1).
  bool is_tree() const;

 private:
  std::vector<std::vector<HalfEdge>> adj_;
  std::vector<Edge> edges_;
};

}  // namespace arrowdq
