// Undirected weighted graph representing the communication network G = (V, E).
//
// Edge weights are communication latencies in whole time units (the paper's
// synchronous model uses unit latency; generators default to weight 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/types.hpp"

namespace arrowdq {

/// A directed half-edge in the adjacency list.
struct HalfEdge {
  NodeId to;
  Weight weight;
};

/// An undirected edge (u < v is not enforced; stored as given).
struct Edge {
  NodeId u;
  NodeId v;
  Weight weight;
};

/// Resolution of a directed edge lookup: a dense directed-edge id in
/// [0, dir_edge_count()) plus the edge weight; id < 0 means "no such edge".
struct DirEdgeRef {
  std::int32_t id = -1;
  Weight weight = 0;
  explicit operator bool() const { return id >= 0; }
};

// Not thread-safe, even for const queries: has_edge/edge_weight/find_edge
// lazily build the mutable edge index on first use. Do not share one Graph
// across concurrently running simulations without external synchronization.
class Graph {
 public:
  Graph() = default;
  explicit Graph(NodeId n);

  NodeId node_count() const { return static_cast<NodeId>(adj_.size()); }
  std::size_t edge_count() const { return edges_.size(); }
  /// Number of directed half-edges (= 2 * edge_count()); the dense id space
  /// of find_edge, usable to size per-directed-edge state arrays.
  std::size_t dir_edge_count() const { return 2 * edges_.size(); }

  /// Adds an undirected edge {u, v} with the given weight (> 0); u != v.
  void add_edge(NodeId u, NodeId v, Weight weight = 1);

  std::span<const HalfEdge> neighbors(NodeId v) const;
  std::span<const Edge> edges() const { return edges_; }

  NodeId degree(NodeId v) const;
  bool has_edge(NodeId u, NodeId v) const;
  /// Weight of edge {u, v}; asserts the edge exists.
  Weight edge_weight(NodeId u, NodeId v) const;

  /// O(1) expected directed-edge lookup through the lazily built edge
  /// index (invalidated by add_edge). Directed ids are CSR-ordered: dense,
  /// grouped by source node in adjacency order.
  DirEdgeRef find_edge(NodeId u, NodeId v) const;

  /// Sum of all edge weights.
  Weight total_weight() const;

  bool is_connected() const;

  /// True iff the graph is a tree (connected, |E| = |V| - 1).
  bool is_tree() const;

 private:
  void build_index() const;
  DirEdgeRef lookup(NodeId u, NodeId v) const;

  std::vector<std::vector<HalfEdge>> adj_;
  std::vector<Edge> edges_;

  // Lazily built edge index: per-directed-id weights in CSR order (grouped
  // by source node, adjacency order) plus an open-addressed map from
  // packed (u, v) to the dense directed id.
  mutable std::vector<Weight> dir_weight_;
  mutable std::vector<std::uint64_t> map_keys_;
  mutable std::vector<std::int32_t> map_ids_;
  mutable std::uint64_t map_mask_ = 0;
  mutable bool index_built_ = false;
};

}  // namespace arrowdq
