// Disjoint-set forest with union by rank and path halving.
#pragma once

#include <cstdint>
#include <vector>

#include "support/types.hpp"

namespace arrowdq {

class UnionFind {
 public:
  explicit UnionFind(NodeId n);

  NodeId find(NodeId x);
  /// Returns true if x and y were in different sets (and merges them).
  bool unite(NodeId x, NodeId y);
  bool same(NodeId x, NodeId y) { return find(x) == find(y); }
  NodeId set_count() const { return sets_; }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::int8_t> rank_;
  NodeId sets_;
};

}  // namespace arrowdq
