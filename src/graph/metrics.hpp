// Quality metrics of a (graph, spanning tree) pair.
//
// Definition 3.1: stretch s = max over node pairs of dT(u, v) / dG(u, v).
// Both s and the tree diameter D appear in the paper's competitive ratio
// O(s log D), so every benchmark reports them next to measured costs.
#pragma once

#include "graph/graph.hpp"
#include "graph/shortest_paths.hpp"
#include "graph/tree.hpp"
#include "support/random.hpp"

namespace arrowdq {

struct StretchReport {
  double max_stretch = 1.0;   // Definition 3.1
  double avg_stretch = 1.0;   // mean over node pairs (Peleg-Reshef overhead)
  NodeId worst_u = kNoNode;   // pair achieving max_stretch
  NodeId worst_v = kNoNode;
};

/// Exact stretch over all pairs (O(n^2) after APSP). Reuses a precomputed
/// AllPairs if supplied.
StretchReport stretch_exact(const Graph& g, const Tree& t);
StretchReport stretch_exact(const AllPairs& apsp, const Tree& t);

/// Sampled stretch for large graphs: `samples` random pairs.
StretchReport stretch_sampled(const Graph& g, const Tree& t, int samples, Rng& rng);

/// Summary of the (G, T) pair printed at the top of each benchmark.
struct TreeQuality {
  NodeId nodes = 0;
  Weight graph_diameter = 0;
  Weight tree_diameter = 0;
  double stretch = 1.0;
  Weight tree_weight = 0;
};

TreeQuality tree_quality(const Graph& g, const Tree& t);

}  // namespace arrowdq
