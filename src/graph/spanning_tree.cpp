#include "graph/spanning_tree.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "graph/shortest_paths.hpp"
#include "graph/union_find.hpp"
#include "support/assert.hpp"

namespace arrowdq {

namespace {

/// Root an undirected edge list at `root`, producing parent arrays.
Tree root_edge_list(NodeId n, const std::vector<Edge>& tree_edges, NodeId root) {
  std::vector<std::vector<HalfEdge>> adj(static_cast<std::size_t>(n));
  for (const auto& e : tree_edges) {
    adj[static_cast<std::size_t>(e.u)].push_back({e.v, e.weight});
    adj[static_cast<std::size_t>(e.v)].push_back({e.u, e.weight});
  }
  std::vector<NodeId> parent(static_cast<std::size_t>(n), kNoNode);
  std::vector<Weight> wpar(static_cast<std::size_t>(n), 1);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<NodeId> stack{root};
  seen[static_cast<std::size_t>(root)] = true;
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    for (const auto& he : adj[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(he.to)]) {
        seen[static_cast<std::size_t>(he.to)] = true;
        parent[static_cast<std::size_t>(he.to)] = v;
        wpar[static_cast<std::size_t>(he.to)] = he.weight;
        stack.push_back(he.to);
      }
    }
  }
  return Tree(std::move(parent), std::move(wpar), root);
}

}  // namespace

Tree shortest_path_tree(const Graph& g, NodeId root) {
  std::vector<NodeId> parents;
  auto dist = sssp_with_parents(g, root, parents);
  std::vector<Weight> wpar(static_cast<std::size_t>(g.node_count()), 1);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    ARROWDQ_ASSERT_MSG(dist[static_cast<std::size_t>(v)] != kUnreachable,
                       "spanning tree of a disconnected graph");
    if (v != root)
      wpar[static_cast<std::size_t>(v)] =
          g.edge_weight(v, parents[static_cast<std::size_t>(v)]);
  }
  return Tree(std::move(parents), std::move(wpar), root);
}

Tree kruskal_mst(const Graph& g, NodeId root) {
  std::vector<Edge> edges(g.edges().begin(), g.edges().end());
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& a, const Edge& b) { return a.weight < b.weight; });
  UnionFind uf(g.node_count());
  std::vector<Edge> chosen;
  chosen.reserve(static_cast<std::size_t>(g.node_count()));
  for (const auto& e : edges)
    if (uf.unite(e.u, e.v)) chosen.push_back(e);
  ARROWDQ_ASSERT_MSG(uf.set_count() == 1, "MST of a disconnected graph");
  return root_edge_list(g.node_count(), chosen, root);
}

Tree prim_mst(const Graph& g, NodeId root) {
  struct Item {
    Weight w;
    NodeId to;
    NodeId from;
    bool operator>(const Item& o) const {
      if (w != o.w) return w > o.w;
      if (to != o.to) return to > o.to;
      return from > o.from;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<bool> in_tree(static_cast<std::size_t>(g.node_count()), false);
  std::vector<NodeId> parent(static_cast<std::size_t>(g.node_count()), kNoNode);
  std::vector<Weight> wpar(static_cast<std::size_t>(g.node_count()), 1);
  in_tree[static_cast<std::size_t>(root)] = true;
  for (const auto& he : g.neighbors(root)) heap.push({he.weight, he.to, root});
  NodeId joined = 1;
  while (!heap.empty() && joined < g.node_count()) {
    auto [w, to, from] = heap.top();
    heap.pop();
    if (in_tree[static_cast<std::size_t>(to)]) continue;
    in_tree[static_cast<std::size_t>(to)] = true;
    parent[static_cast<std::size_t>(to)] = from;
    wpar[static_cast<std::size_t>(to)] = w;
    ++joined;
    for (const auto& he : g.neighbors(to))
      if (!in_tree[static_cast<std::size_t>(he.to)]) heap.push({he.weight, he.to, to});
  }
  ARROWDQ_ASSERT_MSG(joined == g.node_count(), "MST of a disconnected graph");
  return Tree(std::move(parent), std::move(wpar), root);
}

Tree balanced_binary_overlay(const Graph& g, NodeId root) {
  ARROWDQ_ASSERT_MSG(root == 0, "balanced binary overlay is defined with root 0");
  auto n = g.node_count();
  std::vector<NodeId> parent(static_cast<std::size_t>(n), kNoNode);
  std::vector<Weight> wpar(static_cast<std::size_t>(n), 1);
  for (NodeId i = 1; i < n; ++i) {
    NodeId p = (i - 1) / 2;
    ARROWDQ_ASSERT_MSG(g.has_edge(i, p), "graph lacks balanced-binary overlay edge");
    parent[static_cast<std::size_t>(i)] = p;
    wpar[static_cast<std::size_t>(i)] = g.edge_weight(i, p);
  }
  return Tree(std::move(parent), std::move(wpar), 0);
}

Tree random_spanning_tree(const Graph& g, NodeId root, Rng& rng) {
  std::vector<Edge> edges(g.edges().begin(), g.edges().end());
  rng.shuffle(edges);
  UnionFind uf(g.node_count());
  std::vector<Edge> chosen;
  for (const auto& e : edges)
    if (uf.unite(e.u, e.v)) chosen.push_back(e);
  ARROWDQ_ASSERT_MSG(uf.set_count() == 1, "spanning tree of a disconnected graph");
  return root_edge_list(g.node_count(), chosen, root);
}

Tree median_spt(const Graph& g) {
  // Median = argmin_v sum_u dG(v, u).
  NodeId best = 0;
  Weight best_sum = -1;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    auto d = sssp(g, v);
    Weight sum = std::accumulate(d.begin(), d.end(), Weight{0});
    if (best_sum < 0 || sum < best_sum) {
      best_sum = sum;
      best = v;
    }
  }
  return shortest_path_tree(g, best);
}

}  // namespace arrowdq
