// Implicit topologies: the structured families (complete, path, ring, grid,
// torus, hypercube) admit closed forms for everything a protocol driver
// reads — graph distance, neighbor enumeration, and the canonical
// shortest-path-tree parent — so a million-node run needs no stored Graph
// adjacency, no O(n^2) APSP table, and no Dijkstra pass. This is the scale
// path: per-node state drops to the driver's own arrays, and topology
// queries become a handful of arithmetic ops.
//
// Exactness contract: every closed form here reproduces the materialized
// pipeline bit-for-bit.
//  * distance() mirrors the oracles in baseline/dist.hpp, which are pinned
//    against ApspDist on the generated graphs (tests/scale_test.cpp).
//  * tree_parent() reproduces shortest_path_tree()'s Dijkstra parent. With
//    unit weights and the heap tie-broken by ascending node id, Dijkstra
//    sets parent[v] to the minimum-id neighbor of v one hop closer to the
//    root: nodes at distance d-1 are popped in ascending id order, the
//    first adjacent one strictly improves v's tentative distance and the
//    rest offer an equal distance which never replaces the parent. Each
//    family below evaluates that min-id rule directly.
//  * The balanced-binary overlay on the complete family is parent = (v-1)/2
//    (root 0), matching balanced_binary_overlay().
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "support/assert.hpp"
#include "support/types.hpp"

namespace arrowdq {

enum class ImplicitFamily : std::uint8_t {
  kComplete,
  kPath,
  kRing,
  kGrid,
  kTorus,
  kHypercube,
};

struct ImplicitTopology {
  ImplicitFamily family = ImplicitFamily::kComplete;
  NodeId n = 0;
  NodeId rows = 0, cols = 0;  // kGrid / kTorus (n = rows * cols)
  NodeId root = 0;
  /// kComplete only: Section 5's balanced binary overlay instead of the
  /// star-shaped shortest-path tree. Requires root == 0, matching
  /// balanced_binary_overlay().
  bool balanced_binary = false;

  NodeId node_count() const { return n; }
  NodeId tree_root() const { return root; }

  /// Graph distance dG(u, v) in abstract units (unit edge weights).
  Weight distance(NodeId u, NodeId v) const {
    switch (family) {
      case ImplicitFamily::kComplete:
        return u == v ? 0 : 1;
      case ImplicitFamily::kPath:
        return static_cast<Weight>(u < v ? v - u : u - v);
      case ImplicitFamily::kRing: {
        const NodeId d = u < v ? v - u : u - v;
        return static_cast<Weight>(d < n - d ? d : n - d);
      }
      case ImplicitFamily::kGrid:
        return axis_delta(u / cols, v / cols) + axis_delta(u % cols, v % cols);
      case ImplicitFamily::kTorus:
        return wrap_delta(u / cols, v / cols, rows) + wrap_delta(u % cols, v % cols, cols);
      case ImplicitFamily::kHypercube:
        return static_cast<Weight>(std::popcount(static_cast<std::uint32_t>(u ^ v)));
    }
    ARROWDQ_ASSERT_MSG(false, "unknown implicit family");
    return 0;
  }

  NodeId degree(NodeId v) const {
    switch (family) {
      case ImplicitFamily::kComplete:
        return n - 1;
      case ImplicitFamily::kPath:
        return n == 1 ? 0 : ((v == 0 || v == n - 1) ? 1 : 2);
      case ImplicitFamily::kRing:
        return 2;
      case ImplicitFamily::kGrid: {
        NodeId d = 0;
        const NodeId r = v / cols, c = v % cols;
        d += (r > 0) + (r < rows - 1);
        d += (c > 0) + (c < cols - 1);
        return d;
      }
      case ImplicitFamily::kTorus:
        return 4;  // generator requires rows, cols >= 3
      case ImplicitFamily::kHypercube:
        return static_cast<NodeId>(std::popcount(static_cast<std::uint32_t>(n - 1)));
    }
    ARROWDQ_ASSERT_MSG(false, "unknown implicit family");
    return 0;
  }

  /// Invoke `fn(NodeId)` for every graph neighbor of v.
  template <typename Fn>
  void for_each_neighbor(NodeId v, Fn&& fn) const {
    switch (family) {
      case ImplicitFamily::kComplete:
        for (NodeId w = 0; w < n; ++w)
          if (w != v) fn(w);
        return;
      case ImplicitFamily::kPath:
        if (v > 0) fn(v - 1);
        if (v < n - 1) fn(v + 1);
        return;
      case ImplicitFamily::kRing:
        fn((v + n - 1) % n);
        fn((v + 1) % n);
        return;
      case ImplicitFamily::kGrid: {
        const NodeId r = v / cols, c = v % cols;
        if (r > 0) fn(v - cols);
        if (c > 0) fn(v - 1);
        if (c < cols - 1) fn(v + 1);
        if (r < rows - 1) fn(v + cols);
        return;
      }
      case ImplicitFamily::kTorus: {
        const NodeId r = v / cols, c = v % cols;
        fn(((r + rows - 1) % rows) * cols + c);
        fn(r * cols + (c + cols - 1) % cols);
        fn(r * cols + (c + 1) % cols);
        fn(((r + 1) % rows) * cols + c);
        return;
      }
      case ImplicitFamily::kHypercube:
        for (NodeId bit = 1; bit < n; bit <<= 1) fn(v ^ bit);
        return;
    }
    ARROWDQ_ASSERT_MSG(false, "unknown implicit family");
  }

  /// Materialized adjacency list of v (tests / non-hot-path callers).
  std::vector<NodeId> neighbors(NodeId v) const;

  /// The canonical spanning-tree parent of v (kNoNode at the root): the
  /// minimum-id neighbor one hop closer to the root, i.e. exactly what
  /// shortest_path_tree()'s Dijkstra records (see the header comment), or
  /// (v-1)/2 under the balanced-binary overlay.
  NodeId tree_parent(NodeId v) const {
    if (v == root) return kNoNode;
    switch (family) {
      case ImplicitFamily::kComplete:
        // Overlay: heap-shaped binary tree. Shortest-path tree: the only
        // node at distance 0 is the root itself.
        return balanced_binary ? (v - 1) / 2 : root;
      case ImplicitFamily::kPath:
        return v < root ? v + 1 : v - 1;
      case ImplicitFamily::kRing: {
        const NodeId cw = (v - root + n) % n;
        const NodeId down = (v + n - 1) % n;
        const NodeId up = (v + 1) % n;
        if (2 * cw < n) return down;
        if (2 * cw > n) return up;
        return down < up ? down : up;  // antipode on an even ring: tie
      }
      case ImplicitFamily::kGrid: {
        // Candidates in ascending id order: up (v-cols), left (v-1),
        // right (v+1), down (v+cols); take the first that moves toward
        // the root in its axis.
        const NodeId rv = v / cols, cv = v % cols;
        const NodeId rr = root / cols, cr = root % cols;
        if (rv > rr) return v - cols;
        if (cv > cr) return v - 1;
        if (cv < cr) return v + 1;
        return v + cols;
      }
      case ImplicitFamily::kTorus: {
        // Wrap-around makes the axis directions id-order dependent; scan
        // the four neighbors for the minimum id at distance d-1.
        const Weight d = distance(v, root);
        NodeId best = kNoNode;
        for_each_neighbor(v, [&](NodeId w) {
          if (distance(w, root) == d - 1 && (best == kNoNode || w < best)) best = w;
        });
        return best;
      }
      case ImplicitFamily::kHypercube: {
        // Closer neighbors flip a set bit of mask = v ^ root. Flipping a
        // bit where v is 1 gives w = v - 2^b (minimized by the highest
        // such bit); if v is 0 on every mask bit, the best is v + 2^b for
        // the lowest mask bit.
        const auto mask = static_cast<std::uint32_t>(v ^ root);
        const auto down = mask & static_cast<std::uint32_t>(v);
        if (down != 0) return v ^ static_cast<NodeId>(std::bit_floor(down));
        return v ^ static_cast<NodeId>(mask & (~mask + 1));
      }
    }
    ARROWDQ_ASSERT_MSG(false, "unknown implicit family");
    return kNoNode;
  }

  /// Build the canonical Tree explicitly — O(n) parent computation with no
  /// Graph and no Dijkstra pass (the Tree's own lifting tables still cost
  /// O(n log n)). Used where a driver needs a real Tree (arrow one-shot,
  /// token passing, crash recovery) but the graph itself can stay implicit.
  Tree materialize_tree() const;

 private:
  static Weight axis_delta(NodeId a, NodeId b) {
    return static_cast<Weight>(a < b ? b - a : a - b);
  }
  static Weight wrap_delta(NodeId a, NodeId b, NodeId extent) {
    const NodeId d = a < b ? b - a : a - b;
    return static_cast<Weight>(d < extent - d ? d : extent - d);
  }
};

/// Graph-shaped index over an implicit topology's canonical spanning tree:
/// just enough of Graph's interface (node_count / dir_edge_count /
/// find_edge) for Network to run on tree edges without any stored
/// adjacency. Directed-edge ids are assigned per child c: 2c for c->parent,
/// 2c+1 for parent->c — dense, stable, and O(1), so the FIFO clamp keeps
/// its flat-array form.
struct ImplicitTreeIndex {
  ImplicitTopology topo;

  NodeId node_count() const { return topo.n; }
  std::size_t dir_edge_count() const { return 2 * static_cast<std::size_t>(topo.n); }
  DirEdgeRef find_edge(NodeId from, NodeId to) const {
    if (topo.tree_parent(from) == to) return DirEdgeRef{2 * from, 1};
    if (topo.tree_parent(to) == from) return DirEdgeRef{2 * to + 1, 1};
    return DirEdgeRef{};
  }
};

}  // namespace arrowdq
