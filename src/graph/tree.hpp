// Rooted spanning tree T with O(log n) distance queries.
//
// The arrow protocol operates entirely on T: link pointers point to tree
// neighbours, queue() messages travel tree paths, and the analysis cost cT
// uses tree distances dT(u, v). Tree supports LCA via binary lifting so
// dT(u, v) = dist_to_root(u) + dist_to_root(v) - 2 * dist_to_root(lca(u, v))
// is answered in O(log n).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"

namespace arrowdq {

class Tree {
 public:
  /// Build from a parent array: parent[root] == kNoNode, every other node's
  /// parent is its tree neighbour toward the root. weight_to_parent[v] is the
  /// latency of edge {v, parent[v]} (ignored at the root).
  Tree(std::vector<NodeId> parent, std::vector<Weight> weight_to_parent, NodeId root);

  /// Convenience: unit weights.
  static Tree from_parents(std::vector<NodeId> parent, NodeId root);

  NodeId node_count() const { return static_cast<NodeId>(parent_.size()); }
  NodeId root() const { return root_; }
  NodeId parent(NodeId v) const;
  Weight weight_to_parent(NodeId v) const;
  std::span<const NodeId> children(NodeId v) const;

  /// Tree neighbours of v (parent + children). Order: parent first.
  std::vector<NodeId> neighbors(NodeId v) const;
  NodeId degree(NodeId v) const;

  /// Hop depth (root = 0).
  NodeId depth(NodeId v) const;
  /// Weighted distance to root.
  Weight dist_to_root(NodeId v) const;

  NodeId lca(NodeId u, NodeId v) const;

  /// Weighted tree distance dT(u, v).
  Weight distance(NodeId u, NodeId v) const;
  /// Hop count of the tree path u -> v.
  NodeId hop_distance(NodeId u, NodeId v) const;

  /// The node sequence of the tree path u -> v (inclusive of both ends).
  std::vector<NodeId> path(NodeId u, NodeId v) const;

  /// First edge of the tree path u -> v, i.e. path(u, v)[1], computed in
  /// O(log n) without materializing the path (u != v). Hop-by-hop message
  /// forwarding (the token simulator) calls this once per edge traversed,
  /// so it must not allocate.
  NodeId next_hop(NodeId u, NodeId v) const;

  /// Weighted diameter of the tree (max pairwise dT).
  Weight diameter() const;
  /// Endpoints of a diameter path.
  std::pair<NodeId, NodeId> diameter_endpoints() const;

  /// The tree as a Graph (n-1 edges).
  Graph as_graph() const;

  /// Re-root the same undirected tree at a new root.
  Tree rerooted(NodeId new_root) const;

 private:
  NodeId ancestor_at_depth(NodeId v, NodeId target_depth) const;

  std::vector<NodeId> parent_;
  std::vector<Weight> wparent_;
  NodeId root_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<NodeId> depth_;
  std::vector<Weight> dist_root_;
  std::vector<std::vector<NodeId>> up_;  // binary lifting table
};

}  // namespace arrowdq
