#include "graph/graph.hpp"

#include <vector>

#include "support/assert.hpp"

namespace arrowdq {

Graph::Graph(NodeId n) : adj_(static_cast<std::size_t>(n)) { ARROWDQ_ASSERT(n >= 0); }

void Graph::add_edge(NodeId u, NodeId v, Weight weight) {
  ARROWDQ_ASSERT(u >= 0 && u < node_count());
  ARROWDQ_ASSERT(v >= 0 && v < node_count());
  ARROWDQ_ASSERT_MSG(u != v, "self-loops are not allowed");
  ARROWDQ_ASSERT_MSG(weight > 0, "edge weights are positive latencies");
  adj_[static_cast<std::size_t>(u)].push_back({v, weight});
  adj_[static_cast<std::size_t>(v)].push_back({u, weight});
  edges_.push_back({u, v, weight});
}

std::span<const HalfEdge> Graph::neighbors(NodeId v) const {
  ARROWDQ_ASSERT(v >= 0 && v < node_count());
  return adj_[static_cast<std::size_t>(v)];
}

NodeId Graph::degree(NodeId v) const {
  return static_cast<NodeId>(neighbors(v).size());
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  for (const auto& he : neighbors(u))
    if (he.to == v) return true;
  return false;
}

Weight Graph::edge_weight(NodeId u, NodeId v) const {
  for (const auto& he : neighbors(u))
    if (he.to == v) return he.weight;
  ARROWDQ_ASSERT_MSG(false, "edge_weight: edge does not exist");
  return 0;
}

Weight Graph::total_weight() const {
  Weight total = 0;
  for (const auto& e : edges_) total += e.weight;
  return total;
}

bool Graph::is_connected() const {
  if (node_count() == 0) return true;
  std::vector<bool> seen(static_cast<std::size_t>(node_count()), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  NodeId visited = 1;
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    for (const auto& he : neighbors(v)) {
      if (!seen[static_cast<std::size_t>(he.to)]) {
        seen[static_cast<std::size_t>(he.to)] = true;
        ++visited;
        stack.push_back(he.to);
      }
    }
  }
  return visited == node_count();
}

bool Graph::is_tree() const {
  return node_count() > 0 && edge_count() == static_cast<std::size_t>(node_count()) - 1 &&
         is_connected();
}

}  // namespace arrowdq
