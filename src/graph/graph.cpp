#include "graph/graph.hpp"

#include <vector>

#include "support/assert.hpp"
#include "support/random.hpp"

namespace arrowdq {

Graph::Graph(NodeId n) : adj_(static_cast<std::size_t>(n)) { ARROWDQ_ASSERT_MSG(n >= 0, "node count must be >= 0"); }

void Graph::add_edge(NodeId u, NodeId v, Weight weight) {
  ARROWDQ_ASSERT_MSG(u >= 0 && u < node_count(), "edge endpoint u out of range");
  ARROWDQ_ASSERT_MSG(v >= 0 && v < node_count(), "edge endpoint v out of range");
  ARROWDQ_ASSERT_MSG(u != v, "self-loops are not allowed");
  ARROWDQ_ASSERT_MSG(weight > 0, "edge weights are positive latencies");
  adj_[static_cast<std::size_t>(u)].push_back({v, weight});
  adj_[static_cast<std::size_t>(v)].push_back({u, weight});
  edges_.push_back({u, v, weight});
  index_built_ = false;
}

namespace {

std::uint64_t pack_edge(NodeId u, NodeId v) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

// NodeIds are non-negative 32-bit, so no packed key ever equals ~0.
constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

}  // namespace

void Graph::build_index() const {
  const auto n = static_cast<std::size_t>(node_count());
  const std::size_t m = dir_edge_count();
  dir_weight_.resize(m);

  std::size_t cap = 16;
  while (cap < 2 * m) cap <<= 1;
  map_mask_ = cap - 1;
  map_keys_.assign(cap, kEmptyKey);
  map_ids_.assign(cap, -1);

  // Directed ids are CSR-ordered: grouped by source node, adjacency order
  // within a source.
  std::int32_t id = 0;
  for (std::size_t u = 0; u < n; ++u) {
    for (const HalfEdge& he : adj_[u]) {
      dir_weight_[static_cast<std::size_t>(id)] = he.weight;
      std::uint64_t key = pack_edge(static_cast<NodeId>(u), he.to);
      std::uint64_t pos = mix64(key) & map_mask_;
      while (map_keys_[pos] != kEmptyKey && map_keys_[pos] != key) pos = (pos + 1) & map_mask_;
      // On a duplicate (parallel edge) keep the first id, matching the old
      // first-match-in-adjacency-order semantics of edge_weight.
      if (map_keys_[pos] == kEmptyKey) {
        map_keys_[pos] = key;
        map_ids_[pos] = id;
      }
      ++id;
    }
  }
  index_built_ = true;
}

DirEdgeRef Graph::lookup(NodeId u, NodeId v) const {
  if (!index_built_) build_index();
  std::uint64_t key = pack_edge(u, v);
  std::uint64_t pos = mix64(key) & map_mask_;
  while (map_keys_[pos] != kEmptyKey) {
    if (map_keys_[pos] == key) {
      std::int32_t id = map_ids_[pos];
      return {id, dir_weight_[static_cast<std::size_t>(id)]};
    }
    pos = (pos + 1) & map_mask_;
  }
  return {};
}

DirEdgeRef Graph::find_edge(NodeId u, NodeId v) const {
  ARROWDQ_ASSERT(u >= 0 && u < node_count());
  ARROWDQ_ASSERT(v >= 0 && v < node_count());
  return lookup(u, v);
}

std::span<const HalfEdge> Graph::neighbors(NodeId v) const {
  ARROWDQ_ASSERT(v >= 0 && v < node_count());
  return adj_[static_cast<std::size_t>(v)];
}

NodeId Graph::degree(NodeId v) const {
  return static_cast<NodeId>(neighbors(v).size());
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  ARROWDQ_ASSERT(u >= 0 && u < node_count());
  // Out-of-range v is a membership miss, not a programming error (matches
  // the old adjacency-scan behavior, which never dereferenced v).
  if (v < 0 || v >= node_count()) return false;
  return static_cast<bool>(lookup(u, v));
}

Weight Graph::edge_weight(NodeId u, NodeId v) const {
  DirEdgeRef e = find_edge(u, v);
  ARROWDQ_ASSERT_MSG(e, "edge_weight: edge does not exist");
  return e.weight;
}

Weight Graph::total_weight() const {
  Weight total = 0;
  for (const auto& e : edges_) total += e.weight;
  return total;
}

bool Graph::is_connected() const {
  if (node_count() == 0) return true;
  std::vector<bool> seen(static_cast<std::size_t>(node_count()), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  NodeId visited = 1;
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    for (const auto& he : neighbors(v)) {
      if (!seen[static_cast<std::size_t>(he.to)]) {
        seen[static_cast<std::size_t>(he.to)] = true;
        ++visited;
        stack.push_back(he.to);
      }
    }
  }
  return visited == node_count();
}

bool Graph::is_tree() const {
  return node_count() > 0 && edge_count() == static_cast<std::size_t>(node_count()) - 1 &&
         is_connected();
}

}  // namespace arrowdq
