// Probability-aware tree selection (Peleg-Reshef, ICALP 1999).
//
// If the probability distribution p of the origin of the next queuing
// operation is known, the sequential-case overhead of the arrow protocol is
// minimized by a tree minimizing the expected communication cost
//   E[dT] = sum_{u,v} p(u) p(v) dT(u, v),
// and Peleg-Reshef show a tree within 1.5x of optimal exists. We provide the
// classic practical approximation: the shortest-path tree rooted at the
// p-weighted median (the node minimizing sum_u p(u) dG(root, u)), plus the
// exact expected-cost evaluator so benchmarks can compare strategies.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/tree.hpp"

namespace arrowdq {

/// E[dT(u, v)] for u, v drawn independently from `probs` (size n, sums to
/// ~1; we normalize defensively).
double expected_comm_cost(const Tree& tree, const std::vector<double>& probs);

/// The p-weighted median of the graph: argmin_v sum_u p(u) dG(v, u).
NodeId weighted_median(const Graph& g, const std::vector<double>& probs);

/// Shortest-path tree rooted at the p-weighted median.
Tree weighted_median_spt(const Graph& g, const std::vector<double>& probs);

/// Uniform distribution helper.
std::vector<double> uniform_probs(NodeId n);

/// Hotspot distribution: `hot` gets mass `hot_mass`, rest uniform.
std::vector<double> hotspot_probs(NodeId n, NodeId hot, double hot_mass);

}  // namespace arrowdq
