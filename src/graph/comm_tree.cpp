#include "graph/comm_tree.hpp"

#include <numeric>

#include "graph/shortest_paths.hpp"
#include "graph/spanning_tree.hpp"
#include "support/assert.hpp"

namespace arrowdq {

double expected_comm_cost(const Tree& tree, const std::vector<double>& probs) {
  auto n = tree.node_count();
  ARROWDQ_ASSERT_MSG(static_cast<NodeId>(probs.size()) == n, "probability vector size must equal n");
  double mass = std::accumulate(probs.begin(), probs.end(), 0.0);
  ARROWDQ_ASSERT_MSG(mass > 0.0, "probability mass must be positive");
  double total = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    double pu = probs[static_cast<std::size_t>(u)];
    if (pu == 0.0) continue;
    for (NodeId v = u + 1; v < n; ++v) {
      double pv = probs[static_cast<std::size_t>(v)];
      if (pv == 0.0) continue;
      total += 2.0 * pu * pv * static_cast<double>(tree.distance(u, v));
    }
  }
  return total / (mass * mass);
}

NodeId weighted_median(const Graph& g, const std::vector<double>& probs) {
  ARROWDQ_ASSERT_MSG(static_cast<NodeId>(probs.size()) == g.node_count(), "probability vector size must equal n");
  NodeId best = 0;
  double best_cost = -1.0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    auto d = sssp(g, v);
    double cost = 0.0;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      ARROWDQ_ASSERT_MSG(d[static_cast<std::size_t>(u)] != kUnreachable,
                         "weighted median of a disconnected graph");
      cost += probs[static_cast<std::size_t>(u)] *
              static_cast<double>(d[static_cast<std::size_t>(u)]);
    }
    if (best_cost < 0.0 || cost < best_cost) {
      best_cost = cost;
      best = v;
    }
  }
  return best;
}

Tree weighted_median_spt(const Graph& g, const std::vector<double>& probs) {
  return shortest_path_tree(g, weighted_median(g, probs));
}

std::vector<double> uniform_probs(NodeId n) {
  ARROWDQ_ASSERT_MSG(n > 0, "node count must be > 0");
  return std::vector<double>(static_cast<std::size_t>(n), 1.0 / static_cast<double>(n));
}

std::vector<double> hotspot_probs(NodeId n, NodeId hot, double hot_mass) {
  ARROWDQ_ASSERT_MSG(n > 0 && hot >= 0 && hot < n, "hot node must be a node");
  ARROWDQ_ASSERT_MSG(hot_mass >= 0.0 && hot_mass <= 1.0, "hot mass must be in [0, 1]");
  double rest = n > 1 ? (1.0 - hot_mass) / static_cast<double>(n - 1) : 0.0;
  std::vector<double> p(static_cast<std::size_t>(n), rest);
  p[static_cast<std::size_t>(hot)] = n > 1 ? hot_mass : 1.0;
  return p;
}

}  // namespace arrowdq
