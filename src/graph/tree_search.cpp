#include "graph/tree_search.hpp"

#include <algorithm>
#include <vector>

#include "graph/metrics.hpp"
#include "support/assert.hpp"

namespace arrowdq {

namespace {

double objective_value(const AllPairs& apsp, const Tree& t, StretchObjective obj) {
  auto rep = stretch_exact(apsp, t);
  return obj == StretchObjective::kMax ? rep.max_stretch : rep.avg_stretch;
}

/// The edge set of a tree as (u, v, w) with u/v in graph ids.
std::vector<Edge> tree_edges(const Tree& t) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(t.node_count()) - 1);
  for (NodeId v = 0; v < t.node_count(); ++v)
    if (v != t.root()) edges.push_back({v, t.parent(v), t.weight_to_parent(v)});
  return edges;
}

/// Build a Tree from an edge list (must form a spanning tree), rooted at 0.
Tree tree_from_edges(NodeId n, const std::vector<Edge>& edges, NodeId root) {
  std::vector<std::vector<HalfEdge>> adj(static_cast<std::size_t>(n));
  for (const auto& e : edges) {
    adj[static_cast<std::size_t>(e.u)].push_back({e.v, e.weight});
    adj[static_cast<std::size_t>(e.v)].push_back({e.u, e.weight});
  }
  std::vector<NodeId> parent(static_cast<std::size_t>(n), kNoNode);
  std::vector<Weight> wpar(static_cast<std::size_t>(n), 1);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<NodeId> stack{root};
  seen[static_cast<std::size_t>(root)] = true;
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    for (const auto& he : adj[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(he.to)]) {
        seen[static_cast<std::size_t>(he.to)] = true;
        parent[static_cast<std::size_t>(he.to)] = v;
        wpar[static_cast<std::size_t>(he.to)] = he.weight;
        stack.push_back(he.to);
      }
    }
  }
  return Tree(std::move(parent), std::move(wpar), root);
}

}  // namespace

TreeSearchResult improve_tree_stretch(const Graph& g, const Tree& seed,
                                      const TreeSearchOptions& options, Rng& rng) {
  ARROWDQ_ASSERT(g.node_count() == seed.node_count());
  AllPairs apsp(g);

  Tree current = seed;
  double cur_obj = objective_value(apsp, current, options.objective);

  TreeSearchResult result{current, cur_obj, cur_obj, 0, 0};

  int stale = 0;
  std::vector<Edge> all_edges(g.edges().begin(), g.edges().end());
  for (int it = 0; it < options.max_iterations && stale < options.patience; ++it) {
    ++result.examined_swaps;
    // Pick a random non-tree edge to insert.
    const Edge& insert =
        all_edges[static_cast<std::size_t>(rng.next_below(all_edges.size()))];
    // Skip if already a tree edge (parent relation either way).
    auto is_tree_edge = [&](NodeId a, NodeId b) {
      return (a != current.root() && current.parent(a) == b) ||
             (b != current.root() && current.parent(b) == a);
    };
    if (is_tree_edge(insert.u, insert.v)) {
      ++stale;
      continue;
    }
    // The cycle closed by `insert` is the tree path u..v; removing any edge
    // on it keeps a spanning tree. Pick a random one.
    auto path = current.path(insert.u, insert.v);
    ARROWDQ_ASSERT(path.size() >= 2);
    auto k = static_cast<std::size_t>(rng.next_below(path.size() - 1));
    NodeId a = path[k], b = path[k + 1];

    // Rebuild the edge list with the swap applied.
    std::vector<Edge> edges = tree_edges(current);
    bool removed = false;
    for (auto& e : edges) {
      if ((e.u == a && e.v == b) || (e.u == b && e.v == a)) {
        e = insert;
        removed = true;
        break;
      }
    }
    ARROWDQ_ASSERT(removed);
    Tree candidate = tree_from_edges(g.node_count(), edges, current.root());
    double cand_obj = objective_value(apsp, candidate, options.objective);
    if (cand_obj < cur_obj) {
      current = std::move(candidate);
      cur_obj = cand_obj;
      ++result.improving_swaps;
      stale = 0;
    } else {
      ++stale;
    }
  }

  result.tree = current;
  result.final_objective = cur_obj;
  return result;
}

}  // namespace arrowdq
