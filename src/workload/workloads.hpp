// Request-set generators spanning the paper's load regimes:
// the sequential case of Demmer-Herlihy (requests spaced farther apart than
// the tree diameter), the fully concurrent one-shot case of Herlihy-
// Tirthapura-Wattenhofer, and the general dynamic case (Poisson arrivals,
// bursts, hotspots) this paper analyzes.
#pragma once

#include <vector>

#include "proto/request.hpp"
#include "support/random.hpp"
#include "support/types.hpp"

namespace arrowdq {

/// All nodes in `nodes` request at t = 0 (the one-shot concurrent case).
RequestSet one_shot_burst(const std::vector<NodeId>& nodes, NodeId root);

/// Every node 0..n-1 requests at t = 0.
RequestSet one_shot_all(NodeId n, NodeId root);

/// `count` requests from uniformly random nodes, consecutive issue times
/// separated by `gap_units` (choose gap >= tree diameter for the sequential
/// regime where no two requests are concurrently active).
RequestSet sequential_random(NodeId n, NodeId root, int count, Weight gap_units, Rng& rng);

/// Poisson arrivals: `count` requests with Exp(rate_per_unit) inter-arrival
/// times (in units) from uniformly random nodes. Higher rate = higher
/// contention.
RequestSet poisson_uniform(NodeId n, NodeId root, int count, double rate_per_unit, Rng& rng);

/// Poisson arrivals with a hotspot: a fraction `hot_probability` of requests
/// come from the single node `hot_node`, the rest uniform.
RequestSet poisson_hotspot(NodeId n, NodeId root, int count, double rate_per_unit,
                           NodeId hot_node, double hot_probability, Rng& rng);

/// `bursts` bursts of `burst_size` simultaneous requests from random nodes,
/// bursts separated by `burst_gap_units`.
RequestSet bursty(NodeId n, NodeId root, int bursts, int burst_size, Weight burst_gap_units,
                  Rng& rng);

/// Requests restricted to random nodes of a sub-range [lo, hi] (locality
/// study: all activity in one region of the tree).
RequestSet localized_burst(NodeId lo, NodeId hi, NodeId root, int count, Rng& rng);

}  // namespace arrowdq
