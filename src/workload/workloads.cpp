#include "workload/workloads.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace arrowdq {

RequestSet one_shot_burst(const std::vector<NodeId>& nodes, NodeId root) {
  std::vector<std::pair<NodeId, Time>> items;
  items.reserve(nodes.size());
  for (NodeId v : nodes) items.emplace_back(v, 0);
  return RequestSet(root, std::move(items));
}

RequestSet one_shot_all(NodeId n, NodeId root) {
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) nodes.push_back(v);
  return one_shot_burst(nodes, root);
}

RequestSet sequential_random(NodeId n, NodeId root, int count, Weight gap_units, Rng& rng) {
  ARROWDQ_ASSERT_MSG(count >= 0 && gap_units >= 0, "need count >= 0 and gap >= 0");
  std::vector<std::pair<NodeId, Time>> items;
  items.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto v = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    items.emplace_back(v, units_to_ticks(gap_units) * i);
  }
  return RequestSet(root, std::move(items));
}

namespace {
RequestSet poisson_impl(NodeId n, NodeId root, int count, double rate_per_unit, NodeId hot_node,
                        double hot_probability, Rng& rng) {
  ARROWDQ_ASSERT_MSG(count >= 0, "count must be >= 0");
  ARROWDQ_ASSERT_MSG(rate_per_unit > 0.0, "rate must be > 0");
  std::vector<std::pair<NodeId, Time>> items;
  items.reserve(static_cast<std::size_t>(count));
  double t_units = 0.0;
  for (int i = 0; i < count; ++i) {
    t_units += rng.next_exponential(rate_per_unit);
    NodeId v;
    if (hot_node != kNoNode && rng.next_bool(hot_probability)) {
      v = hot_node;
    } else {
      v = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    }
    auto ticks = static_cast<Time>(std::llround(t_units * static_cast<double>(kTicksPerUnit)));
    items.emplace_back(v, ticks);
  }
  return RequestSet(root, std::move(items));
}
}  // namespace

RequestSet poisson_uniform(NodeId n, NodeId root, int count, double rate_per_unit, Rng& rng) {
  return poisson_impl(n, root, count, rate_per_unit, kNoNode, 0.0, rng);
}

RequestSet poisson_hotspot(NodeId n, NodeId root, int count, double rate_per_unit,
                           NodeId hot_node, double hot_probability, Rng& rng) {
  ARROWDQ_ASSERT_MSG(hot_node >= 0 && hot_node < n, "hot node must be a node");
  ARROWDQ_ASSERT_MSG(hot_probability >= 0.0 && hot_probability <= 1.0, "hot probability must be in [0, 1]");
  return poisson_impl(n, root, count, rate_per_unit, hot_node, hot_probability, rng);
}

RequestSet bursty(NodeId n, NodeId root, int bursts, int burst_size, Weight burst_gap_units,
                  Rng& rng) {
  ARROWDQ_ASSERT_MSG(bursts >= 0 && burst_size >= 0 && burst_gap_units >= 0, "burst parameters must be >= 0");
  std::vector<std::pair<NodeId, Time>> items;
  items.reserve(static_cast<std::size_t>(bursts) * static_cast<std::size_t>(burst_size));
  for (int b = 0; b < bursts; ++b) {
    Time t = units_to_ticks(burst_gap_units) * b;
    for (int i = 0; i < burst_size; ++i) {
      auto v = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
      items.emplace_back(v, t);
    }
  }
  return RequestSet(root, std::move(items));
}

RequestSet localized_burst(NodeId lo, NodeId hi, NodeId root, int count, Rng& rng) {
  ARROWDQ_ASSERT_MSG(lo <= hi, "need lo <= hi");
  std::vector<std::pair<NodeId, Time>> items;
  items.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    auto v = static_cast<NodeId>(lo + static_cast<NodeId>(rng.next_below(span)));
    items.emplace_back(v, 0);
  }
  return RequestSet(root, std::move(items));
}

}  // namespace arrowdq
