// Self-stabilizing repair of corrupted arrow pointer state.
//
// Herlihy & Tirthapura (DISC 2001) showed the arrow protocol can be made
// self-stabilizing with "simple local checking and correction actions". We
// reproduce that layer in simplified form: each node keeps a hop-count
// estimate h(v) of its distance to the sink; one synchronous round has every
// node locally verify
//   (1) link(v) is a tree neighbour or v itself, and
//   (2) if link(v) == v then v is the designated anchor, else
//       h(v) == h(link(v)) + 1,
// and on failure reset (link(v), h(v)) to the tree parent toward the anchor
// and its depth. Any illegal configuration (cycles, multiple sinks, dangling
// pointers) violates a local check somewhere, and corrected nodes are stable,
// so the system converges to the legal "all arrows toward the anchor" state
// within O(depth) rounds of the first full correction wave.
//
// Simplification vs. the paper: recovery re-centers the queue tail at the
// fixed anchor instead of preserving a surviving tail; queuing resumes
// correctly for all requests issued after stabilization.
#pragma once

#include <vector>

#include "graph/tree.hpp"
#include "support/types.hpp"

namespace arrowdq {

struct StabilizeResult {
  int rounds = 0;        // synchronous rounds until no check failed
  int corrections = 0;   // total local resets performed
  bool converged = false;
};

class SelfStabilizer {
 public:
  /// `anchor` is the node recovery converges to (usually the tree root).
  SelfStabilizer(const Tree& tree, NodeId anchor);

  /// One synchronous round of local check-and-correct over `links` and hop
  /// estimates `h` (both indexed by node). Returns corrections made.
  int round(std::vector<NodeId>& links, std::vector<NodeId>& h) const;

  /// Run rounds until a full round makes no correction (or max_rounds).
  StabilizeResult stabilize(std::vector<NodeId>& links, std::vector<NodeId>& h,
                            int max_rounds) const;

  /// Convenience: derive initial hop estimates by following each pointer
  /// chain for at most n steps (unreachable/cyclic chains get n).
  std::vector<NodeId> estimate_hops(const std::vector<NodeId>& links) const;

 private:
  const Tree& tree_;
  Tree anchored_;  // tree re-rooted at the anchor (parent = direction to reset to)
  NodeId anchor_;
};

}  // namespace arrowdq
