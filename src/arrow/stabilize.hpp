// Self-stabilizing repair of corrupted arrow pointer state.
//
// Herlihy & Tirthapura (DISC 2001) showed the arrow protocol can be made
// self-stabilizing with "simple local checking and correction actions". We
// reproduce that layer in simplified form: each node keeps a hop-count
// estimate h(v) of its distance to the sink; one synchronous round has every
// node locally verify
//   (1) link(v) is a tree neighbour or v itself, and
//   (2) if link(v) == v then v is the designated anchor, else
//       h(v) == h(link(v)) + 1,
// and on failure reset (link(v), h(v)) to the tree parent toward the anchor
// and its depth. Any illegal configuration (cycles, multiple sinks, dangling
// pointers) violates a local check somewhere, and corrected nodes are stable,
// so the system converges to the legal "all arrows toward the anchor" state
// within O(depth) rounds of the first full correction wave.
//
// Simplification vs. the paper: recovery re-centers the queue tail at the
// fixed anchor instead of preserving a surviving tail; queuing resumes
// correctly for all requests issued after stabilization.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/tree.hpp"
#include "support/types.hpp"

namespace arrowdq {

struct StabilizeResult {
  int rounds = 0;        // synchronous rounds until no check failed
  int corrections = 0;   // total local resets performed
  bool converged = false;
};

class SelfStabilizer {
 public:
  /// `anchor` is the node recovery converges to (usually the tree root).
  SelfStabilizer(const Tree& tree, NodeId anchor);

  /// One synchronous round of local check-and-correct over `links` and hop
  /// estimates `h` (both indexed by node). Returns corrections made.
  int round(std::vector<NodeId>& links, std::vector<NodeId>& h) const;

  /// Run rounds until a full round makes no correction (or max_rounds).
  StabilizeResult stabilize(std::vector<NodeId>& links, std::vector<NodeId>& h,
                            int max_rounds) const;

  /// Partition-aware variant: stabilize only the nodes whose `side[v]` equals
  /// `tag`, converging them toward `side_anchor` (which must lie in the side
  /// and be, within the side, an ancestor-most node of the anchored tree —
  /// i.e. the cut root for the isolated subtree, or the global anchor for the
  /// remainder). Nodes outside the side are never read from or written to:
  /// a pointer leaving the side is illegal and resets to the anchored parent,
  /// which for every in-side node except `side_anchor` is itself in-side.
  StabilizeResult stabilize_side(std::vector<NodeId>& links, std::vector<NodeId>& h,
                                 int max_rounds, const std::vector<std::uint8_t>& side,
                                 std::uint8_t tag, NodeId side_anchor) const;

  /// Convenience: derive initial hop estimates by following each pointer
  /// chain for at most n steps (unreachable/cyclic chains get n).
  std::vector<NodeId> estimate_hops(const std::vector<NodeId>& links) const;

  /// The tree re-rooted at the anchor (reset directions / depths).
  const Tree& anchored() const { return anchored_; }

 private:
  int round_side(std::vector<NodeId>& links, std::vector<NodeId>& h,
                 const std::vector<std::uint8_t>& side, std::uint8_t tag,
                 NodeId side_anchor) const;

  const Tree& tree_;
  Tree anchored_;  // tree re-rooted at the anchor (parent = direction to reset to)
  NodeId anchor_;
};

/// Membership mask of the subtree hanging below `cut` in `anchored` (the
/// anchor-rooted tree): mask[v] == 1 iff v is cut or a descendant of cut.
/// Severing the edge (cut, parent(cut)) bipartitions the tree into exactly
/// the mask-1 and mask-0 sides.
std::vector<std::uint8_t> subtree_mask(const Tree& anchored, NodeId cut);

/// Deterministically remap a raw seeded partition victim to a legal cut
/// root: the anchor (root of `anchored`) has no parent edge to sever, so it
/// is replaced by its smallest child. Returns kNoNode when the tree has a
/// single node (no edge can be cut).
NodeId remap_partition_cut(const Tree& anchored, NodeId victim);

/// Deterministically remap a raw seeded churn victim to a legal departure:
/// never the anchor, and a leaf of the anchored tree when `leaf_only` is
/// set. Scans forward (wrapping) from the raw draw for the first eligible
/// node; returns kNoNode when none exists.
NodeId remap_churn_victim(const Tree& anchored, NodeId victim, bool leaf_only);

}  // namespace arrowdq
