#include "arrow/stabilize.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arrowdq {

SelfStabilizer::SelfStabilizer(const Tree& tree, NodeId anchor)
    : tree_(tree), anchored_(tree.rerooted(anchor)), anchor_(anchor) {
  ARROWDQ_ASSERT(anchor >= 0 && anchor < tree.node_count());
}

int SelfStabilizer::round(std::vector<NodeId>& links, std::vector<NodeId>& h) const {
  auto n = tree_.node_count();
  ARROWDQ_ASSERT(static_cast<NodeId>(links.size()) == n);
  ARROWDQ_ASSERT(static_cast<NodeId>(h.size()) == n);
  // Synchronous semantics: all checks read the previous round's state.
  const std::vector<NodeId> links_prev = links;
  const std::vector<NodeId> h_prev = h;
  int corrections = 0;
  for (NodeId v = 0; v < n; ++v) {
    auto vi = static_cast<std::size_t>(v);
    NodeId l = links_prev[vi];
    bool ok;
    if (l == v) {
      ok = v == anchor_ && h_prev[vi] == 0;
    } else if (l < 0 || l >= n) {
      ok = false;
    } else {
      auto nb = tree_.neighbors(v);
      bool neighbour = std::find(nb.begin(), nb.end(), l) != nb.end();
      ok = neighbour && h_prev[vi] == h_prev[static_cast<std::size_t>(l)] + 1;
      // A mutual pair (v -> l, l -> v) can look locally consistent from one
      // end when the hop estimates happen to line up, yet no legal
      // configuration contains a 2-cycle. Without this check the pair is a
      // permanent livelock: the failing end keeps resetting to its anchored
      // parent — which is exactly l — while l passes forever, so the round
      // never reaches zero corrections.
      if (ok && links_prev[static_cast<std::size_t>(l)] == v) ok = false;
    }
    if (!ok) {
      links[vi] = v == anchor_ ? v : anchored_.parent(v);
      h[vi] = anchored_.depth(v);
      ++corrections;
    }
  }
  return corrections;
}

StabilizeResult SelfStabilizer::stabilize(std::vector<NodeId>& links, std::vector<NodeId>& h,
                                          int max_rounds) const {
  StabilizeResult res;
  for (int r = 0; r < max_rounds; ++r) {
    int c = round(links, h);
    ++res.rounds;
    res.corrections += c;
    if (c == 0) {
      res.converged = true;
      break;
    }
  }
  return res;
}

std::vector<NodeId> SelfStabilizer::estimate_hops(const std::vector<NodeId>& links) const {
  auto n = tree_.node_count();
  std::vector<NodeId> h(static_cast<std::size_t>(n), n);
  for (NodeId v = 0; v < n; ++v) {
    NodeId cur = v;
    NodeId steps = 0;
    while (steps <= n && cur >= 0 && cur < n &&
           links[static_cast<std::size_t>(cur)] != cur) {
      cur = links[static_cast<std::size_t>(cur)];
      ++steps;
    }
    if (steps <= n && cur >= 0 && cur < n) h[static_cast<std::size_t>(v)] = steps;
  }
  return h;
}

}  // namespace arrowdq
