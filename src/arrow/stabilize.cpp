#include "arrow/stabilize.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arrowdq {

SelfStabilizer::SelfStabilizer(const Tree& tree, NodeId anchor)
    : tree_(tree), anchored_(tree.rerooted(anchor)), anchor_(anchor) {
  ARROWDQ_ASSERT(anchor >= 0 && anchor < tree.node_count());
}

int SelfStabilizer::round(std::vector<NodeId>& links, std::vector<NodeId>& h) const {
  auto n = tree_.node_count();
  ARROWDQ_ASSERT(static_cast<NodeId>(links.size()) == n);
  ARROWDQ_ASSERT(static_cast<NodeId>(h.size()) == n);
  // Synchronous semantics: all checks read the previous round's state.
  const std::vector<NodeId> links_prev = links;
  const std::vector<NodeId> h_prev = h;
  int corrections = 0;
  for (NodeId v = 0; v < n; ++v) {
    auto vi = static_cast<std::size_t>(v);
    NodeId l = links_prev[vi];
    bool ok;
    if (l == v) {
      ok = v == anchor_ && h_prev[vi] == 0;
    } else if (l < 0 || l >= n) {
      ok = false;
    } else {
      auto nb = tree_.neighbors(v);
      bool neighbour = std::find(nb.begin(), nb.end(), l) != nb.end();
      ok = neighbour && h_prev[vi] == h_prev[static_cast<std::size_t>(l)] + 1;
      // A mutual pair (v -> l, l -> v) can look locally consistent from one
      // end when the hop estimates happen to line up, yet no legal
      // configuration contains a 2-cycle. Without this check the pair is a
      // permanent livelock: the failing end keeps resetting to its anchored
      // parent — which is exactly l — while l passes forever, so the round
      // never reaches zero corrections.
      if (ok && links_prev[static_cast<std::size_t>(l)] == v) ok = false;
    }
    if (!ok) {
      links[vi] = v == anchor_ ? v : anchored_.parent(v);
      h[vi] = anchored_.depth(v);
      ++corrections;
    }
  }
  return corrections;
}

StabilizeResult SelfStabilizer::stabilize(std::vector<NodeId>& links, std::vector<NodeId>& h,
                                          int max_rounds) const {
  StabilizeResult res;
  for (int r = 0; r < max_rounds; ++r) {
    int c = round(links, h);
    ++res.rounds;
    res.corrections += c;
    if (c == 0) {
      res.converged = true;
      break;
    }
  }
  return res;
}

int SelfStabilizer::round_side(std::vector<NodeId>& links, std::vector<NodeId>& h,
                               const std::vector<std::uint8_t>& side, std::uint8_t tag,
                               NodeId side_anchor) const {
  auto n = tree_.node_count();
  ARROWDQ_ASSERT(static_cast<NodeId>(links.size()) == n);
  ARROWDQ_ASSERT(static_cast<NodeId>(h.size()) == n);
  ARROWDQ_ASSERT(static_cast<NodeId>(side.size()) == n);
  ARROWDQ_ASSERT(side_anchor >= 0 && side_anchor < n &&
                 side[static_cast<std::size_t>(side_anchor)] == tag);
  const NodeId base_depth = anchored_.depth(side_anchor);
  const std::vector<NodeId> links_prev = links;
  const std::vector<NodeId> h_prev = h;
  int corrections = 0;
  for (NodeId v = 0; v < n; ++v) {
    auto vi = static_cast<std::size_t>(v);
    if (side[vi] != tag) continue;
    NodeId l = links_prev[vi];
    bool ok;
    if (l == v) {
      ok = v == side_anchor && h_prev[vi] == 0;
    } else if (l < 0 || l >= n || side[static_cast<std::size_t>(l)] != tag) {
      // A pointer leaving the side cannot be followed while the cut is up.
      ok = false;
    } else {
      auto nb = tree_.neighbors(v);
      bool neighbour = std::find(nb.begin(), nb.end(), l) != nb.end();
      ok = neighbour && h_prev[vi] == h_prev[static_cast<std::size_t>(l)] + 1;
      if (ok && links_prev[static_cast<std::size_t>(l)] == v) ok = false;  // 2-cycle
    }
    if (!ok) {
      // The anchored parent of every in-side node except the side anchor is
      // itself in-side (the side is a connected piece of the anchored tree),
      // so resets never point across the cut.
      links[vi] = v == side_anchor ? v : anchored_.parent(v);
      h[vi] = anchored_.depth(v) - base_depth;
      ++corrections;
    }
  }
  return corrections;
}

StabilizeResult SelfStabilizer::stabilize_side(std::vector<NodeId>& links,
                                               std::vector<NodeId>& h, int max_rounds,
                                               const std::vector<std::uint8_t>& side,
                                               std::uint8_t tag, NodeId side_anchor) const {
  StabilizeResult res;
  for (int r = 0; r < max_rounds; ++r) {
    int c = round_side(links, h, side, tag, side_anchor);
    ++res.rounds;
    res.corrections += c;
    if (c == 0) {
      res.converged = true;
      break;
    }
  }
  return res;
}

std::vector<std::uint8_t> subtree_mask(const Tree& anchored, NodeId cut) {
  auto n = anchored.node_count();
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(n), 0);
  if (cut < 0 || cut >= n) return mask;
  std::vector<NodeId> stack{cut};
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    mask[static_cast<std::size_t>(v)] = 1;
    for (NodeId c : anchored.children(v)) stack.push_back(c);
  }
  return mask;
}

NodeId remap_partition_cut(const Tree& anchored, NodeId victim) {
  auto n = anchored.node_count();
  if (n <= 1) return kNoNode;
  if (victim < 0 || victim >= n) victim = 0;
  if (victim != anchored.root()) return victim;
  auto kids = anchored.children(victim);
  NodeId best = kids.front();
  for (NodeId c : kids) best = std::min(best, c);
  return best;
}

NodeId remap_churn_victim(const Tree& anchored, NodeId victim, bool leaf_only) {
  auto n = anchored.node_count();
  if (n <= 1) return kNoNode;
  if (victim < 0 || victim >= n) victim = 0;
  for (NodeId step = 0; step < n; ++step) {
    NodeId v = static_cast<NodeId>((victim + step) % n);
    if (v == anchored.root()) continue;
    if (leaf_only && !anchored.children(v).empty()) continue;
    return v;
  }
  return kNoNode;
}

std::vector<NodeId> SelfStabilizer::estimate_hops(const std::vector<NodeId>& links) const {
  auto n = tree_.node_count();
  std::vector<NodeId> h(static_cast<std::size_t>(n), n);
  for (NodeId v = 0; v < n; ++v) {
    NodeId cur = v;
    NodeId steps = 0;
    while (steps <= n && cur >= 0 && cur < n &&
           links[static_cast<std::size_t>(cur)] != cur) {
      cur = links[static_cast<std::size_t>(cur)];
      ++steps;
    }
    if (steps <= n && cur >= 0 && cur < n) h[static_cast<std::size_t>(v)] = steps;
  }
  return h;
}

}  // namespace arrowdq
