#include "arrow/invariants.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arrowdq {

LinkStateReport check_link_state(const std::vector<NodeId>& links, const Tree& tree) {
  LinkStateReport rep;
  auto n = static_cast<NodeId>(links.size());
  ARROWDQ_ASSERT(n == tree.node_count());

  for (NodeId v = 0; v < n; ++v) {
    NodeId l = links[static_cast<std::size_t>(v)];
    if (l == v) {
      ++rep.sink_count;
      if (rep.sink == kNoNode) rep.sink = v;
      continue;
    }
    bool neighbour = false;
    if (l >= 0 && l < n) {
      auto nb = tree.neighbors(v);
      neighbour = std::find(nb.begin(), nb.end(), l) != nb.end();
    }
    if (!neighbour) ++rep.illegal_pointers;
  }

  if (rep.sink_count == 1 && rep.illegal_pointers == 0) {
    // Follow each chain with a step budget of n; count failures to reach.
    for (NodeId v = 0; v < n; ++v) {
      NodeId cur = v;
      NodeId steps = 0;
      while (cur != rep.sink && steps <= n) {
        cur = links[static_cast<std::size_t>(cur)];
        ++steps;
      }
      if (cur != rep.sink) ++rep.unreachable;
    }
  } else {
    rep.unreachable = n;  // not meaningful without a unique sink
  }

  rep.valid = rep.sink_count == 1 && rep.illegal_pointers == 0 && rep.unreachable == 0;
  return rep;
}

bool links_form_in_tree(const std::vector<NodeId>& links, const Tree& tree) {
  return check_link_state(links, tree).valid;
}

}  // namespace arrowdq
