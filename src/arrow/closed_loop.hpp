// Closed-loop experiment driver reproducing Section 5's measurement:
// "Each processor issued the next queuing request immediately after it
//  learnt about the completion of its previous request", with completion
// defined as "the identity of the predecessor was returned to the processor".
//
// Per round, a processor v issues queue(a); the queue message finds the sink
// w (zero messages if v is itself the sink); w then returns the predecessor
// identity to v as a direct message; on receipt v issues its next request.
//
// Figure 10 plots the total makespan for `requests_per_node` rounds per
// processor as the node count grows; Figure 11 plots the average number of
// tree messages (hops) per queuing operation.
#pragma once

#include <cstdint>
#include <functional>

#include "graph/implicit.hpp"
#include "graph/tree.hpp"
#include "sim/fault.hpp"
#include "sim/latency.hpp"
#include "support/stats.hpp"
#include "support/types.hpp"

namespace arrowdq {

struct ClosedLoopConfig {
  std::int64_t requests_per_node = 1000;
  /// Serial per-node message processing cost in ticks. Section 5 ran on real
  /// CPUs whose message handling serializes; 0 reproduces the cost-free
  /// local processing of the theoretical model.
  Time service_time = 0;
  /// Latency (ticks) of the direct predecessor-identity reply from the sink
  /// back to the requester (dG in the underlying network). Defaults to one
  /// unit for every pair, matching the complete-graph SP2 setup.
  std::function<Time(NodeId, NodeId)> notify_latency;
  /// Fault schedule (default: none). Crash windows corrupt the victim's
  /// pointer state and run a SelfStabilizer recovery wave; stale queue
  /// messages are absorbed at the live sink and answered from there.
  /// Partition windows sever a subtree (cross-cut queue and notify traffic
  /// defers to the heal instant and drains FIFO) and churn events splice a
  /// departed node toward the root via the same wave. Note a fault window
  /// scheduled past the last round completion still extends the makespan by
  /// its (empty) trailing event.
  FaultSpec fault;
};

struct ClosedLoopResult {
  Time makespan = 0;                   // ticks until every node finished
  std::int64_t total_requests = 0;
  std::uint64_t tree_messages = 0;     // queue() messages over tree edges
  std::uint64_t notify_messages = 0;   // predecessor-identity replies
  double avg_hops_per_request = 0.0;   // Figure 11's metric
  double avg_round_latency_units = 0.0;  // mean issue->reply time per request
  // Degradation/recovery metrics (all zero fault-free).
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::int32_t crashes = 0;
  int stabilize_rounds = 0;
  int stabilize_corrections = 0;
  std::int32_t partitions = 0;             // partition windows that opened
  std::uint64_t partition_backlog = 0;     // cross-cut messages queued, drained at heal
  std::int32_t reselections = 0;           // churn tree-edge splices applied
};

/// Run the closed-loop workload with the arrow protocol on spanning tree T.
/// Statically dispatched: the four standard latency models are devirtualized
/// once per run and the network handler is a typed callable (no per-message
/// vtable or std::function indirection).
ClosedLoopResult run_arrow_closed_loop(const Tree& tree, LatencyModel& latency,
                                       const ClosedLoopConfig& config);

/// The same driver forced onto the dynamically dispatched path (virtual
/// latency sampling + std::function handler). Tick-identical to
/// run_arrow_closed_loop by construction; kept as the benchmark/test
/// reference for the static-dispatch speedup.
ClosedLoopResult run_arrow_closed_loop_dynamic(const Tree& tree, LatencyModel& latency,
                                               const ClosedLoopConfig& config);

/// The scale path: the same closed-loop driver on an implicit topology
/// (graph/implicit.hpp) — tree parents computed in closed form, network edge
/// ids derived on the fly, CompactSimulator's 32-byte event slots, 32-bit
/// round counters. No Graph, Tree, or APSP is materialized, so memory is a
/// small constant per node and Figure-10-style runs reach n = 10^6-10^7.
/// Tick-identical to run_arrow_closed_loop on the materialized equivalent
/// of `topo` by construction (one driver implementation; pinned by
/// tests/scale_test.cpp). Topology faults (crash, partition, churn) are not
/// supported here — the recovery waves need a real Tree — and are rejected
/// by assertion; message-level faults (loss, duplication, jitter, spikes)
/// work normally.
ClosedLoopResult run_arrow_closed_loop_implicit(const ImplicitTopology& topo,
                                                LatencyModel& latency,
                                                const ClosedLoopConfig& config);

}  // namespace arrowdq
