#include "arrow/closed_loop.hpp"

#include <functional>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "arrow/stabilize.hpp"
#include "graph/implicit.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace arrowdq {

namespace {

enum class MsgKind : std::uint8_t { kQueue, kNotify };

struct LoopMsg {
  MsgKind kind = MsgKind::kQueue;
  RequestId req = kNoRequest;
  NodeId requester = kNoNode;  // issuer of `req` (for the reply)
  std::int32_t hops = 0;
  std::int32_t epoch = 0;  // crash-recovery epoch (kQueue only); 0 fault-free
};

/// Topology policies for the closed-loop driver. The protocol core reads
/// only node_count / root / parent plus a Network-compatible edge index, so
/// one driver implementation serves both tiers — which is what makes the
/// implicit path tick-identical to the materialized one by construction.
///
/// Materialized: a Tree and its Graph, the default 64-byte event slots,
/// crash recovery available (SelfStabilizer walks the real tree).
struct MaterializedTopo {
  const Tree* tree = nullptr;
  using Index = Graph;
  using Sim = Simulator;
  /// Round counters are kept wide; requests_per_node is an int64 axis.
  using RoundCount = std::int64_t;
  static constexpr bool kMaterialized = true;
  NodeId node_count() const { return tree->node_count(); }
  NodeId root() const { return tree->root(); }
  NodeId parent(NodeId v) const { return tree->parent(v); }
  Index make_index() const { return tree->as_graph(); }
};

/// Implicit: closed-form parents and on-the-fly edge ids (no stored Graph,
/// no stored parent array), CompactSimulator's 32-byte event slots, 32-bit
/// round counters — the compact configuration for million-node runs.
struct ImplicitLoopTopo {
  ImplicitTopology topo;
  using Index = ImplicitTreeIndex;
  using Sim = CompactSimulator;
  using RoundCount = std::int32_t;
  static constexpr bool kMaterialized = false;
  NodeId node_count() const { return topo.n; }
  NodeId root() const { return topo.root; }
  NodeId parent(NodeId v) const { return topo.tree_parent(v); }
  Index make_index() const { return ImplicitTreeIndex{topo}; }
};

/// Closed-loop arrow driver. The protocol core mirrors ArrowEngine; requests
/// are generated on the fly, one outstanding per node. Templated on the
/// latency sampler and the network handler so the default path runs with no
/// virtual `sample` call and no std::function dispatch between a delivery
/// and the protocol logic (`run_arrow_closed_loop_dynamic` instantiates the
/// same driver with both dynamic layers for benchmarking and equivalence
/// tests), and on the topology policy so the same protocol code runs
/// materialized or implicit (`run_arrow_closed_loop_implicit`).
template <typename Latency, typename Handler, typename Faults = NoFaults,
          typename Topo = MaterializedTopo>
class Driver {
 public:
  Driver(Topo topo, Latency latency, Faults faults, const ClosedLoopConfig& config)
      : topo_(std::move(topo)),
        config_(config),
        index_(topo_.make_index()),
        net_(index_, sim_, std::move(latency), std::move(faults)),
        link_(static_cast<std::size_t>(topo_.node_count())),
        last_req_(static_cast<std::size_t>(topo_.node_count()), kNoRequest),
        issued_(static_cast<std::size_t>(topo_.node_count()), 0),
        issue_time_(static_cast<std::size_t>(topo_.node_count()), 0) {
    // One outstanding request per node bounds concurrently pending events
    // and in-flight messages to O(n).
    const auto n = static_cast<std::size_t>(topo_.node_count());
    if constexpr (Topo::kMaterialized) {
      sim_.reserve(4 * n);
      net_.reserve_messages(2 * n);
    } else {
      // At million-node scale the reserve itself is the memory budget:
      // ~n events (every node's t=0 issue) and ~n in-flight messages are
      // live at once; growth past the hint stays amortized.
      sim_.reserve(n + n / 4 + 64);
      net_.reserve_messages(n + n / 4 + 64);
    }
    net_.set_service_time(config.service_time);
    NodeId root = topo_.root();
    for (NodeId v = 0; v < topo_.node_count(); ++v)
      link_[static_cast<std::size_t>(v)] = v == root ? v : topo_.parent(v);
    last_req_[static_cast<std::size_t>(root)] = kRootRequest;
    if constexpr (Faults::kActive) {
      crashes_ = crash_schedule(config.fault, topo_.node_count());
      crash_rng_ = Rng(mix64(config.fault.seed ^ 0xa770c4a54ULL));
      Faults& filt = net_.faults();
      if (!crashes_.empty() || !filt.partitions().empty() || !filt.churns().empty()) {
        if constexpr (Topo::kMaterialized) {
          stab_.emplace(*topo_.tree, root);
          // Remap the raw seeded draws to legal victims and install the
          // real tree bipartition for each cut (see arrow.cpp).
          for (std::size_t k = 0; k < filt.partitions().size(); ++k) {
            NodeId cut = remap_partition_cut(stab_->anchored(), filt.partitions()[k].victim);
            if (cut != kNoNode)
              filt.set_partition_cut(k, cut, subtree_mask(stab_->anchored(), cut));
          }
          for (std::size_t k = 0; k < filt.churns().size(); ++k)
            filt.set_churn_victim(
                k, remap_churn_victim(stab_->anchored(), filt.churns()[k].victim,
                                      config.fault.churn_leaf_only != 0));
        } else {
          // The registry keeps topology-fault schedules off the implicit
          // tier (resolve() materializes the tree instead); this is the
          // backstop for direct callers.
          ARROWDQ_ASSERT_MSG(false, "topology-fault recovery requires a materialized tree");
        }
      }
      partitions_ = filt.partitions();
      churns_ = filt.churns();
    }
  }

  void install(Handler h) { net_.set_handler(std::move(h)); }

  ClosedLoopResult run() {
    for (NodeId v = 0; v < topo_.node_count(); ++v) sim_.at(0, IssueEvent{this, v});
    if constexpr (Faults::kActive) {
      if (!crashes_.empty()) sim_.at(crashes_[0].at, CrashEvent{this, 0});
      if (!partitions_.empty()) sim_.at(partitions_[0].at, PartitionEvent{this, 0});
      if (!churns_.empty()) sim_.at(churns_[0].at, ChurnEvent{this, 0});
    }
    sim_.run();
    ClosedLoopResult res;
    res.makespan = sim_.now();
    res.total_requests = static_cast<std::int64_t>(topo_.node_count()) *
                         config_.requests_per_node;
    res.tree_messages = net_.stats().edge_messages;
    res.notify_messages = net_.stats().direct_messages;
    res.avg_hops_per_request =
        res.total_requests == 0
            ? 0.0
            : static_cast<double>(res.tree_messages) / static_cast<double>(res.total_requests);
    res.avg_round_latency_units =
        latency_count_ == 0 ? 0.0
                            : static_cast<double>(latency_sum_) /
                                  static_cast<double>(latency_count_) /
                                  static_cast<double>(kTicksPerUnit);
    if constexpr (Faults::kActive) {
      res.messages_dropped = net_.faults().stats().messages_dropped;
      res.messages_duplicated = net_.faults().stats().messages_duplicated;
      res.crashes = crashes_applied_;
      res.stabilize_rounds = stabilize_rounds_;
      res.stabilize_corrections = stabilize_corrections_;
      res.partitions = partitions_applied_;
      res.partition_backlog = net_.faults().stats().partition_deferred;
      res.reselections = reselections_;
    }
    return res;
  }

  void receive(NodeId from, NodeId at, const LoopMsg& m) {
    if (m.kind == MsgKind::kNotify) {
      // Replies ride outside the pointer dynamics, so they stay valid
      // across recovery waves — no epoch check.
      round_done(at);
      return;
    }
    if constexpr (Faults::kActive) {
      if (m.epoch != epoch_) {
        absorb(at, m);
        return;
      }
    }
    auto ui = static_cast<std::size_t>(at);
    NodeId next = link_[ui];
    link_[ui] = from;
    if (next != at) {
      net_.send(at, next, LoopMsg{MsgKind::kQueue, m.req, m.requester, m.hops + 1, epoch_});
      return;
    }
    // Sink found; return the predecessor identity to the requester.
    ARROWDQ_ASSERT(last_req_[ui] != kNoRequest);
    if (m.requester == at) {
      round_done(at);
    } else {
      net_.send_with_latency(at, m.requester, notify_latency(at, m.requester),
                             LoopMsg{MsgKind::kNotify, m.req, m.requester, 0, epoch_});
    }
  }

  void issue(NodeId v) {
    auto vi = static_cast<std::size_t>(v);
    if (issued_[vi] >= config_.requests_per_node) return;
    if constexpr (Faults::kActive) {
      // A crashed node cannot issue; retry when its down window closes.
      Time up = net_.faults().defer(v, sim_.now());
      if (up != sim_.now()) {
        sim_.at(up, IssueEvent{this, v});
        return;
      }
    }
    ++issued_[vi];
    ++next_id_;
    RequestId a = next_id_;
    issue_time_[vi] = sim_.now();
    if (link_[vi] == v) {
      RequestId pred = last_req_[vi];
      ARROWDQ_ASSERT(pred != kNoRequest);
      last_req_[vi] = a;
      // Predecessor found locally: the reply is local too (zero latency).
      round_done(v);
      return;
    }
    NodeId target = link_[vi];
    last_req_[vi] = a;
    link_[vi] = v;
    net_.send(v, target, LoopMsg{MsgKind::kQueue, a, v, 1, epoch_});
  }

 private:
  /// The one event the driver itself schedules: issue node v's next request.
  struct IssueEvent {
    Driver* driver;
    NodeId v;
    void operator()() const { driver->issue(v); }
  };
  static_assert(Topo::Sim::template fits_inline_v<IssueEvent>,
                "IssueEvent must stay on the simulator's inline path");

  struct CrashEvent {
    Driver* driver;
    std::size_t k;
    void operator()() const { driver->on_crash(k); }
  };

  struct PartitionEvent {
    Driver* driver;
    std::size_t k;
    void operator()() const { driver->on_partition(k); }
  };

  struct HealEvent {
    Driver* driver;
    std::size_t k;
    void operator()() const { driver->on_heal(k); }
  };

  struct ChurnEvent {
    Driver* driver;
    std::size_t k;
    void operator()() const { driver->on_churn(k); }
  };

  /// A stale queue message whose side has no sink during a partition
  /// window: park it until the window closes, then re-enter receive(). May
  /// exceed the simulator's inline slot — boxing is fine off the hot path.
  struct ParkedEvent {
    Driver* driver;
    NodeId at;
    LoopMsg msg;
    void operator()() const { driver->receive(at, at, msg); }
  };

  Time notify_latency(NodeId from, NodeId to) const {
    if (config_.notify_latency) return config_.notify_latency(from, to);
    return kTicksPerUnit;  // complete graph, unit pairwise latency
  }

  void round_done(NodeId v) {
    latency_sum_ += sim_.now() - issue_time_[static_cast<std::size_t>(v)];
    ++latency_count_;
    // Re-issue through the event loop (not recursively) so long local-only
    // streaks do not grow the call stack. Preparing the next request costs
    // one service interval of local CPU time — without this, a node holding
    // the tail would complete its whole budget of local requests in zero
    // simulated time, which no real processor can do.
    sim_.in(config_.service_time, IssueEvent{this, v});
  }

  NodeId current_sink() const {
    for (NodeId v = 0; v < static_cast<NodeId>(link_.size()); ++v)
      if (link_[static_cast<std::size_t>(v)] == v) return v;
    ARROWDQ_ASSERT_MSG(false, "no sink available to absorb a stale request");
    return kNoNode;
  }

  /// A pre-crash queue message: the pointer path it was chasing is gone, so
  /// the live sink queues the request behind its tail and answers the
  /// requester directly — the round completes, just via recovery. During a
  /// partition window the sink scan is restricted to the receiver's side of
  /// the cut; a sinkless side parks the message until the heal instant.
  void absorb(NodeId at, const LoopMsg& m) {
    NodeId sink = kNoNode;
    const std::size_t w = net_.faults().active_partition(sim_.now());
    if (w != Faults::kNoWindow) {
      const auto& side = net_.faults().partition_side(w);
      if (!side.empty()) {
        const std::uint8_t tag = side[static_cast<std::size_t>(at)];
        for (NodeId v = 0; v < static_cast<NodeId>(link_.size()); ++v) {
          auto vi = static_cast<std::size_t>(v);
          if (side[vi] == tag && link_[vi] == v) {
            sink = v;
            break;
          }
        }
        if (sink == kNoNode) {
          sim_.at(partitions_[w].up_at, ParkedEvent{this, at, m});
          return;
        }
      }
    }
    if (sink == kNoNode) sink = current_sink();
    auto si = static_cast<std::size_t>(sink);
    ARROWDQ_ASSERT_MSG(last_req_[si] != kNoRequest, "absorbing sink without a tail");
    last_req_[si] = m.req;
    if (m.requester == sink) {
      round_done(sink);
    } else {
      net_.send_with_latency(sink, m.requester, notify_latency(sink, m.requester),
                             LoopMsg{MsgKind::kNotify, m.req, m.requester, 0, epoch_});
    }
  }

  bool rounds_remaining() const {
    return latency_count_ < static_cast<std::int64_t>(topo_.node_count()) *
                                config_.requests_per_node;
  }

  void on_crash(std::size_t k) {
    if (rounds_remaining()) {
      corrupt_and_recover(crashes_[k].victim);
      if (k + 1 < crashes_.size()) sim_.at(crashes_[k + 1].at, CrashEvent{this, k + 1});
    }
  }

  /// Snapshot the pre-wave sink landscape (smallest live sink + whether the
  /// anchor already is one).
  void snapshot_sinks(NodeId& first_sink, bool& anchor_was_sink) const {
    const NodeId anchor = topo_.root();
    first_sink = kNoNode;
    anchor_was_sink = false;
    for (NodeId v = 0; v < static_cast<NodeId>(link_.size()); ++v) {
      if (link_[static_cast<std::size_t>(v)] == v) {
        if (first_sink == kNoNode) first_sink = v;
        if (v == anchor) anchor_was_sink = true;
      }
    }
  }

  /// The shared global recovery wave (crash, churn splice, partition heal):
  /// see arrow.cpp's one-shot driver for the invariant argument.
  void recover_global([[maybe_unused]] NodeId first_sink,
                      [[maybe_unused]] bool anchor_was_sink) {
    if constexpr (!Topo::kMaterialized) {
      ARROWDQ_ASSERT_MSG(false, "topology-fault recovery requires a materialized tree");
    } else {
      const NodeId n = topo_.node_count();
      const NodeId anchor = topo_.root();
      ARROWDQ_ASSERT_MSG(first_sink != kNoNode, "recovery wave with no live sink");
      RequestId adopted = last_req_[static_cast<std::size_t>(first_sink)];

      ++epoch_;

      auto h = stab_->estimate_hops(link_);
      StabilizeResult res = stab_->stabilize(link_, h, 4 * n + 8);
      ARROWDQ_ASSERT_MSG(res.converged, "self-stabilization did not converge");
      stabilize_rounds_ += res.rounds;
      stabilize_corrections_ += res.corrections;

      if (!anchor_was_sink) {
        ARROWDQ_ASSERT_MSG(adopted != kNoRequest, "pre-wave sink without a tail");
        last_req_[static_cast<std::size_t>(anchor)] = adopted;
      }
    }
  }

  void corrupt_and_recover([[maybe_unused]] NodeId victim) {
    if constexpr (!Topo::kMaterialized) {
      ARROWDQ_ASSERT_MSG(false, "crash recovery requires a materialized tree");
    } else {
      const NodeId n = topo_.node_count();
      const NodeId anchor = topo_.root();
      // Snapshot pending tails before corrupting anything.
      NodeId first_sink = kNoNode;
      bool anchor_was_sink = false;
      snapshot_sinks(first_sink, anchor_was_sink);
      ARROWDQ_ASSERT_MSG(first_sink != kNoNode, "crash with no live sink");

      auto wi = static_cast<std::size_t>(victim);
      switch (crash_rng_.next_below(3)) {
        case 0: link_[wi] = victim; break;
        case 1:
          link_[wi] = static_cast<NodeId>(crash_rng_.next_below(static_cast<std::uint64_t>(n)));
          break;
        default: link_[wi] = victim == anchor ? victim : topo_.parent(victim); break;
      }

      recover_global(first_sink, anchor_was_sink);
      ++crashes_applied_;
    }
  }

  /// Partition onset: one epoch bump, then each side holding a pre-onset
  /// sink reconciles toward its side anchor and adopts the side's smallest
  /// pre-onset tail (mirrors arrow.cpp's one-shot driver).
  void on_partition([[maybe_unused]] std::size_t k) {
    if constexpr (!Topo::kMaterialized) {
      ARROWDQ_ASSERT_MSG(false, "topology-fault recovery requires a materialized tree");
    } else {
      if (!rounds_remaining()) return;
      const NodeId n = topo_.node_count();
      const NodeId cut = partitions_[k].victim;
      const auto& side = net_.faults().partition_side(k);
      ++partitions_applied_;
      if (side.empty() || cut == kNoNode) {
        sim_.at(partitions_[k].up_at, HealEvent{this, k});
        return;
      }
      NodeId first_sink[2] = {kNoNode, kNoNode};
      bool anchor_sink[2] = {false, false};
      const NodeId side_anchor[2] = {topo_.root(), cut};
      for (NodeId v = 0; v < n; ++v) {
        auto vi = static_cast<std::size_t>(v);
        if (link_[vi] != v) continue;
        const std::uint8_t s = side[vi];
        if (first_sink[s] == kNoNode) first_sink[s] = v;
        if (v == side_anchor[s]) anchor_sink[s] = true;
      }

      ++epoch_;
      auto h = stab_->estimate_hops(link_);
      for (int s = 0; s < 2; ++s) {
        if (first_sink[s] == kNoNode) continue;  // frozen side
        RequestId adopted = last_req_[static_cast<std::size_t>(first_sink[s])];
        StabilizeResult res = stab_->stabilize_side(link_, h, 4 * n + 8, side,
                                                    static_cast<std::uint8_t>(s),
                                                    side_anchor[s]);
        ARROWDQ_ASSERT_MSG(res.converged, "side stabilization did not converge");
        stabilize_rounds_ += res.rounds;
        stabilize_corrections_ += res.corrections;
        if (!anchor_sink[s]) {
          ARROWDQ_ASSERT_MSG(adopted != kNoRequest, "pre-onset sink without a tail");
          last_req_[static_cast<std::size_t>(side_anchor[s])] = adopted;
        }
      }
      sim_.at(partitions_[k].up_at, HealEvent{this, k});
    }
  }

  /// Partition heal: merge the two pointer regimes with the shared global
  /// wave; the filter's queued cross-cut backlog drains at this instant.
  /// The merge runs even when the round budget is spent — quiescence must
  /// leave a unique sink — but a finished run schedules no further windows.
  void on_heal(std::size_t k) {
    NodeId first_sink = kNoNode;
    bool anchor_was_sink = false;
    snapshot_sinks(first_sink, anchor_was_sink);
    recover_global(first_sink, anchor_was_sink);
    if (rounds_remaining() && k + 1 < partitions_.size())
      sim_.at(partitions_[k + 1].at, PartitionEvent{this, k + 1});
  }

  /// Churn: splice the departed victim toward the root and re-center the
  /// queue with the shared global wave; the filter's node-down window
  /// covers its absence until rejoin.
  void on_churn([[maybe_unused]] std::size_t k) {
    if constexpr (!Topo::kMaterialized) {
      ARROWDQ_ASSERT_MSG(false, "topology-fault recovery requires a materialized tree");
    } else {
      if (!rounds_remaining()) return;
      const NodeId victim = churns_[k].victim;
      if (victim != kNoNode && victim != topo_.root()) {
        NodeId first_sink = kNoNode;
        bool anchor_was_sink = false;
        snapshot_sinks(first_sink, anchor_was_sink);
        link_[static_cast<std::size_t>(victim)] = stab_->anchored().parent(victim);
        recover_global(first_sink, anchor_was_sink);
        ++reselections_;
      }
      if (k + 1 < churns_.size()) sim_.at(churns_[k + 1].at, ChurnEvent{this, k + 1});
    }
  }

  Topo topo_;
  const ClosedLoopConfig& config_;
  typename Topo::Index index_;
  typename Topo::Sim sim_;
  Network<LoopMsg, Latency, Handler, Faults, typename Topo::Index, typename Topo::Sim> net_;
  std::vector<NodeId> link_;
  std::vector<RequestId> last_req_;
  std::vector<typename Topo::RoundCount> issued_;
  std::vector<Time> issue_time_;
  // Exact integer latency sum (not a Welford accumulator): integer addition
  // is order-free, so the sharded engine's per-lane sums reproduce this
  // average bit for bit for any shard count.
  __int128 latency_sum_ = 0;
  std::int64_t latency_count_ = 0;
  RequestId next_id_ = kRootRequest;
  std::int32_t epoch_ = 0;
  std::vector<CrashEventSpec> crashes_;
  std::vector<CrashEventSpec> partitions_;
  std::vector<CrashEventSpec> churns_;
  Rng crash_rng_{0};
  std::optional<SelfStabilizer> stab_;
  int stabilize_rounds_ = 0;
  int stabilize_corrections_ = 0;
  std::int32_t crashes_applied_ = 0;
  std::int32_t partitions_applied_ = 0;
  std::int32_t reselections_ = 0;
};

/// Typed handler for the statically dispatched path: one pointer, direct
/// call, fully inlinable into Network::deliver.
template <typename Latency, typename Faults = NoFaults, typename Topo = MaterializedTopo>
struct LoopHandler {
  Driver<Latency, LoopHandler, Faults, Topo>* driver = nullptr;
  void operator()(NodeId from, NodeId to, const LoopMsg& m) const {
    driver->receive(from, to, m);
  }
};

}  // namespace

ClosedLoopResult run_arrow_closed_loop(const Tree& tree, LatencyModel& latency,
                                       const ClosedLoopConfig& config) {
  ARROWDQ_ASSERT_MSG(config.requests_per_node >= 0, "requests_per_node must be >= 0");
  return with_static_latency(latency, [&](auto lat) {
    return with_fault_filter(config.fault, tree.node_count(), [&](auto filt) {
      using L = decltype(lat);
      using F = decltype(filt);
      Driver<L, LoopHandler<L, F>, F> driver(MaterializedTopo{&tree}, std::move(lat),
                                             std::move(filt), config);
      driver.install(LoopHandler<L, F>{&driver});
      return driver.run();
    });
  });
}

ClosedLoopResult run_arrow_closed_loop_implicit(const ImplicitTopology& topo,
                                                LatencyModel& latency,
                                                const ClosedLoopConfig& config) {
  ARROWDQ_ASSERT_MSG(config.requests_per_node >= 0, "requests_per_node must be >= 0");
  ARROWDQ_ASSERT_MSG(config.requests_per_node <= std::numeric_limits<std::int32_t>::max(),
                     "implicit tier keeps 32-bit round counters");
  ARROWDQ_ASSERT_MSG(!config.fault.has_topology_faults(),
                     "topology-fault recovery requires a materialized tree");
  return with_static_latency(latency, [&](auto lat) {
    return with_fault_filter(config.fault, topo.n, [&](auto filt) {
      using L = decltype(lat);
      using F = decltype(filt);
      using T = ImplicitLoopTopo;
      Driver<L, LoopHandler<L, F, T>, F, T> driver(ImplicitLoopTopo{topo}, std::move(lat),
                                                   std::move(filt), config);
      driver.install(LoopHandler<L, F, T>{&driver});
      return driver.run();
    });
  });
}

ClosedLoopResult run_arrow_closed_loop_dynamic(const Tree& tree, LatencyModel& latency,
                                               const ClosedLoopConfig& config) {
  ARROWDQ_ASSERT_MSG(config.requests_per_node >= 0, "requests_per_node must be >= 0");
  using Handler = std::function<void(NodeId, NodeId, const LoopMsg&)>;
  return with_fault_filter(config.fault, tree.node_count(), [&](auto filt) {
    using F = decltype(filt);
    Driver<VirtualSampler, Handler, F> driver(MaterializedTopo{&tree}, VirtualSampler{latency},
                                              std::move(filt), config);
    driver.install(
        [&driver](NodeId from, NodeId to, const LoopMsg& m) { driver.receive(from, to, m); });
    return driver.run();
  });
}

}  // namespace arrowdq
