#include "arrow/closed_loop.hpp"

#include <functional>
#include <utility>
#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"

namespace arrowdq {

namespace {

enum class MsgKind : std::uint8_t { kQueue, kNotify };

struct LoopMsg {
  MsgKind kind = MsgKind::kQueue;
  RequestId req = kNoRequest;
  NodeId requester = kNoNode;  // issuer of `req` (for the reply)
  std::int32_t hops = 0;
};

/// Closed-loop arrow driver. The protocol core mirrors ArrowEngine; requests
/// are generated on the fly, one outstanding per node. Templated on the
/// latency sampler and the network handler so the default path runs with no
/// virtual `sample` call and no std::function dispatch between a delivery
/// and the protocol logic (`run_arrow_closed_loop_dynamic` instantiates the
/// same driver with both dynamic layers for benchmarking and equivalence
/// tests).
template <typename Latency, typename Handler>
class Driver {
 public:
  Driver(const Tree& tree, Latency latency, const ClosedLoopConfig& config)
      : tree_(tree),
        config_(config),
        graph_(tree.as_graph()),
        net_(graph_, sim_, std::move(latency)),
        link_(static_cast<std::size_t>(tree.node_count())),
        last_req_(static_cast<std::size_t>(tree.node_count()), kNoRequest),
        issued_(static_cast<std::size_t>(tree.node_count()), 0),
        issue_time_(static_cast<std::size_t>(tree.node_count()), 0) {
    // One outstanding request per node bounds concurrently pending events
    // and in-flight messages to O(n).
    const auto n = static_cast<std::size_t>(tree.node_count());
    sim_.reserve(4 * n);
    net_.reserve_messages(2 * n);
    net_.set_service_time(config.service_time);
    NodeId root = tree.root();
    for (NodeId v = 0; v < tree.node_count(); ++v)
      link_[static_cast<std::size_t>(v)] = v == root ? v : tree.parent(v);
    last_req_[static_cast<std::size_t>(root)] = kRootRequest;
  }

  void install(Handler h) { net_.set_handler(std::move(h)); }

  ClosedLoopResult run() {
    for (NodeId v = 0; v < tree_.node_count(); ++v) sim_.at(0, IssueEvent{this, v});
    sim_.run();
    ClosedLoopResult res;
    res.makespan = sim_.now();
    res.total_requests = static_cast<std::int64_t>(tree_.node_count()) *
                         config_.requests_per_node;
    res.tree_messages = net_.stats().edge_messages;
    res.notify_messages = net_.stats().direct_messages;
    res.avg_hops_per_request =
        res.total_requests == 0
            ? 0.0
            : static_cast<double>(res.tree_messages) / static_cast<double>(res.total_requests);
    res.avg_round_latency_units = latencies_.count() == 0
                                      ? 0.0
                                      : latencies_.mean() / static_cast<double>(kTicksPerUnit);
    return res;
  }

  void receive(NodeId from, NodeId at, const LoopMsg& m) {
    if (m.kind == MsgKind::kNotify) {
      round_done(at);
      return;
    }
    auto ui = static_cast<std::size_t>(at);
    NodeId next = link_[ui];
    link_[ui] = from;
    if (next != at) {
      net_.send(at, next, LoopMsg{MsgKind::kQueue, m.req, m.requester, m.hops + 1});
      return;
    }
    // Sink found; return the predecessor identity to the requester.
    ARROWDQ_ASSERT(last_req_[ui] != kNoRequest);
    if (m.requester == at) {
      round_done(at);
    } else {
      net_.send_with_latency(at, m.requester, notify_latency(at, m.requester),
                             LoopMsg{MsgKind::kNotify, m.req, m.requester, 0});
    }
  }

  void issue(NodeId v) {
    auto vi = static_cast<std::size_t>(v);
    if (issued_[vi] >= config_.requests_per_node) return;
    ++issued_[vi];
    ++next_id_;
    RequestId a = next_id_;
    issue_time_[vi] = sim_.now();
    if (link_[vi] == v) {
      RequestId pred = last_req_[vi];
      ARROWDQ_ASSERT(pred != kNoRequest);
      last_req_[vi] = a;
      // Predecessor found locally: the reply is local too (zero latency).
      round_done(v);
      return;
    }
    NodeId target = link_[vi];
    last_req_[vi] = a;
    link_[vi] = v;
    net_.send(v, target, LoopMsg{MsgKind::kQueue, a, v, 1});
  }

 private:
  /// The one event the driver itself schedules: issue node v's next request.
  struct IssueEvent {
    Driver* driver;
    NodeId v;
    void operator()() const { driver->issue(v); }
  };
  static_assert(Simulator::template fits_inline_v<IssueEvent>,
                "IssueEvent must stay on the simulator's inline path");

  Time notify_latency(NodeId from, NodeId to) const {
    if (config_.notify_latency) return config_.notify_latency(from, to);
    return kTicksPerUnit;  // complete graph, unit pairwise latency
  }

  void round_done(NodeId v) {
    latencies_.add(static_cast<double>(sim_.now() - issue_time_[static_cast<std::size_t>(v)]));
    // Re-issue through the event loop (not recursively) so long local-only
    // streaks do not grow the call stack. Preparing the next request costs
    // one service interval of local CPU time — without this, a node holding
    // the tail would complete its whole budget of local requests in zero
    // simulated time, which no real processor can do.
    sim_.in(config_.service_time, IssueEvent{this, v});
  }

  const Tree& tree_;
  const ClosedLoopConfig& config_;
  Graph graph_;
  Simulator sim_;
  Network<LoopMsg, Latency, Handler> net_;
  std::vector<NodeId> link_;
  std::vector<RequestId> last_req_;
  std::vector<std::int64_t> issued_;
  std::vector<Time> issue_time_;
  StatAccumulator latencies_;
  RequestId next_id_ = kRootRequest;
};

/// Typed handler for the statically dispatched path: one pointer, direct
/// call, fully inlinable into Network::deliver.
template <typename Latency>
struct LoopHandler {
  Driver<Latency, LoopHandler>* driver = nullptr;
  void operator()(NodeId from, NodeId to, const LoopMsg& m) const {
    driver->receive(from, to, m);
  }
};

}  // namespace

ClosedLoopResult run_arrow_closed_loop(const Tree& tree, LatencyModel& latency,
                                       const ClosedLoopConfig& config) {
  ARROWDQ_ASSERT_MSG(config.requests_per_node >= 0, "requests_per_node must be >= 0");
  return with_static_latency(latency, [&](auto lat) {
    using L = decltype(lat);
    Driver<L, LoopHandler<L>> driver(tree, std::move(lat), config);
    driver.install(LoopHandler<L>{&driver});
    return driver.run();
  });
}

ClosedLoopResult run_arrow_closed_loop_dynamic(const Tree& tree, LatencyModel& latency,
                                               const ClosedLoopConfig& config) {
  ARROWDQ_ASSERT_MSG(config.requests_per_node >= 0, "requests_per_node must be >= 0");
  using Handler = std::function<void(NodeId, NodeId, const LoopMsg&)>;
  Driver<VirtualSampler, Handler> driver(tree, VirtualSampler{latency}, config);
  driver.install(
      [&driver](NodeId from, NodeId to, const LoopMsg& m) { driver.receive(from, to, m); });
  return driver.run();
}

}  // namespace arrowdq
