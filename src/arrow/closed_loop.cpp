#include "arrow/closed_loop.hpp"

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "arrow/stabilize.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace arrowdq {

namespace {

enum class MsgKind : std::uint8_t { kQueue, kNotify };

struct LoopMsg {
  MsgKind kind = MsgKind::kQueue;
  RequestId req = kNoRequest;
  NodeId requester = kNoNode;  // issuer of `req` (for the reply)
  std::int32_t hops = 0;
  std::int32_t epoch = 0;  // crash-recovery epoch (kQueue only); 0 fault-free
};

/// Closed-loop arrow driver. The protocol core mirrors ArrowEngine; requests
/// are generated on the fly, one outstanding per node. Templated on the
/// latency sampler and the network handler so the default path runs with no
/// virtual `sample` call and no std::function dispatch between a delivery
/// and the protocol logic (`run_arrow_closed_loop_dynamic` instantiates the
/// same driver with both dynamic layers for benchmarking and equivalence
/// tests).
template <typename Latency, typename Handler, typename Faults = NoFaults>
class Driver {
 public:
  Driver(const Tree& tree, Latency latency, Faults faults, const ClosedLoopConfig& config)
      : tree_(tree),
        config_(config),
        graph_(tree.as_graph()),
        net_(graph_, sim_, std::move(latency), std::move(faults)),
        link_(static_cast<std::size_t>(tree.node_count())),
        last_req_(static_cast<std::size_t>(tree.node_count()), kNoRequest),
        issued_(static_cast<std::size_t>(tree.node_count()), 0),
        issue_time_(static_cast<std::size_t>(tree.node_count()), 0) {
    // One outstanding request per node bounds concurrently pending events
    // and in-flight messages to O(n).
    const auto n = static_cast<std::size_t>(tree.node_count());
    sim_.reserve(4 * n);
    net_.reserve_messages(2 * n);
    net_.set_service_time(config.service_time);
    NodeId root = tree.root();
    for (NodeId v = 0; v < tree.node_count(); ++v)
      link_[static_cast<std::size_t>(v)] = v == root ? v : tree.parent(v);
    last_req_[static_cast<std::size_t>(root)] = kRootRequest;
    if constexpr (Faults::kActive) {
      crashes_ = crash_schedule(config.fault, tree.node_count());
      crash_rng_ = Rng(mix64(config.fault.seed ^ 0xa770c4a54ULL));
      if (!crashes_.empty()) stab_.emplace(tree_, root);
    }
  }

  void install(Handler h) { net_.set_handler(std::move(h)); }

  ClosedLoopResult run() {
    for (NodeId v = 0; v < tree_.node_count(); ++v) sim_.at(0, IssueEvent{this, v});
    if constexpr (Faults::kActive) {
      if (!crashes_.empty()) sim_.at(crashes_[0].at, CrashEvent{this, 0});
    }
    sim_.run();
    ClosedLoopResult res;
    res.makespan = sim_.now();
    res.total_requests = static_cast<std::int64_t>(tree_.node_count()) *
                         config_.requests_per_node;
    res.tree_messages = net_.stats().edge_messages;
    res.notify_messages = net_.stats().direct_messages;
    res.avg_hops_per_request =
        res.total_requests == 0
            ? 0.0
            : static_cast<double>(res.tree_messages) / static_cast<double>(res.total_requests);
    res.avg_round_latency_units = latencies_.count() == 0
                                      ? 0.0
                                      : latencies_.mean() / static_cast<double>(kTicksPerUnit);
    if constexpr (Faults::kActive) {
      res.messages_dropped = net_.faults().stats().messages_dropped;
      res.messages_duplicated = net_.faults().stats().messages_duplicated;
      res.crashes = crashes_applied_;
      res.stabilize_rounds = stabilize_rounds_;
      res.stabilize_corrections = stabilize_corrections_;
    }
    return res;
  }

  void receive(NodeId from, NodeId at, const LoopMsg& m) {
    if (m.kind == MsgKind::kNotify) {
      // Replies ride outside the pointer dynamics, so they stay valid
      // across recovery waves — no epoch check.
      round_done(at);
      return;
    }
    if constexpr (Faults::kActive) {
      if (m.epoch != epoch_) {
        absorb(m);
        return;
      }
    }
    auto ui = static_cast<std::size_t>(at);
    NodeId next = link_[ui];
    link_[ui] = from;
    if (next != at) {
      net_.send(at, next, LoopMsg{MsgKind::kQueue, m.req, m.requester, m.hops + 1, epoch_});
      return;
    }
    // Sink found; return the predecessor identity to the requester.
    ARROWDQ_ASSERT(last_req_[ui] != kNoRequest);
    if (m.requester == at) {
      round_done(at);
    } else {
      net_.send_with_latency(at, m.requester, notify_latency(at, m.requester),
                             LoopMsg{MsgKind::kNotify, m.req, m.requester, 0, epoch_});
    }
  }

  void issue(NodeId v) {
    auto vi = static_cast<std::size_t>(v);
    if (issued_[vi] >= config_.requests_per_node) return;
    if constexpr (Faults::kActive) {
      // A crashed node cannot issue; retry when its down window closes.
      Time up = net_.faults().defer(v, sim_.now());
      if (up != sim_.now()) {
        sim_.at(up, IssueEvent{this, v});
        return;
      }
    }
    ++issued_[vi];
    ++next_id_;
    RequestId a = next_id_;
    issue_time_[vi] = sim_.now();
    if (link_[vi] == v) {
      RequestId pred = last_req_[vi];
      ARROWDQ_ASSERT(pred != kNoRequest);
      last_req_[vi] = a;
      // Predecessor found locally: the reply is local too (zero latency).
      round_done(v);
      return;
    }
    NodeId target = link_[vi];
    last_req_[vi] = a;
    link_[vi] = v;
    net_.send(v, target, LoopMsg{MsgKind::kQueue, a, v, 1, epoch_});
  }

 private:
  /// The one event the driver itself schedules: issue node v's next request.
  struct IssueEvent {
    Driver* driver;
    NodeId v;
    void operator()() const { driver->issue(v); }
  };
  static_assert(Simulator::template fits_inline_v<IssueEvent>,
                "IssueEvent must stay on the simulator's inline path");

  struct CrashEvent {
    Driver* driver;
    std::size_t k;
    void operator()() const { driver->on_crash(k); }
  };

  Time notify_latency(NodeId from, NodeId to) const {
    if (config_.notify_latency) return config_.notify_latency(from, to);
    return kTicksPerUnit;  // complete graph, unit pairwise latency
  }

  void round_done(NodeId v) {
    latencies_.add(static_cast<double>(sim_.now() - issue_time_[static_cast<std::size_t>(v)]));
    // Re-issue through the event loop (not recursively) so long local-only
    // streaks do not grow the call stack. Preparing the next request costs
    // one service interval of local CPU time — without this, a node holding
    // the tail would complete its whole budget of local requests in zero
    // simulated time, which no real processor can do.
    sim_.in(config_.service_time, IssueEvent{this, v});
  }

  NodeId current_sink() const {
    for (NodeId v = 0; v < static_cast<NodeId>(link_.size()); ++v)
      if (link_[static_cast<std::size_t>(v)] == v) return v;
    ARROWDQ_ASSERT_MSG(false, "no sink available to absorb a stale request");
    return kNoNode;
  }

  /// A pre-crash queue message: the pointer path it was chasing is gone, so
  /// the live sink queues the request behind its tail and answers the
  /// requester directly — the round completes, just via recovery.
  void absorb(const LoopMsg& m) {
    NodeId sink = current_sink();
    auto si = static_cast<std::size_t>(sink);
    ARROWDQ_ASSERT_MSG(last_req_[si] != kNoRequest, "absorbing sink without a tail");
    last_req_[si] = m.req;
    if (m.requester == sink) {
      round_done(sink);
    } else {
      net_.send_with_latency(sink, m.requester, notify_latency(sink, m.requester),
                             LoopMsg{MsgKind::kNotify, m.req, m.requester, 0, epoch_});
    }
  }

  void on_crash(std::size_t k) {
    const std::int64_t total =
        static_cast<std::int64_t>(tree_.node_count()) * config_.requests_per_node;
    if (static_cast<std::int64_t>(latencies_.count()) < total) {
      corrupt_and_recover(crashes_[k].victim);
      if (k + 1 < crashes_.size()) sim_.at(crashes_[k + 1].at, CrashEvent{this, k + 1});
    }
  }

  void corrupt_and_recover(NodeId victim) {
    const NodeId n = tree_.node_count();
    const NodeId anchor = tree_.root();
    // Snapshot pending tails before corrupting anything (see arrow.cpp's
    // one-shot driver for the invariant argument).
    NodeId first_sink = kNoNode;
    bool anchor_was_sink = false;
    for (NodeId v = 0; v < n; ++v) {
      if (link_[static_cast<std::size_t>(v)] == v) {
        if (first_sink == kNoNode) first_sink = v;
        if (v == anchor) anchor_was_sink = true;
      }
    }
    ARROWDQ_ASSERT_MSG(first_sink != kNoNode, "crash with no live sink");
    RequestId adopted = last_req_[static_cast<std::size_t>(first_sink)];

    auto wi = static_cast<std::size_t>(victim);
    switch (crash_rng_.next_below(3)) {
      case 0: link_[wi] = victim; break;
      case 1:
        link_[wi] = static_cast<NodeId>(crash_rng_.next_below(static_cast<std::uint64_t>(n)));
        break;
      default: link_[wi] = victim == tree_.root() ? victim : tree_.parent(victim); break;
    }

    ++epoch_;

    auto h = stab_->estimate_hops(link_);
    StabilizeResult res = stab_->stabilize(link_, h, 4 * n + 8);
    ARROWDQ_ASSERT_MSG(res.converged, "self-stabilization did not converge");
    stabilize_rounds_ += res.rounds;
    stabilize_corrections_ += res.corrections;
    ++crashes_applied_;

    if (!anchor_was_sink) {
      ARROWDQ_ASSERT_MSG(adopted != kNoRequest, "pre-crash sink without a tail");
      last_req_[static_cast<std::size_t>(anchor)] = adopted;
    }
  }

  const Tree& tree_;
  const ClosedLoopConfig& config_;
  Graph graph_;
  Simulator sim_;
  Network<LoopMsg, Latency, Handler, Faults> net_;
  std::vector<NodeId> link_;
  std::vector<RequestId> last_req_;
  std::vector<std::int64_t> issued_;
  std::vector<Time> issue_time_;
  StatAccumulator latencies_;
  RequestId next_id_ = kRootRequest;
  std::int32_t epoch_ = 0;
  std::vector<CrashEventSpec> crashes_;
  Rng crash_rng_{0};
  std::optional<SelfStabilizer> stab_;
  int stabilize_rounds_ = 0;
  int stabilize_corrections_ = 0;
  std::int32_t crashes_applied_ = 0;
};

/// Typed handler for the statically dispatched path: one pointer, direct
/// call, fully inlinable into Network::deliver.
template <typename Latency, typename Faults = NoFaults>
struct LoopHandler {
  Driver<Latency, LoopHandler, Faults>* driver = nullptr;
  void operator()(NodeId from, NodeId to, const LoopMsg& m) const {
    driver->receive(from, to, m);
  }
};

}  // namespace

ClosedLoopResult run_arrow_closed_loop(const Tree& tree, LatencyModel& latency,
                                       const ClosedLoopConfig& config) {
  ARROWDQ_ASSERT_MSG(config.requests_per_node >= 0, "requests_per_node must be >= 0");
  return with_static_latency(latency, [&](auto lat) {
    return with_fault_filter(config.fault, tree.node_count(), [&](auto filt) {
      using L = decltype(lat);
      using F = decltype(filt);
      Driver<L, LoopHandler<L, F>, F> driver(tree, std::move(lat), std::move(filt), config);
      driver.install(LoopHandler<L, F>{&driver});
      return driver.run();
    });
  });
}

ClosedLoopResult run_arrow_closed_loop_dynamic(const Tree& tree, LatencyModel& latency,
                                               const ClosedLoopConfig& config) {
  ARROWDQ_ASSERT_MSG(config.requests_per_node >= 0, "requests_per_node must be >= 0");
  using Handler = std::function<void(NodeId, NodeId, const LoopMsg&)>;
  return with_fault_filter(config.fault, tree.node_count(), [&](auto filt) {
    using F = decltype(filt);
    Driver<VirtualSampler, Handler, F> driver(tree, VirtualSampler{latency}, std::move(filt),
                                              config);
    driver.install(
        [&driver](NodeId from, NodeId to, const LoopMsg& m) { driver.receive(from, to, m); });
    return driver.run();
  });
}

}  // namespace arrowdq
