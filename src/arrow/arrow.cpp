#include "arrow/arrow.hpp"

#include <functional>
#include <optional>
#include <utility>

#include "arrow/stabilize.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace arrowdq {

namespace {

/// Per-run protocol driver: owns the network (templated on the latency
/// sampler, the handler, and the fault filter, so the default path has no
/// virtual `sample`, no std::function dispatch, and no fault branches) and
/// borrows the engine's pointer/id state so post-run inspection (`links()`,
/// `sink_node()`) keeps working.
///
/// Crash recovery (Faults::kActive only): each crash window corrupts the
/// victim's pointer, bumps the message epoch, and runs a SelfStabilizer
/// wave that re-points every arrow toward the anchor (the request root).
/// The anchor adopts the pending queue tail of the smallest pre-crash sink
/// so queuing resumes behind a live request; tails parked at other sinks
/// are forfeited (their successor chains are severed — the cost the
/// Herlihy-Tirthapura simplification accepts). A stale queue message is
/// *absorbed*: recorded behind the current sink's tail, with the sink's
/// tail advanced to the end of the stale request's successor chain so the
/// spliced segment rejoins the live queue.
///
/// Partition windows reuse the same wave skeleton per side: at onset the
/// epoch bumps once and each side that holds a pre-onset sink is stabilized
/// toward its side anchor (the cut root for the isolated subtree, the
/// request root for the remainder), which adopts the side's smallest
/// pre-onset tail. A side with no sink is left frozen — its traffic parks
/// at the cut and drains on heal. At heal a global wave (epoch bump +
/// full stabilize + anchor adoption) merges the two pointer regimes; the
/// cross-cut backlog the filter queued drains in FIFO send order at the
/// heal instant and absorbs as stale messages.
///
/// Churn events splice the departed victim out: its pointer resets to its
/// anchored-tree parent (the deterministic re-selection) and the same
/// global wave crashes use re-centers the queue; the filter's node-down
/// window covers the victim's absence.
template <typename Latency, typename Handler, typename Faults = NoFaults>
class OneShotDriver {
 public:
  OneShotDriver(const Tree& tree, const Graph& tree_graph, Simulator& sim, Latency latency,
                Faults faults, Time service_time, std::size_t reserve_msgs,
                std::vector<NodeId>& link, std::vector<RequestId>& last_req, NodeId anchor,
                const FaultSpec& fault, QueuingOutcome& out)
      : tree_(tree),
        graph_(tree_graph),
        sim_(sim),
        net_(tree_graph, sim, std::move(latency), std::move(faults)),
        link_(link),
        last_req_(last_req),
        out_(out),
        anchor_(anchor) {
    net_.reserve_messages(reserve_msgs);
    net_.set_service_time(service_time);
    if constexpr (Faults::kActive) {
      crashes_ = crash_schedule(fault, tree.node_count());
      crash_rng_ = Rng(mix64(fault.seed ^ 0xa770c4a54ULL));
      Faults& filt = net_.faults();
      if (!crashes_.empty() || !filt.partitions().empty() || !filt.churns().empty())
        stab_.emplace(tree_, anchor_);
      // Remap the raw seeded draws to legal victims and install the real
      // tree bipartition for each cut so the filter defers exactly the
      // cross-cut traffic (its built-in fallback only isolates one node).
      for (std::size_t k = 0; k < filt.partitions().size(); ++k) {
        NodeId cut = remap_partition_cut(stab_->anchored(), filt.partitions()[k].victim);
        if (cut != kNoNode)
          filt.set_partition_cut(k, cut, subtree_mask(stab_->anchored(), cut));
      }
      partitions_ = filt.partitions();
      for (std::size_t k = 0; k < filt.churns().size(); ++k)
        filt.set_churn_victim(k, remap_churn_victim(stab_->anchored(), filt.churns()[k].victim,
                                                    fault.churn_leaf_only != 0));
      churns_ = filt.churns();
    } else {
      (void)fault;
    }
  }

  void install(Handler h) { net_.set_handler(std::move(h)); }

  void schedule(const RequestSet& requests) {
    for (const Request& r : requests.real()) sim_.at(r.time, IssueEvent{this, r});
    if constexpr (Faults::kActive) {
      if (!crashes_.empty()) sim_.at(crashes_[0].at, CrashEvent{this, 0});
      if (!partitions_.empty()) sim_.at(partitions_[0].at, PartitionEvent{this, 0});
      if (!churns_.empty()) sim_.at(churns_[0].at, ChurnEvent{this, 0});
    }
  }

  std::uint64_t edge_messages() const { return net_.stats().edge_messages; }
  FaultStats fault_stats() const {
    if constexpr (Faults::kActive) return net_.faults().stats();
    return FaultStats{};
  }
  int stabilize_rounds() const { return stabilize_rounds_; }
  int stabilize_corrections() const { return stabilize_corrections_; }
  std::int32_t crashes_applied() const { return crashes_applied_; }
  std::int32_t partitions_applied() const { return partitions_applied_; }
  std::int32_t reselections() const { return reselections_; }

  void issue(const Request& r) {
    if constexpr (Faults::kActive) {
      // A crashed node cannot issue; retry when its down window closes.
      Time up = net_.faults().defer(r.node, sim_.now());
      if (up != sim_.now()) {
        sim_.at(up, IssueEvent{this, r});
        return;
      }
    }
    NodeId v = r.node;
    auto vi = static_cast<std::size_t>(v);
    if (link_[vi] == v) {
      // v is the sink: queue behind v's previous request locally, no messages.
      RequestId pred = last_req_[vi];
      ARROWDQ_ASSERT(pred != kNoRequest);
      if constexpr (Faults::kActive) pred = chain_end(pred);
      last_req_[vi] = r.id;
      out_.record(Completion{r.id, pred, sim_.now(), 0, 0});
      return;
    }
    NodeId target = link_[vi];
    last_req_[vi] = r.id;
    link_[vi] = v;
    net_.send(v, target, ArrowMsg{r.id, 1, graph_.edge_weight(v, target), epoch_});
  }

  void receive(NodeId from, NodeId at, const ArrowMsg& msg) {
    if constexpr (Faults::kActive) {
      if (msg.epoch != epoch_) {
        absorb(at, msg);
        return;
      }
    }
    auto ui = static_cast<std::size_t>(at);
    NodeId next = link_[ui];
    link_[ui] = from;  // path reversal
    if (next != at) {
      net_.send(at, next,
                ArrowMsg{msg.req, msg.hops + 1, msg.dist + graph_.edge_weight(at, next),
                         epoch_});
      return;
    }
    // `at` is the sink: msg.req is queued behind at's last issued request.
    RequestId pred = last_req_[ui];
    ARROWDQ_ASSERT_MSG(pred != kNoRequest, "sink without an id — broken initial state");
    if constexpr (Faults::kActive) pred = chain_end(pred);
    out_.record(Completion{msg.req, pred, sim_.now(), msg.hops, msg.dist});
  }

 private:
  struct IssueEvent {
    OneShotDriver* driver;
    Request r;
    void operator()() const { driver->issue(r); }
  };
  static_assert(Simulator::template fits_inline_v<IssueEvent>,
                "IssueEvent must stay on the simulator's inline path");

  struct CrashEvent {
    OneShotDriver* driver;
    std::size_t k;
    void operator()() const { driver->on_crash(k); }
  };

  struct PartitionEvent {
    OneShotDriver* driver;
    std::size_t k;
    void operator()() const { driver->on_partition(k); }
  };

  struct HealEvent {
    OneShotDriver* driver;
    std::size_t k;
    void operator()() const { driver->on_heal(k); }
  };

  struct ChurnEvent {
    OneShotDriver* driver;
    std::size_t k;
    void operator()() const { driver->on_churn(k); }
  };

  /// A stale message whose side has no sink during a partition window: it
  /// parks at its node until the window closes, then re-enters receive()
  /// (still stale) and absorbs into the healed queue. May exceed the
  /// simulator's inline slot — the boxed fallback is fine off the hot path.
  struct ParkedEvent {
    OneShotDriver* driver;
    NodeId at;
    ArrowMsg msg;
    void operator()() const { driver->receive(at, at, msg); }
  };

  /// The live end of the recorded successor chain containing `id`. A stored
  /// pending tail can be superseded while faults are active: partition-side
  /// adoption copies a tail without clearing its source, and absorb's
  /// chain-end walk can land on an id another live sink also holds — so two
  /// sinks alias one chain, and whichever appends first gives the shared id
  /// a successor. Queuing behind the stale copy would then put two requests
  /// behind the same predecessor; walking to the chain end at use time makes
  /// every record site self-healing.
  RequestId chain_end(RequestId id) const {
    while (out_.successor_of(id) != kNoRequest) id = out_.successor_of(id);
    return id;
  }

  /// The unique live sink (smallest node id breaks transient multi-sink
  /// states, which only exist while current-epoch messages are in flight).
  NodeId current_sink() const {
    for (NodeId v = 0; v < static_cast<NodeId>(link_.size()); ++v)
      if (link_[static_cast<std::size_t>(v)] == v) return v;
    ARROWDQ_ASSERT_MSG(false, "no sink available to absorb a stale request");
    return kNoNode;
  }

  /// Queue a pre-crash message's request behind the live tail. The stale
  /// request may already have its own successor chain (requests that queued
  /// behind it before the crash, or behind its adopted tail after), so the
  /// live tail advances to the *end* of that chain. During a partition
  /// window the scan is restricted to the receiver's side of the cut —
  /// bookkeeping must not teleport across a severed edge — and a sinkless
  /// side parks the message until the heal instant.
  void absorb(NodeId at, const ArrowMsg& msg) {
    NodeId sink = kNoNode;
    const std::size_t w = net_.faults().active_partition(sim_.now());
    if (w != Faults::kNoWindow) {
      const auto& side = net_.faults().partition_side(w);
      if (!side.empty()) {
        const std::uint8_t tag = side[static_cast<std::size_t>(at)];
        for (NodeId v = 0; v < static_cast<NodeId>(link_.size()); ++v) {
          auto vi = static_cast<std::size_t>(v);
          if (side[vi] == tag && link_[vi] == v) {
            sink = v;
            break;
          }
        }
        if (sink == kNoNode) {
          sim_.at(partitions_[w].up_at, ParkedEvent{this, at, msg});
          return;
        }
      }
    }
    if (sink == kNoNode) sink = current_sink();
    auto si = static_cast<std::size_t>(sink);
    RequestId pred = last_req_[si];
    ARROWDQ_ASSERT_MSG(pred != kNoRequest, "absorbing sink without a tail");
    pred = chain_end(pred);
    RequestId tail = chain_end(msg.req);
    if (tail == pred) {
      // Both walks ended at the same id, so the live tail sits inside this
      // request's own chain (its tail was adopted at recovery and the queue
      // grew behind it). Recording it behind `pred` would close a successor
      // cycle; attach its chain to the end of the recorded root chain
      // instead — the root chain is disjoint from msg.req's chain because
      // both chain heads differ and recorded chains never merge.
      pred = chain_end(kRootRequest);
    }
    out_.record(Completion{msg.req, pred, sim_.now(), msg.hops, msg.dist});
    last_req_[si] = tail;
  }

  void on_crash(std::size_t k) {
    if (!out_.is_complete()) {
      corrupt_and_recover(crashes_[k].victim);
      if (k + 1 < crashes_.size()) sim_.at(crashes_[k + 1].at, CrashEvent{this, k + 1});
    }
  }

  /// Snapshot the pre-wave sink landscape: the smallest live sink (whose
  /// tail the anchor adopts) and whether the anchor already is one.
  void snapshot_sinks(NodeId& first_sink, bool& anchor_was_sink) const {
    first_sink = kNoNode;
    anchor_was_sink = false;
    for (NodeId v = 0; v < static_cast<NodeId>(link_.size()); ++v) {
      if (link_[static_cast<std::size_t>(v)] == v) {
        if (first_sink == kNoNode) first_sink = v;
        if (v == anchor_) anchor_was_sink = true;
      }
    }
  }

  /// The shared global recovery wave (crash, churn splice, partition heal):
  /// invalidate every in-flight message, stabilize all pointers toward the
  /// anchor, and re-center the queue tail there. Callers snapshot *before*
  /// perturbing the pointer state.
  void recover_global(NodeId first_sink, bool anchor_was_sink) {
    const NodeId n = static_cast<NodeId>(link_.size());
    ARROWDQ_ASSERT_MSG(first_sink != kNoNode, "recovery wave with no live sink");
    RequestId adopted = last_req_[static_cast<std::size_t>(first_sink)];

    // Every in-flight queue message now predates the recovery wave.
    ++epoch_;

    auto h = stab_->estimate_hops(link_);
    StabilizeResult res = stab_->stabilize(link_, h, 4 * n + 8);
    ARROWDQ_ASSERT_MSG(res.converged, "self-stabilization did not converge");
    stabilize_rounds_ += res.rounds;
    stabilize_corrections_ += res.corrections;

    // Adoption: the anchor is now the unique sink. If it already was one it
    // keeps its own pending tail; otherwise it adopts the smallest pre-wave
    // sink's tail (other pending tails are forfeited).
    if (!anchor_was_sink) {
      ARROWDQ_ASSERT_MSG(adopted != kNoRequest, "pre-wave sink without a tail");
      last_req_[static_cast<std::size_t>(anchor_)] = adopted;
    }
  }

  void corrupt_and_recover(NodeId victim) {
    const NodeId n = static_cast<NodeId>(link_.size());
    // Snapshot the pending tails before anything changes: the recovery wave
    // re-centers the queue at the anchor, which must resume from a real
    // pending request, not a stale one.
    NodeId first_sink = kNoNode;
    bool anchor_was_sink = false;
    snapshot_sinks(first_sink, anchor_was_sink);
    ARROWDQ_ASSERT_MSG(first_sink != kNoNode, "crash with no live sink");

    // The victim restarts with corrupted pointer state: a spurious sink, an
    // arbitrary (possibly dangling) pointer, or a plausible tree pointer in
    // the wrong direction (which can close a cycle with a child).
    auto wi = static_cast<std::size_t>(victim);
    switch (crash_rng_.next_below(3)) {
      case 0: link_[wi] = victim; break;
      case 1:
        link_[wi] = static_cast<NodeId>(crash_rng_.next_below(static_cast<std::uint64_t>(n)));
        break;
      default: link_[wi] = victim == tree_.root() ? victim : tree_.parent(victim); break;
    }

    recover_global(first_sink, anchor_was_sink);
    ++crashes_applied_;
  }

  /// Partition onset: bump the epoch once, then reconcile each side that
  /// holds a pre-onset sink toward its side anchor. A sinkless side stays
  /// frozen — its pointers still lead to the cut, where traffic queues.
  void on_partition(std::size_t k) {
    if (out_.is_complete()) return;
    const NodeId n = static_cast<NodeId>(link_.size());
    const NodeId cut = partitions_[k].victim;
    const auto& side = net_.faults().partition_side(k);
    ++partitions_applied_;
    if (side.empty() || cut == kNoNode) {
      // Single-node tree: no edge to sever, the window is a no-op.
      sim_.at(partitions_[k].up_at, HealEvent{this, k});
      return;
    }
    // Pre-onset landscape per side: smallest sink and whether the side
    // anchor already is one.
    NodeId first_sink[2] = {kNoNode, kNoNode};
    bool anchor_sink[2] = {false, false};
    const NodeId side_anchor[2] = {anchor_, cut};  // side 0 keeps the root
    for (NodeId v = 0; v < n; ++v) {
      auto vi = static_cast<std::size_t>(v);
      if (link_[vi] != v) continue;
      const std::uint8_t s = side[vi];
      if (first_sink[s] == kNoNode) first_sink[s] = v;
      if (v == side_anchor[s]) anchor_sink[s] = true;
    }

    // One epoch bump covers both sides' reconciliation.
    ++epoch_;
    auto h = stab_->estimate_hops(link_);
    for (int s = 0; s < 2; ++s) {
      if (first_sink[s] == kNoNode) continue;  // frozen side
      RequestId adopted = last_req_[static_cast<std::size_t>(first_sink[s])];
      StabilizeResult res = stab_->stabilize_side(link_, h, 4 * n + 8, side,
                                                  static_cast<std::uint8_t>(s),
                                                  side_anchor[s]);
      ARROWDQ_ASSERT_MSG(res.converged, "side stabilization did not converge");
      stabilize_rounds_ += res.rounds;
      stabilize_corrections_ += res.corrections;
      if (!anchor_sink[s]) {
        ARROWDQ_ASSERT_MSG(adopted != kNoRequest, "pre-onset sink without a tail");
        last_req_[static_cast<std::size_t>(side_anchor[s])] = adopted;
      }
    }
    sim_.at(partitions_[k].up_at, HealEvent{this, k});
  }

  /// Partition heal: merge the two pointer regimes with the shared global
  /// wave. The filter's queued cross-cut backlog delivers at this same
  /// instant in FIFO send order and absorbs as stale traffic. The merge
  /// runs even when every request already completed — quiescence must leave
  /// a unique sink — but a finished run schedules no further windows.
  void on_heal(std::size_t k) {
    NodeId first_sink = kNoNode;
    bool anchor_was_sink = false;
    snapshot_sinks(first_sink, anchor_was_sink);
    recover_global(first_sink, anchor_was_sink);
    if (!out_.is_complete() && k + 1 < partitions_.size())
      sim_.at(partitions_[k + 1].at, PartitionEvent{this, k + 1});
  }

  /// Churn: the victim leaves for its down window. Its tree edges are
  /// spliced by the deterministic re-selection — the pointer resets toward
  /// the anchor — and the same global wave crashes use re-centers the
  /// queue. The filter's node-down window covers its absence; on rejoin it
  /// participates again with already-consistent state.
  void on_churn(std::size_t k) {
    if (out_.is_complete()) return;
    const NodeId victim = churns_[k].victim;
    if (victim != kNoNode && victim != anchor_) {
      NodeId first_sink = kNoNode;
      bool anchor_was_sink = false;
      snapshot_sinks(first_sink, anchor_was_sink);
      link_[static_cast<std::size_t>(victim)] = stab_->anchored().parent(victim);
      recover_global(first_sink, anchor_was_sink);
      ++reselections_;
    }
    if (k + 1 < churns_.size()) sim_.at(churns_[k + 1].at, ChurnEvent{this, k + 1});
  }

  const Tree& tree_;
  const Graph& graph_;
  Simulator& sim_;
  Network<ArrowMsg, Latency, Handler, Faults> net_;
  std::vector<NodeId>& link_;
  std::vector<RequestId>& last_req_;
  QueuingOutcome& out_;
  NodeId anchor_ = kNoNode;
  std::int32_t epoch_ = 0;
  std::vector<CrashEventSpec> crashes_;
  std::vector<CrashEventSpec> partitions_;
  std::vector<CrashEventSpec> churns_;
  Rng crash_rng_{0};
  std::optional<SelfStabilizer> stab_;
  int stabilize_rounds_ = 0;
  int stabilize_corrections_ = 0;
  std::int32_t crashes_applied_ = 0;
  std::int32_t partitions_applied_ = 0;
  std::int32_t reselections_ = 0;
};

/// Typed handler for the statically dispatched path.
template <typename Latency, typename Faults = NoFaults>
struct ArrowHandler {
  OneShotDriver<Latency, ArrowHandler, Faults>* driver = nullptr;
  void operator()(NodeId from, NodeId to, const ArrowMsg& m) const {
    driver->receive(from, to, m);
  }
};

}  // namespace

ArrowEngine::ArrowEngine(const Tree& tree, LatencyModel& latency)
    : tree_(tree), latency_(latency), tree_graph_(tree.as_graph()) {}

void ArrowEngine::prepare(const RequestSet& requests) {
  ARROWDQ_ASSERT_MSG(requests.root() >= 0 && requests.root() < tree_.node_count(),
                     "request root is not a tree node");
  auto n = static_cast<std::size_t>(tree_.node_count());

  // Initial configuration: all pointers lead to the root (Figure 1); the
  // root is the sink holding the virtual request r0.
  // Rebuild the tree rooted at the request root so parent pointers point the
  // right way regardless of how the caller rooted T.
  const Tree rooted =
      tree_.root() == requests.root() ? tree_ : tree_.rerooted(requests.root());
  link_.assign(n, kNoNode);
  last_req_.assign(n, kNoRequest);
  for (NodeId v = 0; v < tree_.node_count(); ++v)
    link_[static_cast<std::size_t>(v)] = v == requests.root() ? v : rooted.parent(v);
  last_req_[static_cast<std::size_t>(requests.root())] = kRootRequest;

  sim_ = Simulator{};
  // Pending events are bounded by the issue schedule plus in-flight
  // messages (at most a few per tree node at any instant).
  sim_.reserve(static_cast<std::size_t>(requests.size()) + 2 * n);
  messages_ = 0;
  fault_stats_ = FaultStats{};
  stabilize_rounds_ = 0;
  stabilize_corrections_ = 0;
  crashes_applied_ = 0;
  partitions_applied_ = 0;
  reselections_ = 0;
}

QueuingOutcome ArrowEngine::run(const RequestSet& requests) {
  prepare(requests);
  const auto n = static_cast<std::size_t>(tree_.node_count());
  QueuingOutcome out(requests.size());
  with_static_latency(latency_, [&](auto lat) {
    with_fault_filter(fault_, tree_.node_count(), [&](auto filt) {
      using L = decltype(lat);
      using F = decltype(filt);
      OneShotDriver<L, ArrowHandler<L, F>, F> driver(
          tree_, tree_graph_, sim_, std::move(lat), std::move(filt), service_time_, 2 * n,
          link_, last_req_, requests.root(), fault_, out);
      driver.install(ArrowHandler<L, F>{&driver});
      driver.schedule(requests);
      sim_.run();
      messages_ = driver.edge_messages();
      fault_stats_ = driver.fault_stats();
      stabilize_rounds_ = driver.stabilize_rounds();
      stabilize_corrections_ = driver.stabilize_corrections();
      crashes_applied_ = driver.crashes_applied();
      partitions_applied_ = driver.partitions_applied();
      reselections_ = driver.reselections();
    });
  });
  ARROWDQ_ASSERT_MSG(out.is_complete(), "arrow did not complete all requests");
  return out;
}

QueuingOutcome ArrowEngine::run_dynamic(const RequestSet& requests) {
  prepare(requests);
  const auto n = static_cast<std::size_t>(tree_.node_count());
  QueuingOutcome out(requests.size());
  using Handler = std::function<void(NodeId, NodeId, const ArrowMsg&)>;
  with_fault_filter(fault_, tree_.node_count(), [&](auto filt) {
    using F = decltype(filt);
    OneShotDriver<VirtualSampler, Handler, F> driver(
        tree_, tree_graph_, sim_, VirtualSampler{latency_}, std::move(filt), service_time_,
        2 * n, link_, last_req_, requests.root(), fault_, out);
    driver.install(
        [&driver](NodeId from, NodeId to, const ArrowMsg& m) { driver.receive(from, to, m); });
    driver.schedule(requests);
    sim_.run();
    messages_ = driver.edge_messages();
    fault_stats_ = driver.fault_stats();
    stabilize_rounds_ = driver.stabilize_rounds();
    stabilize_corrections_ = driver.stabilize_corrections();
    crashes_applied_ = driver.crashes_applied();
    partitions_applied_ = driver.partitions_applied();
    reselections_ = driver.reselections();
  });
  ARROWDQ_ASSERT_MSG(out.is_complete(), "arrow did not complete all requests");
  return out;
}

NodeId ArrowEngine::sink_node() const {
  NodeId sink = kNoNode;
  for (NodeId v = 0; v < static_cast<NodeId>(link_.size()); ++v) {
    if (link_[static_cast<std::size_t>(v)] == v) {
      ARROWDQ_ASSERT_MSG(sink == kNoNode, "multiple sinks at quiescence");
      sink = v;
    }
  }
  ARROWDQ_ASSERT_MSG(sink != kNoNode, "no sink at quiescence");
  return sink;
}

QueuingOutcome run_arrow(const Tree& tree, const RequestSet& requests, LatencyModel& latency) {
  ArrowEngine engine(tree, latency);
  auto out = engine.run(requests);
  out.validate(requests);
  return out;
}

QueuingOutcome run_arrow(const Tree& tree, const RequestSet& requests) {
  SynchronousLatency sync;
  return run_arrow(tree, requests, sync);
}

}  // namespace arrowdq
