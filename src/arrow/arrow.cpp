#include "arrow/arrow.hpp"

#include <functional>
#include <utility>

#include "support/assert.hpp"

namespace arrowdq {

namespace {

/// Per-run protocol driver: owns the network (templated on the latency
/// sampler and the handler, so the default path has no virtual `sample` and
/// no std::function dispatch) and borrows the engine's pointer/id state so
/// post-run inspection (`links()`, `sink_node()`) keeps working.
template <typename Latency, typename Handler>
class OneShotDriver {
 public:
  OneShotDriver(const Graph& tree_graph, Simulator& sim, Latency latency, Time service_time,
                std::size_t reserve_msgs, std::vector<NodeId>& link,
                std::vector<RequestId>& last_req, QueuingOutcome& out)
      : graph_(tree_graph),
        sim_(sim),
        net_(tree_graph, sim, std::move(latency)),
        link_(link),
        last_req_(last_req),
        out_(out) {
    net_.reserve_messages(reserve_msgs);
    net_.set_service_time(service_time);
  }

  void install(Handler h) { net_.set_handler(std::move(h)); }

  void schedule(const RequestSet& requests) {
    for (const Request& r : requests.real()) sim_.at(r.time, IssueEvent{this, r});
  }

  std::uint64_t edge_messages() const { return net_.stats().edge_messages; }

  void issue(const Request& r) {
    NodeId v = r.node;
    auto vi = static_cast<std::size_t>(v);
    if (link_[vi] == v) {
      // v is the sink: queue behind v's previous request locally, no messages.
      RequestId pred = last_req_[vi];
      ARROWDQ_ASSERT(pred != kNoRequest);
      last_req_[vi] = r.id;
      out_.record(Completion{r.id, pred, sim_.now(), 0, 0});
      return;
    }
    NodeId target = link_[vi];
    last_req_[vi] = r.id;
    link_[vi] = v;
    net_.send(v, target, ArrowMsg{r.id, 1, graph_.edge_weight(v, target)});
  }

  void receive(NodeId from, NodeId at, const ArrowMsg& msg) {
    auto ui = static_cast<std::size_t>(at);
    NodeId next = link_[ui];
    link_[ui] = from;  // path reversal
    if (next != at) {
      net_.send(at, next,
                ArrowMsg{msg.req, msg.hops + 1, msg.dist + graph_.edge_weight(at, next)});
      return;
    }
    // `at` is the sink: msg.req is queued behind at's last issued request.
    RequestId pred = last_req_[ui];
    ARROWDQ_ASSERT_MSG(pred != kNoRequest, "sink without an id — broken initial state");
    out_.record(Completion{msg.req, pred, sim_.now(), msg.hops, msg.dist});
  }

 private:
  struct IssueEvent {
    OneShotDriver* driver;
    Request r;
    void operator()() const { driver->issue(r); }
  };
  static_assert(Simulator::template fits_inline_v<IssueEvent>,
                "IssueEvent must stay on the simulator's inline path");

  const Graph& graph_;
  Simulator& sim_;
  Network<ArrowMsg, Latency, Handler> net_;
  std::vector<NodeId>& link_;
  std::vector<RequestId>& last_req_;
  QueuingOutcome& out_;
};

/// Typed handler for the statically dispatched path.
template <typename Latency>
struct ArrowHandler {
  OneShotDriver<Latency, ArrowHandler>* driver = nullptr;
  void operator()(NodeId from, NodeId to, const ArrowMsg& m) const {
    driver->receive(from, to, m);
  }
};

}  // namespace

ArrowEngine::ArrowEngine(const Tree& tree, LatencyModel& latency)
    : tree_(tree), latency_(latency), tree_graph_(tree.as_graph()) {}

void ArrowEngine::prepare(const RequestSet& requests) {
  ARROWDQ_ASSERT_MSG(requests.root() >= 0 && requests.root() < tree_.node_count(),
                     "request root is not a tree node");
  auto n = static_cast<std::size_t>(tree_.node_count());

  // Initial configuration: all pointers lead to the root (Figure 1); the
  // root is the sink holding the virtual request r0.
  // Rebuild the tree rooted at the request root so parent pointers point the
  // right way regardless of how the caller rooted T.
  const Tree rooted =
      tree_.root() == requests.root() ? tree_ : tree_.rerooted(requests.root());
  link_.assign(n, kNoNode);
  last_req_.assign(n, kNoRequest);
  for (NodeId v = 0; v < tree_.node_count(); ++v)
    link_[static_cast<std::size_t>(v)] = v == requests.root() ? v : rooted.parent(v);
  last_req_[static_cast<std::size_t>(requests.root())] = kRootRequest;

  sim_ = Simulator{};
  // Pending events are bounded by the issue schedule plus in-flight
  // messages (at most a few per tree node at any instant).
  sim_.reserve(static_cast<std::size_t>(requests.size()) + 2 * n);
  messages_ = 0;
}

QueuingOutcome ArrowEngine::run(const RequestSet& requests) {
  prepare(requests);
  const auto n = static_cast<std::size_t>(tree_.node_count());
  QueuingOutcome out(requests.size());
  with_static_latency(latency_, [&](auto lat) {
    using L = decltype(lat);
    OneShotDriver<L, ArrowHandler<L>> driver(tree_graph_, sim_, std::move(lat), service_time_,
                                             2 * n, link_, last_req_, out);
    driver.install(ArrowHandler<L>{&driver});
    driver.schedule(requests);
    sim_.run();
    messages_ = driver.edge_messages();
  });
  ARROWDQ_ASSERT_MSG(out.is_complete(), "arrow did not complete all requests");
  return out;
}

QueuingOutcome ArrowEngine::run_dynamic(const RequestSet& requests) {
  prepare(requests);
  const auto n = static_cast<std::size_t>(tree_.node_count());
  QueuingOutcome out(requests.size());
  using Handler = std::function<void(NodeId, NodeId, const ArrowMsg&)>;
  OneShotDriver<VirtualSampler, Handler> driver(tree_graph_, sim_, VirtualSampler{latency_},
                                                service_time_, 2 * n, link_, last_req_, out);
  driver.install(
      [&driver](NodeId from, NodeId to, const ArrowMsg& m) { driver.receive(from, to, m); });
  driver.schedule(requests);
  sim_.run();
  messages_ = driver.edge_messages();
  ARROWDQ_ASSERT_MSG(out.is_complete(), "arrow did not complete all requests");
  return out;
}

NodeId ArrowEngine::sink_node() const {
  NodeId sink = kNoNode;
  for (NodeId v = 0; v < static_cast<NodeId>(link_.size()); ++v) {
    if (link_[static_cast<std::size_t>(v)] == v) {
      ARROWDQ_ASSERT_MSG(sink == kNoNode, "multiple sinks at quiescence");
      sink = v;
    }
  }
  ARROWDQ_ASSERT_MSG(sink != kNoNode, "no sink at quiescence");
  return sink;
}

QueuingOutcome run_arrow(const Tree& tree, const RequestSet& requests, LatencyModel& latency) {
  ArrowEngine engine(tree, latency);
  auto out = engine.run(requests);
  out.validate(requests);
  return out;
}

QueuingOutcome run_arrow(const Tree& tree, const RequestSet& requests) {
  SynchronousLatency sync;
  return run_arrow(tree, requests, sync);
}

}  // namespace arrowdq
