#include "arrow/arrow.hpp"

#include "support/assert.hpp"

namespace arrowdq {

ArrowEngine::ArrowEngine(const Tree& tree, LatencyModel& latency)
    : tree_(tree), latency_(latency), tree_graph_(tree.as_graph()) {}

QueuingOutcome ArrowEngine::run(const RequestSet& requests) {
  ARROWDQ_ASSERT(requests.root() >= 0 && requests.root() < tree_.node_count());
  auto n = static_cast<std::size_t>(tree_.node_count());

  // Initial configuration: all pointers lead to the root (Figure 1); the
  // root is the sink holding the virtual request r0.
  // Rebuild the tree rooted at the request root so parent pointers point the
  // right way regardless of how the caller rooted T.
  const Tree rooted =
      tree_.root() == requests.root() ? tree_ : tree_.rerooted(requests.root());
  link_.assign(n, kNoNode);
  last_req_.assign(n, kNoRequest);
  for (NodeId v = 0; v < tree_.node_count(); ++v)
    link_[static_cast<std::size_t>(v)] = v == requests.root() ? v : rooted.parent(v);
  last_req_[static_cast<std::size_t>(requests.root())] = kRootRequest;

  sim_ = Simulator{};
  // Pending events are bounded by the issue schedule plus in-flight
  // messages (at most a few per tree node at any instant).
  sim_.reserve(static_cast<std::size_t>(requests.size()) + 2 * n);
  messages_ = 0;
  Network<ArrowMsg> net(tree_graph_, sim_, latency_);
  net.reserve_messages(2 * n);
  net.set_service_time(service_time_);

  QueuingOutcome out(requests.size());
  net.set_handler([this, &net, &out](NodeId from, NodeId to, const ArrowMsg& msg) {
    receive(net, from, to, msg, out);
  });

  for (const Request& r : requests.real()) {
    sim_.at(r.time, [this, &net, r, &out]() { issue(net, r, out); });
  }

  sim_.run();
  messages_ = net.stats().edge_messages;
  ARROWDQ_ASSERT_MSG(out.is_complete(), "arrow did not complete all requests");
  return out;
}

void ArrowEngine::issue(Network<ArrowMsg>& net, const Request& r, QueuingOutcome& out) {
  NodeId v = r.node;
  auto vi = static_cast<std::size_t>(v);
  if (link_[vi] == v) {
    // v is the sink: queue behind v's previous request locally, no messages.
    RequestId pred = last_req_[vi];
    ARROWDQ_ASSERT(pred != kNoRequest);
    last_req_[vi] = r.id;
    out.record(Completion{r.id, pred, sim_.now(), 0, 0});
    return;
  }
  NodeId target = link_[vi];
  last_req_[vi] = r.id;
  link_[vi] = v;
  net.send(v, target,
           ArrowMsg{r.id, 1, tree_graph_.edge_weight(v, target)});
}

void ArrowEngine::receive(Network<ArrowMsg>& net, NodeId from, NodeId at, const ArrowMsg& msg,
                          QueuingOutcome& out) {
  auto ui = static_cast<std::size_t>(at);
  NodeId next = link_[ui];
  link_[ui] = from;  // path reversal
  if (next != at) {
    net.send(at, next,
             ArrowMsg{msg.req, msg.hops + 1, msg.dist + tree_graph_.edge_weight(at, next)});
    return;
  }
  // `at` is the sink: msg.req is queued behind at's last issued request.
  RequestId pred = last_req_[ui];
  ARROWDQ_ASSERT_MSG(pred != kNoRequest, "sink without an id — broken initial state");
  out.record(Completion{msg.req, pred, sim_.now(), msg.hops, msg.dist});
}

NodeId ArrowEngine::sink_node() const {
  NodeId sink = kNoNode;
  for (NodeId v = 0; v < static_cast<NodeId>(link_.size()); ++v) {
    if (link_[static_cast<std::size_t>(v)] == v) {
      ARROWDQ_ASSERT_MSG(sink == kNoNode, "multiple sinks at quiescence");
      sink = v;
    }
  }
  ARROWDQ_ASSERT_MSG(sink != kNoNode, "no sink at quiescence");
  return sink;
}

QueuingOutcome run_arrow(const Tree& tree, const RequestSet& requests, LatencyModel& latency) {
  ArrowEngine engine(tree, latency);
  auto out = engine.run(requests);
  out.validate(requests);
  return out;
}

QueuingOutcome run_arrow(const Tree& tree, const RequestSet& requests) {
  SynchronousLatency sync;
  return run_arrow(tree, requests, sync);
}

}  // namespace arrowdq
