// The arrow distributed queuing protocol (Raymond 1989; Demmer-Herlihy 1998),
// exactly as described in Section 2 of the paper.
//
// State per node v:
//   link(v) — a tree neighbour or v itself; v is a *sink* iff link(v) == v.
//   id(v)   — the id of the last queuing request issued by v (⊥ if none;
//             the root starts holding the virtual request r0).
//
// Issuing a request a at v (atomic):   receiving queue(a) at u from w (atomic):
//   id(v) <- a                           next <- link(u); link(u) <- w
//   send queue(a) to link(v)             if next != u: forward queue(a) to next
//   link(v) <- v                         else: a is queued behind id(u)
//
// Degenerate case: if v is itself the sink when it issues, the request is
// queued behind v's previous request locally with zero messages — this is
// why Figure 11 reports *less than one* hop per request under contention.
#pragma once

#include <memory>
#include <vector>

#include "graph/tree.hpp"
#include "proto/queuing.hpp"
#include "proto/request.hpp"
#include "sim/fault.hpp"
#include "sim/latency.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/types.hpp"

namespace arrowdq {

/// The wire message: queue(a) plus traversal accounting carried for
/// measurement only (a real deployment sends just the request id).
struct ArrowMsg {
  RequestId req = kNoRequest;
  std::int32_t hops = 0;  // tree edges traversed so far
  Weight dist = 0;        // weighted distance traversed so far (units)
  // Crash-recovery epoch the message was sent in. A crash invalidates all
  // in-flight queue messages (the recovery wave rebuilds the pointer state
  // they were routing through); a message from an older epoch is absorbed
  // at the current sink instead of path-reversing. Always 0 fault-free.
  std::int32_t epoch = 0;
};

/// One-shot arrow execution: issue a fixed request set, run to quiescence,
/// return the queuing outcome.
class ArrowEngine {
 public:
  /// `tree` is the pre-selected spanning tree T; `latency` decides the
  /// synchronous/asynchronous model. Both must outlive the engine.
  ArrowEngine(const Tree& tree, LatencyModel& latency);

  /// Serial per-node message processing cost (0 = the paper's free local
  /// processing).
  void set_service_time(Time ticks) { service_time_ = ticks; }

  /// Install a fault schedule (default: none). Message faults perturb
  /// delivery through the network's fault filter; crash windows corrupt the
  /// victim's pointer state and trigger a SelfStabilizer recovery wave that
  /// re-centers the queue tail at the request root before queuing resumes.
  /// Partition windows sever a subtree (cross-cut traffic queues until the
  /// heal, each side reconciles around its own sink) and churn events splice
  /// departed nodes out via the same wave. With any topology fault active
  /// the outcome still completes every request, but the pre-fault successor
  /// chain may be severed (validate() would abort), so callers must skip
  /// full-order validation for such runs.
  void set_fault(const FaultSpec& fault) { fault_ = fault; }
  const FaultSpec& fault() const { return fault_; }

  /// Statically dispatched execution: the standard latency models are
  /// devirtualized once per run and the network handler is a typed callable.
  QueuingOutcome run(const RequestSet& requests);

  /// The same protocol forced onto the dynamically dispatched path (virtual
  /// latency sampling + std::function handler). Tick-identical to run() by
  /// construction; kept as the benchmark/test reference.
  QueuingOutcome run_dynamic(const RequestSet& requests);

  /// Post-run pointer state (index = node, value = link target).
  const std::vector<NodeId>& links() const { return link_; }
  /// Post-run node that is the unique sink (the queue's tail location).
  NodeId sink_node() const;
  /// Messages sent during the last run.
  std::uint64_t messages_sent() const { return messages_; }
  Simulator& sim() { return sim_; }

  /// Degradation/recovery metrics from the last run (all zero fault-free).
  const FaultStats& fault_stats() const { return fault_stats_; }
  int stabilize_rounds() const { return stabilize_rounds_; }
  int stabilize_corrections() const { return stabilize_corrections_; }
  std::int32_t crashes_applied() const { return crashes_applied_; }
  /// Partition windows that opened during the run (≤ the schedule length:
  /// windows after completion never fire).
  std::int32_t partitions_applied() const { return partitions_applied_; }
  /// Churn re-selections performed (tree-edge splices of departed nodes).
  std::int32_t reselections() const { return reselections_; }

 private:
  /// Reset per-run protocol state (pointers, ids, simulator) for `requests`.
  void prepare(const RequestSet& requests);

  const Tree& tree_;
  LatencyModel& latency_;
  Time service_time_ = 0;
  FaultSpec fault_;
  Graph tree_graph_;
  Simulator sim_;
  std::vector<NodeId> link_;
  std::vector<RequestId> last_req_;
  std::uint64_t messages_ = 0;
  FaultStats fault_stats_;
  int stabilize_rounds_ = 0;
  int stabilize_corrections_ = 0;
  std::int32_t crashes_applied_ = 0;
  std::int32_t partitions_applied_ = 0;
  std::int32_t reselections_ = 0;
};

/// Convenience: run arrow once on (tree, requests) under the given latency
/// model; validates the outcome before returning it.
QueuingOutcome run_arrow(const Tree& tree, const RequestSet& requests, LatencyModel& latency);

/// Synchronous-model convenience overload.
QueuingOutcome run_arrow(const Tree& tree, const RequestSet& requests);

}  // namespace arrowdq
