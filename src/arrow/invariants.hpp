// Structural invariants of the arrow pointer state.
//
// At quiescence (no messages in flight) the link pointers must form an
// "in-tree": exactly one sink, and following pointers from any node reaches
// it without cycles. During execution these can be transiently violated
// (a reversal in progress splits the tree), so the checks are meant for
// quiescent states and for the self-stabilization layer.
#pragma once

#include <vector>

#include "graph/tree.hpp"
#include "support/types.hpp"

namespace arrowdq {

struct LinkStateReport {
  bool valid = false;
  NodeId sink = kNoNode;      // unique sink if valid
  int sink_count = 0;
  int illegal_pointers = 0;   // link not a tree neighbour nor self
  int unreachable = 0;        // nodes whose pointer chain does not reach the sink
};

/// Full check of a link assignment against the tree topology.
LinkStateReport check_link_state(const std::vector<NodeId>& links, const Tree& tree);

/// True iff every pointer chain leads to a unique sink.
bool links_form_in_tree(const std::vector<NodeId>& links, const Tree& tree);

}  // namespace arrowdq
