// Streaming statistics accumulators used by benchmarks and experiment
// harnesses.
#pragma once

#include <cstdint>
#include <vector>

namespace arrowdq {

/// Single-pass accumulator: count, min, max, mean, variance (Welford).
class StatAccumulator {
 public:
  void add(double x);
  void merge(const StatAccumulator& other);
  void reset();

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Retains all samples; supports exact quantiles. Use for per-request latency
/// distributions where |R| is bounded by the experiment size.
class SampleSet {
 public:
  void add(double x);
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double min() const;
  double max() const;
  /// Exact quantile by linear interpolation; q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace arrowdq
