// Fixed-width table / CSV emission for benchmark output.
//
// Every bench binary regenerates one paper artifact as rows of a table; this
// helper keeps the column formatting consistent and can mirror the rows into
// a CSV file for plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace arrowdq {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Begin a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(std::int64_t value);
  Table& cell(double value, int precision = 3);

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& column_names() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Render with padded columns and a header rule.
  std::string render() const;
  /// Write RFC-4180-ish CSV (no quoting needed for our numeric content).
  std::string csv() const;
  /// Print render() to the stream.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print the table to stdout; additionally, when the ARROWDQ_CSV_DIR
/// environment variable is set, mirror the rows to
/// "$ARROWDQ_CSV_DIR/<artifact>.csv" for plotting. Used by every bench
/// binary so paper artifacts can be regenerated as data files.
void emit_table(const Table& table, const std::string& artifact);

}  // namespace arrowdq
