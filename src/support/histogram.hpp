// Fixed-bucket and log-scale histograms for latency / hop distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace arrowdq {

/// Linear-bucket histogram over [lo, hi); out-of-range samples clamp into the
/// first / last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::int64_t total() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::int64_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Render an ASCII bar chart, one line per non-empty bucket.
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

/// Power-of-two bucket histogram for non-negative integer samples
/// (bucket k holds values in [2^k, 2^(k+1))); bucket 0 holds {0, 1}.
class LogHistogram {
 public:
  void add(std::int64_t x);
  std::int64_t total() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::int64_t bucket(std::size_t i) const { return counts_.at(i); }

  std::string ascii(std::size_t width = 50) const;

 private:
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace arrowdq
