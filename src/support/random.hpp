// Deterministic pseudo-random number generation.
//
// Every randomized component in arrowdq (graph generators, asynchronous
// latency models, workload generators) takes an explicit 64-bit seed and
// derives its stream from this generator, so any run can be replayed
// bit-identically. We implement xoshiro256** (Blackman & Vigna) seeded via
// splitmix64, the recommended seeding procedure; <random> engines are avoided
// because their distributions are not reproducible across standard library
// implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "support/types.hpp"

namespace arrowdq {

/// splitmix64 step: used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix of a single value (one splitmix64 round).
std::uint64_t mix64(std::uint64_t x);

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless rejection method, so results are exactly uniform.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// true with probability p.
  bool next_bool(double p = 0.5);

  /// Exponentially distributed double with rate lambda (> 0).
  double next_exponential(double lambda);

  /// Derive an independent child generator (for per-component streams).
  Rng split();

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A uniformly random permutation of 0..n-1.
  std::vector<std::int32_t> permutation(std::int32_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace arrowdq
