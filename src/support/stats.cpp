#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace arrowdq {

void StatAccumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StatAccumulator::merge(const StatAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  std::int64_t total = count_ + other.count_;
  double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / static_cast<double>(total);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                          static_cast<double>(other.count_) / static_cast<double>(total);
  mean_ = new_mean;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

void StatAccumulator::reset() { *this = StatAccumulator{}; }

double StatAccumulator::min() const {
  ARROWDQ_ASSERT(count_ > 0);
  return min_;
}

double StatAccumulator::max() const {
  ARROWDQ_ASSERT(count_ > 0);
  return max_;
}

double StatAccumulator::mean() const { return count_ == 0 ? 0.0 : mean_; }

double StatAccumulator::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  ARROWDQ_ASSERT(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  ARROWDQ_ASSERT(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleSet::quantile(double q) const {
  ARROWDQ_ASSERT(!samples_.empty());
  ARROWDQ_ASSERT(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  double pos = q * static_cast<double>(sorted_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

}  // namespace arrowdq
