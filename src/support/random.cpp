#include "support/random.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace arrowdq {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : s_) word = splitmix64(s);
}

static inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  ARROWDQ_ASSERT(bound > 0);
  // Lemire's method: multiply-shift with rejection in the biased low range.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  ARROWDQ_ASSERT(lo <= hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) { return lo + (hi - lo) * next_double(); }

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_exponential(double lambda) {
  ARROWDQ_ASSERT(lambda > 0.0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

Rng Rng::split() { return Rng(next()); }

std::vector<std::int32_t> Rng::permutation(std::int32_t n) {
  std::vector<std::int32_t> p(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
  shuffle(p);
  return p;
}

}  // namespace arrowdq
