// Lightweight always-on assertion for protocol invariants.
//
// Protocol-level invariants (single sink at quiescence, FIFO delivery, valid
// permutation orders) are cheap relative to simulation work and guard against
// silent corruption, so they stay enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace arrowdq::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "arrowdq invariant violated: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}
}  // namespace arrowdq::detail

#define ARROWDQ_ASSERT(expr)                                                \
  do {                                                                      \
    if (!(expr)) ::arrowdq::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define ARROWDQ_ASSERT_MSG(expr, msg)                                      \
  do {                                                                     \
    if (!(expr)) ::arrowdq::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
