// Assertion macros, split by cost/audience:
//
//  * ARROWDQ_ASSERT_MSG — always on, even in Release. Guards API misuse and
//    protocol-level invariants whose violation means silent corruption
//    (single sink at quiescence, valid permutation orders, sending over a
//    non-edge). These are cheap relative to the work they guard.
//  * ARROWDQ_ASSERT — internal consistency checks on hot paths (per-event,
//    per-send). Compiled out under NDEBUG (the default Release build) so the
//    simulation hot loop pays nothing for them; the Debug/ASan CI job keeps
//    them enabled. The disabled form still odr-uses the expression via an
//    unevaluated sizeof, so variables referenced only by asserts do not
//    trigger -Wunused warnings and the expression keeps type-checking.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace arrowdq::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "arrowdq invariant violated: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}
}  // namespace arrowdq::detail

#define ARROWDQ_ASSERT_MSG(expr, msg)                                      \
  do {                                                                     \
    if (!(expr)) ::arrowdq::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#if defined(NDEBUG)
#define ARROWDQ_ASSERT(expr) ((void)sizeof(!(expr)))
#else
#define ARROWDQ_ASSERT(expr)                                                \
  do {                                                                      \
    if (!(expr)) ::arrowdq::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)
#endif
