#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include <cstdio>
#include <cstdlib>
#include "support/assert.hpp"

namespace arrowdq {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  ARROWDQ_ASSERT(!columns_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  ARROWDQ_ASSERT_MSG(!rows_.empty(), "call row() before cell()");
  ARROWDQ_ASSERT_MSG(rows_.back().size() < columns_.size(), "row has too many cells");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream s;
  s << std::fixed << std::setprecision(precision) << value;
  return cell(s.str());
}

std::string Table::render() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::string v = c < cells.size() ? cells[c] : "";
      out << std::setw(static_cast<int>(widths[c])) << v;
      if (c + 1 < columns_.size()) out << "  ";
    }
    out << "\n";
  };
  emit_row(columns_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out << std::string(total, '-') << "\n";
  for (const auto& r : rows_) emit_row(r);
  return out.str();
}

std::string Table::csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << columns_[c];
    if (c + 1 < columns_.size()) out << ",";
  }
  out << "\n";
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      out << r[c];
      if (c + 1 < r.size()) out << ",";
    }
    out << "\n";
  }
  return out.str();
}

void Table::print(std::ostream& out) const { out << render(); }

void emit_table(const Table& table, const std::string& artifact) {
  std::fputs(table.render().c_str(), stdout);
  const char* dir = std::getenv("ARROWDQ_CSV_DIR");
  if (!dir || !*dir) return;
  std::string path = std::string(dir) + "/" + artifact + ".csv";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::string csv = table.csv();
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::fprintf(stdout, "[csv written to %s]\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  }
}

}  // namespace arrowdq
