#include "support/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/assert.hpp"

namespace arrowdq {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  ARROWDQ_ASSERT(hi > lo);
  ARROWDQ_ASSERT(buckets > 0);
}

void Histogram::add(double x) {
  double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::int64_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

std::string Histogram::ascii(std::size_t width) const {
  std::ostringstream out;
  std::int64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    auto bar = static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                        static_cast<double>(peak) * static_cast<double>(width));
    out << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") " << std::string(bar, '#') << " "
        << counts_[i] << "\n";
  }
  return out.str();
}

void LogHistogram::add(std::int64_t x) {
  ARROWDQ_ASSERT(x >= 0);
  std::size_t k = 0;
  while ((std::int64_t{1} << (k + 1)) <= x) ++k;
  if (k >= counts_.size()) counts_.resize(k + 1, 0);
  ++counts_[k];
  ++total_;
}

std::string LogHistogram::ascii(std::size_t width) const {
  std::ostringstream out;
  std::int64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    auto bar = static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                        static_cast<double>(peak) * static_cast<double>(width));
    out << "[2^" << i << ") " << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace arrowdq
