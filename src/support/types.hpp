// Core scalar types shared by every arrowdq module.
//
// The simulator measures time in integer "ticks". One abstract time unit of
// the paper's model (the latency of one unit-weight edge in the synchronous
// model, or the maximum message delay in the asynchronous model of Section
// 3.8) equals kTicksPerUnit ticks. Using a fixed-point representation keeps
// every cost computation exact: the lemma checks in the test suite are
// integer comparisons with no floating-point tolerance.
#pragma once

#include <cstdint>
#include <limits>

namespace arrowdq {

/// Index of a node (processor) in the network graph. Nodes are dense
/// integers `0 .. n-1`.
using NodeId = std::int32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = -1;

/// Simulated time in ticks (see kTicksPerUnit).
using Time = std::int64_t;

/// Number of ticks per abstract time unit. A power of two so scaling is a
/// shift and exactly representable.
inline constexpr Time kTicksPerUnit = 1024;

/// Sentinel for "never" / unset time.
inline constexpr Time kTimeNever = std::numeric_limits<Time>::max();

/// Identifier of a queuing request. Request 0 is reserved for the virtual
/// root request r0 = (root, 0) of the paper; real requests are 1..|R|.
using RequestId = std::int32_t;

/// The virtual root request id.
inline constexpr RequestId kRootRequest = 0;

/// Sentinel for "no request" (the paper's "⊥" id value).
inline constexpr RequestId kNoRequest = -1;

/// Edge weight in the network graph, in abstract time units (the latency of
/// sending one message across the edge in the synchronous model).
using Weight = std::int64_t;

/// Convert whole time units to ticks.
constexpr Time units_to_ticks(Weight units) { return static_cast<Time>(units) * kTicksPerUnit; }

/// Convert ticks to (truncated) whole units.
constexpr Weight ticks_to_units(Time ticks) { return static_cast<Weight>(ticks / kTicksPerUnit); }

/// Convert ticks to fractional units (for reporting only).
constexpr double ticks_to_units_d(Time ticks) {
  return static_cast<double>(ticks) / static_cast<double>(kTicksPerUnit);
}

}  // namespace arrowdq
