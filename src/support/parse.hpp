// Checked numeric parsing for CLI input.
//
// std::atoi / std::atof silently turn garbage into 0, so a typo like
// `--nodes foo` or `torus:0x0` used to become a degenerate scenario cell
// instead of an error. These parsers accept a string only when the *entire*
// string is a well-formed number within range, and return std::nullopt
// otherwise; the positive/non-negative variants add the sign constraint the
// CLI axes need. Callers turn nullopt into a usage message and a nonzero
// exit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace arrowdq {

/// Full-string signed integer parse (base 10). Rejects empty strings,
/// leading/trailing junk, and out-of-range values.
std::optional<std::int64_t> parse_i64(const std::string& s);

/// Full-string floating-point parse. Rejects empty strings, trailing junk,
/// infinities, NaN, and out-of-range values.
std::optional<double> parse_f64(const std::string& s);

/// parse_i64, additionally requiring the value to be > 0.
std::optional<std::int64_t> parse_positive_i64(const std::string& s);

/// parse_i64, additionally requiring the value to be >= 0.
std::optional<std::int64_t> parse_nonneg_i64(const std::string& s);

/// parse_f64, additionally requiring the value to be > 0.
std::optional<double> parse_positive_f64(const std::string& s);

}  // namespace arrowdq
