#include "support/parse.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace arrowdq {

namespace {

// strtoll/strtod skip leading whitespace, which would quietly accept
// " 12"; reject it up front so the CLI surface is strict.
bool has_leading_space(const std::string& s) {
  return !s.empty() && std::isspace(static_cast<unsigned char>(s.front()));
}

}  // namespace

std::optional<std::int64_t> parse_i64(const std::string& s) {
  if (s.empty() || has_leading_space(s)) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE || end == s.c_str() || *end != '\0') return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> parse_f64(const std::string& s) {
  if (s.empty() || has_leading_space(s)) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno == ERANGE || end == s.c_str() || *end != '\0') return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

std::optional<std::int64_t> parse_positive_i64(const std::string& s) {
  auto v = parse_i64(s);
  if (!v || *v <= 0) return std::nullopt;
  return v;
}

std::optional<std::int64_t> parse_nonneg_i64(const std::string& s) {
  auto v = parse_i64(s);
  if (!v || *v < 0) return std::nullopt;
  return v;
}

std::optional<double> parse_positive_f64(const std::string& s) {
  auto v = parse_f64(s);
  if (!v || *v <= 0.0) return std::nullopt;
  return v;
}

}  // namespace arrowdq
