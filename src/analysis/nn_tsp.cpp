#include "analysis/nn_tsp.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace arrowdq {

std::vector<RequestId> nn_order(const RequestSet& reqs, const CostFn& cost) {
  auto n = reqs.size();
  std::vector<bool> used(static_cast<std::size_t>(n) + 1, false);
  std::vector<RequestId> order;
  order.reserve(static_cast<std::size_t>(n) + 1);
  RequestId cur = kRootRequest;
  used[0] = true;
  order.push_back(cur);
  for (std::int32_t step = 0; step < n; ++step) {
    RequestId best = kNoRequest;
    Time best_cost = 0;
    for (RequestId cand = 1; cand <= n; ++cand) {
      if (used[static_cast<std::size_t>(cand)]) continue;
      Time c = cost(reqs.by_id(cur), reqs.by_id(cand));
      if (best == kNoRequest || c < best_cost) {
        best = cand;
        best_cost = c;
      }
    }
    ARROWDQ_ASSERT(best != kNoRequest);
    used[static_cast<std::size_t>(best)] = true;
    order.push_back(best);
    cur = best;
  }
  return order;
}

bool is_nn_order(std::span<const RequestId> order, const RequestSet& reqs, const CostFn& cost) {
  auto n = reqs.size();
  if (order.size() != static_cast<std::size_t>(n) + 1) return false;
  if (order.front() != kRootRequest) return false;
  std::vector<bool> visited(static_cast<std::size_t>(n) + 1, false);
  visited[0] = true;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const Request& cur = reqs.by_id(order[i]);
    Time taken = cost(cur, reqs.by_id(order[i + 1]));
    for (RequestId cand = 1; cand <= n; ++cand) {
      if (visited[static_cast<std::size_t>(cand)] || cand == order[i + 1]) continue;
      if (cost(cur, reqs.by_id(cand)) < taken) return false;
    }
    visited[static_cast<std::size_t>(order[i + 1])] = true;
  }
  return true;
}

NnEdgeStats nn_edge_stats(std::span<const RequestId> order, const RequestSet& reqs,
                          const CostFn& cost) {
  NnEdgeStats stats;
  Time min_nz = 0;
  bool have_nz = false;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    Time c = cost(reqs.by_id(order[i]), reqs.by_id(order[i + 1]));
    stats.max_edge = std::max(stats.max_edge, c);
    if (c == 0) {
      ++stats.zero_edges;
    } else if (!have_nz || c < min_nz) {
      min_nz = c;
      have_nz = true;
    }
  }
  stats.min_nonzero_edge = have_nz ? min_nz : 0;
  return stats;
}

double theorem318_factor(Time max_edge, Time min_nonzero_edge) {
  if (max_edge <= 0 || min_nonzero_edge <= 0) return 1.5;
  double ratio = static_cast<double>(max_edge) / static_cast<double>(min_nonzero_edge);
  double classes = std::max(1.0, std::ceil(std::log2(ratio)));
  if (ratio > 1.0 && std::pow(2.0, classes) == ratio) classes += 1.0;  // ceil over half-open classes
  return 1.5 * classes;
}

}  // namespace arrowdq
