#include "analysis/costs.hpp"

#include <cstdlib>

#include "support/assert.hpp"

namespace arrowdq {

DistFn tree_dist_ticks(const Tree& tree) {
  return [&tree](NodeId u, NodeId v) { return units_to_ticks(tree.distance(u, v)); };
}

DistFn graph_dist_ticks(const AllPairs& apsp) {
  return [&apsp](NodeId u, NodeId v) { return units_to_ticks(apsp.dist(u, v)); };
}

Time cost_cT(const Request& ri, const Request& rj, const DistFn& dist) {
  Time dt = dist(ri.node, rj.node);
  Time d = rj.time - ri.time + dt;
  if (d >= 0) return d;
  return ri.time - rj.time + dt;
}

Time cost_cM(const Request& ri, const Request& rj, const DistFn& dist) {
  Time dt = dist(ri.node, rj.node);
  return dt + std::llabs(rj.time - ri.time);
}

Time cost_cO(const Request& ri, const Request& rj, const DistFn& dist) {
  Time dt = dist(ri.node, rj.node);
  return std::max(dt, ri.time - rj.time);
}

CostFn make_cT(DistFn dist) {
  return [dist = std::move(dist)](const Request& ri, const Request& rj) {
    return cost_cT(ri, rj, dist);
  };
}

CostFn make_cM(DistFn dist) {
  return [dist = std::move(dist)](const Request& ri, const Request& rj) {
    return cost_cM(ri, rj, dist);
  };
}

CostFn make_cO(DistFn dist) {
  return [dist = std::move(dist)](const Request& ri, const Request& rj) {
    return cost_cO(ri, rj, dist);
  };
}

Time order_cost(std::span<const RequestId> order, const RequestSet& reqs, const CostFn& cost) {
  ARROWDQ_ASSERT(!order.empty());
  Time total = 0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i)
    total += cost(reqs.by_id(order[i]), reqs.by_id(order[i + 1]));
  return total;
}

}  // namespace arrowdq
