#include "analysis/competitive.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace arrowdq {

CompetitiveReport analyze_competitive(const Graph& g, const Tree& t, const RequestSet& reqs,
                                      const QueuingOutcome& arrow_outcome,
                                      std::int32_t exact_limit) {
  CompetitiveReport rep;
  rep.cost_arrow = arrow_outcome.total_latency(reqs);

  auto order = arrow_outcome.order();
  auto dT = tree_dist_ticks(t);
  auto cT = make_cT(dT);
  rep.ct_sum = order_cost(order, reqs, cT);
  rep.t_last = reqs.by_id(order.back()).time;
  rep.lemma310_exact = rep.cost_arrow == rep.ct_sum - rep.t_last;

  AllPairs apsp(g);
  auto dG = graph_dist_ticks(apsp);
  rep.opt = opt_cost_lower_bound(reqs, dG, exact_limit);

  rep.ratio = rep.opt.value > 0
                  ? static_cast<double>(rep.cost_arrow) / static_cast<double>(rep.opt.value)
                  : 0.0;

  rep.stretch = stretch_exact(apsp, t).max_stretch;
  rep.tree_diameter = t.diameter();
  double log_d = std::log2(std::max<double>(2.0, static_cast<double>(rep.tree_diameter)));
  rep.s_log_d = rep.stretch * log_d;
  return rep;
}

}  // namespace arrowdq
