// Nearest-neighbour TSP paths (Section 3.4 / Theorem 3.18).
//
// Lemma 3.8: the arrow protocol's queuing order is a nearest-neighbour TSP
// path on R under cost cT starting from the root request r0. Nearest-
// neighbour orders are not unique under ties, so rather than comparing one
// NN order against arrow's, is_nn_order() checks the defining property
// (Equations 6-7): every step of the order goes to *a* closest unvisited
// request.
#pragma once

#include <span>
#include <vector>

#include "analysis/costs.hpp"
#include "proto/request.hpp"

namespace arrowdq {

/// Greedy NN path from r0; ties broken toward the smallest request id.
std::vector<RequestId> nn_order(const RequestSet& reqs, const CostFn& cost);

/// Checks Equations (6)-(7): each consecutive cost equals the minimum cost
/// from the current request to any not-yet-visited request.
bool is_nn_order(std::span<const RequestId> order, const RequestSet& reqs, const CostFn& cost);

struct NnEdgeStats {
  Time max_edge = 0;          // D_NN
  Time min_nonzero_edge = 0;  // d_NN (0 when all edges are zero)
  int zero_edges = 0;
};

NnEdgeStats nn_edge_stats(std::span<const RequestId> order, const RequestSet& reqs,
                          const CostFn& cost);

/// Theorem 3.18's approximation factor for an NN *tour*:
/// (3/2) * ceil(log2(D_NN / d_NN)), at least 3/2.
double theorem318_factor(Time max_edge, Time min_nonzero_edge);

}  // namespace arrowdq
