#include "analysis/optimal.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "support/assert.hpp"

namespace arrowdq {

Time min_order_cost_exact(const RequestSet& reqs, const CostFn& cost,
                          std::vector<RequestId>* best_order) {
  auto n = reqs.size();
  ARROWDQ_ASSERT_MSG(n <= 18, "Held-Karp limited to 18 requests");
  if (n == 0) {
    if (best_order) *best_order = {kRootRequest};
    return 0;
  }
  const Time inf = std::numeric_limits<Time>::max() / 4;
  const std::size_t full = std::size_t{1} << n;
  // dp[mask][i]: min cost of a path r0 -> ... -> r_(i+1) visiting exactly the
  // requests in mask (bit i represents request id i+1).
  std::vector<std::vector<Time>> dp(full, std::vector<Time>(static_cast<std::size_t>(n), inf));
  std::vector<std::vector<std::int8_t>> from(
      best_order ? full : 0,
      std::vector<std::int8_t>(best_order ? static_cast<std::size_t>(n) : 0, -1));
  for (std::int32_t i = 0; i < n; ++i) {
    dp[std::size_t{1} << i][static_cast<std::size_t>(i)] =
        cost(reqs.by_id(kRootRequest), reqs.by_id(i + 1));
  }
  for (std::size_t mask = 1; mask < full; ++mask) {
    for (std::int32_t i = 0; i < n; ++i) {
      if (!(mask & (std::size_t{1} << i))) continue;
      Time base = dp[mask][static_cast<std::size_t>(i)];
      if (base >= inf) continue;
      for (std::int32_t j = 0; j < n; ++j) {
        if (mask & (std::size_t{1} << j)) continue;
        std::size_t nmask = mask | (std::size_t{1} << j);
        Time c = base + cost(reqs.by_id(i + 1), reqs.by_id(j + 1));
        if (c < dp[nmask][static_cast<std::size_t>(j)]) {
          dp[nmask][static_cast<std::size_t>(j)] = c;
          if (best_order) from[nmask][static_cast<std::size_t>(j)] = static_cast<std::int8_t>(i);
        }
      }
    }
  }
  std::int32_t best_end = 0;
  Time best = inf;
  for (std::int32_t i = 0; i < n; ++i) {
    if (dp[full - 1][static_cast<std::size_t>(i)] < best) {
      best = dp[full - 1][static_cast<std::size_t>(i)];
      best_end = i;
    }
  }
  if (best_order) {
    std::vector<RequestId> rev;
    std::size_t mask = full - 1;
    std::int32_t cur = best_end;
    while (cur >= 0) {
      rev.push_back(cur + 1);
      std::int8_t prev = from[mask][static_cast<std::size_t>(cur)];
      mask &= ~(std::size_t{1} << cur);
      cur = prev;
    }
    rev.push_back(kRootRequest);
    best_order->assign(rev.rbegin(), rev.rend());
  }
  return best;
}

Time min_order_cost_brute(const RequestSet& reqs, const CostFn& cost) {
  auto n = reqs.size();
  ARROWDQ_ASSERT_MSG(n <= 9, "brute force limited to 9 requests");
  std::vector<RequestId> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 1);
  Time best = std::numeric_limits<Time>::max();
  do {
    Time c = cost(reqs.by_id(kRootRequest), reqs.by_id(perm.empty() ? kRootRequest : perm[0]));
    if (perm.empty()) c = 0;
    for (std::size_t i = 0; i + 1 < perm.size(); ++i)
      c += cost(reqs.by_id(perm[i]), reqs.by_id(perm[i + 1]));
    best = std::min(best, c);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return n == 0 ? 0 : best;
}

Time request_mst_weight(const RequestSet& reqs, const CostFn& cost) {
  auto m = reqs.size() + 1;  // include r0
  if (m <= 1) return 0;
  const Time inf = std::numeric_limits<Time>::max() / 4;
  std::vector<Time> best(static_cast<std::size_t>(m), inf);
  std::vector<bool> used(static_cast<std::size_t>(m), false);
  best[0] = 0;
  Time total = 0;
  for (std::int32_t step = 0; step < m; ++step) {
    std::int32_t pick = -1;
    for (std::int32_t i = 0; i < m; ++i)
      if (!used[static_cast<std::size_t>(i)] &&
          (pick < 0 || best[static_cast<std::size_t>(i)] < best[static_cast<std::size_t>(pick)]))
        pick = i;
    used[static_cast<std::size_t>(pick)] = true;
    total += best[static_cast<std::size_t>(pick)];
    for (std::int32_t j = 0; j < m; ++j) {
      if (used[static_cast<std::size_t>(j)]) continue;
      Time c = cost(reqs.by_id(pick), reqs.by_id(j));
      if (c < best[static_cast<std::size_t>(j)]) best[static_cast<std::size_t>(j)] = c;
    }
  }
  return total;
}

Time min_order_cost_2opt(const RequestSet& reqs, const CostFn& cost, int max_passes) {
  auto n = reqs.size();
  if (n <= 1) return n == 0 ? 0 : cost(reqs.by_id(0), reqs.by_id(1));
  // Start from the greedy NN order.
  std::vector<RequestId> order;
  {
    std::vector<bool> used(static_cast<std::size_t>(n) + 1, false);
    RequestId cur = kRootRequest;
    used[0] = true;
    order.push_back(cur);
    for (std::int32_t s = 0; s < n; ++s) {
      RequestId best = kNoRequest;
      Time bc = 0;
      for (RequestId cand = 1; cand <= n; ++cand) {
        if (used[static_cast<std::size_t>(cand)]) continue;
        Time c = cost(reqs.by_id(cur), reqs.by_id(cand));
        if (best == kNoRequest || c < bc) {
          best = cand;
          bc = c;
        }
      }
      used[static_cast<std::size_t>(best)] = true;
      order.push_back(best);
      cur = best;
    }
  }
  auto seg_cost = [&](const std::vector<RequestId>& o) {
    Time t = 0;
    for (std::size_t i = 0; i + 1 < o.size(); ++i)
      t += cost(reqs.by_id(o[i]), reqs.by_id(o[i + 1]));
    return t;
  };
  Time cur_cost = seg_cost(order);
  // "Or-opt" style: relocate single elements; correct for asymmetric costs
  // (classic 2-opt reversal assumes symmetry).
  for (int pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (std::size_t i = 1; i < order.size(); ++i) {
      for (std::size_t j = 1; j < order.size(); ++j) {
        if (i == j || i + 1 == j) continue;
        std::vector<RequestId> cand = order;
        RequestId moved = cand[i];
        cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
        std::size_t insert_at = j < i ? j : j - 1;
        cand.insert(cand.begin() + static_cast<std::ptrdiff_t>(insert_at), moved);
        Time c = seg_cost(cand);
        if (c < cur_cost) {
          order = std::move(cand);
          cur_cost = c;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return cur_cost;
}

OptBound opt_cost_lower_bound(const RequestSet& reqs, const DistFn& graph_dist,
                              std::int32_t exact_limit) {
  OptBound b;
  auto cO = make_cO(graph_dist);
  auto cM = make_cM(graph_dist);
  if (reqs.size() <= exact_limit) b.exact = min_order_cost_exact(reqs, cO);
  b.mst_cm = request_mst_weight(reqs, cM);
  Time bound = b.mst_cm / 12;  // Lemma 3.17: CM <= 12 CO for any ordering
  if (b.exact >= 0) bound = std::max(bound, b.exact);
  b.value = std::max<Time>(bound, 0);
  return b;
}

}  // namespace arrowdq
