// Lemma 3.20: the queuing order of an *asynchronous* arrow execution is a
// nearest-neighbour TSP path under the execution-dependent cost c'T:
//
//   c'T(ri, rj) = (tj - ti) + c'A(ri, rj)   if rj directly follows ri in
//                                           the execution's order pi'A,
//                 cT(ri, rj)                otherwise,
//
// where c'A(ri, rj) is the measured latency of rj (time from tj until rj's
// message reached ri's node). Since c'A <= dT (delays are normalized to at
// most one unit per unit of edge weight), 0 <= c'T <= cT <= cM — the chain
// of inequalities (12) that powers Theorem 3.21.
//
// The NN property is verifiable directly from a QueuingOutcome: for each
// consecutive pair, completed_at(r_(i+1)) - t_(pi(i)) must not exceed
// cT(pi(i), r) for any unvisited candidate r.
#pragma once

#include "analysis/costs.hpp"
#include "graph/tree.hpp"
#include "proto/queuing.hpp"
#include "proto/request.hpp"

namespace arrowdq {

struct AsyncNnReport {
  bool is_nn = false;           // Lemma 3.20's property holds
  bool chain_holds = false;     // 0 <= c'T <= cT <= cM on consecutive pairs
  int violations = 0;           // NN violations found (0 when is_nn)
};

/// Check Lemma 3.20 and inequality chain (12) on an (a)synchronous arrow
/// execution outcome.
AsyncNnReport check_async_nn(const Tree& tree, const RequestSet& reqs,
                             const QueuingOutcome& outcome);

}  // namespace arrowdq
