// The paper's cost functions over request pairs (Section 3), all in ticks.
//
//   cT(ri, rj)  (Definition 3.5)  — the asymmetric cost whose NN path arrow
//                                   follows: d = (tj - ti) + dT(vi, vj) if
//                                   d >= 0, else (ti - tj) + dT(vi, vj).
//   cM(ri, rj)  (Definition 3.14) — Manhattan metric dT(vi, vj) + |ti - tj|.
//   cO(ri, rj)  (Equation 3)      — max{dT(vi, vj), ti - tj}: lower bound on
//                                   the latency of ordering rj right after ri
//                                   when messages travel the tree.
//   cOpt(ri,rj) (Equation 3)      — same with graph distances dG: the true
//                                   offline-optimal per-edge latency bound.
#pragma once

#include <functional>
#include <span>

#include "graph/shortest_paths.hpp"
#include "graph/tree.hpp"
#include "proto/request.hpp"
#include "support/types.hpp"

namespace arrowdq {

/// Pairwise node distance in ticks.
using DistFn = std::function<Time(NodeId, NodeId)>;

/// dT over the spanning tree (tree must outlive the function).
DistFn tree_dist_ticks(const Tree& tree);
/// dG over the graph via precomputed APSP (apsp must outlive the function).
DistFn graph_dist_ticks(const AllPairs& apsp);

/// Cost of ordering request rj immediately after ri.
using CostFn = std::function<Time(const Request& ri, const Request& rj)>;

CostFn make_cT(DistFn dist);
CostFn make_cM(DistFn dist);
CostFn make_cO(DistFn dist);

/// Direct evaluations (avoid the std::function wrapper in hot loops).
Time cost_cT(const Request& ri, const Request& rj, const DistFn& dist);
Time cost_cM(const Request& ri, const Request& rj, const DistFn& dist);
Time cost_cO(const Request& ri, const Request& rj, const DistFn& dist);

/// Sum of cost over consecutive pairs of `order` (ids into `reqs`, starting
/// with the root request 0).
Time order_cost(std::span<const RequestId> order, const RequestSet& reqs, const CostFn& cost);

}  // namespace arrowdq
