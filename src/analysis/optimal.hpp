// Machinery for bounding the optimal offline queuing cost (Section 3.3/3.5).
//
// The offline optimum min over orderings pi of sum cOpt(r_pi(i-1), r_pi(i))
// is an asymmetric TSP path problem. We provide:
//  * exact solutions (Held-Karp bitmask DP, |R| <= 18, and brute force for
//    cross-checking),
//  * the Manhattan-MST lower bound used in the proof of Theorem 4.1
//    (an optimal Manhattan path is at least the MST weight, and Lemma 3.17
//    relates Manhattan cost to cO cost: CM <= 12 CO for any ordering),
//  * a greedy + 2-opt upper bound for large request sets.
#pragma once

#include <vector>

#include "analysis/costs.hpp"
#include "proto/request.hpp"

namespace arrowdq {

/// Exact min-cost ordering via Held-Karp over real requests; |R| <= 18
/// (asserts). Returns the cost; optionally emits the minimizing order.
Time min_order_cost_exact(const RequestSet& reqs, const CostFn& cost,
                          std::vector<RequestId>* best_order = nullptr);

/// Brute-force over all |R|! permutations; |R| <= 9 (asserts). For testing
/// the DP.
Time min_order_cost_brute(const RequestSet& reqs, const CostFn& cost);

/// Weight of a minimum spanning tree of the complete request graph under the
/// symmetric cost (intended: cM). Lower-bounds any Hamiltonian path under
/// the same cost.
Time request_mst_weight(const RequestSet& reqs, const CostFn& cost);

/// Greedy NN order improved by 2-opt-style segment reversals until no
/// improving move (or `max_passes`). Upper-bounds the optimum.
Time min_order_cost_2opt(const RequestSet& reqs, const CostFn& cost, int max_passes = 8);

/// Composite lower bound on costOpt (total latency of the optimal offline
/// algorithm, in ticks):
///   max( min_pi sum cOpt   [exact, if |R| <= exact_limit],
///        MST(cM over dG) / 12,                          [Lemma 3.17]
///        (3/2) t_last                                   [Lemma 3.16 spirit]
///        ... all of which are valid lower bounds after the Lemma 3.11
///        time-compaction normalization the paper assumes).
struct OptBound {
  Time exact = -1;       // -1 when |R| too large for the DP
  Time mst_cm = 0;       // MST weight under cM (graph distances)
  Time value = 0;        // the composite lower bound in ticks
};

OptBound opt_cost_lower_bound(const RequestSet& reqs, const DistFn& graph_dist,
                              std::int32_t exact_limit = 14);

}  // namespace arrowdq
