#include "analysis/async_nn.hpp"

#include <vector>

#include "support/assert.hpp"

namespace arrowdq {

AsyncNnReport check_async_nn(const Tree& tree, const RequestSet& reqs,
                             const QueuingOutcome& outcome) {
  AsyncNnReport rep;
  auto order = outcome.order();
  auto dT = tree_dist_ticks(tree);

  rep.chain_holds = true;
  rep.violations = 0;

  std::vector<bool> visited(static_cast<std::size_t>(reqs.size()) + 1, false);
  visited[0] = true;

  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const Request& cur = reqs.by_id(order[i]);
    const Request& next = reqs.by_id(order[i + 1]);
    const Completion& c = outcome.completion(next.id);

    // c'A = measured latency of `next`; c'T for the consecutive pair.
    Time ca_prime = c.completed_at - next.time;
    Time ct_prime = next.time - cur.time + ca_prime;  // = completed_at - t_cur
    Time ct = cost_cT(cur, next, dT);
    Time cm = cost_cM(cur, next, dT);
    if (!(0 <= ct_prime && ct_prime <= ct && ct <= cm)) rep.chain_holds = false;

    // NN property: no unvisited candidate can beat c'T of the chosen next.
    // For candidates, c'T = cT (they are not consecutive with `cur`).
    for (RequestId cand = 1; cand <= reqs.size(); ++cand) {
      if (visited[static_cast<std::size_t>(cand)] || cand == next.id) continue;
      if (cost_cT(cur, reqs.by_id(cand), dT) < ct_prime) {
        ++rep.violations;
        break;
      }
    }
    visited[static_cast<std::size_t>(next.id)] = true;
  }

  rep.is_nn = rep.violations == 0;
  return rep;
}

}  // namespace arrowdq
