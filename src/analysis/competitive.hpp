// End-to-end competitive-ratio analysis of one arrow execution
// (Theorem 3.19 instrumentation).
#pragma once

#include <vector>

#include "analysis/costs.hpp"
#include "analysis/optimal.hpp"
#include "graph/metrics.hpp"
#include "proto/queuing.hpp"

namespace arrowdq {

struct CompetitiveReport {
  // Measured arrow cost (Definition 3.3), ticks.
  Time cost_arrow = 0;
  // Lemma 3.10 decomposition: sum of cT along arrow's order and the issue
  // time of the last request in arrow's order. In the synchronous model
  // cost_arrow == ct_sum - t_last exactly. (The journal text prints the
  // identity with a "+", but its own proof derives CT = t_piA(|R|) +
  // sum dT = t_piA(|R|) + cost_arrow, so the sign here follows the proof.)
  Time ct_sum = 0;
  Time t_last = 0;
  bool lemma310_exact = false;

  // Lower bounds on the optimal offline cost (ticks).
  OptBound opt;

  // ratio = cost_arrow / opt.value (0 when the bound is 0).
  double ratio = 0.0;
  // The Theorem 3.19 reference quantity s * log2(max(D, 2)).
  double s_log_d = 0.0;

  double stretch = 1.0;
  Weight tree_diameter = 0;
};

/// Analyze an arrow outcome against the offline optimum on (G, T).
/// `exact_limit` caps the Held-Karp exact computation.
CompetitiveReport analyze_competitive(const Graph& g, const Tree& t, const RequestSet& reqs,
                                      const QueuingOutcome& arrow_outcome,
                                      std::int32_t exact_limit = 14);

}  // namespace arrowdq
