#include "sim/simulator.hpp"

namespace arrowdq {

// Instantiate every queue variant here once; consumers link against these
// instead of re-instantiating the template per translation unit.
template class BasicSimulator<BucketedEventQueue>;
template class BasicSimulator<BinaryEventQueue>;
template class BasicSimulator<FourAryEventQueue>;
template class BasicSimulator<PairingEventQueue>;
template class BasicSimulator<BucketedEventQueue, 16>;  // CompactSimulator

}  // namespace arrowdq
