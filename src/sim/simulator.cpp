#include "sim/simulator.hpp"

#include <utility>

#include "support/assert.hpp"

namespace arrowdq {

void Simulator::at(Time t, Action fn) {
  ARROWDQ_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  heap_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::in(Time delay, Action fn) {
  ARROWDQ_ASSERT(delay >= 0);
  at(now_ + delay, std::move(fn));
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because we pop immediately and never observe the moved-from state.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  ARROWDQ_ASSERT(ev.t >= now_);
  now_ = ev.t;
  ++executed_;
  ev.fn();
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(Time t_end) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.top().t <= t_end) {
    step();
    ++n;
  }
  if (now_ < t_end) now_ = t_end;
  return n;
}

}  // namespace arrowdq
