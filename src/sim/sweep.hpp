// Parallel scenario sweep runner.
//
// The Figure 9/10/11 reproductions and the competitive-ratio tables all have
// the same shape: many *independent* simulations over (tree, latency model,
// config) points. A single simulation is inherently serial (one event loop),
// but the sweep across points is embarrassingly parallel — this module
// shards scenarios over a thread pool while keeping runs bit-identical to a
// serial sweep:
//
//  * Scenarios are value objects. A worker builds its own latency model
//    from the scenario's LatencySpec (per-scenario RNG seed), so no mutable
//    state is shared between threads; graphs/trees are copied into the
//    scenario up front.
//  * Results are written into a pre-sized slot per scenario index, so the
//    output order is the scenario order no matter how threads interleave,
//    and the result values themselves are independent of the thread count
//    (the dispatch_test suite pins this, including thread count 1).
//
// Two scenario layers ride on the same pool:
//  * run(SweepScenario) — the original arrow-closed-loop sweep, kept for
//    source compatibility;
//  * run_experiments (exp/experiment.hpp) — the general form: any mix of
//    protocols/topologies/workloads as declarative Experiment values,
//    mapped through the same deterministic map() primitive.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arrow/closed_loop.hpp"
#include "graph/tree.hpp"
#include "sim/latency.hpp"
#include "support/types.hpp"

namespace arrowdq {

/// Declarative latency-model description: a value object a worker thread can
/// turn into a private model instance (randomized kinds get their own
/// deterministic per-scenario stream from `seed`).
struct LatencySpec {
  enum class Kind : std::uint8_t { kSynchronous, kScaled, kUniformAsync, kTruncatedExp };
  Kind kind = Kind::kSynchronous;
  double param = 1.0;          // fraction / min_fraction / mean_fraction
  std::uint64_t seed = 0;      // RNG seed for the randomized kinds

  std::unique_ptr<LatencyModel> make() const;
  const char* name() const;

  static LatencySpec synchronous() { return {Kind::kSynchronous, 1.0, 0}; }
  static LatencySpec scaled(double fraction) { return {Kind::kScaled, fraction, 0}; }
  static LatencySpec uniform_async(std::uint64_t seed, double min_fraction = 0.05) {
    return {Kind::kUniformAsync, min_fraction, seed};
  }
  static LatencySpec truncated_exp(std::uint64_t seed, double mean_fraction = 0.3) {
    return {Kind::kTruncatedExp, mean_fraction, seed};
  }
};

/// One independent arrow-closed-loop simulation point (the original,
/// single-protocol scenario type; see exp/experiment.hpp for the general
/// cross-protocol Experiment).
struct SweepScenario {
  std::string label;
  Tree tree;
  LatencySpec latency;
  ClosedLoopConfig config;
};

/// Result slot for one scenario, in scenario order.
struct SweepResult {
  std::string label;
  ClosedLoopResult result;
  double seconds = 0;  // wall time of this scenario on its worker
};

class SweepRunner {
 public:
  /// threads == 0 → std::thread::hardware_concurrency() (at least 1).
  explicit SweepRunner(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Run every scenario (each through the statically dispatched closed-loop
  /// driver) across the pool; results in scenario order.
  std::vector<SweepResult> run(const std::vector<SweepScenario>& scenarios) const;

  /// Generic deterministic parallel map: out[i] = fn(i) for i in [0, n).
  /// fn must be safe to call concurrently for different i and R must be
  /// default-constructible. Workers claim indices from an atomic counter,
  /// so scheduling is dynamic but the output order is fixed.
  template <typename R, typename Fn>
  std::vector<R> map(std::size_t n, Fn&& fn) const {
    std::vector<R> out(n);
    for_indices(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// The parallel-for primitive behind map/run.
  void for_indices(std::size_t n, const std::function<void(std::size_t)>& body) const;

 private:
  unsigned threads_;
};

}  // namespace arrowdq
