// Deterministic fault injection for the message network.
//
// A FaultSpec is a value-type description of a seeded fault schedule:
// message loss (drop + timeout-retransmit), duplication, reorder-flavoured
// latency jitter, link latency spikes, and node crash + recovery. It is a
// first-class scenario axis — `Experiment::fault`, the `--fault` sweep axis
// and the JSON emission all carry it — and it composes with every latency
// model because faults apply *after* the latency draw.
//
// Injection point: the FaultFilter rides the Network's statically dispatched
// send path as a fourth template parameter. `NoFaults` (the default) has
// `kActive == false`, so the fault branch is compiled out entirely and the
// fault-free hot path is bit-identical to the pre-fault core — all golden
// hashes pin this.
//
// Semantics, chosen so every protocol still terminates:
//  * loss: a dropped copy is re-sent after a timeout of `retry_units`; the
//    observable effect is extra delay (drops are capped, so a message is
//    never lost forever — the paper's protocols assume reliable delivery).
//  * duplicate: the transport delivers one copy (the protocols are not
//    idempotent) but the duplicate occupies the link, pushing the FIFO
//    horizon of its edge — duplication shows up as congestion.
//  * jitter / spike: extra or multiplied latency. Per-edge FIFO clamping
//    still holds, so link order is preserved (the paper's FIFO model).
//  * crash: at deterministic schedule points a victim node goes down for a
//    window; deliveries that would land inside the window are deferred to
//    its end. The arrow drivers additionally corrupt the victim's pointer
//    state and run a SelfStabilizer recovery wave (see arrow/arrow.hpp).
//  * partition: a seeded cut isolates a subtree for a window. Messages that
//    would cross the cut are queued, not dropped: the send is deferred to
//    the heal instant, and the per-edge FIFO horizon moves with it, so the
//    backlog drains in send order on heal. The arrow drivers run an epoch +
//    SelfStabilizer reconciliation per side at onset and merge the pointer
//    state with a global wave at heal; baselines degrade gracefully through
//    the filter's victim-isolation fallback (the cut root is unreachable
//    for the window).
//  * churn: nodes leave and rejoin mid-run at a seeded rate. A departed
//    node's deliveries defer until it rejoins; the arrow drivers splice its
//    tree edges with a deterministic re-selection (pointer reset toward the
//    anchor) hooked through the same recovery wave crashes use.
//
// Determinism: the filter derives every draw from `FaultSpec::seed` via the
// project Rng, and each simulation run owns its filter, so results are
// bit-identical across sweep thread counts and across runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/random.hpp"
#include "support/types.hpp"

namespace arrowdq {

enum class FaultKind : std::uint8_t {
  kNone,
  kLoss,
  kDuplicate,
  kJitter,
  kSpike,
  kCrash,
  kPartition,  // seeded cut windows; cross-cut messages queue until heal
  kChurn,      // seeded leave/rejoin events with deterministic re-selection
  kChaos,      // every fault kind at once, moderate rates
};

/// One node-down window of a crash schedule: `victim` is unavailable during
/// [at, up_at) — deliveries landing inside are deferred to up_at.
struct CrashEventSpec {
  Time at = 0;
  Time up_at = 0;
  NodeId victim = kNoNode;
};

struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  double loss_prob = 0.0;          // per-message drop probability
  double dup_prob = 0.0;           // per-message duplication probability
  double jitter_prob = 0.0;        // per-message extra-latency probability
  double jitter_max_units = 1.0;   // extra latency uniform in (0, max] units
  double spike_prob = 0.0;         // per-message latency-spike probability
  double spike_factor = 4.0;       // spike multiplies the sampled latency
  double retry_units = 1.0;        // retransmit timeout per dropped copy
  std::int32_t crash_count = 0;    // number of crash windows in the schedule
  double crash_downtime_units = 4.0;
  double crash_period_units = 16.0;  // window k opens at (k+1) * period
  std::int32_t partition_count = 0;  // number of seeded cut windows
  double partition_downtime_units = 8.0;
  double partition_period_units = 24.0;  // window k opens at (k+1) * period
  double churn_rate = 0.0;               // expected leave/rejoin events per 100 units
  std::uint8_t churn_leaf_only = 0;      // churn:RATE:leaf — victims restricted to leaves
  std::uint64_t seed = 0;

  bool active() const { return kind != FaultKind::kNone; }
  bool message_faults() const {
    return loss_prob > 0.0 || dup_prob > 0.0 || jitter_prob > 0.0 || spike_prob > 0.0;
  }
  bool has_crash() const { return crash_count > 0; }
  bool has_partition() const { return partition_count > 0; }
  bool has_churn() const { return churn_rate > 0.0; }
  /// Any schedule that rewrites pointer/topology state mid-run (crash
  /// recovery, partition reconciliation, churn re-selection). These need a
  /// materialized tree and cannot run sharded — the waves are global
  /// pointer rewrites.
  bool has_topology_faults() const { return has_crash() || has_partition() || has_churn(); }
  const char* name() const;

  /// Copy with every topology-fault schedule removed (message faults kept):
  /// crashes, partitions, and churn all fork or re-center the queue order.
  /// The token baseline replays an analytic arrow outcome, which cannot
  /// express such a forked order, so its driver strips all three.
  FaultSpec without_crash() const;

  static FaultSpec none() { return FaultSpec{}; }
  static FaultSpec loss(double p);
  static FaultSpec duplicate(double p);
  static FaultSpec jitter(double p, double max_units = 1.0);
  static FaultSpec spike(double p, double factor = 4.0);
  static FaultSpec crash(std::int32_t count, double downtime_units = 4.0,
                         double period_units = 16.0);
  static FaultSpec partition(std::int32_t count, double downtime_units = 8.0,
                             double period_units = 24.0);
  static FaultSpec churn(double rate, bool leaf_only = false);
  static FaultSpec chaos();
};

/// Parse a CLI fault token:
///   none | loss:P | dup:P | jitter:P[:MAXU] | spike:P[:F]
///        | crash:N[:DOWNU[:PERIODU]] | partition:CUTS:DOWNU[:PERIODU]
///        | churn:RATE[:KIND] | chaos
/// Probabilities must lie in (0, 1]; counts and unit spans must be positive;
/// KIND is `any` or `leaf`. Numeric fields use a strict decimal grammar
/// (digits with an optional fraction): the whole token must be consumed, so
/// residue like `0x4`, `1e2`, or a sign prefix is rejected rather than
/// silently reinterpreted by strtod.
std::optional<FaultSpec> parse_fault_spec(const std::string& token);

/// The deterministic crash schedule implied by a spec on an n-node system:
/// window k opens at (k+1) * crash_period_units, lasts crash_downtime_units,
/// and hits a seed-derived victim. Sorted by open time.
std::vector<CrashEventSpec> crash_schedule(const FaultSpec& spec, NodeId node_count);

/// The deterministic partition schedule: window k opens at
/// (k+1) * partition_period_units, lasts partition_downtime_units, and the
/// seed-derived victim is the cut root (the arrow drivers remap it off the
/// anchor and install the real subtree membership; the filter's fallback
/// isolates the victim node alone).
std::vector<CrashEventSpec> partition_schedule(const FaultSpec& spec, NodeId node_count);

/// The deterministic churn schedule: events every 100 / churn_rate units
/// (capped at kMaxChurnEvents windows), each taking a seed-derived victim
/// down for one inter-event gap before it rejoins.
std::vector<CrashEventSpec> churn_schedule(const FaultSpec& spec, NodeId node_count);

inline constexpr std::size_t kMaxChurnEvents = 64;

struct FaultStats {
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  /// Messages whose delivery was queued at an active cut; every one of them
  /// drains in FIFO order at the heal instant, so this is the heal backlog.
  std::uint64_t partition_deferred = 0;
};

/// Zero-cost placeholder: `kActive == false` compiles the fault branch out
/// of the Network send path entirely.
struct NoFaults {
  static constexpr bool kActive = false;
};

/// Outcome of filtering one edge send: the adjusted latency plus whether a
/// duplicate copy also occupies the link.
struct EdgeFaultResult {
  Time latency = 0;
  bool duplicated = false;
};

/// The value-type fault filter the Network templates over when a spec is
/// active. Owns its Rng (seeded from the spec) and the crash schedule; one
/// filter per simulation run keeps every draw deterministic.
class FaultFilter {
 public:
  static constexpr bool kActive = true;

  /// Sentinel for "no partition window active" (active_partition).
  static constexpr std::size_t kNoWindow = static_cast<std::size_t>(-1);

  FaultFilter() = default;  // inert: no faults, empty schedule
  FaultFilter(const FaultSpec& spec, NodeId node_count)
      : spec_(spec),
        rng_(mix64(spec.seed ^ 0xfa017f11757ULL)),
        crashes_(crash_schedule(spec, node_count)),
        partitions_(partition_schedule(spec, node_count)),
        churns_(churn_schedule(spec, node_count)),
        retry_ticks_(std::max<Time>(1, units_to_ticks_rounded(spec.retry_units))),
        jitter_max_ticks_(std::max<Time>(1, units_to_ticks_rounded(spec.jitter_max_units))) {}

  /// Filter a send over a graph edge whose sampled latency is `lat`.
  /// Draw order (loss, dup, jitter, spike) is fixed for determinism.
  EdgeFaultResult on_edge(NodeId /*from*/, NodeId /*to*/, Time lat) {
    EdgeFaultResult r{lat, false};
    if (spec_.loss_prob > 0.0) {
      int drops = 0;
      while (drops < kMaxDrops && rng_.next_bool(spec_.loss_prob)) ++drops;
      if (drops > 0) {
        stats_.messages_dropped += static_cast<std::uint64_t>(drops);
        r.latency += drops * (retry_ticks_ + lat);
      }
    }
    if (spec_.dup_prob > 0.0 && rng_.next_bool(spec_.dup_prob)) {
      ++stats_.messages_duplicated;
      r.duplicated = true;
    }
    if (spec_.jitter_prob > 0.0 && rng_.next_bool(spec_.jitter_prob))
      r.latency += 1 + static_cast<Time>(
                           rng_.next_below(static_cast<std::uint64_t>(jitter_max_ticks_)));
    if (spec_.spike_prob > 0.0 && rng_.next_bool(spec_.spike_prob))
      r.latency = scale_latency(r.latency, spec_.spike_factor);
    return r;
  }

  /// Filter a direct (send_with_latency) message. Same fault semantics; a
  /// duplicate is counted but carries no FIFO congestion (direct messages
  /// are not clamped against a link).
  Time on_direct(NodeId from, NodeId to, Time lat) { return on_edge(from, to, lat).latency; }

  /// Node-down deferral: a delivery landing inside a crash or churn window
  /// of `to` waits for the window to close. Windows are sorted, so cascading
  /// across back-to-back windows resolves in one pass.
  Time defer(NodeId to, Time deliver) const {
    for (const CrashEventSpec& c : crashes_)
      if (c.victim == to && deliver >= c.at && deliver < c.up_at) deliver = c.up_at;
    for (const CrashEventSpec& c : churns_)
      if (c.victim == to && deliver >= c.at && deliver < c.up_at) deliver = c.up_at;
    return deliver;
  }

  /// Full edge deferral: node-down windows of `to`, plus partition windows
  /// the edge {from, to} crosses. A cut-crossing delivery is queued (not
  /// dropped) until the heal instant — the caller's FIFO horizon moves with
  /// it, so the backlog drains in send order. With installed sides the cut
  /// is the real tree bipartition; without (baselines have no tree) the
  /// fallback isolates the window's victim node alone.
  Time defer_edge(NodeId from, NodeId to, Time deliver) {
    deliver = defer(to, deliver);
    for (std::size_t k = 0; k < partitions_.size(); ++k) {
      const CrashEventSpec& p = partitions_[k];
      if (deliver < p.at || deliver >= p.up_at) continue;
      bool crosses;
      if (k < cut_side_.size() && !cut_side_[k].empty())
        crosses = cut_side_[k][static_cast<std::size_t>(from)] !=
                  cut_side_[k][static_cast<std::size_t>(to)];
      else
        crosses = p.victim != kNoNode && (from == p.victim || to == p.victim);
      if (crosses) {
        deliver = p.up_at;
        ++stats_.partition_deferred;
      }
    }
    return deliver;
  }

  /// Install the real cut for partition window k: `cut` becomes the window's
  /// victim (the cut root) and `in_cut` marks the isolated subtree (1 =
  /// inside). The arrow drivers call this once per run; an empty mask keeps
  /// the victim-isolation fallback.
  void set_partition_cut(std::size_t k, NodeId cut, std::vector<std::uint8_t> in_cut) {
    if (k >= partitions_.size()) return;
    partitions_[k].victim = cut;
    if (cut_side_.size() < partitions_.size()) cut_side_.resize(partitions_.size());
    cut_side_[k] = std::move(in_cut);
  }

  /// Re-point churn window k at a remapped victim (drivers keep the leaf or
  /// off-anchor restriction consistent with the splice they apply).
  void set_churn_victim(std::size_t k, NodeId victim) {
    if (k < churns_.size()) churns_[k].victim = victim;
  }

  /// Index of the partition window containing time t, or kNoWindow.
  std::size_t active_partition(Time t) const {
    for (std::size_t k = 0; k < partitions_.size(); ++k)
      if (t >= partitions_[k].at && t < partitions_[k].up_at) return k;
    return kNoWindow;
  }

  /// The installed cut membership of window k (empty if never installed).
  const std::vector<std::uint8_t>& partition_side(std::size_t k) const {
    static const std::vector<std::uint8_t> kEmpty;
    return k < cut_side_.size() ? cut_side_[k] : kEmpty;
  }

  const FaultStats& stats() const { return stats_; }
  const std::vector<CrashEventSpec>& crashes() const { return crashes_; }
  const std::vector<CrashEventSpec>& partitions() const { return partitions_; }
  const std::vector<CrashEventSpec>& churns() const { return churns_; }
  const FaultSpec& spec() const { return spec_; }

 private:
  // A message is retransmitted until it gets through: the cap only bounds
  // the simulated delay (P(8 straight drops) is negligible at sane rates).
  static constexpr int kMaxDrops = 8;

  static Time units_to_ticks_rounded(double units);
  static Time scale_latency(Time lat, double factor);

  FaultSpec spec_{};
  Rng rng_{0};
  std::vector<CrashEventSpec> crashes_;
  std::vector<CrashEventSpec> partitions_;
  std::vector<CrashEventSpec> churns_;
  std::vector<std::vector<std::uint8_t>> cut_side_;  // per window, 1 = cut subtree
  Time retry_ticks_ = kTicksPerUnit;
  Time jitter_max_ticks_ = kTicksPerUnit;
  FaultStats stats_;
};

/// One-time static dispatch, mirroring with_static_latency: invoke `fn`
/// with NoFaults when the spec is inactive (fault-free builds pay nothing)
/// or with a live FaultFilter otherwise.
template <typename Fn>
decltype(auto) with_fault_filter(const FaultSpec& spec, NodeId node_count, Fn&& fn) {
  if (!spec.active()) return fn(NoFaults{});
  return fn(FaultFilter(spec, node_count));
}

}  // namespace arrowdq
