// Deterministic fault injection for the message network.
//
// A FaultSpec is a value-type description of a seeded fault schedule:
// message loss (drop + timeout-retransmit), duplication, reorder-flavoured
// latency jitter, link latency spikes, and node crash + recovery. It is a
// first-class scenario axis — `Experiment::fault`, the `--fault` sweep axis
// and the JSON emission all carry it — and it composes with every latency
// model because faults apply *after* the latency draw.
//
// Injection point: the FaultFilter rides the Network's statically dispatched
// send path as a fourth template parameter. `NoFaults` (the default) has
// `kActive == false`, so the fault branch is compiled out entirely and the
// fault-free hot path is bit-identical to the pre-fault core — all golden
// hashes pin this.
//
// Semantics, chosen so every protocol still terminates:
//  * loss: a dropped copy is re-sent after a timeout of `retry_units`; the
//    observable effect is extra delay (drops are capped, so a message is
//    never lost forever — the paper's protocols assume reliable delivery).
//  * duplicate: the transport delivers one copy (the protocols are not
//    idempotent) but the duplicate occupies the link, pushing the FIFO
//    horizon of its edge — duplication shows up as congestion.
//  * jitter / spike: extra or multiplied latency. Per-edge FIFO clamping
//    still holds, so link order is preserved (the paper's FIFO model).
//  * crash: at deterministic schedule points a victim node goes down for a
//    window; deliveries that would land inside the window are deferred to
//    its end. The arrow drivers additionally corrupt the victim's pointer
//    state and run a SelfStabilizer recovery wave (see arrow/arrow.hpp).
//
// Determinism: the filter derives every draw from `FaultSpec::seed` via the
// project Rng, and each simulation run owns its filter, so results are
// bit-identical across sweep thread counts and across runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/random.hpp"
#include "support/types.hpp"

namespace arrowdq {

enum class FaultKind : std::uint8_t {
  kNone,
  kLoss,
  kDuplicate,
  kJitter,
  kSpike,
  kCrash,
  kChaos,  // every fault kind at once, moderate rates
};

/// One node-down window of a crash schedule: `victim` is unavailable during
/// [at, up_at) — deliveries landing inside are deferred to up_at.
struct CrashEventSpec {
  Time at = 0;
  Time up_at = 0;
  NodeId victim = kNoNode;
};

struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  double loss_prob = 0.0;          // per-message drop probability
  double dup_prob = 0.0;           // per-message duplication probability
  double jitter_prob = 0.0;        // per-message extra-latency probability
  double jitter_max_units = 1.0;   // extra latency uniform in (0, max] units
  double spike_prob = 0.0;         // per-message latency-spike probability
  double spike_factor = 4.0;       // spike multiplies the sampled latency
  double retry_units = 1.0;        // retransmit timeout per dropped copy
  std::int32_t crash_count = 0;    // number of crash windows in the schedule
  double crash_downtime_units = 4.0;
  double crash_period_units = 16.0;  // window k opens at (k+1) * period
  std::uint64_t seed = 0;

  bool active() const { return kind != FaultKind::kNone; }
  bool message_faults() const {
    return loss_prob > 0.0 || dup_prob > 0.0 || jitter_prob > 0.0 || spike_prob > 0.0;
  }
  bool has_crash() const { return crash_count > 0; }
  const char* name() const;

  /// Copy with the crash schedule removed (message faults kept). The token
  /// baseline replays an analytic arrow outcome, which cannot express a
  /// forked post-crash order, so its driver strips crashes.
  FaultSpec without_crash() const;

  static FaultSpec none() { return FaultSpec{}; }
  static FaultSpec loss(double p);
  static FaultSpec duplicate(double p);
  static FaultSpec jitter(double p, double max_units = 1.0);
  static FaultSpec spike(double p, double factor = 4.0);
  static FaultSpec crash(std::int32_t count, double downtime_units = 4.0,
                         double period_units = 16.0);
  static FaultSpec chaos();
};

/// Parse a CLI fault token:
///   none | loss:P | dup:P | jitter:P[:MAXU] | spike:P[:F]
///        | crash:N[:DOWNU[:PERIODU]] | chaos
/// Probabilities must lie in (0, 1]; counts and unit spans must be positive.
std::optional<FaultSpec> parse_fault_spec(const std::string& token);

/// The deterministic crash schedule implied by a spec on an n-node system:
/// window k opens at (k+1) * crash_period_units, lasts crash_downtime_units,
/// and hits a seed-derived victim. Sorted by open time.
std::vector<CrashEventSpec> crash_schedule(const FaultSpec& spec, NodeId node_count);

struct FaultStats {
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
};

/// Zero-cost placeholder: `kActive == false` compiles the fault branch out
/// of the Network send path entirely.
struct NoFaults {
  static constexpr bool kActive = false;
};

/// Outcome of filtering one edge send: the adjusted latency plus whether a
/// duplicate copy also occupies the link.
struct EdgeFaultResult {
  Time latency = 0;
  bool duplicated = false;
};

/// The value-type fault filter the Network templates over when a spec is
/// active. Owns its Rng (seeded from the spec) and the crash schedule; one
/// filter per simulation run keeps every draw deterministic.
class FaultFilter {
 public:
  static constexpr bool kActive = true;

  FaultFilter() = default;  // inert: no faults, empty schedule
  FaultFilter(const FaultSpec& spec, NodeId node_count)
      : spec_(spec),
        rng_(mix64(spec.seed ^ 0xfa017f11757ULL)),
        crashes_(crash_schedule(spec, node_count)),
        retry_ticks_(std::max<Time>(1, units_to_ticks_rounded(spec.retry_units))),
        jitter_max_ticks_(std::max<Time>(1, units_to_ticks_rounded(spec.jitter_max_units))) {}

  /// Filter a send over a graph edge whose sampled latency is `lat`.
  /// Draw order (loss, dup, jitter, spike) is fixed for determinism.
  EdgeFaultResult on_edge(NodeId /*from*/, NodeId /*to*/, Time lat) {
    EdgeFaultResult r{lat, false};
    if (spec_.loss_prob > 0.0) {
      int drops = 0;
      while (drops < kMaxDrops && rng_.next_bool(spec_.loss_prob)) ++drops;
      if (drops > 0) {
        stats_.messages_dropped += static_cast<std::uint64_t>(drops);
        r.latency += drops * (retry_ticks_ + lat);
      }
    }
    if (spec_.dup_prob > 0.0 && rng_.next_bool(spec_.dup_prob)) {
      ++stats_.messages_duplicated;
      r.duplicated = true;
    }
    if (spec_.jitter_prob > 0.0 && rng_.next_bool(spec_.jitter_prob))
      r.latency += 1 + static_cast<Time>(
                           rng_.next_below(static_cast<std::uint64_t>(jitter_max_ticks_)));
    if (spec_.spike_prob > 0.0 && rng_.next_bool(spec_.spike_prob))
      r.latency = scale_latency(r.latency, spec_.spike_factor);
    return r;
  }

  /// Filter a direct (send_with_latency) message. Same fault semantics; a
  /// duplicate is counted but carries no FIFO congestion (direct messages
  /// are not clamped against a link).
  Time on_direct(NodeId from, NodeId to, Time lat) { return on_edge(from, to, lat).latency; }

  /// Crash deferral: a delivery landing inside a down window of `to` waits
  /// for the window to close. Windows are sorted, so cascading across
  /// back-to-back windows resolves in one pass.
  Time defer(NodeId to, Time deliver) const {
    for (const CrashEventSpec& c : crashes_)
      if (c.victim == to && deliver >= c.at && deliver < c.up_at) deliver = c.up_at;
    return deliver;
  }

  const FaultStats& stats() const { return stats_; }
  const std::vector<CrashEventSpec>& crashes() const { return crashes_; }
  const FaultSpec& spec() const { return spec_; }

 private:
  // A message is retransmitted until it gets through: the cap only bounds
  // the simulated delay (P(8 straight drops) is negligible at sane rates).
  static constexpr int kMaxDrops = 8;

  static Time units_to_ticks_rounded(double units);
  static Time scale_latency(Time lat, double factor);

  FaultSpec spec_{};
  Rng rng_{0};
  std::vector<CrashEventSpec> crashes_;
  Time retry_ticks_ = kTicksPerUnit;
  Time jitter_max_ticks_ = kTicksPerUnit;
  FaultStats stats_;
};

/// One-time static dispatch, mirroring with_static_latency: invoke `fn`
/// with NoFaults when the spec is inactive (fault-free builds pay nothing)
/// or with a live FaultFilter otherwise.
template <typename Fn>
decltype(auto) with_fault_filter(const FaultSpec& spec, NodeId node_count, Fn&& fn) {
  if (!spec.active()) return fn(NoFaults{});
  return fn(FaultFilter(spec, node_count));
}

}  // namespace arrowdq
