// Event queues for the simulator: 16-byte (time, seq|slot) handles ordered
// by (time, seq), with the event payload living in the simulator's arena.
//
// Four interchangeable implementations (BasicSimulator is templated on
// the queue):
//  * BucketedEventQueue — calendar-style: a binary min-heap over *distinct*
//    pending times plus a FIFO bucket per time. Discrete-event protocol
//    workloads are massively tie-heavy (service times and unit latencies
//    quantize every timestamp; the Figure 10 macro averages dozens of
//    events per instant), so per-event cost collapses to a hash probe and
//    a vector append, and the log-cost heap operation is paid once per
//    *instant* instead of once per event. Requires monotonically increasing
//    sequence numbers across pushes (BasicSimulator guarantees this); the
//    bucket append order then realizes the exact (time, seq) order.
//  * BinaryEventQueue — implicit binary min-heap via std::push_heap /
//    std::pop_heap, whose sift-to-a-leaf-then-bubble-up pop does ~1
//    comparison per level instead of testing "does the displaced element
//    fit here" at every level.
//  * FourAryEventQueue — implicit 4-ary min-heap; half the levels of the
//    binary heap, but 3 child comparisons per level.
//  * PairingEventQueue — adapter over PairingHeap for O(1) amortized
//    insert under bursty schedules.
//
// bench_throughput measures all of them on a schedule-then-drain burst, on
// steady-state churn, and end-to-end on the Figure 10 macro. The bucketed
// queue wins the tie-heavy protocol workloads outright and stays within
// noise of the binary heap on the all-distinct-times microbenchmark, so it
// is the default Simulator; the binary heap remains the strongest general
// comparison-heap alternate.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "sim/pairing_heap.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"
#include "support/types.hpp"

namespace arrowdq {

/// A scheduled-event handle. The schedule sequence number and the payload's
/// arena slot share one word: slot in the low kSlotBits, seq above. Since
/// sequence numbers are unique, ordering by the packed word equals ordering
/// by seq whenever times tie — so a 16-byte entry still realizes the exact
/// deterministic (time, seq) order.
struct EventEntry {
  /// Capacity split of the packed word: at most 2^28-1 (~268M) events may
  /// be *concurrently pending* (the implicit scale tier keeps ~1.25n
  /// pending in closed loop, so this covers the n = 2^24 fig10_scale cell
  /// with an order of magnitude to spare; exceeding it is a loud assert,
  /// not corruption) and at most 2^36 (~7x10^10) events may be scheduled
  /// over a simulator's lifetime.
  static constexpr unsigned kSlotBits = 28;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeq = std::uint64_t{1} << (64 - kSlotBits);

  Time t;
  std::uint64_t seq_slot;

  static EventEntry make(Time t, std::uint64_t seq, std::uint32_t slot) {
    return {t, (seq << kSlotBits) | slot};
  }
  std::uint32_t slot() const { return static_cast<std::uint32_t>(seq_slot & kSlotMask); }

  friend bool operator<(const EventEntry& a, const EventEntry& b) {
    return a.t != b.t ? a.t < b.t : a.seq_slot < b.seq_slot;
  }
};

class BinaryEventQueue {
 public:
  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  void reserve(std::size_t n) { v_.reserve(n); }
  void clear() { v_.clear(); }

  Time top_time() const {
    ARROWDQ_ASSERT(!v_.empty());
    return v_[0].t;
  }

  void push(EventEntry e) {
    v_.push_back(e);
    std::push_heap(v_.begin(), v_.end(), Later{});
  }

  EventEntry pop() {
    ARROWDQ_ASSERT(!v_.empty());
    std::pop_heap(v_.begin(), v_.end(), Later{});
    EventEntry e = v_.back();
    v_.pop_back();
    return e;
  }

  /// Batch drain: append every entry whose time equals top_time() to `out`
  /// in (time, seq) order. In an implicit min-heap the minimal-time entries
  /// form an *up-closed* subtree containing the root (any ancestor of a
  /// minimal entry is itself minimal), so instead of paying a full
  /// sift-from-the-root per entry we collect that subtree in one DFS, sort
  /// the run by sequence, and refill the holes deepest-first with one plain
  /// sift-down each. For the degenerate whole-heap run (the t=0 issue burst)
  /// every refill hits the trailing-hole fast path and the drain is one DFS
  /// plus one sort.
  void pop_run(std::vector<EventEntry>& out) {
    ARROWDQ_ASSERT(!v_.empty());
    const Time t = v_[0].t;
    const bool left = v_.size() > 1 && v_[1].t == t;
    const bool right = v_.size() > 2 && v_[2].t == t;
    if (!left && !right) {  // run of one: a normal pop
      out.push_back(pop());
      return;
    }
    const std::size_t base = out.size();
    // BFS over the subtree: parents are processed in increasing index
    // order, and children 2i+1, 2i+2 grow monotonically with i, so holes_
    // comes out sorted ascending without an explicit sort.
    holes_.clear();
    holes_.push_back(0);
    for (std::size_t j = 0; j < holes_.size(); ++j) {
      const std::uint32_t i = holes_[j];
      out.push_back(v_[i]);
      const std::size_t c = 2 * static_cast<std::size_t>(i) + 1;
      if (c < v_.size() && v_[c].t == t) holes_.push_back(static_cast<std::uint32_t>(c));
      if (c + 1 < v_.size() && v_[c + 1].t == t)
        holes_.push_back(static_cast<std::uint32_t>(c + 1));
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end());
    // Deepest-first refill: when hole h is filled, every deeper hole is
    // already valid, so sifting the moved leaf down from h restores the
    // heap there; the root (processed last) gets the one full sift-down.
    for (std::size_t j = holes_.size(); j-- > 0;) {
      const std::uint32_t h = holes_[j];
      const EventEntry x = v_.back();
      v_.pop_back();
      if (h >= v_.size()) continue;  // the hole was the last element itself
      sift_down(h, x);
    }
  }

 private:
  struct Later {
    bool operator()(const EventEntry& a, const EventEntry& b) const { return b < a; }
  };

  void sift_down(std::size_t i, EventEntry x) {
    const std::size_t n = v_.size();
    for (;;) {
      std::size_t c = 2 * i + 1;
      if (c >= n) break;
      if (c + 1 < n && v_[c + 1] < v_[c]) ++c;
      if (!(v_[c] < x)) break;
      v_[i] = v_[c];
      i = c;
    }
    v_[i] = x;
  }

  std::vector<EventEntry> v_;
  // BFS / hole scratch, kept across calls so steady-state drains allocate
  // nothing.
  std::vector<std::uint32_t> holes_;
};

/// Calendar-style tie-bucketing queue: a binary min-heap over the distinct
/// pending times, a FIFO bucket of entries per time, and an open-addressed
/// (tombstone-compacting) time→bucket map. See the header comment for why
/// this is the default. Precondition: seq|slot values are pushed in
/// increasing seq order (BasicSimulator's schedule counter guarantees it),
/// which makes bucket append order the exact (time, seq) order.
class BucketedEventQueue {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void reserve(std::size_t n) {
    // Buckets and heap entries exist per *distinct pending time*, typically
    // a small fraction of pending events — sizing them to n would allocate
    // tens of MB for large reserves that never get used.
    const std::size_t distinct = n / 8 + 16;
    heap_.reserve(distinct);
    buckets_.reserve(distinct);
    free_buckets_.reserve(distinct);
  }

  void clear() {
    heap_.clear();
    buckets_.clear();
    free_buckets_.clear();
    map_time_.clear();
    map_bucket_.clear();
    map_mask_ = 0;
    map_live_ = 0;
    map_dirty_ = 0;
    size_ = 0;
  }

  Time top_time() const {
    ARROWDQ_ASSERT(size_ != 0);
    return heap_[0].t;
  }

  void push(EventEntry e) {
    ++size_;
    // Grow / compact tombstones at 1/2 occupancy; live entries are the
    // distinct pending times, typically a small fraction of pending events.
    if (2 * (map_live_ + map_dirty_ + 1) > map_mask_ + 1) map_rehash();
    // One find-or-insert probe walk: existing bucket → append; otherwise
    // remember the first tombstone (or the trailing empty slot) for the
    // insert.
    std::uint64_t pos = mix64(static_cast<std::uint64_t>(e.t)) & map_mask_;
    std::uint64_t insert_pos = ~std::uint64_t{0};
    while (map_time_[pos] != kEmptyKey) {
      if (map_time_[pos] == e.t) {
        buckets_[map_bucket_[pos]].items.push_back(e);
        return;
      }
      if (map_time_[pos] == kTombstone && insert_pos == ~std::uint64_t{0}) insert_pos = pos;
      pos = (pos + 1) & map_mask_;
    }
    if (insert_pos == ~std::uint64_t{0}) {
      insert_pos = pos;
    } else {
      --map_dirty_;
    }
    const std::uint32_t b = acquire_bucket();
    Bucket& bucket = buckets_[b];
    bucket.time = e.t;
    bucket.cursor = 0;
    bucket.items.clear();
    bucket.items.push_back(e);
    map_time_[insert_pos] = e.t;
    map_bucket_[insert_pos] = b;
    ++map_live_;
    heap_push(TimeEntry{e.t, b});
  }

  EventEntry pop() {
    ARROWDQ_ASSERT(size_ != 0);
    Bucket& bucket = buckets_[heap_[0].bucket];
    EventEntry e = bucket.items[bucket.cursor++];
    --size_;
    if (bucket.cursor == bucket.items.size()) retire_top();
    return e;
  }

  /// Batch drain: the minimal-time bucket already holds its run in (time,
  /// seq) order, so the whole instant moves out with one heap pop — no
  /// per-event sift, no sorting. When `out` is empty the bucket's storage
  /// is swapped instead of copied, so batch draining through
  /// BasicSimulator recycles the same two vectors forever.
  void pop_run(std::vector<EventEntry>& out) {
    ARROWDQ_ASSERT(size_ != 0);
    Bucket& bucket = buckets_[heap_[0].bucket];
    const std::size_t count = bucket.items.size() - bucket.cursor;
    if (out.empty() && bucket.cursor == 0) {
      out.swap(bucket.items);
    } else {
      out.insert(out.end(),
                 bucket.items.begin() + static_cast<std::ptrdiff_t>(bucket.cursor),
                 bucket.items.end());
    }
    size_ -= count;
    retire_top();
  }

 private:
  static constexpr std::uint32_t kNoBucket = ~std::uint32_t{0};
  /// Open-addressing sentinels; simulated times are >= 0, so negative
  /// sentinels can never collide with a real key.
  static constexpr Time kEmptyKey = std::numeric_limits<Time>::min();
  static constexpr Time kTombstone = std::numeric_limits<Time>::min() + 1;

  struct Bucket {
    std::vector<EventEntry> items;
    std::uint32_t cursor = 0;
    Time time = 0;
  };
  struct TimeEntry {
    Time t;
    std::uint32_t bucket;
  };

  /// Pop the (exhausted) minimal time: remove the heap root, recycle its
  /// bucket, and tombstone its map slot.
  void retire_top() {
    const TimeEntry top = heap_[0];
    map_erase(top.t);
    free_buckets_.push_back(top.bucket);
    const TimeEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) heap_sift_down(0, last);
  }

  std::uint32_t acquire_bucket() {
    if (!free_buckets_.empty()) {
      const std::uint32_t b = free_buckets_.back();
      free_buckets_.pop_back();
      return b;
    }
    buckets_.emplace_back();
    return static_cast<std::uint32_t>(buckets_.size() - 1);
  }

  // --- distinct-time binary heap (keyed by time alone; times are unique) --

  void heap_push(TimeEntry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 1;
      if (!(e.t < heap_[parent].t)) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void heap_sift_down(std::size_t i, TimeEntry x) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t c = 2 * i + 1;
      if (c >= n) break;
      if (c + 1 < n && heap_[c + 1].t < heap_[c].t) ++c;
      if (!(heap_[c].t < x.t)) break;
      heap_[i] = heap_[c];
      i = c;
    }
    heap_[i] = x;
  }

  // --- open-addressed time→bucket map ------------------------------------

  void map_erase(Time t) {
    std::uint64_t pos = mix64(static_cast<std::uint64_t>(t)) & map_mask_;
    while (map_time_[pos] != t) {
      ARROWDQ_ASSERT(map_time_[pos] != kEmptyKey);
      pos = (pos + 1) & map_mask_;
    }
    map_time_[pos] = kTombstone;
    --map_live_;
    ++map_dirty_;
  }

  void map_rehash() {
    std::uint64_t cap = 16;
    while (cap < 4 * (map_live_ + 1)) cap <<= 1;
    std::vector<Time> old_time = std::move(map_time_);
    std::vector<std::uint32_t> old_bucket = std::move(map_bucket_);
    map_time_.assign(cap, kEmptyKey);
    map_bucket_.assign(cap, kNoBucket);
    map_mask_ = cap - 1;
    map_dirty_ = 0;
    for (std::size_t i = 0; i < old_time.size(); ++i) {
      const Time t = old_time[i];
      if (t == kEmptyKey || t == kTombstone) continue;
      std::uint64_t pos = mix64(static_cast<std::uint64_t>(t)) & map_mask_;
      while (map_time_[pos] != kEmptyKey) pos = (pos + 1) & map_mask_;
      map_time_[pos] = t;
      map_bucket_[pos] = old_bucket[i];
    }
  }

  std::vector<TimeEntry> heap_;
  std::vector<Bucket> buckets_;
  std::vector<std::uint32_t> free_buckets_;
  std::vector<Time> map_time_;
  std::vector<std::uint32_t> map_bucket_;
  std::uint64_t map_mask_ = 0;
  std::size_t map_live_ = 0;
  std::size_t map_dirty_ = 0;
  std::size_t size_ = 0;
};

class FourAryEventQueue {
 public:
  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  void reserve(std::size_t n) { v_.reserve(n); }
  void clear() { v_.clear(); }

  Time top_time() const {
    ARROWDQ_ASSERT(!v_.empty());
    return v_[0].t;
  }

  void push(EventEntry e) {
    std::size_t i = v_.size();
    v_.push_back(e);
    while (i > 0) {
      std::size_t parent = (i - 1) >> 2;
      if (!(e < v_[parent])) break;
      v_[i] = v_[parent];
      i = parent;
    }
    v_[i] = e;
  }

  EventEntry pop() {
    ARROWDQ_ASSERT(!v_.empty());
    EventEntry out = v_[0];
    EventEntry last = v_.back();
    v_.pop_back();
    if (!v_.empty()) {
      std::size_t i = 0;
      const std::size_t n = v_.size();
      for (;;) {
        std::size_t first_child = (i << 2) + 1;
        if (first_child >= n) break;
        std::size_t best = first_child;
        std::size_t end = first_child + 4 < n ? first_child + 4 : n;
        for (std::size_t c = first_child + 1; c < end; ++c)
          if (v_[c] < v_[best]) best = c;
        if (!(v_[best] < last)) break;
        v_[i] = v_[best];
        i = best;
      }
      v_[i] = last;
    }
    return out;
  }

  /// Batch drain; see BinaryEventQueue::pop_run. The 4-ary layout gets the
  /// generic pop loop — it is the bake-off alternate, not the default.
  void pop_run(std::vector<EventEntry>& out) {
    ARROWDQ_ASSERT(!v_.empty());
    const Time t = v_[0].t;
    do {
      out.push_back(pop());
    } while (!v_.empty() && v_[0].t == t);
  }

 private:
  std::vector<EventEntry> v_;
};

class PairingEventQueue {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  void reserve(std::size_t n) { heap_.reserve(n); }
  void clear() { heap_.clear(); }

  Time top_time() const { return heap_.top_key().t; }

  void push(EventEntry e) { heap_.push({e.t, e.seq_slot}, e.slot()); }

  EventEntry pop() {
    auto key = heap_.top_key();
    EventEntry e{key.t, key.seq};
    heap_.pop();
    return e;
  }

  /// Batch drain; see BinaryEventQueue::pop_run.
  void pop_run(std::vector<EventEntry>& out) {
    ARROWDQ_ASSERT(!heap_.empty());
    const Time t = heap_.top_key().t;
    do {
      out.push_back(pop());
    } while (!heap_.empty() && heap_.top_key().t == t);
  }

 private:
  PairingHeap<std::uint32_t> heap_;
};

}  // namespace arrowdq
