// Event queues for the simulator: 16-byte (time, seq|slot) handles ordered
// by (time, seq), with the event payload living in the simulator's arena.
//
// Three interchangeable implementations (BasicSimulator is templated on
// the queue):
//  * BinaryEventQueue — implicit binary min-heap via std::push_heap /
//    std::pop_heap, whose sift-to-a-leaf-then-bubble-up pop does ~1
//    comparison per level instead of testing "does the displaced element
//    fit here" at every level.
//  * FourAryEventQueue — implicit 4-ary min-heap; half the levels of the
//    binary heap, but 3 child comparisons per level.
//  * PairingEventQueue — adapter over PairingHeap for O(1) amortized
//    insert under bursty schedules.
//
// bench_throughput measures all three on a schedule-then-drain burst and
// on steady-state churn. With 16-byte entries the binary heap wins both
// (fewest comparisons; the deeper tree stays cache-resident), the 4-ary
// heap is close behind, and the pairing heap's pointer chasing loses badly
// — so BinaryEventQueue is the default Simulator.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/pairing_heap.hpp"
#include "support/assert.hpp"
#include "support/types.hpp"

namespace arrowdq {

/// A scheduled-event handle. The schedule sequence number and the payload's
/// arena slot share one word: slot in the low kSlotBits, seq above. Since
/// sequence numbers are unique, ordering by the packed word equals ordering
/// by seq whenever times tie — so a 16-byte entry still realizes the exact
/// deterministic (time, seq) order.
struct EventEntry {
  /// Capacity split of the packed word: at most 2^24-1 (~16.7M) events may
  /// be *concurrently pending* (a 1 GiB arena — far beyond any workload in
  /// this repo, whose closed loops keep O(n) pending; exceeding it is a
  /// loud assert, not corruption) and at most 2^40 (~10^12) events may be
  /// scheduled over a simulator's lifetime.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeq = std::uint64_t{1} << (64 - kSlotBits);

  Time t;
  std::uint64_t seq_slot;

  static EventEntry make(Time t, std::uint64_t seq, std::uint32_t slot) {
    return {t, (seq << kSlotBits) | slot};
  }
  std::uint32_t slot() const { return static_cast<std::uint32_t>(seq_slot & kSlotMask); }

  friend bool operator<(const EventEntry& a, const EventEntry& b) {
    return a.t != b.t ? a.t < b.t : a.seq_slot < b.seq_slot;
  }
};

class BinaryEventQueue {
 public:
  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  void reserve(std::size_t n) { v_.reserve(n); }
  void clear() { v_.clear(); }

  Time top_time() const {
    ARROWDQ_ASSERT(!v_.empty());
    return v_[0].t;
  }

  void push(EventEntry e) {
    v_.push_back(e);
    std::push_heap(v_.begin(), v_.end(), Later{});
  }

  EventEntry pop() {
    ARROWDQ_ASSERT(!v_.empty());
    std::pop_heap(v_.begin(), v_.end(), Later{});
    EventEntry e = v_.back();
    v_.pop_back();
    return e;
  }

 private:
  struct Later {
    bool operator()(const EventEntry& a, const EventEntry& b) const { return b < a; }
  };

  std::vector<EventEntry> v_;
};

class FourAryEventQueue {
 public:
  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  void reserve(std::size_t n) { v_.reserve(n); }
  void clear() { v_.clear(); }

  Time top_time() const {
    ARROWDQ_ASSERT(!v_.empty());
    return v_[0].t;
  }

  void push(EventEntry e) {
    std::size_t i = v_.size();
    v_.push_back(e);
    while (i > 0) {
      std::size_t parent = (i - 1) >> 2;
      if (!(e < v_[parent])) break;
      v_[i] = v_[parent];
      i = parent;
    }
    v_[i] = e;
  }

  EventEntry pop() {
    ARROWDQ_ASSERT(!v_.empty());
    EventEntry out = v_[0];
    EventEntry last = v_.back();
    v_.pop_back();
    if (!v_.empty()) {
      std::size_t i = 0;
      const std::size_t n = v_.size();
      for (;;) {
        std::size_t first_child = (i << 2) + 1;
        if (first_child >= n) break;
        std::size_t best = first_child;
        std::size_t end = first_child + 4 < n ? first_child + 4 : n;
        for (std::size_t c = first_child + 1; c < end; ++c)
          if (v_[c] < v_[best]) best = c;
        if (!(v_[best] < last)) break;
        v_[i] = v_[best];
        i = best;
      }
      v_[i] = last;
    }
    return out;
  }

 private:
  std::vector<EventEntry> v_;
};

class PairingEventQueue {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  void reserve(std::size_t n) { heap_.reserve(n); }
  void clear() { heap_.clear(); }

  Time top_time() const { return heap_.top_key().t; }

  void push(EventEntry e) { heap_.push({e.t, e.seq_slot}, e.slot()); }

  EventEntry pop() {
    auto key = heap_.top_key();
    EventEntry e{key.t, key.seq};
    heap_.pop();
    return e;
  }

 private:
  PairingHeap<std::uint32_t> heap_;
};

}  // namespace arrowdq
