#include "sim/latency.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace arrowdq {

namespace {
Time fraction_ticks(double fraction, Weight weight) {
  double ticks = fraction * static_cast<double>(units_to_ticks(weight));
  return std::max<Time>(1, static_cast<Time>(std::llround(ticks)));
}
}  // namespace

Time SynchronousLatency::sample(NodeId, NodeId, Weight weight) {
  return units_to_ticks(weight);
}

ScaledLatency::ScaledLatency(double fraction) : fraction_(fraction) {
  ARROWDQ_ASSERT(fraction > 0.0 && fraction <= 1.0);
}

Time ScaledLatency::sample(NodeId, NodeId, Weight weight) {
  return fraction_ticks(fraction_, weight);
}

UniformAsyncLatency::UniformAsyncLatency(std::uint64_t seed, double min_fraction)
    : rng_(seed), min_fraction_(min_fraction) {
  ARROWDQ_ASSERT(min_fraction > 0.0 && min_fraction <= 1.0);
}

Time UniformAsyncLatency::sample(NodeId, NodeId, Weight weight) {
  double f = rng_.next_double(min_fraction_, 1.0);
  return fraction_ticks(f, weight);
}

TruncatedExpLatency::TruncatedExpLatency(std::uint64_t seed, double mean_fraction)
    : rng_(seed), mean_fraction_(mean_fraction) {
  ARROWDQ_ASSERT(mean_fraction > 0.0 && mean_fraction <= 1.0);
}

Time TruncatedExpLatency::sample(NodeId, NodeId, Weight weight) {
  double f = std::min(1.0, rng_.next_exponential(1.0 / mean_fraction_));
  return fraction_ticks(f, weight);
}

std::unique_ptr<LatencyModel> make_synchronous() {
  return std::make_unique<SynchronousLatency>();
}
std::unique_ptr<LatencyModel> make_scaled(double fraction) {
  return std::make_unique<ScaledLatency>(fraction);
}
std::unique_ptr<LatencyModel> make_uniform_async(std::uint64_t seed, double min_fraction) {
  return std::make_unique<UniformAsyncLatency>(seed, min_fraction);
}
std::unique_ptr<LatencyModel> make_truncated_exp(std::uint64_t seed, double mean_fraction) {
  return std::make_unique<TruncatedExpLatency>(seed, mean_fraction);
}

}  // namespace arrowdq
