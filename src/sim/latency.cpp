#include "sim/latency.hpp"

#include "support/assert.hpp"

namespace arrowdq {

ScaledLatency::ScaledLatency(double fraction) : s_{fraction} {
  ARROWDQ_ASSERT_MSG(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
}

UniformAsyncLatency::UniformAsyncLatency(std::uint64_t seed, double min_fraction)
    : s_{Rng(seed), min_fraction} {
  ARROWDQ_ASSERT_MSG(min_fraction > 0.0 && min_fraction <= 1.0, "min_fraction must be in (0, 1]");
}

TruncatedExpLatency::TruncatedExpLatency(std::uint64_t seed, double mean_fraction)
    : s_{Rng(seed), mean_fraction} {
  ARROWDQ_ASSERT_MSG(mean_fraction > 0.0 && mean_fraction <= 1.0,
                     "mean_fraction must be in (0, 1]");
}

std::unique_ptr<LatencyModel> make_synchronous() {
  return std::make_unique<SynchronousLatency>();
}
std::unique_ptr<LatencyModel> make_scaled(double fraction) {
  return std::make_unique<ScaledLatency>(fraction);
}
std::unique_ptr<LatencyModel> make_uniform_async(std::uint64_t seed, double min_fraction) {
  return std::make_unique<UniformAsyncLatency>(seed, min_fraction);
}
std::unique_ptr<LatencyModel> make_truncated_exp(std::uint64_t seed, double mean_fraction) {
  return std::make_unique<TruncatedExpLatency>(seed, mean_fraction);
}

}  // namespace arrowdq
