// Point-to-point FIFO message network over a graph, driven by the simulator.
//
// Guarantees, matching the paper's model:
//  * FIFO links: messages on the same directed edge are delivered in send
//    order even under randomized latencies (later sends are clamped to not
//    overtake earlier ones).
//  * Atomic handlers: a node's handler for one message runs to completion at
//    a single simulated instant.
//  * Optional serial per-node service time: each node processes messages one
//    at a time, each occupying the node for `service_time` ticks. The
//    theoretical model of Section 3.1 has free local processing
//    (service_time = 0, the default); the Section 5 experiment reproduction
//    sets it > 0 to model a real CPU's serial message handling, which is
//    what makes the centralized protocol's home node a bottleneck.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/latency.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"
#include "support/types.hpp"

namespace arrowdq {

struct NetworkStats {
  std::uint64_t edge_messages = 0;    // messages sent over graph edges
  std::uint64_t direct_messages = 0;  // messages sent via send_with_latency
  Time total_edge_latency = 0;        // sum of sampled edge latencies (ticks)
};

template <typename M>
class Network {
 public:
  /// Handler invoked when a message is processed at its destination.
  using Handler = std::function<void(NodeId from, NodeId to, const M& msg)>;

  Network(const Graph& graph, Simulator& sim, LatencyModel& latency)
      : graph_(graph),
        sim_(sim),
        latency_(latency),
        busy_until_(static_cast<std::size_t>(graph.node_count()), 0) {}

  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Serial processing cost per message at every node, in ticks.
  void set_service_time(Time ticks) {
    ARROWDQ_ASSERT(ticks >= 0);
    service_time_ = ticks;
  }
  Time service_time() const { return service_time_; }

  const Graph& graph() const { return graph_; }
  Simulator& sim() { return sim_; }
  const NetworkStats& stats() const { return stats_; }

  /// Send over graph edge {from, to}; latency sampled from the model and
  /// clamped for FIFO.
  void send(NodeId from, NodeId to, M msg) {
    ARROWDQ_ASSERT_MSG(graph_.has_edge(from, to), "send over a non-edge");
    Weight w = graph_.edge_weight(from, to);
    Time lat = latency_.sample(from, to, w);
    ARROWDQ_ASSERT(lat >= 1);
    Time deliver = sim_.now() + lat;
    // FIFO clamp: never deliver before an earlier message on this edge.
    auto key = edge_key(from, to);
    auto [it, inserted] = fifo_.try_emplace(key, deliver);
    if (!inserted) {
      if (deliver < it->second) deliver = it->second;
      it->second = deliver;
    }
    ++stats_.edge_messages;
    stats_.total_edge_latency += lat;
    schedule_processing(from, to, deliver, std::move(msg));
  }

  /// Send with an explicit latency (ticks), e.g. along a shortest path of
  /// the underlying graph rather than a single edge. Not FIFO-clamped
  /// against edge traffic (it does not traverse a single link).
  void send_with_latency(NodeId from, NodeId to, Time latency, M msg) {
    ARROWDQ_ASSERT(latency >= 0);
    ++stats_.direct_messages;
    schedule_processing(from, to, sim_.now() + latency, std::move(msg));
  }

 private:
  static std::uint64_t edge_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint32_t>(to);
  }

  void schedule_processing(NodeId from, NodeId to, Time deliver, M msg) {
    if (service_time_ == 0) {
      sim_.at(deliver, [this, from, to, m = std::move(msg)]() {
        ARROWDQ_ASSERT_MSG(handler_, "no handler installed");
        handler_(from, to, m);
      });
      return;
    }
    // Serial node: arrival waits for the node to be free, then occupies it
    // for service_time_ ticks; the handler fires when processing finishes.
    sim_.at(deliver, [this, from, to, m = std::move(msg)]() mutable {
      auto& busy = busy_until_[static_cast<std::size_t>(to)];
      Time start = std::max(sim_.now(), busy);
      Time done = start + service_time_;
      busy = done;
      sim_.at(done, [this, from, to, m2 = std::move(m)]() {
        ARROWDQ_ASSERT_MSG(handler_, "no handler installed");
        handler_(from, to, m2);
      });
    });
  }

  const Graph& graph_;
  Simulator& sim_;
  LatencyModel& latency_;
  Handler handler_;
  Time service_time_ = 0;
  std::vector<Time> busy_until_;
  std::unordered_map<std::uint64_t, Time> fifo_;
  NetworkStats stats_;
};

}  // namespace arrowdq
