// Point-to-point FIFO message network over a graph, driven by the simulator.
//
// Guarantees, matching the paper's model:
//  * FIFO links: messages on the same directed edge are delivered in send
//    order even under randomized latencies (later sends are clamped to not
//    overtake earlier ones).
//  * Atomic handlers: a node's handler for one message runs to completion at
//    a single simulated instant.
//  * Optional serial per-node service time: each node processes messages one
//    at a time, each occupying the node for `service_time` ticks. The
//    theoretical model of Section 3.1 has free local processing
//    (service_time = 0, the default); the Section 5 experiment reproduction
//    sets it > 0 to model a real CPU's serial message handling, which is
//    what makes the centralized protocol's home node a bottleneck.
//
// Hot-path design: each in-flight message lives in one slot of a free-listed
// pool and is dispatched through the single stored handler — no per-send
// closure, no allocation after the pool warms up. The FIFO clamp is a flat
// array indexed by the graph's dense directed-edge id (Graph::find_edge,
// O(1)).
//
// Static dispatch: the network is templated on the latency sampler, the
// handler, and the fault filter. On the default path the protocol drivers
// instantiate `Network<M, ConcreteSampler, TypedHandlerStruct>`, so a send
// samples its latency with an inlinable direct call and a delivery invokes
// the protocol handler without an indirect std::function dispatch — the
// whole send → schedule → deliver → handle chain is visible to the
// optimizer as one loop. The defaults (`VirtualSampler`, `std::function`,
// `NoFaults`) keep every legacy `Network<M>(graph, sim, model)` call site
// source-compatible on the dynamically dispatched path; with `NoFaults` the
// fault branches are `if constexpr`-eliminated, so the fault-free hot path
// is unchanged down to the instruction level (the golden hashes pin this).
//
// The trailing `Index` and `Sim` parameters generalize the edge index and
// the event arena for the scale path: `Index` is anything with Graph's
// node_count / dir_edge_count / find_edge shape (graph/implicit.hpp's
// ImplicitTreeIndex computes edges on the fly for the structured families),
// and `Sim` selects the event-slot width (CompactSimulator's 32-byte slots
// for network-sized protocol events at millions of nodes). Both default to
// the materialized types, so every existing instantiation is untouched.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/fault.hpp"
#include "sim/latency.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"
#include "support/types.hpp"

namespace arrowdq {

struct NetworkStats {
  std::uint64_t edge_messages = 0;    // messages sent over graph edges
  std::uint64_t direct_messages = 0;  // messages sent via send_with_latency
  Time total_edge_latency = 0;        // sum of sampled edge latencies (ticks)
};

template <typename M, typename Latency = VirtualSampler,
          typename Handler = std::function<void(NodeId from, NodeId to, const M& msg)>,
          typename Faults = NoFaults, typename Index = Graph, typename Sim = Simulator>
class Network {
 public:
  // Guard rails on the fast path: messages are copied in and out of the
  // in-flight pool and must stay trivially copyable and within the default
  // simulator's inline-event budget, so a future field addition cannot
  // silently push deliveries onto a slow path. (Messages live in the
  // network's own pool, never in an event slot, so the compact simulator
  // does not tighten this bound.)
  static_assert(std::is_trivially_copyable_v<M>,
                "network message types must be trivially copyable");
  static_assert(sizeof(M) <= Simulator::kInlineStorage,
                "network message types must fit the 48-byte inline-event budget");

  Network(const Index& graph, Sim& sim, Latency latency, Faults faults = Faults{})
      : graph_(graph),
        sim_(sim),
        latency_(std::move(latency)),
        faults_(std::move(faults)),
        busy_until_(static_cast<std::size_t>(graph.node_count()), 0),
        fifo_ready_(graph.dir_edge_count(), 0) {}

  void set_handler(Handler h) {
    handler_ = std::move(h);
    handler_set_ = true;
  }

  /// Serial processing cost per message at every node, in ticks.
  void set_service_time(Time ticks) {
    ARROWDQ_ASSERT_MSG(ticks >= 0, "service time must be >= 0");
    service_time_ = ticks;
  }
  Time service_time() const { return service_time_; }

  /// Capacity hint: pre-size the message pool for ~n concurrently in-flight
  /// messages.
  void reserve_messages(std::size_t n) {
    pool_.reserve(n);
    free_.reserve(n);
  }

  const Index& graph() const { return graph_; }
  Sim& sim() { return sim_; }
  Latency& latency() { return latency_; }
  Faults& faults() { return faults_; }
  const Faults& faults() const { return faults_; }
  const NetworkStats& stats() const { return stats_; }

  /// Send over graph edge {from, to}; latency sampled from the model and
  /// clamped for FIFO.
  void send(NodeId from, NodeId to, M msg) {
    // Adding edges renumbers the dense directed ids, which would silently
    // alias fifo_ready_ entries — catch any mutation, not just growth past
    // the old size. Debug-only: a per-send size re-check is pure hot-loop
    // overhead in Release.
    ARROWDQ_ASSERT(graph_.dir_edge_count() == fifo_ready_.size());
    DirEdgeRef edge = graph_.find_edge(from, to);
    ARROWDQ_ASSERT_MSG(edge, "send over a non-edge");
    Time lat = latency_(from, to, edge.weight);
    ARROWDQ_ASSERT(lat >= 1);
    bool duplicated = false;
    if constexpr (Faults::kActive) {
      EdgeFaultResult f = faults_.on_edge(from, to, lat);
      lat = f.latency;
      duplicated = f.duplicated;
    }
    Time deliver = sim_.now() + lat;
    // FIFO clamp: never deliver before an earlier message on this edge.
    Time& ready = fifo_ready_[static_cast<std::size_t>(edge.id)];
    if (deliver < ready) deliver = ready;
    if constexpr (Faults::kActive) {
      // A delivery falling inside a crash/churn window of `to` or crossing
      // an active partition cut waits the window out; the FIFO horizon
      // moves with it so link order still holds and cut backlogs drain in
      // send order at the heal instant.
      deliver = faults_.defer_edge(from, to, deliver);
    }
    ready = deliver;
    if constexpr (Faults::kActive) {
      // The duplicate copy is suppressed at the transport (the protocols
      // are not idempotent) but still occupies the link behind the
      // original, so duplication surfaces as FIFO congestion.
      if (duplicated) ready += lat;
    }
    ++stats_.edge_messages;
    stats_.total_edge_latency += lat;
    schedule_processing(from, to, deliver, msg);
  }

  /// Send with an explicit latency (ticks), e.g. along a shortest path of
  /// the underlying graph rather than a single edge. Not FIFO-clamped
  /// against edge traffic (it does not traverse a single link).
  void send_with_latency(NodeId from, NodeId to, Time latency, M msg) {
    ARROWDQ_ASSERT(latency >= 0);
    Time deliver = sim_.now() + latency;
    if constexpr (Faults::kActive) {
      deliver = sim_.now() + faults_.on_direct(from, to, latency);
      deliver = faults_.defer_edge(from, to, deliver);
    }
    ++stats_.direct_messages;
    schedule_processing(from, to, deliver, msg);
  }

 private:
  struct Pending {
    M msg;
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    bool in_service = false;
  };

  /// The one event type the network schedules: 16 trivially-copyable bytes,
  /// always on the simulator's inline path.
  struct DeliveryEvent {
    Network* net;
    std::uint32_t slot;
    void operator()() const { net->deliver(slot); }
  };
  static_assert(Sim::template fits_inline_v<DeliveryEvent>,
                "DeliveryEvent must stay on the simulator's inline path");

  void schedule_processing(NodeId from, NodeId to, Time deliver, const M& msg) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      Pending& p = pool_[slot];
      p.msg = msg;
      p.from = from;
      p.to = to;
      p.in_service = false;
    } else {
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(Pending{msg, from, to, false});
    }
    sim_.at(deliver, DeliveryEvent{this, slot});
  }

  void deliver(std::uint32_t slot) {
    Pending& p = pool_[slot];
    if (service_time_ != 0 && !p.in_service) {
      // Arrival at a serial node: wait until the node frees up, occupy it
      // for one service interval, and re-arm this same record for the
      // completion instant.
      Time& busy = busy_until_[static_cast<std::size_t>(p.to)];
      Time start = std::max(sim_.now(), busy);
      Time done = start + service_time_;
      busy = done;
      p.in_service = true;
      sim_.at(done, DeliveryEvent{this, slot});
      return;
    }
    if constexpr (std::is_constructible_v<bool, const Handler&>) {
      ARROWDQ_ASSERT_MSG(static_cast<bool>(handler_), "no handler installed");
    } else {
      // Typed handlers carry no emptiness state of their own; the flag
      // keeps "forgot set_handler" loud under the Debug/ASan CI job.
      ARROWDQ_ASSERT(handler_set_);
    }
    // Copy the record out and recycle the slot first: the handler may send,
    // and that send can reuse this slot immediately.
    NodeId from = p.from;
    NodeId to = p.to;
    M msg = p.msg;
    free_.push_back(slot);
    handler_(from, to, msg);
  }

  const Index& graph_;
  Sim& sim_;
  Latency latency_;
  Faults faults_{};
  Handler handler_{};
  bool handler_set_ = false;
  Time service_time_ = 0;
  std::vector<Time> busy_until_;
  std::vector<Time> fifo_ready_;  // indexed by dense directed-edge id
  std::vector<Pending> pool_;
  std::vector<std::uint32_t> free_;
  NetworkStats stats_;
};

}  // namespace arrowdq
