// Deterministic discrete-event simulator over a pooled, typed event arena.
//
// Events are (time, sequence) ordered: ties at equal time execute in the
// order they were scheduled, so a run is a pure function of its inputs and
// seeds. This is what lets the test suite assert exact integer costs against
// the paper's lemmas.
//
// Hot-path design: `at(t, fn)` type-erases `fn` into a fixed-size slot of a
// free-listed arena — no heap allocation when the callable is trivially
// copyable and fits kInlineStorage bytes, which covers every protocol event
// in this codebase (oversized or non-trivial callables transparently fall
// back to one heap allocation). The priority queue orders only 16-byte
// (time, seq|slot) handles, so sift operations never touch the payloads.
// Each event's invoke wrapper copies the callable out of the arena and
// frees the slot *before* running it, which keeps nested scheduling safe
// against arena growth and lets the freed slot be reused immediately.
//
// Same-tick batch draining: step() pulls the entire run of entries sharing
// the earliest timestamp out of the queue in one pass (Queue::pop_run) and
// executes them from a flat buffer, so bursty instants — the n simultaneous
// issue() events of a closed loop, multicast fan-outs — pay one drain
// instead of log-n heap work per event. Events scheduled *during* a batch
// at the same instant carry higher sequence numbers than everything in the
// buffer, so running them in the next refill preserves the exact (time,
// seq) order of the unbatched core; the golden determinism suite pins this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "support/assert.hpp"
#include "support/types.hpp"

namespace arrowdq {

/// `InlineBytes` sets the arena's inline-callable budget and thereby the
/// slot size (16-byte invoke/destroy header + storage): the default 48
/// yields 64-byte slots (one cache line); 16 yields a 32-byte "compact"
/// slot that doubles arena cache density for 16-byte events such as the
/// network's DeliveryEvent (bench_throughput measures both).
template <typename Queue, std::size_t InlineBytes = 48>
class BasicSimulator {
 public:
  /// Compatibility alias; any callable (not just std::function) schedules.
  using Action = std::function<void()>;

  /// Callables at most this large (and trivially copyable/destructible)
  /// schedule without touching the heap.
  static constexpr std::size_t kInlineStorage = InlineBytes;
  // The storage doubles as a boxed-callable pointer and as the intrusive
  // free-list link, so it can never shrink below either.
  static_assert(InlineBytes >= sizeof(void*) && InlineBytes >= sizeof(std::uint32_t),
                "inline storage must hold a pointer (boxed path) and a free-list index");

  /// True when F schedules on the zero-allocation inline path. Protocol
  /// event types static_assert this so a future field addition cannot
  /// silently fall onto the heap-boxed path.
  template <typename F>
  static constexpr bool fits_inline_v =
      sizeof(F) <= kInlineStorage && alignof(F) <= alignof(std::max_align_t) &&
      std::is_trivially_copyable_v<F> && std::is_trivially_destructible_v<F>;

  BasicSimulator() = default;
  BasicSimulator(const BasicSimulator&) = delete;
  BasicSimulator& operator=(const BasicSimulator&) = delete;
  BasicSimulator(BasicSimulator&& other) noexcept
      : queue_(std::move(other.queue_)),
        slots_(std::move(other.slots_)),
        batch_(std::move(other.batch_)),
        batch_pos_(other.batch_pos_),
        free_head_(other.free_head_),
        now_(other.now_),
        next_seq_(other.next_seq_),
        current_seq_slot_(other.current_seq_slot_),
        executed_(other.executed_) {
    other.reset_moved_from();
  }
  BasicSimulator& operator=(BasicSimulator&& other) noexcept {
    if (this != &other) {
      discard_pending();
      queue_ = std::move(other.queue_);
      slots_ = std::move(other.slots_);
      batch_ = std::move(other.batch_);
      batch_pos_ = other.batch_pos_;
      free_head_ = other.free_head_;
      now_ = other.now_;
      next_seq_ = other.next_seq_;
      current_seq_slot_ = other.current_seq_slot_;
      executed_ = other.executed_;
      other.reset_moved_from();
    }
    return *this;
  }
  ~BasicSimulator() { discard_pending(); }

  Time now() const { return now_; }

  /// Capacity hint: pre-size the arena and queue for ~n concurrently
  /// pending events so the hot path never reallocates.
  void reserve(std::size_t n_events) {
    slots_.reserve(n_events);
    queue_.reserve(n_events);
  }

  /// Schedule `fn` at absolute time t >= now().
  template <typename F>
  void at(Time t, F&& fn) {
    ARROWDQ_ASSERT_MSG(t >= now_, "cannot schedule into the past");
    ARROWDQ_ASSERT_MSG(next_seq_ < EventEntry::kMaxSeq, "event sequence space exhausted");
    using Fn = std::decay_t<F>;
    std::uint32_t slot;
    if constexpr (fits_inline_v<Fn>) {
      slot = acquire_slot();
      Slot& s = slots_[slot];
      ::new (static_cast<void*>(s.storage)) Fn(std::forward<F>(fn));
      // The wrapper knows sizeof(Fn): it copies exactly that much to the
      // stack, recycles the slot, then runs — so a nested at() can both
      // grow the arena and reuse this very slot safely.
      s.invoke = [](BasicSimulator* self, std::uint32_t sl) {
        Fn local = *std::launder(reinterpret_cast<Fn*>(self->slots_[sl].storage));
        self->release_slot(sl);
        local();
      };
      s.destroy = nullptr;
    } else {
      // Box first, acquire after: a throwing copy must not strand a slot.
      auto boxed = std::make_unique<Fn>(std::forward<F>(fn));
      slot = acquire_slot();
      Slot& s = slots_[slot];
      ::new (static_cast<void*>(s.storage)) (Fn*)(boxed.release());
      s.invoke = [](BasicSimulator* self, std::uint32_t sl) {
        std::unique_ptr<Fn> f(*std::launder(reinterpret_cast<Fn**>(self->slots_[sl].storage)));
        self->release_slot(sl);
        (*f)();
      };
      s.destroy = [](void* p) { delete *std::launder(static_cast<Fn**>(p)); };
    }
    queue_.push(EventEntry::make(t, next_seq_++, slot));
  }

  /// Schedule `fn` at now() + delay, delay >= 0.
  template <typename F>
  void in(Time delay, F&& fn) {
    ARROWDQ_ASSERT(delay >= 0);
    at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule `fn` at time t with an explicitly chosen sequence number,
  /// bypassing the internal schedule counter. The sharded engine uses this
  /// to reproduce the serial core's global (time, seq) order across shard
  /// queues: barrier merges assign each event the rank the serial run would
  /// have given it. Caller contract (required by BucketedEventQueue): for
  /// any single time bucket, successive pushes must carry increasing seqs.
  template <typename F>
  void at_seq(Time t, std::uint64_t seq, F&& fn) {
    ARROWDQ_ASSERT_MSG(t >= now_, "cannot schedule into the past");
    ARROWDQ_ASSERT_MSG(seq < EventEntry::kMaxSeq, "event sequence out of range");
    using Fn = std::decay_t<F>;
    std::uint32_t slot;
    if constexpr (fits_inline_v<Fn>) {
      slot = acquire_slot();
      Slot& s = slots_[slot];
      ::new (static_cast<void*>(s.storage)) Fn(std::forward<F>(fn));
      s.invoke = [](BasicSimulator* self, std::uint32_t sl) {
        Fn local = *std::launder(reinterpret_cast<Fn*>(self->slots_[sl].storage));
        self->release_slot(sl);
        local();
      };
      s.destroy = nullptr;
    } else {
      auto boxed = std::make_unique<Fn>(std::forward<F>(fn));
      slot = acquire_slot();
      Slot& s = slots_[slot];
      ::new (static_cast<void*>(s.storage)) (Fn*)(boxed.release());
      s.invoke = [](BasicSimulator* self, std::uint32_t sl) {
        std::unique_ptr<Fn> f(*std::launder(reinterpret_cast<Fn**>(self->slots_[sl].storage)));
        self->release_slot(sl);
        (*f)();
      };
      s.destroy = [](void* p) { delete *std::launder(static_cast<Fn**>(p)); };
    }
    queue_.push(EventEntry::make(t, seq, slot));
  }

  /// Execute the single earliest event. Returns false if none pending.
  /// Refills the same-tick batch buffer from the queue when it runs dry.
  bool step() {
    if (batch_pos_ == batch_.size()) {
      batch_.clear();
      batch_pos_ = 0;
      if (queue_.empty()) return false;
      queue_.pop_run(batch_);
    }
    EventEntry e = batch_[batch_pos_++];
    ARROWDQ_ASSERT(e.t >= now_);
    now_ = e.t;
    current_seq_slot_ = e.seq_slot;
    ++executed_;
    std::uint32_t slot = e.slot();
    slots_[slot].invoke(this, slot);
    return true;
  }

  /// Run until the event queue drains; returns events executed.
  std::uint64_t run() {
    std::uint64_t n = 0;
    while (step()) ++n;
    return n;
  }

  /// Run while the earliest event time is <= t_end; returns events executed.
  /// Afterwards now() == t_end if the queue drained earlier than t_end.
  std::uint64_t run_until(Time t_end) {
    std::uint64_t n = 0;
    while (!idle() && next_time() <= t_end) {
      step();
      ++n;
    }
    if (now_ < t_end) now_ = t_end;
    return n;
  }

  bool idle() const { return batch_pos_ == batch_.size() && queue_.empty(); }
  std::uint64_t events_executed() const { return executed_; }
  std::size_t events_pending() const {
    return queue_.size() + (batch_.size() - batch_pos_);
  }

  /// Sequence number of the event currently (or most recently) executing.
  /// The sharded engine reads this inside handlers to key causal parents.
  std::uint64_t current_seq() const { return current_seq_slot_ >> EventEntry::kSlotBits; }

  /// Earliest pending event time; requires !idle(). Public for the sharded
  /// engine's safe-window computation (min over shard queues).
  Time next_event_time() const {
    ARROWDQ_ASSERT(!idle());
    return next_time();
  }

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  struct Slot {
    void (*invoke)(BasicSimulator*, std::uint32_t) = nullptr;
    /// Non-null only for heap-boxed callables; frees without invoking.
    void (*destroy)(void*) = nullptr;
    // Live: the type-erased callable. Free: the first 4 bytes hold the next
    // free slot's index (intrusive free list).
    alignas(std::max_align_t) unsigned char storage[kInlineStorage];
  };
  static_assert(std::is_trivially_copyable_v<Slot>);

  /// Earliest pending event time; undefined when idle().
  Time next_time() const {
    return batch_pos_ < batch_.size() ? batch_[batch_pos_].t : queue_.top_time();
  }

  std::uint32_t acquire_slot() {
    std::uint32_t slot = free_head_;
    if (slot != kNoSlot) {
      std::memcpy(&free_head_, slots_[slot].storage, sizeof(free_head_));
      return slot;
    }
    ARROWDQ_ASSERT_MSG(slots_.size() < EventEntry::kSlotMask,
                       "too many concurrently pending events");
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void release_slot(std::uint32_t slot) {
    std::memcpy(slots_[slot].storage, &free_head_, sizeof(free_head_));
    free_head_ = slot;
  }

  /// A moved-from simulator must stay usable: the free list (which would
  /// point into the old arena) must be emptied, and so must the queue —
  /// PairingEventQueue's node-pool move leaves stale root/size scalars
  /// behind that clear() resets.
  void reset_moved_from() {
    queue_.clear();
    batch_.clear();
    batch_pos_ = 0;
    free_head_ = kNoSlot;
    now_ = 0;
    next_seq_ = 0;
    current_seq_slot_ = 0;
    executed_ = 0;
  }

  /// Frees heap-boxed callables of never-executed events (destruction or
  /// move-assignment over a simulator abandoned mid-run), including any
  /// still waiting in the drained same-tick batch.
  void discard_pending() {
    for (; batch_pos_ < batch_.size(); ++batch_pos_) {
      Slot& s = slots_[batch_[batch_pos_].slot()];
      if (s.destroy) s.destroy(s.storage);
    }
    while (!queue_.empty()) {
      EventEntry e = queue_.pop();
      Slot& s = slots_[e.slot()];
      if (s.destroy) s.destroy(s.storage);
    }
  }

  Queue queue_;
  std::vector<Slot> slots_;
  /// Current same-tick run, drained from the queue in one pop_run; entries
  /// at batch_pos_.. are pending, earlier ones already executed.
  std::vector<EventEntry> batch_;
  std::size_t batch_pos_ = 0;
  std::uint32_t free_head_ = kNoSlot;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t current_seq_slot_ = 0;
  std::uint64_t executed_ = 0;
};

/// The default simulator. Protocol workloads are tie-heavy (service times
/// and unit latencies quantize timestamps), so the calendar-style bucketed
/// queue — O(1) per event, one heap operation per *instant* — beats every
/// comparison heap end-to-end; the binary heap over 16-byte handles remains
/// the strongest general-purpose alternate (see event_queue.hpp and
/// bench_throughput).
using Simulator = BasicSimulator<BucketedEventQueue>;

/// 32-byte-slot variant (16-byte inline budget): double the arena cache
/// density for drivers whose events are all pointer+index sized, at the
/// cost of boxing anything larger. Measured against the default by
/// bench_throughput's event_core_compact section; the 64-byte slot stays
/// the default because every protocol driver also schedules 24-40-byte
/// issue events that must not fall onto the heap path.
using CompactSimulator = BasicSimulator<BucketedEventQueue, 16>;

extern template class BasicSimulator<BucketedEventQueue>;
extern template class BasicSimulator<BinaryEventQueue>;
extern template class BasicSimulator<FourAryEventQueue>;
extern template class BasicSimulator<PairingEventQueue>;
extern template class BasicSimulator<BucketedEventQueue, 16>;

}  // namespace arrowdq
