// Deterministic discrete-event simulator.
//
// Events are (time, sequence) ordered: ties at equal time execute in the
// order they were scheduled, so a run is a pure function of its inputs and
// seeds. This is what lets the test suite assert exact integer costs against
// the paper's lemmas.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "support/types.hpp"

namespace arrowdq {

class Simulator {
 public:
  using Action = std::function<void()>;

  Time now() const { return now_; }

  /// Schedule `fn` at absolute time t >= now().
  void at(Time t, Action fn);

  /// Schedule `fn` at now() + delay, delay >= 0.
  void in(Time delay, Action fn);

  /// Execute the single earliest event. Returns false if none pending.
  bool step();

  /// Run until the event queue drains; returns events executed.
  std::uint64_t run();

  /// Run while the earliest event time is <= t_end; returns events executed.
  /// Afterwards now() == t_end if the queue drained earlier than t_end.
  std::uint64_t run_until(Time t_end);

  bool idle() const { return heap_.empty(); }
  std::uint64_t events_executed() const { return executed_; }
  std::size_t events_pending() const { return heap_.size(); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace arrowdq
