#include "sim/sweep.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "support/assert.hpp"

namespace arrowdq {

std::unique_ptr<LatencyModel> LatencySpec::make() const {
  switch (kind) {
    case Kind::kSynchronous:
      return make_synchronous();
    case Kind::kScaled:
      return make_scaled(param);
    case Kind::kUniformAsync:
      return make_uniform_async(seed, param);
    case Kind::kTruncatedExp:
      return make_truncated_exp(seed, param);
  }
  ARROWDQ_ASSERT_MSG(false, "unknown latency kind");
  return nullptr;
}

const char* LatencySpec::name() const {
  switch (kind) {
    case Kind::kSynchronous:
      return "synchronous";
    case Kind::kScaled:
      return "scaled";
    case Kind::kUniformAsync:
      return "uniform-async";
    case Kind::kTruncatedExp:
      return "trunc-exp";
  }
  return "?";
}

SweepRunner::SweepRunner(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
}

void SweepRunner::for_indices(std::size_t n, const std::function<void(std::size_t)>& body) const {
  if (n == 0) return;
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(threads_, n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Dynamic self-scheduling: scenario runtimes vary by orders of magnitude
  // (n=16 sync vs n=1024 async), so workers claim the next index as they
  // finish instead of using a static partition.
  std::atomic<std::size_t> next{0};
  // A throw inside a worker (e.g. bad_alloc on an oversized scenario) must
  // not std::terminate the process: capture the first exception, wind the
  // pool down, join everyone, then rethrow on the calling thread.
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        next.store(n, std::memory_order_relaxed);  // stop claiming work
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<SweepResult> SweepRunner::run(const std::vector<SweepScenario>& scenarios) const {
  std::vector<SweepResult> results(scenarios.size());
  for_indices(scenarios.size(), [&](std::size_t i) {
    const SweepScenario& sc = scenarios[i];
    auto model = sc.latency.make();
    const auto t0 = std::chrono::steady_clock::now();
    ClosedLoopResult res = run_arrow_closed_loop(sc.tree, *model, sc.config);
    const auto t1 = std::chrono::steady_clock::now();
    results[i] = SweepResult{sc.label, res,
                             std::chrono::duration<double>(t1 - t0).count()};
  });
  return results;
}

}  // namespace arrowdq
