#include "sim/fault.hpp"

#include <cmath>

#include "support/parse.hpp"

namespace arrowdq {

const char* FaultSpec::name() const {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kLoss: return "loss";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kJitter: return "jitter";
    case FaultKind::kSpike: return "spike";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kChurn: return "churn";
    case FaultKind::kChaos: return "chaos";
  }
  return "unknown";
}

FaultSpec FaultSpec::without_crash() const {
  // Full-struct copy first, then zero the topology-fault schedules: a new
  // FaultSpec field is kept by default and must be *deliberately* stripped
  // here (tests/fault_test.cpp pins every field's fate).
  FaultSpec s = *this;
  s.crash_count = 0;
  s.partition_count = 0;
  s.churn_rate = 0.0;
  s.churn_leaf_only = 0;
  if (!s.message_faults()) s.kind = FaultKind::kNone;
  return s;
}

FaultSpec FaultSpec::loss(double p) {
  FaultSpec s;
  s.kind = FaultKind::kLoss;
  s.loss_prob = p;
  return s;
}

FaultSpec FaultSpec::duplicate(double p) {
  FaultSpec s;
  s.kind = FaultKind::kDuplicate;
  s.dup_prob = p;
  return s;
}

FaultSpec FaultSpec::jitter(double p, double max_units) {
  FaultSpec s;
  s.kind = FaultKind::kJitter;
  s.jitter_prob = p;
  s.jitter_max_units = max_units;
  return s;
}

FaultSpec FaultSpec::spike(double p, double factor) {
  FaultSpec s;
  s.kind = FaultKind::kSpike;
  s.spike_prob = p;
  s.spike_factor = factor;
  return s;
}

FaultSpec FaultSpec::crash(std::int32_t count, double downtime_units, double period_units) {
  FaultSpec s;
  s.kind = FaultKind::kCrash;
  s.crash_count = count;
  s.crash_downtime_units = downtime_units;
  s.crash_period_units = period_units;
  return s;
}

FaultSpec FaultSpec::partition(std::int32_t count, double downtime_units, double period_units) {
  FaultSpec s;
  s.kind = FaultKind::kPartition;
  s.partition_count = count;
  s.partition_downtime_units = downtime_units;
  s.partition_period_units = period_units;
  return s;
}

FaultSpec FaultSpec::churn(double rate, bool leaf_only) {
  FaultSpec s;
  s.kind = FaultKind::kChurn;
  s.churn_rate = rate;
  s.churn_leaf_only = leaf_only ? 1 : 0;
  return s;
}

FaultSpec FaultSpec::chaos() {
  FaultSpec s;
  s.kind = FaultKind::kChaos;
  s.loss_prob = 0.05;
  s.dup_prob = 0.05;
  s.jitter_prob = 0.10;
  s.jitter_max_units = 1.0;
  s.spike_prob = 0.02;
  s.spike_factor = 4.0;
  s.crash_count = 1;
  s.partition_count = 1;
  s.churn_rate = 2.0;
  return s;
}

namespace {

std::vector<std::string> split_colon(const std::string& token) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (true) {
    std::size_t next = token.find(':', pos);
    if (next == std::string::npos) {
      parts.push_back(token.substr(pos));
      return parts;
    }
    parts.push_back(token.substr(pos, next - pos));
    pos = next + 1;
  }
}

// Fault-token numeric fields use a strict decimal grammar: one or more
// digits, optionally followed by '.' and one or more digits. This rejects
// everything strtod/strtoll would otherwise sneak through — hex floats
// ("0x1"), exponents ("1e0"), signs ("+2"), and leading-dot forms (".5") —
// so a token is either fully consumed or rejected with no residue.
bool strict_decimal(const std::string& s, bool allow_fraction) {
  std::size_t i = 0;
  if (i >= s.size() || s[i] < '0' || s[i] > '9') return false;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  if (i < s.size() && s[i] == '.' && allow_fraction) {
    ++i;
    if (i >= s.size() || s[i] < '0' || s[i] > '9') return false;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  }
  return i == s.size();
}

std::optional<double> parse_field_f64(const std::string& s) {
  if (!strict_decimal(s, /*allow_fraction=*/true)) return std::nullopt;
  return parse_positive_f64(s);
}

std::optional<std::int64_t> parse_field_i64(const std::string& s) {
  if (!strict_decimal(s, /*allow_fraction=*/false)) return std::nullopt;
  return parse_positive_i64(s);
}

std::optional<double> parse_prob(const std::string& s) {
  auto p = parse_field_f64(s);
  if (!p || *p > 1.0) return std::nullopt;
  return p;
}

}  // namespace

std::optional<FaultSpec> parse_fault_spec(const std::string& token) {
  std::vector<std::string> parts = split_colon(token);
  const std::string& head = parts.front();
  const std::size_t extra = parts.size() - 1;

  if (head == "none") {
    if (extra != 0) return std::nullopt;
    return FaultSpec::none();
  }
  if (head == "chaos") {
    if (extra != 0) return std::nullopt;
    return FaultSpec::chaos();
  }
  if (head == "loss" || head == "dup") {
    if (extra != 1) return std::nullopt;
    auto p = parse_prob(parts[1]);
    if (!p) return std::nullopt;
    return head == "loss" ? FaultSpec::loss(*p) : FaultSpec::duplicate(*p);
  }
  if (head == "jitter") {
    if (extra < 1 || extra > 2) return std::nullopt;
    auto p = parse_prob(parts[1]);
    if (!p) return std::nullopt;
    double max_units = 1.0;
    if (extra == 2) {
      auto m = parse_field_f64(parts[2]);
      if (!m) return std::nullopt;
      max_units = *m;
    }
    return FaultSpec::jitter(*p, max_units);
  }
  if (head == "spike") {
    if (extra < 1 || extra > 2) return std::nullopt;
    auto p = parse_prob(parts[1]);
    if (!p) return std::nullopt;
    double factor = 4.0;
    if (extra == 2) {
      auto f = parse_field_f64(parts[2]);
      if (!f || *f < 1.0) return std::nullopt;
      factor = *f;
    }
    return FaultSpec::spike(*p, factor);
  }
  if (head == "crash") {
    if (extra < 1 || extra > 3) return std::nullopt;
    auto n = parse_field_i64(parts[1]);
    if (!n || *n > 1024) return std::nullopt;
    double down = 4.0, period = 16.0;
    if (extra >= 2) {
      auto d = parse_field_f64(parts[2]);
      if (!d) return std::nullopt;
      down = *d;
    }
    if (extra == 3) {
      auto pd = parse_field_f64(parts[3]);
      if (!pd) return std::nullopt;
      period = *pd;
    }
    return FaultSpec::crash(static_cast<std::int32_t>(*n), down, period);
  }
  if (head == "partition") {
    if (extra < 2 || extra > 3) return std::nullopt;
    auto n = parse_field_i64(parts[1]);
    if (!n || *n > static_cast<std::int64_t>(kMaxChurnEvents)) return std::nullopt;
    auto down = parse_field_f64(parts[2]);
    if (!down) return std::nullopt;
    double period = 24.0;
    if (extra == 3) {
      auto pd = parse_field_f64(parts[3]);
      if (!pd) return std::nullopt;
      period = *pd;
    }
    return FaultSpec::partition(static_cast<std::int32_t>(*n), *down, period);
  }
  if (head == "churn") {
    if (extra < 1 || extra > 2) return std::nullopt;
    auto rate = parse_field_f64(parts[1]);
    if (!rate || *rate > 100.0) return std::nullopt;
    bool leaf_only = false;
    if (extra == 2) {
      if (parts[2] == "leaf") {
        leaf_only = true;
      } else if (parts[2] != "any") {
        return std::nullopt;
      }
    }
    return FaultSpec::churn(*rate, leaf_only);
  }
  return std::nullopt;
}

std::vector<CrashEventSpec> crash_schedule(const FaultSpec& spec, NodeId node_count) {
  std::vector<CrashEventSpec> out;
  if (spec.crash_count <= 0 || node_count <= 0) return out;
  const Time period = std::max<Time>(
      1, static_cast<Time>(std::llround(spec.crash_period_units *
                                        static_cast<double>(kTicksPerUnit))));
  const Time down = std::max<Time>(
      1, static_cast<Time>(std::llround(spec.crash_downtime_units *
                                        static_cast<double>(kTicksPerUnit))));
  out.reserve(static_cast<std::size_t>(spec.crash_count));
  for (std::int32_t k = 0; k < spec.crash_count; ++k) {
    CrashEventSpec c;
    c.at = static_cast<Time>(k + 1) * period;
    c.up_at = c.at + down;
    c.victim = static_cast<NodeId>(
        mix64(spec.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(k + 1))) %
        static_cast<std::uint64_t>(node_count));
    out.push_back(c);
  }
  return out;
}

std::vector<CrashEventSpec> partition_schedule(const FaultSpec& spec, NodeId node_count) {
  std::vector<CrashEventSpec> out;
  if (spec.partition_count <= 0 || node_count <= 0) return out;
  const Time period = std::max<Time>(
      1, static_cast<Time>(std::llround(spec.partition_period_units *
                                        static_cast<double>(kTicksPerUnit))));
  const Time down = std::max<Time>(
      1, static_cast<Time>(std::llround(spec.partition_downtime_units *
                                        static_cast<double>(kTicksPerUnit))));
  out.reserve(static_cast<std::size_t>(spec.partition_count));
  for (std::int32_t k = 0; k < spec.partition_count; ++k) {
    CrashEventSpec c;
    c.at = static_cast<Time>(k + 1) * period;
    c.up_at = c.at + down;
    // victim names the cut node: the tree edge (victim, parent(victim)) is
    // severed, isolating victim's subtree. Drivers remap this draw away from
    // the anchor (the root has no parent edge) via remap_partition_cut().
    c.victim = static_cast<NodeId>(
        mix64(spec.seed ^ (0xc2b2ae3d27d4eb4fULL * static_cast<std::uint64_t>(k + 1))) %
        static_cast<std::uint64_t>(node_count));
    out.push_back(c);
  }
  // A downtime longer than the period would make windows overlap, and the
  // heal→next-onset event chain would have to schedule into the past. Clamp
  // each window to end no later than the next begins: a new cut implies the
  // previous one healed.
  for (std::size_t k = 0; k + 1 < out.size(); ++k)
    out[k].up_at = std::min(out[k].up_at, out[k + 1].at);
  return out;
}

std::vector<CrashEventSpec> churn_schedule(const FaultSpec& spec, NodeId node_count) {
  std::vector<CrashEventSpec> out;
  if (spec.churn_rate <= 0.0 || node_count <= 0) return out;
  // churn_rate is expected leave/rejoin events per 100 time units, so
  // successive events are 100/rate units apart. The schedule is capped at
  // kMaxChurnEvents; runs shorter than the last event simply see fewer.
  const double period_units = 100.0 / spec.churn_rate;
  const Time period = std::max<Time>(
      1, static_cast<Time>(std::llround(period_units * static_cast<double>(kTicksPerUnit))));
  const Time down = std::max<Time>(
      1, static_cast<Time>(std::llround(4.0 * static_cast<double>(kTicksPerUnit))));
  out.reserve(kMaxChurnEvents);
  for (std::size_t k = 0; k < kMaxChurnEvents; ++k) {
    CrashEventSpec c;
    c.at = static_cast<Time>(k + 1) * period;
    c.up_at = c.at + down;
    c.victim = static_cast<NodeId>(
        mix64(spec.seed ^ (0x9e3779b185ebca87ULL * static_cast<std::uint64_t>(k + 1))) %
        static_cast<std::uint64_t>(node_count));
    out.push_back(c);
  }
  return out;
}

Time FaultFilter::units_to_ticks_rounded(double units) {
  return static_cast<Time>(std::llround(units * static_cast<double>(kTicksPerUnit)));
}

Time FaultFilter::scale_latency(Time lat, double factor) {
  double scaled = static_cast<double>(lat) * factor;
  return std::max<Time>(1, static_cast<Time>(std::llround(scaled)));
}

}  // namespace arrowdq
