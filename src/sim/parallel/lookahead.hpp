// Conservative lookahead derivation for the sharded engine.
//
// The safe-window width L is a Chandy–Misra–Bryant-style lower bound on the
// latency of *any* send: if every message scheduled at time t delivers at or
// after t + L, then the interval [W0, W0 + L) can execute on all shards
// concurrently — no send made inside the window can deliver inside it, so
// no shard can affect another (or itself, through the network) before the
// next barrier.
//
// Each latency sampler yields a closed-form floor as a fraction of the
// minimum edge weight; latency-shrinking faults (a spike with factor < 1)
// scale it down conservatively. The floors bottom out at 1 tick — every
// sampler returns >= 1 and every distance oracle maps distinct nodes to
// >= 1 unit — so the degenerate L = 1 "lock-step" fallback is always sound:
// windows shrink to one tick each and the engine degrades to serial
// execution with barrier overhead, but never to wrong answers. The engine
// additionally asserts every finalized delivery lands at or beyond the
// window end, so an optimistic floor is a loud failure, not a silent
// divergence.
#pragma once

#include <algorithm>
#include <cmath>

#include "graph/graph.hpp"
#include "sim/fault.hpp"
#include "sim/latency.hpp"
#include "support/types.hpp"

namespace arrowdq {

/// Per-sampler latency floors given the minimum edge weight in units.
/// Deterministic samplers give their exact value; randomized ones their
/// distribution's infimum (UniformSampler draws fractions >= min_fraction;
/// TruncExpSampler can draw arbitrarily close to zero, floored at 1 tick by
/// fraction_ticks).
inline Time sampler_floor(const SyncSampler&, Weight w_min) {
  return units_to_ticks(w_min);
}
inline Time sampler_floor(const ScaledSampler& s, Weight w_min) {
  return detail::fraction_ticks(s.fraction, w_min);
}
inline Time sampler_floor(const UniformSampler& s, Weight w_min) {
  return detail::fraction_ticks(s.min_fraction, w_min);
}
inline Time sampler_floor(const TruncExpSampler&, Weight) { return 1; }
inline Time sampler_floor(const VirtualSampler&, Weight) { return 1; }
template <typename S>
inline Time sampler_floor(const SamplerRef<S>& s, Weight w_min) {
  return sampler_floor(*s.sampler, w_min);
}

/// Minimum edge weight of a materialized graph (1 if edgeless — the floor
/// then only covers direct sends, which drivers bound separately).
inline Weight min_edge_weight(const Graph& g) {
  Weight w = std::numeric_limits<Weight>::max();
  for (const Edge& e : g.edges()) w = std::min(w, e.weight);
  return w == std::numeric_limits<Weight>::max() ? 1 : w;
}

/// Scale a latency floor down for faults that can shrink latencies: a spike
/// with factor < 1 multiplies the sampled latency by `spike_factor`
/// (rounded, floored at 1 tick by FaultFilter::scale_latency), so the
/// conservative bound is floor(L * factor). Loss, duplication, jitter and
/// factor >= 1 spikes only ever add delay.
inline Time fault_adjusted_floor(Time floor, const FaultSpec& spec) {
  if (spec.active() && spec.spike_prob > 0.0 && spec.spike_factor < 1.0)
    floor = static_cast<Time>(
        std::floor(static_cast<double>(floor) * spec.spike_factor));
  return std::max<Time>(1, floor);
}

/// Combine the edge-send floor with a driver's direct-send floor (notify /
/// find-reply messages bypass edges) and clamp to the always-sound 1-tick
/// lock-step fallback.
inline Time combined_lookahead(Time edge_floor, Time direct_floor, const FaultSpec& spec) {
  return fault_adjusted_floor(std::min(edge_floor, direct_floor), spec);
}

}  // namespace arrowdq
