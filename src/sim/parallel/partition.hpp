// Node-to-shard partitioning for the sharded discrete-event engine.
//
// The default partition is contiguous id blocks: shard i owns node ids
// [bounds[i], bounds[i+1]). Contiguity makes lane lookup a divide (or, for
// custom partitions, one binary search over K+1 bounds) and keeps each
// shard's per-node state arrays dense. A custom partitioner plugs in by
// supplying its own bounds — any monotone split of [0, n) works, since the
// engine only needs a total, deterministic node -> shard map.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"
#include "support/types.hpp"

namespace arrowdq {

/// A contiguous-block partition of node ids [0, n) into K shards.
class ShardPartition {
 public:
  /// Balanced contiguous blocks: shard i owns [floor(i*n/k), floor((i+1)*n/k)).
  static ShardPartition contiguous(NodeId n, int k) {
    ARROWDQ_ASSERT_MSG(n >= 1 && k >= 1, "partition needs n >= 1, k >= 1");
    if (k > n) k = static_cast<int>(n);  // no empty shards
    std::vector<NodeId> bounds(static_cast<std::size_t>(k) + 1);
    for (int i = 0; i <= k; ++i)
      bounds[static_cast<std::size_t>(i)] = static_cast<NodeId>(
          static_cast<std::int64_t>(i) * static_cast<std::int64_t>(n) / k);
    return ShardPartition(std::move(bounds));
  }

  /// Pluggable partitioner hook: any strictly increasing bounds vector with
  /// bounds.front() == 0 and bounds.back() == n defines a valid partition.
  static ShardPartition from_bounds(std::vector<NodeId> bounds) {
    ARROWDQ_ASSERT_MSG(bounds.size() >= 2, "partition needs at least one shard");
    ARROWDQ_ASSERT_MSG(bounds.front() == 0, "partition must start at node 0");
    for (std::size_t i = 1; i < bounds.size(); ++i)
      ARROWDQ_ASSERT_MSG(bounds[i] > bounds[i - 1], "partition bounds must increase");
    return ShardPartition(std::move(bounds));
  }

  int shard_count() const { return static_cast<int>(bounds_.size()) - 1; }
  NodeId node_count() const { return bounds_.back(); }
  NodeId begin(int shard) const { return bounds_[static_cast<std::size_t>(shard)]; }
  NodeId end(int shard) const { return bounds_[static_cast<std::size_t>(shard) + 1]; }

  /// The shard owning node v. Binary search over the K+1 bounds — K is tiny
  /// (2..16), so this is 1-4 well-predicted branches.
  int shard_of(NodeId v) const {
    ARROWDQ_ASSERT(v >= 0 && v < node_count());
    int lo = 0, hi = shard_count() - 1;
    while (lo < hi) {
      const int mid = (lo + hi + 1) / 2;
      if (v >= bounds_[static_cast<std::size_t>(mid)])
        lo = mid;
      else
        hi = mid - 1;
    }
    return lo;
  }

 private:
  explicit ShardPartition(std::vector<NodeId> bounds) : bounds_(std::move(bounds)) {}

  std::vector<NodeId> bounds_;  // K+1 entries, bounds_[0] == 0
};

/// How a driver run should be sharded. shards == 1 runs the identical
/// window/merge machinery inline on the calling thread (no worker threads);
/// the result is bit-identical for every K, so K is purely a speed knob.
struct ShardSpec {
  int shards = 1;
  /// Custom partition bounds (pluggable partitioner). Empty = balanced
  /// contiguous blocks.
  std::vector<NodeId> bounds;
  /// Test hook: override the derived lookahead (clamped to >= 1). 0 = derive
  /// from the latency model / distance oracle floors. Forcing 1 exercises
  /// the zero-lookahead lock-step fallback on any scenario.
  Time force_lookahead = 0;

  ShardPartition partition(NodeId n) const {
    return bounds.empty() ? ShardPartition::contiguous(n, shards)
                          : ShardPartition::from_bounds(bounds);
  }
};

/// Engine-level counters surfaced for the fig10_parallel bench section:
/// window/barrier overhead is the cost K > 1 must amortize.
struct ParallelStats {
  std::uint64_t windows = 0;         // safe windows executed (= barriers)
  std::uint64_t merged_entries = 0;  // schedule-log entries merged at barriers
  std::uint64_t events_executed = 0; // total events across all lanes
  Time lookahead = 0;                // the derived (or forced) safe-window width
};

}  // namespace arrowdq
