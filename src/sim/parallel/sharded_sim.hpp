// Sharded conservative discrete-event engine with bit-identical results.
//
// ShardedNetSim partitions the nodes of one simulation run into K shards
// ("lanes"), each with its own BucketedEventQueue + event arena, and
// advances all lanes concurrently through *safe windows* [W0, W0 + L): L is
// a lower bound on the latency of any send (sim/parallel/lookahead.hpp), so
// an event executing inside a window can only schedule deliveries at or
// beyond the window's end — lanes cannot affect each other (or themselves,
// through the network) before the next barrier. Within a window a lane only
// executes local cascades: service re-arms and driver-local at()/in() whose
// targets land inside the window.
//
// Bit-identity. The serial core's determinism contract is the global
// (time, seq) execution order, where seq is allocated per *schedule call*
// in call order. The sharded engine reproduces that exact allocation:
//
//  * Every schedule call made inside a window (send, send_with_latency,
//    at/in, service re-arm) is appended to its lane's log with the key
//    (sched_time, parent, call_index): the lane-local instant it was made,
//    the seq of the event making it, and its index among that event's
//    calls. Within one lane the log is sorted by that key, and across lanes
//    the keys are totally ordered (distinct events have distinct seqs), so
//    a K-way merge at the window barrier reconstructs the exact order in
//    which the serial run would have made these calls.
//  * The merge assigns each entry the next global sequence number — the
//    very value the serial core's schedule counter would have produced —
//    and only then finalizes sends: latency sampling, fault draws, FIFO
//    clamping and stats all run serially at the barrier in merged order, so
//    stateful samplers, the fault filter's single RNG stream and the
//    per-edge FIFO horizons evolve exactly as in the serial run.
//  * Calls whose target lies inside the current window (possible only for
//    local events — sends are bounded below by L) are enqueued immediately
//    under a provisional key above every real seq (kProvBase + i, FIFO
//    within the window) and executed in-window; the barrier later assigns
//    their real seq so their children's parent keys resolve. Per-bucket
//    push order in the lane queues stays ascending (final seqs first, then
//    provisional keys), which is all BucketedEventQueue requires.
//
// The result: for any K — including K = 1, which runs the identical
// window/log/merge machinery inline with no threads — every event executes
// at the same (time, seq) as in the serial core, every RNG stream is
// consumed in the same order, and every observable (makespan, message
// counts, latency sums, completion records) is bit-identical.
// tests/parallel_test.cpp pins this against all 30 golden hashes at
// K ∈ {2, 4} plus randomized topology × latency × fault property runs.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/fault.hpp"
#include "sim/latency.hpp"
#include "sim/network.hpp"
#include "sim/parallel/partition.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"
#include "support/types.hpp"

namespace arrowdq {

/// Index stand-in for drivers that never send over graph edges (the
/// centralized and pointer-forwarding baselines only use explicit-latency
/// direct sends against a distance oracle).
struct DirectOnlyIndex {
  NodeId n = 0;
  NodeId node_count() const { return n; }
  std::size_t dir_edge_count() const { return 0; }
  DirEdgeRef find_edge(NodeId, NodeId) const {
    ARROWDQ_ASSERT_MSG(false, "direct-only driver sent over a graph edge");
    return DirEdgeRef{};
  }
};

template <typename M, typename Latency, typename Handler, typename Faults,
          typename Index = Graph>
class ShardedNetSim {
 public:
  static_assert(std::is_trivially_copyable_v<M>,
                "network message types must be trivially copyable");

  using Sim = BasicSimulator<BucketedEventQueue>;  // 48-byte inline slots

  /// Provisional in-window keys live above every real sequence number the
  /// merge can allocate (asserted), so a time bucket receiving final seqs
  /// (from barriers) and then provisional keys (in-window) still sees
  /// ascending pushes.
  static constexpr std::uint64_t kProvBase = std::uint64_t{1} << 35;
  static_assert(kProvBase < EventEntry::kMaxSeq);

  class LaneCtx;

  ShardedNetSim(const Index& index, Latency latency, Faults faults,
                ShardPartition partition, Time lookahead)
      : index_(index),
        latency_(std::move(latency)),
        faults_(std::move(faults)),
        partition_(std::move(partition)),
        lookahead_(std::max<Time>(1, lookahead)),
        fifo_ready_(index.dir_edge_count(), 0),
        busy_until_(static_cast<std::size_t>(index.node_count()), 0),
        lanes_(static_cast<std::size_t>(partition_.shard_count())) {
    ARROWDQ_ASSERT_MSG(partition_.node_count() == index.node_count(),
                       "partition does not cover the node set");
    stats_par_.lookahead = lookahead_;
  }

  ShardedNetSim(const ShardedNetSim&) = delete;
  ShardedNetSim& operator=(const ShardedNetSim&) = delete;

  void set_handler(Handler h) { handler_ = std::move(h); }

  void set_service_time(Time ticks) {
    ARROWDQ_ASSERT_MSG(ticks >= 0, "service time must be >= 0");
    service_time_ = ticks;
  }

  /// Capacity hint, split across lanes.
  void reserve(std::size_t n_events) {
    const std::size_t per = n_events / lanes_.size() + 16;
    for (Lane& l : lanes_) {
      l.sim.reserve(per);
      l.log.reserve(per);
      l.sends.reserve(per);
    }
  }

  int lane_of(NodeId v) const { return partition_.shard_of(v); }
  int lane_count() const { return static_cast<int>(lanes_.size()); }
  const ShardPartition& partition() const { return partition_; }
  Time makespan() const { return makespan_; }
  const NetworkStats& stats() const { return stats_; }
  const ParallelStats& parallel_stats() const { return stats_par_; }
  Faults& faults() { return faults_; }
  const Faults& faults() const { return faults_; }

  /// Pre-run scheduling (the driver's initial events). Must be called in
  /// the exact order the serial driver would call sim.at(): each post
  /// consumes the next global sequence number, mirroring the serial
  /// schedule counter.
  template <typename F>
  void post_initial(NodeId owner, Time t, F&& fn) {
    ARROWDQ_ASSERT(!running_);
    const std::uint64_t seq = vseq_++;
    ARROWDQ_ASSERT_MSG(seq < kProvBase, "sequence space exhausted");
    note_makespan(t);
    lanes_[static_cast<std::size_t>(lane_of(owner))].sim.at_seq(t, seq,
                                                               std::forward<F>(fn));
  }

  /// Run to global quiescence: alternate safe windows (all lanes advance to
  /// W0 + L - 1 concurrently) with serial barrier merges until every lane
  /// queue is empty and no logged call remains.
  void run() {
    running_ = true;
    if (lane_count() == 1) {
      window_loop([this](Time t_end) { run_lane_window(0, t_end); });
    } else {
      WorkerPool pool(*this);
      window_loop([&pool](Time t_end) { pool.run_window(t_end); });
    }
    running_ = false;
    for (const Lane& l : lanes_) stats_par_.events_executed += l.sim.events_executed();
  }

  /// Per-lane driver-facing context: what Network + Simulator expose to a
  /// serial driver, scoped to one shard.
  class LaneCtx {
   public:
    LaneCtx(ShardedNetSim* eng, int lane) : eng_(eng), lane_(lane) {}

    Time now() const { return eng_->lanes_[static_cast<std::size_t>(lane_)].sim.now(); }
    int lane() const { return lane_; }

    /// Mirror of Network::send — logged here, finalized (latency sample,
    /// fault draws, FIFO clamp, stats) at the barrier in serial order.
    void send(NodeId from, NodeId to, M msg) {
      eng_->log_call(lane_, LogKind::kEdgeSend, /*t_or_lat=*/0, SendRec{msg, from, to});
    }

    /// Mirror of Network::send_with_latency. The sharded engine requires
    /// latency >= the direct-send floor folded into the lookahead (>= 1).
    void send_with_latency(NodeId from, NodeId to, Time latency, M msg) {
      ARROWDQ_ASSERT_MSG(latency >= 1, "sharded direct sends need latency >= 1 tick");
      eng_->log_call(lane_, LogKind::kDirectSend, latency, SendRec{msg, from, to});
    }

    /// Mirror of Simulator::at for driver-local events (issue loops).
    template <typename F>
    void at(Time t, F&& fn) {
      eng_->lane_at(lane_, t, std::forward<F>(fn));
    }
    template <typename F>
    void in(Time delay, F&& fn) {
      ARROWDQ_ASSERT(delay >= 0);
      at(now() + delay, std::forward<F>(fn));
    }

   private:
    ShardedNetSim* eng_;
    int lane_;
  };

  /// Driver-facing context for the lane owning node v (valid during events
  /// executing on that lane).
  LaneCtx ctx_of(NodeId v) { return LaneCtx(this, lane_of(v)); }

 private:
  enum class LogKind : std::uint8_t {
    kProv,        // in-window local event, already enqueued provisionally
    kLocalFut,    // future local event (callable in futs_)
    kRearmFut,    // future service re-arm (SendRec, deliver at t_or_lat)
    kEdgeSend,    // Network::send (SendRec)
    kDirectSend,  // Network::send_with_latency (SendRec, latency t_or_lat)
  };

  struct SendRec {
    M msg;
    NodeId from;
    NodeId to;
  };

  /// One schedule call made inside a window. (sched, parent, ci) is the
  /// merge key; payload indexes the per-kind side array.
  struct LogEntry {
    Time sched;            // lane-local time of the call
    std::uint64_t parent;  // seq (final or provisional) of the calling event
    Time t_or_lat;         // target time (kProv/kLocalFut/kRearmFut), latency (kDirectSend)
    std::uint32_t ci;      // call index within the calling event
    std::uint32_t payload;
    LogKind kind;
  };

  /// Deferred generic callable for a future local at(): enough for every
  /// driver issue-event (pointer + node id sized).
  struct FutRec {
    alignas(std::max_align_t) unsigned char buf[32];
    void (*enqueue)(ShardedNetSim*, int lane, Time t, std::uint64_t seq,
                    const unsigned char* buf);
  };

  /// The one event type the engine itself enqueues: the sharded counterpart
  /// of Network's DeliveryEvent, carrying the message inline (lanes have no
  /// shared message pool).
  struct DeliverEvent {
    ShardedNetSim* eng;
    NodeId from;
    NodeId to;
    M msg;
    bool in_service;
    void operator()() const { eng->on_deliver(from, to, msg, in_service); }
  };
  static_assert(Sim::template fits_inline_v<DeliverEvent>,
                "DeliverEvent must stay on the lane simulators' inline path");

  struct alignas(64) Lane {
    Sim sim;
    std::vector<LogEntry> log;
    std::vector<SendRec> sends;
    std::vector<FutRec> futs;
    /// Final seq assigned to each provisional event of the current window.
    std::vector<std::uint64_t> resolve;
    std::uint32_t prov_count = 0;
    /// Call-index tracking: ci restarts at 0 for each executing event.
    std::uint64_t last_parent = ~std::uint64_t{0};
    std::uint32_t next_ci = 0;
    Time local_makespan = 0;
  };

  // --- window loop ---------------------------------------------------------

  template <typename RunLanes>
  void window_loop(RunLanes&& run_lanes) {
    for (;;) {
      Time w0 = kTimeNever;
      for (const Lane& l : lanes_)
        if (!l.sim.idle()) w0 = std::min(w0, l.sim.next_event_time());
      if (w0 == kTimeNever) break;
      win_end_ = w0 + lookahead_;
      for (Lane& l : lanes_) {
        l.last_parent = ~std::uint64_t{0};
        l.next_ci = 0;
      }
      run_lanes(win_end_ - 1);
      ++stats_par_.windows;
      barrier_merge();
    }
    Time m = makespan_;
    for (const Lane& l : lanes_) m = std::max(m, l.local_makespan);
    makespan_ = m;
  }

  void run_lane_window(int lane, Time t_end) {
    lanes_[static_cast<std::size_t>(lane)].sim.run_until(t_end);
  }

  /// Persistent worker threads, one per lane, released per window through a
  /// generation-counted barrier. The mutex hand-offs give the necessary
  /// happens-before edges: lane state written by a worker is visible to the
  /// merging main thread and vice versa.
  struct WorkerPool {
    explicit WorkerPool(ShardedNetSim& eng) : eng_(eng) {
      const int k = eng.lane_count();
      threads_.reserve(static_cast<std::size_t>(k));
      for (int i = 0; i < k; ++i)
        threads_.emplace_back([this, i] { worker(i); });
    }
    ~WorkerPool() {
      {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
      }
      cv_start_.notify_all();
      for (std::thread& t : threads_) t.join();
    }

    void run_window(Time t_end) {
      {
        std::lock_guard<std::mutex> lk(m_);
        target_ = t_end;
        pending_ = static_cast<int>(threads_.size());
        ++gen_;
      }
      cv_start_.notify_all();
      std::unique_lock<std::mutex> lk(m_);
      cv_done_.wait(lk, [this] { return pending_ == 0; });
    }

   private:
    void worker(int lane) {
      std::uint64_t seen = 0;
      for (;;) {
        Time t_end;
        {
          std::unique_lock<std::mutex> lk(m_);
          cv_start_.wait(lk, [&] { return stop_ || gen_ != seen; });
          if (stop_) return;
          seen = gen_;
          t_end = target_;
        }
        eng_.run_lane_window(lane, t_end);
        {
          std::lock_guard<std::mutex> lk(m_);
          if (--pending_ == 0) cv_done_.notify_one();
        }
      }
    }

    ShardedNetSim& eng_;
    std::vector<std::thread> threads_;
    std::mutex m_;
    std::condition_variable cv_start_, cv_done_;
    std::uint64_t gen_ = 0;
    int pending_ = 0;
    Time target_ = 0;
    bool stop_ = false;
  };

  // --- in-window logging (lane threads) ------------------------------------

  std::uint32_t call_index(Lane& l) {
    const std::uint64_t parent = l.sim.current_seq();
    if (parent != l.last_parent) {
      l.last_parent = parent;
      l.next_ci = 0;
    }
    return l.next_ci++;
  }

  void log_call(int lane, LogKind kind, Time t_or_lat, SendRec rec) {
    Lane& l = lanes_[static_cast<std::size_t>(lane)];
    const std::uint32_t ci = call_index(l);
    l.sends.push_back(rec);
    l.log.push_back(LogEntry{l.sim.now(), l.sim.current_seq(), t_or_lat, ci,
                             static_cast<std::uint32_t>(l.sends.size() - 1), kind});
  }

  template <typename F>
  void lane_at(int lane, Time t, F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_trivially_copyable_v<Fn> && sizeof(Fn) <= sizeof(FutRec::buf),
                  "sharded local events must be small trivially copyable callables");
    Lane& l = lanes_[static_cast<std::size_t>(lane)];
    const std::uint32_t ci = call_index(l);
    const Time now = l.sim.now();
    const std::uint64_t parent = l.sim.current_seq();
    if (t < win_end_) {
      // In-window target: enqueue now under a provisional key (executes
      // this window); the barrier assigns its real seq for child resolution.
      const std::uint32_t idx = l.prov_count++;
      l.resolve.push_back(0);
      l.local_makespan = std::max(l.local_makespan, t);
      l.sim.at_seq(t, kProvBase + idx, std::forward<F>(fn));
      l.log.push_back(LogEntry{now, parent, t, ci, idx, LogKind::kProv});
    } else {
      FutRec f;
      std::memcpy(f.buf, &fn, sizeof(Fn));
      f.enqueue = [](ShardedNetSim* eng, int ln, Time at, std::uint64_t seq,
                     const unsigned char* buf) {
        Fn local;
        std::memcpy(&local, buf, sizeof(Fn));
        eng->lanes_[static_cast<std::size_t>(ln)].sim.at_seq(at, seq, local);
      };
      l.futs.push_back(f);
      l.log.push_back(LogEntry{now, parent, t, ci,
                               static_cast<std::uint32_t>(l.futs.size() - 1),
                               LogKind::kLocalFut});
    }
  }

  /// Lane-side delivery: the exact serial Network::deliver two-phase flow.
  /// busy_until_[to] is only ever touched by to's owner lane.
  void on_deliver(NodeId from, NodeId to, const M& msg, bool in_service) {
    const int lane = lane_of(to);
    Lane& l = lanes_[static_cast<std::size_t>(lane)];
    if (service_time_ != 0 && !in_service) {
      Time& busy = busy_until_[static_cast<std::size_t>(to)];
      const Time start = std::max(l.sim.now(), busy);
      const Time done = start + service_time_;
      busy = done;
      // The serial core consumes one seq for the re-arm here.
      const std::uint32_t ci = call_index(l);
      if (done < win_end_) {
        const std::uint32_t idx = l.prov_count++;
        l.resolve.push_back(0);
        l.local_makespan = std::max(l.local_makespan, done);
        l.sim.at_seq(done, kProvBase + idx, DeliverEvent{this, from, to, msg, true});
        l.log.push_back(
            LogEntry{l.sim.now(), l.sim.current_seq(), done, ci, idx, LogKind::kProv});
      } else {
        l.sends.push_back(SendRec{msg, from, to});
        l.log.push_back(LogEntry{l.sim.now(), l.sim.current_seq(), done, ci,
                                 static_cast<std::uint32_t>(l.sends.size() - 1),
                                 LogKind::kRearmFut});
      }
      return;
    }
    LaneCtx ctx(this, lane);
    handler_(ctx, from, to, msg);
  }

  // --- barrier merge (main thread) -----------------------------------------

  /// Resolve a parent key to its final seq. Provisional parents are always
  /// same-lane and their creating entry merges strictly earlier, so the
  /// resolve slot is filled by the time any child is compared.
  std::uint64_t resolved(const Lane& l, std::uint64_t parent) const {
    return parent < kProvBase ? parent
                              : l.resolve[static_cast<std::size_t>(parent - kProvBase)];
  }

  /// True when entry a (lane la) precedes entry b (lane lb) in the serial
  /// schedule-call order.
  bool entry_before(const Lane& la, const LogEntry& a, const Lane& lb,
                    const LogEntry& b) const {
    if (a.sched != b.sched) return a.sched < b.sched;
    const std::uint64_t pa = resolved(la, a.parent);
    const std::uint64_t pb = resolved(lb, b.parent);
    if (pa != pb) return pa < pb;
    return a.ci < b.ci;
  }

  void barrier_merge() {
    const int k = lane_count();
    // Each lane's log is already sorted by the merge key (appended in lane
    // execution order, which the header argues equals serial order
    // restricted to the lane), so a K-way head scan merges in serial order.
    head_.assign(static_cast<std::size_t>(k), 0);
    for (;;) {
      int best = -1;
      for (int i = 0; i < k; ++i) {
        const Lane& l = lanes_[static_cast<std::size_t>(i)];
        if (head_[static_cast<std::size_t>(i)] >= l.log.size()) continue;
        if (best < 0 ||
            entry_before(l, l.log[head_[static_cast<std::size_t>(i)]],
                         lanes_[static_cast<std::size_t>(best)],
                         lanes_[static_cast<std::size_t>(best)]
                             .log[head_[static_cast<std::size_t>(best)]]))
          best = i;
      }
      if (best < 0) break;
      Lane& l = lanes_[static_cast<std::size_t>(best)];
      const LogEntry& e = l.log[head_[static_cast<std::size_t>(best)]++];
      const std::uint64_t seq = vseq_++;
      ARROWDQ_ASSERT_MSG(seq < kProvBase, "sequence space exhausted");
      ++stats_par_.merged_entries;
      switch (e.kind) {
        case LogKind::kProv:
          l.resolve[e.payload] = seq;  // already enqueued and executed
          break;
        case LogKind::kLocalFut: {
          const FutRec& f = l.futs[e.payload];
          note_makespan(e.t_or_lat);
          f.enqueue(this, best, e.t_or_lat, seq, f.buf);
          break;
        }
        case LogKind::kRearmFut: {
          const SendRec& s = l.sends[e.payload];
          note_makespan(e.t_or_lat);
          lanes_[static_cast<std::size_t>(lane_of(s.to))].sim.at_seq(
              e.t_or_lat, seq, DeliverEvent{this, s.from, s.to, s.msg, true});
          break;
        }
        case LogKind::kEdgeSend:
          finalize_edge_send(e, l.sends[e.payload], seq);
          break;
        case LogKind::kDirectSend:
          finalize_direct_send(e, l.sends[e.payload], seq);
          break;
      }
    }
    for (Lane& l : lanes_) {
      l.log.clear();
      l.sends.clear();
      l.futs.clear();
      l.resolve.clear();
      l.prov_count = 0;
    }
  }

  /// Serial mirror of Network::send, executed at the barrier in merged
  /// (serial) order: sampler and fault RNG streams and the FIFO horizons
  /// see the draws in exactly the serial sequence.
  void finalize_edge_send(const LogEntry& e, const SendRec& s, std::uint64_t seq) {
    DirEdgeRef edge = index_.find_edge(s.from, s.to);
    ARROWDQ_ASSERT_MSG(edge, "send over a non-edge");
    Time lat = latency_(s.from, s.to, edge.weight);
    ARROWDQ_ASSERT(lat >= 1);
    bool duplicated = false;
    if constexpr (Faults::kActive) {
      EdgeFaultResult f = faults_.on_edge(s.from, s.to, lat);
      lat = f.latency;
      duplicated = f.duplicated;
    }
    Time deliver = e.sched + lat;
    Time& ready = fifo_ready_[static_cast<std::size_t>(edge.id)];
    if (deliver < ready) deliver = ready;
    if constexpr (Faults::kActive) {
      deliver = faults_.defer(s.to, deliver);
    }
    ready = deliver;
    if constexpr (Faults::kActive) {
      if (duplicated) ready += lat;
    }
    ++stats_.edge_messages;
    stats_.total_edge_latency += lat;
    push_deliver(deliver, seq, s);
  }

  void finalize_direct_send(const LogEntry& e, const SendRec& s, std::uint64_t seq) {
    Time deliver = e.sched + e.t_or_lat;
    if constexpr (Faults::kActive) {
      deliver = e.sched + faults_.on_direct(s.from, s.to, e.t_or_lat);
      deliver = faults_.defer(s.to, deliver);
    }
    ++stats_.direct_messages;
    push_deliver(deliver, seq, s);
  }

  void push_deliver(Time deliver, std::uint64_t seq, const SendRec& s) {
    // The lookahead contract: no finalized delivery may land inside the
    // window that produced it. A failure here means a latency floor was
    // optimistic — loud, never a silent divergence.
    ARROWDQ_ASSERT_MSG(deliver >= win_end_, "delivery inside its own safe window");
    note_makespan(deliver);
    lanes_[static_cast<std::size_t>(lane_of(s.to))].sim.at_seq(
        deliver, seq, DeliverEvent{this, s.from, s.to, s.msg, false});
  }

  /// Makespan = max target time ever scheduled (every event executes, and
  /// the serial sim.now() after run() is exactly the last — maximal —
  /// executed event time). Lane-side targets fold in via local_makespan.
  void note_makespan(Time t) { makespan_ = std::max(makespan_, t); }

  const Index& index_;
  Latency latency_;
  Faults faults_;
  Handler handler_{};
  ShardPartition partition_;
  Time lookahead_;
  Time service_time_ = 0;
  Time win_end_ = 0;
  Time makespan_ = 0;
  bool running_ = false;
  std::uint64_t vseq_ = 0;
  std::vector<Time> fifo_ready_;  // barrier-serial only
  std::vector<Time> busy_until_;  // element-owned by the node's lane
  std::vector<Lane> lanes_;
  std::vector<std::size_t> head_;  // merge scratch
  NetworkStats stats_;
  ParallelStats stats_par_;
};

}  // namespace arrowdq
