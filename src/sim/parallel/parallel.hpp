// Sharded-engine entry points: the serial drivers' workloads executed on
// ShardedNetSim (sim/parallel/sharded_sim.hpp) with results bit-identical to
// the serial core for any shard count K (including K = 1, which runs the
// identical window/merge machinery inline with no worker threads).
//
// Each entry mirrors its serial driver statement-for-statement on the
// schedule-call path, so every observable — makespan, message counts,
// completion records, exact latency sums — reproduces the serial run;
// tests/parallel_test.cpp pins all 30 golden hashes through these entries at
// K = 2 and K = 4 plus randomized K ∈ {1, 2, 4} property runs.
//
// Restrictions relative to the serial drivers:
//  * Crash faults are not supported (the recovery wave is a global pointer
//    rewrite that cannot run inside a safe window); message faults (loss,
//    duplication, jitter, spikes) are fully supported — the filter's single
//    RNG stream is consumed at window barriers in exact serial order.
//  * Direct sends must carry latency >= 1 tick (asserted), and a custom
//    ClosedLoopConfig::notify_latency must be pure and thread-safe — lanes
//    evaluate it concurrently.
#pragma once

#include <cstdint>
#include <vector>

#include "arrow/closed_loop.hpp"
#include "baseline/centralized.hpp"
#include "baseline/pointer_forwarding.hpp"
#include "graph/implicit.hpp"
#include "graph/tree.hpp"
#include "proto/queuing.hpp"
#include "proto/request.hpp"
#include "sim/latency.hpp"
#include "sim/parallel/partition.hpp"
#include "support/types.hpp"

namespace arrowdq {

/// The Figure 10 closed-loop arrow driver on the sharded engine
/// (materialized-tree tier). `par_out`, when non-null, receives the engine's
/// window/merge counters (the fig10_parallel bench section reports them).
ClosedLoopResult run_arrow_closed_loop_sharded(const Tree& tree, LatencyModel& latency,
                                               const ClosedLoopConfig& config,
                                               const ShardSpec& shard,
                                               ParallelStats* par_out = nullptr);

/// The same driver on an implicit topology (PR 7's million-node tier). Note
/// the sharded lanes use 64-byte event slots (the engine's delivery event
/// carries the message inline), so per-node event memory is ~2x the serial
/// CompactSimulator tier — the tradeoff for intra-run parallelism.
ClosedLoopResult run_arrow_closed_loop_implicit_sharded(const ImplicitTopology& topo,
                                                        LatencyModel& latency,
                                                        const ClosedLoopConfig& config,
                                                        const ShardSpec& shard,
                                                        ParallelStats* par_out = nullptr);

/// One-shot arrow through the sharded engine, exposing the post-run
/// observables the serial ArrowEngine does (the golden arrow hashes fold
/// links / sink / messages / makespan alongside the outcome).
struct ShardedArrowRun {
  QueuingOutcome out;
  std::vector<NodeId> links;
  NodeId sink = kNoNode;
  std::uint64_t messages = 0;
  Time makespan = 0;
  FaultStats fault_stats;  // loss/duplication counters (zero when fault-free)
};

ShardedArrowRun run_arrow_one_shot_sharded(const Tree& tree, const RequestSet& requests,
                                           LatencyModel& latency, Time service_time,
                                           const FaultSpec& fault, const ShardSpec& shard);

/// Centralized and pointer-forwarding baselines (direct sends against a
/// distance oracle only; the oracle must be pure — lanes draw concurrently).
QueuingOutcome run_centralized_sharded(NodeId node_count, const RequestSet& requests,
                                       const DistTicksFn& dist,
                                       const CentralizedConfig& config,
                                       const ShardSpec& shard);

QueuingOutcome run_pointer_forwarding_sharded(NodeId node_count, const RequestSet& requests,
                                              const DistTicksFn& dist,
                                              const PointerForwardingConfig& config,
                                              const ShardSpec& shard);

ForwardingLoopResult run_pointer_forwarding_closed_loop_sharded(
    NodeId node_count, std::int64_t requests_per_node, const DistTicksFn& dist,
    const PointerForwardingConfig& config, const ShardSpec& shard);

}  // namespace arrowdq
