// Sharded mirrors of the serial drivers. Each mirror repeats its serial
// counterpart's schedule-call sequence statement for statement (issue /
// receive / round_done bodies are transcriptions of closed_loop.cpp,
// arrow.cpp, centralized.cpp and pointer_forwarding.cpp), swapping
// Simulator/Network calls for the lane context's logged equivalents, so the
// ShardedNetSim merge reproduces the serial (time, seq) execution exactly —
// see sharded_sim.hpp for the argument.
//
// Three serial constructs cannot run as-is under lane concurrency and are
// replaced by observably identical ones:
//
//  * Request-id allocation: the serial loops draw ids from one shared
//    counter (`++next_id_`). Ids never reach any observable — they feed
//    asserts (!= kNoRequest) and ride in messages whose handlers ignore the
//    value — so each lane allocates from its own stride (1 + lane + K*i),
//    which is trivially data-race-free and always >= 1.
//  * Completion recording: QueuingOutcome::record() mutates shared state, so
//    one-shot mirrors buffer completions per lane and record after the run.
//    record() order is immaterial: the outcome is keyed by request id and
//    the successor chain, and both are unique per record (record() asserts
//    so), hence any flush order rebuilds the identical outcome.
//  * Latency averages: the serial drivers' exact integer latency sums (one
//    __int128 per driver) become one sum per lane, added together at the
//    end — integer addition is order-free, so the resulting double equals
//    the serial division bit for bit.
#include "sim/parallel/parallel.hpp"

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "arrow/arrow.hpp"
#include "sim/network.hpp"
#include "sim/parallel/lookahead.hpp"
#include "sim/parallel/sharded_sim.hpp"
#include "support/assert.hpp"

namespace arrowdq {

namespace {

/// Generic handler shim: lets a mirror name its engine type before the
/// mirror class itself is complete.
template <typename D>
struct MirrorHandler {
  D* d = nullptr;
  template <typename Ctx, typename Msg>
  void operator()(Ctx& ctx, NodeId from, NodeId to, const Msg& m) const {
    d->receive(ctx, from, to, m);
  }
};

/// Per-lane accumulator state, cache-line separated: exact latency sums,
/// message counters, and the lane's request-id stride counter.
struct alignas(64) LaneAccum {
  __int128 lat_sum = 0;
  std::int64_t lat_count = 0;
  std::int64_t next_ctr = 0;
  std::uint64_t find_messages = 0;
  std::uint64_t reply_messages = 0;
};

/// Lane-strided request-id allocation (see header comment). K and lane are
/// both small; ids stay well inside RequestId range for any feasible run.
inline RequestId lane_request_id(int lane, int lane_count, LaneAccum& acc) {
  return static_cast<RequestId>(1 + lane +
                                static_cast<std::int64_t>(lane_count) * acc.next_ctr++);
}

/// Direct-send latency floor per distance oracle: every closed-form oracle
/// maps distinct nodes to >= 1 unit; an arbitrary FnDist only guarantees the
/// engine-wide 1-tick minimum. (The engine asserts every finalized delivery
/// clears its window, so an optimistic floor fails loudly.)
inline Time dist_floor(const UnitDist&) { return kTicksPerUnit; }
inline Time dist_floor(const ApspDist&) { return kTicksPerUnit; }
inline Time dist_floor(const PathDist&) { return kTicksPerUnit; }
inline Time dist_floor(const RingDist&) { return kTicksPerUnit; }
inline Time dist_floor(const GridDist&) { return kTicksPerUnit; }
inline Time dist_floor(const TorusDist&) { return kTicksPerUnit; }
inline Time dist_floor(const HypercubeDist&) { return kTicksPerUnit; }
inline Time dist_floor(const FnDist&) { return 1; }

// --- arrow closed loop ------------------------------------------------------

enum class SLoopKind : std::uint8_t { kQueue, kNotify };

/// Same layout as closed_loop.cpp's LoopMsg (epoch always 0: crash schedules
/// are rejected before a sharded run starts).
struct SLoopMsg {
  SLoopKind kind = SLoopKind::kQueue;
  RequestId req = kNoRequest;
  NodeId requester = kNoNode;
  std::int32_t hops = 0;
  std::int32_t epoch = 0;
};

/// Topology policies mirroring closed_loop.cpp's MaterializedTopo /
/// ImplicitLoopTopo, plus what the sharded tier needs: the latency floor of
/// the edge index and a pre-run warm-up (Graph's edge index is built lazily
/// and is not thread-safe to build, so it must exist before lanes run).
struct SMatLoopTopo {
  const Tree* tree = nullptr;
  using Index = Graph;
  NodeId node_count() const { return tree->node_count(); }
  NodeId root() const { return tree->root(); }
  NodeId parent(NodeId v) const { return tree->parent(v); }
  Index make_index() const { return tree->as_graph(); }
  static Weight min_weight(const Index& g) { return min_edge_weight(g); }
  static void warm(const Index& g) {
    if (g.node_count() >= 2) (void)g.find_edge(0, 1);
  }
  std::size_t reserve_hint() const { return 4 * static_cast<std::size_t>(tree->node_count()); }
};

struct SImplLoopTopo {
  ImplicitTopology topo;
  using Index = ImplicitTreeIndex;
  NodeId node_count() const { return topo.n; }
  NodeId root() const { return topo.root; }
  NodeId parent(NodeId v) const { return topo.tree_parent(v); }
  Index make_index() const { return ImplicitTreeIndex{topo}; }
  static Weight min_weight(const Index&) { return 1; }
  static void warm(const Index&) {}
  std::size_t reserve_hint() const {
    const auto n = static_cast<std::size_t>(topo.n);
    return n + n / 4 + 64;
  }
};

/// Sharded mirror of closed_loop.cpp's Driver (fault-free and message-fault
/// paths; crash recovery is rejected upstream).
template <typename Latency, typename Faults, typename Topo>
class SLoopMirror {
 public:
  using Eng = ShardedNetSim<SLoopMsg, Latency, MirrorHandler<SLoopMirror>, Faults,
                            typename Topo::Index>;
  using Ctx = typename Eng::LaneCtx;

  SLoopMirror(Topo topo, Latency latency, Faults faults, const ClosedLoopConfig& config,
              const ShardSpec& shard)
      : topo_(std::move(topo)),
        config_(config),
        index_(topo_.make_index()),
        lookahead_(shard.force_lookahead > 0
                       ? shard.force_lookahead
                       : combined_lookahead(
                             sampler_floor(latency, Topo::min_weight(index_)),
                             config.notify_latency ? Time{1} : kTicksPerUnit,
                             config.fault)),
        eng_(index_, std::move(latency), std::move(faults),
             shard.partition(topo_.node_count()), lookahead_),
        link_(static_cast<std::size_t>(topo_.node_count())),
        last_req_(static_cast<std::size_t>(topo_.node_count()), kNoRequest),
        issued_(static_cast<std::size_t>(topo_.node_count()), 0),
        issue_time_(static_cast<std::size_t>(topo_.node_count()), 0),
        accum_(static_cast<std::size_t>(eng_.lane_count())) {
    eng_.reserve(topo_.reserve_hint());
    eng_.set_service_time(config.service_time);
    eng_.set_handler(MirrorHandler<SLoopMirror>{this});
    NodeId root = topo_.root();
    for (NodeId v = 0; v < topo_.node_count(); ++v)
      link_[static_cast<std::size_t>(v)] = v == root ? v : topo_.parent(v);
    last_req_[static_cast<std::size_t>(root)] = kRootRequest;
    Topo::warm(index_);
  }

  ClosedLoopResult run(ParallelStats* par_out) {
    for (NodeId v = 0; v < topo_.node_count(); ++v)
      eng_.post_initial(v, 0, IssueEvent{this, v});
    eng_.run();
    ClosedLoopResult res;
    res.makespan = eng_.makespan();
    res.total_requests =
        static_cast<std::int64_t>(topo_.node_count()) * config_.requests_per_node;
    res.tree_messages = eng_.stats().edge_messages;
    res.notify_messages = eng_.stats().direct_messages;
    res.avg_hops_per_request =
        res.total_requests == 0
            ? 0.0
            : static_cast<double>(res.tree_messages) / static_cast<double>(res.total_requests);
    __int128 lat_sum = 0;
    std::int64_t lat_count = 0;
    for (const LaneAccum& a : accum_) {
      lat_sum += a.lat_sum;
      lat_count += a.lat_count;
    }
    res.avg_round_latency_units =
        lat_count == 0 ? 0.0
                       : static_cast<double>(lat_sum) / static_cast<double>(lat_count) /
                             static_cast<double>(kTicksPerUnit);
    if constexpr (Faults::kActive) {
      res.messages_dropped = eng_.faults().stats().messages_dropped;
      res.messages_duplicated = eng_.faults().stats().messages_duplicated;
    }
    if (par_out != nullptr) *par_out = eng_.parallel_stats();
    return res;
  }

  void receive(Ctx& ctx, NodeId from, NodeId at, const SLoopMsg& m) {
    if (m.kind == SLoopKind::kNotify) {
      round_done(ctx, at);
      return;
    }
    auto ui = static_cast<std::size_t>(at);
    NodeId next = link_[ui];
    link_[ui] = from;
    if (next != at) {
      ctx.send(at, next, SLoopMsg{SLoopKind::kQueue, m.req, m.requester, m.hops + 1, 0});
      return;
    }
    ARROWDQ_ASSERT(last_req_[ui] != kNoRequest);
    if (m.requester == at) {
      round_done(ctx, at);
    } else {
      ctx.send_with_latency(at, m.requester, notify_latency(at, m.requester),
                            SLoopMsg{SLoopKind::kNotify, m.req, m.requester, 0, 0});
    }
  }

  void issue(NodeId v) {
    Ctx ctx = eng_.ctx_of(v);
    auto vi = static_cast<std::size_t>(v);
    if (issued_[vi] >= config_.requests_per_node) return;
    if constexpr (Faults::kActive) {
      // Unreachable without crash windows (rejected upstream), kept as the
      // exact serial statement order.
      Time up = eng_.faults().defer(v, ctx.now());
      if (up != ctx.now()) {
        ctx.at(up, IssueEvent{this, v});
        return;
      }
    }
    ++issued_[vi];
    RequestId a = lane_request_id(ctx.lane(), eng_.lane_count(),
                                  accum_[static_cast<std::size_t>(ctx.lane())]);
    issue_time_[vi] = ctx.now();
    if (link_[vi] == v) {
      ARROWDQ_ASSERT(last_req_[vi] != kNoRequest);
      last_req_[vi] = a;
      round_done(ctx, v);
      return;
    }
    NodeId target = link_[vi];
    last_req_[vi] = a;
    link_[vi] = v;
    ctx.send(v, target, SLoopMsg{SLoopKind::kQueue, a, v, 1, 0});
  }

 private:
  struct IssueEvent {
    SLoopMirror* d;
    NodeId v;
    void operator()() const { d->issue(v); }
  };

  Time notify_latency(NodeId from, NodeId to) const {
    if (config_.notify_latency) return config_.notify_latency(from, to);
    return kTicksPerUnit;
  }

  void round_done(Ctx& ctx, NodeId v) {
    LaneAccum& acc = accum_[static_cast<std::size_t>(ctx.lane())];
    acc.lat_sum += ctx.now() - issue_time_[static_cast<std::size_t>(v)];
    ++acc.lat_count;
    ctx.in(config_.service_time, IssueEvent{this, v});
  }

  Topo topo_;
  const ClosedLoopConfig& config_;
  typename Topo::Index index_;
  Time lookahead_;
  Eng eng_;
  std::vector<NodeId> link_;          // element-owned by the node's lane
  std::vector<RequestId> last_req_;   // element-owned by the node's lane
  std::vector<std::int64_t> issued_;  // element-owned by the node's lane
  std::vector<Time> issue_time_;      // element-owned by the node's lane
  std::vector<LaneAccum> accum_;
};

template <typename Topo>
ClosedLoopResult run_loop_sharded(Topo topo, LatencyModel& latency,
                                  const ClosedLoopConfig& config, const ShardSpec& shard,
                                  ParallelStats* par_out) {
  ARROWDQ_ASSERT_MSG(config.requests_per_node >= 0, "requests_per_node must be >= 0");
  ARROWDQ_ASSERT_MSG(!config.fault.has_crash(),
                     "sharded runs do not support crash schedules");
  return with_static_latency(latency, [&](auto lat) {
    return with_fault_filter(config.fault, topo.node_count(), [&](auto filt) {
      using L = decltype(lat);
      using F = decltype(filt);
      SLoopMirror<L, F, Topo> mirror(std::move(topo), std::move(lat), std::move(filt),
                                     config, shard);
      return mirror.run(par_out);
    });
  });
}

// --- arrow one-shot ---------------------------------------------------------

/// Sharded mirror of arrow.cpp's OneShotDriver (fault-free and message-fault
/// paths).
template <typename Latency, typename Faults>
class SArrowMirror {
 public:
  using Eng = ShardedNetSim<ArrowMsg, Latency, MirrorHandler<SArrowMirror>, Faults, Graph>;
  using Ctx = typename Eng::LaneCtx;

  SArrowMirror(const Tree& rooted, const Graph& graph, Latency latency, Faults faults,
               Time service_time, const RequestSet& requests, const FaultSpec& fault,
               QueuingOutcome& out, const ShardSpec& shard)
      : graph_(graph),
        lookahead_(shard.force_lookahead > 0
                       ? shard.force_lookahead
                       : fault_adjusted_floor(sampler_floor(latency, min_edge_weight(graph)),
                                              fault)),
        eng_(graph, std::move(latency), std::move(faults),
             shard.partition(graph.node_count()), lookahead_),
        out_(out),
        link_(static_cast<std::size_t>(graph.node_count()), kNoNode),
        last_req_(static_cast<std::size_t>(graph.node_count()), kNoRequest),
        done_(static_cast<std::size_t>(eng_.lane_count())) {
    const auto n = static_cast<std::size_t>(graph.node_count());
    eng_.reserve(static_cast<std::size_t>(requests.size()) + 2 * n);
    eng_.set_service_time(service_time);
    eng_.set_handler(MirrorHandler<SArrowMirror>{this});
    for (NodeId v = 0; v < graph.node_count(); ++v)
      link_[static_cast<std::size_t>(v)] = v == requests.root() ? v : rooted.parent(v);
    last_req_[static_cast<std::size_t>(requests.root())] = kRootRequest;
    if (graph.node_count() >= 2) (void)graph.find_edge(0, 1);  // warm the lazy index
  }

  ShardedArrowRun finish(const RequestSet& requests) {
    for (const Request& r : requests.real()) eng_.post_initial(r.node, r.time, IssueEvent{this, r});
    eng_.run();
    for (const std::vector<Completion>& lane : done_)
      for (const Completion& c : lane) out_.record(c);
    ARROWDQ_ASSERT_MSG(out_.is_complete(), "arrow did not complete all requests");
    NodeId sink = kNoNode;
    for (NodeId v = 0; v < static_cast<NodeId>(link_.size()); ++v) {
      if (link_[static_cast<std::size_t>(v)] == v) {
        ARROWDQ_ASSERT_MSG(sink == kNoNode, "multiple sinks at quiescence");
        sink = v;
      }
    }
    ARROWDQ_ASSERT_MSG(sink != kNoNode, "no sink at quiescence");
    FaultStats fs;
    if constexpr (Faults::kActive) fs = eng_.faults().stats();
    return ShardedArrowRun{std::move(out_),           std::move(link_), sink,
                           eng_.stats().edge_messages, eng_.makespan(), fs};
  }

  void issue(const Request& r) {
    Ctx ctx = eng_.ctx_of(r.node);
    if constexpr (Faults::kActive) {
      Time up = eng_.faults().defer(r.node, ctx.now());
      if (up != ctx.now()) {
        ctx.at(up, IssueEvent{this, r});
        return;
      }
    }
    NodeId v = r.node;
    auto vi = static_cast<std::size_t>(v);
    if (link_[vi] == v) {
      RequestId pred = last_req_[vi];
      ARROWDQ_ASSERT(pred != kNoRequest);
      last_req_[vi] = r.id;
      done_[static_cast<std::size_t>(ctx.lane())].push_back(
          Completion{r.id, pred, ctx.now(), 0, 0});
      return;
    }
    NodeId target = link_[vi];
    last_req_[vi] = r.id;
    link_[vi] = v;
    ctx.send(v, target, ArrowMsg{r.id, 1, graph_.edge_weight(v, target), 0});
  }

  void receive(Ctx& ctx, NodeId from, NodeId at, const ArrowMsg& msg) {
    auto ui = static_cast<std::size_t>(at);
    NodeId next = link_[ui];
    link_[ui] = from;  // path reversal
    if (next != at) {
      ctx.send(at, next,
               ArrowMsg{msg.req, msg.hops + 1, msg.dist + graph_.edge_weight(at, next), 0});
      return;
    }
    RequestId pred = last_req_[ui];
    ARROWDQ_ASSERT_MSG(pred != kNoRequest, "sink without an id — broken initial state");
    done_[static_cast<std::size_t>(ctx.lane())].push_back(
        Completion{msg.req, pred, ctx.now(), msg.hops, msg.dist});
  }

 private:
  struct IssueEvent {
    SArrowMirror* d;
    Request r;
    void operator()() const { d->issue(r); }
  };

  const Graph& graph_;
  Time lookahead_;
  Eng eng_;
  QueuingOutcome& out_;
  std::vector<NodeId> link_;
  std::vector<RequestId> last_req_;
  std::vector<std::vector<Completion>> done_;  // per-lane completion buffers
};

// --- direct-send baselines --------------------------------------------------

enum class SCentralKind : std::uint8_t { kRequest, kReply };

struct SCentralMsg {
  SCentralKind kind = SCentralKind::kRequest;
  RequestId req = kNoRequest;
  RequestId pred = kNoRequest;
  NodeId requester = kNoNode;
};

/// Sharded mirror of centralized.cpp's OneShot driver.
template <typename Dist, typename Faults>
class SCentralMirror {
 public:
  using Eng =
      ShardedNetSim<SCentralMsg, SyncSampler, MirrorHandler<SCentralMirror>, Faults,
                    DirectOnlyIndex>;
  using Ctx = typename Eng::LaneCtx;

  SCentralMirror(NodeId node_count, const RequestSet& requests, Dist dist, Faults faults,
                 const CentralizedConfig& config, QueuingOutcome& out, const ShardSpec& shard)
      : index_{node_count},
        eng_(index_, SyncSampler{}, std::move(faults), shard.partition(node_count),
             shard.force_lookahead > 0
                 ? shard.force_lookahead
                 : fault_adjusted_floor(dist_floor(dist), config.fault)),
        dist_(dist),
        config_(config),
        out_(out),
        travel_(static_cast<std::size_t>(requests.size()) + 1, 0),
        done_(static_cast<std::size_t>(eng_.lane_count())) {
    ARROWDQ_ASSERT_MSG(config.center >= 0 && config.center < node_count,
                       "center must be a node");
    eng_.reserve(2 * static_cast<std::size_t>(requests.size()) + 2);
    eng_.set_service_time(config.service_time);
    eng_.set_handler(MirrorHandler<SCentralMirror>{this});
  }

  QueuingOutcome run(const RequestSet& requests) {
    const NodeId center = config_.center;
    for (const Request& r : requests.real()) {
      ARROWDQ_ASSERT_MSG(r.node >= 0 && r.node < index_.node_count(),
                         "request from a non-node");
      eng_.post_initial(r.node, r.time, IssueEvent{this, r});
      travel_[static_cast<std::size_t>(r.id)] = ticks_to_units(dist(r.node, center));
    }
    eng_.run();
    for (const std::vector<Completion>& lane : done_)
      for (const Completion& c : lane) out_.record(c);
    if (config_.fault_stats_out != nullptr) {
      if constexpr (Faults::kActive) {
        *config_.fault_stats_out = eng_.faults().stats();
      } else {
        *config_.fault_stats_out = FaultStats{};
      }
    }
    ARROWDQ_ASSERT_MSG(out_.is_complete(),
                       "centralized protocol did not complete all requests");
    return std::move(out_);
  }

  void issue(const Request& r) {
    Ctx ctx = eng_.ctx_of(r.node);
    const NodeId center = config_.center;
    if (r.node == center) {
      RequestId pred = enqueue(r.id);
      done_[static_cast<std::size_t>(ctx.lane())].push_back(
          Completion{r.id, pred, ctx.now(), 0, 0});
      return;
    }
    Time d = dist(r.node, center);
    ctx.send_with_latency(r.node, center, d,
                          SCentralMsg{SCentralKind::kRequest, r.id, kNoRequest, r.node});
  }

  void receive(Ctx& ctx, NodeId /*from*/, NodeId at, const SCentralMsg& m) {
    const NodeId center = config_.center;
    if (m.kind == SCentralKind::kRequest) {
      ARROWDQ_ASSERT(at == center);
      RequestId pred = enqueue(m.req);
      if (m.requester == center) {
        done_[static_cast<std::size_t>(ctx.lane())].push_back(
            Completion{m.req, pred, ctx.now(), /*hops=*/1,
                       static_cast<Weight>(travel_[static_cast<std::size_t>(m.req)])});
      } else {
        ctx.send_with_latency(center, m.requester, dist(center, m.requester),
                              SCentralMsg{SCentralKind::kReply, m.req, pred, m.requester});
      }
    } else {
      done_[static_cast<std::size_t>(ctx.lane())].push_back(
          Completion{m.req, m.pred, ctx.now(), /*hops=*/2,
                     static_cast<Weight>(2 * travel_[static_cast<std::size_t>(m.req)])});
    }
  }

 private:
  struct IssueEvent {
    SCentralMirror* d;
    Request r;
    void operator()() const { d->issue(r); }
  };

  // tail_ is only touched by events executing at the center, i.e. the
  // center's lane — single-writer by construction.
  RequestId enqueue(RequestId req) {
    RequestId pred = tail_;
    tail_ = req;
    return pred;
  }

  Time dist(NodeId u, NodeId v) const { return u == v ? Time{0} : dist_(u, v); }

  DirectOnlyIndex index_;
  Eng eng_;
  Dist dist_;
  const CentralizedConfig& config_;
  QueuingOutcome& out_;
  std::vector<Weight> travel_;  // filled pre-run, read-only while running
  std::vector<std::vector<Completion>> done_;
  RequestId tail_ = kRootRequest;
};

struct SFindMsg {
  RequestId req = kNoRequest;
  NodeId requester = kNoNode;
  std::int32_t hops = 0;
  Weight dist_units = 0;
};

/// Sharded mirror of pointer_forwarding.cpp's one-shot Forwarder.
template <typename Dist, typename Faults>
class SForwardMirror {
 public:
  using Eng = ShardedNetSim<SFindMsg, SyncSampler, MirrorHandler<SForwardMirror>, Faults,
                            DirectOnlyIndex>;
  using Ctx = typename Eng::LaneCtx;

  SForwardMirror(NodeId node_count, const RequestSet& requests, Dist dist, Faults faults,
                 const PointerForwardingConfig& config, QueuingOutcome& out,
                 const ShardSpec& shard)
      : index_{node_count},
        eng_(index_, SyncSampler{}, std::move(faults), shard.partition(node_count),
             shard.force_lookahead > 0
                 ? shard.force_lookahead
                 : fault_adjusted_floor(dist_floor(dist), config.fault)),
        dist_(dist),
        config_(config),
        out_(out),
        hint_(static_cast<std::size_t>(node_count)),
        last_req_(static_cast<std::size_t>(node_count), kNoRequest),
        done_(static_cast<std::size_t>(eng_.lane_count())),
        hop_cap_(8 * node_count + 16) {
    eng_.reserve(2 * static_cast<std::size_t>(requests.size()) + 2);
    eng_.set_service_time(config.service_time);
    eng_.set_handler(MirrorHandler<SForwardMirror>{this});
    for (NodeId v = 0; v < node_count; ++v)
      hint_[static_cast<std::size_t>(v)] = config.initial_owner;
    last_req_[static_cast<std::size_t>(config.initial_owner)] = kRootRequest;
  }

  QueuingOutcome run(const RequestSet& requests) {
    for (const Request& r : requests.real()) {
      ARROWDQ_ASSERT_MSG(r.node >= 0 && r.node < index_.node_count(),
                         "request from a non-node");
      eng_.post_initial(r.node, r.time, IssueEvent{this, r});
    }
    eng_.run();
    for (const std::vector<Completion>& lane : done_)
      for (const Completion& c : lane) out_.record(c);
    if (config_.fault_stats_out != nullptr) {
      if constexpr (Faults::kActive) {
        *config_.fault_stats_out = eng_.faults().stats();
      } else {
        *config_.fault_stats_out = FaultStats{};
      }
    }
    ARROWDQ_ASSERT_MSG(out_.is_complete(),
                       "pointer forwarding did not complete all requests");
    return std::move(out_);
  }

  void issue(const Request& r) {
    Ctx ctx = eng_.ctx_of(r.node);
    auto vi = static_cast<std::size_t>(r.node);
    if (hint_[vi] == r.node) {
      RequestId pred = last_req_[vi];
      ARROWDQ_ASSERT(pred != kNoRequest);
      last_req_[vi] = r.id;
      done_[static_cast<std::size_t>(ctx.lane())].push_back(
          Completion{r.id, pred, ctx.now(), 0, 0});
      return;
    }
    NodeId target = hint_[vi];
    last_req_[vi] = r.id;
    hint_[vi] = r.node;
    Weight leg = ticks_to_units(dist_(r.node, target));
    ctx.send_with_latency(r.node, target, dist_(r.node, target),
                          SFindMsg{r.id, r.node, 1, leg});
  }

  void receive(Ctx& ctx, NodeId from, NodeId at, const SFindMsg& m) {
    ARROWDQ_ASSERT_MSG(m.hops <= hop_cap_, "pointer-forwarding find did not terminate");
    auto ui = static_cast<std::size_t>(at);
    NodeId next = hint_[ui];
    hint_[ui] = config_.mode == ForwardingMode::kCompressToRequester ? m.requester : from;
    if (next == at) {
      RequestId pred = last_req_[ui];
      ARROWDQ_ASSERT(pred != kNoRequest);
      done_[static_cast<std::size_t>(ctx.lane())].push_back(
          Completion{m.req, pred, ctx.now(), m.hops, m.dist_units});
      return;
    }
    Weight leg = ticks_to_units(dist_(at, next));
    ctx.send_with_latency(at, next, dist_(at, next),
                          SFindMsg{m.req, m.requester, m.hops + 1, m.dist_units + leg});
  }

 private:
  struct IssueEvent {
    SForwardMirror* d;
    Request r;
    void operator()() const { d->issue(r); }
  };

  DirectOnlyIndex index_;
  Eng eng_;
  Dist dist_;
  const PointerForwardingConfig& config_;
  QueuingOutcome& out_;
  std::vector<NodeId> hint_;          // element-owned by the node's lane
  std::vector<RequestId> last_req_;   // element-owned by the node's lane
  std::vector<std::vector<Completion>> done_;
  std::int32_t hop_cap_;
};

enum class SFwdLoopKind : std::uint8_t { kFind, kReply };

struct SFwdLoopMsg {
  SFwdLoopKind kind = SFwdLoopKind::kFind;
  RequestId req = kNoRequest;
  NodeId requester = kNoNode;
  std::int32_t hops = 0;
};

/// Sharded mirror of pointer_forwarding.cpp's LoopForwarder.
template <typename Dist, typename Faults>
class SFwdLoopMirror {
 public:
  using Eng = ShardedNetSim<SFwdLoopMsg, SyncSampler, MirrorHandler<SFwdLoopMirror>, Faults,
                            DirectOnlyIndex>;
  using Ctx = typename Eng::LaneCtx;

  SFwdLoopMirror(NodeId node_count, std::int64_t reqs_per_node, Dist dist, Faults faults,
                 const PointerForwardingConfig& config, const ShardSpec& shard)
      : index_{node_count},
        eng_(index_, SyncSampler{}, std::move(faults), shard.partition(node_count),
             shard.force_lookahead > 0
                 ? shard.force_lookahead
                 : fault_adjusted_floor(dist_floor(dist), config.fault)),
        dist_(dist),
        config_(config),
        requests_per_node_(reqs_per_node),
        hint_(static_cast<std::size_t>(node_count)),
        last_req_(static_cast<std::size_t>(node_count), kNoRequest),
        issued_(static_cast<std::size_t>(node_count), 0),
        issue_time_(static_cast<std::size_t>(node_count), 0),
        accum_(static_cast<std::size_t>(eng_.lane_count())),
        hop_cap_(8 * node_count + 16) {
    const auto n = static_cast<std::size_t>(node_count);
    eng_.reserve(4 * n);
    eng_.set_service_time(config.service_time);
    eng_.set_handler(MirrorHandler<SFwdLoopMirror>{this});
    for (NodeId v = 0; v < node_count; ++v)
      hint_[static_cast<std::size_t>(v)] = config.initial_owner;
    last_req_[static_cast<std::size_t>(config.initial_owner)] = kRootRequest;
  }

  ForwardingLoopResult run() {
    for (NodeId v = 0; v < index_.node_count(); ++v)
      eng_.post_initial(v, 0, IssueEvent{this, v});
    eng_.run();
    ForwardingLoopResult res;
    res.makespan = eng_.makespan();
    res.total_requests =
        static_cast<std::int64_t>(index_.node_count()) * requests_per_node_;
    __int128 lat_sum = 0;
    std::int64_t lat_count = 0;
    for (const LaneAccum& a : accum_) {
      res.find_messages += a.find_messages;
      res.reply_messages += a.reply_messages;
      lat_sum += a.lat_sum;
      lat_count += a.lat_count;
    }
    res.avg_hops_per_request =
        res.total_requests == 0
            ? 0.0
            : static_cast<double>(res.find_messages) / static_cast<double>(res.total_requests);
    res.avg_round_latency_units =
        lat_count == 0 ? 0.0
                       : static_cast<double>(lat_sum) / static_cast<double>(lat_count) /
                             static_cast<double>(kTicksPerUnit);
    if constexpr (Faults::kActive) {
      res.messages_dropped = eng_.faults().stats().messages_dropped;
      res.messages_duplicated = eng_.faults().stats().messages_duplicated;
      res.crashes = static_cast<std::int32_t>(eng_.faults().crashes().size());
    }
    return res;
  }

  void issue(NodeId v) {
    Ctx ctx = eng_.ctx_of(v);
    auto vi = static_cast<std::size_t>(v);
    if (issued_[vi] >= requests_per_node_) return;
    ++issued_[vi];
    issue_time_[vi] = ctx.now();
    RequestId a = lane_request_id(ctx.lane(), eng_.lane_count(),
                                  accum_[static_cast<std::size_t>(ctx.lane())]);
    if (hint_[vi] == v) {
      ARROWDQ_ASSERT(last_req_[vi] != kNoRequest);
      last_req_[vi] = a;
      round_done(ctx, v);
      return;
    }
    NodeId target = hint_[vi];
    last_req_[vi] = a;
    hint_[vi] = v;
    ++accum_[static_cast<std::size_t>(ctx.lane())].find_messages;
    ctx.send_with_latency(v, target, dist_(v, target),
                          SFwdLoopMsg{SFwdLoopKind::kFind, a, v, 1});
  }

  void receive(Ctx& ctx, NodeId from, NodeId at, const SFwdLoopMsg& m) {
    if (m.kind == SFwdLoopKind::kReply) {
      round_done(ctx, at);
      return;
    }
    ARROWDQ_ASSERT_MSG(m.hops <= hop_cap_, "pointer-forwarding find did not terminate");
    auto ui = static_cast<std::size_t>(at);
    NodeId next = hint_[ui];
    hint_[ui] = config_.mode == ForwardingMode::kCompressToRequester ? m.requester : from;
    if (next == at) {
      ARROWDQ_ASSERT(last_req_[ui] != kNoRequest);
      if (m.requester == at) {
        round_done(ctx, at);
      } else {
        ++accum_[static_cast<std::size_t>(ctx.lane())].reply_messages;
        ctx.send_with_latency(at, m.requester, dist_(at, m.requester),
                              SFwdLoopMsg{SFwdLoopKind::kReply, last_req_[ui], m.requester, 0});
      }
      return;
    }
    ++accum_[static_cast<std::size_t>(ctx.lane())].find_messages;
    ctx.send_with_latency(at, next, dist_(at, next),
                          SFwdLoopMsg{SFwdLoopKind::kFind, m.req, m.requester, m.hops + 1});
  }

 private:
  struct IssueEvent {
    SFwdLoopMirror* d;
    NodeId v;
    void operator()() const { d->issue(v); }
  };

  void round_done(Ctx& ctx, NodeId v) {
    LaneAccum& acc = accum_[static_cast<std::size_t>(ctx.lane())];
    acc.lat_sum += ctx.now() - issue_time_[static_cast<std::size_t>(v)];
    ++acc.lat_count;
    ctx.in(config_.service_time, IssueEvent{this, v});
  }

  DirectOnlyIndex index_;
  Eng eng_;
  Dist dist_;
  const PointerForwardingConfig& config_;
  std::int64_t requests_per_node_;
  std::vector<NodeId> hint_;
  std::vector<RequestId> last_req_;
  std::vector<std::int64_t> issued_;
  std::vector<Time> issue_time_;
  std::vector<LaneAccum> accum_;
  std::int32_t hop_cap_;
};

}  // namespace

// --- entry points -----------------------------------------------------------

ClosedLoopResult run_arrow_closed_loop_sharded(const Tree& tree, LatencyModel& latency,
                                               const ClosedLoopConfig& config,
                                               const ShardSpec& shard,
                                               ParallelStats* par_out) {
  return run_loop_sharded(SMatLoopTopo{&tree}, latency, config, shard, par_out);
}

ClosedLoopResult run_arrow_closed_loop_implicit_sharded(const ImplicitTopology& topo,
                                                        LatencyModel& latency,
                                                        const ClosedLoopConfig& config,
                                                        const ShardSpec& shard,
                                                        ParallelStats* par_out) {
  ARROWDQ_ASSERT_MSG(config.requests_per_node <= std::numeric_limits<std::int32_t>::max(),
                     "implicit tier keeps 32-bit round counters");
  return run_loop_sharded(SImplLoopTopo{topo}, latency, config, shard, par_out);
}

ShardedArrowRun run_arrow_one_shot_sharded(const Tree& tree, const RequestSet& requests,
                                           LatencyModel& latency, Time service_time,
                                           const FaultSpec& fault, const ShardSpec& shard) {
  ARROWDQ_ASSERT_MSG(requests.root() >= 0 && requests.root() < tree.node_count(),
                     "request root is not a tree node");
  ARROWDQ_ASSERT_MSG(!fault.has_crash(), "sharded runs do not support crash schedules");
  const Tree rooted =
      tree.root() == requests.root() ? tree : tree.rerooted(requests.root());
  const Graph graph = tree.as_graph();
  QueuingOutcome out(requests.size());
  return with_static_latency(latency, [&](auto lat) {
    return with_fault_filter(fault, tree.node_count(), [&](auto filt) {
      using L = decltype(lat);
      using F = decltype(filt);
      SArrowMirror<L, F> mirror(rooted, graph, std::move(lat), std::move(filt), service_time,
                                requests, fault, out, shard);
      return mirror.finish(requests);
    });
  });
}

QueuingOutcome run_centralized_sharded(NodeId node_count, const RequestSet& requests,
                                       const DistTicksFn& dist,
                                       const CentralizedConfig& config,
                                       const ShardSpec& shard) {
  ARROWDQ_ASSERT_MSG(!config.fault.has_crash(), "sharded runs do not support crash schedules");
  QueuingOutcome out(requests.size());
  return with_static_dist(dist, [&](auto oracle) {
    return with_fault_filter(config.fault, node_count, [&](auto filt) {
      using D = decltype(oracle);
      using F = decltype(filt);
      SCentralMirror<D, F> mirror(node_count, requests, oracle, std::move(filt), config, out,
                                  shard);
      return mirror.run(requests);
    });
  });
}

QueuingOutcome run_pointer_forwarding_sharded(NodeId node_count, const RequestSet& requests,
                                              const DistTicksFn& dist,
                                              const PointerForwardingConfig& config,
                                              const ShardSpec& shard) {
  ARROWDQ_ASSERT_MSG(node_count >= 1, "need at least one node");
  ARROWDQ_ASSERT_MSG(config.initial_owner >= 0 && config.initial_owner < node_count,
                     "initial owner must be a node");
  ARROWDQ_ASSERT_MSG(requests.root() == config.initial_owner,
                     "request-set root must equal the initial owner");
  ARROWDQ_ASSERT_MSG(!config.fault.has_crash(), "sharded runs do not support crash schedules");
  QueuingOutcome out(requests.size());
  return with_static_dist(dist, [&](auto oracle) {
    return with_fault_filter(config.fault, node_count, [&](auto filt) {
      using D = decltype(oracle);
      using F = decltype(filt);
      SForwardMirror<D, F> mirror(node_count, requests, oracle, std::move(filt), config, out,
                                  shard);
      return mirror.run(requests);
    });
  });
}

ForwardingLoopResult run_pointer_forwarding_closed_loop_sharded(
    NodeId node_count, std::int64_t requests_per_node, const DistTicksFn& dist,
    const PointerForwardingConfig& config, const ShardSpec& shard) {
  ARROWDQ_ASSERT_MSG(node_count >= 1, "need at least one node");
  ARROWDQ_ASSERT_MSG(requests_per_node >= 0, "requests_per_node must be >= 0");
  ARROWDQ_ASSERT_MSG(config.initial_owner >= 0 && config.initial_owner < node_count,
                     "initial owner must be a node");
  ARROWDQ_ASSERT_MSG(!config.fault.has_crash(), "sharded runs do not support crash schedules");
  return with_static_dist(dist, [&](auto oracle) {
    return with_fault_filter(config.fault, node_count, [&](auto filt) {
      using D = decltype(oracle);
      using F = decltype(filt);
      SFwdLoopMirror<D, F> mirror(node_count, requests_per_node, oracle, std::move(filt),
                                  config, shard);
      return mirror.run();
    });
  });
}

}  // namespace arrowdq
