// Intrusive-free pairing heap keyed by (time, sequence), as an alternative
// to std::priority_queue for the simulator's event queue.
//
// The binary-heap std::priority_queue is the default; this pairing heap has
// O(1) amortized insert (vs O(log n)) which pays off for the bursty insert
// patterns of closed-loop workloads. bench_micro compares both; the
// simulator can be instantiated with either via EventQueue's template
// parameter. The implementation stores nodes in a std::vector pool with
// index links, so it is allocation-free after reserve() and trivially
// destructible. push returns a Handle usable with decrease_key (event
// rescheduling); whole heaps combine via meld.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/types.hpp"

namespace arrowdq {

/// Min-heap over (time, seq) keys with an attached payload T.
template <typename T>
class PairingHeap {
 public:
  struct Key {
    Time t;
    std::uint64_t seq;
    bool operator<(const Key& o) const { return t != o.t ? t < o.t : seq < o.seq; }
  };

  /// Identifies a live element for decrease_key. Valid from push until the
  /// element is popped; absorbing a heap via meld invalidates the absorbed
  /// heap's handles.
  using Handle = std::int32_t;

  bool empty() const { return root_ == kNil; }
  std::size_t size() const { return size_; }

  void reserve(std::size_t n) { nodes_.reserve(n); }

  Handle push(Key key, T value) {
    std::int32_t idx;
    if (free_ != kNil) {
      idx = free_;
      free_ = nodes_[static_cast<std::size_t>(idx)].sibling;
      nodes_[static_cast<std::size_t>(idx)] =
          Node{key, std::move(value), kNil, kNil, kNil};
    } else {
      idx = static_cast<std::int32_t>(nodes_.size());
      nodes_.push_back(Node{key, std::move(value), kNil, kNil, kNil});
    }
    root_ = root_ == kNil ? idx : meld(root_, idx);
    ++size_;
    return idx;
  }

  const Key& key_of(Handle h) const { return nodes_[static_cast<std::size_t>(h)].key; }

  /// Lower the key of a live element. new_key must not exceed the current
  /// key. O(1) amortized: the subtree is cut and melded with the root.
  void decrease_key(Handle h, Key new_key) {
    Node& nd = nodes_[static_cast<std::size_t>(h)];
    ARROWDQ_ASSERT(!(nd.key < new_key));
    nd.key = new_key;
    if (h == root_) return;
    // Cut the subtree rooted at h out of its sibling list.
    std::int32_t p = nd.prev;
    if (nodes_[static_cast<std::size_t>(p)].child == h)
      nodes_[static_cast<std::size_t>(p)].child = nd.sibling;
    else
      nodes_[static_cast<std::size_t>(p)].sibling = nd.sibling;
    if (nd.sibling != kNil) nodes_[static_cast<std::size_t>(nd.sibling)].prev = p;
    nd.sibling = kNil;
    nd.prev = kNil;
    root_ = meld(root_, h);
  }

  /// Absorb every element of `other`, leaving it empty. O(|other| nodes)
  /// pool copy plus one comparison; `other`'s handles are invalidated.
  void meld(PairingHeap&& other) {
    if (other.root_ == kNil) {
      other.clear();
      return;
    }
    if (root_ == kNil) {
      *this = std::move(other);
      other.clear();
      return;
    }
    const auto offset = static_cast<std::int32_t>(nodes_.size());
    nodes_.reserve(nodes_.size() + other.nodes_.size());
    for (Node& n : other.nodes_) {
      if (n.child != kNil) n.child += offset;
      if (n.sibling != kNil) n.sibling += offset;
      if (n.prev != kNil) n.prev += offset;
      nodes_.push_back(std::move(n));
    }
    if (other.free_ != kNil) {
      std::int32_t tail = other.free_ + offset;
      while (nodes_[static_cast<std::size_t>(tail)].sibling != kNil)
        tail = nodes_[static_cast<std::size_t>(tail)].sibling;
      nodes_[static_cast<std::size_t>(tail)].sibling = free_;
      free_ = other.free_ + offset;
    }
    root_ = meld(root_, other.root_ + offset);
    size_ += other.size_;
    other.clear();
  }

  void clear() {
    nodes_.clear();
    root_ = kNil;
    free_ = kNil;
    size_ = 0;
  }

  const Key& top_key() const {
    ARROWDQ_ASSERT(!empty());
    return nodes_[static_cast<std::size_t>(root_)].key;
  }

  /// Removes and returns the minimum element's payload.
  T pop() {
    ARROWDQ_ASSERT(!empty());
    std::int32_t old_root = root_;
    T out = std::move(nodes_[static_cast<std::size_t>(old_root)].value);
    root_ = merge_pairs(nodes_[static_cast<std::size_t>(old_root)].child);
    // Recycle the node.
    nodes_[static_cast<std::size_t>(old_root)].sibling = free_;
    free_ = old_root;
    --size_;
    return out;
  }

 private:
  static constexpr std::int32_t kNil = -1;

  struct Node {
    Key key{};
    T value{};
    std::int32_t child = kNil;
    std::int32_t sibling = kNil;
    // Parent if first child, left sibling otherwise; kNil at the root.
    // Needed so decrease_key can cut a subtree in O(1).
    std::int32_t prev = kNil;
  };

  std::int32_t meld(std::int32_t a, std::int32_t b) {
    if (nodes_[static_cast<std::size_t>(b)].key < nodes_[static_cast<std::size_t>(a)].key)
      std::swap(a, b);
    // b becomes a's first child.
    std::int32_t old_child = nodes_[static_cast<std::size_t>(a)].child;
    nodes_[static_cast<std::size_t>(b)].sibling = old_child;
    if (old_child != kNil) nodes_[static_cast<std::size_t>(old_child)].prev = b;
    nodes_[static_cast<std::size_t>(a)].child = b;
    nodes_[static_cast<std::size_t>(b)].prev = a;
    nodes_[static_cast<std::size_t>(a)].prev = kNil;
    return a;
  }

  std::int32_t merge_pairs(std::int32_t first) {
    // Two-pass pairing, iterative to avoid deep recursion on long sibling
    // lists. Pass 1: meld adjacent pairs left to right. Pass 2: meld the
    // results right to left.
    std::vector<std::int32_t>& melded = scratch_;
    melded.clear();
    while (first != kNil) {
      std::int32_t a = first;
      std::int32_t b = nodes_[static_cast<std::size_t>(a)].sibling;
      if (b == kNil) {
        nodes_[static_cast<std::size_t>(a)].sibling = kNil;
        nodes_[static_cast<std::size_t>(a)].prev = kNil;
        melded.push_back(a);
        break;
      }
      first = nodes_[static_cast<std::size_t>(b)].sibling;
      nodes_[static_cast<std::size_t>(a)].sibling = kNil;
      nodes_[static_cast<std::size_t>(b)].sibling = kNil;
      nodes_[static_cast<std::size_t>(a)].prev = kNil;
      nodes_[static_cast<std::size_t>(b)].prev = kNil;
      melded.push_back(meld(a, b));
    }
    if (melded.empty()) return kNil;
    std::int32_t result = melded.back();
    for (std::size_t i = melded.size() - 1; i-- > 0;) result = meld(melded[i], result);
    return result;
  }

  std::vector<Node> nodes_;
  std::vector<std::int32_t> scratch_;
  std::int32_t root_ = kNil;
  std::int32_t free_ = kNil;
  std::size_t size_ = 0;
};

}  // namespace arrowdq
