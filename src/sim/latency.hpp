// Message latency models.
//
// Synchronous model (Section 3.1): every unit-weight edge delivers in exactly
// one time unit. Asynchronous model (Section 3.8): delays are arbitrary but
// normalized so the slowest message between adjacent nodes takes one unit;
// we provide randomized models whose per-message delay is uniform or
// heavy-tailed within (0, 1] units per unit of edge weight.
#pragma once

#include <cstdint>
#include <memory>

#include "support/random.hpp"
#include "support/types.hpp"

namespace arrowdq {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Latency in ticks for one message across edge (from, to) of the given
  /// weight (in units). Must be >= 1 tick.
  virtual Time sample(NodeId from, NodeId to, Weight weight) = 0;

  /// A human-readable name for benchmark output.
  virtual const char* name() const = 0;
};

/// Synchronous: exactly weight * kTicksPerUnit.
class SynchronousLatency final : public LatencyModel {
 public:
  Time sample(NodeId, NodeId, Weight weight) override;
  const char* name() const override { return "synchronous"; }
};

/// Constant fraction of the synchronous latency (0 < fraction <= 1):
/// models a uniformly fast asynchronous network.
class ScaledLatency final : public LatencyModel {
 public:
  explicit ScaledLatency(double fraction);
  Time sample(NodeId, NodeId, Weight weight) override;
  const char* name() const override { return "scaled"; }

 private:
  double fraction_;
};

/// Uniform in [min_fraction, 1] of the synchronous latency per message.
class UniformAsyncLatency final : public LatencyModel {
 public:
  UniformAsyncLatency(std::uint64_t seed, double min_fraction = 0.05);
  Time sample(NodeId, NodeId, Weight weight) override;
  const char* name() const override { return "uniform-async"; }

 private:
  Rng rng_;
  double min_fraction_;
};

/// Heavy-tailed: latency = clamp(exp-distributed, (0,1]) of synchronous;
/// most messages fast, occasional slow ones — the adversarial flavour of
/// Section 3.8 where the "1" normalization is achieved by the slowest link.
class TruncatedExpLatency final : public LatencyModel {
 public:
  TruncatedExpLatency(std::uint64_t seed, double mean_fraction = 0.3);
  Time sample(NodeId, NodeId, Weight weight) override;
  const char* name() const override { return "trunc-exp"; }

 private:
  Rng rng_;
  double mean_fraction_;
};

std::unique_ptr<LatencyModel> make_synchronous();
std::unique_ptr<LatencyModel> make_scaled(double fraction);
std::unique_ptr<LatencyModel> make_uniform_async(std::uint64_t seed, double min_fraction = 0.05);
std::unique_ptr<LatencyModel> make_truncated_exp(std::uint64_t seed, double mean_fraction = 0.3);

}  // namespace arrowdq
