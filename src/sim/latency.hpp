// Message latency models.
//
// Synchronous model (Section 3.1): every unit-weight edge delivers in exactly
// one time unit. Asynchronous model (Section 3.8): delays are arbitrary but
// normalized so the slowest message between adjacent nodes takes one unit;
// we provide randomized models whose per-message delay is uniform or
// heavy-tailed within (0, 1] units per unit of edge weight.
//
// Two-tier design: the *samplers* (SyncSampler, ScaledSampler, UniformSampler,
// TruncExpSampler) are concrete value types with an inline `operator()` — the
// statically dispatched hot path the Network templates over, with no vtable
// between a send and its latency draw. The classic `LatencyModel` hierarchy
// survives as a thin adapter over the samplers for call sites that need
// runtime polymorphism (configuration, ownership via unique_ptr, bench
// tables); `with_static_latency` bridges the two, dispatching *once per run*
// from a dynamic model to its concrete sampler so the per-message loop never
// sees the vtable again.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>

#include "support/random.hpp"
#include "support/types.hpp"

namespace arrowdq {

namespace detail {
/// fraction of the synchronous latency, floored at one tick.
inline Time fraction_ticks(double fraction, Weight weight) {
  double ticks = fraction * static_cast<double>(units_to_ticks(weight));
  return std::max<Time>(1, static_cast<Time>(std::llround(ticks)));
}
}  // namespace detail

// ---------------------------------------------------------------------------
// Value-type samplers: the statically dispatched tier. Each is a callable
// `Time operator()(NodeId from, NodeId to, Weight weight)` returning >= 1.
// ---------------------------------------------------------------------------

/// Synchronous: exactly weight * kTicksPerUnit.
struct SyncSampler {
  Time operator()(NodeId, NodeId, Weight weight) const { return units_to_ticks(weight); }
  const char* name() const { return "synchronous"; }
};

/// Constant fraction of the synchronous latency (0 < fraction <= 1):
/// models a uniformly fast asynchronous network.
struct ScaledSampler {
  double fraction = 1.0;
  Time operator()(NodeId, NodeId, Weight weight) const {
    return detail::fraction_ticks(fraction, weight);
  }
  const char* name() const { return "scaled"; }
};

/// Uniform in [min_fraction, 1] of the synchronous latency per message.
struct UniformSampler {
  Rng rng;
  double min_fraction = 0.05;
  Time operator()(NodeId, NodeId, Weight weight) {
    return detail::fraction_ticks(rng.next_double(min_fraction, 1.0), weight);
  }
  const char* name() const { return "uniform-async"; }
};

/// Heavy-tailed: latency = clamp(exp-distributed, (0,1]) of synchronous;
/// most messages fast, occasional slow ones — the adversarial flavour of
/// Section 3.8 where the "1" normalization is achieved by the slowest link.
struct TruncExpSampler {
  Rng rng;
  double mean_fraction = 0.3;
  Time operator()(NodeId, NodeId, Weight weight) {
    double f = std::min(1.0, rng.next_exponential(1.0 / mean_fraction));
    return detail::fraction_ticks(f, weight);
  }
  const char* name() const { return "trunc-exp"; }
};

/// Non-owning handle to a sampler living elsewhere (typically inside a
/// LatencyModel adapter): keeps the RNG state shared with the owner while
/// the call itself stays direct and inlinable.
template <typename S>
struct SamplerRef {
  S* sampler = nullptr;
  Time operator()(NodeId from, NodeId to, Weight weight) {
    return (*sampler)(from, to, weight);
  }
  const char* name() const { return sampler->name(); }
};

// ---------------------------------------------------------------------------
// Dynamic tier: the LatencyModel hierarchy, now a thin adapter.
// ---------------------------------------------------------------------------

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Latency in ticks for one message across edge (from, to) of the given
  /// weight (in units). Must be >= 1 tick.
  virtual Time sample(NodeId from, NodeId to, Weight weight) = 0;

  /// A human-readable name for benchmark output.
  virtual const char* name() const = 0;
};

/// Fallback sampler for unknown LatencyModel subclasses: pays the vtable on
/// every draw. Implicitly constructible from a model reference so legacy
/// `Network<M>(graph, sim, model)` call sites keep compiling unchanged.
struct VirtualSampler {
  LatencyModel* model = nullptr;
  VirtualSampler() = default;
  VirtualSampler(LatencyModel& m) : model(&m) {}  // NOLINT(google-explicit-constructor)
  Time operator()(NodeId from, NodeId to, Weight weight) {
    return model->sample(from, to, weight);
  }
  const char* name() const { return model->name(); }
};

class SynchronousLatency final : public LatencyModel {
 public:
  Time sample(NodeId from, NodeId to, Weight weight) override { return s_(from, to, weight); }
  const char* name() const override { return s_.name(); }
  SyncSampler& sampler() { return s_; }

 private:
  SyncSampler s_;
};

class ScaledLatency final : public LatencyModel {
 public:
  explicit ScaledLatency(double fraction);
  Time sample(NodeId from, NodeId to, Weight weight) override { return s_(from, to, weight); }
  const char* name() const override { return s_.name(); }
  ScaledSampler& sampler() { return s_; }

 private:
  ScaledSampler s_;
};

class UniformAsyncLatency final : public LatencyModel {
 public:
  UniformAsyncLatency(std::uint64_t seed, double min_fraction = 0.05);
  Time sample(NodeId from, NodeId to, Weight weight) override { return s_(from, to, weight); }
  const char* name() const override { return s_.name(); }
  UniformSampler& sampler() { return s_; }

 private:
  UniformSampler s_;
};

class TruncatedExpLatency final : public LatencyModel {
 public:
  TruncatedExpLatency(std::uint64_t seed, double mean_fraction = 0.3);
  Time sample(NodeId from, NodeId to, Weight weight) override { return s_(from, to, weight); }
  const char* name() const override { return s_.name(); }
  TruncExpSampler& sampler() { return s_; }

 private:
  TruncExpSampler s_;
};

std::unique_ptr<LatencyModel> make_synchronous();
std::unique_ptr<LatencyModel> make_scaled(double fraction);
std::unique_ptr<LatencyModel> make_uniform_async(std::uint64_t seed, double min_fraction = 0.05);
std::unique_ptr<LatencyModel> make_truncated_exp(std::uint64_t seed, double mean_fraction = 0.3);

/// One-time static dispatch: invoke `fn` with the concrete sampler behind
/// `model` (state shared with the model, stateless kinds passed by value),
/// or with a VirtualSampler for subclasses this header does not know. The
/// cost of the dynamic_cast chain is paid once per *run*, not per message —
/// callers templated on the sampler type then sample with a direct call.
template <typename Fn>
decltype(auto) with_static_latency(LatencyModel& model, Fn&& fn) {
  if (auto* p = dynamic_cast<SynchronousLatency*>(&model)) return fn(p->sampler());
  if (auto* p = dynamic_cast<ScaledLatency*>(&model)) return fn(p->sampler());
  if (auto* p = dynamic_cast<UniformAsyncLatency*>(&model))
    return fn(SamplerRef<UniformSampler>{&p->sampler()});
  if (auto* p = dynamic_cast<TruncatedExpLatency*>(&model))
    return fn(SamplerRef<TruncExpSampler>{&p->sampler()});
  return fn(VirtualSampler{model});
}

}  // namespace arrowdq
