// Pairwise latency oracles for the complete-communication-graph baselines
// (centralized, pointer forwarding), mirroring the two-tier latency design
// of sim/latency.hpp.
//
// The *oracles* (UnitDist, ApspDist) are concrete value types with an inline
// `operator()` — the statically dispatched tier the baseline drivers
// template over, so the per-message distance draw is a direct, inlinable
// call. The classic `DistTicksFn` (std::function) survives as the dynamic
// tier for configuration and legacy call sites; `with_static_dist` bridges
// the two *once per run* by probing the std::function's stored target
// (unit_dist_fn / apsp_dist_fn wrap exactly these oracle types), falling
// back to a FnDist adapter — which pays the type-erased call per message —
// only for caller-supplied closures.
#pragma once

#include <functional>

#include "graph/shortest_paths.hpp"
#include "support/types.hpp"

namespace arrowdq {

/// Dynamic-tier pairwise latency oracle in ticks.
using DistTicksFn = std::function<Time(NodeId, NodeId)>;

/// Complete-graph oracle: one unit between any two distinct nodes (the
/// Section 5 SP2 setup).
struct UnitDist {
  Time operator()(NodeId u, NodeId v) const { return u == v ? Time{0} : kTicksPerUnit; }
  const char* name() const { return "unit"; }
};

/// dG-based oracle over a precomputed APSP (must outlive the oracle).
struct ApspDist {
  const AllPairs* apsp = nullptr;
  Time operator()(NodeId u, NodeId v) const { return units_to_ticks(apsp->dist(u, v)); }
  const char* name() const { return "apsp"; }
};

/// Fallback oracle for arbitrary DistTicksFn closures: pays the type-erased
/// call on every draw. The referenced function must outlive the oracle.
struct FnDist {
  const DistTicksFn* fn = nullptr;
  Time operator()(NodeId u, NodeId v) const { return (*fn)(u, v); }
  const char* name() const { return "fn"; }
};

/// dG-based oracle from a precomputed APSP (must outlive the returned fn).
DistTicksFn apsp_dist_fn(const AllPairs& apsp);

/// Complete-graph oracle: one unit between any two distinct nodes.
DistTicksFn unit_dist_fn();

/// One-time static dispatch: invoke `fn` with the concrete oracle stored in
/// `dist` (unit_dist_fn and apsp_dist_fn wrap UnitDist/ApspDist, recovered
/// via std::function::target), or with a FnDist adapter for anything else.
/// The probe runs once per *run*; callers templated on the oracle type then
/// draw distances with a direct call per message.
template <typename Fn>
decltype(auto) with_static_dist(const DistTicksFn& dist, Fn&& fn) {
  if (const UnitDist* p = dist.target<UnitDist>()) return fn(*p);
  if (const ApspDist* p = dist.target<ApspDist>()) return fn(*p);
  return fn(FnDist{&dist});
}

}  // namespace arrowdq
