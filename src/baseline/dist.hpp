// Pairwise latency oracles for the complete-communication-graph baselines
// (centralized, pointer forwarding), mirroring the two-tier latency design
// of sim/latency.hpp.
//
// The *oracles* (UnitDist, ApspDist) are concrete value types with an inline
// `operator()` — the statically dispatched tier the baseline drivers
// template over, so the per-message distance draw is a direct, inlinable
// call. The classic `DistTicksFn` (std::function) survives as the dynamic
// tier for configuration and legacy call sites; `with_static_dist` bridges
// the two *once per run* by probing the std::function's stored target
// (unit_dist_fn / apsp_dist_fn wrap exactly these oracle types), falling
// back to a FnDist adapter — which pays the type-erased call per message —
// only for caller-supplied closures.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>

#include "graph/shortest_paths.hpp"
#include "support/types.hpp"

namespace arrowdq {

/// Dynamic-tier pairwise latency oracle in ticks.
using DistTicksFn = std::function<Time(NodeId, NodeId)>;

/// Complete-graph oracle: one unit between any two distinct nodes (the
/// Section 5 SP2 setup).
struct UnitDist {
  Time operator()(NodeId u, NodeId v) const { return u == v ? Time{0} : kTicksPerUnit; }
  const char* name() const { return "unit"; }
};

/// dG-based oracle over a precomputed APSP (must outlive the oracle).
struct ApspDist {
  const AllPairs* apsp = nullptr;
  Time operator()(NodeId u, NodeId v) const { return units_to_ticks(apsp->dist(u, v)); }
  const char* name() const { return "apsp"; }
};

/// Fallback oracle for arbitrary DistTicksFn closures: pays the type-erased
/// call on every draw. The referenced function must outlive the oracle.
struct FnDist {
  const DistTicksFn* fn = nullptr;
  Time operator()(NodeId u, NodeId v) const { return (*fn)(u, v); }
  const char* name() const { return "fn"; }
};

// --- Closed-form oracles for the structured topology families --------------
//
// On path/ring/grid/torus/hypercube the graph distance is a formula of the
// node ids, so the baselines can draw dG without an O(n^2) APSP table — the
// piece that capped single runs in the tens of thousands of nodes. Each
// oracle mirrors the node numbering of the corresponding generator in
// graph/generators.cpp (unit edge weights); tests/scale_test.cpp pins every
// one bit-identical to ApspDist on the materialized graph at small n.

/// Line 0 - 1 - ... - n-1: dG(u, v) = |u - v|.
struct PathDist {
  Weight units(NodeId u, NodeId v) const {
    return static_cast<Weight>(u < v ? v - u : u - v);
  }
  Time operator()(NodeId u, NodeId v) const { return units_to_ticks(units(u, v)); }
  const char* name() const { return "path"; }
};

/// Cycle on n nodes: dG(u, v) = min(|u - v|, n - |u - v|).
struct RingDist {
  NodeId n = 0;
  Weight units(NodeId u, NodeId v) const {
    const NodeId d = u < v ? v - u : u - v;
    return static_cast<Weight>(std::min(d, n - d));
  }
  Time operator()(NodeId u, NodeId v) const { return units_to_ticks(units(u, v)); }
  const char* name() const { return "ring"; }
};

/// rows x cols mesh, node v at (v / cols, v % cols): Manhattan distance.
struct GridDist {
  NodeId cols = 0;
  Weight units(NodeId u, NodeId v) const {
    const NodeId ru = u / cols, cu = u % cols;
    const NodeId rv = v / cols, cv = v % cols;
    return static_cast<Weight>((ru < rv ? rv - ru : ru - rv) +
                               (cu < cv ? cv - cu : cu - cv));
  }
  Time operator()(NodeId u, NodeId v) const { return units_to_ticks(units(u, v)); }
  const char* name() const { return "grid"; }
};

/// rows x cols torus: per-axis wrap-around minimum, summed.
struct TorusDist {
  NodeId rows = 0;
  NodeId cols = 0;
  static NodeId axis(NodeId a, NodeId b, NodeId extent) {
    const NodeId d = a < b ? b - a : a - b;
    return std::min(d, extent - d);
  }
  Weight units(NodeId u, NodeId v) const {
    return static_cast<Weight>(axis(u / cols, v / cols, rows) +
                               axis(u % cols, v % cols, cols));
  }
  Time operator()(NodeId u, NodeId v) const { return units_to_ticks(units(u, v)); }
  const char* name() const { return "torus"; }
};

/// 2^dims-node hypercube: Hamming distance of the labels.
struct HypercubeDist {
  Weight units(NodeId u, NodeId v) const {
    return static_cast<Weight>(std::popcount(static_cast<std::uint32_t>(u ^ v)));
  }
  Time operator()(NodeId u, NodeId v) const { return units_to_ticks(units(u, v)); }
  const char* name() const { return "hypercube"; }
};

/// dG-based oracle from a precomputed APSP (must outlive the returned fn).
DistTicksFn apsp_dist_fn(const AllPairs& apsp);

/// Complete-graph oracle: one unit between any two distinct nodes.
DistTicksFn unit_dist_fn();

/// One-time static dispatch: invoke `fn` with the concrete oracle stored in
/// `dist` (unit_dist_fn and apsp_dist_fn wrap UnitDist/ApspDist, recovered
/// via std::function::target), or with a FnDist adapter for anything else.
/// The probe runs once per *run*; callers templated on the oracle type then
/// draw distances with a direct call per message.
template <typename Fn>
decltype(auto) with_static_dist(const DistTicksFn& dist, Fn&& fn) {
  if (const UnitDist* p = dist.target<UnitDist>()) return fn(*p);
  if (const ApspDist* p = dist.target<ApspDist>()) return fn(*p);
  if (const PathDist* p = dist.target<PathDist>()) return fn(*p);
  if (const RingDist* p = dist.target<RingDist>()) return fn(*p);
  if (const GridDist* p = dist.target<GridDist>()) return fn(*p);
  if (const TorusDist* p = dist.target<TorusDist>()) return fn(*p);
  if (const HypercubeDist* p = dist.target<HypercubeDist>()) return fn(*p);
  return fn(FnDist{&dist});
}

}  // namespace arrowdq
