// Pointer-forwarding queuing protocols on a complete communication graph:
// the Naimi-Trehel-Arnold (NTA) / Li-Hudak Ivy family discussed in the
// paper's related-work section.
//
// Unlike arrow, these protocols assume a completely connected network: a
// node's pointer may name *any* node, and a find message hops directly
// between arbitrary nodes. Two pointer-update rules are provided:
//
//  * kCompressToRequester ("Ivy/NTA"): every node visited by find(a, v)
//    redirects its pointer straight to the requester v — the "path
//    shortcutting" for which Ginat, Sleator and Tarjan proved an amortized
//    Θ(log n) bound on pointer chases per request.
//
//  * kReverseToSender ("arrow-without-a-tree"): each visited node points
//    back at the hop predecessor, i.e. plain path reversal. This ablation
//    shows the compression is what buys the logarithmic behaviour.
#pragma once

#include <cstdint>

#include "baseline/dist.hpp"
#include "proto/queuing.hpp"
#include "proto/request.hpp"
#include "sim/fault.hpp"
#include "support/types.hpp"

namespace arrowdq {

enum class ForwardingMode : std::uint8_t {
  kCompressToRequester,
  kReverseToSender,
};

struct PointerForwardingConfig {
  ForwardingMode mode = ForwardingMode::kCompressToRequester;
  Time service_time = 0;
  /// Initial owner (all pointers initially lead here), default node 0.
  NodeId initial_owner = 0;
  /// Fault schedule (default: none). Graceful degradation only: message
  /// faults delay delivery, crash windows defer deliveries to the victim
  /// until it recovers; the pointer state itself is not corrupted (only the
  /// arrow drivers model state recovery).
  FaultSpec fault;
  /// Optional out-param: filled with drop/duplicate counts after a one-shot
  /// run when a fault schedule is active (the loop result carries its own).
  FaultStats* fault_stats_out = nullptr;
};

/// One-shot execution on `node_count` nodes with pairwise latency `dist`.
/// Completion per Definition 3.2: recorded when the find message reaches the
/// node holding the predecessor request.
///
/// The oracle template is the statically dispatched tier, explicitly
/// instantiated in pointer_forwarding.cpp for every concrete oracle type in
/// dist.hpp; the DistTicksFn overload probes for a wrapped oracle once per
/// run (with_static_dist) and otherwise pays the type-erased call per
/// message.
template <typename Dist>
QueuingOutcome run_pointer_forwarding(NodeId node_count, const RequestSet& requests,
                                      Dist dist, const PointerForwardingConfig& config);
QueuingOutcome run_pointer_forwarding(NodeId node_count, const RequestSet& requests,
                                      const DistTicksFn& dist,
                                      const PointerForwardingConfig& config);

struct ForwardingLoopResult {
  Time makespan = 0;                  // ticks until every node finished its rounds
  std::int64_t total_requests = 0;
  std::uint64_t find_messages = 0;    // pointer-chase hops
  std::uint64_t reply_messages = 0;   // predecessor-identity replies
  double avg_hops_per_request = 0.0;  // find legs per request
  double avg_round_latency_units = 0.0;  // mean issue->reply time per request
  // Degradation metrics (all zero fault-free).
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::int32_t crashes = 0;
  std::uint64_t partition_backlog = 0;  // sends the filter queued at a cut
};

/// Closed-loop driver matching run_arrow_closed_loop's measurement: every
/// node performs `requests_per_node` rounds; when a find reaches the node
/// holding the predecessor request, that node returns the predecessor's
/// identity to the requester as a direct message (latency dG), and the
/// requester issues its next request one service interval after the reply
/// arrives. A request finding the predecessor locally completes with a
/// zero-latency local reply, exactly like the arrow loop. Same
/// oracle-dispatch scheme as run_pointer_forwarding.
template <typename Dist>
ForwardingLoopResult run_pointer_forwarding_closed_loop(NodeId node_count,
                                                        std::int64_t requests_per_node,
                                                        Dist dist,
                                                        const PointerForwardingConfig& config);
ForwardingLoopResult run_pointer_forwarding_closed_loop(NodeId node_count,
                                                        std::int64_t requests_per_node,
                                                        const DistTicksFn& dist,
                                                        const PointerForwardingConfig& config);

}  // namespace arrowdq
