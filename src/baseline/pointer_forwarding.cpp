#include "baseline/pointer_forwarding.hpp"

#include <vector>

#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"
#include "support/stats.hpp"

namespace arrowdq {

namespace {

struct FindMsg {
  RequestId req = kNoRequest;
  NodeId requester = kNoNode;
  std::int32_t hops = 0;
  Weight dist_units = 0;
};

template <typename Dist, typename Faults>
struct Forwarder;

template <typename Dist, typename Faults>
struct ForwardHandler {
  Forwarder<Dist, Faults>* d = nullptr;
  inline void operator()(NodeId from, NodeId at, const FindMsg& m) const;
};

/// Driver state: pointer hints plus the typed-handler network. Only
/// send_with_latency is used (arbitrary node pairs on the complete
/// communication graph), so the sampler is a stateless placeholder; the
/// distance oracle is a value type, so the standard unit/APSP draws are
/// direct calls (no std::function on the run path). The Faults parameter
/// mirrors the arrow drivers: the fault branch compiles out under NoFaults.
template <typename Dist, typename Faults>
struct Forwarder {
  Graph placeholder;
  Simulator sim;
  Network<FindMsg, SyncSampler, ForwardHandler<Dist, Faults>, Faults> net;
  Dist dist;
  const PointerForwardingConfig& config;
  QueuingOutcome& out;
  std::vector<NodeId> hint;
  std::vector<RequestId> last_req;
  std::int32_t hop_cap;

  Forwarder(NodeId node_count, const RequestSet& requests, Dist dist_fn, Faults faults,
            const PointerForwardingConfig& cfg, QueuingOutcome& out_ref)
      : placeholder(make_path(node_count)),
        net(placeholder, sim, SyncSampler{}, std::move(faults)),
        dist(dist_fn),
        config(cfg),
        out(out_ref),
        hint(static_cast<std::size_t>(node_count)),
        last_req(static_cast<std::size_t>(node_count), kNoRequest),
        // A single find visits each node at most a few times even under
        // heavy concurrency; this cap only exists to turn a protocol bug
        // into a loud failure instead of a hang.
        hop_cap(8 * node_count + 16) {
    sim.reserve(2 * static_cast<std::size_t>(requests.size()) + 2);
    net.reserve_messages(static_cast<std::size_t>(requests.size()) + 1);
    net.set_service_time(cfg.service_time);
    for (NodeId v = 0; v < node_count; ++v)
      hint[static_cast<std::size_t>(v)] = cfg.initial_owner;
    last_req[static_cast<std::size_t>(cfg.initial_owner)] = kRootRequest;
  }

  struct IssueEvent {
    Forwarder* d;
    Request r;
    void operator()() const { d->issue(r); }
  };
  static_assert(Simulator::template fits_inline_v<IssueEvent>,
                "IssueEvent must stay on the simulator's inline path");

  void issue(const Request& r) {
    auto vi = static_cast<std::size_t>(r.node);
    if (hint[vi] == r.node) {
      RequestId pred = last_req[vi];
      ARROWDQ_ASSERT(pred != kNoRequest);
      last_req[vi] = r.id;
      out.record(Completion{r.id, pred, sim.now(), 0, 0});
      return;
    }
    NodeId target = hint[vi];
    last_req[vi] = r.id;
    hint[vi] = r.node;
    Weight leg = ticks_to_units(dist(r.node, target));
    net.send_with_latency(r.node, target, dist(r.node, target), FindMsg{r.id, r.node, 1, leg});
  }

  void handle(NodeId from, NodeId at, const FindMsg& m) {
    ARROWDQ_ASSERT_MSG(m.hops <= hop_cap, "pointer-forwarding find did not terminate");
    auto ui = static_cast<std::size_t>(at);
    NodeId next = hint[ui];
    hint[ui] = config.mode == ForwardingMode::kCompressToRequester ? m.requester : from;
    if (next == at) {
      RequestId pred = last_req[ui];
      ARROWDQ_ASSERT(pred != kNoRequest);
      out.record(Completion{m.req, pred, sim.now(), m.hops, m.dist_units});
      return;
    }
    Weight leg = ticks_to_units(dist(at, next));
    net.send_with_latency(at, next, dist(at, next),
                          FindMsg{m.req, m.requester, m.hops + 1, m.dist_units + leg});
  }
};

template <typename Dist, typename Faults>
inline void ForwardHandler<Dist, Faults>::operator()(NodeId from, NodeId at,
                                                     const FindMsg& m) const {
  d->handle(from, at, m);
}

template <typename Dist>
QueuingOutcome run_pointer_forwarding_impl(NodeId node_count, const RequestSet& requests,
                                           Dist dist, const PointerForwardingConfig& config) {
  ARROWDQ_ASSERT_MSG(node_count >= 1, "need at least one node");
  ARROWDQ_ASSERT_MSG(config.initial_owner >= 0 && config.initial_owner < node_count,
                     "initial owner must be a node");
  ARROWDQ_ASSERT_MSG(requests.root() == config.initial_owner,
                     "request-set root must equal the initial owner");

  QueuingOutcome out(requests.size());
  with_fault_filter(config.fault, node_count, [&](auto filt) {
    using F = decltype(filt);
    Forwarder<Dist, F> driver(node_count, requests, dist, std::move(filt), config, out);
    driver.net.set_handler(ForwardHandler<Dist, F>{&driver});
    for (const Request& r : requests.real()) {
      ARROWDQ_ASSERT_MSG(r.node >= 0 && r.node < node_count, "request from a non-node");
      driver.sim.at(r.time, typename Forwarder<Dist, F>::IssueEvent{&driver, r});
    }
    driver.sim.run();
    if constexpr (F::kActive) {
      if (config.fault_stats_out != nullptr) *config.fault_stats_out = driver.net.faults().stats();
    } else {
      if (config.fault_stats_out != nullptr) *config.fault_stats_out = FaultStats{};
    }
  });
  ARROWDQ_ASSERT_MSG(out.is_complete(), "pointer forwarding did not complete all requests");
  return out;
}

// --- closed loop ------------------------------------------------------------

enum class LoopKind : std::uint8_t { kFind, kReply };

struct LoopMsg {
  LoopKind kind = LoopKind::kFind;
  RequestId req = kNoRequest;
  NodeId requester = kNoNode;
  std::int32_t hops = 0;
};

template <typename Dist, typename Faults>
struct LoopForwarder;

template <typename Dist, typename Faults>
struct LoopForwardHandler {
  LoopForwarder<Dist, Faults>* d = nullptr;
  inline void operator()(NodeId from, NodeId at, const LoopMsg& m) const;
};

/// Closed-loop pointer forwarding: the hint/last_req core is the one-shot
/// Forwarder's, the round structure (one outstanding request per node,
/// re-issue one service interval after the predecessor identity arrives)
/// mirrors the arrow closed-loop Driver. The reply is a direct message with
/// latency dG(owner, requester); a locally satisfied request replies with
/// zero latency, exactly like the arrow loop's local case.
template <typename Dist, typename Faults>
struct LoopForwarder {
  Graph placeholder;
  Simulator sim;
  Network<LoopMsg, SyncSampler, LoopForwardHandler<Dist, Faults>, Faults> net;
  Dist dist;
  const PointerForwardingConfig& config;
  std::int64_t requests_per_node;
  std::vector<NodeId> hint;
  std::vector<RequestId> last_req;
  std::vector<std::int64_t> issued;
  std::vector<Time> issue_time;
  // Exact integer latency sum (not a Welford accumulator): integer addition
  // is order-free, so the sharded engine's per-lane sums reproduce this
  // average bit for bit for any shard count.
  __int128 latency_sum = 0;
  std::int64_t latency_count = 0;
  std::uint64_t find_messages = 0;
  std::uint64_t reply_messages = 0;
  RequestId next_id = kRootRequest;
  std::int32_t hop_cap;

  LoopForwarder(NodeId node_count, std::int64_t reqs_per_node, Dist dist_fn, Faults faults,
                const PointerForwardingConfig& cfg)
      : placeholder(make_path(node_count)),
        net(placeholder, sim, SyncSampler{}, std::move(faults)),
        dist(dist_fn),
        config(cfg),
        requests_per_node(reqs_per_node),
        hint(static_cast<std::size_t>(node_count)),
        last_req(static_cast<std::size_t>(node_count), kNoRequest),
        issued(static_cast<std::size_t>(node_count), 0),
        issue_time(static_cast<std::size_t>(node_count), 0),
        hop_cap(8 * node_count + 16) {
    // One outstanding request per node bounds pending events/messages to O(n).
    const auto n = static_cast<std::size_t>(node_count);
    sim.reserve(4 * n);
    net.reserve_messages(2 * n);
    net.set_service_time(cfg.service_time);
    for (NodeId v = 0; v < node_count; ++v)
      hint[static_cast<std::size_t>(v)] = cfg.initial_owner;
    last_req[static_cast<std::size_t>(cfg.initial_owner)] = kRootRequest;
  }

  struct IssueEvent {
    LoopForwarder* d;
    NodeId v;
    void operator()() const { d->issue(v); }
  };
  static_assert(Simulator::template fits_inline_v<IssueEvent>,
                "IssueEvent must stay on the simulator's inline path");

  void issue(NodeId v) {
    auto vi = static_cast<std::size_t>(v);
    if (issued[vi] >= requests_per_node) return;
    ++issued[vi];
    issue_time[vi] = sim.now();
    RequestId a = ++next_id;
    if (hint[vi] == v) {
      ARROWDQ_ASSERT(last_req[vi] != kNoRequest);
      last_req[vi] = a;
      round_done(v);  // predecessor found locally: the reply is local too
      return;
    }
    NodeId target = hint[vi];
    last_req[vi] = a;
    hint[vi] = v;
    ++find_messages;
    net.send_with_latency(v, target, dist(v, target), LoopMsg{LoopKind::kFind, a, v, 1});
  }

  void handle(NodeId from, NodeId at, const LoopMsg& m) {
    if (m.kind == LoopKind::kReply) {
      round_done(at);
      return;
    }
    ARROWDQ_ASSERT_MSG(m.hops <= hop_cap, "pointer-forwarding find did not terminate");
    auto ui = static_cast<std::size_t>(at);
    NodeId next = hint[ui];
    hint[ui] = config.mode == ForwardingMode::kCompressToRequester ? m.requester : from;
    if (next == at) {
      // Owner found; return the predecessor identity to the requester (the
      // reply's req field carries last_req, not the requester's own id —
      // it is what the requester "learns", though only the arrival instant
      // drives the round structure).
      ARROWDQ_ASSERT(last_req[ui] != kNoRequest);
      if (m.requester == at) {
        round_done(at);
      } else {
        ++reply_messages;
        net.send_with_latency(at, m.requester, dist(at, m.requester),
                              LoopMsg{LoopKind::kReply, last_req[ui], m.requester, 0});
      }
      return;
    }
    ++find_messages;
    net.send_with_latency(at, next, dist(at, next),
                          LoopMsg{LoopKind::kFind, m.req, m.requester, m.hops + 1});
  }

  void round_done(NodeId v) {
    latency_sum += sim.now() - issue_time[static_cast<std::size_t>(v)];
    ++latency_count;
    // Re-issue through the event loop: preparing the next request costs one
    // service interval of local CPU time (same rule as the arrow loop).
    sim.in(config.service_time, IssueEvent{this, v});
  }
};

template <typename Dist, typename Faults>
inline void LoopForwardHandler<Dist, Faults>::operator()(NodeId from, NodeId at,
                                                         const LoopMsg& m) const {
  d->handle(from, at, m);
}

template <typename Dist>
ForwardingLoopResult run_pointer_forwarding_closed_loop_impl(
    NodeId node_count, std::int64_t requests_per_node, Dist dist,
    const PointerForwardingConfig& config) {
  ARROWDQ_ASSERT_MSG(node_count >= 1, "need at least one node");
  ARROWDQ_ASSERT_MSG(requests_per_node >= 0, "requests_per_node must be >= 0");
  ARROWDQ_ASSERT_MSG(config.initial_owner >= 0 && config.initial_owner < node_count,
                     "initial owner must be a node");

  return with_fault_filter(config.fault, node_count, [&](auto filt) {
    using F = decltype(filt);
    LoopForwarder<Dist, F> driver(node_count, requests_per_node, dist, std::move(filt), config);
    driver.net.set_handler(LoopForwardHandler<Dist, F>{&driver});
    for (NodeId v = 0; v < node_count; ++v)
      driver.sim.at(0, typename LoopForwarder<Dist, F>::IssueEvent{&driver, v});
    driver.sim.run();

    ForwardingLoopResult res;
    res.makespan = driver.sim.now();
    res.total_requests = static_cast<std::int64_t>(node_count) * requests_per_node;
    res.find_messages = driver.find_messages;
    res.reply_messages = driver.reply_messages;
    res.avg_hops_per_request =
        res.total_requests == 0
            ? 0.0
            : static_cast<double>(res.find_messages) / static_cast<double>(res.total_requests);
    res.avg_round_latency_units =
        driver.latency_count == 0 ? 0.0
                                  : static_cast<double>(driver.latency_sum) /
                                        static_cast<double>(driver.latency_count) /
                                        static_cast<double>(kTicksPerUnit);
    if constexpr (F::kActive) {
      res.messages_dropped = driver.net.faults().stats().messages_dropped;
      res.messages_duplicated = driver.net.faults().stats().messages_duplicated;
      res.crashes = static_cast<std::int32_t>(driver.net.faults().crashes().size());
      res.partition_backlog = driver.net.faults().stats().partition_deferred;
    }
    return res;
  });
}

}  // namespace

template <typename Dist>
QueuingOutcome run_pointer_forwarding(NodeId node_count, const RequestSet& requests,
                                      Dist dist, const PointerForwardingConfig& config) {
  return run_pointer_forwarding_impl(node_count, requests, dist, config);
}

QueuingOutcome run_pointer_forwarding(NodeId node_count, const RequestSet& requests,
                                      const DistTicksFn& dist,
                                      const PointerForwardingConfig& config) {
  return with_static_dist(dist, [&](auto oracle) {
    return run_pointer_forwarding_impl(node_count, requests, oracle, config);
  });
}

template <typename Dist>
ForwardingLoopResult run_pointer_forwarding_closed_loop(NodeId node_count,
                                                        std::int64_t requests_per_node,
                                                        Dist dist,
                                                        const PointerForwardingConfig& config) {
  return run_pointer_forwarding_closed_loop_impl(node_count, requests_per_node, dist, config);
}

ForwardingLoopResult run_pointer_forwarding_closed_loop(NodeId node_count,
                                                        std::int64_t requests_per_node,
                                                        const DistTicksFn& dist,
                                                        const PointerForwardingConfig& config) {
  return with_static_dist(dist, [&](auto oracle) {
    return run_pointer_forwarding_closed_loop_impl(node_count, requests_per_node, oracle,
                                                   config);
  });
}

// One explicit instantiation per concrete oracle in dist.hpp (see
// centralized.cpp for the rationale).
#define ARROWDQ_FORWARDING_INSTANTIATE(Dist)                                            \
  template QueuingOutcome run_pointer_forwarding<Dist>(NodeId, const RequestSet&, Dist, \
                                                       const PointerForwardingConfig&); \
  template ForwardingLoopResult run_pointer_forwarding_closed_loop<Dist>(               \
      NodeId, std::int64_t, Dist, const PointerForwardingConfig&)
ARROWDQ_FORWARDING_INSTANTIATE(UnitDist);
ARROWDQ_FORWARDING_INSTANTIATE(ApspDist);
ARROWDQ_FORWARDING_INSTANTIATE(FnDist);
ARROWDQ_FORWARDING_INSTANTIATE(PathDist);
ARROWDQ_FORWARDING_INSTANTIATE(RingDist);
ARROWDQ_FORWARDING_INSTANTIATE(GridDist);
ARROWDQ_FORWARDING_INSTANTIATE(TorusDist);
ARROWDQ_FORWARDING_INSTANTIATE(HypercubeDist);
#undef ARROWDQ_FORWARDING_INSTANTIATE

}  // namespace arrowdq
