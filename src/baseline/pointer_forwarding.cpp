#include "baseline/pointer_forwarding.hpp"

#include <vector>

#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"

namespace arrowdq {

namespace {
struct FindMsg {
  RequestId req = kNoRequest;
  NodeId requester = kNoNode;
  std::int32_t hops = 0;
  Weight dist_units = 0;
};
}  // namespace

QueuingOutcome run_pointer_forwarding(NodeId node_count, const RequestSet& requests,
                                      const DistTicksFn& dist,
                                      const PointerForwardingConfig& config) {
  ARROWDQ_ASSERT(node_count >= 1);
  ARROWDQ_ASSERT(config.initial_owner >= 0 && config.initial_owner < node_count);
  ARROWDQ_ASSERT_MSG(requests.root() == config.initial_owner,
                     "request-set root must equal the initial owner");

  Graph placeholder = make_path(node_count);
  Simulator sim;
  SynchronousLatency dummy;
  Network<FindMsg> net(placeholder, sim, dummy);
  net.set_service_time(config.service_time);

  std::vector<NodeId> hint(static_cast<std::size_t>(node_count));
  std::vector<RequestId> last_req(static_cast<std::size_t>(node_count), kNoRequest);
  for (NodeId v = 0; v < node_count; ++v) hint[static_cast<std::size_t>(v)] = config.initial_owner;
  last_req[static_cast<std::size_t>(config.initial_owner)] = kRootRequest;

  QueuingOutcome out(requests.size());
  // A single find visits each node at most a few times even under heavy
  // concurrency; this cap only exists to turn a protocol bug into a loud
  // failure instead of a hang.
  const std::int32_t hop_cap = 8 * node_count + 16;

  net.set_handler([&](NodeId from, NodeId at, const FindMsg& m) {
    ARROWDQ_ASSERT_MSG(m.hops <= hop_cap, "pointer-forwarding find did not terminate");
    auto ui = static_cast<std::size_t>(at);
    NodeId next = hint[ui];
    hint[ui] = config.mode == ForwardingMode::kCompressToRequester ? m.requester : from;
    if (next == at) {
      RequestId pred = last_req[ui];
      ARROWDQ_ASSERT(pred != kNoRequest);
      out.record(Completion{m.req, pred, sim.now(), m.hops, m.dist_units});
      return;
    }
    Weight leg = ticks_to_units(dist(at, next));
    net.send_with_latency(at, next, dist(at, next),
                          FindMsg{m.req, m.requester, m.hops + 1, m.dist_units + leg});
  });

  for (const Request& r : requests.real()) {
    ARROWDQ_ASSERT(r.node >= 0 && r.node < node_count);
    sim.at(r.time, [&, r]() {
      auto vi = static_cast<std::size_t>(r.node);
      if (hint[vi] == r.node) {
        RequestId pred = last_req[vi];
        ARROWDQ_ASSERT(pred != kNoRequest);
        last_req[vi] = r.id;
        out.record(Completion{r.id, pred, sim.now(), 0, 0});
        return;
      }
      NodeId target = hint[vi];
      last_req[vi] = r.id;
      hint[vi] = r.node;
      Weight leg = ticks_to_units(dist(r.node, target));
      net.send_with_latency(r.node, target, dist(r.node, target),
                            FindMsg{r.id, r.node, 1, leg});
    });
  }

  sim.run();
  ARROWDQ_ASSERT_MSG(out.is_complete(), "pointer forwarding did not complete all requests");
  return out;
}

}  // namespace arrowdq
