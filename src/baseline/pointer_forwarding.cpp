#include "baseline/pointer_forwarding.hpp"

#include <vector>

#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"

namespace arrowdq {

namespace {

struct FindMsg {
  RequestId req = kNoRequest;
  NodeId requester = kNoNode;
  std::int32_t hops = 0;
  Weight dist_units = 0;
};

template <typename Dist>
struct Forwarder;

template <typename Dist>
struct ForwardHandler {
  Forwarder<Dist>* d = nullptr;
  inline void operator()(NodeId from, NodeId at, const FindMsg& m) const;
};

/// Driver state: pointer hints plus the typed-handler network. Only
/// send_with_latency is used (arbitrary node pairs on the complete
/// communication graph), so the sampler is a stateless placeholder; the
/// distance oracle is a value type, so the standard unit/APSP draws are
/// direct calls (no std::function on the run path).
template <typename Dist>
struct Forwarder {
  Graph placeholder;
  Simulator sim;
  Network<FindMsg, SyncSampler, ForwardHandler<Dist>> net;
  Dist dist;
  const PointerForwardingConfig& config;
  QueuingOutcome& out;
  std::vector<NodeId> hint;
  std::vector<RequestId> last_req;
  std::int32_t hop_cap;

  Forwarder(NodeId node_count, const RequestSet& requests, Dist dist_fn,
            const PointerForwardingConfig& cfg, QueuingOutcome& out_ref)
      : placeholder(make_path(node_count)),
        net(placeholder, sim, SyncSampler{}),
        dist(dist_fn),
        config(cfg),
        out(out_ref),
        hint(static_cast<std::size_t>(node_count)),
        last_req(static_cast<std::size_t>(node_count), kNoRequest),
        // A single find visits each node at most a few times even under
        // heavy concurrency; this cap only exists to turn a protocol bug
        // into a loud failure instead of a hang.
        hop_cap(8 * node_count + 16) {
    sim.reserve(2 * static_cast<std::size_t>(requests.size()) + 2);
    net.reserve_messages(static_cast<std::size_t>(requests.size()) + 1);
    net.set_service_time(cfg.service_time);
    for (NodeId v = 0; v < node_count; ++v)
      hint[static_cast<std::size_t>(v)] = cfg.initial_owner;
    last_req[static_cast<std::size_t>(cfg.initial_owner)] = kRootRequest;
  }

  struct IssueEvent {
    Forwarder* d;
    Request r;
    void operator()() const { d->issue(r); }
  };
  static_assert(Simulator::template fits_inline_v<IssueEvent>,
                "IssueEvent must stay on the simulator's inline path");

  void issue(const Request& r) {
    auto vi = static_cast<std::size_t>(r.node);
    if (hint[vi] == r.node) {
      RequestId pred = last_req[vi];
      ARROWDQ_ASSERT(pred != kNoRequest);
      last_req[vi] = r.id;
      out.record(Completion{r.id, pred, sim.now(), 0, 0});
      return;
    }
    NodeId target = hint[vi];
    last_req[vi] = r.id;
    hint[vi] = r.node;
    Weight leg = ticks_to_units(dist(r.node, target));
    net.send_with_latency(r.node, target, dist(r.node, target), FindMsg{r.id, r.node, 1, leg});
  }

  void handle(NodeId from, NodeId at, const FindMsg& m) {
    ARROWDQ_ASSERT_MSG(m.hops <= hop_cap, "pointer-forwarding find did not terminate");
    auto ui = static_cast<std::size_t>(at);
    NodeId next = hint[ui];
    hint[ui] = config.mode == ForwardingMode::kCompressToRequester ? m.requester : from;
    if (next == at) {
      RequestId pred = last_req[ui];
      ARROWDQ_ASSERT(pred != kNoRequest);
      out.record(Completion{m.req, pred, sim.now(), m.hops, m.dist_units});
      return;
    }
    Weight leg = ticks_to_units(dist(at, next));
    net.send_with_latency(at, next, dist(at, next),
                          FindMsg{m.req, m.requester, m.hops + 1, m.dist_units + leg});
  }
};

template <typename Dist>
inline void ForwardHandler<Dist>::operator()(NodeId from, NodeId at, const FindMsg& m) const {
  d->handle(from, at, m);
}

template <typename Dist>
QueuingOutcome run_pointer_forwarding_impl(NodeId node_count, const RequestSet& requests,
                                           Dist dist, const PointerForwardingConfig& config) {
  ARROWDQ_ASSERT_MSG(node_count >= 1, "need at least one node");
  ARROWDQ_ASSERT_MSG(config.initial_owner >= 0 && config.initial_owner < node_count,
                     "initial owner must be a node");
  ARROWDQ_ASSERT_MSG(requests.root() == config.initial_owner,
                     "request-set root must equal the initial owner");

  QueuingOutcome out(requests.size());
  Forwarder<Dist> driver(node_count, requests, dist, config, out);
  driver.net.set_handler(ForwardHandler<Dist>{&driver});
  for (const Request& r : requests.real()) {
    ARROWDQ_ASSERT_MSG(r.node >= 0 && r.node < node_count, "request from a non-node");
    driver.sim.at(r.time, typename Forwarder<Dist>::IssueEvent{&driver, r});
  }
  driver.sim.run();
  ARROWDQ_ASSERT_MSG(out.is_complete(), "pointer forwarding did not complete all requests");
  return out;
}

}  // namespace

QueuingOutcome run_pointer_forwarding(NodeId node_count, const RequestSet& requests,
                                      UnitDist dist, const PointerForwardingConfig& config) {
  return run_pointer_forwarding_impl(node_count, requests, dist, config);
}

QueuingOutcome run_pointer_forwarding(NodeId node_count, const RequestSet& requests,
                                      ApspDist dist, const PointerForwardingConfig& config) {
  return run_pointer_forwarding_impl(node_count, requests, dist, config);
}

QueuingOutcome run_pointer_forwarding(NodeId node_count, const RequestSet& requests,
                                      FnDist dist, const PointerForwardingConfig& config) {
  return run_pointer_forwarding_impl(node_count, requests, dist, config);
}

QueuingOutcome run_pointer_forwarding(NodeId node_count, const RequestSet& requests,
                                      const DistTicksFn& dist,
                                      const PointerForwardingConfig& config) {
  return with_static_dist(dist, [&](auto oracle) {
    return run_pointer_forwarding_impl(node_count, requests, oracle, config);
  });
}

}  // namespace arrowdq
