// The centralized queuing protocol of Section 5:
// "A globally known central node always stored the current tail of the total
//  order. Every queuing request was completed using only two messages, one
//  to the central node, and one back."
//
// Messages travel shortest paths of the underlying graph G (latency dG). A
// request from the center itself completes locally with zero messages. The
// per-node serial service time is what makes the center a bottleneck at
// scale — with free local processing (service 0) the protocol's total
// latency is flat, with service > 0 it degrades linearly in the node count,
// which is exactly the behaviour Figure 10 shows on the SP2.
#pragma once

#include <cstdint>

#include "baseline/dist.hpp"
#include "graph/graph.hpp"
#include "graph/shortest_paths.hpp"
#include "proto/queuing.hpp"
#include "proto/request.hpp"
#include "sim/fault.hpp"
#include "support/types.hpp"

namespace arrowdq {

struct CentralizedConfig {
  NodeId center = 0;
  Time service_time = 0;  // serial per-node message processing cost (ticks)
  /// Fault schedule (default: none). The baseline degrades gracefully:
  /// message faults delay delivery, crash windows defer deliveries to the
  /// victim until it recovers. The center holds the queue tail in stable
  /// storage, so no pointer corruption applies — only the arrow drivers
  /// model state recovery.
  FaultSpec fault;
  /// Optional out-param: filled with drop/duplicate counts after a one-shot
  /// run when a fault schedule is active (the loop result carries its own).
  FaultStats* fault_stats_out = nullptr;
};

/// One-shot execution. Completion is recorded when the center's reply (the
/// predecessor's identity) reaches the requester, matching Section 5's
/// completion definition.
///
/// The oracle template is the statically dispatched tier (direct per-message
/// distance draws); centralized.cpp explicitly instantiates it for every
/// concrete oracle type in dist.hpp, so an unknown oracle fails at link
/// time instead of silently type-erasing. The DistTicksFn overload probes
/// for a wrapped oracle once per run (with_static_dist) and otherwise falls
/// back to the type-erased per-message call.
template <typename Dist>
QueuingOutcome run_centralized(NodeId node_count, const RequestSet& requests, Dist dist,
                               const CentralizedConfig& config);
QueuingOutcome run_centralized(NodeId node_count, const RequestSet& requests,
                               const DistTicksFn& dist, const CentralizedConfig& config);

struct CentralizedLoopResult {
  Time makespan = 0;
  std::int64_t total_requests = 0;
  std::uint64_t messages = 0;
  double avg_round_latency_units = 0.0;
  // Degradation metrics (all zero fault-free).
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::int32_t crashes = 0;
  std::uint64_t partition_backlog = 0;  // sends the filter queued at a cut
};

/// Closed-loop driver matching run_arrow_closed_loop: every node performs
/// `requests_per_node` rounds, re-issuing when the reply arrives. Same
/// oracle-dispatch scheme as run_centralized.
template <typename Dist>
CentralizedLoopResult run_centralized_closed_loop(NodeId node_count, std::int64_t requests_per_node,
                                                  Dist dist, const CentralizedConfig& config);
CentralizedLoopResult run_centralized_closed_loop(NodeId node_count, std::int64_t requests_per_node,
                                                  const DistTicksFn& dist,
                                                  const CentralizedConfig& config);

}  // namespace arrowdq
