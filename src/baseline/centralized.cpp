#include "baseline/centralized.hpp"

#include <vector>

#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"
#include "support/stats.hpp"

namespace arrowdq {

DistTicksFn apsp_dist_fn(const AllPairs& apsp) {
  return [&apsp](NodeId u, NodeId v) { return units_to_ticks(apsp.dist(u, v)); };
}

DistTicksFn unit_dist_fn() {
  return [](NodeId u, NodeId v) { return u == v ? Time{0} : kTicksPerUnit; };
}

namespace {

enum class Kind : std::uint8_t { kRequest, kReply };

struct CentralMsg {
  Kind kind = Kind::kRequest;
  RequestId req = kNoRequest;
  RequestId pred = kNoRequest;
  NodeId requester = kNoNode;
};

/// Shared machinery: a star-shaped protocol where every request goes to the
/// center and a reply returns. Only send_with_latency is used, so the graph
/// passed to Network is a placeholder for node count / service state.
class CentralCore {
 public:
  CentralCore(NodeId node_count, const DistTicksFn& dist, const CentralizedConfig& config)
      : placeholder_(make_path(node_count)),
        dummy_latency_(),
        net_(placeholder_, sim_, dummy_latency_),
        dist_(dist),
        config_(config) {
    ARROWDQ_ASSERT(config.center >= 0 && config.center < node_count);
    net_.set_service_time(config.service_time);
  }

  Simulator& sim() { return sim_; }
  Network<CentralMsg>& net() { return net_; }
  RequestId tail() const { return tail_; }

  /// Processes a request at the center: returns the predecessor and advances
  /// the tail.
  RequestId enqueue(RequestId req) {
    RequestId pred = tail_;
    tail_ = req;
    return pred;
  }

  Time dist(NodeId u, NodeId v) const { return u == v ? Time{0} : dist_(u, v); }
  const CentralizedConfig& config() const { return config_; }

 private:
  Graph placeholder_;
  SynchronousLatency dummy_latency_;
  Simulator sim_;
  Network<CentralMsg> net_;
  DistTicksFn dist_;
  CentralizedConfig config_;
  RequestId tail_ = kRootRequest;
};

}  // namespace

QueuingOutcome run_centralized(NodeId node_count, const RequestSet& requests,
                               const DistTicksFn& dist, const CentralizedConfig& config) {
  CentralCore core(node_count, dist, config);
  QueuingOutcome out(requests.size());
  const NodeId center = config.center;
  std::vector<Time> issue_time(static_cast<std::size_t>(requests.size()) + 1, 0);
  std::vector<Weight> travel(static_cast<std::size_t>(requests.size()) + 1, 0);

  core.net().set_handler([&](NodeId /*from*/, NodeId at, const CentralMsg& m) {
    if (m.kind == Kind::kRequest) {
      ARROWDQ_ASSERT(at == center);
      RequestId pred = core.enqueue(m.req);
      if (m.requester == center) {
        out.record(Completion{m.req, pred, core.sim().now(),
                              /*hops=*/1,
                              static_cast<Weight>(travel[static_cast<std::size_t>(m.req)])});
      } else {
        core.net().send_with_latency(center, m.requester, core.dist(center, m.requester),
                                     CentralMsg{Kind::kReply, m.req, pred, m.requester});
      }
    } else {
      out.record(Completion{m.req, m.pred, core.sim().now(),
                            /*hops=*/2,
                            static_cast<Weight>(2 * travel[static_cast<std::size_t>(m.req)])});
    }
  });

  for (const Request& r : requests.real()) {
    ARROWDQ_ASSERT(r.node >= 0 && r.node < node_count);
    issue_time[static_cast<std::size_t>(r.id)] = r.time;
    core.sim().at(r.time, [&core, &out, r, center]() {
      if (r.node == center) {
        RequestId pred = core.enqueue(r.id);
        out.record(Completion{r.id, pred, core.sim().now(), 0, 0});
        return;
      }
      Time d = core.dist(r.node, center);
      core.net().send_with_latency(r.node, center, d,
                                   CentralMsg{Kind::kRequest, r.id, kNoRequest, r.node});
    });
    travel[static_cast<std::size_t>(r.id)] =
        ticks_to_units(core.dist(r.node, center));
  }

  core.sim().run();
  ARROWDQ_ASSERT_MSG(out.is_complete(), "centralized protocol did not complete all requests");
  return out;
}

CentralizedLoopResult run_centralized_closed_loop(NodeId node_count,
                                                  std::int64_t requests_per_node,
                                                  const DistTicksFn& dist,
                                                  const CentralizedConfig& config) {
  CentralCore core(node_count, dist, config);
  const NodeId center = config.center;
  std::vector<std::int64_t> issued(static_cast<std::size_t>(node_count), 0);
  std::vector<Time> issue_time(static_cast<std::size_t>(node_count), 0);
  StatAccumulator latencies;
  RequestId next_id = kRootRequest;

  // Forward declaration via std::function so the handler can re-issue.
  std::function<void(NodeId)> issue = [&](NodeId v) {
    auto vi = static_cast<std::size_t>(v);
    if (issued[vi] >= requests_per_node) return;
    ++issued[vi];
    issue_time[vi] = core.sim().now();
    RequestId a = ++next_id;
    if (v == center) {
      core.enqueue(a);
      latencies.add(0.0);
      core.sim().in(config.service_time, [&issue, v]() { issue(v); });
      return;
    }
    core.net().send_with_latency(v, center, core.dist(v, center),
                                 CentralMsg{Kind::kRequest, a, kNoRequest, v});
  };

  core.net().set_handler([&](NodeId /*from*/, NodeId at, const CentralMsg& m) {
    if (m.kind == Kind::kRequest) {
      RequestId pred = core.enqueue(m.req);
      core.net().send_with_latency(center, m.requester, core.dist(center, m.requester),
                                   CentralMsg{Kind::kReply, m.req, pred, m.requester});
    } else {
      auto vi = static_cast<std::size_t>(at);
      latencies.add(static_cast<double>(core.sim().now() - issue_time[vi]));
      core.sim().in(config.service_time, [&issue, at]() { issue(at); });
    }
  });

  for (NodeId v = 0; v < node_count; ++v) core.sim().at(0, [&issue, v]() { issue(v); });
  core.sim().run();

  CentralizedLoopResult res;
  res.makespan = core.sim().now();
  res.total_requests = static_cast<std::int64_t>(node_count) * requests_per_node;
  res.messages = core.net().stats().direct_messages;
  res.avg_round_latency_units =
      latencies.count() == 0 ? 0.0 : latencies.mean() / static_cast<double>(kTicksPerUnit);
  return res;
}

}  // namespace arrowdq
