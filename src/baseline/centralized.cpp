#include "baseline/centralized.hpp"

#include <vector>

#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"
#include "support/stats.hpp"

namespace arrowdq {

DistTicksFn apsp_dist_fn(const AllPairs& apsp) { return DistTicksFn(ApspDist{&apsp}); }

DistTicksFn unit_dist_fn() { return DistTicksFn(UnitDist{}); }

namespace {

enum class Kind : std::uint8_t { kRequest, kReply };

struct CentralMsg {
  Kind kind = Kind::kRequest;
  RequestId req = kNoRequest;
  RequestId pred = kNoRequest;
  NodeId requester = kNoNode;
};

/// Shared machinery: a star-shaped protocol where every request goes to the
/// center and a reply returns. Only send_with_latency is used (the sampler
/// is never consulted), so the graph passed to Network is a placeholder for
/// node count / service state and the latency parameter is a stateless
/// value type. Templated on the handler so deliveries dispatch through a
/// typed callable, and on the distance oracle so the per-message distance
/// draw is a direct call (no std::function on the run path for the standard
/// unit/APSP oracles). The Faults parameter mirrors the arrow drivers: the
/// fault branch compiles out entirely under NoFaults.
template <typename Dist, typename Handler, typename Faults = NoFaults>
class CentralCore {
 public:
  CentralCore(NodeId node_count, Dist dist, Faults faults, const CentralizedConfig& config,
              std::size_t reserve_events, std::size_t reserve_msgs)
      : placeholder_(make_path(node_count)),
        net_(placeholder_, sim_, SyncSampler{}, std::move(faults)),
        dist_(dist),
        config_(config) {
    ARROWDQ_ASSERT_MSG(config.center >= 0 && config.center < node_count,
                       "center must be a node");
    sim_.reserve(reserve_events);
    net_.reserve_messages(reserve_msgs);
    net_.set_service_time(config.service_time);
  }

  Simulator& sim() { return sim_; }
  Network<CentralMsg, SyncSampler, Handler, Faults>& net() { return net_; }
  RequestId tail() const { return tail_; }

  /// Degradation counters after a run (empty under NoFaults).
  FaultStats fault_stats() const {
    if constexpr (Faults::kActive) return net_.faults().stats();
    return FaultStats{};
  }
  std::int32_t crash_count() const {
    if constexpr (Faults::kActive)
      return static_cast<std::int32_t>(net_.faults().crashes().size());
    return 0;
  }

  /// Processes a request at the center: returns the predecessor and advances
  /// the tail.
  RequestId enqueue(RequestId req) {
    RequestId pred = tail_;
    tail_ = req;
    return pred;
  }

  Time dist(NodeId u, NodeId v) const { return u == v ? Time{0} : dist_(u, v); }
  const CentralizedConfig& config() const { return config_; }

 private:
  Graph placeholder_;
  Simulator sim_;
  Network<CentralMsg, SyncSampler, Handler, Faults> net_;
  Dist dist_;
  CentralizedConfig config_;
  RequestId tail_ = kRootRequest;
};

// --- one-shot ---------------------------------------------------------------

template <typename Dist, typename Faults>
struct OneShot;

template <typename Dist, typename Faults>
struct OneShotHandler {
  OneShot<Dist, Faults>* d = nullptr;
  inline void operator()(NodeId from, NodeId at, const CentralMsg& m) const;
};

template <typename Dist, typename Faults>
struct OneShot {
  CentralCore<Dist, OneShotHandler<Dist, Faults>, Faults> core;
  QueuingOutcome& out;
  std::vector<Weight> travel;

  OneShot(NodeId node_count, const RequestSet& requests, Dist dist, Faults faults,
          const CentralizedConfig& config, QueuingOutcome& out_ref)
      : core(node_count, dist, std::move(faults), config,
             /*reserve_events=*/2 * static_cast<std::size_t>(requests.size()) + 2,
             /*reserve_msgs=*/static_cast<std::size_t>(requests.size()) + 1),
        out(out_ref),
        travel(static_cast<std::size_t>(requests.size()) + 1, 0) {}

  struct IssueEvent {
    OneShot* d;
    Request r;
    void operator()() const { d->issue(r); }
  };
  static_assert(Simulator::template fits_inline_v<IssueEvent>,
                "IssueEvent must stay on the simulator's inline path");

  void issue(const Request& r) {
    const NodeId center = core.config().center;
    if (r.node == center) {
      RequestId pred = core.enqueue(r.id);
      out.record(Completion{r.id, pred, core.sim().now(), 0, 0});
      return;
    }
    Time d = core.dist(r.node, center);
    core.net().send_with_latency(r.node, center, d,
                                 CentralMsg{Kind::kRequest, r.id, kNoRequest, r.node});
  }

  void handle(NodeId /*from*/, NodeId at, const CentralMsg& m) {
    const NodeId center = core.config().center;
    if (m.kind == Kind::kRequest) {
      ARROWDQ_ASSERT(at == center);
      RequestId pred = core.enqueue(m.req);
      if (m.requester == center) {
        out.record(Completion{m.req, pred, core.sim().now(),
                              /*hops=*/1,
                              static_cast<Weight>(travel[static_cast<std::size_t>(m.req)])});
      } else {
        core.net().send_with_latency(center, m.requester, core.dist(center, m.requester),
                                     CentralMsg{Kind::kReply, m.req, pred, m.requester});
      }
    } else {
      out.record(Completion{m.req, m.pred, core.sim().now(),
                            /*hops=*/2,
                            static_cast<Weight>(2 * travel[static_cast<std::size_t>(m.req)])});
    }
  }
};

template <typename Dist, typename Faults>
inline void OneShotHandler<Dist, Faults>::operator()(NodeId from, NodeId at,
                                                     const CentralMsg& m) const {
  d->handle(from, at, m);
}

// --- closed loop ------------------------------------------------------------

template <typename Dist, typename Faults>
struct Loop;

template <typename Dist, typename Faults>
struct LoopHandler {
  Loop<Dist, Faults>* d = nullptr;
  inline void operator()(NodeId from, NodeId at, const CentralMsg& m) const;
};

template <typename Dist, typename Faults>
struct Loop {
  CentralCore<Dist, LoopHandler<Dist, Faults>, Faults> core;
  std::int64_t requests_per_node;
  std::vector<std::int64_t> issued;
  std::vector<Time> issue_time;
  StatAccumulator latencies;
  RequestId next_id = kRootRequest;

  Loop(NodeId node_count, std::int64_t reqs_per_node, Dist dist, Faults faults,
       const CentralizedConfig& config)
      : core(node_count, dist, std::move(faults), config,
             /*reserve_events=*/2 * static_cast<std::size_t>(node_count) + 2,
             /*reserve_msgs=*/static_cast<std::size_t>(node_count) + 1),
        requests_per_node(reqs_per_node),
        issued(static_cast<std::size_t>(node_count), 0),
        issue_time(static_cast<std::size_t>(node_count), 0) {}

  struct IssueEvent {
    Loop* d;
    NodeId v;
    void operator()() const { d->issue(v); }
  };
  static_assert(Simulator::template fits_inline_v<IssueEvent>,
                "IssueEvent must stay on the simulator's inline path");

  void issue(NodeId v) {
    auto vi = static_cast<std::size_t>(v);
    if (issued[vi] >= requests_per_node) return;
    ++issued[vi];
    issue_time[vi] = core.sim().now();
    RequestId a = ++next_id;
    const NodeId center = core.config().center;
    if (v == center) {
      core.enqueue(a);
      latencies.add(0.0);
      core.sim().in(core.config().service_time, IssueEvent{this, v});
      return;
    }
    core.net().send_with_latency(v, center, core.dist(v, center),
                                 CentralMsg{Kind::kRequest, a, kNoRequest, v});
  }

  void handle(NodeId /*from*/, NodeId at, const CentralMsg& m) {
    const NodeId center = core.config().center;
    if (m.kind == Kind::kRequest) {
      RequestId pred = core.enqueue(m.req);
      core.net().send_with_latency(center, m.requester, core.dist(center, m.requester),
                                   CentralMsg{Kind::kReply, m.req, pred, m.requester});
    } else {
      auto vi = static_cast<std::size_t>(at);
      latencies.add(static_cast<double>(core.sim().now() - issue_time[vi]));
      core.sim().in(core.config().service_time, IssueEvent{this, at});
    }
  }
};

template <typename Dist, typename Faults>
inline void LoopHandler<Dist, Faults>::operator()(NodeId from, NodeId at,
                                                  const CentralMsg& m) const {
  d->handle(from, at, m);
}

template <typename Dist>
QueuingOutcome run_centralized_impl(NodeId node_count, const RequestSet& requests, Dist dist,
                                    const CentralizedConfig& config) {
  QueuingOutcome out(requests.size());
  with_fault_filter(config.fault, node_count, [&](auto filt) {
    using F = decltype(filt);
    OneShot<Dist, F> driver(node_count, requests, dist, std::move(filt), config, out);
    driver.core.net().set_handler(OneShotHandler<Dist, F>{&driver});
    const NodeId center = config.center;
    for (const Request& r : requests.real()) {
      ARROWDQ_ASSERT_MSG(r.node >= 0 && r.node < node_count, "request from a non-node");
      driver.core.sim().at(r.time, typename OneShot<Dist, F>::IssueEvent{&driver, r});
      driver.travel[static_cast<std::size_t>(r.id)] =
          ticks_to_units(driver.core.dist(r.node, center));
    }
    driver.core.sim().run();
    if (config.fault_stats_out != nullptr) *config.fault_stats_out = driver.core.fault_stats();
  });
  ARROWDQ_ASSERT_MSG(out.is_complete(), "centralized protocol did not complete all requests");
  return out;
}

template <typename Dist>
CentralizedLoopResult run_centralized_closed_loop_impl(NodeId node_count,
                                                       std::int64_t requests_per_node, Dist dist,
                                                       const CentralizedConfig& config) {
  return with_fault_filter(config.fault, node_count, [&](auto filt) {
    using F = decltype(filt);
    Loop<Dist, F> driver(node_count, requests_per_node, dist, std::move(filt), config);
    driver.core.net().set_handler(LoopHandler<Dist, F>{&driver});
    for (NodeId v = 0; v < node_count; ++v)
      driver.core.sim().at(0, typename Loop<Dist, F>::IssueEvent{&driver, v});
    driver.core.sim().run();

    CentralizedLoopResult res;
    res.makespan = driver.core.sim().now();
    res.total_requests = static_cast<std::int64_t>(node_count) * requests_per_node;
    res.messages = driver.core.net().stats().direct_messages;
    res.avg_round_latency_units =
        driver.latencies.count() == 0
            ? 0.0
            : driver.latencies.mean() / static_cast<double>(kTicksPerUnit);
    FaultStats fs = driver.core.fault_stats();
    res.messages_dropped = fs.messages_dropped;
    res.messages_duplicated = fs.messages_duplicated;
    res.crashes = driver.core.crash_count();
    res.partition_backlog = fs.partition_deferred;
    return res;
  });
}

}  // namespace

template <typename Dist>
QueuingOutcome run_centralized(NodeId node_count, const RequestSet& requests, Dist dist,
                               const CentralizedConfig& config) {
  return run_centralized_impl(node_count, requests, dist, config);
}

QueuingOutcome run_centralized(NodeId node_count, const RequestSet& requests,
                               const DistTicksFn& dist, const CentralizedConfig& config) {
  return with_static_dist(dist, [&](auto oracle) {
    return run_centralized_impl(node_count, requests, oracle, config);
  });
}

template <typename Dist>
CentralizedLoopResult run_centralized_closed_loop(NodeId node_count,
                                                  std::int64_t requests_per_node, Dist dist,
                                                  const CentralizedConfig& config) {
  return run_centralized_closed_loop_impl(node_count, requests_per_node, dist, config);
}

CentralizedLoopResult run_centralized_closed_loop(NodeId node_count,
                                                  std::int64_t requests_per_node,
                                                  const DistTicksFn& dist,
                                                  const CentralizedConfig& config) {
  return with_static_dist(dist, [&](auto oracle) {
    return run_centralized_closed_loop_impl(node_count, requests_per_node, oracle, config);
  });
}

// One explicit instantiation per concrete oracle in dist.hpp. An oracle type
// missing here fails at link time rather than silently falling back to the
// type-erased tier.
#define ARROWDQ_CENTRALIZED_INSTANTIATE(Dist)                                              \
  template QueuingOutcome run_centralized<Dist>(NodeId, const RequestSet&, Dist,           \
                                                const CentralizedConfig&);                 \
  template CentralizedLoopResult run_centralized_closed_loop<Dist>(NodeId, std::int64_t,   \
                                                                   Dist,                   \
                                                                   const CentralizedConfig&)
ARROWDQ_CENTRALIZED_INSTANTIATE(UnitDist);
ARROWDQ_CENTRALIZED_INSTANTIATE(ApspDist);
ARROWDQ_CENTRALIZED_INSTANTIATE(FnDist);
ARROWDQ_CENTRALIZED_INSTANTIATE(PathDist);
ARROWDQ_CENTRALIZED_INSTANTIATE(RingDist);
ARROWDQ_CENTRALIZED_INSTANTIATE(GridDist);
ARROWDQ_CENTRALIZED_INSTANTIATE(TorusDist);
ARROWDQ_CENTRALIZED_INSTANTIATE(HypercubeDist);
#undef ARROWDQ_CENTRALIZED_INSTANTIATE

}  // namespace arrowdq
