// Distributed mutual exclusion on top of the arrow queue (the application
// the protocol was invented for — Raymond 1989).
//
// lock() = issue a queuing request; the lock token travels down the queue:
// when the holder of request p releases and knows its successor a (which the
// arrow protocol delivered to p's node), it sends the token along the tree
// path to a's node. The token starts free at the root at time 0.
//
// The token-passing layer is computed analytically from the arrow outcome:
// grant(a) = max(release(p), successor-known(p)) + dT(node(p), node(a)).
// This is exact for the synchronous model because token transfer messages
// do not interact with queue() messages.
#pragma once

#include <vector>

#include "graph/tree.hpp"
#include "proto/queuing.hpp"
#include "proto/request.hpp"
#include "support/types.hpp"

namespace arrowdq {

struct MutexResult {
  /// Indexed by request id (0 unused); times in ticks.
  std::vector<Time> acquire;
  std::vector<Time> release;
  Time makespan = 0;            // release time of the last holder
  bool mutual_exclusion = false;  // no two critical sections overlap
  /// Total distance the token traveled (units).
  Weight token_travel = 0;
};

/// Run arrow on (tree, requests) and pass the lock token down the resulting
/// queue; each holder keeps the lock for cs_ticks.
MutexResult run_mutex(const Tree& tree, const RequestSet& requests, Time cs_ticks);

/// Same, but layered on a precomputed arrow outcome.
MutexResult mutex_from_outcome(const Tree& tree, const RequestSet& requests,
                               const QueuingOutcome& outcome, Time cs_ticks);

}  // namespace arrowdq
