// Message-driven token circulation on top of an arrow execution.
//
// The mutex/counter/directory layers in this package compute token handoffs
// analytically from the queuing outcome (grant = max(release, successor
// known) + dT). This module *simulates* the same thing with real messages
// through the Network — the token is an actual message that travels the
// tree path hop by hop — and so validates the analytic layering: in the
// synchronous model the two must agree exactly (tests assert this).
//
// It also supports asynchronous latency models, where the analytic layer is
// only an upper bound.
#pragma once

#include <vector>

#include "graph/tree.hpp"
#include "proto/queuing.hpp"
#include "proto/request.hpp"
#include "sim/latency.hpp"
#include "support/types.hpp"

namespace arrowdq {

struct TokenSimResult {
  /// granted[id] = time the token reached request id's node (ticks).
  std::vector<Time> granted;
  /// Total tree distance the token traveled (units).
  Weight token_travel = 0;
  /// Total token messages (one per tree edge traversed).
  std::uint64_t token_messages = 0;
  Time makespan = 0;
};

/// Simulate the token traveling down the queue of `outcome`, holding for
/// `hold_ticks` at every request. The handoff from the holder of request p
/// to its successor a starts at max(release(p), completed_at(a)) — the
/// holder must both be done and know its successor — and the token then
/// travels the tree path hop by hop under `latency`.
TokenSimResult simulate_token_passing(const Tree& tree, const RequestSet& requests,
                                      const QueuingOutcome& outcome, Time hold_ticks,
                                      LatencyModel& latency);

}  // namespace arrowdq
