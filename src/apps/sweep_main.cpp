// sweep_main — parallel experiment sweep CLI over the unified Experiment API.
//
// Builds the full cross-product protocol × topology × node count × latency
// (× repeat) as a list of declarative Experiment values, runs each cell
// --replicas times (decorrelated per-replica seeds, statistics folded into
// mean/stddev/min/max + confidence intervals), shards everything across
// SweepRunner's thread pool, and prints one row per cell plus aggregate
// throughput. Results are deterministic: per-scenario seeds derived from
// --seed, fixed output order, identical numbers for any --threads value.
//
// Examples:
//   sweep_main                                          # default grid, all cores
//   sweep_main --protocol arrow-loop,centralized --nodes 64,256 --reqs 200
//   sweep_main --protocol arrow,forwarding,token --workload poisson:24:0.5
//   sweep_main --topology complete,randtree --latency sync,exp:0.3 --json out.json
//   sweep_main --topology torus:8x8,hypercube,geometric:0.3 --replicas 5
//   sweep_main --protocol forwarding-loop --nodes 64 --reqs 100   # closed loop
//   sweep_main --smoke --json sweep_smoke.json          # CI cross-protocol smoke
//
// Axes
//   --protocol  arrow | arrow-loop | centralized | forwarding |
//               forwarding-loop | token
//   --topology  complete | path | ring | randtree | wtree | grid:RxC |
//               torus:RxC | hypercube | geometric[:RADIUS]
//   --nodes     N1,N2,...      (applied to every topology without a fixed
//               size; hypercube rounds each N down to a power of two)
//   --latency   sync | scaled:F | uniform:MIN | exp:MEAN
//   --workload  oneshot | poisson:COUNT:RATE[:hot=P[@NODE]] |
//               bursty:B:SIZE:GAP | sequential:COUNT:GAP
//               (one-shot protocols only; hot= routes fraction P of the
//               poisson arrivals to one hot node — request skew)
//   --reqs      closed-loop rounds per node (arrow-loop, centralized,
//               forwarding-loop)
//   --fault     none | loss:P | dup:P | jitter:P[:MAXU] | spike:P[:F] |
//               crash:N[:DOWNU[:PERIODU]] | chaos     (crossed like any axis;
//               fault != none adds fault metrics + recovery delta per row)
//   --replicas  statistical replicas per cell (default 1); R >= 2 adds a
//               "replication" block per scenario row with mean/stddev/
//               min/max/ci_lo/ci_hi per metric at 95% confidence
//               (Student-t intervals at R-1 degrees of freedom)
//   --shards    intra-run shard count for the conservative parallel engine
//               (sim/parallel/): every cell with a sharded mirror — arrow and
//               forwarding in both modes — runs on K lanes with bit-identical
//               results; token passing, closed-loop centralized and crash
//               cells stay serial. Default 0 inherits ARROWDQ_SIM_SHARDS.
//   --rt        real-thread runtime pass (src/rt/): re-run each fault-free
//               arrow-loop cell on T worker threads (0 = all cores), check
//               the recorded history for linearizability, and attach a
//               "runtime" JSON block (ops/s, sim-vs-runtime hop ratio).
//               --rt-app picks the payload app: mutex | counter | directory.
//
// JSON: --json FILE emits the cross-product with uniform metrics per
// scenario (schema validated by scripts/bench_gate.py --validate-sweep).
//
// CSV: --csv FILE emits the same sweep in long format — one row per
// cell x replica x metric (label,protocol,topology,nodes,latency,fault,
// rounds,replica,metric,value) — ready for dataframe tooling with no
// unpivoting. Unlike the JSON point sample, every replica's raw runs are
// dumped, so cross-replica statistics can be recomputed downstream.
//
// Every cell is validated before any run starts: structurally inconsistent
// or absurdly large requests (a complete graph at n = 10^6 is ~5 * 10^11
// edges) are refused with a diagnostic and exit code 2 instead of an OOM
// kill hours in.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/replication.hpp"
#include "rt/service.hpp"
#include "support/parse.hpp"
#include "support/table.hpp"

using namespace arrowdq;

namespace {

struct Options {
  std::vector<std::string> protocols = {"arrow-loop"};
  std::vector<std::string> topologies = {"complete"};
  std::vector<NodeId> nodes = {64, 128, 256, 512};
  std::vector<std::string> latencies = {"sync"};
  std::vector<std::string> faults = {"none"};
  std::string workload = "oneshot";
  std::int64_t reqs_per_node = 100;
  Time service_divisor = 16;  // service = kTicksPerUnit / divisor (0 = free)
  unsigned threads = 0;       // 0 = hardware concurrency
  std::uint64_t seed = 1;
  int repeat = 1;             // separately-reported rows per grid point
  int replicas = 1;           // statistically folded replicas per cell
  int shards = 0;             // intra-run lanes; 0 = inherit ARROWDQ_SIM_SHARDS
  int rt_threads = -1;        // -1 = no runtime pass; 0 = hardware concurrency
  std::string rt_app = "mutex";  // runtime app: mutex | counter | directory
  std::string json_path;      // empty = no JSON
  std::string csv_path;       // empty = no CSV (long format, all replicas)
  bool smoke = false;
};

/// Per-cell result of the optional --rt pass (rt/service.hpp cross-
/// validation). `present` only on fault-free arrow-loop cells — the runtime
/// serves exactly the protocol it implements.
struct RtRow {
  bool present = false;
  int threads = 0;
  long long ops = 0;
  double ops_per_sec = 0.0;
  unsigned long long queue_messages = 0;
  bool checker_passed = false;
  double rt_hops_per_op = 0.0;
  double sim_hops_per_op = 0.0;
  double hops_ratio = 0.0;
  // True when the sim twin recorded zero hops per op (every request was
  // self-absorbed), making hops_ratio 0/x noise rather than a comparison.
  bool sim_hops_zero = false;
};

bool parse_rt_app(const std::string& s, rt::RtApp& out) {
  if (s == "mutex") {
    out = rt::RtApp::kMutex;
  } else if (s == "counter") {
    out = rt::RtApp::kCounter;
  } else if (s == "directory") {
    out = rt::RtApp::kDirectory;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> split_csv(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur.push_back(*p);
    }
  }
  return out;
}

bool parse_protocol(const std::string& s, ProtocolSpec& out, Time service) {
  if (s == "arrow") {
    out = ProtocolSpec::arrow_one_shot(service);
  } else if (s == "arrow-loop") {
    out = ProtocolSpec::arrow_closed_loop(service);
  } else if (s == "centralized") {
    out = ProtocolSpec::centralized(0, service);
  } else if (s == "forwarding" || s == "forwarding-loop") {
    out = ProtocolSpec::pointer_forwarding(ForwardingMode::kCompressToRequester, service);
  } else if (s == "token") {
    out = ProtocolSpec::token_passing(service);
  } else {
    return false;
  }
  return true;
}

/// Protocol tokens that run closed-loop (get --reqs rounds instead of the
/// one-shot workload). "forwarding" vs "forwarding-loop" pick the mode of
/// the same ProtocolSpec.
bool is_loop_token(const std::string& s) {
  return s == "arrow-loop" || s == "centralized" || s == "forwarding-loop";
}

bool parse_topology(const std::string& s, NodeId nodes, TopologySpec& out) {
  if (s == "complete") {
    out = TopologySpec::complete(nodes);
  } else if (s == "path") {
    out = TopologySpec::path(nodes);
  } else if (s == "ring") {
    if (nodes < 3) return false;  // wraparound needs >= 3 nodes
    out = TopologySpec::ring(nodes);
  } else if (s == "randtree") {
    out = TopologySpec::random_tree(nodes, /*seed=*/0);  // seeded per scenario
  } else if (s == "wtree") {
    out = TopologySpec::weighted_tree(nodes, /*seed=*/0);
  } else if (s.rfind("grid:", 0) == 0) {
    auto x = s.find('x', 5);
    if (x == std::string::npos) return false;
    auto rows = parse_positive_i64(s.substr(5, x - 5));
    auto cols = parse_positive_i64(s.substr(x + 1));
    if (!rows || !cols) return false;
    out = TopologySpec::grid(static_cast<NodeId>(*rows), static_cast<NodeId>(*cols));
  } else if (s.rfind("torus:", 0) == 0) {
    auto x = s.find('x', 6);
    if (x == std::string::npos) return false;
    auto rows = parse_positive_i64(s.substr(6, x - 6));
    auto cols = parse_positive_i64(s.substr(x + 1));
    if (!rows || !cols || *rows < 3 || *cols < 3) return false;  // wraparound needs >= 3 per axis
    out = TopologySpec::torus(static_cast<NodeId>(*rows), static_cast<NodeId>(*cols));
  } else if (s == "hypercube") {
    if (nodes < 2) return false;
    // 2^dims = largest power <= nodes. 64-bit shift and a hard dims cap:
    // the old `NodeId{2} << dims` comparison overflowed int32 (UB) for
    // nodes >= 2^30 instead of refusing them.
    int dims = 0;
    while (dims < 28 && (std::int64_t{1} << (dims + 1)) <= nodes) ++dims;
    out = TopologySpec::hypercube(dims);
  } else if (s == "geometric" || s.rfind("geometric:", 0) == 0) {
    double radius = 0.35;
    if (s.size() > 10 && s[9] == ':') {
      auto r = parse_positive_f64(s.substr(10));
      if (!r) return false;
      radius = *r;
    }
    out = TopologySpec::geometric(nodes, /*seed=*/0, radius);  // seeded per scenario
  } else {
    return false;
  }
  return true;
}

bool parse_latency(const std::string& s, LatencySpec& out) {
  auto colon = s.find(':');
  const std::string kind = s.substr(0, colon);
  // No parameter falls back to the kind's default; a present-but-malformed
  // or non-positive parameter is a usage error, not a silent default.
  double param = -1.0;
  if (colon != std::string::npos) {
    auto p = parse_positive_f64(s.substr(colon + 1));
    if (!p) return false;
    param = *p;
  }
  if (kind == "sync") {
    if (colon != std::string::npos) return false;  // sync takes no parameter
    out = LatencySpec::synchronous();
  } else if (kind == "scaled") {
    out = LatencySpec::scaled(param > 0 ? param : 0.5);
  } else if (kind == "uniform") {
    out = LatencySpec::uniform_async(/*seed=*/0, param > 0 ? param : 0.05);
  } else if (kind == "exp") {
    out = LatencySpec::truncated_exp(/*seed=*/0, param > 0 ? param : 0.3);
  } else {
    return false;
  }
  return true;
}

bool parse_workload(const std::string& s, WorkloadSpec& out) {
  // Optional request-skew suffix on poisson specs: `poisson:C:R:hot=P[@NODE]`
  // routes fraction P of arrivals to one hot node (default node 0). Stripped
  // here because `hot=P` is non-numeric and would poison the field() parser.
  std::string body = s;
  double hot_p = 0.0;
  NodeId hot_node = 0;
  if (s.rfind("poisson:", 0) == 0) {
    const auto hpos = s.find(":hot=");
    if (hpos != std::string::npos) {
      body = s.substr(0, hpos);
      std::string tail = s.substr(hpos + 5);
      const auto at = tail.find('@');
      if (at != std::string::npos) {
        auto nd = parse_nonneg_i64(tail.substr(at + 1));
        if (!nd) return false;
        hot_node = static_cast<NodeId>(*nd);
        tail.resize(at);
      }
      auto p = parse_positive_f64(tail);
      if (!p || *p > 1.0) return false;  // P must land in (0, 1]
      hot_p = *p;
    }
  }
  // Missing or malformed fields surface as -1 so bad specs fail parsing here
  // (usage error) instead of aborting later on a generator invariant.
  auto field = [&body](int idx) -> double {
    std::size_t pos = 0;
    for (int i = 0; i < idx; ++i) {
      pos = body.find(':', pos);
      if (pos == std::string::npos) return -1.0;
      ++pos;
    }
    auto end = body.find(':', pos);
    auto v = parse_f64(body.substr(pos, end == std::string::npos ? end : end - pos));
    return v ? *v : -1.0;
  };
  if (body == "oneshot") {
    out = WorkloadSpec::one_shot_all();
  } else if (body.rfind("poisson:", 0) == 0) {
    if (field(1) <= 0 || field(2) <= 0) return false;
    if (hot_p > 0.0)
      out = WorkloadSpec::poisson_skewed(static_cast<int>(field(1)), field(2), hot_node, hot_p,
                                         /*seed=*/0);
    else
      out = WorkloadSpec::poisson(static_cast<int>(field(1)), field(2), /*seed=*/0);
  } else if (body.rfind("bursty:", 0) == 0) {
    if (field(1) <= 0 || field(2) <= 0 || field(3) < 0) return false;
    out = WorkloadSpec::bursty_load(static_cast<int>(field(1)), static_cast<int>(field(2)),
                                    static_cast<Weight>(field(3)), /*seed=*/0);
  } else if (s.rfind("sequential:", 0) == 0) {
    if (field(1) <= 0 || field(2) < 0) return false;
    out = WorkloadSpec::sequential(static_cast<int>(field(1)),
                                   static_cast<Weight>(field(2)), /*seed=*/0);
  } else {
    return false;
  }
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: sweep_main [--protocol P1,P2,..] [--topology T1,T2,..]\n"
               "                  [--nodes N1,N2,..] [--latency SPEC1,SPEC2,..]\n"
               "                  [--fault F1,F2,..] [--workload W] [--reqs N]\n"
               "                  [--service-frac D] [--threads T] [--seed S]\n"
               "                  [--repeat R] [--replicas R] [--shards K]\n"
               "                  [--rt T] [--rt-app A] [--json FILE] [--csv FILE] [--smoke]\n"
               "  P: arrow | arrow-loop | centralized | forwarding | forwarding-loop | token\n"
               "  T: complete | path | ring | randtree | wtree | grid:RxC | torus:RxC |\n"
               "     hypercube | geometric[:RADIUS]\n"
               "  SPEC: sync | scaled:F | uniform:MIN | exp:MEAN\n"
               "  F: none | loss:P | dup:P | jitter:P[:MAXU] | spike:P[:F] |\n"
               "     crash:N[:DOWNU[:PERIODU]] | partition:CUTS:DOWNU[:PERIODU] |\n"
               "     churn:RATE[:leaf|any] | chaos\n"
               "  W: oneshot | poisson:COUNT:RATE[:hot=P[@NODE]] | bursty:B:SIZE:GAP |\n"
               "     sequential:COUNT:GAP   (hot= skews fraction P of arrivals to one node)\n"
               "  A: mutex | counter | directory   (app driven by the --rt runtime pass)\n"
               "  service time = one unit / D ticks (0 = free local processing)\n"
               "  numeric flags take checked values: garbage or out-of-range input is\n"
               "  rejected with exit code 2, never silently coerced\n"
               "  --replicas >= 2 folds per-cell statistics (mean/stddev/CI) into the JSON\n"
               "  --shards K runs every cell with a sharded mirror on K lanes (arrow and\n"
               "  forwarding, both modes; bit-identical results; topology-fault cells\n"
               "  (crash/partition/churn), token passing and closed-loop centralized stay\n"
               "  serial)\n"
               "  --rt T re-runs each fault-free arrow-loop cell on the real-thread runtime\n"
               "  (T workers, 0 = all cores), checks the recorded history, and attaches a\n"
               "  \"runtime\" block with measured ops/s + sim-vs-runtime hop ratio\n"
               "  --csv dumps long format: one row per cell x replica x metric\n");
  return 2;
}

/// Checked numeric flag value: parse failure prints the offending token and
/// the usage text, then exits 2 — std::atoi's silent garbage-to-zero is
/// exactly the bug class this replaces.
std::int64_t require_i64(const char* flag, const char* v,
                         std::optional<std::int64_t> (*parse)(const std::string&)) {
  auto r = parse(std::string(v));
  if (!r) {
    std::fprintf(stderr, "%s: invalid value '%s'\n", flag, v);
    std::exit(usage());
  }
  return *r;
}

/// JSON string escaping is overkill for our generated labels, but keep the
/// output well-formed even if a topology token sneaks in a backslash.
void json_escaped(std::FILE* f, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') std::fputc('\\', f);
    std::fputc(c, f);
  }
}

void json_metric_stats(std::FILE* f, const char* name, const MetricStats& m, const char* tail) {
  std::fprintf(f,
               "       \"%s\": {\"mean\": %.6f, \"stddev\": %.6f, \"min\": %.6f, "
               "\"max\": %.6f, \"ci_lo\": %.6f, \"ci_hi\": %.6f}%s\n",
               name, m.mean, m.stddev, m.min, m.max, m.ci_lo, m.ci_hi, tail);
}

int emit_json(const std::string& path, const Options& opt, unsigned threads,
              const std::vector<Experiment>& exps,
              const std::vector<ReplicatedExperimentResult>& results,
              const std::vector<RtRow>& rt_rows, double wall) {
  std::FILE* f = path == "-" ? stdout : std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::int64_t total_reqs = 0;
  for (const ReplicatedExperimentResult& r : results)
    for (const RunResult& run : r.result.runs) total_reqs += run.total_requests;
  std::fprintf(f, "{\n  \"bench\": \"experiment_sweep\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", opt.smoke ? "smoke" : "full");
  std::fprintf(f, "  \"threads\": %u,\n  \"seed\": %llu,\n  \"replicas\": %d,\n", threads,
               static_cast<unsigned long long>(opt.seed), opt.replicas);
  std::fprintf(f, "  \"shards\": %d,\n", opt.shards);
  std::fprintf(f, "  \"scenario_count\": %zu,\n  \"total_requests\": %lld,\n",
               results.size(), static_cast<long long>(total_reqs));
  std::fprintf(f, "  \"wall_seconds\": %.6f,\n  \"scenarios\": [\n", wall);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ReplicatedExperimentResult& r = results[i];
    const Experiment& e = exps[i];
    // Scalar metrics are replica 0's run — the cell exactly as seeded, i.e.
    // the point sample an unreplicated sweep would have reported; the
    // replication block carries the cross-replica statistics.
    const RunResult& point = r.result.runs.front();
    std::fprintf(f, "    {\"label\": \"");
    json_escaped(f, r.label);
    std::fprintf(f, "\", \"protocol\": \"%s\", \"topology\": \"%s\", \"nodes\": %d, ",
                 e.protocol.name(), e.topology.family_name(), e.topology.nodes);
    std::fprintf(f, "\"latency\": \"%s\", \"workload\": \"%s\", \"rounds\": %lld,\n",
                 e.latency.name(), e.rounds > 0 ? "closed-loop" : e.workload.name(),
                 static_cast<long long>(e.rounds));
    if (e.fault.active()) {
      // Fault block: present exactly when the cell injects faults, so the
      // schema can require it conditionally. recovery_delta_units compares
      // against the cell's fault-free twin and can be negative (faults
      // reshuffle interleavings).
      std::fprintf(f,
                   "     \"fault\": \"%s\", \"messages_dropped\": %llu, "
                   "\"messages_duplicated\": %llu, \"crashes\": %d,\n"
                   "     \"stabilize_rounds\": %d, \"recovery_delta_units\": %.3f,\n",
                   e.fault.name(),
                   static_cast<unsigned long long>(point.messages_dropped),
                   static_cast<unsigned long long>(point.messages_duplicated), point.crashes,
                   point.stabilize_rounds, point.recovery_delta_units);
      if (e.fault.has_partition() || e.fault.has_churn()) {
        // Partition/churn sub-block: present exactly when the cell schedules
        // topology faults beyond crashes, so the schema can require it
        // conditionally alongside the fault block.
        std::fprintf(f,
                     "     \"partitions\": %d, \"partition_backlog_drained\": %llu,\n"
                     "     \"partition_delta_units\": %.3f, \"reselections\": %d,\n",
                     point.partitions,
                     static_cast<unsigned long long>(point.partition_backlog_drained),
                     point.partition_delta_units, point.reselections);
      }
    }
    if (i < rt_rows.size() && rt_rows[i].present) {
      // Runtime block: present exactly when --rt ran this cell (fault-free
      // arrow-loop), so the schema can require it conditionally. The checker
      // verdict — not any golden — is the correctness signal; hops_ratio is
      // the sim-predicted vs runtime-measured cross-validation number.
      const RtRow& rt = rt_rows[i];
      std::fprintf(f,
                   "     \"runtime\": {\"threads\": %d, \"ops\": %lld, \"ops_per_sec\": %.1f,\n"
                   "      \"queue_messages\": %llu, \"checker_passed\": %s, "
                   "\"rt_hops_per_op\": %.4f,\n"
                   "      \"sim_hops_per_op\": %.4f, \"hops_ratio\": %.4f, "
                   "\"sim_hops_zero\": %s},\n",
                   rt.threads, rt.ops, rt.ops_per_sec, rt.queue_messages,
                   rt.checker_passed ? "true" : "false", rt.rt_hops_per_op, rt.sim_hops_per_op,
                   rt.hops_ratio, rt.sim_hops_zero ? "true" : "false");
    }
    std::fprintf(f,
                 "     \"makespan_units\": %.3f, \"total_requests\": %lld, "
                 "\"messages\": %llu, \"total_hops\": %lld,\n",
                 ticks_to_units_d(point.makespan),
                 static_cast<long long>(point.total_requests),
                 static_cast<unsigned long long>(point.messages),
                 static_cast<long long>(point.total_hops));
    std::fprintf(f,
                 "     \"avg_hops_per_request\": %.4f, \"avg_round_latency_units\": %.4f, "
                 "\"total_latency_units\": %.3f, \"seconds\": %.6f%s\n",
                 point.avg_hops_per_request, point.avg_round_latency_units,
                 ticks_to_units_d(point.total_latency), r.seconds,
                 opt.replicas > 1 ? "," : "");
    if (opt.replicas > 1) {
      const ReplicatedResult& rep = r.result;
      std::fprintf(f, "     \"replication\": {\"replicas\": %d, \"confidence\": %.4f,\n",
                   rep.replicas, rep.confidence);
      json_metric_stats(f, "makespan_units", rep.makespan_units, ",");
      json_metric_stats(f, "total_requests", rep.total_requests, ",");
      json_metric_stats(f, "messages", rep.messages, ",");
      json_metric_stats(f, "total_hops", rep.total_hops, ",");
      json_metric_stats(f, "avg_hops_per_request", rep.avg_hops_per_request, ",");
      json_metric_stats(f, "avg_round_latency_units", rep.avg_round_latency_units, ",");
      json_metric_stats(f, "total_latency_units", rep.total_latency_units, "}");
    }
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (f != stdout) std::fclose(f);
  return 0;
}

/// Long-format dump: one row per cell x replica x metric. Labels and axis
/// names never contain commas (they are generated from fixed token sets), so
/// no quoting is needed. Fault metrics are emitted only for fault cells,
/// mirroring the JSON schema's conditional block.
int emit_csv(const std::string& path, const std::vector<Experiment>& exps,
             const std::vector<ReplicatedExperimentResult>& results) {
  std::FILE* f = path == "-" ? stdout : std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "label,protocol,topology,nodes,latency,fault,rounds,replica,metric,value\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ReplicatedExperimentResult& r = results[i];
    const Experiment& e = exps[i];
    for (std::size_t rep = 0; rep < r.result.runs.size(); ++rep) {
      const RunResult& run = r.result.runs[rep];
      auto row = [&](const char* metric, double value) {
        std::fprintf(f, "%s,%s,%s,%d,%s,%s,%lld,%zu,%s,%.6f\n", r.label.c_str(),
                     e.protocol.name(), e.topology.family_name(), e.topology.nodes,
                     e.latency.name(), e.fault.active() ? e.fault.name() : "none",
                     static_cast<long long>(e.rounds), rep, metric, value);
      };
      row("makespan_units", ticks_to_units_d(run.makespan));
      row("total_requests", static_cast<double>(run.total_requests));
      row("messages", static_cast<double>(run.messages));
      row("total_hops", static_cast<double>(run.total_hops));
      row("avg_hops_per_request", run.avg_hops_per_request);
      row("avg_round_latency_units", run.avg_round_latency_units);
      row("total_latency_units", ticks_to_units_d(run.total_latency));
      if (e.fault.active()) {
        row("messages_dropped", static_cast<double>(run.messages_dropped));
        row("messages_duplicated", static_cast<double>(run.messages_duplicated));
        row("crashes", static_cast<double>(run.crashes));
        row("recovery_delta_units", run.recovery_delta_units);
        if (e.fault.has_partition() || e.fault.has_churn()) {
          row("partitions", static_cast<double>(run.partitions));
          row("partition_backlog_drained",
              static_cast<double>(run.partition_backlog_drained));
          row("partition_delta_units", run.partition_delta_units);
          row("reselections", static_cast<double>(run.reselections));
        }
      }
    }
  }
  if (f != stdout) std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--protocol")) {
      opt.protocols = split_csv(next("--protocol"));
    } else if (!std::strcmp(argv[i], "--topology")) {
      opt.topologies = split_csv(next("--topology"));
    } else if (!std::strcmp(argv[i], "--nodes")) {
      opt.nodes.clear();
      for (const auto& tok : split_csv(next("--nodes"))) {
        const std::int64_t n = require_i64("--nodes", tok.c_str(), parse_positive_i64);
        // Checked before the NodeId narrowing: 5e9 must be refused, not
        // silently wrapped into a small plausible-looking instance.
        if (n > (std::int64_t{1} << 28)) {
          std::fprintf(stderr, "--nodes: %lld exceeds the 2^28 scale cap\n",
                       static_cast<long long>(n));
          return 2;
        }
        opt.nodes.push_back(static_cast<NodeId>(n));
      }
    } else if (!std::strcmp(argv[i], "--latency")) {
      opt.latencies = split_csv(next("--latency"));
    } else if (!std::strcmp(argv[i], "--fault")) {
      opt.faults = split_csv(next("--fault"));
    } else if (!std::strcmp(argv[i], "--workload")) {
      opt.workload = next("--workload");
    } else if (!std::strcmp(argv[i], "--reqs")) {
      opt.reqs_per_node = require_i64("--reqs", next("--reqs"), parse_positive_i64);
    } else if (!std::strcmp(argv[i], "--threads")) {
      opt.threads =
          static_cast<unsigned>(require_i64("--threads", next("--threads"), parse_nonneg_i64));
    } else if (!std::strcmp(argv[i], "--service-frac")) {
      opt.service_divisor = require_i64("--service-frac", next("--service-frac"), parse_nonneg_i64);
    } else if (!std::strcmp(argv[i], "--seed")) {
      opt.seed =
          static_cast<std::uint64_t>(require_i64("--seed", next("--seed"), parse_nonneg_i64));
    } else if (!std::strcmp(argv[i], "--repeat")) {
      opt.repeat = static_cast<int>(require_i64("--repeat", next("--repeat"), parse_positive_i64));
    } else if (!std::strcmp(argv[i], "--replicas")) {
      opt.replicas =
          static_cast<int>(require_i64("--replicas", next("--replicas"), parse_positive_i64));
    } else if (!std::strcmp(argv[i], "--shards")) {
      opt.shards = static_cast<int>(require_i64("--shards", next("--shards"), parse_positive_i64));
    } else if (!std::strcmp(argv[i], "--rt")) {
      opt.rt_threads = static_cast<int>(require_i64("--rt", next("--rt"), parse_nonneg_i64));
    } else if (!std::strcmp(argv[i], "--rt-app")) {
      opt.rt_app = next("--rt-app");
    } else if (!std::strcmp(argv[i], "--json")) {
      opt.json_path = next("--json");
    } else if (!std::strcmp(argv[i], "--csv")) {
      opt.csv_path = next("--csv");
    } else if (!std::strcmp(argv[i], "--smoke")) {
      opt.smoke = true;
    } else {
      return usage();
    }
  }
  if (opt.smoke) {
    // CI cross-protocol smoke: every protocol in both its modes, three
    // topology families (incl. a torus), two latency regimes, R=2
    // replication so the statistics path is schema-gated — still finishes
    // in well under a second at these sizes.
    opt.protocols = {"arrow",      "arrow-loop",      "centralized",
                     "forwarding", "forwarding-loop", "token"};
    opt.topologies = {"complete", "randtree", "torus:4x4"};
    opt.nodes = {16, 32};
    opt.latencies = {"sync", "uniform:0.1"};
    opt.workload = "poisson:24:0.5";
    opt.reqs_per_node = 20;
    opt.repeat = 1;
    opt.replicas = 2;
    if (opt.json_path.empty()) opt.json_path = "sweep_smoke.json";
  }
  if (opt.nodes.empty() || opt.latencies.empty() || opt.protocols.empty() ||
      opt.topologies.empty() || opt.faults.empty() || opt.repeat < 1 || opt.replicas < 1)
    return usage();

  const Time service = opt.service_divisor == 0 ? 0 : kTicksPerUnit / opt.service_divisor;

  WorkloadSpec workload;
  if (!parse_workload(opt.workload, workload)) return usage();

  rt::RtApp rt_app = rt::RtApp::kMutex;
  if (!parse_rt_app(opt.rt_app, rt_app)) {
    std::fprintf(stderr, "--rt-app: invalid value '%s'\n", opt.rt_app.c_str());
    return usage();
  }

  // The fault axis crosses like any other, so parse it up front.
  std::vector<FaultSpec> fault_specs;
  for (const std::string& f : opt.faults) {
    auto spec = parse_fault_spec(f);
    if (!spec) {
      std::fprintf(stderr, "--fault: invalid spec '%s'\n", f.c_str());
      return usage();
    }
    fault_specs.push_back(*spec);
  }

  // The cross-product: protocol x topology x nodes x latency x fault x
  // repeat, each cell seeded independently through Experiment::with_seed.
  std::vector<Experiment> exps;
  std::uint64_t scenario_seed = opt.seed;
  for (const std::string& proto_str : opt.protocols) {
    ProtocolSpec proto;
    if (!parse_protocol(proto_str, proto, service)) return usage();
    for (const std::string& topo_str : opt.topologies) {
      // grid:RxC / torus:RxC carry their own size; crossing them with
      // --nodes would just emit identical duplicate scenarios.
      const bool fixed_size =
          topo_str.rfind("grid:", 0) == 0 || topo_str.rfind("torus:", 0) == 0;
      std::vector<NodeId> sizes = fixed_size ? std::vector<NodeId>{0} : opt.nodes;
      if (topo_str == "hypercube") {
        // Hypercube rounds each N down to a power of two; drop sizes that
        // collapse onto an earlier one so the grid has no duplicate cells.
        std::vector<NodeId> rounded;
        for (NodeId n : sizes) {
          TopologySpec probe;
          if (!parse_topology(topo_str, n, probe)) return usage();
          if (std::find(rounded.begin(), rounded.end(), probe.nodes) == rounded.end())
            rounded.push_back(probe.nodes);
        }
        sizes = std::move(rounded);
      }
      for (NodeId n : sizes) {
        TopologySpec topo;
        if (!parse_topology(topo_str, n, topo)) return usage();
        for (const std::string& lat_str : opt.latencies) {
          LatencySpec lat;
          if (!parse_latency(lat_str, lat)) return usage();
          for (const FaultSpec& fault : fault_specs) {
            for (int r = 0; r < opt.repeat; ++r) {
              Experiment e;
              e.protocol = proto;
              e.topology = topo;
              e.latency = lat;
              e.fault = fault;
              if (is_loop_token(proto_str))
                e.rounds = opt.reqs_per_node;
              else
                e.workload = workload;
              // Shard every cell with a sharded mirror; the rest stay serial
              // rather than failing validation. The mirror matrix (see
              // shardable() in exp/experiment.cpp): arrow both modes and
              // forwarding both modes shard; token passing is inherently
              // serial and CLI "centralized" is always closed-loop (no
              // sharded mirror for its reply loop); topology-fault schedules
              // (crash, partition, churn) force serial everywhere.
              const bool can_shard =
                  !fault.has_topology_faults() && proto.kind != Protocol::kTokenPassing &&
                  !(proto.kind == Protocol::kCentralized && is_loop_token(proto_str));
              if (can_shard) e.shards = opt.shards;
              e = e.with_seed(++scenario_seed);
              e.label = e.default_label();
              if (is_loop_token(proto_str) && proto.kind == Protocol::kPointerForwarding)
                e.label.insert(e.label.find(' '), "-loop");
              if (opt.repeat > 1) e.label += "#" + std::to_string(r);
              exps.push_back(std::move(e));
            }
          }
        }
      }
    }
  }

  if (opt.smoke) {
    // Dedicated fault cells: crossing faults into the whole smoke grid would
    // blow it up, so pin the machinery with eight targeted cells instead —
    // message loss, crash + recovery, a partition window (cut + heal + FIFO
    // backlog drain) and churn re-selection, each on the protocol with full
    // pointer recovery (arrow) and on the closed-loop baseline with graceful
    // degradation (forwarding-loop).
    struct SmokeFaultCell {
      const char* proto;
      const char* fault;
    };
    constexpr SmokeFaultCell kFaultCells[] = {
        {"arrow", "loss:0.1"},
        {"arrow", "crash:2"},
        {"arrow", "partition:2:4:8"},
        {"arrow", "churn:8"},
        {"forwarding-loop", "loss:0.1"},
        {"forwarding-loop", "crash:2"},
        {"forwarding-loop", "partition:2:4:8"},
        {"forwarding-loop", "churn:8"},
    };
    for (const SmokeFaultCell& cell : kFaultCells) {
      ProtocolSpec proto;
      TopologySpec topo;
      LatencySpec lat;
      if (!parse_protocol(cell.proto, proto, service) || !parse_topology("randtree", 24, topo) ||
          !parse_latency("sync", lat))
        return usage();
      Experiment e;
      e.protocol = proto;
      e.topology = topo;
      e.latency = lat;
      e.fault = *parse_fault_spec(cell.fault);
      if (is_loop_token(cell.proto))
        e.rounds = opt.reqs_per_node;
      else
        e.workload = workload;
      e = e.with_seed(++scenario_seed);
      e.label = e.default_label();
      if (is_loop_token(cell.proto) && proto.kind == Protocol::kPointerForwarding)
        e.label.insert(e.label.find(' '), "-loop");
      exps.push_back(std::move(e));
    }
  }

  // Refuse inconsistent or absurd cells before any simulation starts:
  // structural errors (grid dims vs nodes, hypercube id budget) and
  // materialization blowups (complete at n = 10^6 is ~5 * 10^11 edges) exit
  // 2 with a checked diagnostic instead of dying in the allocator.
  for (const Experiment& e : exps) {
    if (auto err = validate_experiment(e)) {
      std::fprintf(stderr, "%s: %s\n", e.label.c_str(), err->c_str());
      return 2;
    }
  }

  SweepRunner runner(opt.threads);
  // --json - / --csv - own stdout: the human-readable table would corrupt
  // the piped document, so suppress it there.
  const bool quiet = opt.json_path == "-" || opt.csv_path == "-";
  if (!quiet)
    std::printf("=== experiment sweep: %zu cells (%zu protocols x %zu topologies x %zu sizes "
                "x %zu latencies x %zu faults x %d) x %d replicas, %u threads ===\n\n",
                exps.size(), opt.protocols.size(), opt.topologies.size(), opt.nodes.size(),
                opt.latencies.size(), opt.faults.size(), opt.repeat, opt.replicas,
                runner.threads());

  const ReplicationSpec rep{opt.replicas, opt.seed, 0.95};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<ReplicatedExperimentResult> results = run_replicated(exps, rep, runner);
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0).count();

  const bool replicated = opt.replicas > 1;
  std::vector<std::string> columns = {"scenario", "makespan(units)", "reqs", "msgs",
                                      "hops/req", "avg_lat(units)",  "secs"};
  if (replicated) {
    // Dispersion columns: cross-replica stddev of the two headline metrics.
    columns.insert(columns.begin() + 2, "mk_sd");
    columns.push_back("lat_sd");
  }
  Table table(columns);
  std::int64_t total_reqs = 0;
  for (const ReplicatedExperimentResult& r : results) {
    for (const RunResult& run : r.result.runs) total_reqs += run.total_requests;
    const RunResult& point = r.result.runs.front();
    auto& row = table.row()
                    .cell(r.label)
                    .cell(ticks_to_units_d(point.makespan), 1);
    if (replicated) row.cell(r.result.makespan_units.stddev, 2);
    row.cell(point.total_requests)
        .cell(static_cast<std::int64_t>(point.messages))
        .cell(point.avg_hops_per_request, 3)
        .cell(point.avg_round_latency_units, 3)
        .cell(r.seconds, 4);
    if (replicated) row.cell(r.result.avg_round_latency_units.stddev, 3);
  }
  if (!quiet) {
    emit_table(table, "sweep");
    std::printf("\n%zu cells x %d replicas, %lld simulated requests in %.3f s wall  "
                "(%.0f reqs/s, %.1f runs/s)\n",
                results.size(), opt.replicas, static_cast<long long>(total_reqs), wall,
                static_cast<double>(total_reqs) / wall,
                static_cast<double>(results.size() * static_cast<std::size_t>(opt.replicas)) /
                    wall);
  }

  // Optional runtime tier pass: every fault-free arrow-loop cell gets one
  // real-thread run cross-validated against its own sim twin. This happens
  // after the sweep so the sweep's wall/throughput numbers stay pure sim.
  std::vector<RtRow> rt_rows;
  if (opt.rt_threads >= 0) {
    rt_rows.resize(exps.size());
    const int rt_t = opt.rt_threads == 0
                         ? static_cast<int>(std::max(1u, std::thread::hardware_concurrency()))
                         : opt.rt_threads;
    for (std::size_t i = 0; i < exps.size(); ++i) {
      const Experiment& e = exps[i];
      if (e.protocol.kind != Protocol::kArrowClosedLoop || e.rounds <= 0 || e.fault.active())
        continue;
      rt::RtConfig rc;
      rc.threads = rt_t;
      rc.app = rt_app;
      const rt::RtCrossValidation cv = rt::run_rt_cross_validated(e, rc);
      RtRow& row = rt_rows[i];
      row.present = true;
      row.threads = cv.rt.threads;
      row.ops = static_cast<long long>(cv.rt.ops);
      row.ops_per_sec = cv.rt.ops_per_sec;
      row.queue_messages = static_cast<unsigned long long>(cv.rt.queue_messages);
      row.checker_passed = cv.check.ok;
      row.rt_hops_per_op = cv.rt_hops_per_op;
      row.sim_hops_per_op = cv.sim_hops_per_op;
      row.hops_ratio = cv.hops_ratio;
      row.sim_hops_zero = cv.sim_hops_zero;
      if (!quiet)
        std::printf("runtime %-44s T=%d ops/s=%.0f hops rt/sim=%.2f/%.2f ratio=%.2f checker=%s\n",
                    e.label.c_str(), row.threads, row.ops_per_sec, row.rt_hops_per_op,
                    row.sim_hops_per_op, row.hops_ratio, row.checker_passed ? "PASS" : "FAIL");
      if (!row.checker_passed) {
        std::fprintf(stderr, "runtime history check FAILED for %s: %s\n", e.label.c_str(),
                     cv.check.error.c_str());
        return 1;
      }
    }
  }

  if (!opt.json_path.empty()) {
    if (int rc = emit_json(opt.json_path, opt, runner.threads(), exps, results, rt_rows, wall))
      return rc;
    if (opt.json_path != "-") std::printf("wrote %s\n", opt.json_path.c_str());
  }
  if (!opt.csv_path.empty()) {
    if (int rc = emit_csv(opt.csv_path, exps, results)) return rc;
    if (opt.csv_path != "-") std::printf("wrote %s\n", opt.csv_path.c_str());
  }
  return 0;
}
