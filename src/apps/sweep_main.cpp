// sweep_main — parallel closed-loop scenario sweep CLI.
//
// Runs a grid of independent Figure-10-style closed-loop simulations
// (node counts × latency models) through SweepRunner's thread pool and
// prints one row per scenario plus aggregate throughput. Results are
// deterministic: per-scenario RNG seeds, fixed output order, identical
// numbers for any --threads value.
//
// Examples:
//   sweep_main                                    # default grid, all cores
//   sweep_main --nodes 64,256,1024 --reqs 200
//   sweep_main --threads 4 --latency uniform:0.1 --seed 7
//   sweep_main --latency sync,exp:0.3 --service-frac 16 --repeat 3
//
// Latency specs: sync | scaled:F | uniform:MIN_FRACTION | exp:MEAN_FRACTION
// (comma-separate several to cross them with the node counts).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

using namespace arrowdq;

namespace {

struct Options {
  std::vector<NodeId> nodes = {64, 128, 256, 512};
  std::vector<std::string> latencies = {"sync"};
  std::int64_t reqs_per_node = 100;
  Time service_divisor = 16;  // service = kTicksPerUnit / divisor (0 = free)
  unsigned threads = 0;       // 0 = hardware concurrency
  std::uint64_t seed = 1;
  int repeat = 1;  // replicas per grid point (distinct seeds)
};

std::vector<std::string> split_csv(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur.push_back(*p);
    }
  }
  return out;
}

bool parse_latency(const std::string& s, std::uint64_t seed, LatencySpec& out) {
  auto colon = s.find(':');
  const std::string kind = s.substr(0, colon);
  const double param = colon == std::string::npos ? -1.0 : std::atof(s.c_str() + colon + 1);
  if (kind == "sync") {
    out = LatencySpec::synchronous();
  } else if (kind == "scaled") {
    out = LatencySpec::scaled(param > 0 ? param : 0.5);
  } else if (kind == "uniform") {
    out = LatencySpec::uniform_async(seed, param > 0 ? param : 0.05);
  } else if (kind == "exp") {
    out = LatencySpec::truncated_exp(seed, param > 0 ? param : 0.3);
  } else {
    return false;
  }
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: sweep_main [--nodes N1,N2,..] [--reqs N] [--threads T]\n"
               "                  [--latency SPEC1,SPEC2,..] [--service-frac D] [--seed S]\n"
               "                  [--repeat R]\n"
               "  SPEC: sync | scaled:F | uniform:MIN | exp:MEAN\n"
               "  service time = one unit / D ticks (0 = free local processing)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--nodes")) {
      opt.nodes.clear();
      for (const auto& tok : split_csv(next("--nodes")))
        opt.nodes.push_back(static_cast<NodeId>(std::atoi(tok.c_str())));
    } else if (!std::strcmp(argv[i], "--latency")) {
      opt.latencies = split_csv(next("--latency"));
    } else if (!std::strcmp(argv[i], "--reqs")) {
      opt.reqs_per_node = std::atoll(next("--reqs"));
    } else if (!std::strcmp(argv[i], "--threads")) {
      opt.threads = static_cast<unsigned>(std::atoi(next("--threads")));
    } else if (!std::strcmp(argv[i], "--service-frac")) {
      opt.service_divisor = std::atoll(next("--service-frac"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (!std::strcmp(argv[i], "--repeat")) {
      opt.repeat = std::atoi(next("--repeat"));
    } else {
      return usage();
    }
  }
  if (opt.nodes.empty() || opt.latencies.empty() || opt.repeat < 1) return usage();

  const Time service = opt.service_divisor == 0 ? 0 : kTicksPerUnit / opt.service_divisor;

  std::vector<SweepScenario> scenarios;
  std::uint64_t scenario_seed = opt.seed;
  for (NodeId n : opt.nodes) {
    Graph g = make_complete(n);
    Tree t = balanced_binary_overlay(g);
    for (const std::string& lat_str : opt.latencies) {
      for (int r = 0; r < opt.repeat; ++r) {
        ++scenario_seed;
        LatencySpec spec;
        if (!parse_latency(lat_str, scenario_seed, spec)) return usage();
        ClosedLoopConfig cfg;
        cfg.requests_per_node = opt.reqs_per_node;
        cfg.service_time = service;
        char label[96];
        std::snprintf(label, sizeof label, "n=%d %s%s", n, spec.name(),
                      opt.repeat > 1 ? ("#" + std::to_string(r)).c_str() : "");
        scenarios.push_back(SweepScenario{label, t, spec, cfg});
      }
    }
  }

  SweepRunner runner(opt.threads);
  std::printf("=== closed-loop sweep: %zu scenarios, %lld reqs/node, %u threads ===\n\n",
              scenarios.size(), static_cast<long long>(opt.reqs_per_node), runner.threads());

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<SweepResult> results = runner.run(scenarios);
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0).count();

  Table table({"scenario", "makespan(units)", "avg_lat(units)", "hops/req", "tree_msgs",
               "sim_reqs", "secs"});
  std::int64_t total_reqs = 0;
  for (const SweepResult& r : results) {
    total_reqs += r.result.total_requests;
    table.row()
        .cell(r.label)
        .cell(ticks_to_units_d(r.result.makespan), 1)
        .cell(r.result.avg_round_latency_units, 3)
        .cell(r.result.avg_hops_per_request, 3)
        .cell(static_cast<std::int64_t>(r.result.tree_messages))
        .cell(r.result.total_requests)
        .cell(r.seconds, 4);
  }
  emit_table(table, "sweep");
  std::printf("\n%zu scenarios, %lld simulated requests in %.3f s wall  (%.0f reqs/s, %.1f scen/s)\n",
              results.size(), static_cast<long long>(total_reqs), wall,
              static_cast<double>(total_reqs) / wall, static_cast<double>(results.size()) / wall);
  return 0;
}
