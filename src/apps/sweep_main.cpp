// sweep_main — parallel experiment sweep CLI over the unified Experiment API.
//
// Builds the full cross-product protocol × topology × node count × latency
// (× repeat) as a list of declarative Experiment values, shards it across
// SweepRunner's thread pool, and prints one row per scenario plus aggregate
// throughput. Results are deterministic: per-scenario seeds derived from
// --seed, fixed output order, identical numbers for any --threads value.
//
// Examples:
//   sweep_main                                          # default grid, all cores
//   sweep_main --protocol arrow-loop,centralized --nodes 64,256 --reqs 200
//   sweep_main --protocol arrow,forwarding,token --workload poisson:24:0.5
//   sweep_main --topology complete,randtree --latency sync,exp:0.3 --json out.json
//   sweep_main --smoke --json sweep_smoke.json          # CI cross-protocol smoke
//
// Axes
//   --protocol  arrow | arrow-loop | centralized | forwarding | token
//   --topology  complete | path | randtree | wtree | grid:RxC
//   --nodes     N1,N2,...      (applied to every non-grid topology)
//   --latency   sync | scaled:F | uniform:MIN | exp:MEAN
//   --workload  oneshot | poisson:COUNT:RATE | bursty:B:SIZE:GAP |
//               sequential:COUNT:GAP        (one-shot protocols only)
//   --reqs      closed-loop rounds per node (arrow-loop, centralized)
//
// JSON: --json FILE emits the cross-product with uniform metrics per
// scenario (schema validated by scripts/bench_gate.py --validate-sweep).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "support/table.hpp"

using namespace arrowdq;

namespace {

struct Options {
  std::vector<std::string> protocols = {"arrow-loop"};
  std::vector<std::string> topologies = {"complete"};
  std::vector<NodeId> nodes = {64, 128, 256, 512};
  std::vector<std::string> latencies = {"sync"};
  std::string workload = "oneshot";
  std::int64_t reqs_per_node = 100;
  Time service_divisor = 16;  // service = kTicksPerUnit / divisor (0 = free)
  unsigned threads = 0;       // 0 = hardware concurrency
  std::uint64_t seed = 1;
  int repeat = 1;             // replicas per grid point (distinct seeds)
  std::string json_path;      // empty = no JSON
  bool smoke = false;
};

std::vector<std::string> split_csv(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur.push_back(*p);
    }
  }
  return out;
}

bool parse_protocol(const std::string& s, ProtocolSpec& out, Time service) {
  if (s == "arrow") {
    out = ProtocolSpec::arrow_one_shot(service);
  } else if (s == "arrow-loop") {
    out = ProtocolSpec::arrow_closed_loop(service);
  } else if (s == "centralized") {
    out = ProtocolSpec::centralized(0, service);
  } else if (s == "forwarding") {
    out = ProtocolSpec::pointer_forwarding(ForwardingMode::kCompressToRequester, service);
  } else if (s == "token") {
    out = ProtocolSpec::token_passing(service);
  } else {
    return false;
  }
  return true;
}

bool parse_topology(const std::string& s, NodeId nodes, TopologySpec& out) {
  if (s == "complete") {
    out = TopologySpec::complete(nodes);
  } else if (s == "path") {
    out = TopologySpec::path(nodes);
  } else if (s == "randtree") {
    out = TopologySpec::random_tree(nodes, /*seed=*/0);  // seeded per scenario
  } else if (s == "wtree") {
    out = TopologySpec::weighted_tree(nodes, /*seed=*/0);
  } else if (s.rfind("grid:", 0) == 0) {
    auto x = s.find('x', 5);
    if (x == std::string::npos) return false;
    NodeId rows = static_cast<NodeId>(std::atoi(s.c_str() + 5));
    NodeId cols = static_cast<NodeId>(std::atoi(s.c_str() + x + 1));
    if (rows < 1 || cols < 1) return false;
    out = TopologySpec::grid(rows, cols);
  } else {
    return false;
  }
  return true;
}

bool parse_latency(const std::string& s, LatencySpec& out) {
  auto colon = s.find(':');
  const std::string kind = s.substr(0, colon);
  const double param = colon == std::string::npos ? -1.0 : std::atof(s.c_str() + colon + 1);
  if (kind == "sync") {
    out = LatencySpec::synchronous();
  } else if (kind == "scaled") {
    out = LatencySpec::scaled(param > 0 ? param : 0.5);
  } else if (kind == "uniform") {
    out = LatencySpec::uniform_async(/*seed=*/0, param > 0 ? param : 0.05);
  } else if (kind == "exp") {
    out = LatencySpec::truncated_exp(/*seed=*/0, param > 0 ? param : 0.3);
  } else {
    return false;
  }
  return true;
}

bool parse_workload(const std::string& s, WorkloadSpec& out) {
  // Missing fields surface as -1 so malformed specs fail parsing here
  // (usage error) instead of aborting later on a generator invariant.
  auto field = [&s](int idx) -> double {
    std::size_t pos = 0;
    for (int i = 0; i < idx; ++i) {
      pos = s.find(':', pos);
      if (pos == std::string::npos) return -1.0;
      ++pos;
    }
    return std::atof(s.c_str() + pos);
  };
  if (s == "oneshot") {
    out = WorkloadSpec::one_shot_all();
  } else if (s.rfind("poisson:", 0) == 0) {
    if (field(1) <= 0 || field(2) <= 0) return false;
    out = WorkloadSpec::poisson(static_cast<int>(field(1)), field(2), /*seed=*/0);
  } else if (s.rfind("bursty:", 0) == 0) {
    if (field(1) <= 0 || field(2) <= 0 || field(3) < 0) return false;
    out = WorkloadSpec::bursty_load(static_cast<int>(field(1)), static_cast<int>(field(2)),
                                    static_cast<Weight>(field(3)), /*seed=*/0);
  } else if (s.rfind("sequential:", 0) == 0) {
    if (field(1) <= 0 || field(2) < 0) return false;
    out = WorkloadSpec::sequential(static_cast<int>(field(1)),
                                   static_cast<Weight>(field(2)), /*seed=*/0);
  } else {
    return false;
  }
  return true;
}

bool is_closed_loop_protocol(const ProtocolSpec& p) {
  return p.kind == Protocol::kArrowClosedLoop || p.kind == Protocol::kCentralized;
}

int usage() {
  std::fprintf(stderr,
               "usage: sweep_main [--protocol P1,P2,..] [--topology T1,T2,..]\n"
               "                  [--nodes N1,N2,..] [--latency SPEC1,SPEC2,..]\n"
               "                  [--workload W] [--reqs N] [--service-frac D]\n"
               "                  [--threads T] [--seed S] [--repeat R]\n"
               "                  [--json FILE] [--smoke]\n"
               "  P: arrow | arrow-loop | centralized | forwarding | token\n"
               "  T: complete | path | randtree | wtree | grid:RxC\n"
               "  SPEC: sync | scaled:F | uniform:MIN | exp:MEAN\n"
               "  W: oneshot | poisson:COUNT:RATE | bursty:B:SIZE:GAP | sequential:COUNT:GAP\n"
               "  service time = one unit / D ticks (0 = free local processing)\n");
  return 2;
}

/// JSON string escaping is overkill for our generated labels, but keep the
/// output well-formed even if a topology token sneaks in a backslash.
void json_escaped(std::FILE* f, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') std::fputc('\\', f);
    std::fputc(c, f);
  }
}

int emit_json(const std::string& path, const Options& opt, unsigned threads,
              const std::vector<Experiment>& exps, const std::vector<ExperimentResult>& results,
              double wall) {
  std::FILE* f = path == "-" ? stdout : std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::int64_t total_reqs = 0;
  for (const ExperimentResult& r : results) total_reqs += r.result.total_requests;
  std::fprintf(f, "{\n  \"bench\": \"experiment_sweep\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", opt.smoke ? "smoke" : "full");
  std::fprintf(f, "  \"threads\": %u,\n  \"seed\": %llu,\n", threads,
               static_cast<unsigned long long>(opt.seed));
  std::fprintf(f, "  \"scenario_count\": %zu,\n  \"total_requests\": %lld,\n",
               results.size(), static_cast<long long>(total_reqs));
  std::fprintf(f, "  \"wall_seconds\": %.6f,\n  \"scenarios\": [\n", wall);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    const Experiment& e = exps[i];
    std::fprintf(f, "    {\"label\": \"");
    json_escaped(f, r.label);
    std::fprintf(f, "\", \"protocol\": \"%s\", \"topology\": \"%s\", \"nodes\": %d, ",
                 e.protocol.name(), e.topology.family_name(), e.topology.nodes);
    std::fprintf(f, "\"latency\": \"%s\", \"workload\": \"%s\", \"rounds\": %lld,\n",
                 e.latency.name(), is_closed_loop_protocol(e.protocol) ? "closed-loop"
                                                                       : e.workload.name(),
                 static_cast<long long>(e.rounds));
    std::fprintf(f,
                 "     \"makespan_units\": %.3f, \"total_requests\": %lld, "
                 "\"messages\": %llu, \"total_hops\": %lld,\n",
                 ticks_to_units_d(r.result.makespan),
                 static_cast<long long>(r.result.total_requests),
                 static_cast<unsigned long long>(r.result.messages),
                 static_cast<long long>(r.result.total_hops));
    std::fprintf(f,
                 "     \"avg_hops_per_request\": %.4f, \"avg_round_latency_units\": %.4f, "
                 "\"total_latency_units\": %.3f, \"seconds\": %.6f}%s\n",
                 r.result.avg_hops_per_request, r.result.avg_round_latency_units,
                 ticks_to_units_d(r.result.total_latency), r.seconds,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (f != stdout) std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--protocol")) {
      opt.protocols = split_csv(next("--protocol"));
    } else if (!std::strcmp(argv[i], "--topology")) {
      opt.topologies = split_csv(next("--topology"));
    } else if (!std::strcmp(argv[i], "--nodes")) {
      opt.nodes.clear();
      for (const auto& tok : split_csv(next("--nodes")))
        opt.nodes.push_back(static_cast<NodeId>(std::atoi(tok.c_str())));
    } else if (!std::strcmp(argv[i], "--latency")) {
      opt.latencies = split_csv(next("--latency"));
    } else if (!std::strcmp(argv[i], "--workload")) {
      opt.workload = next("--workload");
    } else if (!std::strcmp(argv[i], "--reqs")) {
      opt.reqs_per_node = std::atoll(next("--reqs"));
    } else if (!std::strcmp(argv[i], "--threads")) {
      opt.threads = static_cast<unsigned>(std::atoi(next("--threads")));
    } else if (!std::strcmp(argv[i], "--service-frac")) {
      opt.service_divisor = std::atoll(next("--service-frac"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (!std::strcmp(argv[i], "--repeat")) {
      opt.repeat = std::atoi(next("--repeat"));
    } else if (!std::strcmp(argv[i], "--json")) {
      opt.json_path = next("--json");
    } else if (!std::strcmp(argv[i], "--smoke")) {
      opt.smoke = true;
    } else {
      return usage();
    }
  }
  if (opt.smoke) {
    // CI cross-protocol smoke: every protocol, two topology families, two
    // latency regimes, small sizes — finishes in well under a second.
    opt.protocols = {"arrow", "arrow-loop", "centralized", "forwarding", "token"};
    opt.topologies = {"complete", "randtree"};
    opt.nodes = {16, 32};
    opt.latencies = {"sync", "uniform:0.1"};
    opt.workload = "poisson:24:0.5";
    opt.reqs_per_node = 20;
    opt.repeat = 1;
    if (opt.json_path.empty()) opt.json_path = "sweep_smoke.json";
  }
  if (opt.nodes.empty() || opt.latencies.empty() || opt.protocols.empty() ||
      opt.topologies.empty() || opt.repeat < 1)
    return usage();

  const Time service = opt.service_divisor == 0 ? 0 : kTicksPerUnit / opt.service_divisor;

  WorkloadSpec workload;
  if (!parse_workload(opt.workload, workload)) return usage();

  // The cross-product: protocol x topology x nodes x latency x repeat, each
  // cell seeded independently through Experiment::with_seed.
  std::vector<Experiment> exps;
  std::uint64_t scenario_seed = opt.seed;
  for (const std::string& proto_str : opt.protocols) {
    ProtocolSpec proto;
    if (!parse_protocol(proto_str, proto, service)) return usage();
    for (const std::string& topo_str : opt.topologies) {
      // grid:RxC carries its own size; crossing it with --nodes would just
      // emit identical duplicate scenarios.
      const bool fixed_size = topo_str.rfind("grid:", 0) == 0;
      const std::vector<NodeId> sizes = fixed_size ? std::vector<NodeId>{0} : opt.nodes;
      for (NodeId n : sizes) {
        TopologySpec topo;
        if (!parse_topology(topo_str, n, topo)) return usage();
        for (const std::string& lat_str : opt.latencies) {
          LatencySpec lat;
          if (!parse_latency(lat_str, lat)) return usage();
          for (int r = 0; r < opt.repeat; ++r) {
            Experiment e;
            e.protocol = proto;
            e.topology = topo;
            e.latency = lat;
            if (is_closed_loop_protocol(proto))
              e.rounds = opt.reqs_per_node;
            else
              e.workload = workload;
            e = e.with_seed(++scenario_seed);
            e.label = e.default_label();
            if (opt.repeat > 1) e.label += "#" + std::to_string(r);
            exps.push_back(std::move(e));
          }
        }
      }
    }
  }

  SweepRunner runner(opt.threads);
  std::printf("=== experiment sweep: %zu scenarios (%zu protocols x %zu topologies x %zu sizes "
              "x %zu latencies x %d), %u threads ===\n\n",
              exps.size(), opt.protocols.size(), opt.topologies.size(), opt.nodes.size(),
              opt.latencies.size(), opt.repeat, runner.threads());

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<ExperimentResult> results = run_experiments(exps, runner);
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0).count();

  Table table({"scenario", "makespan(units)", "reqs", "msgs", "hops/req", "avg_lat(units)",
               "secs"});
  std::int64_t total_reqs = 0;
  for (const ExperimentResult& r : results) {
    total_reqs += r.result.total_requests;
    table.row()
        .cell(r.label)
        .cell(ticks_to_units_d(r.result.makespan), 1)
        .cell(r.result.total_requests)
        .cell(static_cast<std::int64_t>(r.result.messages))
        .cell(r.result.avg_hops_per_request, 3)
        .cell(r.result.avg_round_latency_units, 3)
        .cell(r.seconds, 4);
  }
  emit_table(table, "sweep");
  std::printf("\n%zu scenarios, %lld simulated requests in %.3f s wall  (%.0f reqs/s, %.1f "
              "scen/s)\n",
              results.size(), static_cast<long long>(total_reqs), wall,
              static_cast<double>(total_reqs) / wall,
              static_cast<double>(results.size()) / wall);

  if (!opt.json_path.empty()) {
    if (int rc = emit_json(opt.json_path, opt, runner.threads(), exps, results, wall)) return rc;
    if (opt.json_path != "-") std::printf("wrote %s\n", opt.json_path.c_str());
  }
  return 0;
}
