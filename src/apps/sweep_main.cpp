// sweep_main — parallel experiment sweep CLI over the unified Experiment API.
//
// Builds the full cross-product protocol × topology × node count × latency
// (× repeat) as a list of declarative Experiment values, runs each cell
// --replicas times (decorrelated per-replica seeds, statistics folded into
// mean/stddev/min/max + confidence intervals), shards everything across
// SweepRunner's thread pool, and prints one row per cell plus aggregate
// throughput. Results are deterministic: per-scenario seeds derived from
// --seed, fixed output order, identical numbers for any --threads value.
//
// Examples:
//   sweep_main                                          # default grid, all cores
//   sweep_main --protocol arrow-loop,centralized --nodes 64,256 --reqs 200
//   sweep_main --protocol arrow,forwarding,token --workload poisson:24:0.5
//   sweep_main --topology complete,randtree --latency sync,exp:0.3 --json out.json
//   sweep_main --topology torus:8x8,hypercube,geometric:0.3 --replicas 5
//   sweep_main --protocol forwarding-loop --nodes 64 --reqs 100   # closed loop
//   sweep_main --smoke --json sweep_smoke.json          # CI cross-protocol smoke
//
// Axes
//   --protocol  arrow | arrow-loop | centralized | forwarding |
//               forwarding-loop | token
//   --topology  complete | path | randtree | wtree | grid:RxC | torus:RxC |
//               hypercube | geometric[:RADIUS]
//   --nodes     N1,N2,...      (applied to every topology without a fixed
//               size; hypercube rounds each N down to a power of two)
//   --latency   sync | scaled:F | uniform:MIN | exp:MEAN
//   --workload  oneshot | poisson:COUNT:RATE | bursty:B:SIZE:GAP |
//               sequential:COUNT:GAP        (one-shot protocols only)
//   --reqs      closed-loop rounds per node (arrow-loop, centralized,
//               forwarding-loop)
//   --replicas  statistical replicas per cell (default 1); R >= 2 adds a
//               "replication" block per scenario row with mean/stddev/
//               min/max/ci_lo/ci_hi per metric at 95% confidence
//
// JSON: --json FILE emits the cross-product with uniform metrics per
// scenario (schema validated by scripts/bench_gate.py --validate-sweep).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/replication.hpp"
#include "support/table.hpp"

using namespace arrowdq;

namespace {

struct Options {
  std::vector<std::string> protocols = {"arrow-loop"};
  std::vector<std::string> topologies = {"complete"};
  std::vector<NodeId> nodes = {64, 128, 256, 512};
  std::vector<std::string> latencies = {"sync"};
  std::string workload = "oneshot";
  std::int64_t reqs_per_node = 100;
  Time service_divisor = 16;  // service = kTicksPerUnit / divisor (0 = free)
  unsigned threads = 0;       // 0 = hardware concurrency
  std::uint64_t seed = 1;
  int repeat = 1;             // separately-reported rows per grid point
  int replicas = 1;           // statistically folded replicas per cell
  std::string json_path;      // empty = no JSON
  bool smoke = false;
};

std::vector<std::string> split_csv(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur.push_back(*p);
    }
  }
  return out;
}

bool parse_protocol(const std::string& s, ProtocolSpec& out, Time service) {
  if (s == "arrow") {
    out = ProtocolSpec::arrow_one_shot(service);
  } else if (s == "arrow-loop") {
    out = ProtocolSpec::arrow_closed_loop(service);
  } else if (s == "centralized") {
    out = ProtocolSpec::centralized(0, service);
  } else if (s == "forwarding" || s == "forwarding-loop") {
    out = ProtocolSpec::pointer_forwarding(ForwardingMode::kCompressToRequester, service);
  } else if (s == "token") {
    out = ProtocolSpec::token_passing(service);
  } else {
    return false;
  }
  return true;
}

/// Protocol tokens that run closed-loop (get --reqs rounds instead of the
/// one-shot workload). "forwarding" vs "forwarding-loop" pick the mode of
/// the same ProtocolSpec.
bool is_loop_token(const std::string& s) {
  return s == "arrow-loop" || s == "centralized" || s == "forwarding-loop";
}

bool parse_topology(const std::string& s, NodeId nodes, TopologySpec& out) {
  if (s == "complete") {
    out = TopologySpec::complete(nodes);
  } else if (s == "path") {
    out = TopologySpec::path(nodes);
  } else if (s == "randtree") {
    out = TopologySpec::random_tree(nodes, /*seed=*/0);  // seeded per scenario
  } else if (s == "wtree") {
    out = TopologySpec::weighted_tree(nodes, /*seed=*/0);
  } else if (s.rfind("grid:", 0) == 0) {
    auto x = s.find('x', 5);
    if (x == std::string::npos) return false;
    NodeId rows = static_cast<NodeId>(std::atoi(s.c_str() + 5));
    NodeId cols = static_cast<NodeId>(std::atoi(s.c_str() + x + 1));
    if (rows < 1 || cols < 1) return false;
    out = TopologySpec::grid(rows, cols);
  } else if (s.rfind("torus:", 0) == 0) {
    auto x = s.find('x', 6);
    if (x == std::string::npos) return false;
    NodeId rows = static_cast<NodeId>(std::atoi(s.c_str() + 6));
    NodeId cols = static_cast<NodeId>(std::atoi(s.c_str() + x + 1));
    if (rows < 3 || cols < 3) return false;  // wraparound needs >= 3 per axis
    out = TopologySpec::torus(rows, cols);
  } else if (s == "hypercube") {
    if (nodes < 2) return false;
    int dims = 0;
    while ((NodeId{2} << dims) <= nodes) ++dims;  // 2^dims = largest power <= nodes
    out = TopologySpec::hypercube(dims);
  } else if (s == "geometric" || s.rfind("geometric:", 0) == 0) {
    double radius = 0.35;
    if (s.size() > 10 && s[9] == ':') {
      radius = std::atof(s.c_str() + 10);
      if (radius <= 0.0) return false;
    }
    out = TopologySpec::geometric(nodes, /*seed=*/0, radius);  // seeded per scenario
  } else {
    return false;
  }
  return true;
}

bool parse_latency(const std::string& s, LatencySpec& out) {
  auto colon = s.find(':');
  const std::string kind = s.substr(0, colon);
  const double param = colon == std::string::npos ? -1.0 : std::atof(s.c_str() + colon + 1);
  if (kind == "sync") {
    out = LatencySpec::synchronous();
  } else if (kind == "scaled") {
    out = LatencySpec::scaled(param > 0 ? param : 0.5);
  } else if (kind == "uniform") {
    out = LatencySpec::uniform_async(/*seed=*/0, param > 0 ? param : 0.05);
  } else if (kind == "exp") {
    out = LatencySpec::truncated_exp(/*seed=*/0, param > 0 ? param : 0.3);
  } else {
    return false;
  }
  return true;
}

bool parse_workload(const std::string& s, WorkloadSpec& out) {
  // Missing fields surface as -1 so malformed specs fail parsing here
  // (usage error) instead of aborting later on a generator invariant.
  auto field = [&s](int idx) -> double {
    std::size_t pos = 0;
    for (int i = 0; i < idx; ++i) {
      pos = s.find(':', pos);
      if (pos == std::string::npos) return -1.0;
      ++pos;
    }
    return std::atof(s.c_str() + pos);
  };
  if (s == "oneshot") {
    out = WorkloadSpec::one_shot_all();
  } else if (s.rfind("poisson:", 0) == 0) {
    if (field(1) <= 0 || field(2) <= 0) return false;
    out = WorkloadSpec::poisson(static_cast<int>(field(1)), field(2), /*seed=*/0);
  } else if (s.rfind("bursty:", 0) == 0) {
    if (field(1) <= 0 || field(2) <= 0 || field(3) < 0) return false;
    out = WorkloadSpec::bursty_load(static_cast<int>(field(1)), static_cast<int>(field(2)),
                                    static_cast<Weight>(field(3)), /*seed=*/0);
  } else if (s.rfind("sequential:", 0) == 0) {
    if (field(1) <= 0 || field(2) < 0) return false;
    out = WorkloadSpec::sequential(static_cast<int>(field(1)),
                                   static_cast<Weight>(field(2)), /*seed=*/0);
  } else {
    return false;
  }
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: sweep_main [--protocol P1,P2,..] [--topology T1,T2,..]\n"
               "                  [--nodes N1,N2,..] [--latency SPEC1,SPEC2,..]\n"
               "                  [--workload W] [--reqs N] [--service-frac D]\n"
               "                  [--threads T] [--seed S] [--repeat R] [--replicas R]\n"
               "                  [--json FILE] [--smoke]\n"
               "  P: arrow | arrow-loop | centralized | forwarding | forwarding-loop | token\n"
               "  T: complete | path | randtree | wtree | grid:RxC | torus:RxC |\n"
               "     hypercube | geometric[:RADIUS]\n"
               "  SPEC: sync | scaled:F | uniform:MIN | exp:MEAN\n"
               "  W: oneshot | poisson:COUNT:RATE | bursty:B:SIZE:GAP | sequential:COUNT:GAP\n"
               "  service time = one unit / D ticks (0 = free local processing)\n"
               "  --replicas >= 2 folds per-cell statistics (mean/stddev/CI) into the JSON\n");
  return 2;
}

/// JSON string escaping is overkill for our generated labels, but keep the
/// output well-formed even if a topology token sneaks in a backslash.
void json_escaped(std::FILE* f, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') std::fputc('\\', f);
    std::fputc(c, f);
  }
}

void json_metric_stats(std::FILE* f, const char* name, const MetricStats& m, const char* tail) {
  std::fprintf(f,
               "       \"%s\": {\"mean\": %.6f, \"stddev\": %.6f, \"min\": %.6f, "
               "\"max\": %.6f, \"ci_lo\": %.6f, \"ci_hi\": %.6f}%s\n",
               name, m.mean, m.stddev, m.min, m.max, m.ci_lo, m.ci_hi, tail);
}

int emit_json(const std::string& path, const Options& opt, unsigned threads,
              const std::vector<Experiment>& exps,
              const std::vector<ReplicatedExperimentResult>& results, double wall) {
  std::FILE* f = path == "-" ? stdout : std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::int64_t total_reqs = 0;
  for (const ReplicatedExperimentResult& r : results)
    for (const RunResult& run : r.result.runs) total_reqs += run.total_requests;
  std::fprintf(f, "{\n  \"bench\": \"experiment_sweep\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", opt.smoke ? "smoke" : "full");
  std::fprintf(f, "  \"threads\": %u,\n  \"seed\": %llu,\n  \"replicas\": %d,\n", threads,
               static_cast<unsigned long long>(opt.seed), opt.replicas);
  std::fprintf(f, "  \"scenario_count\": %zu,\n  \"total_requests\": %lld,\n",
               results.size(), static_cast<long long>(total_reqs));
  std::fprintf(f, "  \"wall_seconds\": %.6f,\n  \"scenarios\": [\n", wall);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ReplicatedExperimentResult& r = results[i];
    const Experiment& e = exps[i];
    // Scalar metrics are replica 0's run — the cell exactly as seeded, i.e.
    // the point sample an unreplicated sweep would have reported; the
    // replication block carries the cross-replica statistics.
    const RunResult& point = r.result.runs.front();
    std::fprintf(f, "    {\"label\": \"");
    json_escaped(f, r.label);
    std::fprintf(f, "\", \"protocol\": \"%s\", \"topology\": \"%s\", \"nodes\": %d, ",
                 e.protocol.name(), e.topology.family_name(), e.topology.nodes);
    std::fprintf(f, "\"latency\": \"%s\", \"workload\": \"%s\", \"rounds\": %lld,\n",
                 e.latency.name(), e.rounds > 0 ? "closed-loop" : e.workload.name(),
                 static_cast<long long>(e.rounds));
    std::fprintf(f,
                 "     \"makespan_units\": %.3f, \"total_requests\": %lld, "
                 "\"messages\": %llu, \"total_hops\": %lld,\n",
                 ticks_to_units_d(point.makespan),
                 static_cast<long long>(point.total_requests),
                 static_cast<unsigned long long>(point.messages),
                 static_cast<long long>(point.total_hops));
    std::fprintf(f,
                 "     \"avg_hops_per_request\": %.4f, \"avg_round_latency_units\": %.4f, "
                 "\"total_latency_units\": %.3f, \"seconds\": %.6f%s\n",
                 point.avg_hops_per_request, point.avg_round_latency_units,
                 ticks_to_units_d(point.total_latency), r.seconds,
                 opt.replicas > 1 ? "," : "");
    if (opt.replicas > 1) {
      const ReplicatedResult& rep = r.result;
      std::fprintf(f, "     \"replication\": {\"replicas\": %d, \"confidence\": %.4f,\n",
                   rep.replicas, rep.confidence);
      json_metric_stats(f, "makespan_units", rep.makespan_units, ",");
      json_metric_stats(f, "total_requests", rep.total_requests, ",");
      json_metric_stats(f, "messages", rep.messages, ",");
      json_metric_stats(f, "total_hops", rep.total_hops, ",");
      json_metric_stats(f, "avg_hops_per_request", rep.avg_hops_per_request, ",");
      json_metric_stats(f, "avg_round_latency_units", rep.avg_round_latency_units, ",");
      json_metric_stats(f, "total_latency_units", rep.total_latency_units, "}");
    }
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (f != stdout) std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--protocol")) {
      opt.protocols = split_csv(next("--protocol"));
    } else if (!std::strcmp(argv[i], "--topology")) {
      opt.topologies = split_csv(next("--topology"));
    } else if (!std::strcmp(argv[i], "--nodes")) {
      opt.nodes.clear();
      for (const auto& tok : split_csv(next("--nodes")))
        opt.nodes.push_back(static_cast<NodeId>(std::atoi(tok.c_str())));
    } else if (!std::strcmp(argv[i], "--latency")) {
      opt.latencies = split_csv(next("--latency"));
    } else if (!std::strcmp(argv[i], "--workload")) {
      opt.workload = next("--workload");
    } else if (!std::strcmp(argv[i], "--reqs")) {
      opt.reqs_per_node = std::atoll(next("--reqs"));
    } else if (!std::strcmp(argv[i], "--threads")) {
      opt.threads = static_cast<unsigned>(std::atoi(next("--threads")));
    } else if (!std::strcmp(argv[i], "--service-frac")) {
      opt.service_divisor = std::atoll(next("--service-frac"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (!std::strcmp(argv[i], "--repeat")) {
      opt.repeat = std::atoi(next("--repeat"));
    } else if (!std::strcmp(argv[i], "--replicas")) {
      opt.replicas = std::atoi(next("--replicas"));
    } else if (!std::strcmp(argv[i], "--json")) {
      opt.json_path = next("--json");
    } else if (!std::strcmp(argv[i], "--smoke")) {
      opt.smoke = true;
    } else {
      return usage();
    }
  }
  if (opt.smoke) {
    // CI cross-protocol smoke: every protocol in both its modes, three
    // topology families (incl. a torus), two latency regimes, R=2
    // replication so the statistics path is schema-gated — still finishes
    // in well under a second at these sizes.
    opt.protocols = {"arrow",      "arrow-loop",      "centralized",
                     "forwarding", "forwarding-loop", "token"};
    opt.topologies = {"complete", "randtree", "torus:4x4"};
    opt.nodes = {16, 32};
    opt.latencies = {"sync", "uniform:0.1"};
    opt.workload = "poisson:24:0.5";
    opt.reqs_per_node = 20;
    opt.repeat = 1;
    opt.replicas = 2;
    if (opt.json_path.empty()) opt.json_path = "sweep_smoke.json";
  }
  if (opt.nodes.empty() || opt.latencies.empty() || opt.protocols.empty() ||
      opt.topologies.empty() || opt.repeat < 1 || opt.replicas < 1)
    return usage();

  const Time service = opt.service_divisor == 0 ? 0 : kTicksPerUnit / opt.service_divisor;

  WorkloadSpec workload;
  if (!parse_workload(opt.workload, workload)) return usage();

  // The cross-product: protocol x topology x nodes x latency x repeat, each
  // cell seeded independently through Experiment::with_seed.
  std::vector<Experiment> exps;
  std::uint64_t scenario_seed = opt.seed;
  for (const std::string& proto_str : opt.protocols) {
    ProtocolSpec proto;
    if (!parse_protocol(proto_str, proto, service)) return usage();
    for (const std::string& topo_str : opt.topologies) {
      // grid:RxC / torus:RxC carry their own size; crossing them with
      // --nodes would just emit identical duplicate scenarios.
      const bool fixed_size =
          topo_str.rfind("grid:", 0) == 0 || topo_str.rfind("torus:", 0) == 0;
      std::vector<NodeId> sizes = fixed_size ? std::vector<NodeId>{0} : opt.nodes;
      if (topo_str == "hypercube") {
        // Hypercube rounds each N down to a power of two; drop sizes that
        // collapse onto an earlier one so the grid has no duplicate cells.
        std::vector<NodeId> rounded;
        for (NodeId n : sizes) {
          TopologySpec probe;
          if (!parse_topology(topo_str, n, probe)) return usage();
          if (std::find(rounded.begin(), rounded.end(), probe.nodes) == rounded.end())
            rounded.push_back(probe.nodes);
        }
        sizes = std::move(rounded);
      }
      for (NodeId n : sizes) {
        TopologySpec topo;
        if (!parse_topology(topo_str, n, topo)) return usage();
        for (const std::string& lat_str : opt.latencies) {
          LatencySpec lat;
          if (!parse_latency(lat_str, lat)) return usage();
          for (int r = 0; r < opt.repeat; ++r) {
            Experiment e;
            e.protocol = proto;
            e.topology = topo;
            e.latency = lat;
            if (is_loop_token(proto_str))
              e.rounds = opt.reqs_per_node;
            else
              e.workload = workload;
            e = e.with_seed(++scenario_seed);
            e.label = e.default_label();
            if (is_loop_token(proto_str) && proto.kind == Protocol::kPointerForwarding)
              e.label.insert(e.label.find(' '), "-loop");
            if (opt.repeat > 1) e.label += "#" + std::to_string(r);
            exps.push_back(std::move(e));
          }
        }
      }
    }
  }

  SweepRunner runner(opt.threads);
  // --json - owns stdout: the human-readable table would corrupt the piped
  // document, so suppress it there.
  const bool quiet = opt.json_path == "-";
  if (!quiet)
    std::printf("=== experiment sweep: %zu cells (%zu protocols x %zu topologies x %zu sizes "
                "x %zu latencies x %d) x %d replicas, %u threads ===\n\n",
                exps.size(), opt.protocols.size(), opt.topologies.size(), opt.nodes.size(),
                opt.latencies.size(), opt.repeat, opt.replicas, runner.threads());

  const ReplicationSpec rep{opt.replicas, opt.seed, 0.95};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<ReplicatedExperimentResult> results = run_replicated(exps, rep, runner);
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0).count();

  const bool replicated = opt.replicas > 1;
  std::vector<std::string> columns = {"scenario", "makespan(units)", "reqs", "msgs",
                                      "hops/req", "avg_lat(units)",  "secs"};
  if (replicated) {
    // Dispersion columns: cross-replica stddev of the two headline metrics.
    columns.insert(columns.begin() + 2, "mk_sd");
    columns.push_back("lat_sd");
  }
  Table table(columns);
  std::int64_t total_reqs = 0;
  for (const ReplicatedExperimentResult& r : results) {
    for (const RunResult& run : r.result.runs) total_reqs += run.total_requests;
    const RunResult& point = r.result.runs.front();
    auto& row = table.row()
                    .cell(r.label)
                    .cell(ticks_to_units_d(point.makespan), 1);
    if (replicated) row.cell(r.result.makespan_units.stddev, 2);
    row.cell(point.total_requests)
        .cell(static_cast<std::int64_t>(point.messages))
        .cell(point.avg_hops_per_request, 3)
        .cell(point.avg_round_latency_units, 3)
        .cell(r.seconds, 4);
    if (replicated) row.cell(r.result.avg_round_latency_units.stddev, 3);
  }
  if (!quiet) {
    emit_table(table, "sweep");
    std::printf("\n%zu cells x %d replicas, %lld simulated requests in %.3f s wall  "
                "(%.0f reqs/s, %.1f runs/s)\n",
                results.size(), opt.replicas, static_cast<long long>(total_reqs), wall,
                static_cast<double>(total_reqs) / wall,
                static_cast<double>(results.size() * static_cast<std::size_t>(opt.replicas)) /
                    wall);
  }

  if (!opt.json_path.empty()) {
    if (int rc = emit_json(opt.json_path, opt, runner.threads(), exps, results, wall)) return rc;
    if (opt.json_path != "-") std::printf("wrote %s\n", opt.json_path.c_str());
  }
  return 0;
}
