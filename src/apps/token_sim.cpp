#include "apps/token_sim.hpp"

#include <algorithm>
#include <utility>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"

namespace arrowdq {

namespace {

struct TokenMsg {
  NodeId destination = kNoNode;
  std::size_t order_index = 0;  // which queue position the token is heading to
};

template <typename Latency, typename Handler>
struct TokenDriver;

template <typename Latency>
struct TokenHandler {
  TokenDriver<Latency, TokenHandler>* d = nullptr;
  inline void operator()(NodeId from, NodeId at, const TokenMsg& m) const;
};

/// Message-driven token circulation, statically dispatched like the main
/// protocol drivers: the token is a real message hopping tree edges through
/// the typed-handler network under the given latency sampler.
template <typename Latency, typename Handler>
struct TokenDriver {
  const Tree& tree;
  const RequestSet& requests;
  const QueuingOutcome& outcome;
  Time hold;
  std::vector<RequestId> order;
  TokenSimResult res;
  Graph tree_graph;
  Simulator sim;
  Network<TokenMsg, Latency, Handler> net;
  // The token's position and the queue index it has served so far.
  NodeId token_node;

  TokenDriver(const Tree& t, const RequestSet& reqs, const QueuingOutcome& out, Time hold_ticks,
              Latency latency)
      : tree(t),
        requests(reqs),
        outcome(out),
        hold(hold_ticks),
        order(out.order()),
        tree_graph(t.as_graph()),
        net(tree_graph, sim, std::move(latency)),
        token_node(reqs.root()) {
    res.granted.assign(static_cast<std::size_t>(reqs.size()) + 1, kTimeNever);
    // One token: a single in-flight message plus one pending hold/dispatch
    // event at any instant.
    sim.reserve(4);
    net.reserve_messages(2);
  }

  /// When the token is free at `token_node` having served order[served],
  /// dispatch it toward order[served+1] once that request's completion time
  /// has passed.
  void dispatch_next(std::size_t served) {
    if (served + 1 >= order.size()) return;
    RequestId next_id = order[served + 1];
    const auto& c = outcome.completion(next_id);
    NodeId dest = requests.by_id(next_id).node;
    Time start = std::max(sim.now(), c.completed_at);
    sim.at(start, DepartEvent{this, served, dest});
  }

  void depart(std::size_t served, NodeId dest) {
    if (token_node == dest) {
      // Local handoff (repeated requests from one node).
      RequestId id = order[served + 1];
      res.granted[static_cast<std::size_t>(id)] = sim.now();
      res.makespan = std::max(res.makespan, sim.now() + hold);
      sim.at(sim.now() + hold, HoldDoneEvent{this, served + 1});
      return;
    }
    // First hop along the tree path (next_hop: O(log n), no allocation).
    NodeId hop = tree.next_hop(token_node, dest);
    res.token_travel += tree_graph.edge_weight(token_node, hop);
    ++res.token_messages;
    net.send(token_node, hop, TokenMsg{dest, served + 1});
  }

  void handle(NodeId /*from*/, NodeId at, const TokenMsg& m) {
    if (at != m.destination) {
      // Continue along the tree path toward the destination.
      NodeId hop = tree.next_hop(at, m.destination);
      res.token_travel += tree_graph.edge_weight(at, hop);
      ++res.token_messages;
      net.send(at, hop, TokenMsg{m.destination, m.order_index});
      return;
    }
    // Token arrived at the requester.
    token_node = at;
    RequestId id = order[m.order_index];
    res.granted[static_cast<std::size_t>(id)] = sim.now();
    res.makespan = std::max(res.makespan, sim.now() + hold);
    sim.at(sim.now() + hold, HoldDoneEvent{this, m.order_index});
  }

  struct DepartEvent {
    TokenDriver* d;
    std::size_t served;
    NodeId dest;
    void operator()() const { d->depart(served, dest); }
  };
  struct HoldDoneEvent {
    TokenDriver* d;
    std::size_t served;
    void operator()() const { d->dispatch_next(served); }
  };
  static_assert(Simulator::template fits_inline_v<DepartEvent> &&
                    Simulator::template fits_inline_v<HoldDoneEvent>,
                "token events must stay on the simulator's inline path");
};

template <typename Latency>
inline void TokenHandler<Latency>::operator()(NodeId from, NodeId at, const TokenMsg& m) const {
  d->handle(from, at, m);
}

}  // namespace

TokenSimResult simulate_token_passing(const Tree& tree, const RequestSet& requests,
                                      const QueuingOutcome& outcome, Time hold_ticks,
                                      LatencyModel& latency) {
  ARROWDQ_ASSERT_MSG(hold_ticks >= 0, "hold time must be >= 0");
  return with_static_latency(latency, [&](auto lat) {
    using L = decltype(lat);
    TokenDriver<L, TokenHandler<L>> driver(tree, requests, outcome, hold_ticks, std::move(lat));
    driver.net.set_handler(TokenHandler<L>{&driver});
    driver.dispatch_next(0);
    driver.sim.run();
    return std::move(driver.res);
  });
}

}  // namespace arrowdq
