#include "apps/token_sim.hpp"

#include <algorithm>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"

namespace arrowdq {

namespace {
struct TokenMsg {
  NodeId destination = kNoNode;
  std::size_t order_index = 0;  // which queue position the token is heading to
};
}  // namespace

TokenSimResult simulate_token_passing(const Tree& tree, const RequestSet& requests,
                                      const QueuingOutcome& outcome, Time hold_ticks,
                                      LatencyModel& latency) {
  ARROWDQ_ASSERT(hold_ticks >= 0);
  auto order = outcome.order();

  TokenSimResult res;
  res.granted.assign(static_cast<std::size_t>(requests.size()) + 1, kTimeNever);

  Graph tree_graph = tree.as_graph();
  Simulator sim;
  Network<TokenMsg> net(tree_graph, sim, latency);

  // The token's position and the queue index it has served so far.
  NodeId token_node = requests.root();

  // Forwarding logic: when the token is free at `token_node` having served
  // order[i], dispatch it toward order[i+1] once that request's completion
  // time has passed.
  std::function<void(std::size_t)> dispatch_next = [&](std::size_t served) {
    if (served + 1 >= order.size()) return;
    RequestId next_id = order[served + 1];
    const auto& c = outcome.completion(next_id);
    NodeId dest = requests.by_id(next_id).node;
    Time start = std::max(sim.now(), c.completed_at);
    sim.at(start, [&, served, dest]() {
      if (token_node == dest) {
        // Local handoff (repeated requests from one node).
        RequestId id = order[served + 1];
        res.granted[static_cast<std::size_t>(id)] = sim.now();
        res.makespan = std::max(res.makespan, sim.now() + hold_ticks);
        sim.at(sim.now() + hold_ticks, [&, served]() { dispatch_next(served + 1); });
        return;
      }
      // First hop along the tree path.
      auto path = tree.path(token_node, dest);
      ARROWDQ_ASSERT(path.size() >= 2);
      res.token_travel += tree_graph.edge_weight(path[0], path[1]);
      ++res.token_messages;
      net.send(path[0], path[1], TokenMsg{dest, served + 1});
    });
  };

  net.set_handler([&](NodeId /*from*/, NodeId at, const TokenMsg& m) {
    if (at != m.destination) {
      // Continue along the tree path toward the destination.
      auto path = tree.path(at, m.destination);
      ARROWDQ_ASSERT(path.size() >= 2);
      res.token_travel += tree_graph.edge_weight(path[0], path[1]);
      ++res.token_messages;
      net.send(path[0], path[1], TokenMsg{m.destination, m.order_index});
      return;
    }
    // Token arrived at the requester.
    token_node = at;
    RequestId id = order[m.order_index];
    res.granted[static_cast<std::size_t>(id)] = sim.now();
    res.makespan = std::max(res.makespan, sim.now() + hold_ticks);
    sim.at(sim.now() + hold_ticks, [&, m]() { dispatch_next(m.order_index); });
  });

  dispatch_next(0);
  sim.run();
  return res;
}

}  // namespace arrowdq
