#include "apps/directory.hpp"

#include <algorithm>

#include "exp/experiment.hpp"
#include "support/assert.hpp"

namespace arrowdq {

DirectoryResult directory_from_outcome(const Tree& tree, const RequestSet& requests,
                                       const QueuingOutcome& outcome, Time use_ticks) {
  ARROWDQ_ASSERT_MSG(use_ticks >= 0, "use time must be >= 0");
  auto order = outcome.order();
  DirectoryResult res;
  res.object_at.assign(static_cast<std::size_t>(requests.size()) + 1, kTimeNever);

  Time object_free = 0;  // object initially free at the root at t = 0
  NodeId object_node = requests.root();
  for (std::size_t i = 1; i < order.size(); ++i) {
    RequestId id = order[i];
    const auto& c = outcome.completion(id);
    const Request& r = requests.by_id(id);
    // The holder ships the object when it is done using it and knows the
    // successor (the completion event).
    Time ship = std::max(object_free, c.completed_at);
    Weight hop = tree.distance(object_node, r.node);
    Time arrive = ship + units_to_ticks(hop);
    res.object_at[static_cast<std::size_t>(id)] = arrive;
    res.object_travel += hop;
    res.makespan = std::max(res.makespan, arrive + use_ticks);
    object_free = arrive + use_ticks;
    object_node = r.node;
  }
  return res;
}

DirectoryResult run_directory(const Tree& tree, const RequestSet& requests, Time use_ticks) {
  auto outcome = arrow_outcome(tree, requests);
  return directory_from_outcome(tree, requests, outcome, use_ticks);
}

}  // namespace arrowdq
