#include "apps/counter.hpp"

#include <algorithm>

#include "exp/experiment.hpp"
#include "support/assert.hpp"

namespace arrowdq {

CounterResult counter_from_outcome(const Tree& tree, const RequestSet& requests,
                                   const QueuingOutcome& outcome) {
  auto order = outcome.order();
  CounterResult res;
  res.value.assign(static_cast<std::size_t>(requests.size()) + 1, 0);
  res.received_at.assign(static_cast<std::size_t>(requests.size()) + 1, kTimeNever);

  Time token_ready = 0;
  NodeId token_node = requests.root();
  std::int64_t next_value = 1;
  for (std::size_t i = 1; i < order.size(); ++i) {
    RequestId id = order[i];
    const auto& c = outcome.completion(id);
    const Request& r = requests.by_id(id);
    Time sent = std::max(token_ready, c.completed_at);
    Time arrived = sent + units_to_ticks(tree.distance(token_node, r.node));
    res.value[static_cast<std::size_t>(id)] = next_value++;
    res.received_at[static_cast<std::size_t>(id)] = arrived;
    res.makespan = std::max(res.makespan, arrived);
    token_ready = arrived;
    token_node = r.node;
  }
  return res;
}

CounterResult run_counter(const Tree& tree, const RequestSet& requests) {
  auto outcome = arrow_outcome(tree, requests);
  return counter_from_outcome(tree, requests, outcome);
}

}  // namespace arrowdq
