#include "apps/multicast.hpp"

#include <algorithm>

#include "exp/experiment.hpp"
#include "support/assert.hpp"

namespace arrowdq {

MulticastResult multicast_from_outcome(const Tree& tree, const RequestSet& requests,
                                       const QueuingOutcome& outcome) {
  auto order = outcome.order();
  auto n = static_cast<std::size_t>(tree.node_count());
  MulticastResult res;

  // Token movement mirrors the mutex layer with zero hold time.
  Time token_ready = 0;
  NodeId token_node = requests.root();
  double latency_sum = 0.0;
  std::int64_t latency_count = 0;
  std::vector<Time> last_delivered(n, 0);  // enforce per-node in-order delivery

  for (std::size_t i = 1; i < order.size(); ++i) {
    RequestId id = order[i];
    const auto& c = outcome.completion(id);
    const Request& r = requests.by_id(id);
    Time token_sent = std::max(token_ready, c.completed_at);
    Time stamped_at = token_sent + units_to_ticks(tree.distance(token_node, r.node));
    token_ready = stamped_at;
    token_node = r.node;
    res.stamped.push_back(id);

    std::vector<Time> row(n, 0);
    for (NodeId u = 0; u < tree.node_count(); ++u) {
      Time arrive = stamped_at + units_to_ticks(tree.distance(r.node, u));
      // A node holds back any message that would overtake a lower sequence
      // number (FIFO broadcast + sequence gate).
      Time deliver = std::max(arrive, last_delivered[static_cast<std::size_t>(u)]);
      row[static_cast<std::size_t>(u)] = deliver;
      last_delivered[static_cast<std::size_t>(u)] = deliver;
      res.makespan = std::max(res.makespan, deliver);
      latency_sum += ticks_to_units_d(deliver - r.time);
      ++latency_count;
    }
    res.deliver.push_back(std::move(row));
  }
  if (latency_count > 0)
    res.avg_delivery_latency_units = latency_sum / static_cast<double>(latency_count);
  return res;
}

MulticastResult run_ordered_multicast(const Tree& tree, const RequestSet& requests) {
  auto outcome = arrow_outcome(tree, requests);
  return multicast_from_outcome(tree, requests, outcome);
}

}  // namespace arrowdq
