// Distributed directory for a mobile object (Demmer-Herlihy's arrow
// directory / the paper's motivating example: "synchronizing accesses to a
// single mobile object in a computer network").
//
// find(v) = queuing request; the object travels down the queue from each
// user to the next once the current user finishes with it.
#pragma once

#include <vector>

#include "graph/tree.hpp"
#include "proto/queuing.hpp"
#include "proto/request.hpp"
#include "support/types.hpp"

namespace arrowdq {

struct DirectoryResult {
  /// object_at[id] = time the object arrived at request id's node (ticks).
  std::vector<Time> object_at;
  /// Total distance the object traveled over the tree (units).
  Weight object_travel = 0;
  /// Lower bound: distance of the object's optimal offline tour visiting the
  /// same nodes in the best order is at least the request-MST weight; we
  /// report the tree-path travel of arrow's order for comparison with the
  /// queue order chosen by an optimal ordering.
  Time makespan = 0;
};

/// `use_ticks` = how long each user holds the object before releasing.
DirectoryResult run_directory(const Tree& tree, const RequestSet& requests, Time use_ticks);

DirectoryResult directory_from_outcome(const Tree& tree, const RequestSet& requests,
                                       const QueuingOutcome& outcome, Time use_ticks);

}  // namespace arrowdq
