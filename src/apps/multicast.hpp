// Totally ordered multicast on top of the arrow queue (Herlihy, Tirthapura,
// Wattenhofer, "Ordered multicast and distributed swap", OSR 2001).
//
// Every multicast message is a queuing request. A sequencer token carrying
// the next sequence number travels down the queue; when request a receives
// the token it stamps its message with the sequence number and broadcasts it
// over the spanning tree. Every node delivers messages in sequence-number
// order, so all nodes observe the same total order.
#pragma once

#include <vector>

#include "graph/tree.hpp"
#include "proto/queuing.hpp"
#include "proto/request.hpp"
#include "support/types.hpp"

namespace arrowdq {

struct MulticastResult {
  /// stamped[seq] = request id with sequence number seq (seq from 0).
  std::vector<RequestId> stamped;
  /// deliver[seq][node] = delivery time (ticks) of that message at node.
  std::vector<std::vector<Time>> deliver;
  Time makespan = 0;
  double avg_delivery_latency_units = 0.0;  // mean over (message, node)
};

MulticastResult run_ordered_multicast(const Tree& tree, const RequestSet& requests);

MulticastResult multicast_from_outcome(const Tree& tree, const RequestSet& requests,
                                       const QueuingOutcome& outcome);

}  // namespace arrowdq
