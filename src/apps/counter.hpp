// Distributed counting via the queue (Section 1: "it can be used in
// distributed counting by passing an integer counter down the queue").
// Request i's counter value is simply its position in the total order.
#pragma once

#include <vector>

#include "graph/tree.hpp"
#include "proto/queuing.hpp"
#include "proto/request.hpp"
#include "support/types.hpp"

namespace arrowdq {

struct CounterResult {
  /// value[id] = counter value handed to request id (1-based; 0 unused).
  std::vector<std::int64_t> value;
  /// received_at[id] = time the counter token reached the request (ticks).
  std::vector<Time> received_at;
  Time makespan = 0;
};

CounterResult run_counter(const Tree& tree, const RequestSet& requests);

CounterResult counter_from_outcome(const Tree& tree, const RequestSet& requests,
                                   const QueuingOutcome& outcome);

}  // namespace arrowdq
