#include "apps/mutex.hpp"

#include <algorithm>

#include "exp/experiment.hpp"
#include "support/assert.hpp"

namespace arrowdq {

MutexResult mutex_from_outcome(const Tree& tree, const RequestSet& requests,
                               const QueuingOutcome& outcome, Time cs_ticks) {
  ARROWDQ_ASSERT_MSG(cs_ticks >= 0, "critical-section time must be >= 0");
  auto order = outcome.order();
  MutexResult res;
  res.acquire.assign(static_cast<std::size_t>(requests.size()) + 1, kTimeNever);
  res.release.assign(static_cast<std::size_t>(requests.size()) + 1, kTimeNever);

  // The virtual root request holds a zero-length critical section at t = 0.
  res.acquire[0] = 0;
  res.release[0] = 0;
  Time prev_release = 0;
  NodeId prev_node = requests.root();

  for (std::size_t i = 1; i < order.size(); ++i) {
    RequestId id = order[i];
    const auto& c = outcome.completion(id);
    const Request& r = requests.by_id(id);
    // The predecessor can forward the token once (a) it released and (b) it
    // learned its successor — which is exactly the completion event of `id`.
    Time send_at = std::max(prev_release, c.completed_at);
    Weight hop = tree.distance(prev_node, r.node);
    Time grant = send_at + units_to_ticks(hop);
    res.acquire[static_cast<std::size_t>(id)] = grant;
    res.release[static_cast<std::size_t>(id)] = grant + cs_ticks;
    res.token_travel += hop;
    prev_release = grant + cs_ticks;
    prev_node = r.node;
  }
  res.makespan = prev_release;

  // Verify mutual exclusion: critical sections, in queue order, must not
  // overlap.
  res.mutual_exclusion = true;
  Time last_release = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    Time a = res.acquire[static_cast<std::size_t>(order[i])];
    if (a < last_release) {
      res.mutual_exclusion = false;
      break;
    }
    last_release = res.release[static_cast<std::size_t>(order[i])];
  }
  return res;
}

MutexResult run_mutex(const Tree& tree, const RequestSet& requests, Time cs_ticks) {
  auto outcome = arrow_outcome(tree, requests);
  return mutex_from_outcome(tree, requests, outcome, cs_ticks);
}

}  // namespace arrowdq
