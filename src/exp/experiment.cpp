#include "exp/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "apps/token_sim.hpp"
#include "arrow/arrow.hpp"
#include "arrow/closed_loop.hpp"
#include "baseline/centralized.hpp"
#include "exp/registry.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "sim/parallel/parallel.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"
#include "workload/workloads.hpp"

namespace arrowdq {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kArrowOneShot:
      return "arrow";
    case Protocol::kArrowClosedLoop:
      return "arrow-loop";
    case Protocol::kCentralized:
      return "centralized";
    case Protocol::kPointerForwarding:
      return "forwarding";
    case Protocol::kTokenPassing:
      return "token";
  }
  return "?";
}

// --- topology ---------------------------------------------------------------

Graph TopologySpec::build_graph() const {
  switch (family) {
    case Family::kComplete:
      return make_complete(nodes);
    case Family::kPath:
      return make_path(nodes);
    case Family::kRing:
      return make_ring(nodes);
    case Family::kGrid:
      return make_grid(rows, cols);
    case Family::kTorus:
      return make_torus(rows, cols);
    case Family::kHypercube:
      return make_hypercube(dims);
    case Family::kGeometric: {
      Rng rng(mix64(seed + 0x70b01063));
      return make_random_geometric(nodes, radius, rng, weight_scale);
    }
    case Family::kRandomTree: {
      Rng rng(mix64(seed + 0x70b01061));
      return make_random_tree(nodes, rng);
    }
    case Family::kWeightedTree: {
      Rng rng(mix64(seed + 0x70b01062));
      Graph skeleton = make_random_tree(nodes, rng);
      Graph g(nodes);
      for (const Edge& e : skeleton.edges())
        g.add_edge(e.u, e.v,
                   1 + static_cast<Weight>(rng.next_below(
                           static_cast<std::uint64_t>(max_weight))));
      return g;
    }
    case Family::kCustom:
      ARROWDQ_ASSERT_MSG(custom_graph.has_value(), "custom topology without a graph");
      return *custom_graph;
  }
  ARROWDQ_ASSERT_MSG(false, "unknown topology family");
  return Graph{0};
}

Tree TopologySpec::build_tree(const Graph& g) const {
  if (family == Family::kCustom) {
    ARROWDQ_ASSERT_MSG(custom_tree.has_value(), "custom topology without a tree");
    return *custom_tree;
  }
  switch (tree_kind) {
    case TreeKind::kShortestPath:
      return shortest_path_tree(g, root);
    case TreeKind::kBalancedBinary:
      return balanced_binary_overlay(g, root);
    case TreeKind::kMst:
      return kruskal_mst(g, root);
    case TreeKind::kMedianSpt:
      return median_spt(g);
  }
  ARROWDQ_ASSERT_MSG(false, "unknown tree kind");
  return shortest_path_tree(g, root);
}

const char* TopologySpec::family_name() const {
  switch (family) {
    case Family::kComplete:
      return "complete";
    case Family::kPath:
      return "path";
    case Family::kRing:
      return "ring";
    case Family::kGrid:
      return "grid";
    case Family::kTorus:
      return "torus";
    case Family::kHypercube:
      return "hypercube";
    case Family::kGeometric:
      return "geometric";
    case Family::kRandomTree:
      return "randtree";
    case Family::kWeightedTree:
      return "wtree";
    case Family::kCustom:
      return "custom";
  }
  return "?";
}

namespace {

// Scale-path caps. 2^28 nodes keeps the implicit tier's dense directed tree
// ids (2n + 1) inside int32 with headroom; the materialization-cost caps
// (edge count, APSP table size) depend on the protocol and live in
// validate_experiment().
constexpr NodeId kMaxNodes = NodeId{1} << 28;
constexpr std::int64_t kMaxMaterializedEdges = std::int64_t{1} << 26;
constexpr NodeId kMaxApspNodes = 8192;
// make_hypercube() stores 2^dims * dims directed edges; past this the graph
// must stay implicit.
constexpr int kMaxMaterializedHypercubeDims = 20;

}  // namespace

std::optional<std::string> TopologySpec::validate() const {
  if (nodes < 1) return "topology: nodes must be >= 1";
  if (nodes > kMaxNodes)
    return "topology: " + std::to_string(nodes) +
           " nodes exceeds the 2^28 cap (edge/event ids are 32-bit)";
  switch (family) {
    case Family::kComplete:
    case Family::kPath:
    case Family::kRandomTree:
      break;
    case Family::kRing:
      if (nodes < 3) return "ring: needs >= 3 nodes";
      break;
    case Family::kGrid:
      if (rows < 1 || cols < 1) return "grid: rows and cols must be >= 1";
      if (static_cast<std::int64_t>(rows) * static_cast<std::int64_t>(cols) != nodes)
        return "grid: rows * cols (" + std::to_string(rows) + " * " + std::to_string(cols) +
               ") must equal nodes (" + std::to_string(nodes) + ")";
      break;
    case Family::kTorus:
      if (rows < 3 || cols < 3) return "torus: rows and cols must be >= 3";
      if (static_cast<std::int64_t>(rows) * static_cast<std::int64_t>(cols) != nodes)
        return "torus: rows * cols (" + std::to_string(rows) + " * " + std::to_string(cols) +
               ") must equal nodes (" + std::to_string(nodes) + ")";
      break;
    case Family::kHypercube:
      if (dims < 0 || dims > 28)
        return "hypercube: dims must be in [0, 28], got " + std::to_string(dims);
      if (nodes != (NodeId{1} << dims))
        return "hypercube: nodes (" + std::to_string(nodes) + ") must equal 2^dims (" +
               std::to_string(NodeId{1} << dims) + ")";
      break;
    case Family::kGeometric:
      if (!(radius > 0.0)) return "geometric: radius must be > 0";
      break;
    case Family::kWeightedTree:
      if (max_weight < 1) return "wtree: max_weight must be >= 1";
      break;
    case Family::kCustom:
      if (!custom_graph) return "custom: no graph supplied";
      if (!custom_tree) return "custom: no tree supplied";
      if (custom_graph->node_count() != nodes)
        return "custom: nodes (" + std::to_string(nodes) + ") must match the supplied graph (" +
               std::to_string(custom_graph->node_count()) + ")";
      break;
  }
  if (root < 0 || root >= nodes) return "topology: root out of range";
  return std::nullopt;
}

// --- workload ---------------------------------------------------------------

RequestSet WorkloadSpec::build(NodeId n, NodeId root) const {
  switch (kind) {
    case Kind::kOneShotAll:
      // Qualified: the unqualified name would find the static factory.
      return ::arrowdq::one_shot_all(n, root);
    case Kind::kPoisson: {
      Rng rng(mix64(seed + 0x10ad0001));
      if (hot_probability > 0.0) {
        const NodeId hot = std::clamp(hot_node, NodeId{0}, n - 1);
        return poisson_hotspot(n, root, count, rate_per_unit, hot, hot_probability, rng);
      }
      return poisson_uniform(n, root, count, rate_per_unit, rng);
    }
    case Kind::kBursty: {
      Rng rng(mix64(seed + 0x10ad0002));
      return bursty(n, root, bursts, burst_size, gap_units, rng);
    }
    case Kind::kSequential: {
      Rng rng(mix64(seed + 0x10ad0003));
      return sequential_random(n, root, count, gap_units, rng);
    }
    case Kind::kCustom:
      ARROWDQ_ASSERT_MSG(custom.has_value(), "custom workload without a request set");
      ARROWDQ_ASSERT_MSG(custom->root() == root,
                         "custom workload root must match the topology root");
      return *custom;
  }
  ARROWDQ_ASSERT_MSG(false, "unknown workload kind");
  return RequestSet{root, {}};
}

const char* WorkloadSpec::name() const {
  switch (kind) {
    case Kind::kOneShotAll:
      return "oneshot";
    case Kind::kPoisson:
      return "poisson";
    case Kind::kBursty:
      return "bursty";
    case Kind::kSequential:
      return "sequential";
    case Kind::kCustom:
      return "custom";
  }
  return "?";
}

// --- experiment -------------------------------------------------------------

std::string Experiment::default_label() const {
  std::string s = protocol.name();
  s += ' ';
  s += topology.family_name();
  s += '-';
  s += std::to_string(topology.nodes);
  s += ' ';
  s += latency.name();
  if (fault.active()) {
    s += ' ';
    s += fault.name();
  }
  return s;
}

Experiment Experiment::with_seed(std::uint64_t seed) const {
  Experiment e = *this;
  e.topology.seed = mix64(seed ^ 0x1070b0ULL);
  e.workload.seed = mix64(seed ^ 0x2010adULL);
  e.latency.seed = mix64(seed ^ 0x301a7eULL);  // ignored by deterministic kinds
  e.fault.seed = mix64(seed ^ 0x4fa017ULL);    // ignored when kind == kNone
  return e;
}

namespace exp_detail {

namespace {

/// Latest completion time over all requests of a one-shot outcome.
Time outcome_makespan(const QueuingOutcome& out) {
  Time last = 0;
  for (RequestId id = 1; id <= out.request_count(); ++id)
    last = std::max(last, out.completion(id).completed_at);
  return last;
}

/// Shared one-shot metric extraction (arrow, centralized, forwarding).
void fill_one_shot(RunResult& r, const Experiment& e, const RequestSet& requests,
                   QueuingOutcome out) {
  r.makespan = outcome_makespan(out);
  r.total_requests = requests.size();
  r.total_hops = out.total_hops();
  r.total_distance = out.total_distance();
  r.total_latency = out.total_latency(requests);
  r.avg_hops_per_request =
      requests.size() == 0
          ? 0.0
          : static_cast<double>(r.total_hops) / static_cast<double>(requests.size());
  if (e.keep_outcome) r.outcome = std::move(out);
}

bool is_baseline(const Experiment& e) {
  return e.protocol.kind == Protocol::kCentralized ||
         e.protocol.kind == Protocol::kPointerForwarding;
}

bool is_closed_loop(const Experiment& e) {
  return e.protocol.kind == Protocol::kArrowClosedLoop ||
         (is_baseline(e) && e.rounds > 0);
}

/// The structured families with closed forms for distance, adjacency, and
/// the canonical shortest-path-tree parent (graph/implicit.hpp).
std::optional<ImplicitFamily> implicit_family(TopologySpec::Family f) {
  switch (f) {
    case TopologySpec::Family::kComplete:
      return ImplicitFamily::kComplete;
    case TopologySpec::Family::kPath:
      return ImplicitFamily::kPath;
    case TopologySpec::Family::kRing:
      return ImplicitFamily::kRing;
    case TopologySpec::Family::kGrid:
      return ImplicitFamily::kGrid;
    case TopologySpec::Family::kTorus:
      return ImplicitFamily::kTorus;
    case TopologySpec::Family::kHypercube:
      return ImplicitFamily::kHypercube;
    default:
      return std::nullopt;
  }
}

/// The one materialize-or-not decision, shared verbatim by resolve() and
/// validate_experiment() so the cost guards always judge the path that will
/// actually run.
struct ResolvePlan {
  std::optional<ImplicitFamily> fam;  // engaged iff the family has closed forms
  bool materialize = true;            // build Graph (+ Dijkstra/Kruskal tree)?
};

ResolvePlan plan_resolve(const Experiment& e) {
  const TopologySpec& t = e.topology;
  ResolvePlan plan;
  plan.fam = implicit_family(t.family);
  // analyze_competitive walks the real graph, so analysis always
  // materializes. Baselines only read n / root / a distance oracle; the sole
  // reason they'd need the graph is kMedianSpt, whose root is derived from
  // the graph rather than taken from the spec. The arrow/token protocols
  // need a tree: when it has a closed form (shortest-path, or the balanced
  // binary overlay on a complete graph) it comes from ImplicitTopology in
  // O(n) with no graph; otherwise (MST, median SPT, overlay on a
  // non-complete family) the graph is built.
  const bool closed_form_tree =
      plan.fam.has_value() &&
      (t.tree_kind == TopologySpec::TreeKind::kShortestPath ||
       (t.family == TopologySpec::Family::kComplete &&
        t.tree_kind == TopologySpec::TreeKind::kBalancedBinary && t.root == 0));
  if (!plan.fam || e.analyze)
    plan.materialize = true;
  else if (is_baseline(e))
    plan.materialize = (t.tree_kind == TopologySpec::TreeKind::kMedianSpt);
  else
    plan.materialize = !closed_form_tree;
  return plan;
}

/// Invoke `fn` with the value-type distance oracle resolve() selected.
/// Callers get a fully typed oracle (static dispatch end to end); the
/// baseline drivers are explicitly instantiated per oracle, so an enum value
/// without an instantiation fails at link time rather than silently erasing.
template <typename Fn>
auto with_resolved_dist(const Resolved& r, Fn&& fn) {
  switch (r.dist) {
    case DistOracle::kUnit:
      return fn(UnitDist{});
    case DistOracle::kApsp:
      return fn(ApspDist{&*r.apsp});
    case DistOracle::kPath:
      return fn(PathDist{});
    case DistOracle::kRing:
      return fn(RingDist{r.n});
    case DistOracle::kGrid:
      return fn(GridDist{r.cols});
    case DistOracle::kTorus:
      return fn(TorusDist{r.rows, r.cols});
    case DistOracle::kHypercube:
      return fn(HypercubeDist{});
  }
  ARROWDQ_ASSERT_MSG(false, "unknown distance oracle");
  return fn(UnitDist{});
}

/// ARROWDQ_SIM_SHARDS, parsed once per process. Out-of-range or
/// non-numeric values mean 1 (serial); the cap matches the engine's
/// practical lane range.
int env_shards() {
  static const int cached = [] {
    const char* s = std::getenv("ARROWDQ_SIM_SHARDS");
    if (s == nullptr || *s == '\0') return 1;
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == nullptr || *end != '\0' || v < 1 || v > 1024) return 1;
    return static_cast<int>(v);
  }();
  return cached;
}

/// Whether a sharded mirror exists for this scenario. Token passing replays
/// an analytic total order (inherently serial), the centralized closed loop
/// has no mirror, and topology-fault schedules (crash, partition, churn)
/// cannot run inside safe windows — their recovery waves are global pointer
/// rewrites.
bool shardable(const Experiment& e) {
  if (e.fault.has_topology_faults()) return false;
  switch (e.protocol.kind) {
    case Protocol::kArrowOneShot:
    case Protocol::kArrowClosedLoop:
    case Protocol::kPointerForwarding:
      return true;
    case Protocol::kCentralized:
      return e.rounds == 0;
    case Protocol::kTokenPassing:
      return false;
  }
  return false;
}

/// The shard count a run should actually use. An explicit Experiment::shards
/// wins (validate_experiment has already rejected unshardable combinations);
/// scenarios the parallel engine cannot run stay serial.
int effective_shards(const Experiment& e) {
  const int k = e.shards > 0 ? e.shards : env_shards();
  if (k <= 1) return 1;
  return shardable(e) ? k : 1;
}

/// Dynamic-tier wrapper for a resolved distance oracle: the sharded baseline
/// entries take a DistTicksFn; with_static_dist inside them recovers the
/// concrete oracle type, so the per-message draw stays a direct call.
template <typename Dist>
DistTicksFn dist_fn(Dist dist) {
  return DistTicksFn(dist);
}

}  // namespace

template <>
RunResult run_protocol<Protocol::kArrowOneShot>(const Experiment& e, Resolved& r) {
  auto model = e.latency.make();
  const int shards = effective_shards(e);
  if (shards > 1) {
    // Sharded mirror (crash schedules were refused up front, so the outcome
    // keeps a total order and validates like the fault-free serial path).
    ShardSpec spec;
    spec.shards = shards;
    ShardedArrowRun run = run_arrow_one_shot_sharded(r.tree, r.requests, *model,
                                                     e.protocol.service_time, e.fault, spec);
    run.out.validate(r.requests);
    RunResult res;
    res.protocol = e.protocol.kind;
    res.messages = run.messages;
    res.messages_dropped = run.fault_stats.messages_dropped;
    res.messages_duplicated = run.fault_stats.messages_duplicated;
    fill_one_shot(res, e, r.requests, std::move(run.out));
    return res;
  }
  ArrowEngine engine(r.tree, *model);
  engine.set_service_time(e.protocol.service_time);
  engine.set_fault(e.fault);
  QueuingOutcome out = engine.run(r.requests);
  // A topology fault (crash, partition, churn) severs the pre-fault
  // successor chain (the recovery wave adopts one tail and absorbs the
  // rest), so the full-order walk of validate() cannot apply; every request
  // still completes exactly once (asserted by QueuingOutcome::record /
  // is_complete). Message-only faults are pure delay and keep the order
  // total.
  if (!e.fault.has_topology_faults()) out.validate(r.requests);
  RunResult res;
  res.protocol = e.protocol.kind;
  res.messages = engine.messages_sent();
  res.messages_dropped = engine.fault_stats().messages_dropped;
  res.messages_duplicated = engine.fault_stats().messages_duplicated;
  res.crashes = engine.crashes_applied();
  res.stabilize_rounds = engine.stabilize_rounds();
  res.stabilize_corrections = engine.stabilize_corrections();
  res.partitions = engine.partitions_applied();
  res.partition_backlog_drained = engine.fault_stats().partition_deferred;
  res.reselections = engine.reselections();
  fill_one_shot(res, e, r.requests, std::move(out));
  return res;
}

template <>
RunResult run_protocol<Protocol::kArrowClosedLoop>(const Experiment& e, Resolved& r) {
  ARROWDQ_ASSERT_MSG(e.rounds > 0, "arrow closed loop needs rounds > 0");
  auto model = e.latency.make();
  ClosedLoopConfig cfg;
  cfg.requests_per_node = e.rounds;
  cfg.service_time = e.protocol.service_time;
  cfg.fault = e.fault;
  // The scale path: structured family, closed-form tree, no crash schedule
  // (the recovery wave needs a materialized tree) — run the implicit driver
  // with compact 32-byte event slots instead of building Graph + Tree.
  // Shards > 1 routes to the conservative parallel engine (sim/parallel/),
  // bit-identical to the serial drivers by construction.
  const int shards = effective_shards(e);
  ClosedLoopResult loop;
  if (shards > 1) {
    ShardSpec spec;
    spec.shards = shards;
    loop = r.implicit_loop
               ? run_arrow_closed_loop_implicit_sharded(*r.implicit, *model, cfg, spec)
               : run_arrow_closed_loop_sharded(r.tree, *model, cfg, spec);
  } else {
    loop = r.implicit_loop ? run_arrow_closed_loop_implicit(*r.implicit, *model, cfg)
                           : run_arrow_closed_loop(r.tree, *model, cfg);
  }
  RunResult res;
  res.protocol = e.protocol.kind;
  res.makespan = loop.makespan;
  res.total_requests = loop.total_requests;
  res.messages = loop.tree_messages + loop.notify_messages;
  res.total_hops = static_cast<std::int64_t>(loop.tree_messages);
  res.avg_hops_per_request = loop.avg_hops_per_request;
  res.avg_round_latency_units = loop.avg_round_latency_units;
  res.messages_dropped = loop.messages_dropped;
  res.messages_duplicated = loop.messages_duplicated;
  res.crashes = loop.crashes;
  res.stabilize_rounds = loop.stabilize_rounds;
  res.stabilize_corrections = loop.stabilize_corrections;
  res.partitions = loop.partitions;
  res.partition_backlog_drained = loop.partition_backlog;
  res.reselections = loop.reselections;
  return res;
}

template <>
RunResult run_protocol<Protocol::kCentralized>(const Experiment& e, Resolved& r) {
  CentralizedConfig cfg;
  cfg.center = e.protocol.center;
  cfg.service_time = e.protocol.service_time;
  cfg.fault = e.fault;
  const NodeId n = r.n;
  RunResult res;
  res.protocol = e.protocol.kind;
  res.crashes = e.fault.has_crash() ? e.fault.crash_count : 0;
  res.partitions = e.fault.has_partition() ? e.fault.partition_count : 0;
  if (e.rounds > 0) {
    CentralizedLoopResult loop = with_resolved_dist(r, [&](auto dist) {
      return run_centralized_closed_loop(n, e.rounds, dist, cfg);
    });
    res.makespan = loop.makespan;
    res.total_requests = loop.total_requests;
    res.messages = loop.messages;
    res.total_hops = static_cast<std::int64_t>(loop.messages);
    res.avg_hops_per_request =
        loop.total_requests == 0
            ? 0.0
            : static_cast<double>(loop.messages) / static_cast<double>(loop.total_requests);
    res.avg_round_latency_units = loop.avg_round_latency_units;
    res.messages_dropped = loop.messages_dropped;
    res.messages_duplicated = loop.messages_duplicated;
    res.partition_backlog_drained = loop.partition_backlog;
    return res;
  }
  FaultStats fs;
  cfg.fault_stats_out = &fs;
  const int shards = effective_shards(e);
  QueuingOutcome out = with_resolved_dist(r, [&](auto dist) {
    if (shards > 1) {
      ShardSpec spec;
      spec.shards = shards;
      return run_centralized_sharded(n, r.requests, dist_fn(dist), cfg, spec);
    }
    return run_centralized(n, r.requests, dist, cfg);
  });
  out.validate(r.requests);
  res.messages = static_cast<std::uint64_t>(out.total_hops());
  res.messages_dropped = fs.messages_dropped;
  res.messages_duplicated = fs.messages_duplicated;
  res.partition_backlog_drained = fs.partition_deferred;
  fill_one_shot(res, e, r.requests, std::move(out));
  return res;
}

template <>
RunResult run_protocol<Protocol::kPointerForwarding>(const Experiment& e, Resolved& r) {
  PointerForwardingConfig cfg;
  cfg.mode = e.protocol.mode;
  cfg.service_time = e.protocol.service_time;
  cfg.initial_owner = r.root;
  cfg.fault = e.fault;
  const NodeId n = r.n;
  RunResult res;
  res.protocol = e.protocol.kind;
  res.crashes = e.fault.has_crash() ? e.fault.crash_count : 0;
  res.partitions = e.fault.has_partition() ? e.fault.partition_count : 0;
  const int shards = effective_shards(e);
  if (e.rounds > 0) {
    ForwardingLoopResult loop = with_resolved_dist(r, [&](auto dist) {
      if (shards > 1) {
        ShardSpec spec;
        spec.shards = shards;
        return run_pointer_forwarding_closed_loop_sharded(n, e.rounds, dist_fn(dist), cfg,
                                                          spec);
      }
      return run_pointer_forwarding_closed_loop(n, e.rounds, dist, cfg);
    });
    res.makespan = loop.makespan;
    res.total_requests = loop.total_requests;
    res.messages = loop.find_messages + loop.reply_messages;
    res.total_hops = static_cast<std::int64_t>(loop.find_messages);
    res.avg_hops_per_request = loop.avg_hops_per_request;
    res.avg_round_latency_units = loop.avg_round_latency_units;
    res.messages_dropped = loop.messages_dropped;
    res.messages_duplicated = loop.messages_duplicated;
    res.partition_backlog_drained = loop.partition_backlog;
    return res;
  }
  FaultStats fs;
  cfg.fault_stats_out = &fs;
  QueuingOutcome out = with_resolved_dist(r, [&](auto dist) {
    if (shards > 1) {
      ShardSpec spec;
      spec.shards = shards;
      return run_pointer_forwarding_sharded(n, r.requests, dist_fn(dist), cfg, spec);
    }
    return run_pointer_forwarding(n, r.requests, dist, cfg);
  });
  out.validate(r.requests);
  res.messages = static_cast<std::uint64_t>(out.total_hops());
  res.messages_dropped = fs.messages_dropped;
  res.messages_duplicated = fs.messages_duplicated;
  res.partition_backlog_drained = fs.partition_deferred;
  fill_one_shot(res, e, r.requests, std::move(out));
  return res;
}

template <>
RunResult run_protocol<Protocol::kTokenPassing>(const Experiment& e, Resolved& r) {
  // The token rides on an arrow execution: queue first (consuming the
  // latency model's stream exactly as a standalone arrow run would), then
  // circulate the token through the same model — identical to the legacy
  // {run_arrow; simulate_token_passing} sequence.
  //
  // Crashes are stripped: the token replays the analytic total order, which
  // cannot express a forked post-crash queue. Message faults stay and
  // perturb the queuing phase (the token circulation itself rides the
  // unfiltered latency model).
  auto model = e.latency.make();
  ArrowEngine engine(r.tree, *model);
  engine.set_service_time(e.protocol.service_time);
  engine.set_fault(e.fault.without_crash());
  QueuingOutcome out = engine.run(r.requests);
  out.validate(r.requests);
  TokenSimResult token =
      simulate_token_passing(r.tree, r.requests, out, e.protocol.hold_ticks, *model);
  RunResult res;
  res.protocol = e.protocol.kind;
  res.makespan = token.makespan;
  res.total_requests = r.requests.size();
  res.messages = engine.messages_sent() + token.token_messages;
  res.total_hops = static_cast<std::int64_t>(token.token_messages);
  res.total_distance = token.token_travel;
  res.total_latency = out.total_latency(r.requests);
  res.avg_hops_per_request =
      r.requests.size() == 0
          ? 0.0
          : static_cast<double>(token.token_messages) / static_cast<double>(r.requests.size());
  res.messages_dropped = engine.fault_stats().messages_dropped;
  res.messages_duplicated = engine.fault_stats().messages_duplicated;
  if (e.keep_outcome) res.outcome = std::move(out);
  return res;
}

Resolved resolve(const Experiment& e) {
  const TopologySpec& t = e.topology;
  const ResolvePlan plan = plan_resolve(e);
  Resolved r;
  if (plan.materialize) {
    r.graph = t.build_graph();
    r.tree = t.build_tree(r.graph);
    r.n = r.graph.node_count();
    r.root = r.tree.root();  // kMedianSpt derives the root from the graph
  } else {
    // Scale tier: no Graph, no Dijkstra. Structured families answer
    // distance/adjacency/tree-parent queries in closed form.
    r.n = t.nodes;
    r.root = t.root;
    r.implicit.emplace();
    r.implicit->family = *plan.fam;
    r.implicit->n = t.nodes;
    r.implicit->rows = t.rows;
    r.implicit->cols = t.cols;
    r.implicit->root = t.root;
    r.implicit->balanced_binary = (t.tree_kind == TopologySpec::TreeKind::kBalancedBinary);
    const Protocol p = e.protocol.kind;
    // ArrowEngine / token passing / the topology-fault recovery waves hold
    // a real Tree; O(n) from the closed-form parents, still no graph/APSP.
    const bool needs_tree = p == Protocol::kArrowOneShot || p == Protocol::kTokenPassing ||
                            (p == Protocol::kArrowClosedLoop && e.fault.has_topology_faults());
    if (needs_tree) r.tree = r.implicit->materialize_tree();
    r.implicit_loop = (p == Protocol::kArrowClosedLoop && !e.fault.has_topology_faults());
  }
  r.rows = t.rows;
  r.cols = t.cols;
  if (is_baseline(e)) {
    if (!plan.fam) {
      // Irregular family: the oracle is a per-run APSP table (O(n^2),
      // capped by validate_experiment()).
      r.apsp.emplace(r.graph);
      r.dist = DistOracle::kApsp;
    } else {
      switch (*plan.fam) {
        case ImplicitFamily::kComplete:
          r.dist = DistOracle::kUnit;
          break;
        case ImplicitFamily::kPath:
          r.dist = DistOracle::kPath;
          break;
        case ImplicitFamily::kRing:
          r.dist = DistOracle::kRing;
          break;
        case ImplicitFamily::kGrid:
          r.dist = DistOracle::kGrid;
          break;
        case ImplicitFamily::kTorus:
          r.dist = DistOracle::kTorus;
          break;
        case ImplicitFamily::kHypercube:
          r.dist = DistOracle::kHypercube;
          break;
      }
    }
  }
  if (!is_closed_loop(e)) r.requests = e.workload.build(r.n, r.root);
  return r;
}

}  // namespace exp_detail

std::optional<std::string> validate_experiment(const Experiment& e) {
  if (auto err = e.topology.validate()) return err;
  const TopologySpec& t = e.topology;
  const exp_detail::ResolvePlan plan = exp_detail::plan_resolve(e);
  if (plan.materialize) {
    const std::int64_t n = t.nodes;
    std::int64_t edges = 0;  // undirected edge estimate for the refusal gate
    switch (t.family) {
      case TopologySpec::Family::kComplete:
        edges = n * (n - 1) / 2;
        break;
      case TopologySpec::Family::kPath:
      case TopologySpec::Family::kRandomTree:
      case TopologySpec::Family::kWeightedTree:
        edges = n - 1;
        break;
      case TopologySpec::Family::kRing:
        edges = n;
        break;
      case TopologySpec::Family::kGrid:
        edges = 2 * n - t.rows - t.cols;
        break;
      case TopologySpec::Family::kTorus:
        edges = 2 * n;
        break;
      case TopologySpec::Family::kHypercube:
        if (t.dims > kMaxMaterializedHypercubeDims)
          return std::string("hypercube: dims ") + std::to_string(t.dims) +
                 " requires the implicit tier (generator cap is dims <= " +
                 std::to_string(kMaxMaterializedHypercubeDims) +
                 "); use a shortest-path tree without analysis";
        edges = n * t.dims / 2;
        break;
      case TopologySpec::Family::kGeometric: {
        // Expected unit-square pair density within radius r is <= pi r^2.
        const double pairs = 0.5 * static_cast<double>(n) * static_cast<double>(n);
        const double density = std::min(1.0, 3.15 * t.radius * t.radius);
        edges = static_cast<std::int64_t>(pairs * density);
        break;
      }
      case TopologySpec::Family::kCustom:
        edges = static_cast<std::int64_t>(t.custom_graph->edges().size());
        break;
    }
    if (edges > kMaxMaterializedEdges)
      return std::string(t.family_name()) + ": ~" + std::to_string(edges) +
             " edges would be materialized (cap " + std::to_string(kMaxMaterializedEdges) +
             "); this configuration cannot use the implicit tier" +
             (plan.fam ? " because the protocol/tree/analysis settings force a real graph"
                       : "");
  }
  if (exp_detail::is_baseline(e) && !plan.fam && t.nodes > kMaxApspNodes)
    return std::string(t.family_name()) + ": baseline distance oracle needs an O(n^2) APSP " +
           "table; " + std::to_string(t.nodes) + " nodes exceeds the " +
           std::to_string(kMaxApspNodes) + "-node cap";
  if (e.shards > 1) {
    if (e.protocol.kind == Protocol::kTokenPassing)
      return std::string(e.protocol.name()) +
             ": shards > 1 has no mirror (the token replays an analytic total order, "
             "which is inherently serial)";
    if (e.protocol.kind == Protocol::kCentralized && e.rounds > 0)
      return std::string(
          "centralized closed loop: shards > 1 supports the one-shot mode only "
          "(no sharded mirror for the find-completion reply loop)");
    if (e.fault.has_crash())
      return std::string(
          "shards > 1 cannot run a crash schedule (the recovery wave is a global "
          "pointer rewrite that cannot execute inside a safe window)");
    if (e.fault.has_partition())
      return std::string(
          "shards > 1 cannot run a partition schedule (per-side reconciliation and "
          "the heal merge are global pointer rewrites)");
    if (e.fault.has_churn())
      return std::string(
          "shards > 1 cannot run a churn schedule (tree re-selection is a global "
          "pointer rewrite)");
  }
  return std::nullopt;
}

namespace {

/// Process-wide high-water resident set, in bytes (0 where unavailable).
/// Monotone over the process lifetime: meaningful as a per-run budget only
/// when the largest run executes first (bench_throughput orders its
/// fig10_scale cells ascending for exactly this reason).
std::uint64_t peak_rss_bytes_now() {
#if defined(__APPLE__)
  rusage u{};
  if (getrusage(RUSAGE_SELF, &u) != 0) return 0;
  return static_cast<std::uint64_t>(u.ru_maxrss);  // bytes on macOS
#elif defined(__unix__)
  rusage u{};
  if (getrusage(RUSAGE_SELF, &u) != 0) return 0;
  return static_cast<std::uint64_t>(u.ru_maxrss) * 1024;  // kilobytes on Linux
#else
  return 0;
#endif
}

}  // namespace

RunResult run_experiment(const Experiment& e) {
  const auto index = static_cast<std::size_t>(e.protocol.kind);
  ARROWDQ_ASSERT_MSG(index < exp_detail::kDriverRegistry.size(), "unknown protocol");
  ARROWDQ_ASSERT_MSG(!e.analyze || e.keep_outcome,
                     "Experiment::analyze requires keep_outcome");
  if (auto err = validate_experiment(e)) ARROWDQ_ASSERT_MSG(false, err->c_str());
  exp_detail::Resolved r = exp_detail::resolve(e);
  RunResult res = exp_detail::kDriverRegistry[index](e, r);
  res.peak_rss_bytes = peak_rss_bytes_now();
  if (e.analyze && res.outcome)
    res.competitive = analyze_competitive(r.graph, r.tree, r.requests, *res.outcome);
  if (e.fault.active()) {
    // Recovery cost in one number: re-run the identical scenario fault-free
    // (same seeds, same topology/workload/latency) and report the makespan
    // delta. The twin recursion terminates because its fault is inactive.
    Experiment twin = e;
    twin.fault = FaultSpec::none();
    twin.keep_outcome = false;
    twin.analyze = false;
    RunResult base = run_experiment(twin);
    res.recovery_delta_units = static_cast<double>(res.makespan - base.makespan) /
                               static_cast<double>(kTicksPerUnit);
    // The topology-fault flavour: only meaningful (and only emitted in JSON)
    // when a partition or churn schedule shaped the run.
    if (e.fault.has_partition() || e.fault.has_churn())
      res.partition_delta_units = res.recovery_delta_units;
  }
  return res;
}

std::vector<ExperimentResult> run_experiments(const std::vector<Experiment>& exps,
                                              const SweepRunner& runner) {
  return runner.map<ExperimentResult>(exps.size(), [&exps](std::size_t i) {
    const Experiment& e = exps[i];
    const auto t0 = std::chrono::steady_clock::now();
    RunResult res = run_experiment(e);
    const auto t1 = std::chrono::steady_clock::now();
    return ExperimentResult{e.label.empty() ? e.default_label() : e.label, std::move(res),
                            std::chrono::duration<double>(t1 - t0).count()};
  });
}

std::vector<ExperimentResult> run_experiments(const std::vector<Experiment>& exps) {
  return run_experiments(exps, SweepRunner(1));
}

QueuingOutcome arrow_outcome(const Tree& tree, const RequestSet& requests) {
  Experiment e;
  e.protocol = ProtocolSpec::arrow_one_shot();
  e.latency = LatencySpec::synchronous();
  e.keep_outcome = true;
  // Call the registry driver with a hand-built Resolved: the arrow driver
  // reads only the tree and the requests, so going through TopologySpec/
  // WorkloadSpec would round-trip a Graph and double-copy both inputs for
  // nothing on this hot application-layer path.
  exp_detail::Resolved r;
  r.tree = tree;
  r.requests = requests;
  RunResult res = exp_detail::run_protocol<Protocol::kArrowOneShot>(e, r);
  return std::move(*res.outcome);
}

}  // namespace arrowdq
