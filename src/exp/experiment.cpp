#include "exp/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "apps/token_sim.hpp"
#include "arrow/arrow.hpp"
#include "arrow/closed_loop.hpp"
#include "baseline/centralized.hpp"
#include "exp/registry.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"
#include "workload/workloads.hpp"

namespace arrowdq {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kArrowOneShot:
      return "arrow";
    case Protocol::kArrowClosedLoop:
      return "arrow-loop";
    case Protocol::kCentralized:
      return "centralized";
    case Protocol::kPointerForwarding:
      return "forwarding";
    case Protocol::kTokenPassing:
      return "token";
  }
  return "?";
}

// --- topology ---------------------------------------------------------------

Graph TopologySpec::build_graph() const {
  switch (family) {
    case Family::kComplete:
      return make_complete(nodes);
    case Family::kPath:
      return make_path(nodes);
    case Family::kGrid:
      return make_grid(rows, cols);
    case Family::kTorus:
      return make_torus(rows, cols);
    case Family::kHypercube:
      return make_hypercube(dims);
    case Family::kGeometric: {
      Rng rng(mix64(seed + 0x70b01063));
      return make_random_geometric(nodes, radius, rng, weight_scale);
    }
    case Family::kRandomTree: {
      Rng rng(mix64(seed + 0x70b01061));
      return make_random_tree(nodes, rng);
    }
    case Family::kWeightedTree: {
      Rng rng(mix64(seed + 0x70b01062));
      Graph skeleton = make_random_tree(nodes, rng);
      Graph g(nodes);
      for (const Edge& e : skeleton.edges())
        g.add_edge(e.u, e.v,
                   1 + static_cast<Weight>(rng.next_below(
                           static_cast<std::uint64_t>(max_weight))));
      return g;
    }
    case Family::kCustom:
      ARROWDQ_ASSERT_MSG(custom_graph.has_value(), "custom topology without a graph");
      return *custom_graph;
  }
  ARROWDQ_ASSERT_MSG(false, "unknown topology family");
  return Graph{0};
}

Tree TopologySpec::build_tree(const Graph& g) const {
  if (family == Family::kCustom) {
    ARROWDQ_ASSERT_MSG(custom_tree.has_value(), "custom topology without a tree");
    return *custom_tree;
  }
  switch (tree_kind) {
    case TreeKind::kShortestPath:
      return shortest_path_tree(g, root);
    case TreeKind::kBalancedBinary:
      return balanced_binary_overlay(g, root);
    case TreeKind::kMst:
      return kruskal_mst(g, root);
    case TreeKind::kMedianSpt:
      return median_spt(g);
  }
  ARROWDQ_ASSERT_MSG(false, "unknown tree kind");
  return shortest_path_tree(g, root);
}

const char* TopologySpec::family_name() const {
  switch (family) {
    case Family::kComplete:
      return "complete";
    case Family::kPath:
      return "path";
    case Family::kGrid:
      return "grid";
    case Family::kTorus:
      return "torus";
    case Family::kHypercube:
      return "hypercube";
    case Family::kGeometric:
      return "geometric";
    case Family::kRandomTree:
      return "randtree";
    case Family::kWeightedTree:
      return "wtree";
    case Family::kCustom:
      return "custom";
  }
  return "?";
}

// --- workload ---------------------------------------------------------------

RequestSet WorkloadSpec::build(NodeId n, NodeId root) const {
  switch (kind) {
    case Kind::kOneShotAll:
      // Qualified: the unqualified name would find the static factory.
      return ::arrowdq::one_shot_all(n, root);
    case Kind::kPoisson: {
      Rng rng(mix64(seed + 0x10ad0001));
      return poisson_uniform(n, root, count, rate_per_unit, rng);
    }
    case Kind::kBursty: {
      Rng rng(mix64(seed + 0x10ad0002));
      return bursty(n, root, bursts, burst_size, gap_units, rng);
    }
    case Kind::kSequential: {
      Rng rng(mix64(seed + 0x10ad0003));
      return sequential_random(n, root, count, gap_units, rng);
    }
    case Kind::kCustom:
      ARROWDQ_ASSERT_MSG(custom.has_value(), "custom workload without a request set");
      ARROWDQ_ASSERT_MSG(custom->root() == root,
                         "custom workload root must match the topology root");
      return *custom;
  }
  ARROWDQ_ASSERT_MSG(false, "unknown workload kind");
  return RequestSet{root, {}};
}

const char* WorkloadSpec::name() const {
  switch (kind) {
    case Kind::kOneShotAll:
      return "oneshot";
    case Kind::kPoisson:
      return "poisson";
    case Kind::kBursty:
      return "bursty";
    case Kind::kSequential:
      return "sequential";
    case Kind::kCustom:
      return "custom";
  }
  return "?";
}

// --- experiment -------------------------------------------------------------

std::string Experiment::default_label() const {
  std::string s = protocol.name();
  s += ' ';
  s += topology.family_name();
  s += '-';
  s += std::to_string(topology.nodes);
  s += ' ';
  s += latency.name();
  if (fault.active()) {
    s += ' ';
    s += fault.name();
  }
  return s;
}

Experiment Experiment::with_seed(std::uint64_t seed) const {
  Experiment e = *this;
  e.topology.seed = mix64(seed ^ 0x1070b0ULL);
  e.workload.seed = mix64(seed ^ 0x2010adULL);
  e.latency.seed = mix64(seed ^ 0x301a7eULL);  // ignored by deterministic kinds
  e.fault.seed = mix64(seed ^ 0x4fa017ULL);    // ignored when kind == kNone
  return e;
}

namespace exp_detail {

namespace {

/// Latest completion time over all requests of a one-shot outcome.
Time outcome_makespan(const QueuingOutcome& out) {
  Time last = 0;
  for (RequestId id = 1; id <= out.request_count(); ++id)
    last = std::max(last, out.completion(id).completed_at);
  return last;
}

/// Shared one-shot metric extraction (arrow, centralized, forwarding).
void fill_one_shot(RunResult& r, const Experiment& e, const RequestSet& requests,
                   QueuingOutcome out) {
  r.makespan = outcome_makespan(out);
  r.total_requests = requests.size();
  r.total_hops = out.total_hops();
  r.total_distance = out.total_distance();
  r.total_latency = out.total_latency(requests);
  r.avg_hops_per_request =
      requests.size() == 0
          ? 0.0
          : static_cast<double>(r.total_hops) / static_cast<double>(requests.size());
  if (e.keep_outcome) r.outcome = std::move(out);
}

}  // namespace

template <>
RunResult run_protocol<Protocol::kArrowOneShot>(const Experiment& e, Resolved& r) {
  auto model = e.latency.make();
  ArrowEngine engine(r.tree, *model);
  engine.set_service_time(e.protocol.service_time);
  engine.set_fault(e.fault);
  QueuingOutcome out = engine.run(r.requests);
  // A crash severs the pre-crash successor chain (the recovery wave adopts
  // one tail and absorbs the rest), so the full-order walk of validate()
  // cannot apply; every request still completes exactly once (asserted by
  // QueuingOutcome::record / is_complete). Message-only faults are pure
  // delay and keep the order total.
  if (!e.fault.has_crash()) out.validate(r.requests);
  RunResult res;
  res.protocol = e.protocol.kind;
  res.messages = engine.messages_sent();
  res.messages_dropped = engine.fault_stats().messages_dropped;
  res.messages_duplicated = engine.fault_stats().messages_duplicated;
  res.crashes = engine.crashes_applied();
  res.stabilize_rounds = engine.stabilize_rounds();
  res.stabilize_corrections = engine.stabilize_corrections();
  fill_one_shot(res, e, r.requests, std::move(out));
  return res;
}

template <>
RunResult run_protocol<Protocol::kArrowClosedLoop>(const Experiment& e, Resolved& r) {
  ARROWDQ_ASSERT_MSG(e.rounds > 0, "arrow closed loop needs rounds > 0");
  auto model = e.latency.make();
  ClosedLoopConfig cfg;
  cfg.requests_per_node = e.rounds;
  cfg.service_time = e.protocol.service_time;
  cfg.fault = e.fault;
  ClosedLoopResult loop = run_arrow_closed_loop(r.tree, *model, cfg);
  RunResult res;
  res.protocol = e.protocol.kind;
  res.makespan = loop.makespan;
  res.total_requests = loop.total_requests;
  res.messages = loop.tree_messages + loop.notify_messages;
  res.total_hops = static_cast<std::int64_t>(loop.tree_messages);
  res.avg_hops_per_request = loop.avg_hops_per_request;
  res.avg_round_latency_units = loop.avg_round_latency_units;
  res.messages_dropped = loop.messages_dropped;
  res.messages_duplicated = loop.messages_duplicated;
  res.crashes = loop.crashes;
  res.stabilize_rounds = loop.stabilize_rounds;
  res.stabilize_corrections = loop.stabilize_corrections;
  return res;
}

template <>
RunResult run_protocol<Protocol::kCentralized>(const Experiment& e, Resolved& r) {
  CentralizedConfig cfg;
  cfg.center = e.protocol.center;
  cfg.service_time = e.protocol.service_time;
  cfg.fault = e.fault;
  const NodeId n = r.graph.node_count();
  RunResult res;
  res.protocol = e.protocol.kind;
  res.crashes = e.fault.has_crash() ? e.fault.crash_count : 0;
  if (e.rounds > 0) {
    CentralizedLoopResult loop =
        r.apsp ? run_centralized_closed_loop(n, e.rounds, ApspDist{&*r.apsp}, cfg)
               : run_centralized_closed_loop(n, e.rounds, UnitDist{}, cfg);
    res.makespan = loop.makespan;
    res.total_requests = loop.total_requests;
    res.messages = loop.messages;
    res.total_hops = static_cast<std::int64_t>(loop.messages);
    res.avg_hops_per_request =
        loop.total_requests == 0
            ? 0.0
            : static_cast<double>(loop.messages) / static_cast<double>(loop.total_requests);
    res.avg_round_latency_units = loop.avg_round_latency_units;
    res.messages_dropped = loop.messages_dropped;
    res.messages_duplicated = loop.messages_duplicated;
    return res;
  }
  FaultStats fs;
  cfg.fault_stats_out = &fs;
  QueuingOutcome out = r.apsp ? run_centralized(n, r.requests, ApspDist{&*r.apsp}, cfg)
                              : run_centralized(n, r.requests, UnitDist{}, cfg);
  out.validate(r.requests);
  res.messages = static_cast<std::uint64_t>(out.total_hops());
  res.messages_dropped = fs.messages_dropped;
  res.messages_duplicated = fs.messages_duplicated;
  fill_one_shot(res, e, r.requests, std::move(out));
  return res;
}

template <>
RunResult run_protocol<Protocol::kPointerForwarding>(const Experiment& e, Resolved& r) {
  PointerForwardingConfig cfg;
  cfg.mode = e.protocol.mode;
  cfg.service_time = e.protocol.service_time;
  cfg.initial_owner = r.tree.root();
  cfg.fault = e.fault;
  const NodeId n = r.graph.node_count();
  RunResult res;
  res.protocol = e.protocol.kind;
  res.crashes = e.fault.has_crash() ? e.fault.crash_count : 0;
  if (e.rounds > 0) {
    ForwardingLoopResult loop =
        r.apsp ? run_pointer_forwarding_closed_loop(n, e.rounds, ApspDist{&*r.apsp}, cfg)
               : run_pointer_forwarding_closed_loop(n, e.rounds, UnitDist{}, cfg);
    res.makespan = loop.makespan;
    res.total_requests = loop.total_requests;
    res.messages = loop.find_messages + loop.reply_messages;
    res.total_hops = static_cast<std::int64_t>(loop.find_messages);
    res.avg_hops_per_request = loop.avg_hops_per_request;
    res.avg_round_latency_units = loop.avg_round_latency_units;
    res.messages_dropped = loop.messages_dropped;
    res.messages_duplicated = loop.messages_duplicated;
    return res;
  }
  FaultStats fs;
  cfg.fault_stats_out = &fs;
  QueuingOutcome out =
      r.apsp ? run_pointer_forwarding(n, r.requests, ApspDist{&*r.apsp}, cfg)
             : run_pointer_forwarding(n, r.requests, UnitDist{}, cfg);
  out.validate(r.requests);
  res.messages = static_cast<std::uint64_t>(out.total_hops());
  res.messages_dropped = fs.messages_dropped;
  res.messages_duplicated = fs.messages_duplicated;
  fill_one_shot(res, e, r.requests, std::move(out));
  return res;
}

template <>
RunResult run_protocol<Protocol::kTokenPassing>(const Experiment& e, Resolved& r) {
  // The token rides on an arrow execution: queue first (consuming the
  // latency model's stream exactly as a standalone arrow run would), then
  // circulate the token through the same model — identical to the legacy
  // {run_arrow; simulate_token_passing} sequence.
  //
  // Crashes are stripped: the token replays the analytic total order, which
  // cannot express a forked post-crash queue. Message faults stay and
  // perturb the queuing phase (the token circulation itself rides the
  // unfiltered latency model).
  auto model = e.latency.make();
  ArrowEngine engine(r.tree, *model);
  engine.set_service_time(e.protocol.service_time);
  engine.set_fault(e.fault.without_crash());
  QueuingOutcome out = engine.run(r.requests);
  out.validate(r.requests);
  TokenSimResult token =
      simulate_token_passing(r.tree, r.requests, out, e.protocol.hold_ticks, *model);
  RunResult res;
  res.protocol = e.protocol.kind;
  res.makespan = token.makespan;
  res.total_requests = r.requests.size();
  res.messages = engine.messages_sent() + token.token_messages;
  res.total_hops = static_cast<std::int64_t>(token.token_messages);
  res.total_distance = token.token_travel;
  res.total_latency = out.total_latency(r.requests);
  res.avg_hops_per_request =
      r.requests.size() == 0
          ? 0.0
          : static_cast<double>(token.token_messages) / static_cast<double>(r.requests.size());
  res.messages_dropped = engine.fault_stats().messages_dropped;
  res.messages_duplicated = engine.fault_stats().messages_duplicated;
  if (e.keep_outcome) res.outcome = std::move(out);
  return res;
}

namespace {

bool is_closed_loop(const Experiment& e) {
  return e.protocol.kind == Protocol::kArrowClosedLoop ||
         ((e.protocol.kind == Protocol::kCentralized ||
           e.protocol.kind == Protocol::kPointerForwarding) &&
          e.rounds > 0);
}

bool needs_apsp_oracle(const Experiment& e) {
  if (e.protocol.kind != Protocol::kCentralized &&
      e.protocol.kind != Protocol::kPointerForwarding)
    return false;
  // A complete unit-weight graph is exactly the UnitDist oracle; everything
  // else routes distances through a per-run APSP table.
  return e.topology.family != TopologySpec::Family::kComplete;
}

Resolved resolve(const Experiment& e) {
  Resolved r;
  r.graph = e.topology.build_graph();
  r.tree = e.topology.build_tree(r.graph);
  if (!is_closed_loop(e)) r.requests = e.workload.build(r.graph.node_count(), r.tree.root());
  if (needs_apsp_oracle(e)) r.apsp.emplace(r.graph);
  return r;
}

}  // namespace
}  // namespace exp_detail

RunResult run_experiment(const Experiment& e) {
  const auto index = static_cast<std::size_t>(e.protocol.kind);
  ARROWDQ_ASSERT_MSG(index < exp_detail::kDriverRegistry.size(), "unknown protocol");
  ARROWDQ_ASSERT_MSG(!e.analyze || e.keep_outcome,
                     "Experiment::analyze requires keep_outcome");
  exp_detail::Resolved r = exp_detail::resolve(e);
  RunResult res = exp_detail::kDriverRegistry[index](e, r);
  if (e.analyze && res.outcome)
    res.competitive = analyze_competitive(r.graph, r.tree, r.requests, *res.outcome);
  if (e.fault.active()) {
    // Recovery cost in one number: re-run the identical scenario fault-free
    // (same seeds, same topology/workload/latency) and report the makespan
    // delta. The twin recursion terminates because its fault is inactive.
    Experiment twin = e;
    twin.fault = FaultSpec::none();
    twin.keep_outcome = false;
    twin.analyze = false;
    RunResult base = run_experiment(twin);
    res.recovery_delta_units = static_cast<double>(res.makespan - base.makespan) /
                               static_cast<double>(kTicksPerUnit);
  }
  return res;
}

std::vector<ExperimentResult> run_experiments(const std::vector<Experiment>& exps,
                                              const SweepRunner& runner) {
  return runner.map<ExperimentResult>(exps.size(), [&exps](std::size_t i) {
    const Experiment& e = exps[i];
    const auto t0 = std::chrono::steady_clock::now();
    RunResult res = run_experiment(e);
    const auto t1 = std::chrono::steady_clock::now();
    return ExperimentResult{e.label.empty() ? e.default_label() : e.label, std::move(res),
                            std::chrono::duration<double>(t1 - t0).count()};
  });
}

std::vector<ExperimentResult> run_experiments(const std::vector<Experiment>& exps) {
  return run_experiments(exps, SweepRunner(1));
}

QueuingOutcome arrow_outcome(const Tree& tree, const RequestSet& requests) {
  Experiment e;
  e.protocol = ProtocolSpec::arrow_one_shot();
  e.latency = LatencySpec::synchronous();
  e.keep_outcome = true;
  // Call the registry driver with a hand-built Resolved: the arrow driver
  // reads only the tree and the requests, so going through TopologySpec/
  // WorkloadSpec would round-trip a Graph and double-copy both inputs for
  // nothing on this hot application-layer path.
  exp_detail::Resolved r;
  r.tree = tree;
  r.requests = requests;
  RunResult res = exp_detail::run_protocol<Protocol::kArrowOneShot>(e, r);
  return std::move(*res.outcome);
}

}  // namespace arrowdq
