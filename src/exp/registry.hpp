// Compile-time protocol registry for the Experiment API.
//
// One entry per Protocol value: a plain function pointer to a fully typed
// driver shim. Each shim is a `run_protocol<P>` specialization whose body
// (exp/experiment.cpp) instantiates the statically dispatched simulation
// stack — value-type latency samplers via with_static_latency, typed
// network handlers, value-type distance oracles via with_static_dist — so
// the only indirect call an experiment pays is this single registry lookup
// per *run*; the per-message path stays exactly PR 3's devirtualized hot
// loop, with no std::function anywhere on it.
//
// The registry is a constexpr array built at compile time; adding a protocol
// means adding an enumerator, a specialization, and one array entry — the
// static_assert below keeps the three in sync. A driver may cover both
// execution modes behind one entry: kCentralized and kPointerForwarding
// switch between one-shot (rounds == 0, workload-driven) and closed-loop
// (rounds > 0, find-completion reply) inside their shim, so every protocol
// is sweepable in whichever modes it defines.
#pragma once

#include <array>
#include <optional>

#include "exp/experiment.hpp"
#include "graph/shortest_paths.hpp"

namespace arrowdq {
namespace exp_detail {

/// Everything a driver needs, materialized once per run from the value
/// specs: private graph/tree copies (Graph's lazy edge index is not
/// thread-safe to share), the request schedule for one-shot protocols, and
/// the APSP table behind the baselines' distance oracle on non-complete
/// topologies.
struct Resolved {
  Graph graph;
  Tree tree{std::vector<NodeId>{kNoNode}, std::vector<Weight>{1}, 0};
  RequestSet requests{0, {}};    // empty for pure closed-loop runs
  std::optional<AllPairs> apsp;  // engaged iff the dG oracle needs it
};

using DriverFn = RunResult (*)(const Experiment&, Resolved&);

template <Protocol P>
RunResult run_protocol(const Experiment& e, Resolved& r);

template <>
RunResult run_protocol<Protocol::kArrowOneShot>(const Experiment& e, Resolved& r);
template <>
RunResult run_protocol<Protocol::kArrowClosedLoop>(const Experiment& e, Resolved& r);
template <>
RunResult run_protocol<Protocol::kCentralized>(const Experiment& e, Resolved& r);
template <>
RunResult run_protocol<Protocol::kPointerForwarding>(const Experiment& e, Resolved& r);
template <>
RunResult run_protocol<Protocol::kTokenPassing>(const Experiment& e, Resolved& r);

inline constexpr std::array<DriverFn, kProtocolCount> kDriverRegistry = {
    &run_protocol<Protocol::kArrowOneShot>,
    &run_protocol<Protocol::kArrowClosedLoop>,
    &run_protocol<Protocol::kCentralized>,
    &run_protocol<Protocol::kPointerForwarding>,
    &run_protocol<Protocol::kTokenPassing>,
};
static_assert(kDriverRegistry.size() == static_cast<std::size_t>(kProtocolCount),
              "every Protocol enumerator needs a registry entry");

}  // namespace exp_detail
}  // namespace arrowdq
