// Compile-time protocol registry for the Experiment API.
//
// One entry per Protocol value: a plain function pointer to a fully typed
// driver shim. Each shim is a `run_protocol<P>` specialization whose body
// (exp/experiment.cpp) instantiates the statically dispatched simulation
// stack — value-type latency samplers via with_static_latency, typed
// network handlers, value-type distance oracles via with_static_dist — so
// the only indirect call an experiment pays is this single registry lookup
// per *run*; the per-message path stays exactly PR 3's devirtualized hot
// loop, with no std::function anywhere on it.
//
// The registry is a constexpr array built at compile time; adding a protocol
// means adding an enumerator, a specialization, and one array entry — the
// static_assert below keeps the three in sync. A driver may cover both
// execution modes behind one entry: kCentralized and kPointerForwarding
// switch between one-shot (rounds == 0, workload-driven) and closed-loop
// (rounds > 0, find-completion reply) inside their shim, so every protocol
// is sweepable in whichever modes it defines.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "exp/experiment.hpp"
#include "graph/implicit.hpp"
#include "graph/shortest_paths.hpp"

namespace arrowdq {
namespace exp_detail {

/// Which dG oracle the baseline drivers draw distances from. The structured
/// families use the closed forms of baseline/dist.hpp — no APSP table — so
/// only the irregular families (geometric, random/weighted tree, custom)
/// still pay O(n^2).
enum class DistOracle : std::uint8_t {
  kUnit,       // complete graph
  kApsp,       // irregular families: per-run APSP table
  kPath,
  kRing,
  kGrid,
  kTorus,
  kHypercube,
};

/// Everything a driver needs, materialized once per run from the value
/// specs. On the materialized tier: private graph/tree copies (Graph's lazy
/// edge index is not thread-safe to share), the request schedule for
/// one-shot protocols, and the APSP table behind the baselines' oracle on
/// irregular topologies. On the scale tier, resolve() leaves `graph` (and
/// where possible `tree`) empty: structured families carry closed forms for
/// distance, adjacency, and the canonical tree parent, so baselines draw dG
/// straight from a formula and the arrow closed loop runs fully implicit.
struct Resolved {
  Graph graph;  // empty (node_count 0) when no driver path reads adjacency
  Tree tree{std::vector<NodeId>{kNoNode}, std::vector<Weight>{1}, 0};
  RequestSet requests{0, {}};    // empty for pure closed-loop runs
  std::optional<AllPairs> apsp;  // engaged iff the dG oracle needs it
  NodeId n = 0;                  // authoritative node count (graph may be empty)
  NodeId root = 0;               // tree root / forwarding initial owner
  NodeId rows = 0, cols = 0;     // grid/torus closed-form oracle parameters
  DistOracle dist = DistOracle::kUnit;
  /// Engaged for structured families resolved without a graph; carries the
  /// closed forms (and materializes the tree in O(n) when a driver needs
  /// one).
  std::optional<ImplicitTopology> implicit;
  /// kArrowClosedLoop only: run the compact implicit driver instead of the
  /// materialized one.
  bool implicit_loop = false;
};

using DriverFn = RunResult (*)(const Experiment&, Resolved&);

/// Materialize (or deliberately skip materializing) everything `e`'s driver
/// needs. Exposed for tests probing the scale-path decisions (e.g. that no
/// APSP is built for structured families).
Resolved resolve(const Experiment& e);

template <Protocol P>
RunResult run_protocol(const Experiment& e, Resolved& r);

template <>
RunResult run_protocol<Protocol::kArrowOneShot>(const Experiment& e, Resolved& r);
template <>
RunResult run_protocol<Protocol::kArrowClosedLoop>(const Experiment& e, Resolved& r);
template <>
RunResult run_protocol<Protocol::kCentralized>(const Experiment& e, Resolved& r);
template <>
RunResult run_protocol<Protocol::kPointerForwarding>(const Experiment& e, Resolved& r);
template <>
RunResult run_protocol<Protocol::kTokenPassing>(const Experiment& e, Resolved& r);

inline constexpr std::array<DriverFn, kProtocolCount> kDriverRegistry = {
    &run_protocol<Protocol::kArrowOneShot>,
    &run_protocol<Protocol::kArrowClosedLoop>,
    &run_protocol<Protocol::kCentralized>,
    &run_protocol<Protocol::kPointerForwarding>,
    &run_protocol<Protocol::kTokenPassing>,
};
static_assert(kDriverRegistry.size() == static_cast<std::size_t>(kProtocolCount),
              "every Protocol enumerator needs a registry entry");

}  // namespace exp_detail
}  // namespace arrowdq
