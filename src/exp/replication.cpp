#include "exp/replication.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/assert.hpp"
#include "support/random.hpp"

namespace arrowdq {

double normal_quantile(double p) {
  ARROWDQ_ASSERT_MSG(p > 0.0 && p < 1.0, "quantile level must be in (0, 1)");
  // Acklam's rational approximation: three regimes, refined coefficients.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  double q = p - 0.5;
  double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

MetricStats fold_metric(const std::vector<double>& samples, double confidence) {
  MetricStats s;
  const auto n = samples.size();
  if (n == 0) return s;
  double sum = 0.0;
  s.min = samples[0];
  s.max = samples[0];
  for (double x : samples) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(n);
  if (n >= 2) {
    double ss = 0.0;
    for (double x : samples) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(n - 1));
  }
  const double z = normal_quantile(0.5 + confidence / 2.0);
  const double half = n >= 2 ? z * s.stddev / std::sqrt(static_cast<double>(n)) : 0.0;
  s.ci_lo = s.mean - half;
  s.ci_hi = s.mean + half;
  return s;
}

ReplicatedResult fold_replicas(std::vector<RunResult> runs, double confidence) {
  ARROWDQ_ASSERT_MSG(!runs.empty(), "cannot fold zero replicas");
  ReplicatedResult res;
  res.protocol = runs.front().protocol;
  res.replicas = static_cast<int>(runs.size());
  res.confidence = confidence;

  std::vector<double> samples(runs.size());
  auto fold = [&](auto metric_of) {
    for (std::size_t i = 0; i < runs.size(); ++i) samples[i] = metric_of(runs[i]);
    return fold_metric(samples, confidence);
  };
  res.makespan_units = fold([](const RunResult& r) { return ticks_to_units_d(r.makespan); });
  res.total_requests =
      fold([](const RunResult& r) { return static_cast<double>(r.total_requests); });
  res.messages = fold([](const RunResult& r) { return static_cast<double>(r.messages); });
  res.total_hops = fold([](const RunResult& r) { return static_cast<double>(r.total_hops); });
  res.avg_hops_per_request = fold([](const RunResult& r) { return r.avg_hops_per_request; });
  res.avg_round_latency_units =
      fold([](const RunResult& r) { return r.avg_round_latency_units; });
  res.total_latency_units =
      fold([](const RunResult& r) { return ticks_to_units_d(r.total_latency); });
  res.runs = std::move(runs);
  return res;
}

std::uint64_t replica_seed(std::uint64_t base_seed, std::size_t cell, int replica) {
  // (cell, replica) -> a distinct 64-bit input (replica counts are tiny
  // relative to the odd golden-ratio stride), decorrelated twice through
  // mix64 — the same scheme Experiment::with_seed uses per component.
  return mix64(base_seed ^ mix64(static_cast<std::uint64_t>(cell) * 0x9e3779b97f4a7c15ULL +
                                 static_cast<std::uint64_t>(replica)));
}

std::vector<ReplicatedExperimentResult> run_replicated(const std::vector<Experiment>& cells,
                                                       const ReplicationSpec& spec,
                                                       const SweepRunner& runner) {
  ARROWDQ_ASSERT_MSG(spec.count >= 1, "replication count must be >= 1");
  ARROWDQ_ASSERT_MSG(spec.confidence > 0.0 && spec.confidence < 1.0,
                     "confidence level must be in (0, 1)");
  const auto r_count = static_cast<std::size_t>(spec.count);

  // Flatten cell x replica into one scenario list; run_experiments shards it
  // deterministically, which is what makes the folded statistics
  // thread-count invariant.
  std::vector<Experiment> flat;
  flat.reserve(cells.size() * r_count);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    flat.push_back(cells[i]);
    for (int r = 1; r < spec.count; ++r)
      flat.push_back(cells[i].with_seed(replica_seed(spec.base_seed, i, r)));
  }
  std::vector<ExperimentResult> flat_results = run_experiments(flat, runner);

  std::vector<ReplicatedExperimentResult> out;
  out.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ReplicatedExperimentResult cell;
    std::vector<RunResult> runs;
    runs.reserve(r_count);
    for (std::size_t r = 0; r < r_count; ++r) {
      ExperimentResult& er = flat_results[i * r_count + r];
      if (r == 0) cell.label = std::move(er.label);
      cell.seconds += er.seconds;
      runs.push_back(std::move(er.result));
    }
    cell.result = fold_replicas(std::move(runs), spec.confidence);
    out.push_back(std::move(cell));
  }
  return out;
}

std::vector<ReplicatedExperimentResult> run_replicated(const std::vector<Experiment>& cells,
                                                       const ReplicationSpec& spec) {
  return run_replicated(cells, spec, SweepRunner(1));
}

}  // namespace arrowdq
