#include "exp/replication.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/assert.hpp"
#include "support/random.hpp"

namespace arrowdq {

double normal_quantile(double p) {
  ARROWDQ_ASSERT_MSG(p > 0.0 && p < 1.0, "quantile level must be in (0, 1)");
  // Acklam's rational approximation: three regimes, refined coefficients.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  double q = p - 0.5;
  double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

namespace {

/// Regularized incomplete beta I_x(a, b) via the Numerical Recipes Lentz
/// continued fraction. The x^a (1-x)^b / (a B(a, b)) prefactor needs the
/// complete beta: for the half-integer a and b = 1/2 this module uses, the
/// recurrence B(a+1, b) = B(a, b) * a / (a + b) walks up from the exact
/// anchors B(1, 1/2) = 2 and B(1/2, 1/2) = pi — no lgamma required.
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 1e-15;
  constexpr double kTiny = 1e-300;
  double qab = a + b, qap = a + 1.0, qam = a - 1.0;
  double c = 1.0, d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

/// Complete beta B(a, 1/2) for a = dof/2 (integer or half-integer).
double beta_half(double a) {
  constexpr double kPi = 3.14159265358979323846;
  double val, cur;
  if (a == std::floor(a)) {
    val = 2.0;  // B(1, 1/2)
    cur = 1.0;
  } else {
    val = kPi;  // B(1/2, 1/2)
    cur = 0.5;
  }
  while (cur < a - 0.25) {
    val *= cur / (cur + 0.5);
    cur += 1.0;
  }
  return val;
}

double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  // b is always 1/2 here, so B(a, b) comes from the half-integer walk; the
  // symmetric branch needs B(b, a) = B(a, b).
  const double ln_front = a * std::log(x) + b * std::log1p(-x);
  if (x < (a + 1.0) / (a + b + 2.0))
    return std::exp(ln_front) / (a * beta_half(a)) * beta_cf(a, b, x);
  const double ln_front_sym = b * std::log1p(-x) + a * std::log(x);
  return 1.0 - std::exp(ln_front_sym) / (b * beta_half(a)) * beta_cf(b, a, 1.0 - x);
}

/// CDF of the Student-t distribution at `dof` degrees of freedom.
double student_t_cdf(double t, double dof) {
  const double x = dof / (dof + t * t);
  const double tail = 0.5 * incomplete_beta(dof / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

}  // namespace

double student_t_quantile(double p, int dof) {
  ARROWDQ_ASSERT_MSG(p > 0.0 && p < 1.0, "quantile level must be in (0, 1)");
  ARROWDQ_ASSERT_MSG(dof >= 1, "degrees of freedom must be >= 1");
  if (p == 0.5) return 0.0;
  constexpr double kPi = 3.14159265358979323846;
  if (dof == 1) return std::tan(kPi * (p - 0.5));
  if (dof == 2) return (2.0 * p - 1.0) * std::sqrt(2.0 / (4.0 * p * (1.0 - p)));
  // Invert the CDF by bisection from the upper half (symmetry handles the
  // lower). The normal quantile under-shoots the t quantile, so doubling
  // from it brackets the root quickly at any dof.
  const double target = p >= 0.5 ? p : 1.0 - p;
  double lo = 0.0;
  double hi = std::max(1.0, 2.0 * normal_quantile(target));
  const double nu = static_cast<double>(dof);
  while (student_t_cdf(hi, nu) < target) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, nu) < target)
      lo = mid;
    else
      hi = mid;
    if (hi - lo < 1e-13 * std::max(1.0, hi)) break;
  }
  const double t = 0.5 * (lo + hi);
  return p >= 0.5 ? t : -t;
}

MetricStats fold_metric(const std::vector<double>& samples, double confidence) {
  MetricStats s;
  const auto n = samples.size();
  if (n == 0) return s;
  double sum = 0.0;
  s.min = samples[0];
  s.max = samples[0];
  for (double x : samples) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(n);
  if (n >= 2) {
    double ss = 0.0;
    for (double x : samples) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(n - 1));
  }
  // Student-t at n-1 dof: the replica counts sweeps actually use are small
  // (R of 2..10), where the normal quantile understates the interval badly.
  const double half =
      n >= 2 ? student_t_quantile(0.5 + confidence / 2.0, static_cast<int>(n) - 1) * s.stddev /
                   std::sqrt(static_cast<double>(n))
             : 0.0;
  s.ci_lo = s.mean - half;
  s.ci_hi = s.mean + half;
  return s;
}

ReplicatedResult fold_replicas(std::vector<RunResult> runs, double confidence) {
  ARROWDQ_ASSERT_MSG(!runs.empty(), "cannot fold zero replicas");
  ReplicatedResult res;
  res.protocol = runs.front().protocol;
  res.replicas = static_cast<int>(runs.size());
  res.confidence = confidence;

  std::vector<double> samples(runs.size());
  auto fold = [&](auto metric_of) {
    for (std::size_t i = 0; i < runs.size(); ++i) samples[i] = metric_of(runs[i]);
    return fold_metric(samples, confidence);
  };
  res.makespan_units = fold([](const RunResult& r) { return ticks_to_units_d(r.makespan); });
  res.total_requests =
      fold([](const RunResult& r) { return static_cast<double>(r.total_requests); });
  res.messages = fold([](const RunResult& r) { return static_cast<double>(r.messages); });
  res.total_hops = fold([](const RunResult& r) { return static_cast<double>(r.total_hops); });
  res.avg_hops_per_request = fold([](const RunResult& r) { return r.avg_hops_per_request; });
  res.avg_round_latency_units =
      fold([](const RunResult& r) { return r.avg_round_latency_units; });
  res.total_latency_units =
      fold([](const RunResult& r) { return ticks_to_units_d(r.total_latency); });
  res.runs = std::move(runs);
  return res;
}

std::uint64_t replica_seed(std::uint64_t base_seed, std::size_t cell, int replica) {
  // (cell, replica) -> a distinct 64-bit input (replica counts are tiny
  // relative to the odd golden-ratio stride), decorrelated twice through
  // mix64 — the same scheme Experiment::with_seed uses per component.
  return mix64(base_seed ^ mix64(static_cast<std::uint64_t>(cell) * 0x9e3779b97f4a7c15ULL +
                                 static_cast<std::uint64_t>(replica)));
}

std::vector<ReplicatedExperimentResult> run_replicated(const std::vector<Experiment>& cells,
                                                       const ReplicationSpec& spec,
                                                       const SweepRunner& runner) {
  ARROWDQ_ASSERT_MSG(spec.count >= 1, "replication count must be >= 1");
  ARROWDQ_ASSERT_MSG(spec.confidence > 0.0 && spec.confidence < 1.0,
                     "confidence level must be in (0, 1)");
  const auto r_count = static_cast<std::size_t>(spec.count);

  // Flatten cell x replica into one scenario list; run_experiments shards it
  // deterministically, which is what makes the folded statistics
  // thread-count invariant.
  std::vector<Experiment> flat;
  flat.reserve(cells.size() * r_count);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    flat.push_back(cells[i]);
    for (int r = 1; r < spec.count; ++r)
      flat.push_back(cells[i].with_seed(replica_seed(spec.base_seed, i, r)));
  }
  std::vector<ExperimentResult> flat_results = run_experiments(flat, runner);
  ARROWDQ_ASSERT_MSG(flat_results.size() == cells.size() * r_count,
                     "replica sweep returned a short result list");

  std::vector<ReplicatedExperimentResult> out;
  out.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ReplicatedExperimentResult cell;
    cell.replica_labels.reserve(r_count);
    std::vector<RunResult> runs;
    runs.reserve(r_count);
    for (std::size_t r = 0; r < r_count; ++r) {
      ExperimentResult& er = flat_results[i * r_count + r];
      cell.replica_labels.push_back(std::move(er.label));
      cell.seconds += er.seconds;
      runs.push_back(std::move(er.result));
    }
    cell.label = cell.replica_labels.front();
    cell.result = fold_replicas(std::move(runs), spec.confidence);
    out.push_back(std::move(cell));
  }
  return out;
}

std::vector<ReplicatedExperimentResult> run_replicated(const std::vector<Experiment>& cells,
                                                       const ReplicationSpec& spec) {
  return run_replicated(cells, spec, SweepRunner(1));
}

}  // namespace arrowdq
