// The unified experiment API: one declarative, value-type description for
// every queuing protocol, topology, workload and latency regime in the
// repository.
//
// The paper's central claim is *comparative* — arrow's distributed queuing
// cost versus a centralized home node and pointer-forwarding schemes across
// topologies and latency regimes. Before this layer each protocol was its
// own free function with its own config and result structs; an `Experiment`
// makes the comparison a data point in an axis product instead of a
// hand-written driver:
//
//   Experiment e;
//   e.protocol = ProtocolSpec::arrow_closed_loop(kTicksPerUnit / 16);
//   e.topology = TopologySpec::complete(256);
//   e.latency  = LatencySpec::uniform_async(/*seed=*/7, 0.1);
//   e.rounds   = 1000;
//   RunResult r = run_experiment(e);
//
// Resolution goes through a *compile-time registry* of statically
// dispatched drivers (exp/registry.hpp): one function pointer per Protocol
// value, each instantiating the PR-3 devirtualized hot path (value-type
// latency samplers, typed network handlers, value-type distance oracles) —
// the registry lookup is one indexed call per run, and no std::function or
// virtual dispatch appears on the per-message path. Every driver is
// tick-identical to the legacy free function it wraps
// (tests/experiment_test.cpp pins all of them; the legacy entry points
// survive as thin wrappers).
//
// Experiments are value objects: a worker thread can run one with no shared
// mutable state, which is what lets run_experiments() shard a scenario list
// across SweepRunner's pool with results bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/competitive.hpp"
#include "baseline/pointer_forwarding.hpp"
#include "graph/graph.hpp"
#include "graph/tree.hpp"
#include "proto/queuing.hpp"
#include "proto/request.hpp"
#include "sim/fault.hpp"
#include "sim/sweep.hpp"
#include "support/types.hpp"

namespace arrowdq {

// ---------------------------------------------------------------------------
// Protocol axis
// ---------------------------------------------------------------------------

enum class Protocol : std::uint8_t {
  kArrowOneShot = 0,      // ArrowEngine on a fixed request set
  kArrowClosedLoop = 1,   // Section 5 closed loop (Figure 10/11 driver)
  kCentralized = 2,       // home-node baseline; closed loop iff rounds > 0
  kPointerForwarding = 3, // Ivy/NTA family on the complete graph
  kTokenPassing = 4,      // arrow + message-driven token circulation
};
inline constexpr int kProtocolCount = 5;

const char* protocol_name(Protocol p);

struct ProtocolSpec {
  Protocol kind = Protocol::kArrowOneShot;
  /// Serial per-node message processing cost in ticks (all protocols).
  Time service_time = 0;
  /// kCentralized: the globally known home node.
  NodeId center = 0;
  /// kPointerForwarding: pointer-update rule (compression vs reversal).
  ForwardingMode mode = ForwardingMode::kCompressToRequester;
  /// kTokenPassing: how long each request holds the token (ticks).
  Time hold_ticks = 0;

  const char* name() const { return protocol_name(kind); }

  static ProtocolSpec arrow_one_shot(Time service_time = 0) {
    ProtocolSpec s;
    s.kind = Protocol::kArrowOneShot;
    s.service_time = service_time;
    return s;
  }
  static ProtocolSpec arrow_closed_loop(Time service_time = 0) {
    ProtocolSpec s;
    s.kind = Protocol::kArrowClosedLoop;
    s.service_time = service_time;
    return s;
  }
  static ProtocolSpec centralized(NodeId center = 0, Time service_time = 0) {
    ProtocolSpec s;
    s.kind = Protocol::kCentralized;
    s.center = center;
    s.service_time = service_time;
    return s;
  }
  static ProtocolSpec pointer_forwarding(
      ForwardingMode mode = ForwardingMode::kCompressToRequester, Time service_time = 0) {
    ProtocolSpec s;
    s.kind = Protocol::kPointerForwarding;
    s.mode = mode;
    s.service_time = service_time;
    return s;
  }
  static ProtocolSpec token_passing(Time hold_ticks = 0) {
    ProtocolSpec s;
    s.kind = Protocol::kTokenPassing;
    s.hold_ticks = hold_ticks;
    return s;
  }
};

// ---------------------------------------------------------------------------
// Topology axis
// ---------------------------------------------------------------------------

struct TopologySpec {
  enum class Family : std::uint8_t {
    kComplete,      // Section 5's SP2 model: K_n, unit pairwise latency
    kPath,          // worst-stretch line
    kRing,          // cycle on n nodes
    kGrid,          // rows x cols mesh
    kTorus,         // rows x cols grid with wraparound (vertex-transitive)
    kHypercube,     // 2^dims nodes, edges join labels differing in one bit
    kGeometric,     // seeded unit-disk graph, weights ~ Euclidean distance
    kRandomTree,    // uniform random labelled tree (Pruefer)
    kWeightedTree,  // random tree, edge weights uniform in [1, max_weight]
    kCustom,        // caller-supplied graph + tree
  };
  /// Spanning-tree construction for the arrow/token protocols.
  enum class TreeKind : std::uint8_t {
    kShortestPath,    // BFS/Dijkstra tree from `root`
    kBalancedBinary,  // Section 5's balanced binary overlay (complete graphs)
    kMst,             // Kruskal minimum spanning tree
    kMedianSpt,       // Peleg-Reshef-style median SPT (ignores `root`)
  };

  Family family = Family::kComplete;
  NodeId nodes = 64;
  NodeId rows = 0, cols = 0;   // kGrid / kTorus (nodes = rows * cols)
  int dims = 0;                // kHypercube (nodes = 2^dims)
  std::uint64_t seed = 0;      // randomized families
  Weight max_weight = 9;       // kWeightedTree
  double radius = 0.35;        // kGeometric connection radius in [0, sqrt(2)]
  Weight weight_scale = 16;    // kGeometric: weight = ceil(euclidean * scale)
  TreeKind tree_kind = TreeKind::kShortestPath;
  NodeId root = 0;
  std::optional<Graph> custom_graph;  // kCustom
  std::optional<Tree> custom_tree;    // kCustom

  /// Materialize the communication graph G (a private copy per call, so
  /// concurrent scenario workers never share Graph's lazy edge index).
  Graph build_graph() const;
  /// Materialize the pre-selected spanning tree T over `g`.
  Tree build_tree(const Graph& g) const;
  const char* family_name() const;

  /// Structural validation: a diagnostic when the spec is inconsistent or
  /// overflow-prone (grid/torus dims that don't multiply to `nodes`,
  /// hypercube dims outside the id budget, sizes past the 2^28-node cap),
  /// nullopt when well-formed. CLI front ends print it and exit 2;
  /// run_experiment asserts on it. Does not consider materialization cost —
  /// that depends on the protocol and lives in validate_experiment().
  std::optional<std::string> validate() const;

  static TopologySpec complete(NodeId n) {
    TopologySpec t;
    t.family = Family::kComplete;
    t.nodes = n;
    t.tree_kind = TreeKind::kBalancedBinary;
    return t;
  }
  static TopologySpec path(NodeId n) {
    TopologySpec t;
    t.family = Family::kPath;
    t.nodes = n;
    return t;
  }
  static TopologySpec ring(NodeId n) {
    TopologySpec t;
    t.family = Family::kRing;
    t.nodes = n;
    return t;
  }
  static TopologySpec grid(NodeId rows, NodeId cols) {
    TopologySpec t;
    t.family = Family::kGrid;
    t.rows = rows;
    t.cols = cols;
    t.nodes = rows * cols;
    return t;
  }
  static TopologySpec torus(NodeId rows, NodeId cols) {
    TopologySpec t;
    t.family = Family::kTorus;
    t.rows = rows;
    t.cols = cols;
    t.nodes = rows * cols;
    return t;
  }
  static TopologySpec hypercube(int dims) {
    TopologySpec t;
    t.family = Family::kHypercube;
    t.dims = dims;
    t.nodes = static_cast<NodeId>(NodeId{1} << dims);
    return t;
  }
  static TopologySpec geometric(NodeId n, std::uint64_t seed, double radius = 0.35,
                                Weight weight_scale = 16) {
    TopologySpec t;
    t.family = Family::kGeometric;
    t.nodes = n;
    t.seed = seed;
    t.radius = radius;
    t.weight_scale = weight_scale;
    return t;
  }
  static TopologySpec random_tree(NodeId n, std::uint64_t seed) {
    TopologySpec t;
    t.family = Family::kRandomTree;
    t.nodes = n;
    t.seed = seed;
    return t;
  }
  static TopologySpec weighted_tree(NodeId n, std::uint64_t seed, Weight max_weight = 9) {
    TopologySpec t;
    t.family = Family::kWeightedTree;
    t.nodes = n;
    t.seed = seed;
    t.max_weight = max_weight;
    return t;
  }
  static TopologySpec custom(Graph g, Tree t) {
    TopologySpec spec;
    spec.family = Family::kCustom;
    spec.nodes = g.node_count();
    spec.root = t.root();
    spec.custom_graph = std::move(g);
    spec.custom_tree = std::move(t);
    return spec;
  }
};

// ---------------------------------------------------------------------------
// Workload axis (one-shot protocols; closed loops generate their own load)
// ---------------------------------------------------------------------------

struct WorkloadSpec {
  enum class Kind : std::uint8_t {
    kOneShotAll,  // every node requests at t = 0
    kPoisson,     // `count` Poisson arrivals from uniform nodes
    kBursty,      // bursts of simultaneous requests
    kSequential,  // widely spaced requests (Demmer-Herlihy regime)
    kCustom,      // caller-supplied request set
  };
  Kind kind = Kind::kOneShotAll;
  int count = 0;              // kPoisson / kSequential
  double rate_per_unit = 1.0; // kPoisson
  int bursts = 0;             // kBursty
  int burst_size = 0;         // kBursty
  Weight gap_units = 0;       // kBursty / kSequential
  std::uint64_t seed = 0;     // randomized kinds
  /// kPoisson request skew: a `hot_probability` fraction of arrivals come
  /// from `hot_node` (clamped into [0, n)), the rest uniform. 0 = the
  /// classic uniform stream. Sweepable via `poisson:COUNT:RATE:hot=P[@NODE]`.
  double hot_probability = 0.0;
  NodeId hot_node = 0;
  std::optional<RequestSet> custom;

  /// Materialize the request schedule for an n-node topology rooted at
  /// `root`. kCustom returns the stored set (its root must match).
  RequestSet build(NodeId n, NodeId root) const;
  const char* name() const;

  static WorkloadSpec one_shot_all() { return {}; }
  static WorkloadSpec poisson(int count, double rate_per_unit, std::uint64_t seed) {
    WorkloadSpec w;
    w.kind = Kind::kPoisson;
    w.count = count;
    w.rate_per_unit = rate_per_unit;
    w.seed = seed;
    return w;
  }
  static WorkloadSpec poisson_skewed(int count, double rate_per_unit, NodeId hot_node,
                                     double hot_probability, std::uint64_t seed) {
    WorkloadSpec w = poisson(count, rate_per_unit, seed);
    w.hot_node = hot_node;
    w.hot_probability = hot_probability;
    return w;
  }
  static WorkloadSpec bursty_load(int bursts, int burst_size, Weight gap_units,
                                  std::uint64_t seed) {
    WorkloadSpec w;
    w.kind = Kind::kBursty;
    w.bursts = bursts;
    w.burst_size = burst_size;
    w.gap_units = gap_units;
    w.seed = seed;
    return w;
  }
  static WorkloadSpec sequential(int count, Weight gap_units, std::uint64_t seed) {
    WorkloadSpec w;
    w.kind = Kind::kSequential;
    w.count = count;
    w.gap_units = gap_units;
    w.seed = seed;
    return w;
  }
  static WorkloadSpec fixed(RequestSet requests) {
    WorkloadSpec w;
    w.kind = Kind::kCustom;
    w.custom = std::move(requests);
    return w;
  }
};

// ---------------------------------------------------------------------------
// The experiment and its uniform result
// ---------------------------------------------------------------------------

/// Uniform metrics every protocol driver fills in. Per-protocol semantics:
///  * makespan        — one-shot: latest completion time; closed loop: time
///                      the last node finished its rounds; token passing:
///                      last token release.
///  * messages        — every protocol message sent (tree/edge + direct).
///  * total_hops      — message hops attributable to requests (arrow/find
///                      traversals; token hops for kTokenPassing).
///  * total_distance  — weighted traversal distance in units (one-shot
///                      outcomes; token travel for kTokenPassing).
///  * total_latency   — Definition 3.3 cost in ticks: sum over requests of
///                      (completion - issue). One-shot protocols only; the
///                      competitive-ratio numerator.
///  * avg_round_latency_units — closed loops: mean issue->reply time.
struct RunResult {
  Protocol protocol = Protocol::kArrowOneShot;
  Time makespan = 0;
  std::int64_t total_requests = 0;
  std::uint64_t messages = 0;
  std::int64_t total_hops = 0;
  Weight total_distance = 0;
  Time total_latency = 0;
  double avg_hops_per_request = 0.0;
  double avg_round_latency_units = 0.0;
  // Degradation/recovery metrics (all zero fault-free):
  //  * messages_dropped / messages_duplicated — fault filter counters.
  //  * crashes — crash windows in the run's schedule (arrow one-shot counts
  //    only the windows that fired before quiescence).
  //  * stabilize_rounds / stabilize_corrections — SelfStabilizer recovery
  //    work (arrow protocols only; baselines keep their state in stable
  //    storage and never corrupt).
  //  * recovery_delta_units — makespan minus the fault-free twin's makespan
  //    in latency units; run_experiment fills it only when a fault schedule
  //    is active. Usually positive, but message faults can also reshuffle a
  //    schedule into a faster interleaving.
  //  * partitions — partition windows that opened before completion;
  //    partition_backlog_drained — cross-cut messages the filter queued at
  //    a cut and drained FIFO at a heal instant; partition_delta_units —
  //    makespan minus the fault-free twin's makespan, filled only when a
  //    partition or churn schedule is active (the topology-fault flavour of
  //    recovery_delta_units); reselections — churn tree-edge splices.
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::int32_t crashes = 0;
  int stabilize_rounds = 0;
  int stabilize_corrections = 0;
  double recovery_delta_units = 0.0;
  std::int32_t partitions = 0;
  std::uint64_t partition_backlog_drained = 0;
  double partition_delta_units = 0.0;
  std::int32_t reselections = 0;
  /// Process-wide peak resident set size (bytes) sampled when the driver
  /// returned, via getrusage. Monotone over the process lifetime, so within
  /// one process only the first / largest run's value is a faithful ceiling
  /// for that run (the fig10_scale bench orders its cells accordingly).
  /// Because the reading is process-wide it is taken exactly once per run
  /// — after the driver returns — never per shard: a sharded run
  /// (shards > 1) reports one number covering all lanes' arenas combined,
  /// which is the quantity a memory budget cares about anyway.
  /// 0 on platforms without getrusage.
  std::uint64_t peak_rss_bytes = 0;
  /// The full queuing outcome (one-shot protocols, keep_outcome only):
  /// feeds analyze_competitive and the application layers.
  std::optional<QueuingOutcome> outcome;
  /// Theorem 3.19 instrumentation of the outcome against the offline optimum
  /// on (G, T). Engaged iff Experiment::analyze (which requires keep_outcome)
  /// and the protocol produced a QueuingOutcome.
  std::optional<CompetitiveReport> competitive;
};

struct Experiment {
  std::string label;  // empty -> default_label()
  ProtocolSpec protocol;
  TopologySpec topology;
  WorkloadSpec workload;  // one-shot protocols; ignored by closed loops
  LatencySpec latency;    // arrow/token protocols; baselines use dG oracles
  /// Fault schedule — a first-class scenario axis (default: none, which
  /// compiles the fault branch out of the send path). Arrow protocols model
  /// full crash recovery (pointer corruption + SelfStabilizer wave),
  /// partition windows (per-side reconciliation, FIFO backlog drain and a
  /// merge wave at heal), and churn (deterministic tree re-selection);
  /// baselines degrade gracefully (delay + deferral only; a partition
  /// isolates the cut node for the window); kTokenPassing strips all
  /// topology faults (its token replays an analytic order that cannot
  /// express a forked queue) but keeps message faults.
  FaultSpec fault;
  /// Closed-loop rounds per node. Drives kArrowClosedLoop (must be > 0) and
  /// switches kCentralized and kPointerForwarding between their closed-loop
  /// (> 0) and one-shot (== 0, workload-driven) modes.
  std::int64_t rounds = 0;
  /// Retain the QueuingOutcome in RunResult::outcome (one-shot protocols).
  bool keep_outcome = false;
  /// Run analyze_competitive on the retained outcome into
  /// RunResult::competitive. Requires keep_outcome; a no-op for closed loops
  /// (they produce no QueuingOutcome).
  bool analyze = false;
  /// Intra-run shard count for the conservative parallel engine
  /// (sim/parallel/). Results are bit-identical to the serial core for any
  /// value, so this is purely a speed knob. 0 = inherit ARROWDQ_SIM_SHARDS
  /// (default 1; scenarios the parallel engine cannot run fall back to
  /// serial silently). Sharded mirrors exist for the arrow closed loop,
  /// one-shot arrow, one-shot centralized, and pointer forwarding in both
  /// modes. Setting > 1 explicitly on the rest is validated: token passing
  /// (the token replay is inherently serial), the centralized closed loop
  /// (no mirror), and topology-fault schedules — crash, partition, churn
  /// (their recovery waves are global pointer rewrites) — are
  /// validate_experiment errors rather than silent fallbacks.
  int shards = 0;

  /// "protocol topology-n latency" summary used when `label` is empty.
  std::string default_label() const;

  /// Copy with per-component sub-seeds derived from `seed` (decorrelated via
  /// mix64), so a scenario grid gets independent randomness per cell from
  /// one master seed.
  Experiment with_seed(std::uint64_t seed) const;
};

/// Pre-flight check for run_experiment: TopologySpec::validate() plus
/// materialization guards. Refuses combinations that would materialize an
/// absurd structure — e.g. `complete` at n = 10^6 (~10^12 edges) on a path
/// that needs the adjacency, or an O(n^2) APSP table past ~8k nodes —
/// with a diagnostic instead of OOM-ing. Structured families on their
/// implicit paths (closed-form oracles / implicit arrow loop) pass at any
/// n up to the 2^28 id cap. CLI front ends print the diagnostic and exit
/// 2; run_experiment asserts on it.
std::optional<std::string> validate_experiment(const Experiment& e);

/// Run one experiment through the protocol registry. Asserts on malformed
/// combinations (closed-loop rounds for pointer forwarding, rounds == 0 for
/// kArrowClosedLoop, anything validate_experiment rejects). When a fault
/// schedule is active, additionally runs the fault-free twin to fill
/// RunResult::recovery_delta_units.
RunResult run_experiment(const Experiment& e);

/// One sweep slot, in scenario order (mirrors SweepResult).
struct ExperimentResult {
  std::string label;
  RunResult result;
  double seconds = 0;  // wall time of this scenario on its worker
};

/// Sweep a scenario list across `runner`'s pool. Protocol is just another
/// axis: the list may mix all five protocols freely. Results are in
/// scenario order and bit-identical for any thread count.
std::vector<ExperimentResult> run_experiments(const std::vector<Experiment>& exps,
                                              const SweepRunner& runner);
/// Serial convenience overload (thread count 1).
std::vector<ExperimentResult> run_experiments(const std::vector<Experiment>& exps);

/// Convenience for the application layers (mutex, counter, directory,
/// multicast): run arrow one-shot on a concrete (tree, requests) pair under
/// the synchronous model through the experiment registry and return the
/// validated outcome. Tick-identical to the legacy run_arrow(tree, requests).
QueuingOutcome arrow_outcome(const Tree& tree, const RequestSet& requests);

}  // namespace arrowdq
