// First-class replication for the Experiment API.
//
// The paper's competitive bounds are statements over *distributions* of
// requests and topologies; a single-seed point estimate per scenario cell
// says nothing about dispersion. This layer runs each scenario cell R times
// with decorrelated per-replica seeds and folds the R RunResults into a
// ReplicatedResult carrying mean / stddev / min / max and a
// normal-approximation confidence interval per metric, so sweep output can
// be reported the way the experiments literature expects: replicated runs
// with error bars, not single samples. Intervals use Student-t quantiles at
// n-1 degrees of freedom — at the replica counts sweeps actually run (R of
// 2..10) the normal approximation understates the interval badly (z = 1.96
// vs t = 12.71 at R = 2).
//
// Determinism contract (same as run_experiments): the flattened
// cell x replica list shards across SweepRunner's pool exactly like a
// scenario list, so every statistic is bit-identical for any thread count
// and identical to a serial fold. Replica 0 is the cell exactly as given —
// a ReplicationSpec with count == 1 reproduces an unreplicated sweep — and
// replica r >= 1 reseeds the cell through Experiment::with_seed with a
// mix64-derived (base_seed, cell, replica) stream, the same decorrelation
// scheme the sweep grid already uses per cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace arrowdq {

struct ReplicationSpec {
  /// Replicas per scenario cell (>= 1). 1 degenerates to a point estimate
  /// (stddev 0, zero-width interval).
  int count = 1;
  /// Master seed for the replica seed derivation (replica 0 keeps the cell's
  /// own seeds, so this only affects replicas >= 1).
  std::uint64_t base_seed = 1;
  /// Two-sided confidence level for the normal-approximation interval.
  double confidence = 0.95;
};

/// Dispersion summary of one metric across the replicas of a cell.
struct MetricStats {
  double mean = 0.0;
  double stddev = 0.0;  // unbiased (n-1); 0 for fewer than 2 samples
  double min = 0.0;
  double max = 0.0;
  /// Student-t CI: mean -+ t(confidence, n-1) * stddev / sqrt(n).
  double ci_lo = 0.0;
  double ci_hi = 0.0;
};

/// Standard-normal quantile (inverse CDF) via Acklam's rational
/// approximation (relative error < 1.2e-9 on (0, 1)). Deterministic across
/// platforms: no <random>, no libm special functions beyond sqrt/log.
double normal_quantile(double p);

/// Student-t quantile at `dof` degrees of freedom. dof 1 and 2 are closed
/// forms; larger dof inverts the regularized incomplete beta CDF (Lentz
/// continued fraction + bisection, no lgamma), accurate to ~1e-12 — e.g.
/// t(0.975, 7) = 2.364624251592785. Converges to normal_quantile as dof
/// grows (within 2% by dof ~ 500).
double student_t_quantile(double p, int dof);

/// Fold a sample vector into MetricStats at the given confidence level.
/// Exact two-pass mean/variance (not a streaming accumulator), so known
/// inputs produce closed-form-checkable outputs.
MetricStats fold_metric(const std::vector<double>& samples, double confidence);

/// The replicated analogue of RunResult: per-metric statistics over R runs.
/// Integer-valued metrics (requests, messages, hops) are folded as doubles;
/// time-valued metrics are folded in units (ticks_to_units_d) so the stats
/// match sweep_main's JSON scale.
struct ReplicatedResult {
  Protocol protocol = Protocol::kArrowOneShot;
  int replicas = 0;
  double confidence = 0.95;
  MetricStats makespan_units;
  MetricStats total_requests;
  MetricStats messages;
  MetricStats total_hops;
  MetricStats avg_hops_per_request;
  MetricStats avg_round_latency_units;
  MetricStats total_latency_units;
  /// The per-replica point samples, replica order (runs[0] is the cell as
  /// given, i.e. the value an unreplicated sweep would have reported).
  std::vector<RunResult> runs;
};

/// Fold R per-replica RunResults (all from the same cell) into statistics.
ReplicatedResult fold_replicas(std::vector<RunResult> runs, double confidence);

/// Seed for replica `replica` of cell `cell`: mix64-decorrelated from the
/// master seed; distinct (cell, replica) pairs map to distinct streams.
std::uint64_t replica_seed(std::uint64_t base_seed, std::size_t cell, int replica);

/// One folded sweep slot, in cell order.
struct ReplicatedExperimentResult {
  std::string label;
  ReplicatedResult result;
  double seconds = 0;  // summed wall time of the cell's replicas
  /// Per-replica labels in replica order (replica_labels[0] == label). The
  /// reseeded replicas can label differently from the cell (seed-dependent
  /// topology/fault tokens), so they are kept rather than dropped.
  std::vector<std::string> replica_labels;
};

/// Run every cell `spec.count` times across `runner`'s pool (replicas shard
/// like scenarios) and fold. Results are in cell order and bit-identical for
/// any thread count.
std::vector<ReplicatedExperimentResult> run_replicated(const std::vector<Experiment>& cells,
                                                       const ReplicationSpec& spec,
                                                       const SweepRunner& runner);
/// Serial convenience overload (thread count 1).
std::vector<ReplicatedExperimentResult> run_replicated(const std::vector<Experiment>& cells,
                                                       const ReplicationSpec& spec);

}  // namespace arrowdq
