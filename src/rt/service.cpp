#include "rt/service.hpp"

#include <utility>

#include "exp/registry.hpp"
#include "support/assert.hpp"

namespace arrowdq::rt {

Tree rt_tree_for(const Experiment& e) {
  exp_detail::Resolved r = exp_detail::resolve(e);
  if (r.implicit && r.tree.node_count() <= 1 && r.n > 1) return r.implicit->materialize_tree();
  return std::move(r.tree);
}

RtCrossValidation run_rt_cross_validated(const Experiment& e, const RtConfig& cfg) {
  ARROWDQ_ASSERT_MSG(e.protocol.kind == Protocol::kArrowClosedLoop && e.rounds > 0,
                     "the runtime serves the arrow closed loop");
  ARROWDQ_ASSERT_MSG(!e.fault.active(), "the runtime has no fault-injection layer");
  RtCrossValidation out;

  RtConfig rc = cfg;
  rc.rounds_per_node = e.rounds;
  const Tree tree = rt_tree_for(e);
  out.rt = run_runtime(tree, rc);
  if (rc.record_history) {
    CheckSpec spec;
    spec.nodes = tree.node_count();
    spec.rounds = e.rounds;
    spec.app = rc.app;
    out.check = check_history(out.rt.history, spec);
    out.rt.history.events.clear();
    out.rt.history.events.shrink_to_fit();
  }

  // The sim side stays serial and deterministic regardless of e.shards (the
  // sharded engine is bit-identical anyway; no reason to spin lanes here).
  Experiment sim = e;
  sim.shards = 1;
  out.sim = run_experiment(sim);

  out.sim_hops_per_op = out.sim.avg_hops_per_request;
  out.rt_hops_per_op = out.rt.hops_per_op();
  out.sim_hops_zero = !(out.sim_hops_per_op > 0.0);
  out.hops_ratio = out.sim_hops_zero ? 0.0 : out.rt_hops_per_op / out.sim_hops_per_op;
  return out;
}

}  // namespace arrowdq::rt
