// Event histories for the shared-memory runtime, and the checker that stands
// in for goldens: runtime runs are not bit-reproducible (real-thread
// interleavings), so correctness is judged per run from a recorded history,
// in the style of the Elle/Maelstrom harnesses — record little, check hard.
//
// Recording: each worker thread appends to its own log (no sharing); every
// event is stamped from one process-wide seq_cst counter, so stamps are a
// real-time-consistent total order witness — if event A finished before
// event B started on any threads, stamp(A) < stamp(B). Logs are merged and
// sorted by stamp after the run.
//
// The checker (check_history) verifies, for a closed-loop run of
// `nodes x rounds` requests:
//   1. shape        — every request has exactly one invoke, enqueue, acquire
//                     and release event, on the right node;
//   2. total order  — the recorded predecessor relation (enqueue events) is
//                     a single chain from the root's implicit request r0
//                     covering every request exactly once;
//   3. program order— each node's requests appear on the chain in issue
//                     order, and per request the stamps run
//                     invoke < enqueue < acquire < release;
//   4. mutex        — critical sections never overlap and each release
//                     enables exactly its chain successor: along the chain,
//                     release(r_i) < acquire(r_{i+1}) in stamp order;
//   5. counter      — (counter app) the value read in request r_i's critical
//                     section is exactly i, its 1-based chain position.
//
// The checker is sound against the runtime's recording discipline: stamps
// are taken inside the owning worker at the semantic point (acquire before
// entering the section, release before forwarding the token), so a checker
// pass means the run really was a linearizable single-token execution.
// tests/rt_test.cpp additionally proves the checker *rejects* corrupted
// histories (overlap, dropped release, reordered acquires, forked chains).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace arrowdq::rt {

/// Runtime request id: 0 is the root's implicit pre-granted request r0;
/// request `round` (0-based) of node v is v * rounds + round + 1. 64-bit so
/// node x round never overflows at any size the runtime can hold in memory.
using RtReq = std::int64_t;
inline constexpr RtReq kRtRootReq = 0;
inline constexpr RtReq kRtNoReq = -1;

enum class EventKind : std::uint8_t {
  kInvoke,   // node decided to request (issue side)
  kEnqueue,  // request appended behind `aux` (= predecessor id) at the sink
  kAcquire,  // token received; `aux` = counter value read (counter app)
  kRelease,  // critical section left
};

struct Event {
  std::uint64_t stamp = 0;  // global epoch-counter draw, unique per event
  RtReq req = kRtNoReq;
  std::int64_t aux = 0;  // kEnqueue: predecessor request; kAcquire: counter value
  NodeId node = kNoNode;
  EventKind kind = EventKind::kInvoke;
};

/// A merged run history, sorted by stamp.
struct History {
  std::vector<Event> events;
};

/// Per-thread append-only recording against one shared epoch counter. The
/// runtime owns one recorder per worker; merge() concatenates and sorts.
class HistoryRecorder {
 public:
  explicit HistoryRecorder(std::atomic<std::uint64_t>* epoch) : epoch_(epoch) {}

  void record(EventKind kind, RtReq req, NodeId node, std::int64_t aux = 0) {
    // seq_cst: the fetch_add totally orders stamps consistently with real
    // time across threads — the property the checker's stamp comparisons
    // (overlap, enables-successor) rely on.
    const std::uint64_t stamp = epoch_->fetch_add(1, std::memory_order_seq_cst);
    events_.push_back(Event{stamp, req, aux, node, kind});
  }

  void reserve(std::size_t n) { events_.reserve(n); }
  std::vector<Event>& events() { return events_; }
  const std::vector<Event>& events() const { return events_; }

 private:
  std::atomic<std::uint64_t>* epoch_;
  std::vector<Event> events_;  // owning worker only
};

/// Merge per-worker logs into one stamp-sorted history.
History merge_histories(std::vector<HistoryRecorder>& recorders);

enum class RtApp : std::uint8_t {
  kMutex,      // bare acquire/release
  kCounter,    // token carries a counter; each section increments and reads it
  kDirectory,  // token is the mobile object; travel distance is accounted
};

struct CheckSpec {
  std::int64_t nodes = 0;
  std::int64_t rounds = 0;  // requests per node; total = nodes * rounds
  RtApp app = RtApp::kMutex;
};

struct CheckResult {
  bool ok = true;
  std::string error;  // first violation found, empty when ok
  std::int64_t requests = 0;

  explicit operator bool() const { return ok; }
};

/// Verify a merged history against the spec (see file comment for the five
/// checks). Returns the first violation found.
CheckResult check_history(const History& h, const CheckSpec& spec);

}  // namespace arrowdq::rt
