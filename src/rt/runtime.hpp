// rt::Runtime — the arrow distributed-queuing protocol on real threads.
//
// A third execution tier next to the serial and sharded simulators: the same
// per-node protocol state machine (graph/tree.hpp tree, arrow/arrow.hpp
// rules), but driven by T worker threads passing messages through per-node
// mailboxes instead of a discrete-event queue. The sim *predicts* queuing
// cost under a latency model; the runtime *measures* it under real
// contention — and a recorded history (rt/history.hpp) checked after the run
// replaces goldens, because thread interleavings are not reproducible.
//
// Threading model:
//  * Node ownership is static: ShardPartition::contiguous (the sharded sim's
//    partitioner) assigns each worker a contiguous node range; a node's
//    state (link pointer, issued-request slots) is mutated only by its
//    owning worker, so pointer flips never race and need no atomics.
//  * Cross-node messages go through per-node bounded MPSC mailboxes
//    (rt/mailbox.hpp; per-producer FIFO, required by the protocol).
//  * Scheduling: a per-node `scheduled` flag dedupes wakeups into a
//    per-worker MPSC runqueue of node ids — a sender that transitions the
//    flag false->true pushes the node onto its owner's runqueue; the owner
//    clears the flag *before* draining the mailbox and re-arms afterwards if
//    mail arrived during the drain, so wakeups are never lost. The flag
//    bounds the runqueue at one entry per owned node.
//  * Lifecycle barriers: workers spin up, rendezvous on a start latch, issue
//    round 1 for every owned node, then drain mailboxes until a global
//    remaining-releases counter hits zero. When it does, no message is in
//    flight (a message in flight implies an unreleased request), so workers
//    simply exit and join — quiescence and drain coincide.
//
// The protocol per node (exactly arrow's rules, arrow/arrow.hpp):
//  * issue a at v:  old = link(v); id(v) <- a; link(v) <- v;
//                   old == v ? a queues locally behind the previous id(v)
//                            : send queue(a) to old.
//  * queue(a) from w at u:  next = link(u); link(u) <- w;
//                   next != u ? forward queue(a) to next
//                             : a queues behind id(u) at u.
//  * Token (the app payload: mutex grant / counter / directory object)
//    travels directly holder -> successor's node once the holder has both
//    released and learned its successor. A node that has released with no
//    successor known yet parks the token; issuing its own next request
//    always resolves the parked successor (either the queue message
//    terminated here earlier, or the new request queues locally behind it).
//
// Closed-loop workload: every node performs `rounds_per_node` acquire ->
// critical section -> release cycles, issuing its next request immediately
// after releasing the previous one (token serialization is the mutex
// semantics; the sim's Figure 10 loop instead re-issues on queuing
// completion — see README "Runtime tier" for how to compare the two).
#pragma once

#include <cstdint>

#include "graph/tree.hpp"
#include "rt/history.hpp"
#include "support/types.hpp"

namespace arrowdq::rt {

struct RtConfig {
  int threads = 1;
  std::int64_t rounds_per_node = 1;
  RtApp app = RtApp::kMutex;
  /// Per-node mailbox ring capacity (overflow handles bursts past it).
  int mailbox_capacity = 64;
  /// Record invoke/enqueue/acquire/release events for check_history. Adds a
  /// seq_cst counter increment per event — turn off for pure throughput runs.
  bool record_history = true;
  /// Simulated critical-section work: relaxed-atomic spin iterations inside
  /// each section (0 = empty section).
  int cs_spin = 0;
};

struct RtResult {
  std::int64_t ops = 0;                 // completed acquire/release pairs
  std::uint64_t queue_messages = 0;     // queue() hops over tree edges
  std::uint64_t token_messages = 0;     // direct token transfers (incl. self)
  std::int64_t token_travel_units = 0;  // directory app: weighted tree distance
  double wall_seconds = 0.0;
  double ops_per_sec = 0.0;
  int threads = 0;
  History history;  // empty unless cfg.record_history

  /// Mean queue hops per request — the number cross-validated against the
  /// sim's avg_hops_per_request.
  double hops_per_op() const {
    return ops == 0 ? 0.0 : static_cast<double>(queue_messages) / static_cast<double>(ops);
  }
};

/// Run the closed-loop arrow runtime on `tree` and return measured counters
/// (plus the merged history when recording). Asserts on internal protocol
/// violations; use check_history(result.history, ...) as the external oracle.
RtResult run_runtime(const Tree& tree, const RtConfig& cfg);

}  // namespace arrowdq::rt
