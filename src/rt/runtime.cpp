#include "rt/runtime.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "rt/node.hpp"
#include "sim/parallel/partition.hpp"
#include "support/assert.hpp"

namespace arrowdq::rt {
namespace {

double now_sec() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class Runtime {
 public:
  Runtime(const Tree& tree, const RtConfig& cfg)
      : tree_(tree),
        cfg_(cfg),
        n_(tree.node_count()),
        rounds_(cfg.rounds_per_node),
        part_(ShardPartition::contiguous(n_, cfg.threads < 1 ? 1 : cfg.threads)),
        remaining_(static_cast<std::int64_t>(n_) * rounds_) {
    ARROWDQ_ASSERT_MSG(n_ >= 1, "runtime needs at least one node");
    ARROWDQ_ASSERT_MSG(rounds_ >= 0, "rounds_per_node must be >= 0");
    const auto cap = static_cast<std::size_t>(cfg.mailbox_capacity < 2 ? 2 : cfg.mailbox_capacity);
    for (NodeId v = 0; v < n_; ++v) {
      ArrowNode& nd = nodes_.emplace_back(cap);
      nd.link = v == tree.root() ? v : tree.parent(v);
    }
    // The root starts as the sink holding the (released) implicit request r0.
    ArrowNode& root = nodes_[static_cast<std::size_t>(tree.root())];
    root.last_issued = kRtRootReq;
    root.token_parked = true;
    for (int w = 0; w < part_.shard_count(); ++w) {
      const auto owned = static_cast<std::size_t>(part_.end(w) - part_.begin(w));
      workers_.emplace_back(owned, &epoch_, part_.begin(w), part_.end(w));
      if (cfg_.record_history)
        workers_.back().recorder.reserve(4 * owned * static_cast<std::size_t>(rounds_));
    }
  }

  RtResult run() {
    RtResult res;
    res.threads = part_.shard_count();
    if (rounds_ > 0) {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(part_.shard_count()));
      const double t0 = now_sec();
      for (int w = 0; w < part_.shard_count(); ++w)
        threads.emplace_back([this, w] { worker_main(w); });
      for (std::thread& t : threads) t.join();
      res.wall_seconds = now_sec() - t0;
    }
    ARROWDQ_ASSERT_MSG(remaining_.load(std::memory_order_acquire) == 0,
                       "runtime quiesced with unreleased requests");
    for (Worker& w : workers_) {
      res.queue_messages += w.queue_msgs;
      res.token_messages += w.token_msgs;
      res.token_travel_units += w.travel;
    }
    res.ops = static_cast<std::int64_t>(n_) * rounds_;
    res.ops_per_sec =
        res.wall_seconds > 0 ? static_cast<double>(res.ops) / res.wall_seconds : 0.0;
    if (cfg_.record_history) {
      std::vector<HistoryRecorder> recs;
      recs.reserve(workers_.size());
      for (Worker& w : workers_) recs.push_back(std::move(w.recorder));
      res.history = merge_histories(recs);
    }
    return res;
  }

 private:
  struct Worker {
    Worker(std::size_t owned, std::atomic<std::uint64_t>* epoch, NodeId begin, NodeId end)
        : runqueue(owned + 1), recorder(epoch), begin(begin), end(end) {}

    RingMailbox<NodeId> runqueue;  // one slot per owned node (scheduled-flag dedup)
    HistoryRecorder recorder;
    NodeId begin, end;
    std::uint64_t queue_msgs = 0;
    std::uint64_t token_msgs = 0;
    std::int64_t travel = 0;
  };

  NodeId node_of(RtReq q) const { return static_cast<NodeId>((q - 1) / rounds_); }

  void post(NodeId to, const Msg& m) {
    ArrowNode& nd = nodes_[static_cast<std::size_t>(to)];
    nd.mailbox.push(m);
    if (!nd.scheduled.exchange(true, std::memory_order_acq_rel)) {
      const bool ok = workers_[static_cast<std::size_t>(part_.shard_of(to))].runqueue.try_push(to);
      ARROWDQ_ASSERT_MSG(ok, "runqueue overflow despite scheduled-flag dedup");
    }
  }

  void send_token(NodeId from, RtReq to_req, std::int64_t payload, Worker& w) {
    ++w.token_msgs;
    post(node_of(to_req), Msg{to_req, payload, from, MsgKind::kToken});
  }

  /// Issue this node's next request (arrow's issue rule).
  void issue(NodeId v, ArrowNode& nd, Worker& w) {
    const RtReq b = static_cast<RtReq>(v) * rounds_ + nd.rounds_done + 1;
    if (cfg_.record_history) w.recorder.record(EventKind::kInvoke, b, v);
    const NodeId old = nd.link;
    const RtReq prev = nd.last_issued;
    nd.last_issued = b;
    nd.succ_of_last = kRtNoReq;
    nd.link = v;
    if (old != v) {
      // prev's successor (if any) was already resolved — a terminating queue
      // message is the only thing that moves link off v — so the token is
      // never parked on this path.
      ++w.queue_msgs;
      post(old, Msg{b, 0, v, MsgKind::kQueue});
      return;
    }
    // link(v) == v: no queue message terminated here since prev was issued,
    // so b queues locally behind prev — and prev's token must be parked
    // (released, successor unknown until right now). Grant it to b.
    ARROWDQ_ASSERT_MSG(prev != kRtNoReq, "sink without an id at issue");
    ARROWDQ_ASSERT_MSG(nd.token_parked, "local enqueue without a parked token");
    if (cfg_.record_history) w.recorder.record(EventKind::kEnqueue, b, v, prev);
    nd.token_parked = false;
    send_token(v, b, nd.token_payload, w);
  }

  void on_queue(NodeId u, ArrowNode& nd, const Msg& m, Worker& w) {
    const NodeId next = nd.link;
    nd.link = m.from;  // path reversal
    if (next != u) {
      ++w.queue_msgs;
      post(next, Msg{m.req, 0, u, MsgKind::kQueue});
      return;
    }
    ARROWDQ_ASSERT_MSG(nd.last_issued != kRtNoReq, "sink without an id");
    ARROWDQ_ASSERT_MSG(nd.succ_of_last == kRtNoReq, "sink already has a successor");
    if (cfg_.record_history) w.recorder.record(EventKind::kEnqueue, m.req, u, nd.last_issued);
    nd.succ_of_last = m.req;
    if (nd.token_parked) {
      nd.token_parked = false;
      send_token(u, m.req, nd.token_payload, w);
    }
  }

  void on_token(NodeId v, ArrowNode& nd, const Msg& m, Worker& w) {
    ARROWDQ_ASSERT_MSG(m.req == nd.last_issued, "token for a request this node did not issue");
    std::int64_t payload = m.payload;
    std::int64_t aux = 0;
    switch (cfg_.app) {
      case RtApp::kMutex:
        break;
      case RtApp::kCounter:
        aux = ++payload;  // fetch-and-increment under the queue lock
        break;
      case RtApp::kDirectory:
        w.travel += tree_.distance(m.from, v);  // the object moved here
        break;
    }
    if (cfg_.record_history) w.recorder.record(EventKind::kAcquire, m.req, v, aux);
    for (int i = 0; i < cfg_.cs_spin; ++i) cs_sink_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.record_history) w.recorder.record(EventKind::kRelease, m.req, v);
    ++nd.rounds_done;
    if (nd.succ_of_last != kRtNoReq) {
      send_token(v, nd.succ_of_last, payload, w);
    } else {
      nd.token_parked = true;
      nd.token_payload = payload;
    }
    if (nd.rounds_done < rounds_) issue(v, nd, w);
    // Last: a zero remaining count must mean every causally earlier message
    // was already consumed (release counted only after its token landed).
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      done_.store(true, std::memory_order_release);
  }

  void drain_node(NodeId v, Worker& w) {
    ArrowNode& nd = nodes_[static_cast<std::size_t>(v)];
    // Clear before draining: a sender that pushes after this store either
    // sees false and re-enqueues the node, or its message is caught below.
    nd.scheduled.store(false, std::memory_order_release);
    Msg m;
    while (nd.mailbox.try_pop(m)) {
      if (m.kind == MsgKind::kQueue)
        on_queue(v, nd, m, w);
      else
        on_token(v, nd, m, w);
    }
    // Re-arm if mail raced in against the empty check above.
    if (nd.mailbox.maybe_nonempty() && !nd.scheduled.exchange(true, std::memory_order_acq_rel)) {
      const bool ok = w.runqueue.try_push(v);
      ARROWDQ_ASSERT_MSG(ok, "runqueue overflow on re-arm");
    }
  }

  void worker_main(int wi) {
    Worker& w = workers_[static_cast<std::size_t>(wi)];
    for (NodeId v = w.begin; v < w.end; ++v)
      issue(v, nodes_[static_cast<std::size_t>(v)], w);
    NodeId v = kNoNode;
    for (;;) {
      if (w.runqueue.try_pop(v)) {
        drain_node(v, w);
        continue;
      }
      if (done_.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
    }
  }

  const Tree& tree_;
  const RtConfig cfg_;
  const NodeId n_;
  const std::int64_t rounds_;
  const ShardPartition part_;
  std::deque<ArrowNode> nodes_;  // deque: ArrowNode holds atomics, never moves
  std::deque<Worker> workers_;
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::int64_t> remaining_;
  std::atomic<bool> done_{false};
  std::atomic<std::uint64_t> cs_sink_{0};  // cs_spin scratch
};

}  // namespace

RtResult run_runtime(const Tree& tree, const RtConfig& cfg) {
  Runtime rt(tree, cfg);
  return rt.run();
}

}  // namespace arrowdq::rt
