// Bridge between the Experiment scenario vocabulary and the shared-memory
// runtime: the same TopologySpec tree + closed-loop rounds run through both
// rt::Runtime (measured, on real threads) and the discrete-event sim
// (predicted, deterministic), with the recorded history checked and the
// queue-hop costs compared.
//
// Interpretation of the comparison: both tiers run n nodes each issuing
// `rounds` requests through the identical arrow pointer machine on the
// identical tree, so queue messages chase the same moving tail; hops_ratio
// (runtime hops per op / sim hops per op) should be O(1). It is not expected
// to be 1.0 — the sim's closed loop re-issues on queuing completion under a
// latency model, while the runtime's apps re-issue on token release under
// real scheduler interleavings — so drift far outside [0.2, 5] is a red
// flag, small drift is physics. The history checker, not the ratio, is the
// correctness oracle (runtime runs are not bit-reproducible).
#pragma once

#include "exp/experiment.hpp"
#include "graph/tree.hpp"
#include "rt/history.hpp"
#include "rt/runtime.hpp"

namespace arrowdq::rt {

struct RtCrossValidation {
  RtResult rt;        // measured (history cleared after checking — it is large)
  CheckResult check;  // engaged iff cfg.record_history; ok == true otherwise
  RunResult sim;      // the deterministic sim prediction for the same scenario
  double sim_hops_per_op = 0.0;
  double rt_hops_per_op = 0.0;
  double hops_ratio = 0.0;  // rt / sim (0 when sim predicts 0 hops)
  // True iff the sim twin predicted zero hops per op (every request
  // self-absorbed at its issuer). hops_ratio is then 0 by convention, which
  // is indistinguishable from a genuine zero ratio — consumers comparing the
  // tiers (bench_gate.py) must treat such a cell as not-comparable rather
  // than as a runtime regression.
  bool sim_hops_zero = false;
};

/// The tree the runtime should serve for `e`'s topology (materialized or
/// implicit tier, same canonical tree the sim uses).
Tree rt_tree_for(const Experiment& e);

/// Run `e` (must be a fault-free arrow closed loop, rounds > 0) through both
/// tiers: rt::Runtime with `cfg` threads/app, the sim serially. When
/// cfg.record_history, the merged history is checked and then dropped.
RtCrossValidation run_rt_cross_validated(const Experiment& e, const RtConfig& cfg);

}  // namespace arrowdq::rt
