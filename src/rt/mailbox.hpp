// Per-node mailboxes for the shared-memory runtime (src/rt/): bounded MPSC
// delivery with a correctness-preserving overflow path.
//
// Two implementations, chosen at compile time:
//
//  * RingMailbox (default) — a Vyukov-style bounded ring whose push/pop are
//    lock-free. The consumer side is single-threaded by construction (only
//    the node's owning worker pops), so pop needs no CAS on the tail.
//  * LockingMailbox (-DARROWDQ_RT_LOCKING_MAILBOX) — mutex + two swapped
//    vectors. The portable fallback for platforms where the atomic ring is
//    in doubt; workers never sleep on an empty mailbox (scheduling is
//    runqueue-driven, see runtime.hpp), so no condvar is needed on pop.
//
// FIFO contract. The arrow protocol — like the sim, which clamps its latency
// draws per edge — assumes FIFO links: two queue() messages from the same
// sender to the same node must be delivered in send order (a reordering can
// bounce a request off a stale pointer). Both implementations preserve
// per-producer order, including across the overflow path:
//
//  * the ring serves slots in reservation order, so one producer's pushes
//    come out in push order;
//  * once a producer diverts to overflow (ring full, or overflow already
//    non-empty), every later push also diverts until the consumer has
//    drained the overflow batch — so a producer never has messages in the
//    ring *behind* its own overflow messages;
//  * the consumer takes the overflow batch only when the ring is empty and
//    finishes the batch before touching the ring again.
//
// Capacity. The ring bounds steady-state memory; the overflow bounds
// worst-case correctness (a node can transiently receive O(outstanding
// requests) messages — e.g. every queue message in flight chasing the same
// moving tail). Blocking the producer instead would deadlock: two workers
// pushing into each other's full mailboxes would each wait on a consumer
// that never runs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace arrowdq::rt {

/// Smallest power of two >= x (x >= 1).
inline std::size_t pow2_at_least(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Vyukov bounded MPMC ring, used MPSC: push from any thread, pop only from
/// the owning worker. try_push fails when full (caller falls back to the
/// overflow vector); try_pop fails when empty.
template <typename T>
class RingMailbox {
 public:
  explicit RingMailbox(std::size_t capacity)
      : slots_(pow2_at_least(capacity < 2 ? 2 : capacity)),
        mask_(slots_.size() - 1) {
    for (std::size_t i = 0; i < slots_.size(); ++i)
      slots_[i].seq.store(i, std::memory_order_relaxed);
  }

  bool try_push(const T& v) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          slot.val = v;
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  bool try_pop(T& out) {
    const std::size_t pos = tail_;
    Slot& slot = slots_[pos & mask_];
    const std::size_t seq = slot.seq.load(std::memory_order_acquire);
    const auto dif =
        static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
    if (dif < 0) return false;  // empty (or producer mid-publish: not ready yet)
    ARROWDQ_ASSERT(dif == 0);   // single consumer: tail_ never races ahead
    tail_ = pos + 1;
    out = std::move(slot.val);
    slot.seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Approximate (producers may be mid-publish); exact when quiescent.
  bool maybe_nonempty() const {
    return head_.load(std::memory_order_acquire) != tail_;
  }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    T val{};
  };
  std::vector<Slot> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};  // producers
  alignas(64) std::size_t tail_{0};               // single consumer
};

/// Mutex fallback: unbounded two-vector swap queue. Per-producer FIFO is
/// immediate from the single lock.
template <typename T>
class LockingMailbox {
 public:
  explicit LockingMailbox(std::size_t /*capacity*/) {}

  void push(const T& v) {
    std::lock_guard<std::mutex> lock(mu_);
    inbox_.push_back(v);
    nonempty_.store(true, std::memory_order_release);
  }

  bool try_pop(T& out) {
    if (batch_next_ < batch_.size()) {
      out = std::move(batch_[batch_next_++]);
      return true;
    }
    if (!nonempty_.load(std::memory_order_acquire)) return false;
    batch_.clear();
    batch_next_ = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch_.swap(inbox_);
      nonempty_.store(false, std::memory_order_release);
    }
    if (batch_.empty()) return false;
    out = std::move(batch_[batch_next_++]);
    return true;
  }

  bool maybe_nonempty() const {
    return batch_next_ < batch_.size() || nonempty_.load(std::memory_order_acquire);
  }

 private:
  std::mutex mu_;
  std::vector<T> inbox_;              // guarded by mu_
  std::vector<T> batch_;              // consumer-private
  std::size_t batch_next_ = 0;        // consumer-private
  std::atomic<bool> nonempty_{false};
};

/// The mailbox the runtime instantiates per node: bounded lock-free ring with
/// a locked overflow vector behind it (or the pure locking fallback). push()
/// never fails and never waits on the consumer.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(std::size_t ring_capacity)
#if defined(ARROWDQ_RT_LOCKING_MAILBOX)
      : impl_(ring_capacity) {
  }

  void push(const T& v) { impl_.push(v); }
  bool try_pop(T& out) { return impl_.try_pop(out); }
  bool maybe_nonempty() const { return impl_.maybe_nonempty(); }

 private:
  LockingMailbox<T> impl_;
#else
      : ring_(ring_capacity) {
  }

  void push(const T& v) {
    // Divert to overflow whenever overflow is (or may be) non-empty: a
    // producer must never land in the ring behind its own overflow messages.
    if (!overflow_nonempty_.load(std::memory_order_acquire) && ring_.try_push(v)) return;
    std::lock_guard<std::mutex> lock(overflow_mu_);
    overflow_.push_back(v);
    overflow_nonempty_.store(true, std::memory_order_release);
  }

  bool try_pop(T& out) {
    // Oldest first: the pending overflow batch predates anything a producer
    // has pushed into the ring since the batch was taken.
    if (batch_next_ < batch_.size()) {
      out = std::move(batch_[batch_next_++]);
      return true;
    }
    if (ring_.try_pop(out)) return true;
    if (!overflow_nonempty_.load(std::memory_order_acquire)) return false;
    batch_.clear();
    batch_next_ = 0;
    {
      std::lock_guard<std::mutex> lock(overflow_mu_);
      batch_.swap(overflow_);
      overflow_nonempty_.store(false, std::memory_order_release);
    }
    if (batch_.empty()) return false;
    out = std::move(batch_[batch_next_++]);
    return true;
  }

  bool maybe_nonempty() const {
    return batch_next_ < batch_.size() || ring_.maybe_nonempty() ||
           overflow_nonempty_.load(std::memory_order_acquire);
  }

 private:
  RingMailbox<T> ring_;
  std::mutex overflow_mu_;
  std::vector<T> overflow_;     // guarded by overflow_mu_
  std::vector<T> batch_;        // consumer-private
  std::size_t batch_next_ = 0;  // consumer-private
  std::atomic<bool> overflow_nonempty_{false};
#endif
};

}  // namespace arrowdq::rt
