// Per-node runtime state: the arrow pointer machine plus the token slots,
// mutated only by the node's owning worker (see runtime.hpp for the
// ownership rules). The only cross-thread members are the mailbox and the
// `scheduled` wakeup flag.
#pragma once

#include <atomic>
#include <cstdint>

#include "rt/history.hpp"
#include "rt/mailbox.hpp"
#include "support/types.hpp"

namespace arrowdq::rt {

enum class MsgKind : std::uint8_t {
  kQueue,  // arrow queue(req): forwarded hop-by-hop along tree edges
  kToken,  // the app token granted directly holder -> successor's node
};

struct Msg {
  RtReq req = kRtNoReq;
  std::int64_t payload = 0;  // token: app payload (counter value)
  NodeId from = kNoNode;     // queue: sender (link flips to it); token: previous holder
  MsgKind kind = MsgKind::kQueue;
};

/// Arrow state of one node. Owner-only fields carry no synchronization: the
/// owning worker is the only thread that ever reads or writes them, and
/// ownership never moves.
struct ArrowNode {
  explicit ArrowNode(std::size_t mailbox_capacity) : mailbox(mailbox_capacity) {}

  // --- cross-thread ---------------------------------------------------------
  Mailbox<Msg> mailbox;
  /// Wakeup dedup: false -> true transition (by any sender) enqueues the node
  /// on its owner's runqueue exactly once; the owner clears it before
  /// draining. Bounds the runqueue at one entry per owned node.
  std::atomic<bool> scheduled{false};

  // --- owner-only -----------------------------------------------------------
  /// link(v): tree neighbour the arrow points to, or v itself (sink).
  NodeId link = kNoNode;
  /// id(v): the last request issued by this node (r0 at the root before its
  /// first issue); the request new arrivals queue behind when v is the sink.
  RtReq last_issued = kRtNoReq;
  /// Successor of last_issued once a queue message (or a local re-issue) has
  /// terminated behind it; kRtNoReq while unknown.
  RtReq succ_of_last = kRtNoReq;
  /// The token is parked here: last_issued was released (r0 counts as
  /// released) but its successor is still unknown, so the grant waits.
  bool token_parked = false;
  std::int64_t token_payload = 0;  // valid while token_parked
  /// Completed acquire/release rounds (closed loop issues the next request
  /// right after a release until rounds_per_node is reached).
  std::int64_t rounds_done = 0;
};

}  // namespace arrowdq::rt
