#include "rt/history.hpp"

#include <algorithm>
#include <cstdio>

namespace arrowdq::rt {

History merge_histories(std::vector<HistoryRecorder>& recorders) {
  History h;
  std::size_t total = 0;
  for (const HistoryRecorder& r : recorders) total += r.events().size();
  h.events.reserve(total);
  for (HistoryRecorder& r : recorders)
    h.events.insert(h.events.end(), r.events().begin(), r.events().end());
  std::sort(h.events.begin(), h.events.end(),
            [](const Event& a, const Event& b) { return a.stamp < b.stamp; });
  return h;
}

namespace {

std::string fail(const char* what, RtReq req) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s (request %lld)", what, static_cast<long long>(req));
  return std::string(buf);
}

}  // namespace

CheckResult check_history(const History& h, const CheckSpec& spec) {
  CheckResult res;
  const std::int64_t total = spec.nodes * spec.rounds;
  res.requests = total;
  auto bad = [&res](std::string msg) {
    res.ok = false;
    res.error = std::move(msg);
    return res;
  };
  if (spec.nodes <= 0 || spec.rounds < 0) return bad("check spec: empty run");

  // Per-request event slots; index 1..total (0 unused — r0 has no events).
  struct PerReq {
    std::uint64_t invoke = 0, enqueue = 0, acquire = 0, release = 0;
    bool has_invoke = false, has_enqueue = false, has_acquire = false, has_release = false;
    RtReq pred = kRtNoReq;
    std::int64_t counter = 0;
  };
  std::vector<PerReq> reqs(static_cast<std::size_t>(total) + 1);

  // --- 1. shape: one event of each kind per request, on the owning node ----
  for (const Event& e : h.events) {
    if (e.req < 1 || e.req > total) return bad(fail("event for out-of-range request", e.req));
    PerReq& r = reqs[static_cast<std::size_t>(e.req)];
    const NodeId owner = static_cast<NodeId>((e.req - 1) / spec.rounds);
    switch (e.kind) {
      case EventKind::kInvoke:
        if (r.has_invoke) return bad(fail("duplicate invoke", e.req));
        if (e.node != owner) return bad(fail("invoke on the wrong node", e.req));
        r.invoke = e.stamp;
        r.has_invoke = true;
        break;
      case EventKind::kEnqueue:
        // The enqueue site is wherever the queue message terminated, not the
        // issuing node — only the predecessor edge is checked here.
        if (r.has_enqueue) return bad(fail("duplicate enqueue", e.req));
        r.enqueue = e.stamp;
        r.pred = e.aux;
        r.has_enqueue = true;
        break;
      case EventKind::kAcquire:
        if (r.has_acquire) return bad(fail("duplicate acquire", e.req));
        if (e.node != owner) return bad(fail("acquire on the wrong node", e.req));
        r.acquire = e.stamp;
        r.counter = e.aux;
        r.has_acquire = true;
        break;
      case EventKind::kRelease:
        if (r.has_release) return bad(fail("duplicate release", e.req));
        if (e.node != owner) return bad(fail("release on the wrong node", e.req));
        r.release = e.stamp;
        r.has_release = true;
        break;
    }
  }
  for (RtReq q = 1; q <= total; ++q) {
    const PerReq& r = reqs[static_cast<std::size_t>(q)];
    if (!r.has_invoke) return bad(fail("missing invoke", q));
    if (!r.has_enqueue) return bad(fail("missing enqueue", q));
    if (!r.has_acquire) return bad(fail("missing acquire", q));
    if (!r.has_release) return bad(fail("missing release", q));
    if (!(r.invoke < r.enqueue)) return bad(fail("enqueue not after invoke", q));
    if (!(r.enqueue < r.acquire)) return bad(fail("acquire not after enqueue", q));
    if (!(r.acquire < r.release)) return bad(fail("release not after acquire", q));
  }

  // --- 2. total order: the pred relation is one chain from r0 --------------
  // succ[p] = the unique request recorded as enqueued behind p.
  std::vector<RtReq> succ(static_cast<std::size_t>(total) + 1, kRtNoReq);
  for (RtReq q = 1; q <= total; ++q) {
    const RtReq p = reqs[static_cast<std::size_t>(q)].pred;
    if (p < 0 || p > total) return bad(fail("predecessor out of range", q));
    if (succ[static_cast<std::size_t>(p)] != kRtNoReq)
      return bad(fail("two requests enqueued behind the same predecessor", q));
    succ[static_cast<std::size_t>(p)] = q;
  }
  std::vector<RtReq> chain;
  chain.reserve(static_cast<std::size_t>(total));
  for (RtReq cur = succ[0]; cur != kRtNoReq; cur = succ[static_cast<std::size_t>(cur)])
    chain.push_back(cur);
  if (static_cast<std::int64_t>(chain.size()) != total)
    return bad(fail("predecessor chain does not cover every request; first orphan",
                    static_cast<RtReq>(chain.size()) + 1));

  // --- 3. program order: per node, chain order == issue order --------------
  // Request ids encode issue order per node (round-major), so it suffices
  // that each node's ids appear ascending along the chain and that invoke
  // stamps ascend with them (round k+1 is invoked after round k released —
  // checked via the stamp ordering below plus the mutex walk).
  {
    std::vector<RtReq> last_of_node(static_cast<std::size_t>(spec.nodes), kRtNoReq);
    for (RtReq q : chain) {
      const auto v = static_cast<std::size_t>((q - 1) / spec.rounds);
      if (last_of_node[v] != kRtNoReq && last_of_node[v] > q)
        return bad(fail("node's requests out of program order on the chain", q));
      if (last_of_node[v] != kRtNoReq &&
          reqs[static_cast<std::size_t>(last_of_node[v])].invoke >
              reqs[static_cast<std::size_t>(q)].invoke)
        return bad(fail("invoke stamps out of program order", q));
      last_of_node[v] = q;
    }
  }

  // --- 4. mutex: no overlap, each release enables its chain successor ------
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const PerReq& cur = reqs[static_cast<std::size_t>(chain[i])];
    if (i + 1 < chain.size()) {
      const PerReq& nxt = reqs[static_cast<std::size_t>(chain[i + 1])];
      if (!(cur.release < nxt.acquire))
        return bad(fail("critical sections overlap: acquired before predecessor released",
                        chain[i + 1]));
    }
    // --- 5. counter: section value == 1-based chain position ---------------
    if (spec.app == RtApp::kCounter &&
        cur.counter != static_cast<std::int64_t>(i) + 1)
      return bad(fail("counter value disagrees with queue position", chain[i]));
  }
  return res;
}

}  // namespace arrowdq::rt
