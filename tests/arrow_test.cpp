// Unit and behavioural tests of the arrow protocol engine, including the
// worked examples of Figures 1-6.
#include <gtest/gtest.h>

#include <algorithm>

#include "arrow/arrow.hpp"
#include "arrow/invariants.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "sim/latency.hpp"
#include "support/random.hpp"
#include "testutil.hpp"
#include "workload/workloads.hpp"

namespace arrowdq {
namespace {

using testutil::path_tree;

TEST(Arrow, EmptyRequestSet) {
  Tree t = path_tree(4);
  RequestSet rs(0, {});
  auto out = run_arrow(t, rs);
  EXPECT_TRUE(out.is_complete());
  EXPECT_EQ(out.order(), std::vector<RequestId>{0});
}

TEST(Arrow, SingleRequestPaysTreeDistanceToRoot) {
  Tree t = path_tree(6);
  auto rs = RequestSet::from_units(0, {{5, 0}});
  auto out = run_arrow(t, rs);
  const auto& c = out.completion(1);
  EXPECT_EQ(c.predecessor, kRootRequest);
  EXPECT_EQ(c.completed_at, units_to_ticks(5));
  EXPECT_EQ(c.hops, 5);
  EXPECT_EQ(c.distance, 5);
}

TEST(Arrow, RequestFromRootCompletesLocally) {
  Tree t = path_tree(6);
  auto rs = RequestSet::from_units(0, {{0, 0}});
  auto out = run_arrow(t, rs);
  const auto& c = out.completion(1);
  EXPECT_EQ(c.predecessor, kRootRequest);
  EXPECT_EQ(c.completed_at, 0);
  EXPECT_EQ(c.hops, 0);
}

TEST(Arrow, SequentialCaseLatencyEqualsTreeDistanceBetweenConsecutive) {
  // Demmer-Herlihy: when requests are spaced farther apart than the tree
  // diameter, each request's latency is exactly dT to its predecessor.
  Tree t = path_tree(8);
  auto rs = RequestSet::from_units(0, {{7, 0}, {2, 20}, {5, 40}});
  auto out = run_arrow(t, rs);
  EXPECT_EQ(out.order(), (std::vector<RequestId>{0, 1, 2, 3}));
  EXPECT_EQ(out.completion(1).completed_at - rs.by_id(1).time, units_to_ticks(7));
  EXPECT_EQ(out.completion(2).completed_at - rs.by_id(2).time, units_to_ticks(5));
  EXPECT_EQ(out.completion(3).completed_at - rs.by_id(3).time, units_to_ticks(3));
}

TEST(Arrow, SameNodeRepeatedRequestsQueueLocally) {
  Tree t = path_tree(4);
  auto rs = RequestSet::from_units(0, {{3, 0}, {3, 10}, {3, 20}});
  auto out = run_arrow(t, rs);
  EXPECT_EQ(out.order(), (std::vector<RequestId>{0, 1, 2, 3}));
  // Second and third requests complete locally with zero hops.
  EXPECT_EQ(out.completion(2).hops, 0);
  EXPECT_EQ(out.completion(3).hops, 0);
  EXPECT_EQ(out.completion(2).completed_at, rs.by_id(2).time);
}

TEST(Arrow, ConcurrentRequestsDeflect) {
  // Figure 6's scenario: root v in the middle, x and y request concurrently.
  //   path: x(0) - u(1) - v(2) ... with y also adjacent to u.
  //   star-ish tree: v root; u child of v; x, y children of u.
  Tree t = Tree::from_parents({1, 2, kNoNode, 1}, 2);  // 0=x, 1=u, 2=v(root), 3=y
  auto rs = RequestSet::from_units(2, {{0, 0}, {3, 0}});
  auto out = run_arrow(t, rs);
  auto order = out.order();
  // Both orders are legal depending on tie-break; the deflected request is
  // queued behind the other, and exactly one of them paid the full path.
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], kRootRequest);
  RequestId first = order[1], second = order[2];
  EXPECT_EQ(out.completion(first).predecessor, kRootRequest);
  EXPECT_EQ(out.completion(second).predecessor, first);
  // The deflected message traveled x->u->y (2 hops), not to the root.
  EXPECT_EQ(out.completion(second).hops, 2);
  EXPECT_EQ(out.completion(first).hops, 2);
}

TEST(Arrow, QuiescentStateHasUniqueSinkAtLastRequester) {
  Rng rng(42);
  Graph g = make_grid(5, 5);
  Tree t = shortest_path_tree(g, 0);
  auto rs = poisson_uniform(25, 0, 30, 0.7, rng);
  SynchronousLatency sync;
  ArrowEngine engine(t, sync);
  auto out = engine.run(rs);
  out.validate(rs);
  auto order = out.order();
  NodeId last_node = rs.by_id(order.back()).node;
  EXPECT_EQ(engine.sink_node(), last_node);
  EXPECT_TRUE(links_form_in_tree(engine.links(), t));
}

TEST(Arrow, MessageCountEqualsTotalHops) {
  Rng rng(7);
  Graph g = make_grid(4, 4);
  Tree t = shortest_path_tree(g, 3);
  auto rs = one_shot_all(16, 3);
  SynchronousLatency sync;
  ArrowEngine engine(t, sync);
  auto out = engine.run(rs);
  EXPECT_EQ(engine.messages_sent(), static_cast<std::uint64_t>(out.total_hops()));
}

TEST(Arrow, LatencyEqualsTreeDistanceToPredecessor) {
  // Equation (1): cA(ri, rj) = dT(vi, vj) in the synchronous model, for all
  // requests, concurrent or not.
  Rng rng(11);
  Graph g = make_grid(4, 5);
  Tree t = shortest_path_tree(g, 0);
  auto rs = poisson_uniform(20, 0, 40, 2.0, rng);
  auto out = run_arrow(t, rs);
  for (RequestId id = 1; id <= rs.size(); ++id) {
    const auto& c = out.completion(id);
    Weight d = t.distance(rs.by_id(id).node, rs.by_id(c.predecessor).node);
    EXPECT_EQ(c.completed_at - rs.by_id(id).time, units_to_ticks(d)) << "request " << id;
    EXPECT_EQ(c.distance, d);
  }
}

TEST(Arrow, WorksWhenTreeRootDiffersFromRequestRoot) {
  Graph g = make_grid(3, 3);
  Tree t = shortest_path_tree(g, 8);  // rooted elsewhere
  auto rs = RequestSet::from_units(4, {{0, 0}, {7, 3}});
  auto out = run_arrow(t, rs);  // initial sink must be node 4
  out.validate(rs);
  EXPECT_EQ(out.completion(1).distance, t.distance(0, 4));
}

TEST(Arrow, WeightedTreeUsesWeightedLatency) {
  Graph g(3);
  g.add_edge(0, 1, 4);
  g.add_edge(1, 2, 9);
  Tree t = shortest_path_tree(g, 0);
  auto rs = RequestSet::from_units(0, {{2, 0}});
  auto out = run_arrow(t, rs);
  EXPECT_EQ(out.completion(1).completed_at, units_to_ticks(13));
  EXPECT_EQ(out.completion(1).hops, 2);
  EXPECT_EQ(out.completion(1).distance, 13);
}

TEST(Arrow, BurstOnStarSerializesThroughCenter) {
  Graph g = make_star(6);
  Tree t = shortest_path_tree(g, 0);
  auto rs = one_shot_burst({1, 2, 3, 4, 5}, 0);
  auto out = run_arrow(t, rs);
  out.validate(rs);
  // All five requests are 1 hop from the root; exactly one wins the root,
  // the rest chain behind one another with distance 2 (leaf-center-leaf).
  auto order = out.order();
  EXPECT_EQ(out.completion(order[1]).distance, 1);
  for (std::size_t i = 2; i < order.size(); ++i)
    EXPECT_EQ(out.completion(order[i]).distance, 2);
}

TEST(Arrow, DeterministicAcrossRuns) {
  Rng rng(3);
  Graph g = make_grid(4, 4);
  Tree t = shortest_path_tree(g, 0);
  auto rs = poisson_uniform(16, 0, 25, 1.5, rng);
  auto a = run_arrow(t, rs);
  auto b = run_arrow(t, rs);
  EXPECT_EQ(a.order(), b.order());
  EXPECT_EQ(a.total_latency(rs), b.total_latency(rs));
  EXPECT_EQ(a.total_hops(), b.total_hops());
}

TEST(Arrow, HighContentionHasLowHopsPerRequest) {
  // The Section 5 observation: under contention, neighbouring requests in
  // the queue are close on the tree, so hops per request stay small.
  Graph g = make_complete(16);
  Tree t = balanced_binary_overlay(g);
  Rng rng(5);
  auto rs = bursty(16, 0, 20, 16, 1, rng);  // 20 bursts of 16 concurrent
  auto out = run_arrow(t, rs);
  double hops_per_req = static_cast<double>(out.total_hops()) / rs.size();
  EXPECT_LT(hops_per_req, 2.0);
}

using LatencyFactory = std::unique_ptr<LatencyModel> (*)();

class ArrowLatencyModels : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<LatencyModel> make() const {
    switch (GetParam()) {
      case 0: return make_synchronous();
      case 1: return make_scaled(0.5);
      case 2: return make_uniform_async(17);
      default: return make_truncated_exp(23);
    }
  }
};

TEST_P(ArrowLatencyModels, OutcomeValidOnAllModels) {
  Rng rng(29);
  Graph g = make_grid(5, 4);
  Tree t = shortest_path_tree(g, 0);
  auto rs = poisson_uniform(20, 0, 35, 1.0, rng);
  auto lat = make();
  auto out = run_arrow(t, rs, *lat);
  out.validate(rs);
  EXPECT_TRUE(out.is_complete());
}

TEST_P(ArrowLatencyModels, AsyncLatencyNeverExceedsSynchronous) {
  // Section 3.8: with all message delays <= 1 unit per unit weight, the
  // latency of a request is at most dT to its predecessor.
  Rng rng(31);
  Graph g = make_grid(4, 4);
  Tree t = shortest_path_tree(g, 0);
  auto rs = poisson_uniform(16, 0, 30, 1.2, rng);
  auto lat = make();
  auto out = run_arrow(t, rs, *lat);
  for (RequestId id = 1; id <= rs.size(); ++id) {
    const auto& c = out.completion(id);
    Weight d = t.distance(rs.by_id(id).node, rs.by_id(c.predecessor).node);
    EXPECT_LE(c.completed_at - rs.by_id(id).time, units_to_ticks(d)) << "request " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ArrowLatencyModels, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace arrowdq
