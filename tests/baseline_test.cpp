#include <gtest/gtest.h>

#include <cmath>

#include "arrow/arrow.hpp"
#include "arrow/closed_loop.hpp"
#include "baseline/centralized.hpp"
#include "baseline/pointer_forwarding.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "sim/latency.hpp"
#include "support/random.hpp"
#include "workload/workloads.hpp"

namespace arrowdq {
namespace {

TEST(Centralized, TwoMessagesPerRemoteRequest) {
  Graph g = make_complete(5);
  auto rs = RequestSet::from_units(0, {{1, 0}, {2, 0}, {3, 5}});
  auto out = run_centralized(5, rs, unit_dist_fn(), CentralizedConfig{0});
  out.validate(rs);
  for (RequestId id = 1; id <= 3; ++id) EXPECT_EQ(out.completion(id).hops, 2);
}

TEST(Centralized, CenterRequestIsFree) {
  auto rs = RequestSet::from_units(0, {{0, 0}});
  auto out = run_centralized(4, rs, unit_dist_fn(), CentralizedConfig{0});
  EXPECT_EQ(out.completion(1).hops, 0);
  EXPECT_EQ(out.completion(1).completed_at, 0);
}

TEST(Centralized, OrderFollowsArrivalAtCenter) {
  // Node 1 is adjacent to the center, node 3 is far: with graph distances,
  // node 1's request (issued later but arriving earlier) wins.
  Graph g = make_path(4);
  AllPairs apsp(g);
  auto rs = RequestSet::from_units(0, {{3, 0}, {1, 1}});
  auto out = run_centralized(4, rs, apsp_dist_fn(apsp), CentralizedConfig{0});
  auto order = out.order();
  EXPECT_EQ(order, (std::vector<RequestId>{0, 2, 1}));
}

TEST(Centralized, RoundTripLatencyUsesGraphDistances) {
  Graph g = make_path(5);
  AllPairs apsp(g);
  auto rs = RequestSet::from_units(0, {{4, 0}});
  auto out = run_centralized(5, rs, apsp_dist_fn(apsp), CentralizedConfig{0});
  EXPECT_EQ(out.completion(1).completed_at, units_to_ticks(8));  // 4 there + 4 back
}

TEST(Centralized, ServiceTimeSerializesTheCenter) {
  const Time service = 100;
  auto rs = RequestSet::from_units(0, {{1, 0}, {2, 0}, {3, 0}, {4, 0}});
  CentralizedConfig cfg{0, service};
  auto out = run_centralized(5, rs, unit_dist_fn(), cfg);
  // All four requests arrive at the center at 1 unit; service serializes
  // them 100 ticks apart; replies also pay service at the requesters.
  Time first = out.completion(out.order()[1]).completed_at;
  Time last = out.completion(out.order()[4]).completed_at;
  EXPECT_EQ(last - first, 3 * service);
}

TEST(Centralized, ClosedLoopCompletesAllRounds) {
  CentralizedConfig cfg{0, kTicksPerUnit / 16};
  auto res = run_centralized_closed_loop(8, 50, unit_dist_fn(), cfg);
  EXPECT_EQ(res.total_requests, 400);
  EXPECT_GT(res.makespan, 0);
  // 2 messages per remote request; the center node's own requests are free.
  EXPECT_EQ(res.messages, 2u * 7u * 50u);
}

TEST(Centralized, ClosedLoopScalesLinearlyWhenSaturated) {
  CentralizedConfig cfg{0, kTicksPerUnit / 8};
  auto r16 = run_centralized_closed_loop(16, 100, unit_dist_fn(), cfg);
  auto r32 = run_centralized_closed_loop(32, 100, unit_dist_fn(), cfg);
  double growth = static_cast<double>(r32.makespan) / static_cast<double>(r16.makespan);
  EXPECT_GT(growth, 1.6);
  EXPECT_LT(growth, 2.4);
}

TEST(ArrowClosedLoop, CompletesAllRounds) {
  Graph g = make_complete(8);
  Tree t = balanced_binary_overlay(g);
  SynchronousLatency sync;
  ClosedLoopConfig cfg;
  cfg.requests_per_node = 50;
  cfg.service_time = kTicksPerUnit / 16;
  auto res = run_arrow_closed_loop(t, sync, cfg);
  EXPECT_EQ(res.total_requests, 400);
  EXPECT_GT(res.makespan, 0);
  EXPECT_GT(res.avg_hops_per_request, 0.0);
}

TEST(ArrowClosedLoop, SingleNodeIsAllLocal) {
  Graph g = make_complete(1);
  Tree t = shortest_path_tree(g, 0);
  SynchronousLatency sync;
  ClosedLoopConfig cfg;
  cfg.requests_per_node = 20;
  auto res = run_arrow_closed_loop(t, sync, cfg);
  EXPECT_EQ(res.total_requests, 20);
  EXPECT_EQ(res.tree_messages, 0u);
  EXPECT_DOUBLE_EQ(res.avg_hops_per_request, 0.0);
}

TEST(ArrowClosedLoop, HopsPerRequestBelowOneUnderContention) {
  // Figure 11's headline: average interprocessor messages per queuing
  // operation is below 1 because many requests find predecessors locally.
  Graph g = make_complete(32);
  Tree t = balanced_binary_overlay(g);
  SynchronousLatency sync;
  ClosedLoopConfig cfg;
  cfg.requests_per_node = 200;
  cfg.service_time = kTicksPerUnit / 16;
  auto res = run_arrow_closed_loop(t, sync, cfg);
  EXPECT_LT(res.avg_hops_per_request, 1.0);
}

TEST(ArrowClosedLoop, BeatsCentralizedAtScale) {
  const Time service = kTicksPerUnit / 16;
  Graph g = make_complete(64);
  Tree t = balanced_binary_overlay(g);
  SynchronousLatency sync;
  ClosedLoopConfig acfg;
  acfg.requests_per_node = 200;
  acfg.service_time = service;
  auto arrow = run_arrow_closed_loop(t, sync, acfg);
  auto central = run_centralized_closed_loop(64, 200, unit_dist_fn(),
                                             CentralizedConfig{0, service});
  EXPECT_LT(arrow.makespan, central.makespan);
}

TEST(PointerForwarding, SequentialRequestsTerminateAndOrder) {
  auto rs = RequestSet::from_units(0, {{1, 0}, {2, 10}, {3, 20}});
  PointerForwardingConfig cfg;
  auto out = run_pointer_forwarding(4, rs, unit_dist_fn(), cfg);
  out.validate(rs);
  EXPECT_EQ(out.order(), (std::vector<RequestId>{0, 1, 2, 3}));
}

TEST(PointerForwarding, ConcurrentBurstValidOrder) {
  Rng rng(3);
  auto rs = one_shot_all(12, 0);
  for (auto mode : {ForwardingMode::kCompressToRequester, ForwardingMode::kReverseToSender}) {
    PointerForwardingConfig cfg;
    cfg.mode = mode;
    auto out = run_pointer_forwarding(12, rs, unit_dist_fn(), cfg);
    out.validate(rs);
  }
}

TEST(PointerForwarding, BothModesKeepSequentialFindsShort) {
  // Sequential random requests: both pointer-update rules keep the average
  // find short on a complete graph (neither should degrade toward the
  // worst-case Theta(n) chain). Which one wins depends on the request
  // pattern, so we bound each mode independently rather than comparing.
  const NodeId n = 24;
  std::vector<std::pair<NodeId, Weight>> items;
  Rng rng(9);
  for (int i = 0; i < 60; ++i)
    items.emplace_back(static_cast<NodeId>(rng.next_below(n)), i * 4);
  auto rs = RequestSet::from_units(0, items);
  for (auto mode : {ForwardingMode::kCompressToRequester, ForwardingMode::kReverseToSender}) {
    PointerForwardingConfig cfg;
    cfg.mode = mode;
    auto out = run_pointer_forwarding(n, rs, unit_dist_fn(), cfg);
    double avg = static_cast<double>(out.total_hops()) / rs.size();
    EXPECT_LT(avg, static_cast<double>(n) / 3.0);
  }
}

TEST(PointerForwarding, GinatAmortizedLogBoundHolds) {
  // Ginat-Sleator-Tarjan: amortized Theta(log n) pointer chases per request
  // with compression. Check the average stays within a generous constant of
  // log2 n on a long random sequential run.
  const NodeId n = 64;
  std::vector<std::pair<NodeId, Weight>> items;
  Rng rng(10);
  for (int i = 0; i < 400; ++i)
    items.emplace_back(static_cast<NodeId>(rng.next_below(n)), i * 3);
  auto rs = RequestSet::from_units(0, items);
  PointerForwardingConfig cfg;
  auto out = run_pointer_forwarding(n, rs, unit_dist_fn(), cfg);
  double avg = static_cast<double>(out.total_hops()) / rs.size();
  EXPECT_LT(avg, 3.0 * std::log2(static_cast<double>(n)));
}

}  // namespace
}  // namespace arrowdq
