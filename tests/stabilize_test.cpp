#include <gtest/gtest.h>

#include "arrow/invariants.hpp"
#include "arrow/stabilize.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "support/random.hpp"
#include "testutil.hpp"

namespace arrowdq {
namespace {

using testutil::grid_tree;

std::vector<NodeId> legal_links_toward(const Tree& t, NodeId sink) {
  Tree rooted = t.rerooted(sink);
  std::vector<NodeId> links(static_cast<std::size_t>(t.node_count()));
  for (NodeId v = 0; v < t.node_count(); ++v)
    links[static_cast<std::size_t>(v)] = v == sink ? v : rooted.parent(v);
  return links;
}

TEST(Invariants, LegalStateAccepted) {
  Tree t = grid_tree();
  auto links = legal_links_toward(t, 5);
  auto rep = check_link_state(links, t);
  EXPECT_TRUE(rep.valid);
  EXPECT_EQ(rep.sink, 5);
  EXPECT_EQ(rep.sink_count, 1);
}

TEST(Invariants, DetectsMultipleSinks) {
  Tree t = grid_tree();
  auto links = legal_links_toward(t, 5);
  links[10] = 10;  // second sink
  auto rep = check_link_state(links, t);
  EXPECT_FALSE(rep.valid);
  EXPECT_EQ(rep.sink_count, 2);
}

TEST(Invariants, DetectsIllegalPointer) {
  Tree t = grid_tree();
  auto links = legal_links_toward(t, 0);
  links[3] = 12;  // not a tree neighbour of 3 in the grid SPT
  auto rep = check_link_state(links, t);
  if (rep.illegal_pointers == 0) GTEST_SKIP() << "12 happens to neighbour 3 in this tree";
  EXPECT_FALSE(rep.valid);
}

TEST(Invariants, DetectsCycle) {
  Tree t = shortest_path_tree(make_path(4), 0);
  // 2-cycle between nodes 1 and 2; node 3 points into it; no sink.
  std::vector<NodeId> links{1, 2, 1, 2};
  auto rep = check_link_state(links, t);
  EXPECT_FALSE(rep.valid);
  EXPECT_EQ(rep.sink_count, 0);
}

TEST(Stabilize, LegalStateTowardAnchorIsFixpoint) {
  Tree t = grid_tree();
  SelfStabilizer stab(t, /*anchor=*/0);
  auto links = legal_links_toward(t, 0);
  auto h = stab.estimate_hops(links);
  EXPECT_EQ(stab.round(links, h), 0);
}

TEST(Stabilize, RepairsCycles) {
  Tree t = shortest_path_tree(make_path(6), 0);
  SelfStabilizer stab(t, 0);
  std::vector<NodeId> links{1, 2, 1, 4, 5, 4};  // two 2-cycles, no sink
  auto h = stab.estimate_hops(links);
  auto res = stab.stabilize(links, h, 100);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(links_form_in_tree(links, t));
  EXPECT_EQ(check_link_state(links, t).sink, 0);
}

TEST(Stabilize, RepairsMultipleSinks) {
  Tree t = grid_tree();
  SelfStabilizer stab(t, 0);
  auto links = legal_links_toward(t, 0);
  links[7] = 7;
  links[13] = 13;
  auto h = stab.estimate_hops(links);
  auto res = stab.stabilize(links, h, 100);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.corrections, 0);
  EXPECT_TRUE(links_form_in_tree(links, t));
}

TEST(Stabilize, RepairsRandomCorruption) {
  Rng rng(404);
  Graph g = make_random_tree(24, rng);
  Tree t = shortest_path_tree(g, 0);
  SelfStabilizer stab(t, 0);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<NodeId> links(24);
    std::vector<NodeId> h(24);
    for (NodeId v = 0; v < 24; ++v) {
      links[static_cast<std::size_t>(v)] = static_cast<NodeId>(rng.next_below(24));
      h[static_cast<std::size_t>(v)] = static_cast<NodeId>(rng.next_below(24));
    }
    auto res = stab.stabilize(links, h, 200);
    EXPECT_TRUE(res.converged) << "trial " << trial;
    EXPECT_TRUE(links_form_in_tree(links, t)) << "trial " << trial;
    EXPECT_EQ(check_link_state(links, t).sink, 0);
  }
}

TEST(Stabilize, RepairsMutualPairLivelock) {
  // Pinned regression: a mutual pair (1 -> 2, 2 -> 1) where node 1's hop
  // estimate coincidentally satisfies h(1) == h(2) + 1. Node 1 then passes
  // the plain local check forever while node 2 fails and idempotently resets
  // to its anchored parent — which is exactly node 1 — so without the
  // 2-cycle rejection the round count never reaches zero corrections.
  Tree t = shortest_path_tree(make_path(4), 0);
  SelfStabilizer stab(t, 0);
  std::vector<NodeId> links{0, 2, 1, 2};
  std::vector<NodeId> h{0, 3, 2, 3};
  auto res = stab.stabilize(links, h, 100);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.rounds, 4);
  EXPECT_TRUE(links_form_in_tree(links, t));
  EXPECT_EQ(check_link_state(links, t).sink, 0);
}

TEST(Stabilize, RepairsAdversarialMutualPairs) {
  // Randomized version of the livelock shape: start from the legal state,
  // plant back-edges that form 2-cycles with tree edges, and rig the hop
  // estimate of one end so it looks locally consistent.
  Rng rng(406);
  for (int trial = 0; trial < 20; ++trial) {
    NodeId n = 8 + static_cast<NodeId>(rng.next_below(25));
    Graph g = make_random_tree(n, rng);
    Tree t = shortest_path_tree(g, 0);
    SelfStabilizer stab(t, 0);
    auto links = legal_links_toward(t, 0);
    std::vector<NodeId> h(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) h[static_cast<std::size_t>(v)] = t.depth(v);
    for (int k = 0; k < 3; ++k) {
      auto v = static_cast<NodeId>(1 + rng.next_below(static_cast<std::uint64_t>(n - 1)));
      NodeId p = t.parent(v);
      auto pi = static_cast<std::size_t>(p);
      links[pi] = v;  // back-edge: (v -> p, p -> v) is now a mutual pair
      h[pi] = h[static_cast<std::size_t>(v)] + 1;  // p looks consistent
    }
    auto res = stab.stabilize(links, h, 4 * n + 8);
    EXPECT_TRUE(res.converged) << "trial " << trial;
    EXPECT_TRUE(links_form_in_tree(links, t)) << "trial " << trial;
    EXPECT_EQ(check_link_state(links, t).sink, 0) << "trial " << trial;
  }
}

TEST(Stabilize, ConvergesWithinLinearRounds) {
  Rng rng(405);
  Graph g = make_path(32);
  Tree t = shortest_path_tree(g, 0);
  SelfStabilizer stab(t, 0);
  std::vector<NodeId> links(32);
  std::vector<NodeId> h(32, 0);
  for (NodeId v = 0; v < 32; ++v)
    links[static_cast<std::size_t>(v)] = static_cast<NodeId>(rng.next_below(32));
  auto res = stab.stabilize(links, h, 3 * 32);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.rounds, 2 * 32 + 2);
}

}  // namespace
}  // namespace arrowdq
