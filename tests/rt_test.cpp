// The shared-memory runtime (src/rt/) under test.
//
// Runtime runs are not bit-reproducible — real-thread interleavings differ
// per run — so these tests pin the things that must hold on *every* run:
//
//  * mailbox contract — per-producer FIFO through the bounded ring and its
//    overflow path, single-threaded and under a genuine MPSC thread stress;
//  * checker soundness on real runs — 36 randomized runtime executions
//    (4 topology families x T in {1, 2, 4} x 3 round/capacity variants) all
//    produce histories that rt::check_history accepts, with exact op and
//    token counts;
//  * app semantics — the counter app's values match chain positions (the
//    checker's rule 5), the directory app accounts positive travel;
//  * checker completeness — seeded corruptions of a genuinely valid history
//    (dropped release, overlapping critical sections, reordered acquires,
//    forked predecessor chain, counter skew, wrong-node event) are each
//    REJECTED: a checker that cannot fail proves nothing;
//  * the Experiment bridge — run_rt_cross_validated runs the sim twin and
//    reports a positive hop ratio with a passing check.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "exp/experiment.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "rt/history.hpp"
#include "rt/mailbox.hpp"
#include "rt/runtime.hpp"
#include "rt/service.hpp"
#include "testutil.hpp"

namespace arrowdq {
namespace {

using rt::CheckResult;
using rt::CheckSpec;
using rt::Event;
using rt::EventKind;
using rt::History;
using rt::RtApp;
using rt::RtConfig;
using rt::RtResult;

// --- mailbox -------------------------------------------------------------

TEST(RtMailbox, RingIsFifoAndBounded) {
  rt::RingMailbox<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "ring must refuse pushes past capacity";
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  // Wraparound: indices keep working past one full cycle.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(ring.try_push(10 * round + i));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, 10 * round + i);
    }
  }
}

TEST(RtMailbox, OverflowPathPreservesFifo) {
  // Tiny ring so most pushes take the overflow path; interleave pops so the
  // batch / ring / overflow handoff points are all crossed.
  rt::Mailbox<int> mbox(2);
  int next_push = 0, next_pop = 0, out = -1;
  auto push_n = [&](int n) {
    for (int i = 0; i < n; ++i) mbox.push(next_push++);
  };
  auto pop_n = [&](int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(mbox.try_pop(out));
      EXPECT_EQ(out, next_pop++);
    }
  };
  push_n(7);  // 2 in the ring, 5 overflowed
  pop_n(3);   // drains the ring, takes the overflow batch
  push_n(6);  // mid-batch pushes: ring again (overflow was swapped out)
  pop_n(7);
  EXPECT_TRUE(mbox.maybe_nonempty());
  pop_n(3);
  EXPECT_FALSE(mbox.try_pop(out));
  EXPECT_FALSE(mbox.maybe_nonempty());
}

TEST(RtMailbox, MpscStressKeepsPerProducerOrder) {
  // 4 producer threads x 4000 messages through a 8-slot ring: the overflow
  // path runs constantly. The consumer checks every producer's sequence
  // numbers come out strictly ascending — the FIFO contract the arrow
  // protocol needs from its links.
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 4000;
  rt::Mailbox<std::uint64_t> mbox(8);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint64_t p = 0; p < kProducers; ++p)
    producers.emplace_back([&mbox, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) mbox.push((p << 32) | i);
    });
  std::uint64_t received = 0;
  std::uint64_t next_seq[kProducers] = {0, 0, 0, 0};
  while (received < kProducers * kPerProducer) {
    std::uint64_t v;
    if (!mbox.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    const auto p = static_cast<std::size_t>(v >> 32);
    const std::uint64_t seq = v & 0xffffffffu;
    ASSERT_LT(p, static_cast<std::size_t>(kProducers));
    ASSERT_EQ(seq, next_seq[p]) << "producer " << p << " reordered";
    ++next_seq[p];
    ++received;
  }
  for (std::thread& t : producers) t.join();
  std::uint64_t v;
  EXPECT_FALSE(mbox.try_pop(v));
}

// --- randomized runtime runs through the checker -------------------------

Tree make_family_tree(int family, Rng& rng) {
  switch (family) {
    case 0: return balanced_binary_overlay(make_complete(24));
    case 1: return testutil::path_tree(17);
    case 2: return testutil::grid_tree(4, 5);
    default: return testutil::random_tree(23, rng);
  }
}

TEST(RtRuntime, RandomizedRunsPassChecker) {
  // 4 families x 3 thread counts x 3 variants = 36 independent runs, each
  // judged by the history checker — the runtime's replacement for goldens.
  const std::int64_t rounds_of[3] = {5, 9, 20};
  const int capacity_of[3] = {2, 8, 64};  // 2 forces the mailbox overflow path
  int runs = 0;
  for (int family = 0; family < 4; ++family) {
    for (int threads : {1, 2, 4}) {
      for (int variant = 0; variant < 3; ++variant) {
        Rng rng = testutil::seeded_rng(family * 100 + threads * 10 + variant);
        const Tree tree = make_family_tree(family, rng);
        RtConfig cfg;
        cfg.threads = threads;
        cfg.rounds_per_node = rounds_of[variant];
        cfg.mailbox_capacity = capacity_of[variant];
        cfg.app = RtApp::kMutex;
        const RtResult res = run_runtime(tree, cfg);
        const std::int64_t expect_ops =
            static_cast<std::int64_t>(tree.node_count()) * rounds_of[variant];
        EXPECT_EQ(res.ops, expect_ops);
        EXPECT_EQ(static_cast<std::int64_t>(res.token_messages), expect_ops)
            << "every op is granted by exactly one token transfer";
        EXPECT_EQ(res.history.events.size(), static_cast<std::size_t>(4 * expect_ops));
        CheckSpec spec;
        spec.nodes = tree.node_count();
        spec.rounds = rounds_of[variant];
        const CheckResult check = rt::check_history(res.history, spec);
        EXPECT_TRUE(check.ok) << "family=" << family << " T=" << threads
                              << " variant=" << variant << ": " << check.error;
        ++runs;
      }
    }
  }
  EXPECT_GE(runs, 30);
}

TEST(RtRuntime, CounterAppMatchesChainPositions) {
  const Tree tree = testutil::grid_tree(3, 4);
  RtConfig cfg;
  cfg.threads = 2;
  cfg.rounds_per_node = 7;
  cfg.app = RtApp::kCounter;
  const RtResult res = run_runtime(tree, cfg);
  CheckSpec spec{tree.node_count(), 7, RtApp::kCounter};
  const CheckResult check = rt::check_history(res.history, spec);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(RtRuntime, DirectoryAppAccountsTravel) {
  const Tree tree = testutil::path_tree(9);
  RtConfig cfg;
  cfg.threads = 2;
  cfg.rounds_per_node = 6;
  cfg.app = RtApp::kDirectory;
  const RtResult res = run_runtime(tree, cfg);
  // 9 nodes taking 6 turns each on a path: the object must move.
  EXPECT_GT(res.token_travel_units, 0);
  CheckSpec spec{tree.node_count(), 6, RtApp::kDirectory};
  const CheckResult check = rt::check_history(res.history, spec);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(RtRuntime, SingleNodeDegenerateRun) {
  // n = 1: every request self-queues behind the previous one; no queue
  // messages ever cross an edge.
  Tree tree{std::vector<NodeId>{kNoNode}, std::vector<Weight>{1}, 0};
  RtConfig cfg;
  cfg.threads = 2;  // clamped to 1 owned range
  cfg.rounds_per_node = 5;
  const RtResult res = run_runtime(tree, cfg);
  EXPECT_EQ(res.ops, 5);
  EXPECT_EQ(res.queue_messages, 0u);
  CheckSpec spec{1, 5, RtApp::kMutex};
  EXPECT_TRUE(rt::check_history(res.history, spec).ok);
}

// --- checker completeness: corrupted histories must be rejected ----------

struct ValidRun {
  History history;
  CheckSpec spec;
};

ValidRun make_valid_run(RtApp app) {
  const Tree tree = testutil::path_tree(6);
  RtConfig cfg;
  cfg.threads = 2;
  cfg.rounds_per_node = 3;
  cfg.app = app;
  RtResult res = run_runtime(tree, cfg);
  ValidRun run;
  run.history = std::move(res.history);
  run.spec = CheckSpec{tree.node_count(), 3, app};
  // Precondition for every corruption test: the pristine history passes.
  EXPECT_TRUE(rt::check_history(run.history, run.spec).ok);
  return run;
}

/// Index of the i-th event (in stamp order — merge sorts) of `kind`.
std::size_t nth_of_kind(const History& h, EventKind kind, int i) {
  for (std::size_t j = 0; j < h.events.size(); ++j)
    if (h.events[j].kind == kind && i-- == 0) return j;
  ADD_FAILURE() << "history has too few events of the requested kind";
  return 0;
}

TEST(RtChecker, RejectsDroppedRelease) {
  ValidRun run = make_valid_run(RtApp::kMutex);
  const std::size_t i = nth_of_kind(run.history, EventKind::kRelease, 0);
  run.history.events.erase(run.history.events.begin() + static_cast<std::ptrdiff_t>(i));
  const CheckResult check = rt::check_history(run.history, run.spec);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("missing release"), std::string::npos) << check.error;
}

TEST(RtChecker, RejectsOverlappingCriticalSections) {
  ValidRun run = make_valid_run(RtApp::kMutex);
  // Push the chain-first release (smallest release stamp — releases ascend
  // along the chain) past everything: its successor now acquires before the
  // predecessor released.
  Event& rel = run.history.events[nth_of_kind(run.history, EventKind::kRelease, 0)];
  rel.stamp = run.history.events.back().stamp + 1000;
  const CheckResult check = rt::check_history(run.history, run.spec);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("critical sections overlap"), std::string::npos) << check.error;
}

TEST(RtChecker, RejectsReorderedAcquires) {
  ValidRun run = make_valid_run(RtApp::kMutex);
  // Swap the stamps of the two chain-first acquires: the first request now
  // acquires after its own release.
  Event& a0 = run.history.events[nth_of_kind(run.history, EventKind::kAcquire, 0)];
  Event& a1 = run.history.events[nth_of_kind(run.history, EventKind::kAcquire, 1)];
  std::swap(a0.stamp, a1.stamp);
  const CheckResult check = rt::check_history(run.history, run.spec);
  EXPECT_FALSE(check.ok) << "swapped acquire stamps must not pass";
  EXPECT_FALSE(check.error.empty());
}

TEST(RtChecker, RejectsForkedPredecessorChain) {
  ValidRun run = make_valid_run(RtApp::kMutex);
  // Two requests recorded behind the same predecessor: the total order
  // forks, which a single queue can never produce.
  const Event& e0 = run.history.events[nth_of_kind(run.history, EventKind::kEnqueue, 0)];
  Event& e1 = run.history.events[nth_of_kind(run.history, EventKind::kEnqueue, 1)];
  e1.aux = e0.aux;
  const CheckResult check = rt::check_history(run.history, run.spec);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("same predecessor"), std::string::npos) << check.error;
}

TEST(RtChecker, RejectsCounterSkew) {
  ValidRun run = make_valid_run(RtApp::kCounter);
  Event& acq = run.history.events[nth_of_kind(run.history, EventKind::kAcquire, 0)];
  acq.aux += 7;  // a lost or doubled increment
  const CheckResult check = rt::check_history(run.history, run.spec);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("counter value"), std::string::npos) << check.error;
}

TEST(RtChecker, RejectsWrongNodeEvent) {
  ValidRun run = make_valid_run(RtApp::kMutex);
  Event& acq = run.history.events[nth_of_kind(run.history, EventKind::kAcquire, 0)];
  acq.node = static_cast<NodeId>((acq.node + 1) % run.spec.nodes);
  const CheckResult check = rt::check_history(run.history, run.spec);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("wrong node"), std::string::npos) << check.error;
}

// --- the Experiment bridge -----------------------------------------------

TEST(RtService, CrossValidatesAgainstTheSim) {
  Experiment e;
  e.protocol = ProtocolSpec::arrow_closed_loop(kTicksPerUnit / 16);
  e.topology = TopologySpec::complete(16);
  e.rounds = 5;
  e = e.with_seed(11);
  RtConfig cfg;
  cfg.threads = 2;
  const rt::RtCrossValidation cv = rt::run_rt_cross_validated(e, cfg);
  EXPECT_TRUE(cv.check.ok) << cv.check.error;
  EXPECT_EQ(cv.rt.ops, 16 * 5);
  EXPECT_EQ(cv.sim.total_requests, 16 * 5);
  EXPECT_GT(cv.rt_hops_per_op, 0.0);
  EXPECT_GT(cv.sim_hops_per_op, 0.0);
  // The loops differ (the sim re-issues on queuing completion, the runtime
  // on release), so the ratio is an O(1) sanity band, not an identity.
  EXPECT_GT(cv.hops_ratio, 0.05);
  EXPECT_LT(cv.hops_ratio, 20.0);
}

}  // namespace
}  // namespace arrowdq
