// Additional property sweeps: the Demmer-Herlihy sequential-case bounds,
// LCA distance oracles against brute force, Held-Karp on asymmetric costs,
// stabilization vs. the engine's initial state, and closed-loop vs. one-shot
// consistency.
#include <gtest/gtest.h>

#include <queue>

#include "analysis/costs.hpp"
#include "analysis/optimal.hpp"
#include "arrow/arrow.hpp"
#include "arrow/stabilize.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "graph/spanning_tree.hpp"
#include "support/random.hpp"
#include "testutil.hpp"
#include "workload/workloads.hpp"

namespace arrowdq {
namespace {

// Demmer-Herlihy (DISC 1998): in the sequential case (no two requests
// concurrently active) every queuing operation takes at most D time and at
// most D messages, D = tree diameter.
class SequentialBoundSweep : public ::testing::TestWithParam<int> {};

TEST_P(SequentialBoundSweep, EveryOperationWithinDiameter) {
  int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 97 + 11);
  Graph g;
  switch (seed % 3) {
    case 0: g = make_grid(5, 5); break;
    case 1: g = make_random_tree(24, rng); break;
    default: g = make_torus(4, 5); break;
  }
  Tree t = shortest_path_tree(g, 0);
  Weight D = t.diameter();
  Rng wrng = rng.split();
  // Gap strictly larger than D guarantees sequential execution.
  auto reqs = sequential_random(g.node_count(), 0, 15, D + 1, wrng);
  auto out = run_arrow(t, reqs);
  for (RequestId id = 1; id <= reqs.size(); ++id) {
    const auto& c = out.completion(id);
    EXPECT_LE(c.completed_at - reqs.by_id(id).time, units_to_ticks(D)) << "request " << id;
    EXPECT_LE(c.hops, t.node_count() - 1);
    EXPECT_LE(c.distance, D);
  }
  // Sequential case: arrow's order equals issue order.
  auto order = out.order();
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_EQ(order[i], static_cast<RequestId>(i));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequentialBoundSweep, ::testing::Range(0, 9));

// LCA-based tree distances must agree with BFS/Dijkstra on the tree graph.
class TreeOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(TreeOracleSweep, DistancesMatchDijkstraOnTreeGraph) {
  int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 1234);
  NodeId n = 10 + static_cast<NodeId>(rng.next_below(40));
  Graph g = make_random_tree(n, rng);
  // Randomize edge weights by rebuilding with random weights.
  Graph wg(n);
  for (const auto& e : g.edges())
    wg.add_edge(e.u, e.v, 1 + static_cast<Weight>(rng.next_below(9)));
  auto root = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
  Tree t = shortest_path_tree(wg, root);
  for (NodeId u = 0; u < n; ++u) {
    auto d = sssp(wg, u);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(t.distance(u, v), d[static_cast<std::size_t>(v)])
          << "u=" << u << " v=" << v << " n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeOracleSweep, ::testing::Range(0, 8));

// Held-Karp must handle asymmetric costs (cT / cO) correctly; brute force is
// the ground truth.
class AsymmetricDpSweep : public ::testing::TestWithParam<int> {};

TEST_P(AsymmetricDpSweep, HeldKarpMatchesBruteForceOnCt) {
  int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 5 + 2);
  Graph g = make_random_tree(12, rng);
  Tree t = shortest_path_tree(g, 0);
  Rng wrng = rng.split();
  auto reqs = poisson_uniform(12, 0, 7, 0.4 + 0.2 * (seed % 3), wrng);
  for (const CostFn& cost :
       {make_cT(tree_dist_ticks(t)), make_cO(tree_dist_ticks(t)), make_cM(tree_dist_ticks(t))}) {
    EXPECT_EQ(min_order_cost_exact(reqs, cost), min_order_cost_brute(reqs, cost));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsymmetricDpSweep, ::testing::Range(0, 6));

// After stabilization toward an anchor, the link state must equal the
// ArrowEngine's initial configuration for a request set rooted there, so
// queuing can resume as if freshly initialized.
TEST(StabilizeIntegration, RepairedStateMatchesEngineInitialState) {
  Rng rng(55);
  Tree t = testutil::grid_tree();
  const NodeId anchor = 5;

  // Corrupt arbitrarily, then repair toward the anchor.
  std::vector<NodeId> links(16), h(16);
  for (NodeId v = 0; v < 16; ++v) {
    links[static_cast<std::size_t>(v)] = static_cast<NodeId>(rng.next_below(16));
    h[static_cast<std::size_t>(v)] = static_cast<NodeId>(rng.next_below(16));
  }
  SelfStabilizer stab(t, anchor);
  auto res = stab.stabilize(links, h, 200);
  ASSERT_TRUE(res.converged);

  // The engine's initial links for root = anchor are "everyone points
  // toward the anchor".
  Tree rooted = t.rerooted(anchor);
  for (NodeId v = 0; v < 16; ++v) {
    NodeId expect = v == anchor ? v : rooted.parent(v);
    EXPECT_EQ(links[static_cast<std::size_t>(v)], expect) << "node " << v;
  }

  // And a fresh run from that configuration behaves like a normal run with
  // the anchor as root.
  auto reqs = one_shot_all(16, anchor);
  auto out = run_arrow(t, reqs);
  out.validate(reqs);
}

// Closed-loop and one-shot engines share the protocol core; a closed loop
// with one round per node on a quiet system must produce the same number of
// tree messages as the equivalent staggered one-shot (sanity link between
// the two drivers).
TEST(DriverConsistency, SequentialClosedLoopMatchesOneShotHops) {
  Tree t = testutil::path_tree(6);
  // One-shot staggered far apart: requests from nodes 1..5 sequentially.
  std::vector<std::pair<NodeId, Weight>> items;
  for (NodeId v = 1; v < 6; ++v) items.emplace_back(v, 100 * v);
  auto reqs = RequestSet::from_units(0, items);
  auto out = run_arrow(t, reqs);
  // Sequential on a path rooted at 0: request from node v travels to the
  // previous requester (v-1 for v >= 2, the root for v = 1).
  EXPECT_EQ(out.completion(1).hops, 1);
  for (RequestId id = 2; id <= 5; ++id) EXPECT_EQ(out.completion(id).hops, 1);
  EXPECT_EQ(out.total_hops(), 5);
}

// The FIFO clamp must also order messages that the latency model would
// otherwise reorder across a chain of hops (regression guard for the
// network layer under the truncated-exponential model).
TEST(NetworkChain, NoReorderingAcrossWholeChain) {
  Tree t = testutil::path_tree(8);
  // Many concurrent requests from the far end; all queue() messages share
  // edges, so any reordering would corrupt the queue (validate() catches
  // double predecessors).
  std::vector<std::pair<NodeId, Weight>> items;
  for (int i = 0; i < 30; ++i) items.emplace_back(7, 0);
  auto reqs = RequestSet::from_units(0, items);
  auto lat = make_truncated_exp(31337, 0.2);
  auto out = run_arrow(t, reqs, *lat);
  out.validate(reqs);
  // All 30 requests from node 7: exactly one paid the 7-hop walk, the rest
  // completed locally behind one another.
  EXPECT_EQ(out.total_hops(), 7);
}

}  // namespace
}  // namespace arrowdq
