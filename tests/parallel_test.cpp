// Bit-identity pins for the sharded conservative engine.
//
// The contract under test (src/sim/parallel/): for any shard count K, every
// sharded entry point reproduces its serial driver's observable outcome bit
// for bit — same completions, same makespan, same message counts, same
// exact-sum latency averages. The strongest form of that claim is replayed
// here: all 30 golden hashes from tests/golden_test.cpp, pinned against the
// original serial core, must come out of the sharded engine unchanged at
// K = 2 and K = 4. On top of the pins, randomized property runs cross
// topology x latency model x fault schedule and compare K in {1, 2, 4}
// against the serial driver field by field, the forced-lookahead-1
// lock-step fallback is exercised on the same pins, and custom partition
// bounds stress same-tick cross-shard ties at the barrier merge.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "arrow/arrow.hpp"
#include "arrow/closed_loop.hpp"
#include "baseline/centralized.hpp"
#include "baseline/pointer_forwarding.hpp"
#include "exp/experiment.hpp"
#include "graph/implicit.hpp"
#include "proto/queuing.hpp"
#include "sim/fault.hpp"
#include "sim/latency.hpp"
#include "sim/parallel/parallel.hpp"
#include "testutil.hpp"

namespace arrowdq {
namespace {

class Fnv1a {
 public:
  void add(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (x >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  void add_signed(std::int64_t x) { add(static_cast<std::uint64_t>(x)); }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

void hash_outcome(Fnv1a& h, const QueuingOutcome& out) {
  for (RequestId id : out.order()) h.add_signed(id);
  for (RequestId id = 1; id <= out.request_count(); ++id) {
    const Completion& c = out.completion(id);
    h.add_signed(c.predecessor);
    h.add_signed(c.completed_at);
    h.add_signed(c.hops);
    h.add_signed(c.distance);
  }
}

ShardSpec spec_of(int shards, Time force_lookahead = 0) {
  ShardSpec s;
  s.shards = shards;
  s.force_lookahead = force_lookahead;
  return s;
}

// The four case recipes below replicate tests/golden_test.cpp exactly —
// same instances, same latency models, same fold order — with the serial
// entry swapped for the sharded one. Each must reproduce the serial pin.

std::uint64_t sharded_arrow_case_hash(int seed, const ShardSpec& spec) {
  auto inst = testutil::make_tree_instance(seed);
  std::unique_ptr<LatencyModel> lat =
      seed % 2 ? make_uniform_async(static_cast<std::uint64_t>(seed) * 29 + 5, 0.1)
               : make_synchronous();
  const Time service = seed % 3 == 2 ? kTicksPerUnit / 8 : 0;
  ShardedArrowRun r =
      run_arrow_one_shot_sharded(inst.tree, inst.requests, *lat, service, FaultSpec{}, spec);
  r.out.validate(inst.requests);
  Fnv1a h;
  hash_outcome(h, r.out);
  for (NodeId link : r.links) h.add_signed(link);
  h.add_signed(r.sink);
  h.add(r.messages);
  h.add_signed(r.makespan);
  return h.value();
}

std::uint64_t sharded_closed_loop_case_hash(int seed, const ShardSpec& spec) {
  auto inst = testutil::make_tree_instance(seed);
  std::unique_ptr<LatencyModel> lat =
      seed % 2 ? make_truncated_exp(static_cast<std::uint64_t>(seed) * 17 + 3, 0.4)
               : make_synchronous();
  ClosedLoopConfig cfg;
  cfg.requests_per_node = 20 + seed % 7;
  cfg.service_time = seed % 3 == 0 ? 0 : kTicksPerUnit / 16;
  ClosedLoopResult res = run_arrow_closed_loop_sharded(inst.tree, *lat, cfg, spec);
  Fnv1a h;
  h.add_signed(res.makespan);
  h.add_signed(res.total_requests);
  h.add(res.tree_messages);
  h.add(res.notify_messages);
  return h.value();
}

std::uint64_t sharded_baseline_case_hash(int seed, const ShardSpec& spec) {
  auto inst = testutil::make_instance(seed);
  AllPairs apsp(inst.graph);
  auto dist = apsp_dist_fn(apsp);
  Fnv1a h;
  {
    CentralizedConfig cfg;
    cfg.center = inst.requests.root();
    cfg.service_time = seed % 2 ? kTicksPerUnit / 8 : 0;
    QueuingOutcome out =
        run_centralized_sharded(inst.graph.node_count(), inst.requests, dist, cfg, spec);
    out.validate(inst.requests);
    hash_outcome(h, out);
  }
  {
    PointerForwardingConfig cfg;
    cfg.mode = seed % 2 ? ForwardingMode::kReverseToSender : ForwardingMode::kCompressToRequester;
    cfg.initial_owner = inst.requests.root();
    QueuingOutcome out =
        run_pointer_forwarding_sharded(inst.graph.node_count(), inst.requests, dist, cfg, spec);
    out.validate(inst.requests);
    hash_outcome(h, out);
  }
  return h.value();
}

std::uint64_t sharded_forwarding_loop_case_hash(int seed, const ShardSpec& spec) {
  auto inst = testutil::make_instance(seed);
  AllPairs apsp(inst.graph);
  PointerForwardingConfig cfg;
  cfg.mode = seed % 2 ? ForwardingMode::kReverseToSender : ForwardingMode::kCompressToRequester;
  cfg.service_time = seed % 3 == 0 ? 0 : kTicksPerUnit / 16;
  cfg.initial_owner = inst.requests.root();
  ForwardingLoopResult res = run_pointer_forwarding_closed_loop_sharded(
      inst.graph.node_count(), 10 + seed % 6, apsp_dist_fn(apsp), cfg, spec);
  Fnv1a h;
  h.add_signed(res.makespan);
  h.add_signed(res.total_requests);
  h.add(res.find_messages);
  h.add(res.reply_messages);
  return h.value();
}

// Pins copied verbatim from tests/golden_test.cpp (recorded against the
// serial seed core) — the sharded engine must reproduce them unchanged.
constexpr int kArrowCases = 12;
constexpr int kLoopCases = 6;
constexpr int kBaselineCases = 6;
constexpr int kForwardLoopCases = 6;

constexpr std::uint64_t kArrowGolden[kArrowCases] = {
    0xa3ade1240818de46ULL, 0x274910a9ef0bc26cULL, 0x404b9d9836515fa4ULL,
    0xa7ebda7ee0383d5eULL, 0x53bd9a048b4452f3ULL, 0x5a18688a32ef00adULL,
    0xe6c14bbbd76a9fc6ULL, 0xbc8e13cfa33e9702ULL, 0x518c82754f88fbcbULL,
    0x67dc5498a20ecb10ULL, 0x2c56d49a5d19d2f2ULL, 0xebc3eb6f5728fafbULL,
};
constexpr std::uint64_t kLoopGolden[kLoopCases] = {
    0xa2b7a93c0f54b90dULL, 0x01a7ddb264d4e040ULL, 0xfec69f80e67ecc6bULL,
    0xc70b1c1a7415989fULL, 0x8fd7e09eb5015d8fULL, 0x1f545d89b56fe700ULL,
};
constexpr std::uint64_t kBaselineGolden[kBaselineCases] = {
    0x7d578953c5317ac1ULL, 0x67756554244e97e0ULL, 0xe4d98f25eb225b1eULL,
    0x8f7019033c6c7ccdULL, 0xf41286ee244fee07ULL, 0xe6ab23ba7db16448ULL,
};
constexpr std::uint64_t kForwardLoopGolden[kForwardLoopCases] = {
    0xa69e76166af37bffULL, 0x7a8ed0ca0849b181ULL, 0xe24b0d7463ce83a0ULL,
    0x92289a766347d17dULL, 0x6935c587a2e6cea1ULL, 0xf5f47e33a0435fb2ULL,
};

class ShardedGolden : public ::testing::TestWithParam<int> {};

TEST_P(ShardedGolden, ArrowOneShot) {
  const ShardSpec spec = spec_of(GetParam());
  for (int seed = 0; seed < kArrowCases; ++seed)
    EXPECT_EQ(sharded_arrow_case_hash(seed, spec), kArrowGolden[seed])
        << "arrow seed " << seed << " K=" << GetParam();
}

TEST_P(ShardedGolden, ArrowClosedLoop) {
  const ShardSpec spec = spec_of(GetParam());
  for (int seed = 0; seed < kLoopCases; ++seed)
    EXPECT_EQ(sharded_closed_loop_case_hash(seed, spec), kLoopGolden[seed])
        << "closed-loop seed " << seed << " K=" << GetParam();
}

TEST_P(ShardedGolden, Baselines) {
  const ShardSpec spec = spec_of(GetParam());
  for (int seed = 0; seed < kBaselineCases; ++seed)
    EXPECT_EQ(sharded_baseline_case_hash(seed, spec), kBaselineGolden[seed])
        << "baseline seed " << seed << " K=" << GetParam();
}

TEST_P(ShardedGolden, PointerForwardingClosedLoop) {
  const ShardSpec spec = spec_of(GetParam());
  for (int seed = 0; seed < kForwardLoopCases; ++seed)
    EXPECT_EQ(sharded_forwarding_loop_case_hash(seed, spec), kForwardLoopGolden[seed])
        << "forwarding-loop seed " << seed << " K=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedGolden, ::testing::Values(2, 4),
                         [](const auto& info) { return "K" + std::to_string(info.param); });

// Forcing lookahead 1 degenerates every window to a single tick — the
// fallback for models whose latency floor the engine cannot bound above
// zero. The merge machinery then runs at maximum barrier frequency and must
// still reproduce the pins.
TEST(ShardedLockstep, ForcedLookaheadOneReproducesGoldens) {
  const ShardSpec spec = spec_of(4, /*force_lookahead=*/1);
  for (int seed : {0, 1, 5}) {
    EXPECT_EQ(sharded_arrow_case_hash(seed, spec), kArrowGolden[seed]) << "arrow seed " << seed;
    EXPECT_EQ(sharded_closed_loop_case_hash(seed, spec), kLoopGolden[seed])
        << "closed-loop seed " << seed;
  }
  EXPECT_EQ(sharded_baseline_case_hash(2, spec), kBaselineGolden[2]);
  EXPECT_EQ(sharded_forwarding_loop_case_hash(3, spec), kForwardLoopGolden[3]);
}

// A synchronous one-shot burst on a path makes *every* message between the
// two halves land on the same ticks: the barrier merge sees cross-shard
// entries tied on time every window and must order them by the serial
// (parent seq, call index) key. Lopsided explicit bounds move the cut so
// ties cross at different tree depths.
TEST(ShardedDeterminism, SameTickCrossShardTies) {
  const Tree tree = testutil::path_tree(32, /*root=*/0);
  const RequestSet burst = one_shot_all(32, 0);
  auto reference_hash = [&]() {
    auto lat = make_synchronous();
    ArrowEngine engine(tree, *lat);
    QueuingOutcome out = engine.run(burst);
    Fnv1a h;
    hash_outcome(h, out);
    for (NodeId link : engine.links()) h.add_signed(link);
    h.add_signed(engine.sink_node());
    h.add(engine.messages_sent());
    h.add_signed(engine.sim().now());
    return h.value();
  }();
  const std::vector<std::vector<NodeId>> partitions = {
      {0, 16, 32}, {0, 1, 32}, {0, 31, 32}, {0, 5, 11, 23, 32}, {0, 8, 16, 24, 32}};
  for (const auto& bounds : partitions) {
    ShardSpec spec;
    spec.shards = static_cast<int>(bounds.size()) - 1;
    spec.bounds = bounds;
    auto lat = make_synchronous();
    ShardedArrowRun r = run_arrow_one_shot_sharded(tree, burst, *lat, 0, FaultSpec{}, spec);
    Fnv1a h;
    hash_outcome(h, r.out);
    for (NodeId link : r.links) h.add_signed(link);
    h.add_signed(r.sink);
    h.add(r.messages);
    h.add_signed(r.makespan);
    EXPECT_EQ(h.value(), reference_hash) << "bounds[1]=" << bounds[1];
  }
}

void expect_loop_results_equal(const ClosedLoopResult& a, const ClosedLoopResult& b,
                               const char* what, int k) {
  EXPECT_EQ(a.makespan, b.makespan) << what << " K=" << k;
  EXPECT_EQ(a.total_requests, b.total_requests) << what << " K=" << k;
  EXPECT_EQ(a.tree_messages, b.tree_messages) << what << " K=" << k;
  EXPECT_EQ(a.notify_messages, b.notify_messages) << what << " K=" << k;
  EXPECT_EQ(a.avg_hops_per_request, b.avg_hops_per_request) << what << " K=" << k;
  EXPECT_EQ(a.avg_round_latency_units, b.avg_round_latency_units) << what << " K=" << k;
  EXPECT_EQ(a.messages_dropped, b.messages_dropped) << what << " K=" << k;
  EXPECT_EQ(a.messages_duplicated, b.messages_duplicated) << what << " K=" << k;
}

// Randomized equivalence sweep: topology x latency model x message-fault
// schedule, serial closed loop vs sharded at K in {1, 2, 4}. Every field is
// compared exactly, including the two doubles — exact integer latency sums
// make even the averages bit-identical.
TEST(ShardedEquivalence, ClosedLoopUnderMessageFaults) {
  const FaultSpec faults[] = {
      FaultSpec::none(),          FaultSpec::loss(0.08),
      FaultSpec::duplicate(0.1),  FaultSpec::jitter(0.2, 1.5),
      FaultSpec::spike(0.15, 4.0), FaultSpec::chaos().without_crash(),
  };
  for (int seed = 0; seed < 6; ++seed) {
    auto inst = testutil::make_tree_instance(seed * 7 + 1);
    ClosedLoopConfig cfg;
    cfg.requests_per_node = 6 + seed % 4;
    cfg.service_time = seed % 2 ? kTicksPerUnit / 16 : 0;
    cfg.fault = faults[seed % 6];
    cfg.fault.seed = static_cast<std::uint64_t>(seed) * 101 + 7;
    auto make_lat = [&]() -> std::unique_ptr<LatencyModel> {
      switch (seed % 3) {
        case 0: return make_synchronous();
        case 1: return make_uniform_async(static_cast<std::uint64_t>(seed) * 31 + 11, 0.25);
        default: return make_truncated_exp(static_cast<std::uint64_t>(seed) * 13 + 5, 0.5);
      }
    };
    auto serial_lat = make_lat();
    const ClosedLoopResult serial = run_arrow_closed_loop(inst.tree, *serial_lat, cfg);
    for (int k : {1, 2, 4}) {
      auto lat = make_lat();
      ParallelStats stats;
      const ClosedLoopResult sharded =
          run_arrow_closed_loop_sharded(inst.tree, *lat, cfg, spec_of(k), &stats);
      expect_loop_results_equal(serial, sharded, "closed loop", k);
      EXPECT_GE(stats.lookahead, 1) << "K=" << k;
      EXPECT_GE(stats.windows, 1u) << "K=" << k;
      EXPECT_GT(stats.events_executed, 0u) << "K=" << k;
    }
  }
}

// The implicit (million-node) tier through the sharded engine: every
// closed-form family, serial CompactSimulator driver vs sharded lanes.
TEST(ShardedEquivalence, ImplicitClosedLoopAllFamilies) {
  const ImplicitTopology topos[] = {
      {ImplicitFamily::kComplete, 48, 0, 0, /*root=*/3, false},
      {ImplicitFamily::kComplete, 64, 0, 0, /*root=*/0, /*balanced_binary=*/true},
      {ImplicitFamily::kPath, 200, 0, 0, /*root=*/7, false},
      {ImplicitFamily::kRing, 151, 0, 0, /*root=*/20, false},
      {ImplicitFamily::kGrid, 12 * 13, 12, 13, /*root=*/5, false},
      {ImplicitFamily::kTorus, 9 * 11, 9, 11, /*root=*/0, false},
      {ImplicitFamily::kHypercube, 128, 0, 0, /*root=*/0, false},
  };
  int seed = 0;
  for (const auto& topo : topos) {
    ClosedLoopConfig cfg;
    cfg.requests_per_node = 3;
    cfg.service_time = seed % 2 ? kTicksPerUnit / 16 : 0;
    if (seed % 3 == 2) cfg.fault = FaultSpec::duplicate(0.05);
    auto make_lat = [&]() -> std::unique_ptr<LatencyModel> {
      return seed % 2 ? make_truncated_exp(static_cast<std::uint64_t>(seed) * 19 + 3, 0.4)
                      : std::unique_ptr<LatencyModel>(make_synchronous());
    };
    auto serial_lat = make_lat();
    const ClosedLoopResult serial = run_arrow_closed_loop_implicit(topo, *serial_lat, cfg);
    for (int k : {1, 2, 4}) {
      auto lat = make_lat();
      const ClosedLoopResult sharded =
          run_arrow_closed_loop_implicit_sharded(topo, *lat, cfg, spec_of(k));
      expect_loop_results_equal(serial, sharded, "implicit", k);
    }
    ++seed;
  }
}

// One-shot arrow under message faults: the outcome (every completion
// record), pointer state, sink, message count, and makespan must all match
// the serial engine run with the same schedule.
TEST(ShardedEquivalence, ArrowOneShotUnderMessageFaults) {
  const FaultSpec faults[] = {
      FaultSpec::loss(0.1),
      FaultSpec::duplicate(0.15),
      FaultSpec::jitter(0.25, 2.0),
      FaultSpec::chaos().without_crash(),
  };
  for (int seed = 0; seed < 8; ++seed) {
    auto inst = testutil::make_tree_instance(seed * 5 + 2);
    FaultSpec fault = faults[seed % 4];
    fault.seed = static_cast<std::uint64_t>(seed) * 73 + 19;
    const Time service = seed % 2 ? kTicksPerUnit / 8 : 0;
    auto make_lat = [&]() -> std::unique_ptr<LatencyModel> {
      return seed % 2 ? make_uniform_async(static_cast<std::uint64_t>(seed) * 41 + 9, 0.2)
                      : std::unique_ptr<LatencyModel>(make_synchronous());
    };
    auto serial_hash = [&]() {
      auto lat = make_lat();
      ArrowEngine engine(inst.tree, *lat);
      engine.set_service_time(service);
      engine.set_fault(fault);
      QueuingOutcome out = engine.run(inst.requests);
      Fnv1a h;
      hash_outcome(h, out);
      for (NodeId link : engine.links()) h.add_signed(link);
      h.add_signed(engine.sink_node());
      h.add(engine.messages_sent());
      h.add_signed(engine.sim().now());
      return h.value();
    }();
    for (int k : {1, 2, 4}) {
      auto lat = make_lat();
      ShardedArrowRun r =
          run_arrow_one_shot_sharded(inst.tree, inst.requests, *lat, service, fault, spec_of(k));
      Fnv1a h;
      hash_outcome(h, r.out);
      for (NodeId link : r.links) h.add_signed(link);
      h.add_signed(r.sink);
      h.add(r.messages);
      h.add_signed(r.makespan);
      EXPECT_EQ(h.value(), serial_hash) << "seed " << seed << " K=" << k;
    }
  }
}

// Forwarding closed loop under message faults, all fields exact.
TEST(ShardedEquivalence, ForwardingLoopUnderMessageFaults) {
  for (int seed = 0; seed < 6; ++seed) {
    auto inst = testutil::make_instance(seed * 3 + 1);
    AllPairs apsp(inst.graph);
    auto dist = apsp_dist_fn(apsp);
    PointerForwardingConfig cfg;
    cfg.mode = seed % 2 ? ForwardingMode::kReverseToSender : ForwardingMode::kCompressToRequester;
    cfg.service_time = seed % 3 == 0 ? 0 : kTicksPerUnit / 16;
    cfg.initial_owner = inst.requests.root();
    if (seed % 2) {
      cfg.fault = FaultSpec::jitter(0.3, 1.0);
      cfg.fault.seed = static_cast<std::uint64_t>(seed) * 57 + 1;
    }
    const std::int64_t rounds = 4 + seed % 3;
    const ForwardingLoopResult serial =
        run_pointer_forwarding_closed_loop(inst.graph.node_count(), rounds, dist, cfg);
    for (int k : {1, 2, 4}) {
      const ForwardingLoopResult sharded = run_pointer_forwarding_closed_loop_sharded(
          inst.graph.node_count(), rounds, dist, cfg, spec_of(k));
      EXPECT_EQ(serial.makespan, sharded.makespan) << "seed " << seed << " K=" << k;
      EXPECT_EQ(serial.total_requests, sharded.total_requests) << "seed " << seed << " K=" << k;
      EXPECT_EQ(serial.find_messages, sharded.find_messages) << "seed " << seed << " K=" << k;
      EXPECT_EQ(serial.reply_messages, sharded.reply_messages) << "seed " << seed << " K=" << k;
      EXPECT_EQ(serial.avg_hops_per_request, sharded.avg_hops_per_request)
          << "seed " << seed << " K=" << k;
      EXPECT_EQ(serial.avg_round_latency_units, sharded.avg_round_latency_units)
          << "seed " << seed << " K=" << k;
      EXPECT_EQ(serial.messages_dropped, sharded.messages_dropped) << "seed " << seed << " K=" << k;
      EXPECT_EQ(serial.messages_duplicated, sharded.messages_duplicated)
          << "seed " << seed << " K=" << k;
    }
  }
}

// More shards than nodes: the partition clamps K to n (no empty lanes) and
// the run still reproduces the serial pin.
TEST(ShardedDeterminism, ShardCountExceedingNodesClamps) {
  EXPECT_EQ(sharded_arrow_case_hash(0, spec_of(64)), kArrowGolden[0]);
  EXPECT_EQ(sharded_closed_loop_case_hash(0, spec_of(64)), kLoopGolden[0]);
}

// Experiment::shards routes kArrowClosedLoop through the sharded engine —
// both the materialized and implicit tiers — with identical RunResults, and
// validate_experiment rejects the combinations the engine cannot run.
TEST(ShardedExperiment, RegistryRoutingAndValidation) {
  Experiment base;
  base.protocol = ProtocolSpec::arrow_closed_loop(kTicksPerUnit / 16);
  base.latency = LatencySpec::uniform_async(/*seed=*/11, 0.2);
  base.rounds = 5;
  for (TopologySpec topo :
       {TopologySpec::complete(80), TopologySpec::random_tree(64, /*seed=*/9)}) {
    Experiment e = base;
    e.topology = topo;
    RunResult serial = run_experiment(e);
    e.shards = 4;
    EXPECT_EQ(validate_experiment(e), std::nullopt);
    RunResult sharded = run_experiment(e);
    EXPECT_EQ(serial.makespan, sharded.makespan) << topo.family_name();
    EXPECT_EQ(serial.total_requests, sharded.total_requests) << topo.family_name();
    EXPECT_EQ(serial.messages, sharded.messages) << topo.family_name();
    EXPECT_EQ(serial.total_hops, sharded.total_hops) << topo.family_name();
    EXPECT_EQ(serial.avg_hops_per_request, sharded.avg_hops_per_request) << topo.family_name();
    EXPECT_EQ(serial.avg_round_latency_units, sharded.avg_round_latency_units)
        << topo.family_name();
  }
  {
    // CLI "centralized" is always closed-loop; its reply loop has no
    // sharded mirror, so shards > 1 stays a validation error there.
    Experiment e = base;
    e.topology = TopologySpec::complete(32);
    e.protocol = ProtocolSpec::centralized(0);
    e.shards = 2;
    EXPECT_NE(validate_experiment(e), std::nullopt) << "unwired protocol must be rejected";
  }
  {
    Experiment e = base;
    e.topology = TopologySpec::complete(32);
    e.fault = FaultSpec::crash(2);
    e.shards = 2;
    EXPECT_NE(validate_experiment(e), std::nullopt) << "crash schedule must be rejected";
  }
  {
    Experiment e = base;
    e.topology = TopologySpec::complete(32);
    e.protocol = ProtocolSpec::token_passing();
    e.shards = 2;
    EXPECT_NE(validate_experiment(e), std::nullopt)
        << "token passing replays an analytic order — inherently serial";
  }
}

// Every mirror wired through Experiment::shards beyond the original
// arrow-closed-loop path: one-shot arrow, centralized one-shot (rounds = 0),
// and pointer forwarding in both modes and both loop shapes. Each must be
// field-by-field identical to its serial run at K in {2, 4}.
TEST(ShardedExperiment, NewlyWiredMirrorsMatchSerial) {
  auto expect_match = [](Experiment e, const char* what) {
    e = e.with_seed(23);
    const RunResult serial = run_experiment(e);
    for (int k : {2, 4}) {
      Experiment sharded_e = e;
      sharded_e.shards = k;
      EXPECT_EQ(validate_experiment(sharded_e), std::nullopt) << what;
      const RunResult sharded = run_experiment(sharded_e);
      EXPECT_EQ(serial.makespan, sharded.makespan) << what << " K=" << k;
      EXPECT_EQ(serial.total_requests, sharded.total_requests) << what << " K=" << k;
      EXPECT_EQ(serial.messages, sharded.messages) << what << " K=" << k;
      EXPECT_EQ(serial.total_hops, sharded.total_hops) << what << " K=" << k;
      EXPECT_EQ(serial.avg_hops_per_request, sharded.avg_hops_per_request)
          << what << " K=" << k;
      EXPECT_EQ(serial.avg_round_latency_units, sharded.avg_round_latency_units)
          << what << " K=" << k;
      EXPECT_EQ(serial.messages_dropped, sharded.messages_dropped) << what << " K=" << k;
    }
  };

  Experiment arrow_os;
  arrow_os.protocol = ProtocolSpec::arrow_one_shot(kTicksPerUnit / 16);
  arrow_os.topology = TopologySpec::random_tree(48, /*seed=*/3);
  arrow_os.latency = LatencySpec::uniform_async(/*seed=*/7, 0.2);
  arrow_os.workload = WorkloadSpec::poisson(40, 0.5, /*seed=*/0);
  expect_match(arrow_os, "arrow one-shot");

  Experiment arrow_faulty = arrow_os;
  arrow_faulty.fault = FaultSpec::loss(0.1);
  expect_match(arrow_faulty, "arrow one-shot + message loss");

  Experiment central_os;
  central_os.protocol = ProtocolSpec::centralized(0, kTicksPerUnit / 16);
  central_os.topology = TopologySpec::complete(40);
  central_os.latency = LatencySpec::uniform_async(/*seed=*/5, 0.2);
  central_os.workload = WorkloadSpec::poisson(30, 0.5, /*seed=*/0);
  expect_match(central_os, "centralized one-shot");

  for (ForwardingMode mode :
       {ForwardingMode::kCompressToRequester, ForwardingMode::kReverseToSender}) {
    Experiment fwd_os;
    fwd_os.protocol = ProtocolSpec::pointer_forwarding(mode, kTicksPerUnit / 16);
    fwd_os.topology = TopologySpec::complete(40);
    fwd_os.latency = LatencySpec::uniform_async(/*seed=*/9, 0.2);
    fwd_os.workload = WorkloadSpec::poisson(30, 0.5, /*seed=*/0);
    expect_match(fwd_os, mode == ForwardingMode::kCompressToRequester
                             ? "forwarding one-shot (compress)"
                             : "forwarding one-shot (reverse)");

    Experiment fwd_loop = fwd_os;
    fwd_loop.workload = WorkloadSpec::one_shot_all();
    fwd_loop.rounds = 6;
    expect_match(fwd_loop, mode == ForwardingMode::kCompressToRequester
                               ? "forwarding closed loop (compress)"
                               : "forwarding closed loop (reverse)");
  }
}

}  // namespace
}  // namespace arrowdq
