// The message-driven token simulation must agree exactly with the analytic
// mutex/counter layers in the synchronous model, and bound them under
// asynchronous delivery.
#include <gtest/gtest.h>

#include "apps/counter.hpp"
#include "apps/mutex.hpp"
#include "apps/token_sim.hpp"
#include "arrow/arrow.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "sim/latency.hpp"
#include "support/random.hpp"
#include "workload/workloads.hpp"

namespace arrowdq {
namespace {

class TokenSimSweep : public ::testing::TestWithParam<int> {};

TEST_P(TokenSimSweep, SynchronousSimulationMatchesAnalyticMutex) {
  int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 17 + 1);
  Graph g = (seed % 2 == 0) ? make_grid(4, 4) : make_random_tree(18, rng);
  Tree t = shortest_path_tree(g, 0);
  Rng wrng = rng.split();
  auto reqs = poisson_uniform(g.node_count(), 0, 20, 0.7, wrng);
  auto outcome = run_arrow(t, reqs);

  const Time hold = units_to_ticks(2);
  auto analytic = mutex_from_outcome(t, reqs, outcome, hold);
  SynchronousLatency sync;
  auto simulated = simulate_token_passing(t, reqs, outcome, hold, sync);

  for (RequestId id = 1; id <= reqs.size(); ++id) {
    EXPECT_EQ(simulated.granted[static_cast<std::size_t>(id)],
              analytic.acquire[static_cast<std::size_t>(id)])
        << "request " << id << " seed " << seed;
  }
  EXPECT_EQ(simulated.token_travel, analytic.token_travel);
  EXPECT_EQ(simulated.makespan, analytic.makespan);
}

TEST_P(TokenSimSweep, AsyncTokenNeverSlowerThanAnalyticBound) {
  // With message delays <= 1 unit per unit weight, every hop is at most as
  // slow as synchronous, so grants can only be earlier.
  int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 23 + 9);
  Graph g = make_grid(4, 5);
  Tree t = shortest_path_tree(g, 0);
  Rng wrng = rng.split();
  auto reqs = poisson_uniform(20, 0, 15, 0.5, wrng);
  auto outcome = run_arrow(t, reqs);

  const Time hold = units_to_ticks(1);
  auto analytic = mutex_from_outcome(t, reqs, outcome, hold);
  auto lat = make_uniform_async(static_cast<std::uint64_t>(seed) + 5, 0.1);
  auto simulated = simulate_token_passing(t, reqs, outcome, hold, *lat);

  for (RequestId id = 1; id <= reqs.size(); ++id) {
    EXPECT_LE(simulated.granted[static_cast<std::size_t>(id)],
              analytic.acquire[static_cast<std::size_t>(id)])
        << "request " << id;
    EXPECT_NE(simulated.granted[static_cast<std::size_t>(id)], kTimeNever);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenSimSweep, ::testing::Range(0, 8));

TEST(TokenSim, MessageCountEqualsHopCountOfTravel) {
  Graph g = make_path(6);
  Tree t = shortest_path_tree(g, 0);
  auto reqs = RequestSet::from_units(0, {{5, 0}, {2, 30}});
  auto outcome = run_arrow(t, reqs);
  SynchronousLatency sync;
  auto sim = simulate_token_passing(t, reqs, outcome, 0, sync);
  // Token: 0 -> 5 (5 hops) -> 2 (3 hops) on a unit-weight path.
  EXPECT_EQ(sim.token_messages, 8u);
  EXPECT_EQ(sim.token_travel, 8);
}

TEST(TokenSim, RepeatedRequestsHandOffLocally) {
  Graph g = make_path(4);
  Tree t = shortest_path_tree(g, 0);
  auto reqs = RequestSet::from_units(0, {{3, 0}, {3, 1}, {3, 2}});
  auto outcome = run_arrow(t, reqs);
  SynchronousLatency sync;
  auto sim = simulate_token_passing(t, reqs, outcome, units_to_ticks(1), sync);
  // One 3-hop trip, then two local handoffs.
  EXPECT_EQ(sim.token_travel, 3);
  for (RequestId id = 1; id <= 3; ++id)
    EXPECT_NE(sim.granted[static_cast<std::size_t>(id)], kTimeNever);
}

}  // namespace
}  // namespace arrowdq
