// Golden determinism pins for the event core.
//
// Each case runs a seeded (tree, schedule, latency) instance through the
// full simulation stack and folds the complete observable outcome — the
// total order, every completion record (predecessor, completion time, hops,
// weighted distance), the post-run pointer state and sink — into one 64-bit
// FNV-1a hash, pinned below. The pins were recorded against the original
// std::priority_queue + std::function core, so any event-core rewrite that
// perturbs tie-breaking, FIFO clamping, or service-time serialization by
// even one tick flips a hash and fails loudly.
//
// Regenerate (only when an *intentional* behavior change is made): run with
// --gtest_also_run_disabled_tests and copy the table printed by
// DISABLED_PrintActualHashes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "arrow/arrow.hpp"
#include "arrow/closed_loop.hpp"
#include "baseline/centralized.hpp"
#include "baseline/pointer_forwarding.hpp"
#include "proto/queuing.hpp"
#include "sim/latency.hpp"
#include "testutil.hpp"

namespace arrowdq {
namespace {

class Fnv1a {
 public:
  void add(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (x >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  void add_signed(std::int64_t x) { add(static_cast<std::uint64_t>(x)); }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

void hash_outcome(Fnv1a& h, const QueuingOutcome& out) {
  for (RequestId id : out.order()) h.add_signed(id);
  for (RequestId id = 1; id <= out.request_count(); ++id) {
    const Completion& c = out.completion(id);
    h.add_signed(c.predecessor);
    h.add_signed(c.completed_at);
    h.add_signed(c.hops);
    h.add_signed(c.distance);
  }
}

/// Arrow one-shot on a seeded instance; odd seeds use an async latency
/// model (exercising the per-edge FIFO clamp), seeds 2 mod 3 add a serial
/// service time (exercising the busy-until chain).
std::uint64_t arrow_case_hash(int seed) {
  auto inst = testutil::make_tree_instance(seed);
  std::unique_ptr<LatencyModel> lat =
      seed % 2 ? make_uniform_async(static_cast<std::uint64_t>(seed) * 29 + 5, 0.1)
               : make_synchronous();
  ArrowEngine engine(inst.tree, *lat);
  if (seed % 3 == 2) engine.set_service_time(kTicksPerUnit / 8);
  QueuingOutcome out = engine.run(inst.requests);
  out.validate(inst.requests);
  Fnv1a h;
  hash_outcome(h, out);
  for (NodeId link : engine.links()) h.add_signed(link);
  h.add_signed(engine.sink_node());
  h.add(engine.messages_sent());
  h.add_signed(engine.sim().now());
  return h.value();
}

/// Closed-loop arrow (Figure 10 driver): service time and an async model so
/// both the FIFO clamp and the two-phase service path are on the hot path.
std::uint64_t closed_loop_case_hash(int seed) {
  auto inst = testutil::make_tree_instance(seed);
  std::unique_ptr<LatencyModel> lat =
      seed % 2 ? make_truncated_exp(static_cast<std::uint64_t>(seed) * 17 + 3, 0.4)
               : make_synchronous();
  ClosedLoopConfig cfg;
  cfg.requests_per_node = 20 + seed % 7;
  cfg.service_time = seed % 3 == 0 ? 0 : kTicksPerUnit / 16;
  ClosedLoopResult res = run_arrow_closed_loop(inst.tree, *lat, cfg);
  Fnv1a h;
  h.add_signed(res.makespan);
  h.add_signed(res.total_requests);
  h.add(res.tree_messages);
  h.add(res.notify_messages);
  return h.value();
}

/// Baselines share the Simulator/Network core via send_with_latency.
std::uint64_t baseline_case_hash(int seed) {
  auto inst = testutil::make_instance(seed);
  AllPairs apsp(inst.graph);
  auto dist = apsp_dist_fn(apsp);
  Fnv1a h;
  {
    CentralizedConfig cfg;
    cfg.center = inst.requests.root();
    cfg.service_time = seed % 2 ? kTicksPerUnit / 8 : 0;
    QueuingOutcome out = run_centralized(inst.graph.node_count(), inst.requests, dist, cfg);
    out.validate(inst.requests);
    hash_outcome(h, out);
  }
  {
    PointerForwardingConfig cfg;
    cfg.mode = seed % 2 ? ForwardingMode::kReverseToSender : ForwardingMode::kCompressToRequester;
    cfg.initial_owner = inst.requests.root();
    QueuingOutcome out =
        run_pointer_forwarding(inst.graph.node_count(), inst.requests, dist, cfg);
    out.validate(inst.requests);
    hash_outcome(h, out);
  }
  return h.value();
}

/// Closed-loop pointer forwarding (PR 5's find-completion reply driver):
/// seeded graphs with APSP latencies, both pointer-update rules, with and
/// without a serial service time.
std::uint64_t forwarding_loop_case_hash(int seed) {
  auto inst = testutil::make_instance(seed);
  AllPairs apsp(inst.graph);
  PointerForwardingConfig cfg;
  cfg.mode = seed % 2 ? ForwardingMode::kReverseToSender : ForwardingMode::kCompressToRequester;
  cfg.service_time = seed % 3 == 0 ? 0 : kTicksPerUnit / 16;
  cfg.initial_owner = inst.requests.root();
  ForwardingLoopResult res = run_pointer_forwarding_closed_loop(
      inst.graph.node_count(), 10 + seed % 6, apsp_dist_fn(apsp), cfg);
  Fnv1a h;
  h.add_signed(res.makespan);
  h.add_signed(res.total_requests);
  h.add(res.find_messages);
  h.add(res.reply_messages);
  return h.value();
}

constexpr int kArrowCases = 12;
constexpr int kLoopCases = 6;
constexpr int kBaselineCases = 6;
constexpr int kForwardLoopCases = 6;

// Pinned against the seed core (PR 1, commit ca30709).
constexpr std::uint64_t kArrowGolden[kArrowCases] = {
    0xa3ade1240818de46ULL, 0x274910a9ef0bc26cULL, 0x404b9d9836515fa4ULL,
    0xa7ebda7ee0383d5eULL, 0x53bd9a048b4452f3ULL, 0x5a18688a32ef00adULL,
    0xe6c14bbbd76a9fc6ULL, 0xbc8e13cfa33e9702ULL, 0x518c82754f88fbcbULL,
    0x67dc5498a20ecb10ULL, 0x2c56d49a5d19d2f2ULL, 0xebc3eb6f5728fafbULL,
};
constexpr std::uint64_t kLoopGolden[kLoopCases] = {
    0xa2b7a93c0f54b90dULL, 0x01a7ddb264d4e040ULL, 0xfec69f80e67ecc6bULL,
    0xc70b1c1a7415989fULL, 0x8fd7e09eb5015d8fULL, 0x1f545d89b56fe700ULL,
};
constexpr std::uint64_t kBaselineGolden[kBaselineCases] = {
    0x7d578953c5317ac1ULL, 0x67756554244e97e0ULL, 0xe4d98f25eb225b1eULL,
    0x8f7019033c6c7ccdULL, 0xf41286ee244fee07ULL, 0xe6ab23ba7db16448ULL,
};
// Pinned against the initial closed-loop forwarding driver (PR 5).
constexpr std::uint64_t kForwardLoopGolden[kForwardLoopCases] = {
    0xa69e76166af37bffULL, 0x7a8ed0ca0849b181ULL, 0xe24b0d7463ce83a0ULL,
    0x92289a766347d17dULL, 0x6935c587a2e6cea1ULL, 0xf5f47e33a0435fb2ULL,
};

TEST(GoldenDeterminism, ArrowOneShot) {
  for (int seed = 0; seed < kArrowCases; ++seed)
    EXPECT_EQ(arrow_case_hash(seed), kArrowGolden[seed]) << "arrow seed " << seed;
}

TEST(GoldenDeterminism, ArrowClosedLoop) {
  for (int seed = 0; seed < kLoopCases; ++seed)
    EXPECT_EQ(closed_loop_case_hash(seed), kLoopGolden[seed]) << "closed-loop seed " << seed;
}

TEST(GoldenDeterminism, Baselines) {
  for (int seed = 0; seed < kBaselineCases; ++seed)
    EXPECT_EQ(baseline_case_hash(seed), kBaselineGolden[seed]) << "baseline seed " << seed;
}

TEST(GoldenDeterminism, PointerForwardingClosedLoop) {
  for (int seed = 0; seed < kForwardLoopCases; ++seed)
    EXPECT_EQ(forwarding_loop_case_hash(seed), kForwardLoopGolden[seed])
        << "forwarding-loop seed " << seed;
}

// The closed-loop forwarding driver at one request per node with free local
// processing is exactly the one-shot burst: same request count, same number
// of pointer-chase hops (the property property_arrow_test.cpp pins for the
// arrow closed loop). The replies ride outside the find dynamics, so they
// must not perturb the chase.
TEST(GoldenDeterminism, ForwardingClosedLoopOneRoundMatchesOneShot) {
  for (int seed = 0; seed < 10; ++seed) {
    auto inst = testutil::make_instance(seed);
    const NodeId n = inst.graph.node_count();
    const NodeId owner = inst.requests.root();
    AllPairs apsp(inst.graph);
    auto dist = apsp_dist_fn(apsp);
    for (auto mode : {ForwardingMode::kCompressToRequester, ForwardingMode::kReverseToSender}) {
      PointerForwardingConfig cfg;
      cfg.mode = mode;
      cfg.initial_owner = owner;
      ForwardingLoopResult loop = run_pointer_forwarding_closed_loop(n, 1, dist, cfg);

      RequestSet burst = one_shot_all(n, owner);
      QueuingOutcome out = run_pointer_forwarding(n, burst, dist, cfg);

      EXPECT_EQ(loop.total_requests, static_cast<std::int64_t>(n)) << "seed " << seed;
      EXPECT_EQ(loop.find_messages, static_cast<std::uint64_t>(out.total_hops()))
          << "seed " << seed << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(GoldenDeterminism, DISABLED_PrintActualHashes) {
  std::printf("kArrowGolden:\n");
  for (int s = 0; s < kArrowCases; ++s) std::printf("0x%016llxULL,\n", (unsigned long long)arrow_case_hash(s));
  std::printf("kLoopGolden:\n");
  for (int s = 0; s < kLoopCases; ++s) std::printf("0x%016llxULL,\n", (unsigned long long)closed_loop_case_hash(s));
  std::printf("kBaselineGolden:\n");
  for (int s = 0; s < kBaselineCases; ++s) std::printf("0x%016llxULL,\n", (unsigned long long)baseline_case_hash(s));
  std::printf("kForwardLoopGolden:\n");
  for (int s = 0; s < kForwardLoopCases; ++s) std::printf("0x%016llxULL,\n", (unsigned long long)forwarding_loop_case_hash(s));
}

}  // namespace
}  // namespace arrowdq
