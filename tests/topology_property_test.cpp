// Seeded randomized invariants for the torus / hypercube / geometric
// topology families behind TopologySpec (PR 5's new sweep axis).
//
// Each family is checked both at the generator level (structure: degree
// regularity, connectivity, edge-weight symmetry, closed-form distances
// spot-checked against APSP) and at the TopologySpec level (value-object
// determinism: the same spec materializes bit-identical graphs, distinct
// seeds materialize distinct geometric graphs, family names round-trip).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>

#include "exp/experiment.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "testutil.hpp"

namespace arrowdq {
namespace {

void expect_graphs_identical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i].u, b.edges()[i].u) << i;
    EXPECT_EQ(a.edges()[i].v, b.edges()[i].v) << i;
    EXPECT_EQ(a.edges()[i].weight, b.edges()[i].weight) << i;
  }
}

// --- torus ------------------------------------------------------------------

class TorusProperty : public ::testing::TestWithParam<int> {};

TEST_P(TorusProperty, RegularConnectedAndDistancesMatchApsp) {
  Rng rng = testutil::seeded_rng(GetParam(), /*salt=*/0x7021);
  const NodeId rows = 3 + static_cast<NodeId>(rng.next_below(6));
  const NodeId cols = 3 + static_cast<NodeId>(rng.next_below(7));
  const Graph g = TopologySpec::torus(rows, cols).build_graph();
  const NodeId n = rows * cols;

  ASSERT_EQ(g.node_count(), n);
  // Every node has exactly the four wraparound mesh neighbours, so the edge
  // count is 2 per node.
  EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(2) * static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), 4) << "node " << v;
  EXPECT_TRUE(g.is_connected());

  // Unit weights: dG((r1,c1),(r2,c2)) = wrapped row offset + wrapped column
  // offset. Spot-check random pairs against Dijkstra's answer.
  AllPairs apsp(g);
  auto wrapped = [](NodeId a, NodeId b, NodeId extent) {
    NodeId d = a > b ? a - b : b - a;
    return std::min(d, extent - d);
  };
  for (int check = 0; check < 64; ++check) {
    auto u = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    auto v = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    const Weight want = wrapped(u / cols, v / cols, rows) + wrapped(u % cols, v % cols, cols);
    EXPECT_EQ(apsp.dist(u, v), want) << rows << "x" << cols << " pair " << u << "," << v;
  }
  // The torus diameter is achieved at the maximal wrap on both axes.
  EXPECT_EQ(apsp.diameter(), static_cast<Weight>(rows / 2 + cols / 2));
}

INSTANTIATE_TEST_SUITE_P(RandomDims, TorusProperty, ::testing::Range(0, 12));

// --- hypercube --------------------------------------------------------------

class HypercubeProperty : public ::testing::TestWithParam<int> {};

TEST_P(HypercubeProperty, RegularDiameterLogNAndHammingDistances) {
  const int d = 1 + GetParam();  // dimensions 1..8
  const TopologySpec spec = TopologySpec::hypercube(d);
  const Graph g = spec.build_graph();
  const auto n = static_cast<NodeId>(NodeId{1} << d);

  ASSERT_EQ(spec.nodes, n);
  ASSERT_EQ(g.node_count(), n);
  // d-regular with d * 2^(d-1) edges.
  EXPECT_EQ(g.edge_count(),
            static_cast<std::size_t>(d) * (static_cast<std::size_t>(n) / 2));
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), d) << "node " << v;
  EXPECT_TRUE(g.is_connected());

  // Shortest paths are Hamming distances; the diameter is log2 n = d
  // (achieved between complementary labels).
  AllPairs apsp(g);
  EXPECT_EQ(apsp.diameter(), static_cast<Weight>(d));
  Rng rng = testutil::seeded_rng(d, /*salt=*/0xcb);
  for (int check = 0; check < 64; ++check) {
    auto u = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    auto v = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto hamming = std::popcount(static_cast<std::uint32_t>(u) ^
                                       static_cast<std::uint32_t>(v));
    EXPECT_EQ(apsp.dist(u, v), static_cast<Weight>(hamming)) << u << "," << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Dimensions, HypercubeProperty, ::testing::Range(0, 8));

// --- geometric --------------------------------------------------------------

class GeometricProperty : public ::testing::TestWithParam<int> {};

TEST_P(GeometricProperty, ConnectedSymmetricBoundedWeights) {
  Rng rng = testutil::seeded_rng(GetParam(), /*salt=*/0x9e0);
  const NodeId n = 12 + static_cast<NodeId>(rng.next_below(30));
  const double radius = 0.25 + 0.05 * (GetParam() % 4);
  const Weight scale = 16;
  const TopologySpec spec =
      TopologySpec::geometric(n, /*seed=*/static_cast<std::uint64_t>(GetParam()) * 101 + 7,
                              radius, scale);
  const Graph g = spec.build_graph();

  ASSERT_EQ(g.node_count(), n);
  EXPECT_TRUE(g.is_connected());  // the generator resamples until connected
  for (const Edge& e : g.edges()) {
    // Integer weights ceil(euclidean * scale): at least 1, and no pair in
    // the unit square is farther than sqrt(2) even after the generator
    // widens the radius to reach connectivity.
    EXPECT_GE(e.weight, 1);
    EXPECT_LE(e.weight, static_cast<Weight>(23));  // ceil(sqrt(2) * 16)
    // Undirected symmetry through the O(1) edge index.
    EXPECT_EQ(g.edge_weight(e.u, e.v), e.weight);
    EXPECT_EQ(g.edge_weight(e.v, e.u), e.weight);
    EXPECT_LT(e.u, n);
    EXPECT_LT(e.v, n);
    EXPECT_NE(e.u, e.v);
  }
  for (NodeId v = 0; v < n; ++v) EXPECT_LT(g.degree(v), n);  // simple graph

  // Value-object determinism: the spec is a pure function of its fields.
  expect_graphs_identical(g, spec.build_graph());

  // A different seed draws different points (identical layouts would need a
  // full point-set collision).
  TopologySpec other = spec;
  other.seed = spec.seed + 1;
  const Graph g2 = other.build_graph();
  bool same = g.edge_count() == g2.edge_count();
  if (same) {
    for (std::size_t i = 0; same && i < g.edges().size(); ++i)
      same = g.edges()[i].u == g2.edges()[i].u && g.edges()[i].v == g2.edges()[i].v &&
             g.edges()[i].weight == g2.edges()[i].weight;
  }
  EXPECT_FALSE(same);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometricProperty, ::testing::Range(0, 16));

// --- TopologySpec plumbing --------------------------------------------------

TEST(TopologySpecFamilies, NamesAndTreeMaterialization) {
  EXPECT_STREQ(TopologySpec::torus(4, 5).family_name(), "torus");
  EXPECT_STREQ(TopologySpec::hypercube(4).family_name(), "hypercube");
  EXPECT_STREQ(TopologySpec::geometric(24, 3).family_name(), "geometric");

  // Every new family must materialize a usable spanning tree for the arrow
  // protocols: n nodes, rooted as requested, covering the graph.
  for (TopologySpec spec : {TopologySpec::torus(4, 5), TopologySpec::hypercube(5),
                            TopologySpec::geometric(24, 3)}) {
    spec.root = 2;
    const Graph g = spec.build_graph();
    const Tree t = spec.build_tree(g);
    EXPECT_EQ(t.node_count(), g.node_count()) << spec.family_name();
    EXPECT_EQ(t.root(), 2) << spec.family_name();
  }
}

TEST(TopologySpecFamilies, TorusAndHypercubeIgnoreSeeds) {
  // Deterministic families: with_seed reseeding must not perturb them.
  TopologySpec torus = TopologySpec::torus(4, 4);
  TopologySpec reseeded = torus;
  reseeded.seed = 12345;
  expect_graphs_identical(torus.build_graph(), reseeded.build_graph());

  TopologySpec cube = TopologySpec::hypercube(4);
  TopologySpec cube2 = cube;
  cube2.seed = 999;
  expect_graphs_identical(cube.build_graph(), cube2.build_graph());
}

}  // namespace
}  // namespace arrowdq
