// Fault injection as a scenario axis: spec parsing, schedule determinism,
// the arrow quiescence property under randomized fault schedules, baseline
// graceful degradation, and thread-count invariance of faulty sweeps.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "arrow/arrow.hpp"
#include "exp/experiment.hpp"
#include "sim/fault.hpp"
#include "sim/latency.hpp"
#include "support/random.hpp"
#include "testutil.hpp"

namespace arrowdq {
namespace {

// --- FaultSpec parsing ------------------------------------------------------

TEST(FaultSpec, ParsesValidTokens) {
  auto none = parse_fault_spec("none");
  ASSERT_TRUE(none.has_value());
  EXPECT_EQ(none->kind, FaultKind::kNone);
  EXPECT_FALSE(none->active());

  auto loss = parse_fault_spec("loss:0.25");
  ASSERT_TRUE(loss.has_value());
  EXPECT_EQ(loss->kind, FaultKind::kLoss);
  EXPECT_DOUBLE_EQ(loss->loss_prob, 0.25);
  EXPECT_TRUE(loss->message_faults());
  EXPECT_FALSE(loss->has_crash());

  auto dup = parse_fault_spec("dup:0.5");
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(dup->kind, FaultKind::kDuplicate);
  EXPECT_DOUBLE_EQ(dup->dup_prob, 0.5);

  auto jitter = parse_fault_spec("jitter:0.3:2.5");
  ASSERT_TRUE(jitter.has_value());
  EXPECT_EQ(jitter->kind, FaultKind::kJitter);
  EXPECT_DOUBLE_EQ(jitter->jitter_prob, 0.3);
  EXPECT_DOUBLE_EQ(jitter->jitter_max_units, 2.5);

  auto spike = parse_fault_spec("spike:0.2:6");
  ASSERT_TRUE(spike.has_value());
  EXPECT_EQ(spike->kind, FaultKind::kSpike);
  EXPECT_DOUBLE_EQ(spike->spike_prob, 0.2);
  EXPECT_DOUBLE_EQ(spike->spike_factor, 6.0);

  auto crash = parse_fault_spec("crash:3:2:8");
  ASSERT_TRUE(crash.has_value());
  EXPECT_EQ(crash->kind, FaultKind::kCrash);
  EXPECT_EQ(crash->crash_count, 3);
  EXPECT_DOUBLE_EQ(crash->crash_downtime_units, 2.0);
  EXPECT_DOUBLE_EQ(crash->crash_period_units, 8.0);
  EXPECT_TRUE(crash->has_crash());
  EXPECT_FALSE(crash->message_faults());

  auto chaos = parse_fault_spec("chaos");
  ASSERT_TRUE(chaos.has_value());
  EXPECT_EQ(chaos->kind, FaultKind::kChaos);
  EXPECT_TRUE(chaos->message_faults());
  EXPECT_TRUE(chaos->has_crash());
}

TEST(FaultSpec, RejectsMalformedTokens) {
  for (const char* bad :
       {"", "bogus", "loss", "loss:", "loss:0", "loss:-0.1", "loss:1.5", "loss:abc",
        "dup:0:", "dup:2", "jitter:0.5:-1", "jitter:0.5:0", "spike:0.2:abc", "crash",
        "crash:0", "crash:-1", "crash:2:0", "crash:2:4:0", "chaos:0.5", "none:1"}) {
    EXPECT_FALSE(parse_fault_spec(bad).has_value()) << "accepted '" << bad << "'";
  }
}

TEST(FaultSpec, WithoutCrashStripsOnlyTheCrashSchedule) {
  FaultSpec chaos = FaultSpec::chaos();
  FaultSpec stripped = chaos.without_crash();
  EXPECT_FALSE(stripped.has_crash());
  EXPECT_TRUE(stripped.message_faults());
  EXPECT_DOUBLE_EQ(stripped.loss_prob, chaos.loss_prob);

  // A pure-crash spec strips to inactive.
  EXPECT_FALSE(FaultSpec::crash(2).without_crash().active());
}

TEST(FaultSpec, CrashScheduleIsDeterministicAndSorted) {
  FaultSpec spec = FaultSpec::crash(4, /*downtime_units=*/2.0, /*period_units=*/8.0);
  spec.seed = 99;
  auto a = crash_schedule(spec, 32);
  auto b = crash_schedule(spec, 32);
  ASSERT_EQ(a.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].victim, b[i].victim);
    EXPECT_GT(a[i].up_at, a[i].at);
    EXPECT_GE(a[i].victim, 0);
    EXPECT_LT(a[i].victim, 32);
    if (i > 0) {
      EXPECT_GE(a[i].at, a[i - 1].at);
    }
  }
  // A different seed moves the victims (overwhelmingly likely over 4 draws).
  spec.seed = 100;
  auto c = crash_schedule(spec, 32);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_differs |= a[i].victim != c[i].victim;
  EXPECT_TRUE(any_differs);
}

// --- the quiescence property ------------------------------------------------

/// A randomized fault spec covering every kind, seeded from `rng`.
FaultSpec random_fault(Rng& rng) {
  const auto pick = rng.next_below(6);
  FaultSpec spec;
  switch (pick) {
    case 0: spec = FaultSpec::loss(0.05 + 0.3 * rng.next_double()); break;
    case 1: spec = FaultSpec::duplicate(0.05 + 0.4 * rng.next_double()); break;
    case 2: spec = FaultSpec::jitter(0.1 + 0.4 * rng.next_double(), 0.5 + rng.next_double()); break;
    case 3: spec = FaultSpec::spike(0.05 + 0.2 * rng.next_double(), 2.0 + 4.0 * rng.next_double()); break;
    case 4:
      spec = FaultSpec::crash(1 + static_cast<std::int32_t>(rng.next_below(3)),
                              1.0 + 3.0 * rng.next_double(), 4.0 + 8.0 * rng.next_double());
      break;
    default: spec = FaultSpec::chaos(); break;
  }
  spec.seed = rng.next();
  return spec;
}

TEST(FaultProperty, ArrowReachesQuiescenceUnderRandomizedSchedules) {
  // The tentpole property: for every randomized fault schedule the arrow
  // protocol still reaches quiescence with a unique sink, every request
  // completed no earlier than issued, and — crash-free — a full total order.
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng = testutil::seeded_rng(seed, /*salt=*/0xfa117);
    auto inst = testutil::make_tree_instance(seed);
    FaultSpec fault = random_fault(rng);
    SynchronousLatency sync;
    ArrowEngine engine(inst.tree, sync);
    engine.set_fault(fault);
    QueuingOutcome out = engine.run(inst.requests);

    EXPECT_TRUE(out.is_complete()) << "seed " << seed << " fault " << fault.name();
    // Unique sink: exactly one node's link points to itself.
    int sinks = 0;
    for (NodeId v = 0; v < inst.tree.node_count(); ++v)
      if (engine.links()[static_cast<std::size_t>(v)] == v) ++sinks;
    EXPECT_EQ(sinks, 1) << "seed " << seed << " fault " << fault.name();
    EXPECT_EQ(engine.sink_node(),
              engine.links()[static_cast<std::size_t>(engine.sink_node())]);
    // No request completes before it was issued.
    for (RequestId id = 1; id <= out.request_count(); ++id) {
      EXPECT_GE(out.completion(id).completed_at, inst.requests.by_id(id).time)
          << "seed " << seed << " request " << id;
    }
    if (!fault.has_crash()) {
      // Message faults are delay-only, so the full Definition 3.2 total
      // order must survive them (validate aborts on violation).
      out.validate(inst.requests);
      EXPECT_EQ(out.order().size(), static_cast<std::size_t>(out.request_count() + 1));
    } else {
      // Crash recovery may sever the pre-crash successor chain, but every
      // request still queues behind a distinct predecessor.
      std::set<RequestId> preds;
      for (RequestId id = 1; id <= out.request_count(); ++id)
        preds.insert(out.completion(id).predecessor);
      EXPECT_EQ(preds.size(), static_cast<std::size_t>(out.request_count()))
          << "seed " << seed << ": duplicate predecessor post-recovery";
    }
  }
}

TEST(FaultProperty, ArrowRunsAreDeterministicPerSpec) {
  auto inst = testutil::make_tree_instance(11);
  FaultSpec fault = FaultSpec::chaos();
  fault.seed = 777;
  auto run_once = [&]() {
    SynchronousLatency sync;
    ArrowEngine engine(inst.tree, sync);
    engine.set_fault(fault);
    QueuingOutcome out = engine.run(inst.requests);
    return std::tuple(engine.messages_sent(), engine.fault_stats().messages_dropped,
                      engine.fault_stats().messages_duplicated, engine.sink_node(),
                      engine.stabilize_rounds(), out.total_hops());
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- baselines: graceful degradation ---------------------------------------

TEST(FaultProperty, BaselinesDegradeGracefullyUnderLoss) {
  // Centralized and pointer forwarding never corrupt state (their pointer is
  // in stable storage); loss shows up as drops + extra latency only, and
  // every round still completes.
  for (Protocol proto : {Protocol::kCentralized, Protocol::kPointerForwarding}) {
    Experiment e;
    e.protocol = proto == Protocol::kCentralized
                     ? ProtocolSpec::centralized(0)
                     : ProtocolSpec::pointer_forwarding();
    e.topology = TopologySpec::complete(24);
    e.rounds = 10;
    e.fault = FaultSpec::loss(0.2);
    e = e.with_seed(5);
    RunResult r = run_experiment(e);
    EXPECT_EQ(r.total_requests, 24 * 10) << protocol_name(proto);
    EXPECT_GT(r.messages_dropped, 0u) << protocol_name(proto);
    EXPECT_EQ(r.stabilize_rounds, 0) << protocol_name(proto);
    EXPECT_EQ(r.stabilize_corrections, 0) << protocol_name(proto);

    // The same cell fault-free drops nothing and finishes no later.
    Experiment clean = e;
    clean.fault = FaultSpec::none();
    RunResult base = run_experiment(clean);
    EXPECT_EQ(base.messages_dropped, 0u);
    EXPECT_LE(base.makespan, r.makespan) << protocol_name(proto);
  }
}

TEST(FaultProperty, TokenPassingStripsCrashesButKeepsMessageFaults) {
  Experiment e;
  e.protocol = ProtocolSpec::token_passing();
  e.topology = TopologySpec::random_tree(20, 3);
  e.workload = WorkloadSpec::poisson(15, 0.5, 7);
  e.fault = FaultSpec::chaos();
  e = e.with_seed(9);
  RunResult r = run_experiment(e);
  EXPECT_EQ(r.total_requests, 15);
  EXPECT_EQ(r.crashes, 0);  // crash schedule stripped
  EXPECT_GT(r.messages_dropped + r.messages_duplicated, 0u);
}

// --- sweep integration ------------------------------------------------------

std::vector<Experiment> faulty_cells() {
  std::vector<Experiment> cells;
  std::uint64_t seed = 40;
  for (const FaultSpec& fault :
       {FaultSpec::loss(0.15), FaultSpec::crash(2), FaultSpec::chaos()}) {
    {
      Experiment e;
      e.protocol = ProtocolSpec::arrow_one_shot();
      e.topology = TopologySpec::random_tree(20, 1);
      e.workload = WorkloadSpec::poisson(16, 0.6, 2);
      e.fault = fault;
      cells.push_back(e.with_seed(++seed));
    }
    {
      Experiment e;
      e.protocol = ProtocolSpec::arrow_closed_loop();
      e.topology = TopologySpec::complete(16);
      e.rounds = 8;
      e.fault = fault;
      cells.push_back(e.with_seed(++seed));
    }
    {
      Experiment e;
      e.protocol = ProtocolSpec::pointer_forwarding();
      e.topology = TopologySpec::complete(16);
      e.rounds = 8;
      e.fault = fault;
      cells.push_back(e.with_seed(++seed));
    }
  }
  return cells;
}

TEST(FaultProperty, FaultySweepsAreBitIdenticalAcrossThreadCounts) {
  // The acceptance bar: under a fixed fault schedule, results — fault
  // metrics included — are bit-identical across 1/2/4/5 sweep threads and
  // against the serial path. Each run owns its fault filter, so thread
  // interleavings cannot touch the draw streams.
  auto cells = faulty_cells();
  auto serial = run_experiments(cells);
  ASSERT_EQ(serial.size(), cells.size());
  for (unsigned threads : {1u, 2u, 4u, 5u}) {
    auto parallel = run_experiments(cells, SweepRunner(threads));
    ASSERT_EQ(parallel.size(), serial.size()) << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const RunResult& a = parallel[i].result;
      const RunResult& b = serial[i].result;
      EXPECT_EQ(a.makespan, b.makespan) << threads << " cell " << i;
      EXPECT_EQ(a.messages, b.messages) << threads << " cell " << i;
      EXPECT_EQ(a.total_hops, b.total_hops) << threads << " cell " << i;
      EXPECT_EQ(a.messages_dropped, b.messages_dropped) << threads << " cell " << i;
      EXPECT_EQ(a.messages_duplicated, b.messages_duplicated) << threads << " cell " << i;
      EXPECT_EQ(a.crashes, b.crashes) << threads << " cell " << i;
      EXPECT_EQ(a.stabilize_rounds, b.stabilize_rounds) << threads << " cell " << i;
      EXPECT_EQ(a.stabilize_corrections, b.stabilize_corrections) << threads << " cell " << i;
      EXPECT_DOUBLE_EQ(a.recovery_delta_units, b.recovery_delta_units)
          << threads << " cell " << i;
    }
  }
}

TEST(FaultProperty, RecoveryDeltaFilledOnlyForFaultyCells) {
  Experiment e;
  e.protocol = ProtocolSpec::arrow_closed_loop();
  e.topology = TopologySpec::complete(16);
  e.rounds = 8;
  e = e.with_seed(3);
  RunResult clean = run_experiment(e);
  EXPECT_DOUBLE_EQ(clean.recovery_delta_units, 0.0);
  EXPECT_EQ(clean.messages_dropped, 0u);
  EXPECT_EQ(clean.crashes, 0);

  // A short crash period so the schedule fires within the loop's makespan
  // (the driver reports windows that actually fired, not the nominal count).
  e.fault = FaultSpec::crash(2, /*downtime_units=*/2.0, /*period_units=*/4.0);
  e.fault.seed = 21;
  RunResult faulty = run_experiment(e);
  EXPECT_GE(faulty.crashes, 1);
  EXPECT_LE(faulty.crashes, 2);
  // The twin comparison is the faulty makespan minus the clean one.
  EXPECT_NEAR(faulty.recovery_delta_units,
              static_cast<double>(faulty.makespan - clean.makespan) /
                  static_cast<double>(kTicksPerUnit),
              1e-9);
}

}  // namespace
}  // namespace arrowdq
