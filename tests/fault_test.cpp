// Fault injection as a scenario axis: spec parsing, schedule determinism,
// the arrow quiescence property under randomized fault schedules, baseline
// graceful degradation, and thread-count invariance of faulty sweeps.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "arrow/arrow.hpp"
#include "exp/experiment.hpp"
#include "sim/fault.hpp"
#include "sim/latency.hpp"
#include "support/random.hpp"
#include "testutil.hpp"

namespace arrowdq {
namespace {

// --- FaultSpec parsing ------------------------------------------------------

TEST(FaultSpec, ParsesValidTokens) {
  auto none = parse_fault_spec("none");
  ASSERT_TRUE(none.has_value());
  EXPECT_EQ(none->kind, FaultKind::kNone);
  EXPECT_FALSE(none->active());

  auto loss = parse_fault_spec("loss:0.25");
  ASSERT_TRUE(loss.has_value());
  EXPECT_EQ(loss->kind, FaultKind::kLoss);
  EXPECT_DOUBLE_EQ(loss->loss_prob, 0.25);
  EXPECT_TRUE(loss->message_faults());
  EXPECT_FALSE(loss->has_crash());

  auto dup = parse_fault_spec("dup:0.5");
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(dup->kind, FaultKind::kDuplicate);
  EXPECT_DOUBLE_EQ(dup->dup_prob, 0.5);

  auto jitter = parse_fault_spec("jitter:0.3:2.5");
  ASSERT_TRUE(jitter.has_value());
  EXPECT_EQ(jitter->kind, FaultKind::kJitter);
  EXPECT_DOUBLE_EQ(jitter->jitter_prob, 0.3);
  EXPECT_DOUBLE_EQ(jitter->jitter_max_units, 2.5);

  auto spike = parse_fault_spec("spike:0.2:6");
  ASSERT_TRUE(spike.has_value());
  EXPECT_EQ(spike->kind, FaultKind::kSpike);
  EXPECT_DOUBLE_EQ(spike->spike_prob, 0.2);
  EXPECT_DOUBLE_EQ(spike->spike_factor, 6.0);

  auto crash = parse_fault_spec("crash:3:2:8");
  ASSERT_TRUE(crash.has_value());
  EXPECT_EQ(crash->kind, FaultKind::kCrash);
  EXPECT_EQ(crash->crash_count, 3);
  EXPECT_DOUBLE_EQ(crash->crash_downtime_units, 2.0);
  EXPECT_DOUBLE_EQ(crash->crash_period_units, 8.0);
  EXPECT_TRUE(crash->has_crash());
  EXPECT_FALSE(crash->message_faults());

  auto chaos = parse_fault_spec("chaos");
  ASSERT_TRUE(chaos.has_value());
  EXPECT_EQ(chaos->kind, FaultKind::kChaos);
  EXPECT_TRUE(chaos->message_faults());
  EXPECT_TRUE(chaos->has_crash());
  EXPECT_TRUE(chaos->has_partition());
  EXPECT_TRUE(chaos->has_churn());
}

TEST(FaultSpec, ParsesPartitionAndChurnTokens) {
  auto part = parse_fault_spec("partition:2:4");
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->kind, FaultKind::kPartition);
  EXPECT_EQ(part->partition_count, 2);
  EXPECT_DOUBLE_EQ(part->partition_downtime_units, 4.0);
  EXPECT_DOUBLE_EQ(part->partition_period_units, 24.0);  // default period
  EXPECT_TRUE(part->has_partition());
  EXPECT_TRUE(part->has_topology_faults());
  EXPECT_FALSE(part->has_crash());
  EXPECT_FALSE(part->message_faults());

  auto part3 = parse_fault_spec("partition:3:2.5:6");
  ASSERT_TRUE(part3.has_value());
  EXPECT_EQ(part3->partition_count, 3);
  EXPECT_DOUBLE_EQ(part3->partition_downtime_units, 2.5);
  EXPECT_DOUBLE_EQ(part3->partition_period_units, 6.0);

  auto churn = parse_fault_spec("churn:10");
  ASSERT_TRUE(churn.has_value());
  EXPECT_EQ(churn->kind, FaultKind::kChurn);
  EXPECT_DOUBLE_EQ(churn->churn_rate, 10.0);
  EXPECT_EQ(churn->churn_leaf_only, 0);
  EXPECT_TRUE(churn->has_churn());
  EXPECT_TRUE(churn->has_topology_faults());

  auto leaf = parse_fault_spec("churn:5.5:leaf");
  ASSERT_TRUE(leaf.has_value());
  EXPECT_DOUBLE_EQ(leaf->churn_rate, 5.5);
  EXPECT_EQ(leaf->churn_leaf_only, 1);

  auto any = parse_fault_spec("churn:5:any");
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(any->churn_leaf_only, 0);
}

TEST(FaultSpec, RejectsMalformedTokens) {
  for (const char* bad :
       {"", "bogus", "loss", "loss:", "loss:0", "loss:-0.1", "loss:1.5", "loss:abc",
        "dup:0:", "dup:2", "jitter:0.5:-1", "jitter:0.5:0", "spike:0.2:abc", "crash",
        "crash:0", "crash:-1", "crash:2:0", "crash:2:4:0", "chaos:0.5", "none:1",
        // Partition grammar: CUTS and DOWNU are mandatory, CUTS is capped at
        // the schedule bound, every span must be positive.
        "partition", "partition:", "partition:1", "partition:0:4", "partition:-1:4",
        "partition:1:0", "partition:1:4:0", "partition:65:4", "partition:1:4:8:9",
        // Churn grammar: positive rate capped at 100, KIND is leaf|any.
        "churn", "churn:", "churn:0", "churn:-2", "churn:100.5", "churn:5:tree",
        "churn:5:leaf:x"}) {
    EXPECT_FALSE(parse_fault_spec(bad).has_value()) << "accepted '" << bad << "'";
  }
}

TEST(FaultSpec, RejectsStrtodResidueInEveryNumericField) {
  // The strict decimal grammar: a numeric field is digits with an optional
  // fraction, fully consumed. strtod-isms — hex, exponents, signs, leading
  // dots, trailing garbage — used to silently truncate (strtod stops at the
  // first bad char); now the whole token is rejected with no residue.
  for (const char* bad :
       {"loss:.5", "loss:+0.5", "loss:0x1", "loss:1e-1", "loss:0.5f",
        "dup:.25", "dup:0x0.8p0", "jitter:0.5:1e0", "jitter:.5", "spike:0.5:0x4",
        "spike:0.5:+4", "crash:0x2", "crash:+2", "crash:2:0x4", "crash:2:4:1e1",
        "crash:2.0", "partition:0x2:4", "partition:2:.5", "partition:2:4:+8",
        "partition:2:1e1", "partition:2.5:4", "churn:.5", "churn:+5", "churn:0x5",
        "churn:1e1", "churn:5:LEAF"}) {
    EXPECT_FALSE(parse_fault_spec(bad).has_value()) << "accepted '" << bad << "'";
  }
}

TEST(FaultSpec, WithoutCrashStripsOnlyTheCrashSchedule) {
  FaultSpec chaos = FaultSpec::chaos();
  FaultSpec stripped = chaos.without_crash();
  EXPECT_FALSE(stripped.has_crash());
  EXPECT_FALSE(stripped.has_partition());
  EXPECT_FALSE(stripped.has_churn());
  EXPECT_TRUE(stripped.message_faults());
  EXPECT_DOUBLE_EQ(stripped.loss_prob, chaos.loss_prob);

  // Pure topology-fault specs strip to inactive.
  EXPECT_FALSE(FaultSpec::crash(2).without_crash().active());
  EXPECT_FALSE(FaultSpec::partition(2).without_crash().active());
  EXPECT_FALSE(FaultSpec::churn(10.0).without_crash().active());
}

TEST(FaultSpec, WithoutCrashAccountsForEveryField) {
  // The field ledger: without_crash() copies the whole struct and then
  // deliberately zeroes the topology-fault schedules. A new FaultSpec field
  // is kept by the copy automatically, but its *fate* must be decided — this
  // static_assert trips on any size change so the decision (keep or strip,
  // plus a line below) cannot be skipped.
  static_assert(sizeof(FaultSpec) == 136,
                "FaultSpec changed: decide whether without_crash() keeps or "
                "strips the new field, then update this test and the assert");

  FaultSpec s;
  s.kind = FaultKind::kChaos;
  s.loss_prob = 0.11;
  s.dup_prob = 0.12;
  s.jitter_prob = 0.13;
  s.jitter_max_units = 1.4;
  s.spike_prob = 0.15;
  s.spike_factor = 5.0;
  s.retry_units = 1.6;
  s.crash_count = 3;
  s.crash_downtime_units = 2.5;
  s.crash_period_units = 7.0;
  s.partition_count = 2;
  s.partition_downtime_units = 3.5;
  s.partition_period_units = 9.0;
  s.churn_rate = 12.0;
  s.churn_leaf_only = 1;
  s.seed = 4242;

  FaultSpec t = s.without_crash();
  // Kept verbatim: message-fault knobs and the seed (the surviving message
  // faults must replay the same draw stream).
  EXPECT_EQ(t.kind, FaultKind::kChaos);
  EXPECT_DOUBLE_EQ(t.loss_prob, 0.11);
  EXPECT_DOUBLE_EQ(t.dup_prob, 0.12);
  EXPECT_DOUBLE_EQ(t.jitter_prob, 0.13);
  EXPECT_DOUBLE_EQ(t.jitter_max_units, 1.4);
  EXPECT_DOUBLE_EQ(t.spike_prob, 0.15);
  EXPECT_DOUBLE_EQ(t.spike_factor, 5.0);
  EXPECT_DOUBLE_EQ(t.retry_units, 1.6);
  EXPECT_EQ(t.seed, 4242u);
  // Stripped: every schedule-count field that makes has_topology_faults()
  // true (churn_leaf_only rides along — it only qualifies churn victims).
  EXPECT_EQ(t.crash_count, 0);
  EXPECT_DOUBLE_EQ(t.churn_rate, 0.0);
  EXPECT_EQ(t.partition_count, 0);
  EXPECT_EQ(t.churn_leaf_only, 0);
  EXPECT_FALSE(t.has_topology_faults());
  // Kept but inert with their counts at zero: window shapes.
  EXPECT_DOUBLE_EQ(t.crash_downtime_units, 2.5);
  EXPECT_DOUBLE_EQ(t.crash_period_units, 7.0);
  EXPECT_DOUBLE_EQ(t.partition_downtime_units, 3.5);
  EXPECT_DOUBLE_EQ(t.partition_period_units, 9.0);
  // Empty schedules follow from the zeroed counts.
  EXPECT_TRUE(crash_schedule(t, 16).empty());
  EXPECT_TRUE(partition_schedule(t, 16).empty());
  EXPECT_TRUE(churn_schedule(t, 16).empty());
}

TEST(FaultSpec, CrashScheduleIsDeterministicAndSorted) {
  FaultSpec spec = FaultSpec::crash(4, /*downtime_units=*/2.0, /*period_units=*/8.0);
  spec.seed = 99;
  auto a = crash_schedule(spec, 32);
  auto b = crash_schedule(spec, 32);
  ASSERT_EQ(a.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].victim, b[i].victim);
    EXPECT_GT(a[i].up_at, a[i].at);
    EXPECT_GE(a[i].victim, 0);
    EXPECT_LT(a[i].victim, 32);
    if (i > 0) {
      EXPECT_GE(a[i].at, a[i - 1].at);
    }
  }
  // A different seed moves the victims (overwhelmingly likely over 4 draws).
  spec.seed = 100;
  auto c = crash_schedule(spec, 32);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_differs |= a[i].victim != c[i].victim;
  EXPECT_TRUE(any_differs);
}

TEST(FaultSpec, PartitionAndChurnSchedulesAreDeterministicAndSorted) {
  FaultSpec part = FaultSpec::partition(3, /*downtime_units=*/2.0, /*period_units=*/5.0);
  part.seed = 31;
  auto pa = partition_schedule(part, 40);
  auto pb = partition_schedule(part, 40);
  ASSERT_EQ(pa.size(), 3u);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].at, pb[i].at);
    EXPECT_EQ(pa[i].victim, pb[i].victim);
    EXPECT_GT(pa[i].up_at, pa[i].at);
    EXPECT_GE(pa[i].victim, 0);
    EXPECT_LT(pa[i].victim, 40);
    // Window k opens at (k+1) * period; with down < period, windows never
    // overlap and the schedule is strictly sorted.
    EXPECT_EQ(pa[i].at, static_cast<Time>(i + 1) * 5 * kTicksPerUnit);
    if (i > 0) EXPECT_GE(pa[i].at, pa[i - 1].up_at);
  }

  // Downtime longer than the period: windows are clamped to end no later
  // than the next onset (the heal→onset event chain must never schedule
  // into the past), except the last, which keeps its full downtime.
  FaultSpec wide = FaultSpec::partition(3, /*downtime_units=*/7.0, /*period_units=*/2.0);
  wide.seed = 33;
  auto pw = partition_schedule(wide, 40);
  ASSERT_EQ(pw.size(), 3u);
  for (std::size_t i = 0; i < pw.size(); ++i) {
    EXPECT_GT(pw[i].up_at, pw[i].at);
    if (i + 1 < pw.size())
      EXPECT_EQ(pw[i].up_at, pw[i + 1].at);
    else
      EXPECT_EQ(pw[i].up_at, pw[i].at + 7 * kTicksPerUnit);
  }

  FaultSpec churn = FaultSpec::churn(50.0);  // one event every 2 units
  churn.seed = 32;
  auto ca = churn_schedule(churn, 40);
  auto cb = churn_schedule(churn, 40);
  ASSERT_EQ(ca.size(), kMaxChurnEvents);  // capped; short runs see fewer fire
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].at, cb[i].at);
    EXPECT_EQ(ca[i].victim, cb[i].victim);
    EXPECT_GT(ca[i].up_at, ca[i].at);
    EXPECT_GE(ca[i].victim, 0);
    EXPECT_LT(ca[i].victim, 40);
    EXPECT_EQ(ca[i].at, static_cast<Time>(i + 1) * 2 * kTicksPerUnit);
  }

  // The two axes draw from decorrelated victim streams: same seed, same
  // window index, yet the sequences disagree somewhere over 3 draws of 40.
  part.seed = churn.seed = 7;
  auto pv = partition_schedule(part, 40);
  auto cv = churn_schedule(churn, 40);
  bool any_differs = false;
  for (std::size_t i = 0; i < pv.size(); ++i) any_differs |= pv[i].victim != cv[i].victim;
  EXPECT_TRUE(any_differs);
}

// --- the quiescence property ------------------------------------------------

/// A randomized partition schedule with small periods so windows open while
/// the (short) test runs are still in flight.
FaultSpec random_partition(Rng& rng) {
  return FaultSpec::partition(1 + static_cast<std::int32_t>(rng.next_below(3)),
                              /*downtime_units=*/0.5 + 2.0 * rng.next_double(),
                              /*period_units=*/1.0 + 3.0 * rng.next_double());
}

/// A randomized churn schedule; high rates keep the inter-event gap short.
FaultSpec random_churn(Rng& rng) {
  return FaultSpec::churn(30.0 + 70.0 * rng.next_double(), rng.next_bool(0.5));
}

/// A randomized fault spec covering every kind, seeded from `rng`.
FaultSpec random_fault(Rng& rng) {
  const auto pick = rng.next_below(8);
  FaultSpec spec;
  switch (pick) {
    case 0: spec = FaultSpec::loss(0.05 + 0.3 * rng.next_double()); break;
    case 1: spec = FaultSpec::duplicate(0.05 + 0.4 * rng.next_double()); break;
    case 2: spec = FaultSpec::jitter(0.1 + 0.4 * rng.next_double(), 0.5 + rng.next_double()); break;
    case 3: spec = FaultSpec::spike(0.05 + 0.2 * rng.next_double(), 2.0 + 4.0 * rng.next_double()); break;
    case 4:
      spec = FaultSpec::crash(1 + static_cast<std::int32_t>(rng.next_below(3)),
                              1.0 + 3.0 * rng.next_double(), 4.0 + 8.0 * rng.next_double());
      break;
    case 5: spec = random_partition(rng); break;
    case 6: spec = random_churn(rng); break;
    default: spec = FaultSpec::chaos(); break;
  }
  spec.seed = rng.next();
  return spec;
}

TEST(FaultProperty, ArrowReachesQuiescenceUnderRandomizedSchedules) {
  // The tentpole property: for every randomized fault schedule the arrow
  // protocol still reaches quiescence with a unique sink, every request
  // completed no earlier than issued, and — crash-free — a full total order.
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng = testutil::seeded_rng(seed, /*salt=*/0xfa117);
    auto inst = testutil::make_tree_instance(seed);
    FaultSpec fault = random_fault(rng);
    SynchronousLatency sync;
    ArrowEngine engine(inst.tree, sync);
    engine.set_fault(fault);
    QueuingOutcome out = engine.run(inst.requests);

    EXPECT_TRUE(out.is_complete()) << "seed " << seed << " fault " << fault.name();
    // Unique sink: exactly one node's link points to itself.
    int sinks = 0;
    for (NodeId v = 0; v < inst.tree.node_count(); ++v)
      if (engine.links()[static_cast<std::size_t>(v)] == v) ++sinks;
    EXPECT_EQ(sinks, 1) << "seed " << seed << " fault " << fault.name();
    EXPECT_EQ(engine.sink_node(),
              engine.links()[static_cast<std::size_t>(engine.sink_node())]);
    // No request completes before it was issued.
    for (RequestId id = 1; id <= out.request_count(); ++id) {
      EXPECT_GE(out.completion(id).completed_at, inst.requests.by_id(id).time)
          << "seed " << seed << " request " << id;
    }
    if (!fault.has_topology_faults()) {
      // Message faults are delay-only, so the full Definition 3.2 total
      // order must survive them (validate aborts on violation).
      out.validate(inst.requests);
      EXPECT_EQ(out.order().size(), static_cast<std::size_t>(out.request_count() + 1));
    } else {
      // Recovery waves (crash, partition, churn) may sever the pre-fault
      // successor chain, but every request still queues behind a distinct
      // predecessor.
      std::set<RequestId> preds;
      for (RequestId id = 1; id <= out.request_count(); ++id)
        preds.insert(out.completion(id).predecessor);
      EXPECT_EQ(preds.size(), static_cast<std::size_t>(out.request_count()))
          << "seed " << seed << ": duplicate predecessor post-recovery";
    }
  }
}

TEST(FaultProperty, ArrowRunsAreDeterministicPerSpec) {
  auto inst = testutil::make_tree_instance(11);
  FaultSpec fault = FaultSpec::chaos();
  fault.seed = 777;
  auto run_once = [&]() {
    SynchronousLatency sync;
    ArrowEngine engine(inst.tree, sync);
    engine.set_fault(fault);
    QueuingOutcome out = engine.run(inst.requests);
    return std::tuple(engine.messages_sent(), engine.fault_stats().messages_dropped,
                      engine.fault_stats().messages_duplicated, engine.sink_node(),
                      engine.stabilize_rounds(), out.total_hops());
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- partitions and churn ---------------------------------------------------

/// Shared assertions for a one-shot arrow run under a topology-fault spec:
/// quiescence, a unique healed sink, and exactly-once completion (every
/// request answered, behind a distinct predecessor).
void expect_heals_and_completes(int seed, const testutil::TreeInstance& inst,
                                const FaultSpec& fault, ArrowEngine& engine,
                                const QueuingOutcome& out) {
  EXPECT_TRUE(out.is_complete()) << "seed " << seed << " fault " << fault.name();
  int sinks = 0;
  for (NodeId v = 0; v < inst.tree.node_count(); ++v)
    if (engine.links()[static_cast<std::size_t>(v)] == v) ++sinks;
  EXPECT_EQ(sinks, 1) << "seed " << seed << ": heal must restore a unique sink";
  std::set<RequestId> preds;
  for (RequestId id = 1; id <= out.request_count(); ++id) {
    EXPECT_GE(out.completion(id).completed_at, inst.requests.by_id(id).time)
        << "seed " << seed << " request " << id;
    preds.insert(out.completion(id).predecessor);
  }
  EXPECT_EQ(preds.size(), static_cast<std::size_t>(out.request_count()))
      << "seed " << seed << ": a request completed twice or was double-queued";
}

TEST(FaultProperty, ArrowHealsFromRandomizedPartitionSchedules) {
  // 15 randomized cut schedules: windows sever a real subtree mid-run,
  // cross-cut messages queue at the filter, and after every heal the run
  // still quiesces with one sink and exactly-once completions.
  for (int seed = 0; seed < 15; ++seed) {
    Rng rng = testutil::seeded_rng(seed, /*salt=*/0x9a57171);
    auto inst = testutil::make_tree_instance(seed);
    FaultSpec fault = random_partition(rng);
    fault.seed = rng.next();
    SynchronousLatency sync;
    ArrowEngine engine(inst.tree, sync);
    engine.set_fault(fault);
    QueuingOutcome out = engine.run(inst.requests);
    expect_heals_and_completes(seed, inst, fault, engine, out);
    EXPECT_LE(engine.partitions_applied(), fault.partition_count);
  }
}

TEST(FaultProperty, ArrowHealsFromRandomizedChurnSchedules) {
  // 15 randomized leave/rejoin schedules (mixing leaf-only and any-victim):
  // each fired event splices the departed node's pointer toward the anchor
  // through a recovery wave, and the run still completes exactly once.
  for (int seed = 0; seed < 15; ++seed) {
    Rng rng = testutil::seeded_rng(seed, /*salt=*/0xc4a242);
    auto inst = testutil::make_tree_instance(seed);
    FaultSpec fault = random_churn(rng);
    fault.seed = rng.next();
    SynchronousLatency sync;
    ArrowEngine engine(inst.tree, sync);
    engine.set_fault(fault);
    QueuingOutcome out = engine.run(inst.requests);
    expect_heals_and_completes(seed, inst, fault, engine, out);
    EXPECT_GE(engine.reselections(), 0);
  }
}

TEST(FaultProperty, ArrowHealsFromCombinedPartitionChurnSchedules) {
  // 10 schedules running both axes at once (plus crashes on even seeds):
  // overlapping waves must still converge to a single sink.
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng = testutil::seeded_rng(seed, /*salt=*/0xb07b07);
    auto inst = testutil::make_tree_instance(seed + 3);
    FaultSpec fault = random_partition(rng);
    FaultSpec churn = random_churn(rng);
    fault.churn_rate = churn.churn_rate;
    fault.churn_leaf_only = churn.churn_leaf_only;
    if (seed % 2 == 0) fault.crash_count = 1 + static_cast<std::int32_t>(rng.next_below(2));
    fault.seed = rng.next();
    SynchronousLatency sync;
    ArrowEngine engine(inst.tree, sync);
    engine.set_fault(fault);
    QueuingOutcome out = engine.run(inst.requests);
    expect_heals_and_completes(seed, inst, fault, engine, out);
  }
}

TEST(FaultProperty, ClosedLoopDrainsPartitionBacklogAndCompletes) {
  // The closed-loop driver under partitions: every round completes exactly
  // once (n * rounds total), fired windows are reported, and any cross-cut
  // sends the filter queued are accounted as drained heal backlog.
  int cells_with_backlog = 0;
  for (int seed = 0; seed < 8; ++seed) {
    Experiment e;
    e.protocol = ProtocolSpec::arrow_closed_loop();
    e.topology = TopologySpec::random_tree(12 + 2 * seed, seed);
    e.rounds = 12;
    e.fault = FaultSpec::partition(2, /*downtime_units=*/2.0, /*period_units=*/4.0);
    e = e.with_seed(100 + seed);
    RunResult r = run_experiment(e);
    EXPECT_EQ(r.total_requests, static_cast<std::int64_t>(e.topology.nodes) * 12)
        << "seed " << seed << ": a queued cross-cut request was lost or doubled";
    EXPECT_GE(r.partitions, 1) << "seed " << seed;
    EXPECT_LE(r.partitions, 2) << "seed " << seed;
    if (r.partition_backlog_drained > 0) ++cells_with_backlog;
    // partition_delta_units mirrors the twin comparison for partition cells.
    EXPECT_DOUBLE_EQ(r.partition_delta_units, r.recovery_delta_units) << "seed " << seed;
  }
  // With 8 closed loops crossing 2-unit cuts, at least one run must have
  // actually queued traffic at the cut — otherwise the axis tested nothing.
  EXPECT_GT(cells_with_backlog, 0);
}

TEST(FaultProperty, ClosedLoopChurnReselectsAndCompletes) {
  int cells_with_reselection = 0;
  for (int seed = 0; seed < 8; ++seed) {
    Experiment e;
    e.protocol = ProtocolSpec::arrow_closed_loop();
    e.topology = TopologySpec::random_tree(12 + 2 * seed, seed);
    e.rounds = 12;
    e.fault = FaultSpec::churn(seed % 2 == 0 ? 60.0 : 90.0, /*leaf_only=*/seed % 2 == 1);
    e = e.with_seed(200 + seed);
    RunResult r = run_experiment(e);
    EXPECT_EQ(r.total_requests, static_cast<std::int64_t>(e.topology.nodes) * 12)
        << "seed " << seed;
    if (r.reselections > 0) ++cells_with_reselection;
  }
  EXPECT_GT(cells_with_reselection, 0);
}

TEST(FaultProperty, TopologyFaultsRefuseShardingAndImplicitTier) {
  // shardable() and the implicit tier must refuse partitions and churn for
  // the same reason they refuse crashes: recovery waves are global pointer
  // rewrites over a materialized tree.
  for (const FaultSpec& fault :
       {FaultSpec::crash(2), FaultSpec::partition(1), FaultSpec::churn(10.0),
        FaultSpec::chaos()}) {
    Experiment e;
    e.protocol = ProtocolSpec::arrow_closed_loop();
    e.topology = TopologySpec::random_tree(16, 1);
    e.rounds = 4;
    e.fault = fault;
    e.shards = 2;
    EXPECT_TRUE(validate_experiment(e.with_seed(1)).has_value())
        << fault.name() << " must refuse shards > 1";
    e.shards = 1;
    EXPECT_FALSE(validate_experiment(e.with_seed(1)).has_value()) << fault.name();
  }
  // Message-only faults keep sharding.
  Experiment ok;
  ok.protocol = ProtocolSpec::arrow_closed_loop();
  ok.topology = TopologySpec::random_tree(16, 1);
  ok.rounds = 4;
  ok.fault = FaultSpec::loss(0.1);
  ok.shards = 2;
  EXPECT_FALSE(validate_experiment(ok.with_seed(1)).has_value());
}

// --- baselines: graceful degradation ---------------------------------------

TEST(FaultProperty, BaselinesDegradeGracefullyUnderLoss) {
  // Centralized and pointer forwarding never corrupt state (their pointer is
  // in stable storage); loss shows up as drops + extra latency only, and
  // every round still completes.
  for (Protocol proto : {Protocol::kCentralized, Protocol::kPointerForwarding}) {
    Experiment e;
    e.protocol = proto == Protocol::kCentralized
                     ? ProtocolSpec::centralized(0)
                     : ProtocolSpec::pointer_forwarding();
    e.topology = TopologySpec::complete(24);
    e.rounds = 10;
    e.fault = FaultSpec::loss(0.2);
    e = e.with_seed(5);
    RunResult r = run_experiment(e);
    EXPECT_EQ(r.total_requests, 24 * 10) << protocol_name(proto);
    EXPECT_GT(r.messages_dropped, 0u) << protocol_name(proto);
    EXPECT_EQ(r.stabilize_rounds, 0) << protocol_name(proto);
    EXPECT_EQ(r.stabilize_corrections, 0) << protocol_name(proto);

    // The same cell fault-free drops nothing and finishes no later.
    Experiment clean = e;
    clean.fault = FaultSpec::none();
    RunResult base = run_experiment(clean);
    EXPECT_EQ(base.messages_dropped, 0u);
    EXPECT_LE(base.makespan, r.makespan) << protocol_name(proto);
  }
}

TEST(FaultProperty, BaselinesDegradeGracefullyUnderPartitionsAndChurn) {
  // The baselines have no tree, so the filter falls back to isolating the
  // window's victim node: its traffic queues until the heal and every round
  // still completes. No recovery waves, no corrections.
  for (Protocol proto : {Protocol::kCentralized, Protocol::kPointerForwarding}) {
    for (const FaultSpec& fault :
         {FaultSpec::partition(2, /*downtime_units=*/2.0, /*period_units=*/4.0),
          FaultSpec::churn(60.0)}) {
      Experiment e;
      e.protocol = proto == Protocol::kCentralized
                       ? ProtocolSpec::centralized(0)
                       : ProtocolSpec::pointer_forwarding();
      e.topology = TopologySpec::complete(24);
      e.rounds = 10;
      e.fault = fault;
      e = e.with_seed(6);
      RunResult r = run_experiment(e);
      EXPECT_EQ(r.total_requests, 24 * 10) << protocol_name(proto) << " " << fault.name();
      EXPECT_EQ(r.stabilize_rounds, 0) << protocol_name(proto) << " " << fault.name();
      EXPECT_EQ(r.reselections, 0) << protocol_name(proto) << " " << fault.name();
      if (fault.has_partition()) EXPECT_EQ(r.partitions, fault.partition_count);
    }
  }
}

TEST(FaultProperty, TokenPassingStripsCrashesButKeepsMessageFaults) {
  Experiment e;
  e.protocol = ProtocolSpec::token_passing();
  e.topology = TopologySpec::random_tree(20, 3);
  e.workload = WorkloadSpec::poisson(15, 0.5, 7);
  e.fault = FaultSpec::chaos();
  e = e.with_seed(9);
  RunResult r = run_experiment(e);
  EXPECT_EQ(r.total_requests, 15);
  EXPECT_EQ(r.crashes, 0);  // crash schedule stripped
  EXPECT_GT(r.messages_dropped + r.messages_duplicated, 0u);
}

// --- sweep integration ------------------------------------------------------

std::vector<Experiment> faulty_cells() {
  std::vector<Experiment> cells;
  std::uint64_t seed = 40;
  for (const FaultSpec& fault :
       {FaultSpec::loss(0.15), FaultSpec::crash(2),
        FaultSpec::partition(2, /*downtime_units=*/2.0, /*period_units=*/4.0),
        FaultSpec::churn(60.0), FaultSpec::chaos()}) {
    {
      Experiment e;
      e.protocol = ProtocolSpec::arrow_one_shot();
      e.topology = TopologySpec::random_tree(20, 1);
      e.workload = WorkloadSpec::poisson(16, 0.6, 2);
      e.fault = fault;
      cells.push_back(e.with_seed(++seed));
    }
    {
      Experiment e;
      e.protocol = ProtocolSpec::arrow_closed_loop();
      e.topology = TopologySpec::complete(16);
      e.rounds = 8;
      e.fault = fault;
      cells.push_back(e.with_seed(++seed));
    }
    {
      Experiment e;
      e.protocol = ProtocolSpec::pointer_forwarding();
      e.topology = TopologySpec::complete(16);
      e.rounds = 8;
      e.fault = fault;
      cells.push_back(e.with_seed(++seed));
    }
  }
  return cells;
}

TEST(FaultProperty, FaultySweepsAreBitIdenticalAcrossThreadCounts) {
  // The acceptance bar: under a fixed fault schedule, results — fault
  // metrics included — are bit-identical across 1/2/4/5 sweep threads and
  // against the serial path. Each run owns its fault filter, so thread
  // interleavings cannot touch the draw streams.
  auto cells = faulty_cells();
  auto serial = run_experiments(cells);
  ASSERT_EQ(serial.size(), cells.size());
  for (unsigned threads : {1u, 2u, 4u, 5u}) {
    auto parallel = run_experiments(cells, SweepRunner(threads));
    ASSERT_EQ(parallel.size(), serial.size()) << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const RunResult& a = parallel[i].result;
      const RunResult& b = serial[i].result;
      EXPECT_EQ(a.makespan, b.makespan) << threads << " cell " << i;
      EXPECT_EQ(a.messages, b.messages) << threads << " cell " << i;
      EXPECT_EQ(a.total_hops, b.total_hops) << threads << " cell " << i;
      EXPECT_EQ(a.messages_dropped, b.messages_dropped) << threads << " cell " << i;
      EXPECT_EQ(a.messages_duplicated, b.messages_duplicated) << threads << " cell " << i;
      EXPECT_EQ(a.crashes, b.crashes) << threads << " cell " << i;
      EXPECT_EQ(a.stabilize_rounds, b.stabilize_rounds) << threads << " cell " << i;
      EXPECT_EQ(a.stabilize_corrections, b.stabilize_corrections) << threads << " cell " << i;
      EXPECT_DOUBLE_EQ(a.recovery_delta_units, b.recovery_delta_units)
          << threads << " cell " << i;
      EXPECT_EQ(a.partitions, b.partitions) << threads << " cell " << i;
      EXPECT_EQ(a.partition_backlog_drained, b.partition_backlog_drained)
          << threads << " cell " << i;
      EXPECT_EQ(a.reselections, b.reselections) << threads << " cell " << i;
      EXPECT_DOUBLE_EQ(a.partition_delta_units, b.partition_delta_units)
          << threads << " cell " << i;
    }
  }
}

TEST(FaultProperty, RecoveryDeltaFilledOnlyForFaultyCells) {
  Experiment e;
  e.protocol = ProtocolSpec::arrow_closed_loop();
  e.topology = TopologySpec::complete(16);
  e.rounds = 8;
  e = e.with_seed(3);
  RunResult clean = run_experiment(e);
  EXPECT_DOUBLE_EQ(clean.recovery_delta_units, 0.0);
  EXPECT_EQ(clean.messages_dropped, 0u);
  EXPECT_EQ(clean.crashes, 0);

  // A short crash period so the schedule fires within the loop's makespan
  // (the driver reports windows that actually fired, not the nominal count).
  e.fault = FaultSpec::crash(2, /*downtime_units=*/2.0, /*period_units=*/4.0);
  e.fault.seed = 21;
  RunResult faulty = run_experiment(e);
  EXPECT_GE(faulty.crashes, 1);
  EXPECT_LE(faulty.crashes, 2);
  // The twin comparison is the faulty makespan minus the clean one.
  EXPECT_NEAR(faulty.recovery_delta_units,
              static_cast<double>(faulty.makespan - clean.makespan) /
                  static_cast<double>(kTicksPerUnit),
              1e-9);
}

}  // namespace
}  // namespace arrowdq
