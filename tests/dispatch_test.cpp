// Coverage for the statically dispatched hot path, the same-tick batch
// drain, and the parallel sweep runner.
//
//  * Typed-handler + value-sampler execution must be tick-identical to the
//    dynamically dispatched reference (std::function handler + virtual
//    LatencyModel) on seeded instances — one-shot QueuingOutcomes and
//    closed-loop ClosedLoopResults compared field by field.
//  * with_static_latency must hand back samplers that share state with the
//    model (same draw sequence), and fall back to the virtual adapter for
//    unknown subclasses.
//  * Batch draining must preserve exact (time, seq) FIFO order under heavy
//    same-instant load, including events scheduled mid-batch, on every
//    queue implementation.
//  * SweepRunner results must not depend on the thread count (including 1)
//    and map() must return results in index order.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "arrow/arrow.hpp"
#include "arrow/closed_loop.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "sim/latency.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "testutil.hpp"

namespace arrowdq {
namespace {

std::unique_ptr<LatencyModel> model_for(int seed) {
  switch (seed % 4) {
    case 0: return make_synchronous();
    case 1: return make_scaled(0.25 + 0.05 * (seed % 5));
    case 2: return make_uniform_async(static_cast<std::uint64_t>(seed) * 31 + 7, 0.1);
    default: return make_truncated_exp(static_cast<std::uint64_t>(seed) * 53 + 11, 0.4);
  }
}

void expect_outcomes_equal(const QueuingOutcome& a, const QueuingOutcome& b, int seed) {
  ASSERT_EQ(a.request_count(), b.request_count()) << "seed " << seed;
  EXPECT_EQ(a.order(), b.order()) << "seed " << seed;
  for (RequestId id = 1; id <= a.request_count(); ++id) {
    const Completion& ca = a.completion(id);
    const Completion& cb = b.completion(id);
    EXPECT_EQ(ca.predecessor, cb.predecessor) << "seed " << seed << " req " << id;
    EXPECT_EQ(ca.completed_at, cb.completed_at) << "seed " << seed << " req " << id;
    EXPECT_EQ(ca.hops, cb.hops) << "seed " << seed << " req " << id;
    EXPECT_EQ(ca.distance, cb.distance) << "seed " << seed << " req " << id;
  }
}

TEST(StaticDispatch, OneShotMatchesDynamicReference) {
  for (int seed = 0; seed < 16; ++seed) {
    auto inst = testutil::make_tree_instance(seed);
    // Two independently seeded model instances: the two paths must consume
    // identical RNG streams.
    auto m_static = model_for(seed);
    auto m_dynamic = model_for(seed);
    ArrowEngine e_static(inst.tree, *m_static);
    ArrowEngine e_dynamic(inst.tree, *m_dynamic);
    if (seed % 3 == 1) {
      e_static.set_service_time(kTicksPerUnit / 8);
      e_dynamic.set_service_time(kTicksPerUnit / 8);
    }
    QueuingOutcome out_static = e_static.run(inst.requests);
    QueuingOutcome out_dynamic = e_dynamic.run_dynamic(inst.requests);
    expect_outcomes_equal(out_static, out_dynamic, seed);
    EXPECT_EQ(e_static.links(), e_dynamic.links()) << "seed " << seed;
    EXPECT_EQ(e_static.sink_node(), e_dynamic.sink_node()) << "seed " << seed;
    EXPECT_EQ(e_static.messages_sent(), e_dynamic.messages_sent()) << "seed " << seed;
    EXPECT_EQ(e_static.sim().now(), e_dynamic.sim().now()) << "seed " << seed;
  }
}

TEST(StaticDispatch, ClosedLoopMatchesDynamicReference) {
  for (int seed = 0; seed < 10; ++seed) {
    auto inst = testutil::make_tree_instance(seed);
    auto m_static = model_for(seed);
    auto m_dynamic = model_for(seed);
    ClosedLoopConfig cfg;
    cfg.requests_per_node = 15 + seed % 9;
    cfg.service_time = seed % 3 == 0 ? 0 : kTicksPerUnit / 16;
    ClosedLoopResult rs = run_arrow_closed_loop(inst.tree, *m_static, cfg);
    ClosedLoopResult rd = run_arrow_closed_loop_dynamic(inst.tree, *m_dynamic, cfg);
    EXPECT_EQ(rs.makespan, rd.makespan) << "seed " << seed;
    EXPECT_EQ(rs.total_requests, rd.total_requests) << "seed " << seed;
    EXPECT_EQ(rs.tree_messages, rd.tree_messages) << "seed " << seed;
    EXPECT_EQ(rs.notify_messages, rd.notify_messages) << "seed " << seed;
    EXPECT_DOUBLE_EQ(rs.avg_hops_per_request, rd.avg_hops_per_request) << "seed " << seed;
    EXPECT_DOUBLE_EQ(rs.avg_round_latency_units, rd.avg_round_latency_units) << "seed " << seed;
  }
}

TEST(StaticDispatch, SamplersShareStateWithModels) {
  // Stateful models: the dispatched sampler must draw from the *same*
  // stream as the model (not a reseeded copy) — sampling alternately
  // through both views must equal one straight virtual sequence.
  UniformAsyncLatency reference(99, 0.1);
  UniformAsyncLatency dispatched(99, 0.1);
  with_static_latency(dispatched, [&](auto sampler) {
    for (int i = 0; i < 50; ++i) {
      Time want_a = reference.sample(0, 1, 3);
      Time want_b = reference.sample(1, 2, 2);
      EXPECT_EQ(sampler(0, 1, 3), want_a) << i;
      EXPECT_EQ(dispatched.sample(1, 2, 2), want_b) << i;
    }
  });

  TruncatedExpLatency exp_ref(42, 0.3);
  TruncatedExpLatency exp_disp(42, 0.3);
  with_static_latency(exp_disp, [&](auto sampler) {
    for (int i = 0; i < 50; ++i) EXPECT_EQ(sampler(0, 1, 2), exp_ref.sample(0, 1, 2)) << i;
  });
}

TEST(StaticDispatch, UnknownModelFallsBackToVirtualSampler) {
  struct CustomLatency final : LatencyModel {
    Time sample(NodeId, NodeId, Weight weight) override { return units_to_ticks(weight) + 1; }
    const char* name() const override { return "custom"; }
  };
  CustomLatency custom;
  bool called = false;
  with_static_latency(custom, [&](auto sampler) {
    EXPECT_EQ(sampler(0, 1, 2), units_to_ticks(2) + 1);
    EXPECT_TRUE((std::is_same_v<decltype(sampler), VirtualSampler>));
    called = true;
  });
  EXPECT_TRUE(called);
}

// --- batch drain ----------------------------------------------------------

/// Heavy same-instant load with nested same-tick scheduling: execution
/// order must equal schedule order within each instant, instants in time
/// order, children after all parents of their instant.
template <typename Sim>
void drive_batch_fifo() {
  Sim sim;
  std::vector<int> log;
  // Three instants, interleaved scheduling across them.
  for (int i = 0; i < 30; ++i) {
    const Time t = 10 + 10 * (i % 3);  // 10, 20, 30, 10, 20, ...
    sim.at(t, [&log, &sim, i, t] {
      log.push_back(i);
      if (i % 4 == 0) {
        // Same-instant child: must run after every already-scheduled event
        // of this instant.
        sim.at(t, [&log, i] { log.push_back(1000 + i); });
      }
    });
  }
  sim.run();
  ASSERT_EQ(log.size(), 38u);
  // Expected: per instant, parents i≡instant (mod 3) ascending, then their
  // children in parent order.
  std::vector<int> want;
  for (int instant = 0; instant < 3; ++instant) {
    for (int i = instant; i < 30; i += 3) want.push_back(i);
    for (int i = instant; i < 30; i += 3)
      if (i % 4 == 0) want.push_back(1000 + i);
  }
  EXPECT_EQ(log, want);
}

TEST(BatchDrain, FifoUnderManySameInstantEvents) {
  drive_batch_fifo<BasicSimulator<BucketedEventQueue>>();
  drive_batch_fifo<BasicSimulator<BinaryEventQueue>>();
  drive_batch_fifo<BasicSimulator<FourAryEventQueue>>();
  drive_batch_fifo<BasicSimulator<PairingEventQueue>>();
}

TEST(BatchDrain, RandomizedOrderAgreesAcrossQueues) {
  // Property: all queue implementations realize the identical total order
  // on a random schedule with heavy duplicate times, including nested
  // scheduling from inside handlers.
  auto drive = [](auto sim_tag, int seed) {
    using Sim = decltype(sim_tag);
    Sim sim;
    Rng rng(static_cast<std::uint64_t>(seed) * 2654435761u + 17);
    std::vector<std::pair<Time, int>> log;
    int next_tag = 0;
    for (int i = 0; i < 400; ++i) {
      const Time t = static_cast<Time>(rng.next_below(40));
      const int tag = next_tag++;
      sim.at(t, [&log, &sim, &rng, &next_tag, t, tag] {
        log.emplace_back(t, tag);
        if (rng.next_bool(0.25)) {
          const Time t2 = t + static_cast<Time>(rng.next_below(3));  // may tie with t
          const int tag2 = next_tag++;
          sim.at(t2, [&log, t2, tag2] { log.emplace_back(t2, tag2); });
        }
      });
    }
    sim.run();
    return log;
  };
  for (int seed = 0; seed < 6; ++seed) {
    auto bucketed = drive(BasicSimulator<BucketedEventQueue>{}, seed);
    auto binary = drive(BasicSimulator<BinaryEventQueue>{}, seed);
    auto pairing = drive(BasicSimulator<PairingEventQueue>{}, seed);
    EXPECT_EQ(bucketed, binary) << "seed " << seed;
    EXPECT_EQ(bucketed, pairing) << "seed " << seed;
    // Sanity: within every instant, tags are strictly increasing (schedule
    // order), and instants are non-decreasing in time.
    for (std::size_t i = 1; i < bucketed.size(); ++i) {
      EXPECT_LE(bucketed[i - 1].first, bucketed[i].first) << "seed " << seed;
      if (bucketed[i - 1].first == bucketed[i].first)
        EXPECT_LT(bucketed[i - 1].second, bucketed[i].second) << "seed " << seed;
    }
  }
}

TEST(BatchDrain, StepAndRunUntilInteroperate) {
  BasicSimulator<BucketedEventQueue> sim;
  std::vector<int> log;
  for (int i = 0; i < 5; ++i) sim.at(10, [&log, i] { log.push_back(i); });
  for (int i = 5; i < 8; ++i) sim.at(20, [&log, i] { log.push_back(i); });
  // Single-step through part of the first batch.
  EXPECT_TRUE(sim.step());
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(sim.now(), 10);
  EXPECT_EQ(sim.events_pending(), 6u);
  // run_until must finish the batch but not cross t=20.
  sim.run_until(15);
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(sim.now(), 15);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(log.size(), 8u);
  EXPECT_EQ(sim.now(), 20);
}

// --- sweep runner ---------------------------------------------------------

std::vector<SweepScenario> test_scenarios() {
  std::vector<SweepScenario> scenarios;
  int i = 0;
  for (NodeId n : {13, 32, 61}) {
    Graph g = make_complete(n);
    Tree t = balanced_binary_overlay(g);
    for (LatencySpec spec : {LatencySpec::synchronous(),
                             LatencySpec::uniform_async(100 + static_cast<std::uint64_t>(i), 0.1),
                             LatencySpec::truncated_exp(200 + static_cast<std::uint64_t>(i), 0.4)}) {
      ClosedLoopConfig cfg;
      cfg.requests_per_node = 8 + i;
      cfg.service_time = i % 2 ? kTicksPerUnit / 16 : 0;
      scenarios.push_back(SweepScenario{"s" + std::to_string(i), t, spec, cfg});
      ++i;
    }
  }
  return scenarios;
}

TEST(SweepRunner, ResultsIndependentOfThreadCount) {
  auto scenarios = test_scenarios();
  auto r1 = SweepRunner(1).run(scenarios);
  auto r2 = SweepRunner(2).run(scenarios);
  auto r4 = SweepRunner(4).run(scenarios);
  auto r7 = SweepRunner(7).run(scenarios);
  ASSERT_EQ(r1.size(), scenarios.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].label, scenarios[i].label) << i;
    for (const auto* r : {&r2, &r4, &r7}) {
      EXPECT_EQ(r1[i].result.makespan, (*r)[i].result.makespan) << i;
      EXPECT_EQ(r1[i].result.total_requests, (*r)[i].result.total_requests) << i;
      EXPECT_EQ(r1[i].result.tree_messages, (*r)[i].result.tree_messages) << i;
      EXPECT_EQ(r1[i].result.notify_messages, (*r)[i].result.notify_messages) << i;
      EXPECT_EQ(r1[i].label, (*r)[i].label) << i;
    }
  }
}

TEST(SweepRunner, MatchesSerialExecution) {
  auto scenarios = test_scenarios();
  auto parallel = SweepRunner(4).run(scenarios);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    auto model = scenarios[i].latency.make();
    ClosedLoopResult serial = run_arrow_closed_loop(scenarios[i].tree, *model,
                                                    scenarios[i].config);
    EXPECT_EQ(parallel[i].result.makespan, serial.makespan) << i;
    EXPECT_EQ(parallel[i].result.tree_messages, serial.tree_messages) << i;
  }
}

TEST(SweepRunner, MapReturnsResultsInIndexOrder) {
  SweepRunner runner(4);
  auto out = runner.map<std::uint64_t>(100, [](std::size_t i) { return mix64(i); });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], mix64(i)) << i;
  EXPECT_TRUE(runner.map<int>(0, [](std::size_t) { return 1; }).empty());
}

TEST(SweepRunner, LatencySpecFactoriesMatchModels) {
  // Spec-built models must reproduce the directly constructed ones.
  auto spec = LatencySpec::uniform_async(555, 0.2).make();
  UniformAsyncLatency direct(555, 0.2);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(spec->sample(0, 1, 2), direct.sample(0, 1, 2));
  EXPECT_STREQ(spec->name(), "uniform-async");
  EXPECT_STREQ(LatencySpec::synchronous().make()->name(), "synchronous");
  EXPECT_STREQ(LatencySpec::scaled(0.5).make()->name(), "scaled");
  EXPECT_STREQ(LatencySpec::truncated_exp(1, 0.3).make()->name(), "trunc-exp");
}

}  // namespace
}  // namespace arrowdq
