#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"
#include "graph/shortest_paths.hpp"
#include "graph/spanning_tree.hpp"
#include "graph/tree.hpp"
#include "graph/union_find.hpp"
#include "support/random.hpp"

namespace arrowdq {
namespace {

TEST(Graph, AddEdgeAndNeighbors) {
  Graph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_weight(1, 2), 3);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.total_weight(), 5);
}

TEST(Graph, ConnectivityAndTreeness) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.is_tree());
  g.add_edge(0, 3);
  EXPECT_FALSE(g.is_tree());
}

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  uf.unite(2, 3);
  uf.unite(0, 3);
  EXPECT_EQ(uf.set_count(), 2);
  EXPECT_TRUE(uf.same(1, 2));
}

TEST(ShortestPaths, PathGraphDistances) {
  Graph g = make_path(5);
  auto d = sssp(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[static_cast<std::size_t>(v)], v);
}

TEST(ShortestPaths, WeightedVsHops) {
  Graph g(3);
  g.add_edge(0, 1, 10);
  g.add_edge(1, 2, 10);
  g.add_edge(0, 2, 25);
  auto d = sssp(g, 0);
  EXPECT_EQ(d[2], 20);  // via node 1
  auto h = bfs_hops(g, 0);
  EXPECT_EQ(h[2], 1);  // direct edge is fewer hops
}

TEST(ShortestPaths, DisconnectedIsUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  auto d = sssp(g, 0);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(AllPairsTest, DiameterRadiusCenter) {
  Graph g = make_path(7);
  AllPairs ap(g);
  EXPECT_EQ(ap.diameter(), 6);
  EXPECT_EQ(ap.radius(), 3);
  EXPECT_EQ(ap.center(), 3);
  EXPECT_EQ(ap.dist(2, 5), 3);
}

TEST(Generators, NodeAndEdgeCounts) {
  EXPECT_EQ(make_path(6).edge_count(), 5u);
  EXPECT_EQ(make_ring(6).edge_count(), 6u);
  EXPECT_EQ(make_star(6).edge_count(), 5u);
  EXPECT_EQ(make_complete(6).edge_count(), 15u);
  EXPECT_EQ(make_grid(3, 4).node_count(), 12);
  EXPECT_EQ(make_grid(3, 4).edge_count(), 3u * 3u + 2u * 4u);
  EXPECT_EQ(make_torus(3, 3).edge_count(), 18u);
  EXPECT_EQ(make_balanced_kary_tree(15, 2).edge_count(), 14u);
  EXPECT_EQ(make_caterpillar(4, 2).node_count(), 12);
}

TEST(Generators, AllConnected) {
  Rng rng(1);
  EXPECT_TRUE(make_path(9).is_connected());
  EXPECT_TRUE(make_ring(9).is_connected());
  EXPECT_TRUE(make_grid(4, 5).is_connected());
  EXPECT_TRUE(make_torus(4, 4).is_connected());
  EXPECT_TRUE(make_balanced_kary_tree(31).is_connected());
  EXPECT_TRUE(make_erdos_renyi(40, 0.15, rng).is_connected());
  EXPECT_TRUE(make_random_geometric(40, 0.3, rng).is_connected());
  EXPECT_TRUE(make_random_tree(40, rng).is_connected());
  EXPECT_TRUE(make_lollipop(5, 6).is_connected());
}

TEST(Generators, HypercubeStructure) {
  Graph g = make_hypercube(4);
  EXPECT_EQ(g.node_count(), 16);
  EXPECT_EQ(g.edge_count(), 32u);  // d * 2^(d-1)
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4);
  AllPairs ap(g);
  EXPECT_EQ(ap.diameter(), 4);          // Hamming diameter = d
  EXPECT_EQ(ap.dist(0b0000, 0b1011), 3);  // Hamming distance
  Graph g0 = make_hypercube(0);
  EXPECT_EQ(g0.node_count(), 1);
  EXPECT_TRUE(make_hypercube(5).is_connected());
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(2);
  for (NodeId n : {1, 2, 3, 5, 17, 64}) {
    Graph g = make_random_tree(n, rng);
    EXPECT_TRUE(g.is_tree()) << "n=" << n;
  }
}

TEST(Generators, BalancedBinaryDepth) {
  Graph g = make_balanced_kary_tree(15, 2);
  auto d = bfs_hops(g, 0);
  EXPECT_EQ(*std::max_element(d.begin(), d.end()), 3);  // 15 nodes -> depth 3
}

TEST(Generators, LollipopShape) {
  Graph g = make_lollipop(4, 3);
  EXPECT_EQ(g.node_count(), 7);
  EXPECT_EQ(g.edge_count(), 6u + 3u);
  AllPairs ap(g);
  EXPECT_EQ(ap.dist(0, 6), 1 + 3);  // across the clique then down the tail
}

TEST(TreeTest, FromParentsAndDistances) {
  // Root 0 with children {1, 2}; node 3 hangs off node 1.
  Tree t = Tree::from_parents({kNoNode, 0, 0, 1}, 0);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.depth(3), 2);
  EXPECT_EQ(t.distance(3, 2), 3);
  EXPECT_EQ(t.distance(1, 2), 2);
  EXPECT_EQ(t.distance(0, 0), 0);
  EXPECT_EQ(t.lca(3, 2), 0);
  EXPECT_EQ(t.lca(3, 1), 1);
  EXPECT_EQ(t.hop_distance(3, 2), 3);
}

TEST(TreeTest, WeightedDistances) {
  Tree t({kNoNode, 0, 1}, {1, 5, 7}, 0);
  EXPECT_EQ(t.dist_to_root(2), 12);
  EXPECT_EQ(t.distance(0, 2), 12);
  EXPECT_EQ(t.distance(1, 2), 7);
  EXPECT_EQ(t.weight_to_parent(2), 7);
}

TEST(TreeTest, PathExtraction) {
  Tree t = Tree::from_parents({kNoNode, 0, 0, 1, 1, 2}, 0);
  auto p = t.path(3, 5);
  std::vector<NodeId> expected{3, 1, 0, 2, 5};
  EXPECT_EQ(p, expected);
  auto p2 = t.path(3, 3);
  EXPECT_EQ(p2, std::vector<NodeId>{3});
  auto p3 = t.path(3, 4);
  std::vector<NodeId> expected3{3, 1, 4};
  EXPECT_EQ(p3, expected3);
}

TEST(TreeTest, NextHopMatchesPathOnRandomTrees) {
  for (int seed = 0; seed < 4; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 101 + 9);
    Graph g = make_random_tree(25 + 5 * seed, rng);
    Tree t = shortest_path_tree(g, seed % 3);
    for (NodeId u = 0; u < t.node_count(); ++u) {
      for (NodeId v = 0; v < t.node_count(); ++v) {
        if (u == v) continue;
        EXPECT_EQ(t.next_hop(u, v), t.path(u, v)[1]) << u << "->" << v;
      }
    }
  }
}

TEST(TreeTest, DiameterOfPathTree) {
  Graph g = make_path(10);
  Tree t = shortest_path_tree(g, 4);
  EXPECT_EQ(t.diameter(), 9);
  auto [a, b] = t.diameter_endpoints();
  EXPECT_EQ(t.distance(a, b), 9);
}

TEST(TreeTest, RerootedPreservesDistances) {
  Rng rng(3);
  Graph g = make_random_tree(30, rng);
  Tree t = shortest_path_tree(g, 0);
  Tree r = t.rerooted(17);
  EXPECT_EQ(r.root(), 17);
  for (NodeId u = 0; u < 30; ++u)
    for (NodeId v = 0; v < 30; ++v) EXPECT_EQ(t.distance(u, v), r.distance(u, v));
}

TEST(TreeTest, NeighborsAndDegree) {
  Tree t = Tree::from_parents({kNoNode, 0, 0, 1}, 0);
  auto nb0 = t.neighbors(0);
  EXPECT_EQ(nb0.size(), 2u);
  EXPECT_EQ(t.degree(0), 2);
  EXPECT_EQ(t.degree(1), 2);  // parent + one child
  EXPECT_EQ(t.degree(3), 1);
  auto nb1 = t.neighbors(1);
  EXPECT_EQ(nb1.front(), 0);  // parent first
}

TEST(TreeTest, AsGraphRoundTrip) {
  Graph g = make_grid(3, 3);
  Tree t = shortest_path_tree(g, 0);
  Graph tg = t.as_graph();
  EXPECT_TRUE(tg.is_tree());
  EXPECT_EQ(tg.edge_count(), 8u);
}

TEST(SpanningTree, SptDistancesMatchSssp) {
  Graph g = make_grid(4, 4);
  Tree t = shortest_path_tree(g, 5);
  auto d = sssp(g, 5);
  for (NodeId v = 0; v < g.node_count(); ++v)
    EXPECT_EQ(t.dist_to_root(v), d[static_cast<std::size_t>(v)]);
}

TEST(SpanningTree, MstWeightsAgreeAcrossAlgorithms) {
  Rng rng(4);
  for (int it = 0; it < 5; ++it) {
    Graph g = make_random_geometric(25, 0.4, rng);
    Tree k = kruskal_mst(g, 0);
    Tree p = prim_mst(g, 0);
    EXPECT_EQ(k.as_graph().total_weight(), p.as_graph().total_weight());
  }
}

TEST(SpanningTree, MstIsMinimumOnSmallGraph) {
  // Triangle with weights 1, 2, 3 -> MST weight 3.
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(0, 2, 3);
  EXPECT_EQ(kruskal_mst(g, 0).as_graph().total_weight(), 3);
  EXPECT_EQ(prim_mst(g, 2).as_graph().total_weight(), 3);
}

TEST(SpanningTree, BalancedBinaryOverlayDepth) {
  Graph g = make_complete(15);
  Tree t = balanced_binary_overlay(g);
  NodeId max_depth = 0;
  for (NodeId v = 0; v < 15; ++v) max_depth = std::max(max_depth, t.depth(v));
  EXPECT_EQ(max_depth, 3);
}

TEST(SpanningTree, RandomSpanningTreeIsSpanning) {
  Rng rng(5);
  Graph g = make_grid(5, 5);
  Tree t = random_spanning_tree(g, 0, rng);
  EXPECT_TRUE(t.as_graph().is_tree());
  EXPECT_EQ(t.node_count(), 25);
}

TEST(SpanningTree, MedianSptRootMinimizesDistanceSum) {
  Graph g = make_path(9);
  Tree t = median_spt(g);
  EXPECT_EQ(t.root(), 4);  // middle of the path
}

TEST(Metrics, StretchOfSptOnTreeIsOne) {
  Rng rng(6);
  Graph g = make_random_tree(20, rng);
  Tree t = shortest_path_tree(g, 0);
  auto rep = stretch_exact(g, t);
  EXPECT_DOUBLE_EQ(rep.max_stretch, 1.0);
  EXPECT_DOUBLE_EQ(rep.avg_stretch, 1.0);
}

TEST(Metrics, StretchOfStarTreeOnRing) {
  // Ring of 8; SPT from 0 has stretch: the edge {3,4} or {4,5} side —
  // adjacent ring nodes can end up distance up to 2*floor(n/2) - 1 apart
  // ... just verify it is > 1 and matches a hand value for n = 4.
  Graph g4 = make_ring(4);
  Tree t4 = shortest_path_tree(g4, 0);
  auto rep = stretch_exact(g4, t4);
  EXPECT_GT(rep.max_stretch, 1.0);
  EXPECT_LE(rep.max_stretch, 3.0);
}

TEST(Metrics, SampledStretchNeverExceedsExact) {
  Rng rng(8);
  Graph g = make_grid(5, 5);
  Tree t = shortest_path_tree(g, 0);
  auto exact = stretch_exact(g, t);
  Rng rng2(9);
  auto sampled = stretch_sampled(g, t, 300, rng2);
  EXPECT_LE(sampled.max_stretch, exact.max_stretch + 1e-12);
  EXPECT_GE(sampled.max_stretch, 1.0);
}

TEST(Metrics, TreeQualityReport) {
  Graph g = make_complete(8);
  Tree t = balanced_binary_overlay(g);
  auto q = tree_quality(g, t);
  EXPECT_EQ(q.nodes, 8);
  EXPECT_EQ(q.graph_diameter, 1);
  EXPECT_EQ(q.tree_diameter, t.diameter());
  EXPECT_GE(q.stretch, static_cast<double>(q.tree_diameter));  // dG = 1 everywhere
}

TEST(Metrics, GridSptStretchExactValue) {
  // On a 2x2 grid (a 4-cycle), SPT from corner 0 gives stretch 3 for the
  // opposite pair of adjacent nodes.
  Graph g = make_grid(2, 2);
  Tree t = shortest_path_tree(g, 0);
  auto rep = stretch_exact(g, t);
  EXPECT_DOUBLE_EQ(rep.max_stretch, 3.0);
}

}  // namespace
}  // namespace arrowdq
