#include <gtest/gtest.h>

#include "graph/comm_tree.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "support/random.hpp"

namespace arrowdq {
namespace {

TEST(CommTree, UniformProbsSumToOne) {
  auto p = uniform_probs(8);
  double sum = 0.0;
  for (double x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(CommTree, HotspotProbsShape) {
  auto p = hotspot_probs(10, 3, 0.7);
  EXPECT_DOUBLE_EQ(p[3], 0.7);
  double sum = 0.0;
  for (double x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(p[0], 0.3 / 9.0, 1e-12);
}

TEST(CommTree, WeightedMedianOfPathWithUniformProbs) {
  Graph g = make_path(9);
  EXPECT_EQ(weighted_median(g, uniform_probs(9)), 4);
}

TEST(CommTree, WeightedMedianFollowsTheHotspot) {
  Graph g = make_path(9);
  EXPECT_EQ(weighted_median(g, hotspot_probs(9, 7, 0.95)), 7);
}

TEST(CommTree, ExpectedCostOfPathTree) {
  // Two nodes, unit edge, uniform probs: E[dT] over independent (u,v) pairs
  // = 2 * (1/2)(1/2) * 1 = 0.5.
  Graph g = make_path(2);
  Tree t = shortest_path_tree(g, 0);
  EXPECT_NEAR(expected_comm_cost(t, uniform_probs(2)), 0.5, 1e-12);
}

TEST(CommTree, HotspotTreeBeatsAntipodalTreeOnExpectedCost) {
  // On a ring, rooting the SPT at the hotspot yields lower expected cost
  // than rooting it at the antipode (the antipodal tree puts the cut next
  // to the hotspot).
  Graph g = make_ring(12);
  auto probs = hotspot_probs(12, 0, 0.8);
  Tree at_hotspot = shortest_path_tree(g, 0);
  Tree at_antipode = shortest_path_tree(g, 6);
  EXPECT_LT(expected_comm_cost(at_hotspot, probs),
            expected_comm_cost(at_antipode, probs));
}

TEST(CommTree, WeightedMedianSptIsNeverWorseThanWorstRoot) {
  Rng rng(5);
  Graph g = make_random_geometric(20, 0.35, rng);
  auto probs = hotspot_probs(20, 11, 0.6);
  Tree chosen = weighted_median_spt(g, probs);
  double chosen_cost = expected_comm_cost(chosen, probs);
  // Compare against every single-root SPT; the weighted-median SPT must be
  // within the best 50% (it optimizes the root, not the full tree).
  int better = 0, total = 0;
  for (NodeId r = 0; r < 20; ++r) {
    double c = expected_comm_cost(shortest_path_tree(g, r), probs);
    if (c < chosen_cost - 1e-9) ++better;
    ++total;
  }
  EXPECT_LE(better, total / 2);
}

TEST(CommTree, UnnormalizedProbsAreNormalized) {
  Graph g = make_path(3);
  Tree t = shortest_path_tree(g, 0);
  std::vector<double> p{2.0, 2.0, 2.0};  // sums to 6, not 1
  auto u = uniform_probs(3);
  EXPECT_NEAR(expected_comm_cost(t, p), expected_comm_cost(t, u), 1e-12);
}

}  // namespace
}  // namespace arrowdq
