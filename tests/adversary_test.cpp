#include <gtest/gtest.h>

#include "adversary/lower_bound.hpp"
#include "analysis/costs.hpp"
#include "analysis/optimal.hpp"
#include "arrow/arrow.hpp"
#include "graph/metrics.hpp"

namespace arrowdq {
namespace {

TEST(LowerBound, PatternContainsSeedAndBoundaries) {
  auto pat = theorem41_request_pattern(4, 4);  // D = 16
  bool has_seed = false, has_v0_t0 = false, has_vD_t3 = false;
  for (const auto& [node, t] : pat) {
    if (node == 16 && t == 4) has_seed = true;
    if (node == 0 && t == 0) has_v0_t0 = true;
    if (node == 16 && t == 3) has_vD_t3 = true;
    EXPECT_GE(node, 0);
    EXPECT_LE(node, 16);
    EXPECT_GE(t, 0);
    EXPECT_LE(t, 4);
  }
  EXPECT_TRUE(has_seed);
  EXPECT_TRUE(has_v0_t0);
  EXPECT_TRUE(has_vD_t3);
}

TEST(LowerBound, PatternIsDeduplicated) {
  auto pat = theorem41_request_pattern(5, 5);
  std::set<std::pair<NodeId, Weight>> unique(pat.begin(), pat.end());
  EXPECT_EQ(unique.size(), pat.size());
}

TEST(LowerBound, InstanceStructure) {
  auto inst = make_theorem41_instance(5);  // D = 32, k = 5
  EXPECT_EQ(inst.diameter, 32);
  EXPECT_EQ(inst.k, 5);
  EXPECT_EQ(inst.graph.node_count(), 33);
  EXPECT_TRUE(inst.graph.is_tree());
  EXPECT_EQ(inst.tree.diameter(), 32);
  EXPECT_EQ(inst.requests.root(), 0);
  EXPECT_GT(inst.requests.size(), 2 * inst.k);  // more than just boundaries
}

TEST(LowerBound, IntendedOrderCostsKTimesD) {
  // Theorem 4.1 charges arrow the cost of the by-time zigzag order, ~k*D.
  auto inst = make_theorem41_instance(5);  // D = 32, k = 5
  auto order = theorem41_intended_order(inst);
  Time cost = order_tree_cost(inst, order);
  Time kD = units_to_ticks(inst.k * inst.diameter);
  EXPECT_GE(cost, kD / 2) << "intended order cost far below the k*D target";
  EXPECT_LE(cost, 3 * kD) << "intended order cost far above the k*D target";
}

TEST(LowerBound, SimulatedArrowCheaperThanIntendedOrder) {
  // Reproduction finding (documented in DESIGN.md): a live synchronous
  // execution's nearest-neighbour order merges time levels and costs only
  // Theta(D), strictly less than the by-time order the theorem charges.
  auto inst = make_theorem41_instance(6);  // D = 64, k = 6 (the Figure 9 instance)
  auto out = run_arrow(inst.tree, inst.requests);
  out.validate(inst.requests);
  Time simulated = out.total_latency(inst.requests);
  Time intended = order_tree_cost(inst, theorem41_intended_order(inst));
  EXPECT_LT(simulated, intended);
  Time D = units_to_ticks(inst.diameter);
  EXPECT_GE(simulated, D);      // still pays at least a diameter
  EXPECT_LE(simulated, 4 * D);  // but only a constant number of sweeps
}

TEST(LowerBound, OptimalStaysNearDiameter) {
  // Theorem 4.1: the Manhattan-MST ("comb") bound keeps OPT at O(D).
  auto inst = make_theorem41_instance(5);
  auto dT = tree_dist_ticks(inst.tree);
  Time mst = request_mst_weight(inst.requests, make_cM(dT));
  Time D = units_to_ticks(inst.diameter);
  // CM(MST) <= D + O(polylog) per the proof; allow a small multiple.
  EXPECT_LE(mst, 4 * D);
}

TEST(LowerBound, RatioGrowsWithDiameter) {
  double prev_ratio = 0.0;
  for (int log_d : {3, 5, 7}) {
    auto inst = make_theorem41_instance(log_d);
    auto out = run_arrow(inst.tree, inst.requests);
    Time cost = out.total_latency(inst.requests);
    auto dT = tree_dist_ticks(inst.tree);
    Time mst = request_mst_weight(inst.requests, make_cM(dT));
    double ratio = static_cast<double>(cost) / static_cast<double>(std::max<Time>(mst, 1));
    EXPECT_GT(ratio, prev_ratio) << "log_d " << log_d;
    prev_ratio = ratio;
  }
}

TEST(LowerBound, Theorem42InstanceHasRequestedStretch) {
  auto inst = make_theorem42_instance(3, 4);  // D' = 8, s = 4, D = 32
  EXPECT_EQ(inst.stretch, 4);
  EXPECT_EQ(inst.diameter, 32);
  auto rep = stretch_exact(inst.graph, inst.tree);
  EXPECT_DOUBLE_EQ(rep.max_stretch, 4.0);
}

TEST(LowerBound, Theorem42ArrowPaysStretchScaledCost) {
  auto inst41 = make_theorem41_instance(3);      // D' = 8 on the plain path
  auto inst42 = make_theorem42_instance(3, 4);   // same pattern, s = 4
  auto out41 = run_arrow(inst41.tree, inst41.requests);
  auto out42 = run_arrow(inst42.tree, inst42.requests);
  Time c41 = out41.total_latency(inst41.requests);
  Time c42 = out42.total_latency(inst42.requests);
  // Every edge is replaced by a path of length s: arrow's cost scales by s.
  EXPECT_EQ(c42, 4 * c41);
}

TEST(LowerBound, RequestsOnlyOnMultiplesOfSInTheorem42) {
  auto inst = make_theorem42_instance(3, 4);
  for (const auto& r : inst.requests.real()) EXPECT_EQ(r.node % 4, 0);
}

}  // namespace
}  // namespace arrowdq
