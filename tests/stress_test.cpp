// Large-scale randomized stress: hundreds of requests on graphs of a few
// hundred nodes, across latency models and workload mixes. Catches rare
// concurrency interleavings the small property sweeps cannot reach. Every
// run re-validates the full outcome (permutation order, unique
// predecessors, causality), the quiescent pointer invariants, and the
// NN characterization.
#include <gtest/gtest.h>

#include "analysis/async_nn.hpp"
#include "arrow/arrow.hpp"
#include "arrow/closed_loop.hpp"
#include "arrow/invariants.hpp"
#include "baseline/centralized.hpp"
#include "baseline/pointer_forwarding.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "sim/latency.hpp"
#include "support/random.hpp"
#include "workload/workloads.hpp"

namespace arrowdq {
namespace {

class ArrowStress : public ::testing::TestWithParam<int> {};

TEST_P(ArrowStress, LargeMixedWorkloadFullValidation) {
  int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 0x9E3779B9ULL + 0xBADC0DE);

  Graph g;
  switch (seed % 5) {
    case 0: g = make_grid(12, 12); break;
    case 1: g = make_hypercube(7); break;
    case 2: g = make_random_tree(180, rng); break;
    case 3: g = make_torus(10, 12); break;
    default: g = make_random_geometric(120, 0.18, rng); break;
  }
  auto root = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(g.node_count())));
  Tree t = (seed % 2 == 0) ? shortest_path_tree(g, root) : kruskal_mst(g, root);

  // Mixed workload: a burst, a Poisson stream, and repeated-node chatter,
  // all merged into one request set.
  Rng wrng = rng.split();
  std::vector<std::pair<NodeId, Time>> items;
  for (int i = 0; i < 60; ++i)
    items.emplace_back(static_cast<NodeId>(wrng.next_below(
                           static_cast<std::uint64_t>(g.node_count()))),
                       0);
  double t_units = 0.0;
  for (int i = 0; i < 250; ++i) {
    t_units += wrng.next_exponential(2.0);
    items.emplace_back(static_cast<NodeId>(wrng.next_below(
                           static_cast<std::uint64_t>(g.node_count()))),
                       static_cast<Time>(t_units * kTicksPerUnit));
  }
  NodeId chatterbox = static_cast<NodeId>(wrng.next_below(
      static_cast<std::uint64_t>(g.node_count())));
  for (int i = 0; i < 40; ++i)
    items.emplace_back(chatterbox, static_cast<Time>(i) * kTicksPerUnit / 4);
  RequestSet reqs(root, std::move(items));

  std::unique_ptr<LatencyModel> lat;
  switch (seed % 3) {
    case 0: lat = make_synchronous(); break;
    case 1: lat = make_uniform_async(static_cast<std::uint64_t>(seed) + 1, 0.02); break;
    default: lat = make_truncated_exp(static_cast<std::uint64_t>(seed) + 2, 0.4); break;
  }

  ArrowEngine engine(t, *lat);
  auto out = engine.run(reqs);
  out.validate(reqs);
  EXPECT_TRUE(links_form_in_tree(engine.links(), t));
  EXPECT_EQ(engine.sink_node(), reqs.by_id(out.order().back()).node);

  // Latency of every request bounded by dT to its predecessor.
  for (RequestId id = 1; id <= reqs.size(); ++id) {
    const auto& c = out.completion(id);
    Weight d = t.distance(reqs.by_id(id).node, reqs.by_id(c.predecessor).node);
    EXPECT_LE(c.completed_at - reqs.by_id(id).time, units_to_ticks(d));
    EXPECT_EQ(c.distance, d);  // direct-path property at scale
  }

  // NN characterization (the async variant covers the synchronous case).
  auto rep = check_async_nn(t, reqs, out);
  EXPECT_TRUE(rep.is_nn) << "seed " << seed << " violations " << rep.violations;
  EXPECT_TRUE(rep.chain_holds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrowStress, ::testing::Range(0, 10));

TEST(BaselineStress, PointerForwardingHeavyConcurrency) {
  // 400 requests, half fully concurrent, on 96 nodes: both pointer rules
  // must terminate and produce valid orders.
  const NodeId n = 96;
  Rng rng(1);
  std::vector<std::pair<NodeId, Weight>> items;
  for (int i = 0; i < 200; ++i)
    items.emplace_back(static_cast<NodeId>(rng.next_below(n)), 0);
  for (int i = 0; i < 200; ++i)
    items.emplace_back(static_cast<NodeId>(rng.next_below(n)), i / 4);
  auto reqs = RequestSet::from_units(0, items);
  for (auto mode : {ForwardingMode::kCompressToRequester, ForwardingMode::kReverseToSender}) {
    PointerForwardingConfig cfg;
    cfg.mode = mode;
    auto out = run_pointer_forwarding(n, reqs, unit_dist_fn(), cfg);
    out.validate(reqs);
  }
}

TEST(BaselineStress, CentralizedHeavyConcurrency) {
  const NodeId n = 96;
  Rng rng(2);
  auto reqs = one_shot_all(n, 0);
  CentralizedConfig cfg{0, kTicksPerUnit / 8};
  auto out = run_centralized(n, reqs, unit_dist_fn(), cfg);
  out.validate(reqs);
  // Service serializes the center: the last completion is at least
  // (n-1) service intervals after the first.
  auto order = out.order();
  Time first = out.completion(order[1]).completed_at;
  Time last = out.completion(order.back()).completed_at;
  EXPECT_GE(last - first, (n - 2) * (kTicksPerUnit / 8));
}

TEST(ClosedLoopStress, LongRunOnModerateCluster) {
  Graph g = make_complete(48);
  Tree t = balanced_binary_overlay(g);
  SynchronousLatency sync;
  ClosedLoopConfig cfg;
  cfg.requests_per_node = 5000;
  cfg.service_time = kTicksPerUnit / 16;
  auto res = run_arrow_closed_loop(t, sync, cfg);
  EXPECT_EQ(res.total_requests, 48 * 5000);
  EXPECT_LT(res.avg_hops_per_request, 1.0);
  EXPECT_GT(res.makespan, 0);
}

}  // namespace
}  // namespace arrowdq
