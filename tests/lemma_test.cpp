// Property tests that check the paper's lemmas and theorems numerically on
// randomized arrow executions. These are the strongest correctness evidence
// in the suite: each test states a claim from the paper and verifies it
// exactly (integer arithmetic, no tolerances) across parameterized sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/costs.hpp"
#include "analysis/nn_tsp.hpp"
#include "analysis/optimal.hpp"
#include "arrow/arrow.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/spanning_tree.hpp"
#include "proto/request.hpp"
#include "support/random.hpp"
#include "testutil.hpp"
#include "workload/workloads.hpp"

namespace arrowdq {
namespace {

using testutil::make_instance;

class LemmaSweep : public ::testing::TestWithParam<int> {};

// Fact 3.6: cT(ri, rj) >= 0 for all request pairs.
TEST_P(LemmaSweep, Fact36_CtNonNegative) {
  auto inst = make_instance(GetParam());
  auto dT = tree_dist_ticks(inst.tree);
  auto all = inst.requests.all();
  for (const auto& ri : all)
    for (const auto& rj : all) EXPECT_GE(cost_cT(ri, rj, dT), 0);
}

// cT is dominated by the Manhattan metric cM (used in Theorem 3.19's proof),
// and cM satisfies the triangle inequality and symmetry.
TEST_P(LemmaSweep, CtDominatedByManhattanMetric) {
  auto inst = make_instance(GetParam());
  auto dT = tree_dist_ticks(inst.tree);
  auto all = inst.requests.all();
  for (const auto& ri : all) {
    for (const auto& rj : all) {
      EXPECT_LE(cost_cT(ri, rj, dT), cost_cM(ri, rj, dT));
      EXPECT_EQ(cost_cM(ri, rj, dT), cost_cM(rj, ri, dT));
      EXPECT_GE(cost_cO(ri, rj, dT), 0);
      EXPECT_LE(cost_cO(ri, rj, dT), cost_cM(ri, rj, dT));
    }
  }
}

TEST_P(LemmaSweep, ManhattanTriangleInequality) {
  auto inst = make_instance(GetParam());
  auto dT = tree_dist_ticks(inst.tree);
  auto all = inst.requests.all();
  // Sample triples (quadratic in |R| is enough; cubic would be slow).
  for (std::size_t a = 0; a < all.size(); ++a) {
    for (std::size_t b = 0; b < all.size(); ++b) {
      std::size_t c = (a + b) % all.size();
      EXPECT_LE(cost_cM(all[a], all[c], dT),
                cost_cM(all[a], all[b], dT) + cost_cM(all[b], all[c], dT));
    }
  }
}

// Lemma 3.8: arrow's queuing order is a nearest-neighbour TSP path on R
// under cT starting from the root request.
TEST_P(LemmaSweep, Lemma38_ArrowOrderIsNearestNeighbour) {
  auto inst = make_instance(GetParam());
  auto out = run_arrow(inst.tree, inst.requests);
  auto order = out.order();
  auto cT = make_cT(tree_dist_ticks(inst.tree));
  EXPECT_TRUE(is_nn_order(order, inst.requests, cT)) << "seed " << GetParam();
}

// Lemma 3.9: if tj - ti > dT(vi, vj) then ri is ordered before rj.
TEST_P(LemmaSweep, Lemma39_TimeSeparatedRequestsKeepOrder) {
  auto inst = make_instance(GetParam());
  auto out = run_arrow(inst.tree, inst.requests);
  auto order = out.order();
  std::vector<std::int32_t> pos(static_cast<std::size_t>(inst.requests.size()) + 1, 0);
  for (std::size_t i = 0; i < order.size(); ++i)
    pos[static_cast<std::size_t>(order[i])] = static_cast<std::int32_t>(i);
  auto real = inst.requests.real();
  for (const auto& ri : real) {
    for (const auto& rj : real) {
      Time gap = rj.time - ri.time;
      Time d = units_to_ticks(inst.tree.distance(ri.node, rj.node));
      if (gap > d) {
        EXPECT_LT(pos[static_cast<std::size_t>(ri.id)], pos[static_cast<std::size_t>(rj.id)])
            << "ri=" << ri.id << " rj=" << rj.id;
      }
    }
  }
}

// Lemma 3.10: cost_arrow = CT - t_(piA(|R|)) exactly in the synchronous
// model. (The journal statement prints "+", but its own proof derives
// CT = t_piA(|R|) + sum dT, and cost_arrow = sum dT by Equation (2); we
// verify the proof's identity.)
TEST_P(LemmaSweep, Lemma310_CostDecomposition) {
  auto inst = make_instance(GetParam());
  auto out = run_arrow(inst.tree, inst.requests);
  auto order = out.order();
  auto cT = make_cT(tree_dist_ticks(inst.tree));
  Time ct_sum = order_cost(order, inst.requests, cT);
  Time t_last = inst.requests.by_id(order.back()).time;
  EXPECT_EQ(out.total_latency(inst.requests), ct_sum - t_last);
}

// Lemma 3.13 (as used in Theorem 3.19): the cT cost of every edge on arrow's
// path is at most 3D + t_gap slack; for our workloads, which never pause
// longer than the Lemma 3.11 compaction allows, we check the <= 3D bound
// after compacting idle gaps the way the lemma's transformation does.
TEST_P(LemmaSweep, Lemma313_MaxEdgeBoundedAfterCompaction) {
  auto inst = make_instance(GetParam());
  auto out = run_arrow(inst.tree, inst.requests);
  auto order = out.order();
  auto dT = tree_dist_ticks(inst.tree);
  Time D = units_to_ticks(inst.tree.diameter());
  // Compute the largest idle gap delta = max(0, tb - ta - dT(a,b)) minimized
  // over bridging pairs, as in Lemma 3.11; our bursty workloads can contain
  // such gaps, so allow them on top of 3D.
  Time max_allowed_gap = 0;
  auto all = inst.requests.all();
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    // Consecutive in time; find min over pairs bridging the gap.
    Time best = kTimeNever;
    for (std::size_t a = 0; a <= i; ++a) {
      for (std::size_t b = i + 1; b < all.size(); ++b) {
        Time delta = all[b].time - all[a].time - dT(all[a].node, all[b].node);
        best = std::min(best, std::max<Time>(delta, 0));
      }
    }
    if (best != kTimeNever) max_allowed_gap = std::max(max_allowed_gap, best);
  }
  auto cT = make_cT(dT);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    Time edge = cT(inst.requests.by_id(order[i]), inst.requests.by_id(order[i + 1]));
    EXPECT_LE(edge, 3 * D + max_allowed_gap) << "edge " << i;
  }
}

// Lemma 3.15/3.17 machinery: for arrow's own ordering, CM <= 4*CO + t_last
// and (via Lemma 3.16) CM <= 12*CO.
TEST_P(LemmaSweep, Lemma315_ManhattanVsOptimalCost) {
  auto inst = make_instance(GetParam());
  auto out = run_arrow(inst.tree, inst.requests);
  auto order = out.order();
  auto dT = tree_dist_ticks(inst.tree);
  Time cm = order_cost(order, inst.requests, make_cM(dT));
  Time co = order_cost(order, inst.requests, make_cO(dT));
  Time t_last = inst.requests.last_issue_time();
  EXPECT_LE(cm, 4 * co + t_last);
}

// Lemma 3.16: CM >= (3/2) t_|R| after the Lemma 3.11/3.12 normalization.
// We verify the weaker direct consequence the proof of Lemma 3.17 uses:
// whenever the workload has no compactable idle gaps, t_|R| <= 8 CO.
TEST_P(LemmaSweep, Lemma317_OrderingCostDominatesLastIssueTime) {
  auto inst = make_instance(GetParam());
  auto dT = tree_dist_ticks(inst.tree);
  auto all = inst.requests.all();
  // Detect compactable gaps (delta > 0 in Lemma 3.11); skip those instances
  // because the lemma only holds after compaction.
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    Time best = kTimeNever;
    for (std::size_t a = 0; a <= i; ++a)
      for (std::size_t b = i + 1; b < all.size(); ++b)
        best = std::min(best, all[b].time - all[a].time - dT(all[a].node, all[b].node));
    if (best != kTimeNever && best > 0) GTEST_SKIP() << "workload has compactable gaps";
  }
  auto out = run_arrow(inst.tree, inst.requests);
  auto order = out.order();
  Time co = order_cost(order, inst.requests, make_cO(dT));
  EXPECT_LE(inst.requests.last_issue_time(), 8 * co + 8);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LemmaSweep, ::testing::Range(0, 24));

// Theorem 3.18: the NN tour under dn is within (3/2)ceil(log2 DNN/dNN) of an
// optimal do tour, when dn <= do and do is a metric. We instantiate it the
// way Theorem 3.19 does: dn = cT, do = cM, and compare the NN *path* against
// the exact optimal cM path (path <= tour bound x2, per the paper's remark).
class Theorem318Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Theorem318Sweep, NnPathWithinBoundOfOptimal) {
  int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 100);
  Graph g = make_random_tree(10, rng);
  Tree t = shortest_path_tree(g, 0);
  Rng wrng = rng.split();
  auto rs = poisson_uniform(10, 0, 9, 0.8, wrng);  // small: exact DP feasible
  auto dT = tree_dist_ticks(t);
  auto cT = make_cT(dT);
  auto cM = make_cM(dT);

  auto nn = nn_order(rs, cT);
  Time nn_cost = order_cost(nn, rs, cT);
  Time opt_cm = min_order_cost_exact(rs, cM);
  auto stats = nn_edge_stats(nn, rs, cT);
  double factor = theorem318_factor(stats.max_edge, stats.min_nonzero_edge);
  // Path-vs-tour slack: factor of 2 (Section 3.7).
  EXPECT_LE(static_cast<double>(nn_cost), 2.0 * factor * static_cast<double>(opt_cm) + 1e-9)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Theorem318Sweep, ::testing::Range(0, 12));

// Theorem 3.19 (end-to-end): measured competitive ratio never exceeds a
// constant times s * log2(D) on our randomized instances, using the exact
// offline optimum for small request sets.
class CompetitiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CompetitiveSweep, RatioWithinTheoremBound) {
  int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
  Graph g = (seed % 2 == 0) ? make_grid(3, 4) : make_path(12);
  Tree t = shortest_path_tree(g, 0);
  Rng wrng = rng.split();
  auto rs = poisson_uniform(g.node_count(), 0, 10, 0.6, wrng);
  auto out = run_arrow(t, rs);

  AllPairs apsp(g);
  auto cOpt = make_cO(graph_dist_ticks(apsp));
  Time opt = min_order_cost_exact(rs, cOpt);
  if (opt == 0) GTEST_SKIP() << "degenerate zero-cost optimum";
  double ratio =
      static_cast<double>(out.total_latency(rs)) / static_cast<double>(opt);
  double s = stretch_exact(apsp, t).max_stretch;
  double bound = s * std::log2(std::max<double>(2.0, static_cast<double>(t.diameter())));
  // The Theorem hides a constant; 16 is comfortably above what the proof
  // yields and far below what a broken protocol would produce.
  EXPECT_LE(ratio, 16.0 * bound) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, CompetitiveSweep, ::testing::Range(0, 16));

}  // namespace
}  // namespace arrowdq
