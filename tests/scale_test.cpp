// Scale-path invariants: closed-form distance oracles, implicit topologies,
// and the compact closed-loop driver.
//
// The contract under test is exactness, not approximation:
//  * every closed-form oracle returns bit-identical ticks to the APSP table
//    it replaces, over all pairs;
//  * implicit adjacency enumerates exactly the materialized generator's
//    edges;
//  * implicit tree parents reproduce shortest_path_tree()'s min-id Dijkstra
//    parents for every root, so the implicit tier is indistinguishable from
//    the materialized one;
//  * the implicit closed-loop driver (CompactSimulator's 32-byte slots,
//    32-bit round counters, on-the-fly edge ids) is tick-identical to the
//    materialized driver (64-byte slots, 64-bit counters) — the compact
//    memory path changes cost, never results;
//  * resolve() really skips the O(n^2) APSP and the Graph for structured
//    families, and the validation layer refuses absurd materializations.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "arrow/closed_loop.hpp"
#include "baseline/dist.hpp"
#include "exp/experiment.hpp"
#include "exp/registry.hpp"
#include "graph/generators.hpp"
#include "graph/implicit.hpp"
#include "graph/shortest_paths.hpp"
#include "graph/spanning_tree.hpp"
#include "testutil.hpp"

namespace arrowdq {
namespace {

// --- closed-form oracles vs APSP -------------------------------------------

template <typename Oracle>
void expect_oracle_matches_apsp(const Graph& g, Oracle oracle) {
  AllPairs apsp(g);
  ApspDist ref{&apsp};
  const NodeId n = g.node_count();
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = 0; v < n; ++v)
      ASSERT_EQ(oracle(u, v), ref(u, v)) << oracle.name() << " dist(" << u << ", " << v << ")";
}

TEST(ClosedFormOracles, PathMatchesApspBitIdentical) {
  expect_oracle_matches_apsp(make_path(129), PathDist{});
}

TEST(ClosedFormOracles, RingMatchesApspBitIdentical) {
  expect_oracle_matches_apsp(make_ring(97), RingDist{97});
  expect_oracle_matches_apsp(make_ring(96), RingDist{96});  // even n: antipode tie
}

TEST(ClosedFormOracles, GridMatchesApspBitIdentical) {
  expect_oracle_matches_apsp(make_grid(7, 19), GridDist{19});  // non-square
  expect_oracle_matches_apsp(make_grid(16, 8), GridDist{8});
  expect_oracle_matches_apsp(make_grid(1, 24), GridDist{24});  // degenerate row
}

TEST(ClosedFormOracles, TorusMatchesApspBitIdentical) {
  expect_oracle_matches_apsp(make_torus(5, 11), TorusDist{5, 11});  // non-square
  expect_oracle_matches_apsp(make_torus(8, 8), TorusDist{8, 8});
}

TEST(ClosedFormOracles, HypercubeMatchesApspBitIdentical) {
  expect_oracle_matches_apsp(make_hypercube(9), HypercubeDist{});  // n = 512
}

TEST(ClosedFormOracles, StaticDispatchRecognizesOracles) {
  // with_static_dist must route each closed-form oracle to its typed slot:
  // wrapping one in a DistTicksFn and dispatching must reproduce its values.
  AllPairs apsp(make_torus(4, 5));
  TorusDist torus{4, 5};
  DistTicksFn fn = torus;
  for (NodeId u = 0; u < 20; ++u)
    for (NodeId v = 0; v < 20; ++v)
      EXPECT_EQ(fn(u, v), ApspDist{&apsp}(u, v)) << u << "," << v;
}

// --- implicit adjacency vs materialized generators --------------------------

ImplicitTopology implicit_for(const TopologySpec& t) {
  ImplicitTopology topo;
  switch (t.family) {
    case TopologySpec::Family::kComplete:
      topo.family = ImplicitFamily::kComplete;
      break;
    case TopologySpec::Family::kPath:
      topo.family = ImplicitFamily::kPath;
      break;
    case TopologySpec::Family::kRing:
      topo.family = ImplicitFamily::kRing;
      break;
    case TopologySpec::Family::kGrid:
      topo.family = ImplicitFamily::kGrid;
      break;
    case TopologySpec::Family::kTorus:
      topo.family = ImplicitFamily::kTorus;
      break;
    case TopologySpec::Family::kHypercube:
      topo.family = ImplicitFamily::kHypercube;
      break;
    default:
      ADD_FAILURE() << "family has no implicit form";
  }
  topo.n = t.nodes;
  topo.rows = t.rows;
  topo.cols = t.cols;
  topo.root = t.root;
  return topo;
}

std::vector<TopologySpec> structured_specs() {
  return {TopologySpec::complete(17), TopologySpec::path(33),   TopologySpec::ring(29),
          TopologySpec::grid(6, 7),   TopologySpec::torus(4, 5), TopologySpec::hypercube(5)};
}

TEST(ImplicitTopology, NeighborsMatchMaterializedAdjacency) {
  for (const TopologySpec& spec : structured_specs()) {
    const Graph g = spec.build_graph();
    const ImplicitTopology topo = implicit_for(spec);
    ASSERT_EQ(topo.node_count(), g.node_count()) << spec.family_name();
    for (NodeId v = 0; v < g.node_count(); ++v) {
      std::vector<NodeId> expected;
      for (const HalfEdge& h : g.neighbors(v)) expected.push_back(h.to);
      std::sort(expected.begin(), expected.end());
      std::vector<NodeId> got = topo.neighbors(v);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << spec.family_name() << " node " << v;
      EXPECT_EQ(topo.degree(v), static_cast<NodeId>(expected.size()))
          << spec.family_name() << " node " << v;
    }
  }
}

TEST(ImplicitTopology, DistancesMatchApsp) {
  for (const TopologySpec& spec : structured_specs()) {
    const Graph g = spec.build_graph();
    AllPairs apsp(g);
    const ImplicitTopology topo = implicit_for(spec);
    for (NodeId u = 0; u < g.node_count(); ++u)
      for (NodeId v = 0; v < g.node_count(); ++v)
        ASSERT_EQ(units_to_ticks(topo.distance(u, v)), ApspDist{&apsp}(u, v))
            << spec.family_name() << " dist(" << u << ", " << v << ")";
  }
}

// --- implicit tree parents vs min-id Dijkstra -------------------------------

TEST(ImplicitTopology, TreeParentsMatchShortestPathTree) {
  for (const TopologySpec& spec : structured_specs()) {
    const Graph g = spec.build_graph();
    for (NodeId root : {NodeId{0}, NodeId{1}, static_cast<NodeId>(g.node_count() - 1),
                        static_cast<NodeId>(g.node_count() / 2)}) {
      const Tree ref = shortest_path_tree(g, root);
      ImplicitTopology topo = implicit_for(spec);
      topo.root = root;
      for (NodeId v = 0; v < g.node_count(); ++v)
        ASSERT_EQ(topo.tree_parent(v), ref.parent(v))
            << spec.family_name() << " root " << root << " node " << v;
      const Tree made = topo.materialize_tree();
      ASSERT_EQ(made.root(), ref.root()) << spec.family_name() << " root " << root;
      for (NodeId v = 0; v < g.node_count(); ++v)
        ASSERT_EQ(made.parent(v), ref.parent(v))
            << spec.family_name() << " root " << root << " node " << v;
    }
  }
}

TEST(ImplicitTopology, BalancedBinaryOverlayMatches) {
  const Graph g = make_complete(30);
  const Tree ref = balanced_binary_overlay(g, 0);
  ImplicitTopology topo;
  topo.family = ImplicitFamily::kComplete;
  topo.n = 30;
  topo.root = 0;
  topo.balanced_binary = true;
  const Tree made = topo.materialize_tree();
  for (NodeId v = 0; v < 30; ++v) {
    EXPECT_EQ(topo.tree_parent(v), ref.parent(v)) << v;
    EXPECT_EQ(made.parent(v), ref.parent(v)) << v;
  }
}

// --- implicit closed loop vs materialized driver ----------------------------

// Also the 32-bit-vs-64-bit equivalence test: the implicit driver runs on
// CompactSimulator (32-byte event slots) with int32 per-node round counters,
// the materialized one on the default Simulator with int64 counters. Every
// metric must match exactly.
void expect_loops_identical(const ImplicitTopology& topo, const LatencySpec& lat,
                            const ClosedLoopConfig& cfg, const char* what) {
  const Tree tree = topo.materialize_tree();
  auto m_mat = lat.make();
  auto m_imp = lat.make();
  const ClosedLoopResult a = run_arrow_closed_loop(tree, *m_mat, cfg);
  const ClosedLoopResult b = run_arrow_closed_loop_implicit(topo, *m_imp, cfg);
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(a.total_requests, b.total_requests) << what;
  EXPECT_EQ(a.tree_messages, b.tree_messages) << what;
  EXPECT_EQ(a.notify_messages, b.notify_messages) << what;
  EXPECT_EQ(a.messages_dropped, b.messages_dropped) << what;
  EXPECT_EQ(a.messages_duplicated, b.messages_duplicated) << what;
  EXPECT_DOUBLE_EQ(a.avg_hops_per_request, b.avg_hops_per_request) << what;
  EXPECT_DOUBLE_EQ(a.avg_round_latency_units, b.avg_round_latency_units) << what;
}

TEST(ImplicitClosedLoop, TickIdenticalToMaterializedHypercube) {
  ImplicitTopology topo;
  topo.family = ImplicitFamily::kHypercube;
  topo.n = 1024;
  ClosedLoopConfig cfg;
  cfg.requests_per_node = 5;
  expect_loops_identical(topo, LatencySpec::synchronous(), cfg, "hypercube sync");
  cfg.service_time = kTicksPerUnit / 16;
  expect_loops_identical(topo, LatencySpec::synchronous(), cfg, "hypercube sync+service");
  expect_loops_identical(topo, LatencySpec::uniform_async(/*seed=*/7, 0.1), cfg,
                         "hypercube uniform+service");
}

TEST(ImplicitClosedLoop, TickIdenticalToMaterializedTorus) {
  ImplicitTopology topo;
  topo.family = ImplicitFamily::kTorus;
  topo.n = 256;
  topo.rows = 16;
  topo.cols = 16;
  topo.root = 37;  // off-origin root exercises the wrap-parent closed form
  ClosedLoopConfig cfg;
  cfg.requests_per_node = 7;
  cfg.service_time = kTicksPerUnit / 16;
  expect_loops_identical(topo, LatencySpec::truncated_exp(/*seed=*/3, 0.3), cfg, "torus exp");
}

TEST(ImplicitClosedLoop, TickIdenticalUnderMessageFaults) {
  // Crash recovery is materialized-only, but message-level faults must ride
  // the implicit path unchanged.
  ImplicitTopology topo;
  topo.family = ImplicitFamily::kRing;
  topo.n = 128;
  ClosedLoopConfig cfg;
  cfg.requests_per_node = 6;
  cfg.fault = FaultSpec::loss(0.05);
  cfg.fault.seed = 11;
  expect_loops_identical(topo, LatencySpec::uniform_async(/*seed=*/5, 0.1), cfg, "ring loss");
}

// --- resolve() scale decisions ----------------------------------------------

TEST(ScaleResolve, StructuredBaselineSkipsApspAndGraph) {
  Experiment e;
  e.protocol = ProtocolSpec::centralized(0, kTicksPerUnit / 16);
  e.topology = TopologySpec::torus(8, 8);
  e.rounds = 5;
  const exp_detail::Resolved r = exp_detail::resolve(e);
  EXPECT_FALSE(r.apsp.has_value()) << "torus must use the closed-form oracle, not APSP";
  EXPECT_EQ(r.graph.node_count(), 0) << "no Graph should be materialized";
  EXPECT_EQ(r.n, 64);
  EXPECT_EQ(r.dist, exp_detail::DistOracle::kTorus);
}

TEST(ScaleResolve, IrregularBaselineStillBuildsApsp) {
  Experiment e;
  e.protocol = ProtocolSpec::centralized();
  e.topology = TopologySpec::geometric(48, /*seed=*/3);
  e.rounds = 5;
  const exp_detail::Resolved r = exp_detail::resolve(e);
  EXPECT_TRUE(r.apsp.has_value());
  EXPECT_EQ(r.dist, exp_detail::DistOracle::kApsp);
  EXPECT_EQ(r.n, 48);
}

TEST(ScaleResolve, ImplicitLoopFlagSetWithoutCrash) {
  Experiment e;
  e.protocol = ProtocolSpec::arrow_closed_loop();
  e.topology = TopologySpec::hypercube(6);
  e.rounds = 3;
  exp_detail::Resolved r = exp_detail::resolve(e);
  EXPECT_TRUE(r.implicit_loop);
  ASSERT_TRUE(r.implicit.has_value());
  EXPECT_EQ(r.graph.node_count(), 0);
  EXPECT_EQ(r.tree.node_count(), 1) << "implicit loop keeps the placeholder tree";

  // A crash schedule needs the recovery wave's real Tree: still no Graph,
  // but the tree is materialized from the closed form and the implicit
  // driver is bypassed.
  e.fault = FaultSpec::crash(1);
  r = exp_detail::resolve(e);
  EXPECT_FALSE(r.implicit_loop);
  EXPECT_EQ(r.graph.node_count(), 0);
  EXPECT_EQ(r.tree.node_count(), 64);
}

TEST(ScaleResolve, AnalysisForcesMaterialization) {
  Experiment e;
  e.protocol = ProtocolSpec::arrow_one_shot();
  e.topology = TopologySpec::torus(4, 4);
  e.keep_outcome = true;
  e.analyze = true;
  const exp_detail::Resolved r = exp_detail::resolve(e);
  EXPECT_EQ(r.graph.node_count(), 16) << "analyze_competitive walks the real graph";
  EXPECT_FALSE(r.implicit_loop);
}

TEST(ScaleResolve, ImplicitExperimentMatchesMaterializedExperiment) {
  // End to end through run_experiment: an arrow-loop cell on a structured
  // family (implicit path) must report the same numbers as the identical
  // cell forced onto the materialized path via a custom topology.
  Experiment e;
  e.protocol = ProtocolSpec::arrow_closed_loop(kTicksPerUnit / 16);
  e.topology = TopologySpec::ring(64);
  e.latency = LatencySpec::uniform_async(/*seed=*/9, 0.1);
  e.rounds = 10;
  const RunResult implicit_run = run_experiment(e);

  Experiment m = e;
  const Graph g = TopologySpec::ring(64).build_graph();
  m.topology = TopologySpec::custom(g, shortest_path_tree(g, 0));
  const RunResult materialized_run = run_experiment(m);

  EXPECT_EQ(implicit_run.makespan, materialized_run.makespan);
  EXPECT_EQ(implicit_run.total_requests, materialized_run.total_requests);
  EXPECT_EQ(implicit_run.messages, materialized_run.messages);
  EXPECT_EQ(implicit_run.total_hops, materialized_run.total_hops);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(implicit_run.peak_rss_bytes, 0u);
#endif
}

// --- validation guards ------------------------------------------------------

TEST(ScaleValidation, StructuralErrorsAreDiagnosed) {
  TopologySpec grid = TopologySpec::grid(4, 4);
  grid.nodes = 17;  // no longer rows * cols
  EXPECT_TRUE(grid.validate().has_value());

  TopologySpec ring = TopologySpec::ring(2);
  EXPECT_TRUE(ring.validate().has_value());

  EXPECT_TRUE(TopologySpec::hypercube(29).validate().has_value()) << "past the 2^28 id cap";

  TopologySpec torus = TopologySpec::torus(3, 3);
  torus.root = 9;
  EXPECT_TRUE(torus.validate().has_value()) << "root out of range";

  EXPECT_FALSE(TopologySpec::torus(3, 3).validate().has_value());
  EXPECT_FALSE(TopologySpec::hypercube(20).validate().has_value());
}

TEST(ScaleValidation, AbsurdMaterializationsAreRefused) {
  // Baseline on an irregular family past the APSP cap.
  Experiment apsp_bomb;
  apsp_bomb.protocol = ProtocolSpec::centralized();
  apsp_bomb.topology = TopologySpec::random_tree(100000, /*seed=*/1);
  apsp_bomb.rounds = 1;
  EXPECT_TRUE(validate_experiment(apsp_bomb).has_value());

  // Geometric at n = 10^6 would materialize ~10^11 edges.
  Experiment geo_bomb;
  geo_bomb.protocol = ProtocolSpec::arrow_closed_loop();
  geo_bomb.topology = TopologySpec::geometric(1000000, /*seed=*/1);
  geo_bomb.rounds = 1;
  EXPECT_TRUE(validate_experiment(geo_bomb).has_value());

  // The same n on a structured family rides the implicit tier: accepted.
  Experiment big_ok;
  big_ok.protocol = ProtocolSpec::arrow_closed_loop();
  big_ok.topology = TopologySpec::hypercube(20);
  big_ok.rounds = 1;
  EXPECT_FALSE(validate_experiment(big_ok).has_value());

  // Baselines on complete graphs never materialize either.
  Experiment complete_ok;
  complete_ok.protocol = ProtocolSpec::centralized();
  complete_ok.topology = TopologySpec::complete(1 << 20);
  complete_ok.rounds = 1;
  EXPECT_FALSE(validate_experiment(complete_ok).has_value());
}

// --- ring family end to end -------------------------------------------------

TEST(RingFamily, GeneratorAndExperimentAgree) {
  const Graph g = TopologySpec::ring(12).build_graph();
  EXPECT_EQ(g.node_count(), 12);
  EXPECT_EQ(g.edge_count(), 12u);
  for (NodeId v = 0; v < 12; ++v) EXPECT_EQ(g.degree(v), 2) << v;
  EXPECT_STREQ(TopologySpec::ring(12).family_name(), "ring");

  Experiment e;
  e.protocol = ProtocolSpec::arrow_closed_loop();
  e.topology = TopologySpec::ring(12);
  e.rounds = 4;
  const RunResult r = run_experiment(e);
  EXPECT_EQ(r.total_requests, 48);
  EXPECT_GT(r.makespan, 0);
}

}  // namespace
}  // namespace arrowdq
