// Shared fixtures for the test suite: seeded RNG construction, standard
// tree builders, and the randomized (graph, tree, requests) instance
// generator used by the lemma and property sweeps.
//
// Everything here is deterministic in its inputs. Helpers that existing
// tests migrated onto (path_tree, grid_tree, make_instance) keep the exact
// arithmetic of the originals so refactored suites see identical streams.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/spanning_tree.hpp"
#include "graph/tree.hpp"
#include "proto/request.hpp"
#include "support/random.hpp"
#include "support/types.hpp"
#include "workload/workloads.hpp"

namespace arrowdq {
namespace testutil {

/// Decorrelated per-case RNG for parameterized sweeps: nearby seeds map to
/// distant states.
inline Rng seeded_rng(int seed, std::uint64_t salt = 0) {
  return Rng(mix64(static_cast<std::uint64_t>(seed) * 0x9e3779b97f4a7c15ULL + salt + 1));
}

/// Shortest-path tree over the n-node unit-weight path, rooted at `root`.
inline Tree path_tree(NodeId n, NodeId root = 0) {
  return shortest_path_tree(make_path(n), root);
}

/// Shortest-path tree over a rows x cols unit-weight grid, rooted at `root`.
inline Tree grid_tree(NodeId rows = 4, NodeId cols = 4, NodeId root = 0) {
  return shortest_path_tree(make_grid(rows, cols), root);
}

/// Shortest-path tree over a uniformly random labelled tree.
inline Tree random_tree(NodeId n, Rng& rng, NodeId root = 0) {
  return shortest_path_tree(make_random_tree(n, rng), root);
}

/// A random tree topology whose edges carry weights uniform in [1, max_weight].
inline Graph random_weighted_graph(NodeId n, Rng& rng, Weight max_weight = 9) {
  Graph g = make_random_tree(n, rng);
  Graph wg(n);
  for (const auto& e : g.edges())
    wg.add_edge(e.u, e.v, 1 + static_cast<Weight>(rng.next_below(
                              static_cast<std::uint64_t>(max_weight))));
  return wg;
}

/// A random (graph, tree, requests) triple for one sweep seed. Mixes graph
/// families and workload regimes so a sweep covers sequential, bursty and
/// Poisson loads on paths, grids, trees and complete graphs.
struct Instance {
  Graph graph{0};
  Tree tree{std::vector<NodeId>{kNoNode}, std::vector<Weight>{1}, 0};
  RequestSet requests{0, {}};
};

inline Instance make_instance(int seed) {
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  Instance inst;
  switch (seed % 4) {
    case 0: inst.graph = make_path(12 + seed % 9); break;
    case 1: inst.graph = make_grid(4, 4 + seed % 4); break;
    case 2: inst.graph = make_random_tree(18 + seed % 10, rng); break;
    default: inst.graph = make_complete(10 + seed % 8); break;
  }
  NodeId n = inst.graph.node_count();
  auto root = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
  inst.tree = shortest_path_tree(inst.graph, root);
  Rng wrng = rng.split();
  switch (seed % 3) {
    case 0:
      inst.requests = one_shot_all(n, root);
      break;
    case 1:
      inst.requests = poisson_uniform(n, root, 18 + seed % 12, 0.4 + 0.2 * (seed % 4), wrng);
      break;
    default:
      inst.requests = bursty(n, root, 3, 5, 4, wrng);
      break;
  }
  return inst;
}

/// Tree-only variant for protocol-level sweeps: a random tree topology
/// (uniform, weighted, path, star-ish caterpillar, or balanced k-ary), a
/// random root, and a random request schedule drawn from every workload
/// regime. Wider coverage than make_instance; used by the arrow property
/// suite.
struct TreeInstance {
  Tree tree{std::vector<NodeId>{kNoNode}, std::vector<Weight>{1}, 0};
  RequestSet requests{0, {}};
};

inline TreeInstance make_tree_instance(int seed) {
  Rng rng = seeded_rng(seed, /*salt=*/0xa77e57);
  NodeId n = 8 + static_cast<NodeId>(rng.next_below(25));
  Graph g;
  switch (seed % 5) {
    case 0: g = make_random_tree(n, rng); break;
    case 1: g = make_path(n); break;
    case 2: g = make_balanced_kary_tree(n, 2 + seed % 3); break;
    case 3: g = make_caterpillar(n / 3 + 2, 2); break;
    default: g = random_weighted_graph(n, rng); break;
  }
  n = g.node_count();
  TreeInstance inst;
  auto root = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
  inst.tree = shortest_path_tree(g, root);
  Rng wrng = rng.split();
  switch (seed % 4) {
    case 0: inst.requests = one_shot_all(n, root); break;
    case 1:
      inst.requests = poisson_uniform(n, root, 15 + seed % 15, 0.3 + 0.25 * (seed % 4), wrng);
      break;
    case 2: inst.requests = bursty(n, root, 2 + seed % 3, 4, 3, wrng); break;
    default:
      inst.requests =
          sequential_random(n, root, 10, inst.tree.diameter() + 1, wrng);
      break;
  }
  return inst;
}

}  // namespace testutil
}  // namespace arrowdq
