#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "sim/pairing_heap.hpp"
#include "support/random.hpp"

namespace arrowdq {
namespace {

using Heap = PairingHeap<int>;
using Key = Heap::Key;

TEST(PairingHeapTest, EmptyAndSingle) {
  Heap h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  h.push({5, 0}, 42);
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.top_key().t, 5);
  EXPECT_EQ(h.pop(), 42);
  EXPECT_TRUE(h.empty());
}

TEST(PairingHeapTest, OrdersByTimeThenSeq) {
  Heap h;
  h.push({10, 2}, 1);
  h.push({10, 1}, 2);
  h.push({5, 9}, 3);
  h.push({10, 0}, 4);
  EXPECT_EQ(h.pop(), 3);
  EXPECT_EQ(h.pop(), 4);
  EXPECT_EQ(h.pop(), 2);
  EXPECT_EQ(h.pop(), 1);
}

TEST(PairingHeapTest, MatchesStdPriorityQueueOnRandomStream) {
  struct Ref {
    Time t;
    std::uint64_t seq;
    int v;
    bool operator>(const Ref& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };
  Heap h;
  std::priority_queue<Ref, std::vector<Ref>, std::greater<>> ref;
  Rng rng(2);
  std::uint64_t seq = 0;
  for (int round = 0; round < 5000; ++round) {
    if (!h.empty() && rng.next_bool(0.45)) {
      ASSERT_EQ(h.pop(), ref.top().v);
      ref.pop();
    } else {
      auto t = static_cast<Time>(rng.next_below(1000));
      int v = static_cast<int>(rng.next());
      h.push({t, seq}, v);
      ref.push({t, seq, v});
      ++seq;
    }
    ASSERT_EQ(h.size(), ref.size());
  }
  while (!h.empty()) {
    ASSERT_EQ(h.pop(), ref.top().v);
    ref.pop();
  }
}

TEST(PairingHeapTest, NodeRecyclingSurvivesChurn) {
  Heap h;
  std::uint64_t seq = 0;
  for (int wave = 0; wave < 50; ++wave) {
    for (int i = 0; i < 100; ++i) h.push({static_cast<Time>(i), seq++}, i);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(h.pop(), i);
  }
  EXPECT_TRUE(h.empty());
}

TEST(PairingHeapTest, MonotoneDrainIsSorted) {
  Heap h;
  Rng rng(3);
  for (std::uint64_t i = 0; i < 2000; ++i)
    h.push({static_cast<Time>(rng.next_below(1 << 20)), i}, static_cast<int>(i));
  Time prev = -1;
  while (!h.empty()) {
    Time t = h.top_key().t;
    EXPECT_GE(t, prev);
    prev = t;
    h.pop();
  }
}

TEST(PairingHeapTest, MoveOnlyPayload) {
  PairingHeap<std::unique_ptr<int>> h;
  h.push({1, 0}, std::make_unique<int>(7));
  h.push({0, 1}, std::make_unique<int>(9));
  EXPECT_EQ(*h.pop(), 9);
  EXPECT_EQ(*h.pop(), 7);
}

}  // namespace
}  // namespace arrowdq
