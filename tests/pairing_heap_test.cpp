#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "sim/pairing_heap.hpp"
#include "support/random.hpp"

namespace arrowdq {
namespace {

using Heap = PairingHeap<int>;
using Key = Heap::Key;

TEST(PairingHeapTest, EmptyAndSingle) {
  Heap h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  h.push({5, 0}, 42);
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.top_key().t, 5);
  EXPECT_EQ(h.pop(), 42);
  EXPECT_TRUE(h.empty());
}

TEST(PairingHeapTest, OrdersByTimeThenSeq) {
  Heap h;
  h.push({10, 2}, 1);
  h.push({10, 1}, 2);
  h.push({5, 9}, 3);
  h.push({10, 0}, 4);
  EXPECT_EQ(h.pop(), 3);
  EXPECT_EQ(h.pop(), 4);
  EXPECT_EQ(h.pop(), 2);
  EXPECT_EQ(h.pop(), 1);
}

TEST(PairingHeapTest, MatchesStdPriorityQueueOnRandomStream) {
  struct Ref {
    Time t;
    std::uint64_t seq;
    int v;
    bool operator>(const Ref& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };
  Heap h;
  std::priority_queue<Ref, std::vector<Ref>, std::greater<>> ref;
  Rng rng(2);
  std::uint64_t seq = 0;
  for (int round = 0; round < 5000; ++round) {
    if (!h.empty() && rng.next_bool(0.45)) {
      ASSERT_EQ(h.pop(), ref.top().v);
      ref.pop();
    } else {
      auto t = static_cast<Time>(rng.next_below(1000));
      int v = static_cast<int>(rng.next());
      h.push({t, seq}, v);
      ref.push({t, seq, v});
      ++seq;
    }
    ASSERT_EQ(h.size(), ref.size());
  }
  while (!h.empty()) {
    ASSERT_EQ(h.pop(), ref.top().v);
    ref.pop();
  }
}

TEST(PairingHeapTest, NodeRecyclingSurvivesChurn) {
  Heap h;
  std::uint64_t seq = 0;
  for (int wave = 0; wave < 50; ++wave) {
    for (int i = 0; i < 100; ++i) h.push({static_cast<Time>(i), seq++}, i);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(h.pop(), i);
  }
  EXPECT_TRUE(h.empty());
}

TEST(PairingHeapTest, MonotoneDrainIsSorted) {
  Heap h;
  Rng rng(3);
  for (std::uint64_t i = 0; i < 2000; ++i)
    h.push({static_cast<Time>(rng.next_below(1 << 20)), i}, static_cast<int>(i));
  Time prev = -1;
  while (!h.empty()) {
    Time t = h.top_key().t;
    EXPECT_GE(t, prev);
    prev = t;
    h.pop();
  }
}

TEST(PairingHeapTest, DuplicatePrioritiesPopInSeqOrder) {
  // Same timestamp everywhere: the seq tiebreaker must impose FIFO order.
  Heap h;
  for (std::uint64_t s = 0; s < 64; ++s) h.push({7, s}, static_cast<int>(s));
  for (int s = 0; s < 64; ++s) EXPECT_EQ(h.pop(), s);
  EXPECT_TRUE(h.empty());
}

TEST(PairingHeapTest, FullyIdenticalKeysAllDrain) {
  // Identical (t, seq) keys compare equal both ways; every element must
  // still come out exactly once.
  Heap h;
  for (int i = 0; i < 16; ++i) h.push({3, 0}, i);
  std::vector<int> seen;
  while (!h.empty()) seen.push_back(h.pop());
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(PairingHeapTest, DecreaseKeyOnRootKeepsStructure) {
  Heap h;
  auto r = h.push({10, 0}, 1);
  h.push({20, 1}, 2);
  h.push({30, 2}, 3);
  EXPECT_EQ(h.key_of(r).t, 10);
  h.decrease_key(r, {1, 0});
  EXPECT_EQ(h.top_key().t, 1);
  EXPECT_EQ(h.pop(), 1);
  EXPECT_EQ(h.pop(), 2);
  EXPECT_EQ(h.pop(), 3);
}

TEST(PairingHeapTest, DecreaseKeyPromotesDeepElement) {
  Heap h;
  std::vector<Heap::Handle> handles;
  for (std::uint64_t s = 0; s < 32; ++s)
    handles.push_back(h.push({static_cast<Time>(100 + s), s}, static_cast<int>(s)));
  // Link the tree up so elements sit below the root, then promote the last.
  EXPECT_EQ(h.pop(), 0);
  h.decrease_key(handles.back(), {0, 31});
  EXPECT_EQ(h.pop(), 31);
  for (int s = 1; s < 31; ++s) EXPECT_EQ(h.pop(), s);
  EXPECT_TRUE(h.empty());
}

TEST(PairingHeapTest, DecreaseKeyEqualKeyIsNoOpSafe) {
  Heap h;
  auto a = h.push({5, 0}, 1);
  h.push({6, 1}, 2);
  h.decrease_key(a, {5, 0});
  EXPECT_EQ(h.pop(), 1);
  EXPECT_EQ(h.pop(), 2);
}

TEST(PairingHeapTest, MeldWithEmptyHeapBothDirections) {
  Heap a;
  Heap b;
  a.push({1, 0}, 10);
  a.push({2, 1}, 20);
  // Non-empty absorbs empty: nothing changes.
  a.meld(std::move(b));
  EXPECT_EQ(a.size(), 2u);
  // Empty absorbs non-empty: takes everything.
  Heap c;
  c.meld(std::move(a));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): meld empties its argument
  EXPECT_EQ(c.pop(), 10);
  EXPECT_EQ(c.pop(), 20);
  // Empty melds empty: still empty.
  Heap d;
  Heap e;
  d.meld(std::move(e));
  EXPECT_TRUE(d.empty());
}

TEST(PairingHeapTest, MeldInterleavesTwoHeaps) {
  Heap a;
  Heap b;
  for (std::uint64_t s = 0; s < 40; s += 2) a.push({static_cast<Time>(s), s}, static_cast<int>(s));
  for (std::uint64_t s = 1; s < 40; s += 2) b.push({static_cast<Time>(s), s}, static_cast<int>(s));
  // Churn both heaps so each has a non-empty free list at meld time: the
  // absorbed heap's freed slots exercise the free-list splice and offset.
  a.push({100, 100}, -1);
  a.push({101, 101}, -2);
  EXPECT_EQ(a.pop(), 0);
  b.push({0, 500}, -3);
  b.push({0, 501}, -4);
  EXPECT_EQ(b.pop(), -3);
  EXPECT_EQ(b.pop(), -4);
  a.meld(std::move(b));
  EXPECT_EQ(a.size(), 41u);
  for (int s = 1; s < 40; ++s) EXPECT_EQ(a.pop(), s);
  EXPECT_EQ(a.pop(), -1);
  EXPECT_EQ(a.pop(), -2);
  EXPECT_TRUE(a.empty());
}

TEST(PairingHeapTest, RandomDecreaseKeyMatchesReferenceModel) {
  // Model: a map from live handle to key; the heap must always pop the
  // minimum surviving key.
  Heap h;
  std::vector<std::pair<Heap::Handle, Key>> live;
  Rng rng(77);
  std::uint64_t seq = 0;
  for (int round = 0; round < 4000; ++round) {
    double roll = rng.next_double();
    if (roll < 0.5 || live.empty()) {
      auto t = static_cast<Time>(rng.next_below(100000));
      auto hd = h.push({t, seq}, static_cast<int>(seq));
      live.emplace_back(hd, Key{t, seq});
      ++seq;
    } else if (roll < 0.75) {
      auto& pick = live[static_cast<std::size_t>(rng.next_below(live.size()))];
      Time nt = pick.second.t - static_cast<Time>(rng.next_below(500));
      pick.second.t = nt;
      h.decrease_key(pick.first, pick.second);
    } else {
      std::size_t best = 0;
      for (std::size_t i = 1; i < live.size(); ++i)
        if (live[i].second < live[best].second) best = i;
      EXPECT_EQ(h.top_key().t, live[best].second.t);
      EXPECT_EQ(h.top_key().seq, live[best].second.seq);
      h.pop();
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(best));
    }
    ASSERT_EQ(h.size(), live.size());
  }
}

TEST(PairingHeapTest, MoveOnlyPayload) {
  PairingHeap<std::unique_ptr<int>> h;
  h.push({1, 0}, std::make_unique<int>(7));
  h.push({0, 1}, std::make_unique<int>(9));
  EXPECT_EQ(*h.pop(), 9);
  EXPECT_EQ(*h.pop(), 7);
}

}  // namespace
}  // namespace arrowdq
