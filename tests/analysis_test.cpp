#include <gtest/gtest.h>

#include "analysis/competitive.hpp"
#include "analysis/costs.hpp"
#include "analysis/nn_tsp.hpp"
#include "analysis/optimal.hpp"
#include "arrow/arrow.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_tree.hpp"
#include "support/random.hpp"
#include "testutil.hpp"
#include "workload/workloads.hpp"

namespace arrowdq {
namespace {

using testutil::path_tree;

TEST(Costs, CtDefinitionBranches) {
  Tree t = path_tree(10);
  auto dT = tree_dist_ticks(t);
  Request ri{1, 2, units_to_ticks(5)};
  Request rj{2, 6, units_to_ticks(1)};
  // d = tj - ti + dT = (1 - 5 + 4) units = 0 -> cT = 0 (d >= 0 branch).
  EXPECT_EQ(cost_cT(ri, rj, dT), 0);
  // Reverse: d = (5 - 1 + 4) = 8 units.
  EXPECT_EQ(cost_cT(rj, ri, dT), units_to_ticks(8));
  // d < 0 branch: rj2 much earlier.
  Request rj2{3, 3, 0};
  // d = 0 - 5 + 1 = -4 < 0 -> cT = ti - tj + dT = 5 + 1 = 6 units.
  EXPECT_EQ(cost_cT(ri, rj2, dT), units_to_ticks(6));
}

TEST(Costs, CoDefinition) {
  Tree t = path_tree(10);
  auto dT = tree_dist_ticks(t);
  Request ri{1, 0, units_to_ticks(9)};
  Request rj{2, 4, units_to_ticks(2)};
  // max(dT = 4, ti - tj = 7) = 7 units.
  EXPECT_EQ(cost_cO(ri, rj, dT), units_to_ticks(7));
  // Other direction: max(4, -7) = 4 units.
  EXPECT_EQ(cost_cO(rj, ri, dT), units_to_ticks(4));
}

TEST(Costs, OrderCostSumsConsecutivePairs) {
  Tree t = path_tree(5);
  auto rs = RequestSet::from_units(0, {{4, 0}, {2, 0}});
  auto cM = make_cM(tree_dist_ticks(t));
  std::vector<RequestId> order{0, 1, 2};
  // r0 at node0 t0; r1 at node4; r2 at node2.
  EXPECT_EQ(order_cost(order, rs, cM), units_to_ticks(4 + 2));
}

TEST(NnTsp, GreedyOrderIsNnOrder) {
  Rng rng(1);
  Tree t = path_tree(12);
  auto rs = poisson_uniform(12, 0, 15, 0.7, rng);
  auto cT = make_cT(tree_dist_ticks(t));
  auto order = nn_order(rs, cT);
  EXPECT_TRUE(is_nn_order(order, rs, cT));
  EXPECT_EQ(order.size(), static_cast<std::size_t>(rs.size()) + 1);
  EXPECT_EQ(order.front(), kRootRequest);
}

TEST(NnTsp, RejectsNonNnOrder) {
  Tree t = path_tree(10);
  // Root at 0; requests at nodes 1 and 9, both at time 0. NN must take node
  // 1 first.
  auto rs = RequestSet::from_units(0, {{1, 0}, {9, 0}});
  auto cT = make_cT(tree_dist_ticks(t));
  std::vector<RequestId> bad{0, 2, 1};
  EXPECT_FALSE(is_nn_order(bad, rs, cT));
  std::vector<RequestId> good{0, 1, 2};
  EXPECT_TRUE(is_nn_order(good, rs, cT));
}

TEST(NnTsp, EdgeStats) {
  Tree t = path_tree(10);
  auto rs = RequestSet::from_units(0, {{0, 0}, {3, 0}, {9, 0}});
  auto cT = make_cT(tree_dist_ticks(t));
  auto order = nn_order(rs, cT);  // 0 -> node0 (0) -> node3 (3) -> node9 (6)
  auto stats = nn_edge_stats(order, rs, cT);
  EXPECT_EQ(stats.zero_edges, 1);
  EXPECT_EQ(stats.min_nonzero_edge, units_to_ticks(3));
  EXPECT_EQ(stats.max_edge, units_to_ticks(6));
}

TEST(NnTsp, Theorem318FactorValues) {
  EXPECT_DOUBLE_EQ(theorem318_factor(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(theorem318_factor(8, 8), 1.5);       // single class
  EXPECT_DOUBLE_EQ(theorem318_factor(16, 1), 1.5 * 5);  // ratio 16 -> 5 classes
  EXPECT_DOUBLE_EQ(theorem318_factor(15, 1), 1.5 * 4);
}

TEST(Optimal, HeldKarpMatchesBruteForce) {
  Rng rng(2);
  Tree t = path_tree(10);
  for (int it = 0; it < 8; ++it) {
    Rng wrng = rng.split();
    auto rs = poisson_uniform(10, 0, 7, 0.5, wrng);
    auto cO = make_cO(tree_dist_ticks(t));
    EXPECT_EQ(min_order_cost_exact(rs, cO), min_order_cost_brute(rs, cO)) << "iter " << it;
  }
}

TEST(Optimal, HeldKarpEmitsConsistentOrder) {
  Rng rng(3);
  Tree t = path_tree(9);
  auto rs = poisson_uniform(9, 0, 8, 0.5, rng);
  auto cO = make_cO(tree_dist_ticks(t));
  std::vector<RequestId> order;
  Time best = min_order_cost_exact(rs, cO, &order);
  EXPECT_EQ(order.size(), static_cast<std::size_t>(rs.size()) + 1);
  EXPECT_EQ(order.front(), kRootRequest);
  EXPECT_EQ(order_cost(order, rs, cO), best);
}

TEST(Optimal, ExactNeverExceedsGreedyImproved) {
  Rng rng(4);
  Tree t = path_tree(12);
  for (int it = 0; it < 6; ++it) {
    Rng wrng = rng.split();
    auto rs = poisson_uniform(12, 0, 10, 0.6, wrng);
    auto cO = make_cO(tree_dist_ticks(t));
    Time exact = min_order_cost_exact(rs, cO);
    Time improved = min_order_cost_2opt(rs, cO);
    EXPECT_LE(exact, improved);
    // The improver starts from NN, so it is at most the NN path cost.
    Time nn = order_cost(nn_order(rs, cO), rs, cO);
    EXPECT_LE(improved, nn);
  }
}

TEST(Optimal, MstLowerBoundsHamiltonianPath) {
  Rng rng(5);
  Tree t = path_tree(11);
  for (int it = 0; it < 6; ++it) {
    Rng wrng = rng.split();
    auto rs = poisson_uniform(11, 0, 9, 0.7, wrng);
    auto cM = make_cM(tree_dist_ticks(t));
    Time mst = request_mst_weight(rs, cM);
    Time best_path = min_order_cost_exact(rs, cM);
    EXPECT_LE(mst, best_path) << "iter " << it;
  }
}

TEST(Optimal, EmptyAndSingletonCases) {
  Tree t = path_tree(4);
  auto cO = make_cO(tree_dist_ticks(t));
  RequestSet empty(0, {});
  EXPECT_EQ(min_order_cost_exact(empty, cO), 0);
  EXPECT_EQ(request_mst_weight(empty, cO), 0);
  auto one = RequestSet::from_units(0, {{3, 0}});
  EXPECT_EQ(min_order_cost_exact(one, cO), units_to_ticks(3));
}

TEST(Optimal, OptBoundComposition) {
  Rng rng(6);
  Graph g = make_grid(3, 3);
  Tree t = shortest_path_tree(g, 0);
  auto rs = poisson_uniform(9, 0, 8, 0.5, rng);
  AllPairs apsp(g);
  auto bound = opt_cost_lower_bound(rs, graph_dist_ticks(apsp), 10);
  EXPECT_GE(bound.exact, 0);
  EXPECT_EQ(bound.value, std::max(bound.exact, bound.mst_cm / 12));
  // The bound must actually lower-bound arrow's cost / s-ish quantities:
  // at minimum it cannot exceed the exact optimum when that is available.
  EXPECT_LE(bound.value, std::max(bound.exact, bound.value));
}

TEST(Competitive, ReportFieldsConsistent) {
  Rng rng(7);
  Graph g = make_grid(3, 4);
  Tree t = shortest_path_tree(g, 0);
  auto rs = poisson_uniform(12, 0, 9, 0.6, rng);
  auto out = run_arrow(t, rs);
  auto rep = analyze_competitive(g, t, rs, out, 10);
  EXPECT_TRUE(rep.lemma310_exact);
  EXPECT_EQ(rep.cost_arrow, out.total_latency(rs));
  EXPECT_GE(rep.ratio, 1.0 - 1e-9);  // arrow can't beat the true lower bound
  EXPECT_GE(rep.stretch, 1.0);
  EXPECT_GT(rep.s_log_d, 0.0);
  EXPECT_EQ(rep.tree_diameter, t.diameter());
}

TEST(Competitive, SequentialCaseRatioAtMostStretchTimesConstant) {
  // Demmer-Herlihy: in the sequential case arrow's competitive ratio is s.
  // With stretch 1 (tree = graph) sequential arrow should be near-optimal.
  Rng rng(8);
  Graph g = make_path(10);
  Tree t = shortest_path_tree(g, 0);
  auto rs = sequential_random(10, 0, 8, /*gap=*/20, rng);
  auto out = run_arrow(t, rs);
  AllPairs apsp(g);
  auto cOpt = make_cO(graph_dist_ticks(apsp));
  Time opt = min_order_cost_exact(rs, cOpt);
  if (opt > 0) {
    double ratio = static_cast<double>(out.total_latency(rs)) / static_cast<double>(opt);
    EXPECT_LE(ratio, 1.0 + 1e-9);  // stretch-1 sequential: arrow is optimal
  }
}

}  // namespace
}  // namespace arrowdq
