#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/histogram.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/types.hpp"

namespace arrowdq {
namespace {

TEST(Types, TickConversionRoundTrips) {
  EXPECT_EQ(units_to_ticks(0), 0);
  EXPECT_EQ(units_to_ticks(1), kTicksPerUnit);
  EXPECT_EQ(units_to_ticks(7), 7 * kTicksPerUnit);
  EXPECT_EQ(ticks_to_units(units_to_ticks(123)), 123);
  EXPECT_DOUBLE_EQ(ticks_to_units_d(kTicksPerUnit / 2), 0.5);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(3);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NextDoubleInHalfOpenUnit) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(13);
  auto p = rng.permutation(50);
  std::set<std::int32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  EXPECT_NE(a.next(), child.next());
}

TEST(Stats, AccumulatorBasics) {
  StatAccumulator s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, MergeMatchesSequential) {
  StatAccumulator a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, MergeWithEmptyIsIdentity) {
  StatAccumulator a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1);
  StatAccumulator c;
  c.merge(a);
  EXPECT_EQ(c.count(), 1);
  EXPECT_DOUBLE_EQ(c.mean(), 3.0);
}

TEST(Stats, SampleSetQuantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Stats, SampleSetSingleElement) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.3), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);   // clamps into bucket 0
  h.add(0.5);
  h.add(9.99);
  h.add(25.0);   // clamps into last bucket
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(9), 2);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(9), 10.0);
}

TEST(Histogram, AsciiRendersNonEmptyBuckets) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  h.add(1.2);
  auto s = h.ascii(10);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(LogHistogram, PowerOfTwoBuckets) {
  LogHistogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1023);
  EXPECT_EQ(h.total(), 6);
  EXPECT_EQ(h.bucket(0), 2);  // {0, 1}
  EXPECT_EQ(h.bucket(1), 2);  // {2, 3}
  EXPECT_EQ(h.bucket(2), 1);  // {4..7}
  EXPECT_EQ(h.bucket(9), 1);  // {512..1023}
}

TEST(Table, RenderAndCsv) {
  Table t({"n", "cost"});
  t.row().cell(std::int64_t{4}).cell(3.14159, 2);
  t.row().cell(std::int64_t{8}).cell(2.0, 2);
  auto text = t.render();
  EXPECT_NE(text.find("n"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  auto csv = t.csv();
  EXPECT_EQ(csv, "n,cost\n4,3.14\n8,2.00\n");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Mix64, StatelessAndStable) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
}

}  // namespace
}  // namespace arrowdq
